// Internship matching at scale: companies post positions with
// capacities (several identical openings), students submit preference
// weights over salary, company standing, mentoring quality and
// flexibility. The system computes a fair (stable) assignment and
// reports satisfaction statistics.
//
// Build & run:   ./build/examples/example_internship_matching
#include <algorithm>
#include <cstdio>
#include <vector>

#include "fairmatch/assign/verifier.h"
#include "fairmatch/common/rng.h"
#include "fairmatch/data/synthetic.h"
#include "fairmatch/engine/registry.h"
#include "fairmatch/rtree/node_store.h"
#include "fairmatch/topk/ranked_search.h"

using namespace fairmatch;

int main() {
  constexpr int kStudents = 3000;
  constexpr int kPositions = 800;  // distinct postings
  constexpr int kDims = 4;         // salary, standing, mentoring, flexibility
  Rng rng(2026);

  // Positions: anti-correlated attributes (high salary tends to come
  // with lower flexibility, etc.), each posting has 1-8 identical
  // openings (Section 6.1 capacities).
  auto points = GeneratePoints(Distribution::kAntiCorrelated, kPositions,
                               kDims, &rng);
  AssignmentProblem problem;
  problem.dims = kDims;
  int total_openings = 0;
  for (ObjectId i = 0; i < kPositions; ++i) {
    int openings = 1 + static_cast<int>(rng.UniformInt(0, 7));
    total_openings += openings;
    problem.objects.push_back(ObjectItem{i, points[i], openings});
  }

  // Students: clustered preferences — some cohorts optimize salary,
  // others mentoring (Figure 12's weight model).
  problem.functions =
      GenerateClusteredFunctions(kStudents, kDims, /*clusters=*/4,
                                 /*stddev=*/0.08, &rng);

  MemNodeStore store(kDims);
  RTree tree(&store);
  BuildObjectTree(problem, &tree);

  ExecContext ctx;
  MatcherEnv env;
  env.problem = &problem;
  env.tree = &tree;
  env.ctx = &ctx;
  auto matcher = MatcherRegistry::Global().Create("SB", env);
  AssignResult result = matcher->Run();

  std::printf("students=%d postings=%d openings=%d assigned=%zu "
              "(loops=%lld, cpu=%.1f ms)\n",
              kStudents, kPositions, total_openings,
              result.matching.size(),
              static_cast<long long>(result.stats.loops),
              result.stats.cpu_ms);

  // Satisfaction: how close each student got to their personal top-1.
  std::vector<double> regret;
  std::vector<double> assigned_score(kStudents, -1.0);
  for (const MatchPair& pair : result.matching) {
    assigned_score[pair.fid] = pair.score;
  }
  int top1_hits = 0;
  for (const PrefFunction& f : problem.functions) {
    if (assigned_score[f.id] < 0) continue;
    RankedSearch search(&tree, &f);
    auto best = search.Next();
    regret.push_back(best->score - assigned_score[f.id]);
    if (best->score == assigned_score[f.id]) top1_hits++;
  }
  std::sort(regret.begin(), regret.end());
  auto pct = [&](double q) {
    return regret[static_cast<size_t>(q * (regret.size() - 1))];
  };
  std::printf("top-1 satisfied: %d/%zu (%.1f%%)\n", top1_hits,
              regret.size(), 100.0 * top1_hits / regret.size());
  std::printf("regret vs personal best: median=%.4f p90=%.4f max=%.4f\n",
              pct(0.5), pct(0.9), regret.back());

  auto verdict = VerifyStableMatching(problem, result.matching);
  std::printf("stability (no student/position pair would both rather "
              "switch): %s\n",
              verdict.ok ? "OK" : verdict.message.c_str());
  return verdict.ok ? 0 : 1;
}

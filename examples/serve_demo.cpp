// fairmatchd demo: a long-lived serving core over resident indexes.
//
// One dataset is opened cold (R-tree bulk-loaded, function lists packed
// into an immutable image), then a mixed burst of requests — plain SB,
// packed-image probes, brute force — is submitted to a 4-lane server.
// Every response carries the matching plus queue/exec latency, and the
// demo closes with the admission-control behavior: a tiny server is
// deliberately overloaded so some requests come back kOverloaded
// instead of piling onto the queue.
//
// Build & run:   ./build/examples/example_serve_demo
#include <algorithm>
#include <cstdio>
#include <vector>

#include "fairmatch/data/synthetic.h"
#include "fairmatch/serve/dataset_registry.h"
#include "fairmatch/serve/server.h"

using namespace fairmatch;
using namespace fairmatch::serve;

namespace {

AssignmentProblem DemoProblem() {
  Rng rng(2009);
  std::vector<Point> points =
      GeneratePoints(Distribution::kAntiCorrelated, 4000, 3, &rng);
  FunctionSet fns = GenerateFunctions(150, 3, &rng);
  AssignPriorities(&fns, 3, &rng);
  return MakeProblem(std::move(points), std::move(fns), 1);
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t i = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[i];
}

}  // namespace

int main() {
  const AssignmentProblem problem = DemoProblem();

  // --- open the dataset: cold build, then a warm share -------------
  DatasetRegistry registry;
  DatasetHandle ds = registry.Open("demo", problem);
  std::printf("cold open: built R-tree + packed image in %.1f ms "
              "(%.1f MiB resident)\n",
              ds->build_ms(),
              static_cast<double>(ds->memory_bytes()) / (1024.0 * 1024.0));
  registry.Open("demo", problem);  // warm: shares, builds nothing
  std::printf("warm open: shared the resident structures "
              "(%lld warm / %lld cold)\n\n",
              static_cast<long long>(registry.warm_opens()),
              static_cast<long long>(registry.cold_opens()));

  // --- serve a mixed burst on 4 lanes ------------------------------
  ServerOptions options;
  options.lanes = 4;
  options.max_queue = 128;
  Server server(&registry, options);

  const std::vector<std::string> mix = {"SB", "SB-Packed", "SB-TwoSkylines",
                                        "SB-alt-Packed"};
  const int kRequests = 64;
  std::vector<ResponseFuture> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    Request request;
    request.dataset = "demo";
    request.matcher = mix[static_cast<size_t>(i) % mix.size()];
    futures.push_back(server.Submit(std::move(request)));
  }

  std::vector<double> total_ms;
  size_t pairs = 0;
  for (ResponseFuture& future : futures) {
    const Response& response = future.Wait();
    if (!response.status.ok()) {
      std::printf("request failed: %s\n", response.status.message.c_str());
      return 1;
    }
    total_ms.push_back(response.total_ms);
    pairs = response.stats.pairs;  // same problem -> same pair count
  }
  std::printf("served %d requests on %d lanes: p50=%.2f ms  p99=%.2f ms  "
              "(%zu pairs per matching)\n",
              kRequests, server.lanes(), Percentile(total_ms, 0.50),
              Percentile(total_ms, 0.99), pairs);
  server.Close();

  // --- admission control: overload a tiny server -------------------
  ServerOptions tiny;
  tiny.lanes = 1;
  tiny.max_queue = 4;
  Server small(&registry, tiny);
  std::vector<ResponseFuture> burst;
  for (int i = 0; i < 16; ++i) {
    Request request;
    request.dataset = "demo";
    request.matcher = "SB";
    burst.push_back(small.Submit(std::move(request)));
  }
  int ok = 0, overloaded = 0;
  for (ResponseFuture& future : burst) {
    const Response& response = future.Wait();
    if (response.status.ok()) {
      ++ok;
    } else if (response.status.code == ServeCode::kOverloaded) {
      ++overloaded;
    }
  }
  small.Close();
  std::printf("\noverload burst on a 1-lane/4-queue server: "
              "%d completed, %d rejected kOverloaded (never queued "
              "unboundedly)\n",
              ok, overloaded);

  const ServerCounters counters = small.counters();
  std::printf("counters: accepted=%lld rejected=%lld completed=%lld\n",
              static_cast<long long>(counters.accepted),
              static_cast<long long>(counters.rejected),
              static_cast<long long>(counters.completed));
  return 0;
}

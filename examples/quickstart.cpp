// Quickstart: the paper's running example (Figure 1).
//
// Three students submit weighted preferences over internship positions
// described by salary (X) and company standing (Y); fairmatch computes
// the stable 1-1 assignment.
//
// Build & run:   ./build/examples/example_quickstart
#include <cstdio>

#include "fairmatch/assign/verifier.h"
#include "fairmatch/engine/registry.h"
#include "fairmatch/rtree/node_store.h"

using namespace fairmatch;

int main() {
  // --- the object set O: four internship positions --------------------
  const char* names[] = {"a", "b", "c", "d"};
  float coords[][2] = {{0.5f, 0.6f}, {0.2f, 0.7f}, {0.8f, 0.2f},
                       {0.4f, 0.4f}};
  AssignmentProblem problem;
  problem.dims = 2;
  for (ObjectId i = 0; i < 4; ++i) {
    Point p(2);
    p[0] = coords[i][0];
    p[1] = coords[i][1];
    problem.objects.push_back(ObjectItem{i, p, /*capacity=*/1});
  }

  // --- the function set F: three user preference vectors --------------
  // (from the preference input form of Table 1: weights sum to 1)
  double weights[][2] = {{0.8, 0.2}, {0.2, 0.8}, {0.5, 0.5}};
  for (FunctionId i = 0; i < 3; ++i) {
    PrefFunction f;
    f.id = i;
    f.dims = 2;
    f.alpha = {weights[i][0], weights[i][1]};
    problem.functions.push_back(f);
  }

  // --- index the objects and run the SB algorithm ---------------------
  MemNodeStore store(problem.dims);
  RTree tree(&store);
  BuildObjectTree(problem, &tree);

  // Any registered algorithm runs through the same engine surface; try
  // "BruteForce" or "Chain" here, or list MatcherRegistry::Global()
  // .Names() to see all variants.
  ExecContext ctx;
  MatcherEnv env;
  env.problem = &problem;
  env.tree = &tree;
  env.ctx = &ctx;
  auto matcher = MatcherRegistry::Global().Create("SB", env);
  AssignResult result = matcher->Run();

  std::printf("Stable assignment (in discovery order):\n");
  for (const MatchPair& pair : result.matching) {
    std::printf("  user f%d  <-  position %s   (score %.2f)\n",
                pair.fid + 1, names[pair.oid], pair.score);
  }

  auto verdict = VerifyStableMatching(problem, result.matching);
  std::printf("Stability check: %s\n", verdict.ok ? "OK" : "FAILED");
  return verdict.ok ? 0 : 1;
}

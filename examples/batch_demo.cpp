// Batch execution demo: many independent assignment problems through
// the BatchRunner, once on a single lane and once on four.
//
// Models a server draining a queue of preference-query batches (one
// per tenant, say): each item is generated, indexed and solved inside
// its worker lane, and a small simulated disk latency stands in for
// the I/O stalls a real disk-resident deployment overlaps by running
// lanes in parallel. The outputs are byte-identical either way — the
// engine's determinism guarantee — so the only thing parallelism
// changes is the wall clock.
//
// Build & run:   ./build/examples/example_batch_demo
#include <cstdio>

#include "fairmatch/engine/batch_runner.h"

using namespace fairmatch;

int main() {
  // 16 tenants, each with its own (seeded) functions and objects.
  BatchProblemSpec spec;
  spec.num_functions = 60;
  spec.num_objects = 600;
  spec.dims = 3;
  spec.distribution = Distribution::kAntiCorrelated;
  spec.base_seed = 2009;
  spec.io_latency_us = 150;  // pretend the simulated disk is a disk
  const int kTenants = 16;

  std::printf("Solving %d independent problems (%d users x %d objects "
              "each) with SB:\n\n", kTenants, spec.num_functions,
              spec.num_objects);

  BatchResult serial, parallel;
  {
    BatchRunner runner(1);
    serial = runner.RunGenerated("SB", spec, kTenants);
  }
  {
    BatchRunner runner(4);
    parallel = runner.RunGenerated("SB", spec, kTenants);
  }

  for (const BatchResult* r : {&serial, &parallel}) {
    std::printf("  threads=%d  wall=%8.1f ms  throughput=%6.1f items/s  "
                "io=%lld  pairs=%llu\n",
                r->stats.threads, r->stats.wall_ms, r->stats.items_per_sec,
                static_cast<long long>(r->stats.totals.io_accesses),
                static_cast<unsigned long long>(r->stats.totals.pairs));
  }

  // Determinism: same items, same order, same matchings, same counters.
  bool identical = serial.items.size() == parallel.items.size();
  for (size_t i = 0; identical && i < serial.items.size(); ++i) {
    identical = SameMatching(serial.items[i].matching,
                             parallel.items[i].matching) &&
                serial.items[i].stats.io_accesses ==
                    parallel.items[i].stats.io_accesses;
  }
  std::printf("\nPer-item results identical across thread counts: %s\n",
              identical ? "yes" : "NO");
  std::printf("Speedup at 4 lanes: %.2fx\n",
              serial.stats.wall_ms / parallel.stats.wall_ms);
  return identical ? 0 : 1;
}

// Fantasy-draft style assignment on NBA-like data (the paper's second
// real dataset): franchises with distinct stat preferences each fill a
// roster of five players; every player signs with at most one team.
//
// Build & run:   ./build/examples/example_nba_draft
#include <cstdio>

#include "fairmatch/assign/verifier.h"
#include "fairmatch/common/rng.h"
#include "fairmatch/data/real_sim.h"
#include "fairmatch/data/synthetic.h"
#include "fairmatch/engine/registry.h"
#include "fairmatch/rtree/node_store.h"

using namespace fairmatch;

int main() {
  constexpr int kTeams = 30;
  constexpr int kRoster = 5;
  const char* stat_names[5] = {"pts", "reb", "ast", "stl", "blk"};

  auto players = NbaSim(kNbaSize, 1891);  // Naismith
  Rng rng(23);
  FunctionSet teams = GenerateFunctions(kTeams, 5, &rng);
  SetFunctionCapacities(&teams, kRoster);
  AssignmentProblem problem = MakeProblem(players, teams);

  MemNodeStore store(5);
  RTree tree(&store);
  BuildObjectTree(problem, &tree);

  ExecContext ctx;
  MatcherEnv env;
  env.problem = &problem;
  env.tree = &tree;
  env.ctx = &ctx;
  auto matcher = MatcherRegistry::Global().Create("SB", env);
  AssignResult result = matcher->Run();

  std::printf("teams=%d roster=%d player-seasons=%d signed=%zu "
              "(cpu=%.1f ms)\n\n",
              kTeams, kRoster, kNbaSize, result.matching.size(),
              result.stats.cpu_ms);

  // Show the first three teams' rosters with their preference profile.
  for (FunctionId t = 0; t < 3; ++t) {
    const PrefFunction& f = problem.functions[t];
    std::printf("team %d prefers:", t);
    for (int d = 0; d < 5; ++d) {
      std::printf(" %s=%.2f", stat_names[d], f.alpha[d]);
    }
    std::printf("\n");
    for (const MatchPair& pair : result.matching) {
      if (pair.fid != t) continue;
      const Point& p = problem.objects[pair.oid].point;
      std::printf("  player %-6d score=%.3f  stats:", pair.oid, pair.score);
      for (int d = 0; d < 5; ++d) std::printf(" %.2f", p[d]);
      std::printf("\n");
    }
  }

  auto verdict = VerifyStableMatching(problem, result.matching);
  std::printf("\nstability: %s\n",
              verdict.ok ? "OK" : verdict.message.c_str());
  return verdict.ok ? 0 : 1;
}

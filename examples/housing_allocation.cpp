// Public-housing allocation with applicant priorities (Section 6.2).
//
// A housing authority releases apartments; applicants rate size,
// location quality, floor preference and price attractiveness, and hold
// integer priority classes (e.g. years on the waiting list). The
// two-skyline SB variant computes the prioritized stable assignment.
//
// Build & run:   ./build/examples/example_housing_allocation
#include <cstdio>
#include <map>

#include "fairmatch/assign/verifier.h"
#include "fairmatch/common/rng.h"
#include "fairmatch/data/synthetic.h"
#include "fairmatch/engine/registry.h"
#include "fairmatch/rtree/node_store.h"

using namespace fairmatch;

int main() {
  constexpr int kApplicants = 2000;
  constexpr int kApartments = 2500;
  constexpr int kDims = 4;
  constexpr int kMaxPriority = 4;  // waiting-list years, capped
  Rng rng(1979);  // Hylland & Zeckhauser

  auto points =
      GeneratePoints(Distribution::kIndependent, kApartments, kDims, &rng);
  FunctionSet fns = GenerateFunctions(kApplicants, kDims, &rng);
  AssignPriorities(&fns, kMaxPriority, &rng);
  AssignmentProblem problem = MakeProblem(points, fns);

  MemNodeStore store(kDims);
  RTree tree(&store);
  BuildObjectTree(problem, &tree);

  ExecContext ctx;
  MatcherEnv env;
  env.problem = &problem;
  env.tree = &tree;
  env.ctx = &ctx;
  auto matcher = MatcherRegistry::Global().Create("SB-TwoSkylines", env);
  AssignResult result = matcher->Run();

  std::printf("applicants=%d apartments=%d assigned=%zu (cpu=%.1f ms, "
              "loops=%lld)\n",
              kApplicants, kApartments, result.matching.size(),
              result.stats.cpu_ms,
              static_cast<long long>(result.stats.loops));

  // Average achieved quality by priority class: higher classes must do
  // at least as well on their own preferences.
  std::map<int, std::pair<double, int>> by_priority;  // gamma -> (sum, n)
  for (const MatchPair& pair : result.matching) {
    const PrefFunction& f = problem.functions[pair.fid];
    // Normalize out gamma so classes are comparable.
    double quality = pair.score / f.gamma;
    auto& [sum, n] = by_priority[static_cast<int>(f.gamma)];
    sum += quality;
    n++;
  }
  std::printf("mean achieved preference score by priority class:\n");
  for (const auto& [gamma, agg] : by_priority) {
    std::printf("  priority %d: %.4f  (n=%d)\n", gamma,
                agg.first / agg.second, agg.second);
  }

  auto verdict = VerifyStableMatching(problem, result.matching);
  std::printf("stability: %s\n", verdict.ok ? "OK" : verdict.message.c_str());
  return verdict.ok ? 0 : 1;
}

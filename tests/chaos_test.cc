// Chaos suite: seeded storage-fault schedules against the full serving
// stack. The contract under test (server.h "Fault recovery"): storage
// faults surface as typed statuses — never a crash, never an engine
// CHECK — a fault aborts exactly one request, a successful retry is
// byte-identical to a fault-free run, and because every schedule is a
// pure function of (plan seed, request id, attempt), per-request
// outcomes are invariant under lane count and completion order. Part of
// the chaos ctest label: CI runs this under both ASan+UBSan and TSan.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fairmatch/engine/exec_context.h"
#include "fairmatch/engine/registry.h"
#include "fairmatch/topk/disk_function_lists.h"
#include "fairmatch/serve/dataset_registry.h"
#include "fairmatch/serve/server.h"
#include "fairmatch/serve/status.h"
#include "fairmatch/common/rng.h"
#include "fairmatch/storage/disk_manager.h"
#include "fairmatch/storage/fault_injector.h"
#include "fairmatch/update/delta_builder.h"
#include "fairmatch/update/stream_matcher.h"
#include "test_util.h"

namespace fairmatch::serve {
namespace {

using fairmatch::testing::ProblemSpec;
using fairmatch::testing::RandomProblem;
using fairmatch::testing::RunRegisteredMatcher;

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t MatchingHash(const Matching& m) {
  uint64_t h = 1469598103934665603ull;
  for (const MatchPair& p : m) {
    h = Fnv1a(h, static_cast<uint64_t>(p.fid));
    h = Fnv1a(h, static_cast<uint64_t>(p.oid));
  }
  return h;
}

/// The per-request numbers a successful response must reproduce exactly.
struct Fingerprint {
  uint64_t matching_hash;
  int64_t io_accesses;
  uint64_t pairs;
  int64_t loops;

  bool operator==(const Fingerprint& other) const {
    return matching_hash == other.matching_hash &&
           io_accesses == other.io_accesses && pairs == other.pairs &&
           loops == other.loops;
  }
};

Fingerprint OfResponse(const Response& response) {
  return Fingerprint{MatchingHash(response.matching),
                     response.stats.io_accesses, response.stats.pairs,
                     response.stats.loops};
}

Fingerprint OfDirect(const AssignResult& result) {
  return Fingerprint{MatchingHash(result.matching), result.stats.io_accesses,
                     result.stats.pairs, result.stats.loops};
}

/// Smaller than serve_test's problem: chaos requests run many attempts
/// each, and the whole suite repeats under ASan and TSan in CI.
AssignmentProblem SmallProblem(uint64_t seed) {
  ProblemSpec spec;
  spec.num_functions = 20;
  spec.num_objects = 120;
  spec.dims = 3;
  spec.distribution = Distribution::kAntiCorrelated;
  spec.seed = seed;
  spec.max_gamma = 3;
  return RandomProblem(spec);
}

/// A per-access fault rate calibrated so one full fault-free run sees
/// `expected` faults on average: rates are meaningful relative to how
/// many physical accesses a run makes (tens of thousands here), and
/// deriving them from the measured fault-free I/O keeps the schedule
/// deterministic while staying robust to problem-shape tweaks.
double RatePerRun(double expected, const Fingerprint& oracle) {
  return expected / static_cast<double>(oracle.io_accesses);
}

// --- the injector itself ---------------------------------------------

TEST(FaultInjectorTest, SameSeedReplaysTheSameSchedule) {
  FaultInjectorOptions plan;
  plan.seed = 1234;
  plan.read_fail_rate = 0.3;
  plan.corrupt_rate = 0.2;
  plan.write_fail_rate = 0.2;
  plan.spike_rate = 0.25;  // spike_us stays 0: decisions only, no sleeps

  // One character per access: 'x' failed, 'c' delivered corrupt bytes,
  // 'o' clean.
  auto drive = [](FaultInjector* injector) {
    std::string trace;
    PageData page, reference;
    std::memset(reference.bytes, 0x5a, kPageSize);
    for (int i = 0; i < 200; ++i) {
      std::memcpy(page.bytes, reference.bytes, kPageSize);
      int spike_us = 0;
      const Status status =
          i % 2 == 0
              ? injector->OnRead(static_cast<PageId>(i), page.bytes, &spike_us)
              : injector->OnWrite(static_cast<PageId>(i), &spike_us);
      if (!status.ok()) {
        trace += 'x';
      } else if (std::memcmp(page.bytes, reference.bytes, kPageSize) != 0) {
        trace += 'c';
      } else {
        trace += 'o';
      }
    }
    return trace;
  };

  FaultInjector a(plan), b(plan);
  const std::string trace = drive(&a);
  EXPECT_EQ(trace, drive(&b));
  EXPECT_EQ(a.counters().read_failures, b.counters().read_failures);
  EXPECT_EQ(a.counters().corruptions, b.counters().corruptions);
  EXPECT_EQ(a.counters().write_failures, b.counters().write_failures);
  EXPECT_EQ(a.counters().spikes, b.counters().spikes);
  EXPECT_GT(a.counters().injected(), 0);
  EXPECT_GT(a.counters().spikes, 0);

  FaultInjectorOptions reseeded = plan;
  reseeded.seed = 4321;
  FaultInjector c(reseeded);
  EXPECT_NE(trace, drive(&c)) << "schedule must depend on the seed";
}

TEST(FaultInjectorTest, DeriveSeedSeparatesRequestAndAttemptCoordinates) {
  const uint64_t base = 42;
  EXPECT_EQ(FaultInjector::DeriveSeed(base, 7, 1),
            FaultInjector::DeriveSeed(base, 7, 1));
  EXPECT_NE(FaultInjector::DeriveSeed(base, 7, 1),
            FaultInjector::DeriveSeed(base, 7, 2));
  EXPECT_NE(FaultInjector::DeriveSeed(base, 7, 1),
            FaultInjector::DeriveSeed(base, 8, 1));
  EXPECT_NE(FaultInjector::DeriveSeed(base, 7, 1),
            FaultInjector::DeriveSeed(base + 1, 7, 1));
  EXPECT_NE(FaultInjector::DeriveSeed(base, 7, 1),
            FaultInjector::DeriveSeed(base, 1, 7));
}

// --- the disk under faults -------------------------------------------

TEST(DiskFaultTest, InjectedReadFailureZeroFillsReportsAndLeavesPageIntact) {
  DiskManager disk;
  const PageId pid = disk.AllocatePage();
  PageData pattern;
  std::memset(pattern.bytes, 0x7e, kPageSize);
  ASSERT_TRUE(disk.WritePage(pid, pattern.bytes).ok());

  FaultInjectorOptions plan;
  plan.seed = 9;
  plan.read_fail_rate = 1.0;
  FaultInjector injector(plan);
  ErrorSink sink;
  disk.set_fault_injector(&injector);
  disk.set_error_sink(&sink);

  PageData out;
  const Status status = disk.ReadPage(pid, out.bytes);
  EXPECT_EQ(status.code, ErrorCode::kUnavailable);
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(out.bytes[i], std::byte{0}) << "byte " << i;
  }
  EXPECT_TRUE(sink.failed());
  EXPECT_EQ(sink.status().code, ErrorCode::kUnavailable);
  EXPECT_EQ(injector.counters().read_failures, 1);

  // Transfer fault only: with the injector detached the stored page is
  // intact, which is what makes retries able to succeed.
  disk.set_fault_injector(nullptr);
  ASSERT_TRUE(disk.ReadPage(pid, out.bytes).ok());
  EXPECT_EQ(std::memcmp(out.bytes, pattern.bytes, kPageSize), 0);
}

TEST(DiskFaultTest, ChecksumVerificationTurnsCorruptionIntoDataLoss) {
  DiskManager disk;
  disk.set_verify_checksums(true);
  const PageId pid = disk.AllocatePage();
  PageData pattern;
  std::memset(pattern.bytes, 0x31, kPageSize);
  ASSERT_TRUE(disk.WritePage(pid, pattern.bytes).ok());

  FaultInjectorOptions plan;
  plan.seed = 11;
  plan.corrupt_rate = 1.0;
  FaultInjector injector(plan);
  ErrorSink sink;
  disk.set_fault_injector(&injector);
  disk.set_error_sink(&sink);

  PageData out;
  const Status status = disk.ReadPage(pid, out.bytes);
  EXPECT_EQ(status.code, ErrorCode::kDataLoss);
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(out.bytes[i], std::byte{0}) << "byte " << i;
  }
  EXPECT_EQ(sink.status().code, ErrorCode::kDataLoss);
  EXPECT_EQ(injector.counters().corruptions, 1);

  disk.set_fault_injector(nullptr);
  ASSERT_TRUE(disk.ReadPage(pid, out.bytes).ok());
  EXPECT_EQ(std::memcmp(out.bytes, pattern.bytes, kPageSize), 0);
}

TEST(DiskFaultTest, CorruptionWithoutChecksumsIsSilentlyConsumed) {
  DiskManager disk;  // verify_checksums off: the seed-parity default
  const PageId pid = disk.AllocatePage();
  PageData pattern;
  std::memset(pattern.bytes, 0x44, kPageSize);
  ASSERT_TRUE(disk.WritePage(pid, pattern.bytes).ok());

  FaultInjectorOptions plan;
  plan.seed = 13;
  plan.corrupt_rate = 1.0;
  FaultInjector injector(plan);
  ErrorSink sink;
  disk.set_fault_injector(&injector);
  disk.set_error_sink(&sink);

  PageData out;
  EXPECT_TRUE(disk.ReadPage(pid, out.bytes).ok());
  EXPECT_NE(std::memcmp(out.bytes, pattern.bytes, kPageSize), 0)
      << "the flipped bytes should be delivered";
  EXPECT_FALSE(sink.failed()) << "undetectable corruption must not report";
  EXPECT_EQ(injector.counters().corruptions, 1);
}

// --- the serving sweep -----------------------------------------------

const std::vector<std::string>& ChaosMatchers() {
  static const std::vector<std::string> kMatchers = {
      "SB", "SB-alt", "SB-TwoSkylines", "BruteForce"};
  return kMatchers;
}

constexpr int kSweepRounds = 2;

/// Per-request outcome facts that must be lane-invariant.
struct ChaosRecord {
  ServeCode code = ServeCode::kOk;
  int attempts = 0;
  int64_t faults = 0;
  Fingerprint fp{0, 0, 0, 0};
};

struct SweepResult {
  std::vector<ChaosRecord> records;
  ServerCounters counters;
};

/// Submits kSweepRounds rounds of every chaos matcher (disk-resident
/// functions: the lane workspace disk is the fault surface) against one
/// shared resident dataset, waits them all, closes, and snapshots.
SweepResult RunChaosSweep(DatasetRegistry* registry, double rate, int lanes) {
  ServerOptions options;
  options.lanes = lanes;
  options.max_attempts = 3;
  options.fault_plan.seed = 0xC0FFEE;
  options.fault_plan.read_fail_rate = rate / 2;
  options.fault_plan.corrupt_rate = rate / 2;
  options.fault_plan.write_fail_rate = rate / 4;
  Server server(registry, options);

  std::vector<ResponseFuture> futures;
  for (int round = 0; round < kSweepRounds; ++round) {
    for (const std::string& name : ChaosMatchers()) {
      Request request;
      request.dataset = "ds";
      request.matcher = name;
      request.disk_resident_functions = true;
      futures.push_back(server.Submit(request));
    }
  }

  SweepResult result;
  for (ResponseFuture& future : futures) {
    const Response& response = future.Wait();
    if (!response.status.ok()) {
      EXPECT_TRUE(response.matching.empty())
          << "a failed response must not carry a partial matching";
      EXPECT_EQ(response.stats.pairs, 0u);
    }
    ChaosRecord record;
    record.code = response.status.code;
    record.attempts = response.attempts;
    record.faults = response.injected_faults;
    record.fp = OfResponse(response);
    result.records.push_back(record);
  }
  server.Close();
  EXPECT_EQ(server.queue_depth(), 0u);
  result.counters = server.counters();
  return result;
}

TEST(ChaosSweepTest, TypedStatusesLaneInvarianceAndByteIdenticalSuccesses) {
  const AssignmentProblem problem = SmallProblem(61000);
  DatasetRegistry registry;
  registry.Open("ds", problem);

  std::map<std::string, Fingerprint> oracle;
  for (const std::string& name : ChaosMatchers()) {
    ExecContext ctx;
    oracle[name] = OfDirect(
        RunRegisteredMatcher(name, problem, &ctx,
                             /*force_disk_functions=*/true));
  }

  // The middle rate yields a mix of successes, recovered retries and
  // exhausted requests; the top one mostly failures.
  int64_t total_faults = 0;
  const Fingerprint& sb = oracle["SB"];
  for (const double rate : {0.0, RatePerRun(1.5, sb), RatePerRun(15.0, sb)}) {
    const SweepResult lane1 = RunChaosSweep(&registry, rate, 1);
    const SweepResult lane4 = RunChaosSweep(&registry, rate, 4);
    const size_t n = kSweepRounds * ChaosMatchers().size();
    ASSERT_EQ(lane1.records.size(), n);
    ASSERT_EQ(lane4.records.size(), n);

    for (size_t i = 0; i < n; ++i) {
      const std::string& name = ChaosMatchers()[i % ChaosMatchers().size()];
      const ChaosRecord& record = lane1.records[i];

      // Typed, always: a fault class the layer above can act on.
      EXPECT_TRUE(record.code == ServeCode::kOk ||
                  record.code == ServeCode::kUnavailable ||
                  record.code == ServeCode::kDataLoss)
          << name << " at rate " << rate << ": "
          << ServeCodeName(record.code);

      // A success — first try or retried — is byte-identical to the
      // fault-free direct run.
      if (record.code == ServeCode::kOk) {
        EXPECT_TRUE(record.fp == oracle[name])
            << name << " at rate " << rate
            << ": OK response diverged from the fault-free oracle";
      }
      if (rate == 0.0) {
        EXPECT_EQ(record.code, ServeCode::kOk) << name;
        EXPECT_EQ(record.attempts, 1) << name;
        EXPECT_EQ(record.faults, 0) << name;
      }

      // The schedule is per (request id, attempt): outcomes must not
      // depend on how many lanes raced the queue.
      const ChaosRecord& other = lane4.records[i];
      EXPECT_EQ(record.code, other.code) << name << " at rate " << rate;
      EXPECT_EQ(record.attempts, other.attempts) << name;
      EXPECT_EQ(record.faults, other.faults) << name;
      EXPECT_TRUE(record.fp == other.fp) << name;
      total_faults += record.faults;
    }

    EXPECT_EQ(lane1.counters.accepted, static_cast<int64_t>(n));
    EXPECT_EQ(lane1.counters.completed, static_cast<int64_t>(n));
    EXPECT_EQ(lane1.counters.rejected, 0);
    EXPECT_EQ(lane1.counters.retries, lane4.counters.retries);
    EXPECT_EQ(lane1.counters.data_loss, lane4.counters.data_loss);
    EXPECT_EQ(lane1.counters.deadline_exceeded, 0);
  }
  EXPECT_GT(total_faults, 0) << "the sweep never injected anything";
}

TEST(ChaosRetryTest, SuccessfulRetriesAreByteIdenticalToFaultFreeRuns) {
  const AssignmentProblem problem = SmallProblem(62000);
  DatasetRegistry registry;
  registry.Open("ds", problem);
  ExecContext ctx;
  const Fingerprint oracle = OfDirect(
      RunRegisteredMatcher("SB", problem, &ctx,
                           /*force_disk_functions=*/true));

  ServerOptions options;
  options.lanes = 2;
  options.max_attempts = 6;
  // ~0.7 expected faults per attempt puts single-attempt success near a
  // coin flip, so a handful of requests is enough to observe
  // recovery-by-retry.
  options.fault_plan.seed = 909;
  options.fault_plan.read_fail_rate = RatePerRun(0.35, oracle);
  options.fault_plan.corrupt_rate = RatePerRun(0.35, oracle);
  Server server(&registry, options);

  Request request;
  request.dataset = "ds";
  request.matcher = "SB";
  request.disk_resident_functions = true;

  int retried_successes = 0;
  for (int i = 0; i < 12; ++i) {
    const Response response = server.Execute(request);
    if (!response.status.ok()) continue;
    EXPECT_TRUE(OfResponse(response) == oracle)
        << "request " << i << " (attempts=" << response.attempts << ")";
    if (response.attempts > 1) {
      ++retried_successes;
      EXPECT_GT(response.injected_faults, 0) << "request " << i;
    } else {
      // A first-try success by definition saw no result-affecting fault.
      EXPECT_EQ(response.injected_faults, 0) << "request " << i;
    }
  }
  EXPECT_GT(retried_successes, 0)
      << "no request recovered via retry; re-seed the plan";
  EXPECT_GT(server.counters().retries, 0);
}

/// Re-derives one server attempt's fault schedule offline and replays
/// it in the attempt's exact environment: fresh DiskManager with
/// checksums on, injector wired before the DiskFunctionStore is built
/// (its page writes are part of the schedule), the resident tree, the
/// request's buffer fraction. Returns that attempt's injected() count.
int64_t ReplayedAttemptFaults(const ResidentDataset& dataset,
                              const FaultInjectorOptions& base_plan,
                              const Request& request, uint64_t request_id,
                              int attempt) {
  FaultInjectorOptions plan = base_plan;
  plan.seed = FaultInjector::DeriveSeed(base_plan.seed, request_id,
                                        static_cast<uint64_t>(attempt));
  FaultInjector injector(plan);
  DiskManager disk;
  ExecContext ctx;
  disk.set_error_sink(&ctx.errors());
  disk.set_fault_injector(&injector);
  disk.set_verify_checksums(true);
  DiskFunctionStore fstore(dataset.problem().functions,
                           request.buffer_fraction, &ctx.counters(), &disk);
  MatcherEnv env;
  env.problem = &dataset.problem();
  env.tree = dataset.tree();
  env.buffer_fraction = request.buffer_fraction;
  env.ctx = &ctx;
  env.fn_store = &fstore;
  auto matcher = MatcherRegistry::Global().Create(request.matcher, env);
  if (matcher == nullptr) return -1;
  matcher->Run();
  return injector.counters().injected();
}

// Response.injected_faults is documented as the result-affecting fault
// total "across all attempts". Because every attempt's schedule is the
// pure function (plan seed, request id, attempt) and every attempt
// runs in an observably fresh workspace, that total must equal the sum
// of per-attempt injector counts replayed offline — if the server
// under- or over-accounted (dropped a failed attempt's counters,
// double-added a retry), the books would not balance.
TEST(ChaosAccountingTest, InjectedFaultsEqualThePerAttemptScheduleSum) {
  const AssignmentProblem problem = SmallProblem(64000);
  DatasetRegistry registry;
  registry.Open("ds", problem);
  ExecContext ctx;
  const Fingerprint oracle = OfDirect(
      RunRegisteredMatcher("SB", problem, &ctx,
                           /*force_disk_functions=*/true));

  ServerOptions options;
  options.lanes = 2;
  options.max_attempts = 6;
  options.fault_plan.seed = 515;
  options.fault_plan.read_fail_rate = RatePerRun(0.4, oracle);
  options.fault_plan.corrupt_rate = RatePerRun(0.4, oracle);
  Server server(&registry, options);

  Request request;
  request.dataset = "ds";
  request.matcher = "SB";
  request.disk_resident_functions = true;

  DatasetHandle handle = registry.Find("ds");
  ASSERT_NE(handle, nullptr);
  int multi_attempt = 0;
  int64_t total = 0;
  for (int i = 0; i < 10; ++i) {
    const Response response = server.Execute(request);
    ASSERT_GT(response.attempts, 0) << "request " << i << " never ran";
    int64_t want = 0;
    for (int attempt = 1; attempt <= response.attempts; ++attempt) {
      const int64_t replayed = ReplayedAttemptFaults(
          *handle, options.fault_plan, request, response.request_id, attempt);
      ASSERT_GE(replayed, 0);
      want += replayed;
    }
    EXPECT_EQ(response.injected_faults, want)
        << "request " << i << " (" << response.attempts << " attempts)";
    total += response.injected_faults;
    if (response.attempts > 1) ++multi_attempt;
  }
  EXPECT_GT(multi_attempt, 0)
      << "no request retried; the accounting claim was not exercised";
  EXPECT_GT(total, 0);
}

TEST(ChaosSpikeTest, LatencySpikesNeverAffectResults) {
  const AssignmentProblem problem = SmallProblem(63000);
  DatasetRegistry registry;
  registry.Open("ds", problem);

  ServerOptions options;
  options.lanes = 2;
  options.fault_plan.seed = 7;
  options.fault_plan.spike_rate = 0.3;
  options.fault_plan.spike_us = 50;
  Server server(&registry, options);

  for (const std::string& name : ChaosMatchers()) {
    ExecContext ctx;
    const Fingerprint oracle = OfDirect(
        RunRegisteredMatcher(name, problem, &ctx,
                             /*force_disk_functions=*/true));
    Request request;
    request.dataset = "ds";
    request.matcher = name;
    request.disk_resident_functions = true;
    const Response response = server.Execute(request);
    ASSERT_TRUE(response.status.ok()) << name;
    EXPECT_EQ(response.attempts, 1) << name;
    EXPECT_EQ(response.injected_faults, 0)
        << name << ": spikes only cost time";
    EXPECT_TRUE(OfResponse(response) == oracle) << name;
  }
}

// --- health ----------------------------------------------------------

TEST(ChaosHealthTest, ConsecutiveDataLossShedsUntilResetOrSuccess) {
  const AssignmentProblem problem = SmallProblem(65000);
  DatasetRegistry registry;
  registry.Open("ds", problem);

  ServerOptions options;
  options.lanes = 1;
  options.max_attempts = 2;
  options.health_threshold = 2;
  options.fault_plan.seed = 5;
  options.fault_plan.corrupt_rate = 1.0;  // every read corrupt + detected
  Server server(&registry, options);

  Request faulted;
  faulted.dataset = "ds";
  faulted.matcher = "SB";
  faulted.disk_resident_functions = true;  // touches the faulted disk
  Request memory_only;
  memory_only.dataset = "ds";
  memory_only.matcher = "SB";  // no disk access: cannot fault

  const Response first = server.Execute(faulted);
  EXPECT_EQ(first.status.code, ServeCode::kDataLoss);
  EXPECT_EQ(first.attempts, 2) << "both attempts should be burned";
  EXPECT_GT(first.injected_faults, 0);
  EXPECT_TRUE(first.matching.empty());

  // A success in between clears the streak...
  EXPECT_TRUE(server.Execute(memory_only).status.ok());

  // ...so the threshold needs two fresh consecutive data losses.
  EXPECT_EQ(server.Execute(faulted).status.code, ServeCode::kDataLoss);
  EXPECT_EQ(server.Execute(faulted).status.code, ServeCode::kDataLoss);

  // Shedding applies to the dataset, healthy requests included.
  const Response shed = server.Execute(memory_only);
  EXPECT_EQ(shed.status.code, ServeCode::kUnavailable);
  EXPECT_NE(shed.status.message.find("shedding"), std::string::npos)
      << shed.status.message;
  EXPECT_EQ(shed.attempts, 0);
  EXPECT_EQ(server.counters().shed, 1);

  server.ResetHealth("ds");
  EXPECT_TRUE(server.Execute(memory_only).status.ok());

  server.Close();
  EXPECT_EQ(server.counters().data_loss, 3);
  EXPECT_EQ(server.counters().shed, 1);
}

// --- deadlines -------------------------------------------------------

TEST(ChaosDeadlineTest, ExpiredDeadlineAbortsDirectRunAtCancellationPoint) {
  const AssignmentProblem problem = SmallProblem(64000);
  ExecContext ctx;
  ctx.set_deadline(std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1));
  const AssignResult result = RunRegisteredMatcher("SB", problem, &ctx);
  EXPECT_EQ(result.status.code, ErrorCode::kDeadlineExceeded);
  EXPECT_TRUE(result.matching.empty())
      << "the first cancellation point precedes any assignment";
}

/// Spins at a cancellation point until the run deadline trips (bounded
/// so a missing deadline cannot hang the suite).
class SleeperMatcher : public Matcher {
 public:
  explicit SleeperMatcher(ExecContext* ctx) : ctx_(ctx) {}
  std::string Name() const override { return "Sleeper"; }
  AssignResult Run() override {
    AssignResult result;
    result.stats.algorithm = "Sleeper";
    if (ctx_ == nullptr) return result;
    for (int i = 0; i < 50000 && !ctx_->ShouldAbort(); ++i) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    result.status = ctx_->status();
    return result;
  }

 private:
  ExecContext* ctx_;
};

/// Registers the sleeper stub (before any server lane exists — Register
/// is not synchronized).
void RegisterSleeperMatcher() {
  MatcherInfo info;
  info.name = "Sleeper";
  info.description = "test stub: spins at a cancellation point until aborted";
  info.factory = [](const MatcherEnv& env) {
    return std::make_unique<SleeperMatcher>(env.ctx);
  };
  MatcherRegistry::Global().Register(std::move(info));
}

TEST(ChaosDeadlineTest, DeadlinesTripMidRunAndInQueue) {
  const AssignmentProblem problem = SmallProblem(66000);
  DatasetRegistry registry;
  registry.Open("ds", problem);
  RegisterSleeperMatcher();

  ServerOptions options;
  options.lanes = 1;
  Server server(&registry, options);

  // The sleeper occupies the single lane until its own deadline cancels
  // it mid-run; the request queued behind it overstays its deadline
  // before a lane ever picks it up.
  Request slow;
  slow.dataset = "ds";
  slow.matcher = "Sleeper";
  slow.deadline_ms = 200.0;
  Request quick;
  quick.dataset = "ds";
  quick.matcher = "SB";
  quick.deadline_ms = 1.0;
  ResponseFuture running = server.Submit(slow);
  ResponseFuture queued = server.Submit(quick);

  const Response& mid_run = running.Wait();
  EXPECT_EQ(mid_run.status.code, ServeCode::kDeadlineExceeded);
  EXPECT_EQ(mid_run.attempts, 1) << "it ran, and was cancelled mid-run";
  EXPECT_TRUE(mid_run.matching.empty());

  const Response& expired = queued.Wait();
  EXPECT_EQ(expired.status.code, ServeCode::kDeadlineExceeded);
  EXPECT_EQ(expired.attempts, 0) << "it must never have run";
  EXPECT_GE(expired.queue_ms, 1.0);
  EXPECT_TRUE(expired.matching.empty());

  server.Close();
  EXPECT_EQ(server.counters().deadline_exceeded, 2);
}

TEST(ChaosDeadlineTest, DeadlineIsTerminalEvenWithRetriesConfigured) {
  const AssignmentProblem problem = SmallProblem(67000);
  DatasetRegistry registry;
  registry.Open("ds", problem);
  RegisterSleeperMatcher();

  ServerOptions options;
  options.lanes = 1;
  options.max_attempts = 5;
  options.retry_backoff_ms = 1.0;
  Server server(&registry, options);

  Request slow;
  slow.dataset = "ds";
  slow.matcher = "Sleeper";
  slow.deadline_ms = 50.0;
  const Response response = server.Execute(slow);
  EXPECT_EQ(response.status.code, ServeCode::kDeadlineExceeded);
  EXPECT_EQ(response.attempts, 1)
      << "an expired deadline must not be retried";
}

// ---------------------------------------------------------------------
// Update-under-faults: DeltaBuilder::Apply with an injector attached
// must be all-or-nothing. A faulted Apply returns a typed status
// (kUnavailable for injected read/write failures — never a crash, never
// an engine CHECK) and leaves the builder on the old epoch with every
// queryable byte unchanged; an Apply that survives its schedule commits
// a full epoch that passes the update-vs-rebuild differential.
//
// corrupt_rate stays 0 here on purpose: the in-memory tree pages carry
// no checksum, so corruption outside the node header would pass the
// structural IsWellFormed() screen undetected and break the success-
// path differential. Header damage IS screened (typed kDataLoss) —
// that path is exercised directly below with a hand-damaged page.
// ---------------------------------------------------------------------

update::UpdateBatch ChaosBatch(const AssignmentProblem& problem, Rng* rng) {
  update::UpdateBatch batch;
  const int num_objects = static_cast<int>(problem.objects.size());
  batch.delete_objects.push_back(
      static_cast<ObjectId>(rng->UniformInt(0, num_objects / 2)));
  batch.delete_objects.push_back(static_cast<ObjectId>(
      rng->UniformInt(num_objects / 2 + 1, num_objects - 1)));
  for (int i = 0; i < 6; ++i) {
    ObjectItem o;
    o.point = Point(problem.dims);
    for (int d = 0; d < problem.dims; ++d) {
      o.point[d] = static_cast<float>(rng->Uniform());
    }
    batch.insert_objects.push_back(o);
  }
  return batch;
}

TEST(ChaosUpdateTest, ApplyUnderFaultsCommitsFullyOrNotAtAll) {
  int committed = 0;
  int rejected = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (double rate : {0.005, 0.05}) {
      ProblemSpec spec;
      spec.seed = seed + 4000;
      spec.num_objects = 70;
      AssignmentProblem problem = RandomProblem(spec);
      DatasetRegistry registry;
      DatasetHandle base = registry.Open("chaos-update", problem);

      FaultInjectorOptions fopts;
      fopts.seed = seed * 977 + static_cast<uint64_t>(rate * 10000);
      fopts.read_fail_rate = rate;
      fopts.write_fail_rate = rate;
      fopts.spike_rate = 0.02;
      fopts.spike_us = 50;
      FaultInjector injector(fopts);

      update::DeltaOptions options;
      options.injector = &injector;
      update::DeltaBuilder builder(base, options);

      Rng rng(seed * 13 + 7);
      for (int step = 0; step < 3; ++step) {
        const DatasetHandle before = builder.current();
        const std::vector<ObjectRecord> before_scan =
            before->tree()->ScanAll();
        const uint64_t before_hash =
            MatchingHash(update::RunOnDataset(*before, "SB").matching);

        const ServeStatus status =
            builder.Apply(ChaosBatch(before->problem(), &rng), nullptr);
        if (status.ok()) {
          ++committed;
          // Full-commit leg of the contract: the new epoch passes the
          // update-vs-rebuild differential.
          const AssignmentProblem& now = builder.current()->problem();
          EXPECT_EQ(MatchingHash(
                        update::RunOnDataset(*builder.current(), "SB")
                            .matching),
                    MatchingHash(RunRegisteredMatcher("SB", now).matching));
          continue;
        }
        ++rejected;
        EXPECT_TRUE(status.code == ServeCode::kUnavailable ||
                    status.code == ServeCode::kDataLoss)
            << status.message;
        // Atomicity leg: the builder still names the identical epoch
        // object, and the old epoch is byte-for-byte untouched.
        ASSERT_EQ(builder.current().get(), before.get());
        const std::vector<ObjectRecord> after_scan =
            before->tree()->ScanAll();
        ASSERT_EQ(after_scan.size(), before_scan.size());
        for (size_t i = 0; i < after_scan.size(); ++i) {
          EXPECT_EQ(after_scan[i].id, before_scan[i].id);
          for (int d = 0; d < before->problem().dims; ++d) {
            EXPECT_EQ(after_scan[i].point[d], before_scan[i].point[d]);
          }
        }
        EXPECT_EQ(MatchingHash(update::RunOnDataset(*before, "SB").matching),
                  before_hash);
      }
    }
  }
  // The sweep must actually exercise both legs of the contract.
  EXPECT_GT(committed, 0) << "every Apply faulted; lower the rates";
  EXPECT_GT(rejected, 0) << "no Apply faulted; raise the rates";
}

TEST(ChaosUpdateTest, DamagedClonePageIsTypedDataLoss) {
  ProblemSpec spec;
  spec.seed = 4100;
  // The node header (level + count) is 4 bytes of a 4 KiB page, so a
  // large tree keeps the expected probes-to-hit low.
  spec.num_objects = 4000;
  const AssignmentProblem problem = RandomProblem(spec);
  DatasetRegistry registry;
  DatasetHandle base = registry.Open("chaos-damage", problem);

  // Corruption lands at schedule-determined offsets, so any single
  // schedule may miss every node header. Probe schedules until one
  // damages a header, which the structural screen must convert into
  // kDataLoss — not a crash, not a silent commit. The batch is
  // function-only: a schedule whose damage misses every header commits
  // without a single tree edit, so the probe never traverses a
  // corrupted clone and cannot crash.
  bool found = false;
  for (uint64_t seed = 1; seed <= 400 && !found; ++seed) {
    FaultInjectorOptions fopts;
    fopts.seed = seed;
    fopts.corrupt_rate = 1.0;
    FaultInjector injector(fopts);

    update::DeltaOptions options;
    options.injector = &injector;
    update::DeltaBuilder builder(base, options);

    update::UpdateBatch batch;
    batch.delete_functions.push_back(0);
    const ServeStatus status = builder.Apply(batch, nullptr);
    if (status.code == ServeCode::kDataLoss) {
      found = true;
      EXPECT_EQ(builder.current().get(), base.get())
          << "a detected damaged clone must not advance the epoch";
    } else {
      EXPECT_TRUE(status.ok()) << status.message;
    }
  }
  EXPECT_TRUE(found) << "no schedule damaged a node header in 64 tries";
}

}  // namespace
}  // namespace fairmatch::serve

// Tests for the workload generators.
#include <gtest/gtest.h>

#include <cmath>

#include "fairmatch/data/real_sim.h"
#include "fairmatch/data/synthetic.h"

namespace fairmatch {
namespace {

double PairwiseDimCorrelation(const std::vector<Point>& points) {
  // Average Pearson correlation between dimension 0 and the others.
  const int dims = points[0].dims();
  const int n = static_cast<int>(points.size());
  std::vector<double> mean(dims, 0.0);
  for (const Point& p : points) {
    for (int d = 0; d < dims; ++d) mean[d] += p[d];
  }
  for (int d = 0; d < dims; ++d) mean[d] /= n;
  double total = 0.0;
  int count = 0;
  for (int d = 1; d < dims; ++d) {
    double cov = 0.0, var0 = 0.0, vard = 0.0;
    for (const Point& p : points) {
      double a = p[0] - mean[0];
      double b = p[d] - mean[d];
      cov += a * b;
      var0 += a * a;
      vard += b * b;
    }
    total += cov / std::sqrt(var0 * vard + 1e-12);
    count++;
  }
  return total / count;
}

TEST(SyntheticTest, PointsInUnitCube) {
  Rng rng(1);
  for (auto dist : {Distribution::kIndependent, Distribution::kCorrelated,
                    Distribution::kAntiCorrelated}) {
    auto points = GeneratePoints(dist, 2000, 4, &rng);
    ASSERT_EQ(points.size(), 2000u);
    for (const Point& p : points) {
      for (int d = 0; d < 4; ++d) {
        EXPECT_GE(p[d], 0.0f);
        EXPECT_LE(p[d], 1.0f);
      }
    }
  }
}

TEST(SyntheticTest, CorrelationSigns) {
  Rng rng(2);
  auto indep = GeneratePoints(Distribution::kIndependent, 8000, 3, &rng);
  auto corr = GeneratePoints(Distribution::kCorrelated, 8000, 3, &rng);
  auto anti = GeneratePoints(Distribution::kAntiCorrelated, 8000, 3, &rng);
  EXPECT_NEAR(PairwiseDimCorrelation(indep), 0.0, 0.08);
  EXPECT_GT(PairwiseDimCorrelation(corr), 0.5);
  EXPECT_LT(PairwiseDimCorrelation(anti), -0.2);
}

TEST(SyntheticTest, AntiCorrelatedHasLargerSkyline) {
  Rng rng(3);
  auto corr = GeneratePoints(Distribution::kCorrelated, 3000, 3, &rng);
  auto anti = GeneratePoints(Distribution::kAntiCorrelated, 3000, 3, &rng);
  auto skyline_size = [](const std::vector<Point>& pts) {
    int count = 0;
    for (size_t i = 0; i < pts.size(); ++i) {
      bool dominated = false;
      for (size_t j = 0; j < pts.size() && !dominated; ++j) {
        dominated = j != i && pts[j].Dominates(pts[i]);
      }
      if (!dominated) count++;
    }
    return count;
  };
  EXPECT_GT(skyline_size(anti), 4 * skyline_size(corr));
}

TEST(SyntheticTest, FunctionsNormalized) {
  Rng rng(4);
  FunctionSet fns = GenerateFunctions(500, 5, &rng);
  for (const PrefFunction& f : fns) {
    double total = 0.0;
    for (int d = 0; d < 5; ++d) {
      EXPECT_GE(f.alpha[d], 0.0);
      total += f.alpha[d];
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_EQ(f.gamma, 1.0);
    EXPECT_EQ(f.capacity, 1);
  }
}

TEST(SyntheticTest, ClusteredFunctionsConcentrate) {
  Rng rng(5);
  // One cluster with tiny spread: weights nearly identical.
  FunctionSet one = GenerateClusteredFunctions(200, 4, 1, 0.01, &rng);
  double min0 = 1.0, max0 = 0.0;
  for (const PrefFunction& f : one) {
    min0 = std::min(min0, f.alpha[0]);
    max0 = std::max(max0, f.alpha[0]);
  }
  EXPECT_LT(max0 - min0, 0.25);
  // Normalization preserved.
  for (const PrefFunction& f : one) {
    double total = 0.0;
    for (int d = 0; d < 4; ++d) total += f.alpha[d];
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(SyntheticTest, PrioritiesInRange) {
  Rng rng(6);
  FunctionSet fns = GenerateFunctions(300, 3, &rng);
  AssignPriorities(&fns, 8, &rng);
  bool saw_low = false, saw_high = false;
  for (const PrefFunction& f : fns) {
    EXPECT_GE(f.gamma, 1.0);
    EXPECT_LE(f.gamma, 8.0);
    EXPECT_EQ(f.gamma, std::floor(f.gamma));
    saw_low |= f.gamma == 1.0;
    saw_high |= f.gamma == 8.0;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(SyntheticTest, DeterministicBySeed) {
  Rng a(7), b(7);
  auto pa = GeneratePoints(Distribution::kAntiCorrelated, 100, 4, &a);
  auto pb = GeneratePoints(Distribution::kAntiCorrelated, 100, 4, &b);
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
}

TEST(SyntheticTest, ParseDistributionNames) {
  EXPECT_EQ(ParseDistribution("independent"), Distribution::kIndependent);
  EXPECT_EQ(ParseDistribution("corr"), Distribution::kCorrelated);
  EXPECT_EQ(ParseDistribution("anti"), Distribution::kAntiCorrelated);
  EXPECT_STREQ(DistributionName(Distribution::kAntiCorrelated),
               "anti-correlated");
}

TEST(RealSimTest, ZillowShape) {
  auto points = ZillowSim(20000, 99);
  ASSERT_EQ(points.size(), 20000u);
  for (const Point& p : points) {
    ASSERT_EQ(p.dims(), 5);
    for (int d = 0; d < 5; ++d) {
      ASSERT_GE(p[d], 0.0f);
      ASSERT_LE(p[d], 1.0f);
    }
  }
  // Discrete room attributes produce heavy duplication (skew).
  std::set<float> bathrooms;
  for (const Point& p : points) bathrooms.insert(p[0]);
  EXPECT_LE(bathrooms.size(), 8u);
  // Rooms correlate with living area.
  double corr = PairwiseDimCorrelation(points);
  EXPECT_GT(corr, 0.15);
}

TEST(RealSimTest, NbaShape) {
  auto points = NbaSim(kNbaSize, 42);
  ASSERT_EQ(points.size(), static_cast<size_t>(kNbaSize));
  // Heavy tail: the best scorer is far above the median.
  std::vector<float> pts;
  for (const Point& p : points) pts.push_back(p[0]);
  std::sort(pts.begin(), pts.end());
  float median = pts[pts.size() / 2];
  float top = pts.back();
  EXPECT_GT(top, 4 * median);
  // Stats positively correlated through skill.
  EXPECT_GT(PairwiseDimCorrelation(points), 0.2);
}

TEST(RealSimTest, Deterministic) {
  auto a = ZillowSim(500, 7);
  auto b = ZillowSim(500, 7);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  auto c = NbaSim(500, 7);
  auto d = NbaSim(500, 7);
  for (size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c[i], d[i]);
}

}  // namespace
}  // namespace fairmatch

// End-to-end integration tests on the paged (counted-I/O) storage:
// cross-algorithm agreement at moderate scale, the paper's headline I/O
// ordering, and buffer-size behavior.
#include <gtest/gtest.h>

#include "fairmatch/assign/brute_force.h"
#include "fairmatch/assign/chain.h"
#include "fairmatch/assign/sb.h"
#include "fairmatch/assign/verifier.h"
#include "fairmatch/data/real_sim.h"
#include "fairmatch/data/synthetic.h"
#include "test_util.h"

namespace fairmatch {
namespace {

using fairmatch::testing::ProblemSpec;
using fairmatch::testing::RandomProblem;

struct PagedRun {
  Matching matching;
  int64_t io = 0;
};

PagedRun RunSBPaged(const AssignmentProblem& problem, double buffer) {
  PagedNodeStore store(problem.dims, 1024);
  RTree tree(&store);
  BuildObjectTree(problem, &tree);
  store.ResetCounters();
  store.SetBufferFraction(buffer);
  SBAssignment sb(&problem, &tree, SBOptions{});
  AssignResult result = sb.Run();
  return {result.matching, store.counters().io_accesses()};
}

PagedRun RunBFPaged(const AssignmentProblem& problem, double buffer) {
  PagedNodeStore store(problem.dims, 1024);
  RTree tree(&store);
  BuildObjectTree(problem, &tree);
  store.ResetCounters();
  store.SetBufferFraction(buffer);
  AssignResult result = BruteForceAssignment(problem, tree);
  return {result.matching, store.counters().io_accesses()};
}

PagedRun RunChainPaged(const AssignmentProblem& problem, double buffer) {
  PagedNodeStore store(problem.dims, 1024);
  RTree tree(&store);
  BuildObjectTree(problem, &tree);
  store.ResetCounters();
  store.SetBufferFraction(buffer);
  AssignResult result = ChainAssignment(problem, &tree);
  return {result.matching, store.counters().io_accesses()};
}

TEST(IntegrationTest, ModerateScaleAgreementAndIoOrdering) {
  Rng rng(12345);
  auto points = GeneratePoints(Distribution::kAntiCorrelated, 20000, 4, &rng);
  FunctionSet fns = GenerateFunctions(300, 4, &rng);
  AssignmentProblem problem = MakeProblem(points, fns);

  PagedRun sb = RunSBPaged(problem, 0.02);
  PagedRun bf = RunBFPaged(problem, 0.02);
  PagedRun chain = RunChainPaged(problem, 0.02);

  EXPECT_TRUE(SameMatching(sb.matching, bf.matching));
  EXPECT_TRUE(SameMatching(sb.matching, chain.matching));
  EXPECT_EQ(sb.matching.size(), 300u);

  auto verdict = VerifyStableMatching(problem, sb.matching);
  EXPECT_TRUE(verdict.ok) << verdict.message;

  // The paper's headline: SB incurs orders of magnitude fewer I/Os.
  EXPECT_LT(sb.io * 10, bf.io);
  EXPECT_LT(sb.io * 10, chain.io);
}

TEST(IntegrationTest, SBIoInsensitiveToBuffer) {
  // Figure 13: SB's I/O barely moves with buffer size (it never re-reads
  // a node), while Brute Force benefits from a larger buffer.
  Rng rng(54321);
  auto points = GeneratePoints(Distribution::kAntiCorrelated, 15000, 3, &rng);
  FunctionSet fns = GenerateFunctions(200, 3, &rng);
  AssignmentProblem problem = MakeProblem(points, fns);

  PagedRun sb_none = RunSBPaged(problem, 0.0);
  PagedRun sb_big = RunSBPaged(problem, 0.10);
  EXPECT_EQ(sb_none.io, sb_big.io);

  PagedRun bf_none = RunBFPaged(problem, 0.0);
  PagedRun bf_big = RunBFPaged(problem, 0.10);
  EXPECT_LT(bf_big.io, bf_none.io);
}

TEST(IntegrationTest, SBIoFlatInFunctionCount) {
  // Figure 10: SB's I/O grows only marginally with |F|.
  Rng rng(777);
  auto points = GeneratePoints(Distribution::kAntiCorrelated, 15000, 3, &rng);
  FunctionSet small = GenerateFunctions(50, 3, &rng);
  FunctionSet large = GenerateFunctions(500, 3, &rng);

  PagedRun run_small =
      RunSBPaged(MakeProblem(points, small), 0.02);
  PagedRun run_large =
      RunSBPaged(MakeProblem(points, large), 0.02);
  // 10x the functions => far less than 10x the I/O (paper: ~1.27x for
  // 20x functions).
  EXPECT_LT(run_large.io, 4 * run_small.io + 64);
}

TEST(IntegrationTest, ZillowLikeWorkload) {
  auto points = ZillowSim(20000, 2026);
  Rng rng(2027);
  FunctionSet fns = GenerateFunctions(150, 5, &rng);
  AssignmentProblem problem = MakeProblem(points, fns);

  PagedRun sb = RunSBPaged(problem, 0.02);
  PagedRun bf = RunBFPaged(problem, 0.02);
  EXPECT_TRUE(SameMatching(sb.matching, bf.matching));
  EXPECT_EQ(sb.matching.size(), 150u);
  EXPECT_LT(sb.io, bf.io);
}

TEST(IntegrationTest, NbaCapacitatedWorkload) {
  auto points = NbaSim(kNbaSize, 11);
  Rng rng(12);
  FunctionSet fns = GenerateFunctions(100, 5, &rng);
  SetFunctionCapacities(&fns, 5);
  AssignmentProblem problem = MakeProblem(points, fns);

  PagedRun sb = RunSBPaged(problem, 0.02);
  EXPECT_EQ(sb.matching.size(), 500u);
  PagedRun chain = RunChainPaged(problem, 0.02);
  EXPECT_TRUE(SameMatching(sb.matching, chain.matching));
  EXPECT_LT(sb.io, chain.io);
}

TEST(IntegrationTest, FunctionsExceedObjects) {
  // |F| > |O|: every object is assigned; surplus functions remain.
  ProblemSpec spec;
  spec.num_functions = 500;
  spec.num_objects = 120;
  spec.dims = 3;
  spec.distribution = Distribution::kIndependent;
  spec.seed = 999;
  AssignmentProblem problem = RandomProblem(spec);

  PagedRun sb = RunSBPaged(problem, 0.02);
  EXPECT_EQ(sb.matching.size(), 120u);
  auto verdict = VerifyStableMatching(problem, sb.matching);
  EXPECT_TRUE(verdict.ok) << verdict.message;
}

TEST(IntegrationTest, StatsArePopulated) {
  ProblemSpec spec;
  spec.num_functions = 40;
  spec.num_objects = 2000;
  spec.dims = 3;
  spec.seed = 4242;
  AssignmentProblem problem = RandomProblem(spec);
  PagedNodeStore store(problem.dims, 1024);
  RTree tree(&store);
  BuildObjectTree(problem, &tree);
  store.ResetCounters();
  SBAssignment sb(&problem, &tree, SBOptions{});
  AssignResult result = sb.Run();
  EXPECT_GT(result.stats.loops, 0);
  EXPECT_GT(result.stats.peak_memory_bytes, 0u);
  EXPECT_GE(result.stats.cpu_ms, 0.0);
  EXPECT_EQ(result.stats.algorithm, "SB");
}

}  // namespace
}  // namespace fairmatch

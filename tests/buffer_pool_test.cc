// Regression and differential tests for the buffer pool's accounting
// under eviction churn: the dirty-evict/re-fetch cycle (a dirty frame
// must be written back exactly once per eviction, and a re-fetch must
// see the written-back bytes and cost exactly one physical read), the
// pinned-overflow path at capacities 0, 1 and 2 (more pinned pages
// than frames), and a randomized differential sweep against a
// reference model of the documented LRU semantics. General pool/paged
// file coverage lives in tests/storage_test.cc.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "fairmatch/common/rng.h"
#include "fairmatch/storage/buffer_pool.h"
#include "fairmatch/storage/disk_manager.h"

namespace fairmatch {
namespace {

/// Writes an 8-byte stamp into a pinned page.
void Stamp(PageHandle* h, uint64_t value) {
  std::memcpy(h->mutable_bytes(), &value, sizeof(value));
}

/// Reads the 8-byte stamp of a pinned page.
uint64_t ReadStamp(const PageHandle& h) {
  uint64_t value = 0;
  std::memcpy(&value, h.bytes(), sizeof(value));
  return value;
}

/// Reads the 8-byte stamp directly from the simulated disk.
uint64_t DiskStamp(const DiskManager& disk, PageId pid) {
  std::byte buf[kPageSize];
  disk.ReadPage(pid, buf);
  uint64_t value = 0;
  std::memcpy(&value, buf, sizeof(value));
  return value;
}

// A dirty frame evicted under capacity pressure must complete its
// writeback accounting (exactly one page_write, bytes durable on disk)
// before any re-fetch of the same page, and the re-fetch must cost
// exactly one page_read of the written-back content. Repeating the
// cycle (re-dirty, evict again) counts one further write per eviction
// — never zero, never two.
TEST(BufferPoolTest, DirtyEvictThenRefetchAccountsExactly) {
  for (size_t capacity : {1u, 2u}) {
    SCOPED_TRACE(capacity);
    DiskManager disk;
    PerfCounters counters;
    BufferPool pool(&disk, capacity, &counters);

    // One page more than capacity, so fetching the others evicts A.
    std::vector<PageId> pids;
    for (size_t i = 0; i < capacity + 1; ++i) {
      PageHandle h = pool.NewPage();
      pids.push_back(h.page_id());
    }
    pool.FlushAll();
    counters.Reset();
    const PageId a = pids[0];

    {
      PageHandle h = pool.FetchPage(a);
      Stamp(&h, 0xA1);
    }
    EXPECT_EQ(counters.page_reads, 1);
    EXPECT_EQ(counters.page_writes, 0);  // dirty but resident

    // Fill the buffer past capacity: A (LRU) is evicted dirty.
    for (size_t i = 1; i < pids.size(); ++i) {
      PageHandle h = pool.FetchPage(pids[i]);
    }
    EXPECT_EQ(counters.page_writes, 1);
    EXPECT_EQ(DiskStamp(disk, a), 0xA1u);  // writeback completed

    // Re-fetch after the dirty eviction: one physical read, the
    // written-back bytes, and no further write for the now-clean frame.
    {
      PageHandle h = pool.FetchPage(a);
      EXPECT_EQ(ReadStamp(h), 0xA1u);
      Stamp(&h, 0xA2);  // dirty the frame again
    }
    EXPECT_EQ(counters.page_reads,
              static_cast<int64_t>(pids.size()) + 1);
    EXPECT_EQ(counters.page_writes, 1);

    // Second dirty-evict cycle: exactly one more write.
    for (size_t i = 1; i < pids.size(); ++i) {
      PageHandle h = pool.FetchPage(pids[i]);
    }
    EXPECT_EQ(counters.page_writes, 2);
    EXPECT_EQ(DiskStamp(disk, a), 0xA2u);
  }
}

// More pinned pages than frames: every pinned frame stays valid above
// capacity, and unpinning drains the overflow back to the capacity,
// writing each dirty frame back exactly once.
TEST(BufferPoolTest, PinnedOverflowAtCapacitiesZeroOneTwo) {
  for (size_t capacity : {0u, 1u, 2u}) {
    SCOPED_TRACE(capacity);
    DiskManager disk;
    PerfCounters counters;
    BufferPool pool(&disk, capacity, &counters);

    const size_t overflow = capacity + 3;
    std::vector<PageId> pids;
    for (size_t i = 0; i < overflow; ++i) {
      PageHandle h = pool.NewPage();
      pids.push_back(h.page_id());
    }
    pool.FlushAll();
    counters.Reset();

    // Pin all pages at once (a path of pinned pages beyond capacity).
    std::vector<PageHandle> handles;
    for (size_t i = 0; i < overflow; ++i) {
      handles.push_back(pool.FetchPage(pids[i]));
      Stamp(&handles.back(), 0xB0 + i);
    }
    EXPECT_EQ(pool.resident_frames(), overflow);
    EXPECT_EQ(counters.page_reads, static_cast<int64_t>(overflow));
    EXPECT_EQ(counters.page_writes, 0);  // nothing evictable yet
    for (size_t i = 0; i < overflow; ++i) {
      EXPECT_EQ(ReadStamp(handles[i]), 0xB0 + i) << i;  // all still valid
    }

    // Unpin one by one: overflow frames are evicted (dirty, so each
    // eviction is one write) until the pool is back at capacity.
    for (PageHandle& h : handles) h.Release();
    handles.clear();
    EXPECT_LE(pool.resident_frames(), capacity);
    EXPECT_EQ(counters.page_writes,
              static_cast<int64_t>(overflow - capacity));
    for (size_t i = 0; i < overflow; ++i) {
      EXPECT_EQ(DiskStamp(disk, pids[i]),
                i < overflow - capacity
                    ? 0xB0 + i  // evicted and written back
                    : 0u)       // still buffered dirty
          << i;
    }

    // Every page's content is intact, wherever it currently lives.
    for (size_t i = 0; i < overflow; ++i) {
      PageHandle h = pool.FetchPage(pids[i]);
      EXPECT_EQ(ReadStamp(h), 0xB0 + i) << i;
    }
  }
}

// At zero capacity every dirty unpin is an immediate writeback.
TEST(BufferPoolTest, ZeroCapacityWritesBackEveryDirtyUnpin) {
  DiskManager disk;
  PerfCounters counters;
  BufferPool pool(&disk, 0, &counters);
  PageId pid;
  {
    PageHandle h = pool.NewPage();
    pid = h.page_id();
  }
  counters.Reset();
  for (int i = 0; i < 4; ++i) {
    PageHandle h = pool.FetchPage(pid);
    Stamp(&h, 0xC0 + i);
    h.Release();
    EXPECT_EQ(counters.page_writes, i + 1);
    EXPECT_EQ(DiskStamp(disk, pid), 0xC0 + static_cast<uint64_t>(i));
  }
  EXPECT_EQ(counters.page_reads, 4);
  EXPECT_EQ(pool.resident_frames(), 0u);
}

/// Reference model of the documented pool semantics: global LRU over
/// unpinned frames, pinned overflow tolerated, dirty evictions write
/// back, capacity 0 caches nothing. Tracks the same counters and the
/// 8-byte page stamps.
class ModelPool {
 public:
  explicit ModelPool(size_t capacity) : capacity_(capacity) {}

  void Fetch(PageId pid, bool write, uint64_t stamp) {
    counters.logical_reads++;
    auto it = frames_.find(pid);
    if (it != frames_.end()) {
      counters.buffer_hits++;
      if (it->second.pin == 0) LruErase(pid);
    } else {
      counters.page_reads++;
      frames_[pid] = Frame{disk_[pid], false, 0};
      it = frames_.find(pid);
    }
    it->second.pin++;
    if (write) {
      it->second.stamp = stamp;
      it->second.dirty = true;
    }
    Evict();
  }

  uint64_t StampOf(PageId pid) const { return frames_.at(pid).stamp; }

  void Release(PageId pid) {
    Frame& f = frames_.at(pid);
    f.pin--;
    if (f.pin == 0) {
      lru_.push_back(pid);
      Evict();
    }
  }

  PageId New() {
    PageId pid;
    if (!free_.empty()) {
      pid = free_.back();
      free_.pop_back();
    } else {
      pid = next_pid_++;
    }
    disk_[pid] = 0;
    frames_[pid] = Frame{0, true, 1};
    Evict();
    return pid;
  }

  void Delete(PageId pid) {
    auto it = frames_.find(pid);
    if (it != frames_.end()) {
      if (it->second.pin == 0) LruErase(pid);
      frames_.erase(it);
    }
    disk_.erase(pid);
    free_.push_back(pid);
  }

  void FlushAll() {
    for (auto& [pid, f] : frames_) {
      if (f.dirty) {
        counters.page_writes++;
        disk_[pid] = f.stamp;
      }
    }
    frames_.clear();
    lru_.clear();
  }

  void SetCapacity(size_t capacity) {
    capacity_ = capacity;
    Evict();
  }

  bool Resident(PageId pid) const { return frames_.count(pid) > 0; }
  size_t resident() const { return frames_.size(); }
  int PinOf(PageId pid) const {
    auto it = frames_.find(pid);
    return it == frames_.end() ? 0 : it->second.pin;
  }
  uint64_t DiskStampOf(PageId pid) const { return disk_.at(pid); }
  bool OnDisk(PageId pid) const { return disk_.count(pid) > 0; }

  PerfCounters counters;

 private:
  struct Frame {
    uint64_t stamp = 0;
    bool dirty = false;
    int pin = 0;
  };

  void LruErase(PageId pid) {
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if (*it == pid) {
        lru_.erase(it);
        return;
      }
    }
  }

  void Evict() {
    while (frames_.size() > capacity_ && !lru_.empty()) {
      PageId victim = lru_.front();
      lru_.pop_front();
      Frame& f = frames_.at(victim);
      if (f.dirty) {
        counters.page_writes++;
        disk_[victim] = f.stamp;
      }
      frames_.erase(victim);
    }
  }

  size_t capacity_;
  std::map<PageId, Frame> frames_;
  std::deque<PageId> lru_;
  std::map<PageId, uint64_t> disk_;
  std::vector<PageId> free_;
  PageId next_pid_ = 0;
};

// Randomized differential sweep: every operation's counters, residency
// and page bytes must match the reference model exactly, across
// capacity changes (including 0), pinned overflow, deletions and
// flushes.
TEST(BufferPoolTest, RandomizedOpsMatchReferenceModel) {
  Rng rng(501);
  DiskManager disk;
  PerfCounters counters;
  BufferPool pool(&disk, 2, &counters);
  ModelPool model(2);

  std::vector<PageId> pages;
  std::vector<std::pair<PageId, PageHandle>> open;
  uint64_t next_stamp = 1;

  auto check = [&]() {
    ASSERT_EQ(counters.logical_reads, model.counters.logical_reads);
    ASSERT_EQ(counters.buffer_hits, model.counters.buffer_hits);
    ASSERT_EQ(counters.page_reads, model.counters.page_reads);
    ASSERT_EQ(counters.page_writes, model.counters.page_writes);
    ASSERT_EQ(pool.resident_frames(), model.resident());
  };

  for (int op = 0; op < 20000; ++op) {
    const int choice = static_cast<int>(rng.UniformInt(0, 99));
    if (pages.size() < 4 || choice < 10) {
      PageHandle h = pool.NewPage();
      PageId pid = h.page_id();
      ASSERT_EQ(model.New(), pid);  // same allocation order
      pages.push_back(pid);
      open.emplace_back(pid, std::move(h));
    } else if (choice < 55) {
      // Fetch (sometimes writing), hold the pin for a while.
      PageId pid = pages[rng.UniformInt(0, pages.size() - 1)];
      if (!model.OnDisk(pid)) continue;  // deleted id not yet recycled
      const bool write = rng.UniformInt(0, 1) == 0;
      const uint64_t stamp = write ? next_stamp++ : 0;
      PageHandle h = pool.FetchPage(pid);
      if (write) Stamp(&h, stamp);
      model.Fetch(pid, write, stamp);
      ASSERT_EQ(ReadStamp(h), model.StampOf(pid));
      open.emplace_back(pid, std::move(h));
    } else if (choice < 85 && !open.empty()) {
      const size_t pick = rng.UniformInt(0, open.size() - 1);
      PageId pid = open[pick].first;
      open[pick].second.Release();
      open.erase(open.begin() + pick);
      model.Release(pid);
    } else if (choice < 90) {
      const size_t cap = rng.UniformInt(0, 4);
      pool.set_capacity(cap);
      model.SetCapacity(cap);
    } else if (choice < 95 && !pages.empty()) {
      PageId pid = pages[rng.UniformInt(0, pages.size() - 1)];
      if (!model.OnDisk(pid) || model.PinOf(pid) > 0) continue;
      pool.DeletePage(pid);
      model.Delete(pid);
      pages.erase(std::find(pages.begin(), pages.end(), pid));
    } else if (open.empty()) {
      pool.FlushAll();
      model.FlushAll();
    }
    check();
  }

  // Drain and do a final durability comparison through the disk.
  for (auto& [pid, handle] : open) {
    handle.Release();
    model.Release(pid);
  }
  open.clear();
  pool.FlushAll();
  model.FlushAll();
  check();
  for (PageId pid : pages) {
    EXPECT_EQ(DiskStamp(disk, pid), model.DiskStampOf(pid)) << pid;
  }
}

}  // namespace
}  // namespace fairmatch

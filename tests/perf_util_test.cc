// Unit tests for the hot-path utilities introduced by the perf PR: the
// flat min-max heap behind the TA candidate queue and the SkyEntry
// arena behind BBS/UpdateSkyline. Both are exercised with randomized
// operation sequences against straightforward reference models; the CI
// Debug job runs these under ASan/UBSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "fairmatch/common/minmax_heap.h"
#include "fairmatch/common/rng.h"
#include "fairmatch/geom/point.h"
#include "fairmatch/skyline/sky_arena.h"
#include "fairmatch/topk/reverse_top1.h"

namespace fairmatch {
namespace {

TEST(MinMaxHeapTest, BasicEnds) {
  MinMaxHeap<int> heap;
  EXPECT_TRUE(heap.empty());
  for (int v : {5, 1, 9, 3, 7}) heap.push(v);
  EXPECT_EQ(heap.size(), 5u);
  EXPECT_EQ(heap.min(), 1);
  EXPECT_EQ(heap.max(), 9);
  heap.pop_min();
  EXPECT_EQ(heap.min(), 3);
  heap.pop_max();
  EXPECT_EQ(heap.max(), 7);
  heap.pop_max();
  heap.pop_max();
  EXPECT_EQ(heap.min(), 3);
  EXPECT_EQ(heap.max(), 3);
  heap.pop_min();
  EXPECT_TRUE(heap.empty());
}

TEST(MinMaxHeapTest, DrainAscendingAndDescending) {
  Rng rng(101);
  std::vector<int> values;
  MinMaxHeap<int> up, down;
  for (int i = 0; i < 500; ++i) {
    int v = static_cast<int>(rng.UniformInt(0, 1 << 20)) * 512 + i;
    values.push_back(v);  // distinct values: total order
    up.push(v);
    down.push(v);
  }
  std::sort(values.begin(), values.end());
  for (int v : values) {
    EXPECT_EQ(up.min(), v);
    up.pop_min();
  }
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    EXPECT_EQ(down.max(), *it);
    down.pop_max();
  }
}

TEST(MinMaxHeapTest, RandomOpsAgainstMultisetModel) {
  Rng rng(102);
  MinMaxHeap<int> heap;
  std::multiset<int> model;
  for (int op = 0; op < 20000; ++op) {
    const int choice = static_cast<int>(rng.UniformInt(0, 3));
    if (model.empty() || choice == 0) {
      int v = static_cast<int>(rng.UniformInt(0, 1000));
      heap.push(v);
      model.insert(v);
    } else if (choice == 1) {
      ASSERT_EQ(heap.min(), *model.begin());
      heap.pop_min();
      model.erase(model.begin());
    } else {
      ASSERT_EQ(heap.max(), *model.rbegin());
      heap.pop_max();
      model.erase(std::prev(model.end()));
    }
    ASSERT_EQ(heap.size(), model.size());
    if (!model.empty()) {
      ASSERT_EQ(heap.min(), *model.begin());
      ASSERT_EQ(heap.max(), *model.rbegin());
    }
  }
}

// The exact usage pattern of the TA candidate queue: bounded capacity,
// best-first item order with id tie-breaks, overflow evicted from the
// worst end. Must reproduce the seed's sorted-vector semantics.
TEST(MinMaxHeapTest, BoundedQueueMatchesSortedVector) {
  struct Item {
    double score;
    int fid;
    bool operator<(const Item& other) const {
      if (score != other.score) return score > other.score;
      return fid < other.fid;
    }
  };
  Rng rng(103);
  for (int cap : {1, 2, 3, 8, 57}) {
    MinMaxHeap<Item> heap;
    std::vector<Item> model;  // sorted best-first
    for (int op = 0; op < 4000; ++op) {
      if (!model.empty() && rng.UniformInt(0, 4) == 0) {
        ASSERT_EQ(heap.min().fid, model.front().fid);
        ASSERT_EQ(heap.min().score, model.front().score);
        heap.pop_min();
        model.erase(model.begin());
        continue;
      }
      // Coarse scores force plenty of exact ties.
      Item item{static_cast<double>(rng.UniformInt(0, 32)) / 32.0, op};
      heap.push(item);
      model.insert(std::lower_bound(model.begin(), model.end(), item),
                   item);
      if (static_cast<int>(model.size()) > cap) {
        heap.pop_max();
        model.pop_back();
      }
      ASSERT_EQ(heap.size(), model.size());
      ASSERT_EQ(heap.min().fid, model.front().fid);
      ASSERT_EQ(heap.max().fid, model.back().fid);
    }
  }
}

// The TA candidate queue across both storage regimes (sorted ring
// below the capacity threshold, min-max heap above): identical
// semantics to the seed's sorted vector, including exact-tie eviction
// order.
TEST(CandidateQueueTest, BothRegimesMatchSortedVectorModel) {
  Rng rng(105);
  for (int cap : {1, 3, 57, CandidateQueue::kHeapThreshold + 1, 2000}) {
    CandidateQueue queue;
    queue.Reset(cap);
    std::vector<ScoredCandidate> model;  // sorted best-first
    for (int op = 0; op < 6000; ++op) {
      if (!model.empty() && rng.UniformInt(0, 4) == 0) {
        ASSERT_EQ(queue.best().fid, model.front().fid);
        ASSERT_EQ(queue.best().score, model.front().score);
        queue.PopBest();
        model.erase(model.begin());
        continue;
      }
      // Coarse scores force plenty of exact ties.
      ScoredCandidate item{
          static_cast<double>(rng.UniformInt(0, 64)) / 64.0, op};
      queue.Push(item);
      model.insert(std::lower_bound(model.begin(), model.end(), item),
                   item);
      if (static_cast<int>(model.size()) > cap) {
        queue.PopWorst();
        model.pop_back();
      }
      ASSERT_EQ(queue.size(), model.size());
      ASSERT_EQ(queue.best().fid, model.front().fid);
    }
    while (!model.empty()) {
      ASSERT_EQ(queue.best().fid, model.front().fid);
      queue.PopBest();
      model.erase(model.begin());
    }
    ASSERT_TRUE(queue.empty());
  }
}

TEST(SkyEntryArenaTest, AllocFreeReuseAndHighWater) {
  SkyEntryArena arena;
  Point p(3, 0.5f);
  uint32_t a = arena.Alloc(SkyEntry::ForObject(p, 1));
  uint32_t b = arena.Alloc(SkyEntry::ForObject(p, 2));
  EXPECT_EQ(arena.live(), 2u);
  EXPECT_EQ(arena.high_water(), 2u);
  EXPECT_EQ(arena.entry(a).id, 1);
  EXPECT_EQ(arena.entry(b).id, 2);
  arena.Free(a);
  EXPECT_EQ(arena.live(), 1u);
  // The freed slot is recycled before the pool grows.
  uint32_t c = arena.Alloc(SkyEntry::ForObject(p, 3));
  EXPECT_EQ(c, a);
  EXPECT_EQ(arena.entry(c).id, 3);
  EXPECT_EQ(arena.high_water(), 2u);
  uint32_t d = arena.Alloc(SkyEntry::ForObject(p, 4));
  EXPECT_EQ(arena.live(), 3u);
  EXPECT_EQ(arena.high_water(), 3u);
  arena.Free(b);
  arena.Free(c);
  arena.Free(d);
  EXPECT_EQ(arena.live(), 0u);
  EXPECT_EQ(arena.high_water(), 3u);
  EXPECT_GT(arena.high_water_bytes(), 0u);
}

TEST(SkyEntryArenaTest, IntrusiveChainsSurviveGrowth) {
  SkyEntryArena arena;
  Point p(2, 0.25f);
  // Build a chain while forcing multiple buffer growths.
  uint32_t head = SkyEntryArena::kNil;
  for (int i = 0; i < 10000; ++i) {
    uint32_t h = arena.Alloc(SkyEntry::ForObject(p, i));
    arena.set_next(h, head);
    head = h;
  }
  // Walk the chain: ids come back in reverse insertion order.
  int expect = 9999;
  size_t walked = 0;
  for (uint32_t h = head; h != SkyEntryArena::kNil; h = arena.next(h)) {
    ASSERT_EQ(arena.entry(h).id, expect--);
    walked++;
  }
  EXPECT_EQ(walked, 10000u);
  EXPECT_EQ(arena.high_water(), 10000u);
}

TEST(SkyEntryArenaTest, RandomChurnAgainstModel) {
  Rng rng(104);
  SkyEntryArena arena;
  Point p(2, 0.75f);
  std::vector<std::pair<uint32_t, int>> live;  // (handle, id)
  int next_id = 0;
  size_t max_live = 0;
  for (int op = 0; op < 50000; ++op) {
    if (live.empty() || rng.UniformInt(0, 2) == 0) {
      uint32_t h = arena.Alloc(SkyEntry::ForObject(p, next_id));
      live.emplace_back(h, next_id++);
    } else {
      size_t pick = rng.UniformInt(0, static_cast<int>(live.size()) - 1);
      ASSERT_EQ(arena.entry(live[pick].first).id, live[pick].second);
      arena.Free(live[pick].first);
      live[pick] = live.back();
      live.pop_back();
    }
    max_live = std::max(max_live, live.size());
    ASSERT_EQ(arena.live(), live.size());
  }
  EXPECT_EQ(arena.high_water(), max_live);
  for (const auto& [h, id] : live) {
    ASSERT_EQ(arena.entry(h).id, id);
  }
}

}  // namespace
}  // namespace fairmatch

// Unit tests for the hot-path utilities introduced by the perf PRs:
// the flat min-max heap behind the TA candidate queue, the SkyEntry
// arena behind BBS/UpdateSkyline, the portable SIMD kernels
// (common/simd.h) and the SkylineSet dominance probes (single and
// batched) they power. Everything is exercised with randomized
// operation sequences against straightforward reference models; the CI
// Debug job runs these under ASan/UBSan and the FAIRMATCH_SIMD=OFF leg
// re-runs them on the scalar fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "fairmatch/common/minmax_heap.h"
#include "fairmatch/common/rng.h"
#include "fairmatch/common/simd.h"
#include "fairmatch/geom/point.h"
#include "fairmatch/skyline/sky_arena.h"
#include "fairmatch/skyline/skyline_set.h"
#include "fairmatch/topk/reverse_top1.h"

namespace fairmatch {
namespace {

TEST(MinMaxHeapTest, BasicEnds) {
  MinMaxHeap<int> heap;
  EXPECT_TRUE(heap.empty());
  for (int v : {5, 1, 9, 3, 7}) heap.push(v);
  EXPECT_EQ(heap.size(), 5u);
  EXPECT_EQ(heap.min(), 1);
  EXPECT_EQ(heap.max(), 9);
  heap.pop_min();
  EXPECT_EQ(heap.min(), 3);
  heap.pop_max();
  EXPECT_EQ(heap.max(), 7);
  heap.pop_max();
  heap.pop_max();
  EXPECT_EQ(heap.min(), 3);
  EXPECT_EQ(heap.max(), 3);
  heap.pop_min();
  EXPECT_TRUE(heap.empty());
}

TEST(MinMaxHeapTest, DrainAscendingAndDescending) {
  Rng rng(101);
  std::vector<int> values;
  MinMaxHeap<int> up, down;
  for (int i = 0; i < 500; ++i) {
    int v = static_cast<int>(rng.UniformInt(0, 1 << 20)) * 512 + i;
    values.push_back(v);  // distinct values: total order
    up.push(v);
    down.push(v);
  }
  std::sort(values.begin(), values.end());
  for (int v : values) {
    EXPECT_EQ(up.min(), v);
    up.pop_min();
  }
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    EXPECT_EQ(down.max(), *it);
    down.pop_max();
  }
}

TEST(MinMaxHeapTest, RandomOpsAgainstMultisetModel) {
  Rng rng(102);
  MinMaxHeap<int> heap;
  std::multiset<int> model;
  for (int op = 0; op < 20000; ++op) {
    const int choice = static_cast<int>(rng.UniformInt(0, 3));
    if (model.empty() || choice == 0) {
      int v = static_cast<int>(rng.UniformInt(0, 1000));
      heap.push(v);
      model.insert(v);
    } else if (choice == 1) {
      ASSERT_EQ(heap.min(), *model.begin());
      heap.pop_min();
      model.erase(model.begin());
    } else {
      ASSERT_EQ(heap.max(), *model.rbegin());
      heap.pop_max();
      model.erase(std::prev(model.end()));
    }
    ASSERT_EQ(heap.size(), model.size());
    if (!model.empty()) {
      ASSERT_EQ(heap.min(), *model.begin());
      ASSERT_EQ(heap.max(), *model.rbegin());
    }
  }
}

// The exact usage pattern of the TA candidate queue: bounded capacity,
// best-first item order with id tie-breaks, overflow evicted from the
// worst end. Must reproduce the seed's sorted-vector semantics.
TEST(MinMaxHeapTest, BoundedQueueMatchesSortedVector) {
  struct Item {
    double score;
    int fid;
    bool operator<(const Item& other) const {
      if (score != other.score) return score > other.score;
      return fid < other.fid;
    }
  };
  Rng rng(103);
  for (int cap : {1, 2, 3, 8, 57}) {
    MinMaxHeap<Item> heap;
    std::vector<Item> model;  // sorted best-first
    for (int op = 0; op < 4000; ++op) {
      if (!model.empty() && rng.UniformInt(0, 4) == 0) {
        ASSERT_EQ(heap.min().fid, model.front().fid);
        ASSERT_EQ(heap.min().score, model.front().score);
        heap.pop_min();
        model.erase(model.begin());
        continue;
      }
      // Coarse scores force plenty of exact ties.
      Item item{static_cast<double>(rng.UniformInt(0, 32)) / 32.0, op};
      heap.push(item);
      model.insert(std::lower_bound(model.begin(), model.end(), item),
                   item);
      if (static_cast<int>(model.size()) > cap) {
        heap.pop_max();
        model.pop_back();
      }
      ASSERT_EQ(heap.size(), model.size());
      ASSERT_EQ(heap.min().fid, model.front().fid);
      ASSERT_EQ(heap.max().fid, model.back().fid);
    }
  }
}

// The TA candidate queue across both storage regimes (sorted ring
// below the capacity threshold, min-max heap above): identical
// semantics to the seed's sorted vector, including exact-tie eviction
// order.
TEST(CandidateQueueTest, BothRegimesMatchSortedVectorModel) {
  Rng rng(105);
  for (int cap : {1, 3, 57, CandidateQueue::kHeapThreshold + 1, 2000}) {
    CandidateQueue queue;
    queue.Reset(cap);
    std::vector<ScoredCandidate> model;  // sorted best-first
    for (int op = 0; op < 6000; ++op) {
      if (!model.empty() && rng.UniformInt(0, 4) == 0) {
        ASSERT_EQ(queue.best().fid, model.front().fid);
        ASSERT_EQ(queue.best().score, model.front().score);
        queue.PopBest();
        model.erase(model.begin());
        continue;
      }
      // Coarse scores force plenty of exact ties.
      ScoredCandidate item{
          static_cast<double>(rng.UniformInt(0, 64)) / 64.0, op};
      queue.Push(item);
      model.insert(std::lower_bound(model.begin(), model.end(), item),
                   item);
      if (static_cast<int>(model.size()) > cap) {
        queue.PopWorst();
        model.pop_back();
      }
      ASSERT_EQ(queue.size(), model.size());
      ASSERT_EQ(queue.best().fid, model.front().fid);
    }
    while (!model.empty()) {
      ASSERT_EQ(queue.best().fid, model.front().fid);
      queue.PopBest();
      model.erase(model.begin());
    }
    ASSERT_TRUE(queue.empty());
  }
}

TEST(SkyEntryArenaTest, AllocFreeReuseAndHighWater) {
  SkyEntryArena arena;
  Point p(3, 0.5f);
  uint32_t a = arena.Alloc(SkyEntry::ForObject(p, 1));
  uint32_t b = arena.Alloc(SkyEntry::ForObject(p, 2));
  EXPECT_EQ(arena.live(), 2u);
  EXPECT_EQ(arena.high_water(), 2u);
  EXPECT_EQ(arena.entry(a).id, 1);
  EXPECT_EQ(arena.entry(b).id, 2);
  arena.Free(a);
  EXPECT_EQ(arena.live(), 1u);
  // The freed slot is recycled before the pool grows.
  uint32_t c = arena.Alloc(SkyEntry::ForObject(p, 3));
  EXPECT_EQ(c, a);
  EXPECT_EQ(arena.entry(c).id, 3);
  EXPECT_EQ(arena.high_water(), 2u);
  uint32_t d = arena.Alloc(SkyEntry::ForObject(p, 4));
  EXPECT_EQ(arena.live(), 3u);
  EXPECT_EQ(arena.high_water(), 3u);
  arena.Free(b);
  arena.Free(c);
  arena.Free(d);
  EXPECT_EQ(arena.live(), 0u);
  EXPECT_EQ(arena.high_water(), 3u);
  EXPECT_GT(arena.high_water_bytes(), 0u);
}

TEST(SkyEntryArenaTest, IntrusiveChainsSurviveGrowth) {
  SkyEntryArena arena;
  Point p(2, 0.25f);
  // Build a chain while forcing multiple buffer growths.
  uint32_t head = SkyEntryArena::kNil;
  for (int i = 0; i < 10000; ++i) {
    uint32_t h = arena.Alloc(SkyEntry::ForObject(p, i));
    arena.set_next(h, head);
    head = h;
  }
  // Walk the chain: ids come back in reverse insertion order.
  int expect = 9999;
  size_t walked = 0;
  for (uint32_t h = head; h != SkyEntryArena::kNil; h = arena.next(h)) {
    ASSERT_EQ(arena.entry(h).id, expect--);
    walked++;
  }
  EXPECT_EQ(walked, 10000u);
  EXPECT_EQ(arena.high_water(), 10000u);
}

TEST(SkyEntryArenaTest, RandomChurnAgainstModel) {
  Rng rng(104);
  SkyEntryArena arena;
  Point p(2, 0.75f);
  std::vector<std::pair<uint32_t, int>> live;  // (handle, id)
  int next_id = 0;
  size_t max_live = 0;
  for (int op = 0; op < 50000; ++op) {
    if (live.empty() || rng.UniformInt(0, 2) == 0) {
      uint32_t h = arena.Alloc(SkyEntry::ForObject(p, next_id));
      live.emplace_back(h, next_id++);
    } else {
      size_t pick = rng.UniformInt(0, static_cast<int>(live.size()) - 1);
      ASSERT_EQ(arena.entry(live[pick].first).id, live[pick].second);
      arena.Free(live[pick].first);
      live[pick] = live.back();
      live.pop_back();
    }
    max_live = std::max(max_live, live.size());
    ASSERT_EQ(arena.live(), live.size());
  }
  EXPECT_EQ(arena.high_water(), max_live);
  for (const auto& [h, id] : live) {
    ASSERT_EQ(arena.entry(h).id, id);
  }
}

// --- SIMD kernels (common/simd.h) ------------------------------------

// The dispatching score kernel must be bit-identical to the scalar
// reference on arbitrary blocks (counts straddling every vector-width
// remainder, negative weights, subnormal-free random coords).
TEST(SimdKernelTest, ScoreColumnsMatchesScalarBitExactly) {
  Rng rng(601);
  for (int iter = 0; iter < 300; ++iter) {
    const int dims = 1 + static_cast<int>(rng.UniformInt(0, kMaxDims - 1));
    const int count = static_cast<int>(rng.UniformInt(0, 37));
    const size_t stride = count + rng.UniformInt(0, 5);
    std::vector<float> cols(dims * stride + 1, 0.0f);
    for (float& v : cols) {
      v = static_cast<float>(rng.Uniform(-2.0, 2.0));
    }
    std::vector<double> weights(dims);
    for (double& w : weights) w = rng.Uniform(-1.0, 1.0);
    std::vector<double> got(count, -1.0), want(count, -2.0);
    simd::ScoreColumns(cols.data(), stride, dims, weights.data(), count,
                       got.data());
    simd::ScoreColumnsScalar(cols.data(), stride, dims, weights.data(),
                             count, want.data());
    for (int j = 0; j < count; ++j) {
      ASSERT_EQ(got[j], want[j]) << "iter " << iter << " col " << j;
    }
  }
}

TEST(SimdKernelTest, FirstDominatorMatchesScalar) {
  Rng rng(602);
  for (int iter = 0; iter < 500; ++iter) {
    const int dims = 1 + static_cast<int>(rng.UniformInt(0, kMaxDims - 1));
    const int count = static_cast<int>(rng.UniformInt(0, 41));
    const size_t stride = count + rng.UniformInt(0, 3);
    std::vector<float> cols(dims * stride + 1, 0.0f);
    // Coarse grid coordinates force exact ties, equal-in-some-dims
    // near-dominators and duplicated columns.
    for (float& v : cols) {
      v = static_cast<float>(rng.UniformInt(0, 6)) / 6.0f;
    }
    float corner[kMaxDims];
    for (int d = 0; d < dims; ++d) {
      corner[d] = static_cast<float>(rng.UniformInt(0, 6)) / 6.0f;
    }
    const int got =
        simd::FirstDominator(cols.data(), stride, dims, corner, count);
    const int want = simd::FirstDominatorScalar(cols.data(), stride, dims,
                                                corner, count);
    ASSERT_EQ(got, want) << "iter " << iter;
  }
}

// --- SkylineSet dominance probes -------------------------------------

/// Mirror of a SkylineSet's live membership: (slot, point) pairs
/// recorded from Add()/Remove() calls, used as the brute-force
/// dominance reference.
struct SkyMirror {
  struct Member {
    int slot;
    Point point;
    double sum;
  };
  std::vector<Member> live;

  void Add(int slot, const Point& p) {
    live.push_back(Member{slot, p, p.Sum()});
  }
  void Remove(int slot) {
    for (auto it = live.begin(); it != live.end(); ++it) {
      if (it->slot == slot) {
        live.erase(it);
        return;
      }
    }
    FAIL() << "slot not live";
  }
  bool AnyDominates(const Point& corner) const {
    for (const Member& m : live) {
      if (m.point.Dominates(corner)) return true;
    }
    return false;
  }
  /// First dominator in the scan order (descending sum, ties ascending
  /// slot) — what a probe with a cold pruner cache must return.
  int FirstInScanOrder(const Point& corner, double corner_sum) const {
    std::vector<const Member*> order;
    for (const Member& m : live) order.push_back(&m);
    std::sort(order.begin(), order.end(),
              [](const Member* a, const Member* b) {
                if (a->sum != b->sum) return a->sum > b->sum;
                return a->slot < b->slot;
              });
    for (const Member* m : order) {
      if (m->sum <= corner_sum) break;
      if (m->point.Dominates(corner)) return m->slot;
    }
    return -1;
  }
};

Point RandomGridPoint(Rng* rng, int dims) {
  Point p(dims);
  for (int d = 0; d < dims; ++d) {
    p[d] = static_cast<float>(rng->UniformInt(0, 8)) / 8.0f;
  }
  return p;
}

// Randomized property sweep over 1k seeded point sets: two SkylineSets
// receive the identical Add/Remove/probe sequence, one probed with
// single FindDominator calls and one with the batched entry points.
// Checks per probe:
//  * single and batched results are identical (the batch API is
//    defined as consecutive single probes, pruner cache included);
//  * a returned slot is a live member that strictly dominates the
//    corner (brute force over the mirror);
//  * -1 means no live member dominates the corner;
//  * a fresh (cache-free) SkylineSet with the same membership returns
//    the first dominator in scan order (descending sum, ties on
//    ascending slot).
TEST(SkylineSetPropertyTest, DominatorProbesMatchBruteForce) {
  Rng rng(603);
  for (int iter = 0; iter < 1000; ++iter) {
    const int dims = 2 + static_cast<int>(rng.UniformInt(0, 3));
    SkylineSet single, batched;
    SkyMirror mirror;
    std::vector<std::pair<Point, ObjectId>> members;  // live, add order
    ObjectId next_id = 0;

    const int ops = 3 + static_cast<int>(rng.UniformInt(0, 24));
    for (int op = 0; op < ops; ++op) {
      const int kind =
          members.empty() ? 0 : static_cast<int>(rng.UniformInt(0, 9));
      if (kind < 5) {
        const Point p = RandomGridPoint(&rng, dims);
        const ObjectId id = next_id++;
        const int slot_s = single.Add(p, id);
        const int slot_b = batched.Add(p, id);
        ASSERT_EQ(slot_s, slot_b);
        mirror.Add(slot_s, p);
        members.emplace_back(p, id);
      } else if (kind < 7) {
        const size_t pick = rng.UniformInt(0, members.size() - 1);
        const ObjectId id = members[pick].second;
        const int slot = single.SlotOf(id);
        single.Remove(id);
        batched.Remove(id);
        mirror.Remove(slot);
        members.erase(members.begin() + pick);
      } else {
        // A burst of probes: single calls on one set, one batch (or
        // prefix chain) on the other.
        const int n = 1 + static_cast<int>(rng.UniformInt(0, 6));
        std::vector<Point> corners;
        std::vector<DominatorProbe> probes;
        corners.reserve(n);
        for (int i = 0; i < n; ++i) {
          corners.push_back(RandomGridPoint(&rng, dims));
        }
        for (const Point& c : corners) {
          probes.push_back(DominatorProbe{&c, c.Sum()});
        }
        std::vector<int> got(n);
        if (rng.UniformInt(0, 1) == 0) {
          batched.FindDominatorBatch(probes.data(), n, got.data());
        } else {
          // Prefix chaining must cover all probes the same way.
          int done = 0;
          while (done < n) {
            done += batched.FindDominatorPrefix(&probes[done], n - done,
                                                &got[done]);
            // Re-probe misses the way callers would, minus the Add:
            // a miss ends a prefix, the next call resumes after it.
          }
        }
        for (int i = 0; i < n; ++i) {
          const int want = single.FindDominator(corners[i],
                                                corners[i].Sum());
          ASSERT_EQ(got[i], want) << "iter " << iter << " probe " << i;
          if (want >= 0) {
            ASSERT_TRUE(single.at(want).live);
            ASSERT_TRUE(single.at(want).point.Dominates(corners[i]));
          } else {
            ASSERT_FALSE(mirror.AnyDominates(corners[i]));
          }
        }
      }
    }

    // Cold-cache check: rebuild the same membership in the same Add
    // order on a fresh set; its first probe must return the scan-order
    // first dominator.
    SkylineSet fresh;
    for (const auto& [p, id] : members) fresh.Add(p, id);
    const Point probe = RandomGridPoint(&rng, dims);
    // The fresh mirror has different slots (no removals interleaved),
    // so rebuild it from the fresh set's own slots.
    SkyMirror fresh_mirror;
    fresh.ForEach([&](int slot, const SkylineObject& m) {
      fresh_mirror.Add(slot, m.point);
    });
    ASSERT_EQ(fresh.FindDominator(probe, probe.Sum()),
              fresh_mirror.FirstInScanOrder(probe, probe.Sum()))
        << "iter " << iter;
  }
}

TEST(SimdKernelTest, KnapsackBoundsMatchesScalarBitExactly) {
  Rng rng(603);
  for (int iter = 0; iter < 400; ++iter) {
    const int dims = 1 + static_cast<int>(rng.UniformInt(0, kMaxDims - 1));
    const int rows = 1 + static_cast<int>(rng.UniformInt(0, 20));
    const size_t stride = dims + rng.UniformInt(0, 3);
    std::vector<float> pts(rows * stride, 0.0f);
    for (float& v : pts) v = static_cast<float>(rng.Uniform(0.0, 1.0));
    std::vector<int> orders(rows * stride, 0);
    for (int m = 0; m < rows; ++m) {
      int* order = orders.data() + m * stride;
      for (int d = 0; d < dims; ++d) order[d] = d;
      for (int d = dims - 1; d > 0; --d) {
        std::swap(order[d], order[rng.UniformInt(0, d)]);
      }
    }
    // Frontier values include negatives and exact zeros so every branch
    // of the beta clamp (min/max/skip masking) is exercised.
    std::vector<double> frontier(kMaxDims, 0.0);
    for (int d = 0; d < dims; ++d) {
      frontier[d] = rng.UniformInt(0, 4) == 0
                        ? 0.0
                        : rng.Uniform(-0.2, 0.8);
    }
    const int count = 1 + static_cast<int>(rng.UniformInt(0, 11));
    std::vector<int> members(count);
    for (int& m : members) m = static_cast<int>(rng.UniformInt(0, rows - 1));
    const int skip_dim = static_cast<int>(rng.UniformInt(0, dims - 1));
    const double coef = rng.Uniform(0.0, 1.0);
    const double budget0 = rng.Uniform(0.0, 2.0);
    std::vector<double> got(count, -1.0), want(count, -2.0);
    simd::KnapsackBounds(pts.data(), orders.data(), stride, dims, skip_dim,
                         coef, budget0, frontier.data(), members.data(),
                         count, got.data());
    simd::KnapsackBoundsScalar(pts.data(), orders.data(), stride, dims,
                               skip_dim, coef, budget0, frontier.data(),
                               members.data(), count, want.data());
    for (int l = 0; l < count; ++l) {
      ASSERT_EQ(got[l], want[l]) << "iter " << iter << " lane " << l;
    }
  }
}

// The batched kernel must reproduce the historical SB-alt per-member
// fetch-worthiness loop (assign/sb_alt.cc before the SoA rewrite),
// transcribed verbatim here, on its real domain (non-negative
// frontiers): the `k == d || budget <= 0.0` continue and the kernel's
// clamped beta are bitwise-identical paths there.
TEST(SimdKernelTest, KnapsackBoundsMatchesLegacySbAltLoop) {
  Rng rng(604);
  for (int iter = 0; iter < 400; ++iter) {
    const int dims = 1 + static_cast<int>(rng.UniformInt(0, kMaxDims - 1));
    const size_t stride = dims;
    const int count = 1 + static_cast<int>(rng.UniformInt(0, 15));
    std::vector<float> pts(count * stride, 0.0f);
    for (float& v : pts) v = static_cast<float>(rng.Uniform(0.0, 1.0));
    std::vector<int> orders(count * stride, 0);
    std::vector<int> members(count);
    for (int m = 0; m < count; ++m) {
      members[m] = m;
      int* order = orders.data() + m * stride;
      for (int d = 0; d < dims; ++d) order[d] = d;
      for (int d = dims - 1; d > 0; --d) {
        std::swap(order[d], order[rng.UniformInt(0, d)]);
      }
    }
    std::vector<double> frontier(kMaxDims, 0.0);
    for (int d = 0; d < dims; ++d) frontier[d] = rng.Uniform(0.0, 1.0);
    const int d = static_cast<int>(rng.UniformInt(0, dims - 1));
    const double max_gamma = 1.0 + rng.UniformInt(0, 3);
    const double coef = rng.Uniform(0.0, 1.0);
    std::vector<double> got(count, -1.0);
    simd::KnapsackBounds(pts.data(), orders.data(), stride, dims, d, coef,
                         max_gamma - coef, frontier.data(), members.data(),
                         count, got.data());
    for (int m = 0; m < count; ++m) {
      const float* pt = pts.data() + m * stride;
      const int* order = orders.data() + m * stride;
      double budget = max_gamma - coef;
      double bound = coef * pt[d];
      for (int j = 0; j < dims; ++j) {
        const int k = order[j];
        if (k == d || budget <= 0.0) continue;
        double beta = std::min(budget, frontier[k]);
        bound += beta * pt[k];
        budget -= beta;
      }
      ASSERT_EQ(got[m], bound) << "iter " << iter << " member " << m;
    }
  }
}

TEST(SimdKernelTest, UnpackIdsMatchesScalarAndRoundTrips) {
  Rng rng(605);
  for (int iter = 0; iter < 400; ++iter) {
    const int id_bytes = 1 << rng.UniformInt(0, 2);  // 1, 2 or 4
    const int count = static_cast<int>(rng.UniformInt(0, 70));
    const int32_t base = static_cast<int32_t>(rng.UniformInt(0, 1 << 20));
    // base + delta must stay a valid (int32) function id, as it does in
    // any real packed block.
    const uint32_t max_delta = std::min<uint32_t>(
        id_bytes == 4 ? 0x7fffffffu : (1u << (8 * id_bytes)) - 1,
        static_cast<uint32_t>(0x7fffffff - base));
    std::vector<int32_t> ids(count);
    std::vector<unsigned char> packed(
        static_cast<size_t>(count) * id_bytes + 8, 0xee);
    for (int i = 0; i < count; ++i) {
      const uint32_t delta = static_cast<uint32_t>(
          rng.UniformInt(0, static_cast<int64_t>(max_delta)));
      ids[i] = base + static_cast<int32_t>(delta);
      for (int b = 0; b < id_bytes; ++b) {
        packed[static_cast<size_t>(i) * id_bytes + b] =
            static_cast<unsigned char>((delta >> (8 * b)) & 0xff);
      }
    }
    std::vector<int32_t> got(count, -1), want(count, -2);
    simd::UnpackIds(packed.data(), id_bytes, base, count, got.data());
    simd::UnpackIdsScalar(packed.data(), id_bytes, base, count, want.data());
    for (int i = 0; i < count; ++i) {
      ASSERT_EQ(got[i], want[i]) << "iter " << iter << " i " << i;
      ASSERT_EQ(got[i], ids[i]) << "iter " << iter << " i " << i;
    }
  }
}

}  // namespace
}  // namespace fairmatch

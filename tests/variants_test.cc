// Correctness of the problem variants: capacities (Section 6.1),
// priorities (Section 6.2) and disk-resident functions (Section 7.6).
// Variant coverage is registry-driven — every matcher the engine
// exposes runs on every variant instance; algorithm-specific tests pin
// behaviors (multi-pair capacity batches, priority ordering, SB-alt's
// page-bounded batch scan).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "fairmatch/assign/naive_matcher.h"
#include "fairmatch/assign/verifier.h"
#include "fairmatch/engine/registry.h"
#include "fairmatch/topk/disk_function_lists.h"
#include "test_util.h"

namespace fairmatch {
namespace {

using fairmatch::testing::MemTree;
using fairmatch::testing::ProblemSpec;
using fairmatch::testing::RandomProblem;
using fairmatch::testing::RunRegisteredMatcher;

void ExpectSame(const Matching& got, const Matching& want,
                const std::string& label) {
  EXPECT_TRUE(SameMatching(got, want)) << label;
}

class CapacityParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CapacityParamTest, AllRegisteredMatchersAgreeWithNaive) {
  auto [fcap, ocap] = GetParam();
  ProblemSpec spec;
  spec.num_functions = 12;
  spec.num_objects = 80;
  spec.dims = 3;
  spec.distribution = Distribution::kAntiCorrelated;
  spec.seed = 100 * fcap + ocap;
  spec.function_capacity = fcap;
  spec.object_capacity = ocap;
  AssignmentProblem problem = RandomProblem(spec);
  Matching want = NaiveStableMatching(problem);
  // Every function slot is served while objects remain.
  EXPECT_EQ(static_cast<int64_t>(want.size()),
            std::min(problem.TotalFunctionCapacity(),
                     problem.TotalObjectCapacity()));
  for (const std::string& name : MatcherRegistry::Global().Names()) {
    ExpectSame(RunRegisteredMatcher(name, problem).matching, want,
               name + " capacitated");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Capacities, CapacityParamTest,
    ::testing::Values(std::make_tuple(2, 1), std::make_tuple(4, 1),
                      std::make_tuple(8, 1), std::make_tuple(1, 2),
                      std::make_tuple(1, 4), std::make_tuple(3, 2),
                      std::make_tuple(16, 16)));

TEST(CapacityTest, SameMultiPairRepeatsAcrossLoops) {
  // One function and one object with capacity 3 each: the same pair must
  // be emitted three times.
  FunctionSet fns(1);
  fns[0] = PrefFunction{0, 2, {0.6, 0.4}, 1.0, 3};
  std::vector<Point> points(1, Point(2, 0.5f));
  AssignmentProblem problem = MakeProblem(points, fns, /*object_capacity=*/3);
  Matching got = RunRegisteredMatcher("SB", problem).matching;
  ASSERT_EQ(got.size(), 3u);
  for (const auto& p : got) {
    EXPECT_EQ(p.fid, 0);
    EXPECT_EQ(p.oid, 0);
  }
}

class PriorityParamTest : public ::testing::TestWithParam<int> {};

TEST_P(PriorityParamTest, AllRegisteredMatchersAgreeWithNaive) {
  int max_gamma = GetParam();
  ProblemSpec spec;
  spec.num_functions = 25;
  spec.num_objects = 120;
  spec.dims = 3;
  spec.distribution = Distribution::kAntiCorrelated;
  spec.seed = 9000 + max_gamma;
  spec.max_gamma = max_gamma;
  AssignmentProblem problem = RandomProblem(spec);
  Matching want = NaiveStableMatching(problem);
  for (const std::string& name : MatcherRegistry::Global().Names()) {
    ExpectSame(RunRegisteredMatcher(name, problem).matching, want,
               name + " prioritized");
  }
}

INSTANTIATE_TEST_SUITE_P(Gammas, PriorityParamTest,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(PriorityTest, HigherPriorityWinsContestedObject) {
  // Two identical-weight users; the senior (gamma 2) takes the best
  // object.
  FunctionSet fns(2);
  fns[0] = PrefFunction{0, 2, {0.5, 0.5}, 1.0, 1};
  fns[1] = PrefFunction{1, 2, {0.5, 0.5}, 2.0, 1};
  std::vector<Point> points(2, Point(2));
  points[0][0] = 0.9f;
  points[0][1] = 0.9f;  // clearly best
  points[1][0] = 0.2f;
  points[1][1] = 0.2f;
  AssignmentProblem problem = MakeProblem(points, fns);
  AssignResult got = RunRegisteredMatcher("SB-TwoSkylines", problem);
  CanonicalizeMatching(&got.matching);
  ASSERT_EQ(got.matching.size(), 2u);
  EXPECT_EQ(got.matching[1].fid, 1);
  EXPECT_EQ(got.matching[1].oid, 0);  // senior gets the good one
  EXPECT_EQ(got.matching[0].oid, 1);
}

struct DiskSpec {
  ProblemSpec problem;
  double buffer_fraction;
};

/// Runs a registered matcher in the Section 7.6 setting: in-memory
/// object tree, disk-resident function lists shared through one
/// ExecContext (so RunStats carries the aggregated I/O).
AssignResult RunDiskF(const std::string& name,
                      const AssignmentProblem& problem,
                      double buffer_fraction) {
  ExecContext ctx;
  return RunRegisteredMatcher(name, problem, &ctx,
                              /*force_disk_functions=*/true,
                              buffer_fraction);
}

class DiskFunctionParamTest : public ::testing::TestWithParam<DiskSpec> {};

TEST_P(DiskFunctionParamTest, SBOverDiskIndexMatchesNaive) {
  DiskSpec spec = GetParam();
  AssignmentProblem problem = RandomProblem(spec.problem);
  Matching want = NaiveStableMatching(problem);
  AssignResult got = RunDiskF("SB", problem, spec.buffer_fraction);
  ExpectSame(got.matching, want, "SB disk-F");
  EXPECT_GT(got.stats.io_accesses, 0);
}

TEST_P(DiskFunctionParamTest, SBAltMatchesNaive) {
  DiskSpec spec = GetParam();
  AssignmentProblem problem = RandomProblem(spec.problem);
  Matching want = NaiveStableMatching(problem);
  AssignResult got = RunDiskF("SB-alt", problem, spec.buffer_fraction);
  ExpectSame(got.matching, want, "SB-alt");
  auto verdict = VerifyStableMatching(problem, got.matching);
  EXPECT_TRUE(verdict.ok) << verdict.message;
}

INSTANTIATE_TEST_SUITE_P(
    DiskShapes, DiskFunctionParamTest,
    ::testing::Values(
        DiskSpec{ProblemSpec{200, 40, 3, Distribution::kIndependent, 501},
                 0.02},
        DiskSpec{ProblemSpec{500, 60, 4, Distribution::kAntiCorrelated, 502},
                 0.02},
        DiskSpec{ProblemSpec{300, 50, 3, Distribution::kCorrelated, 503},
                 0.0},
        DiskSpec{ProblemSpec{100, 100, 3, Distribution::kAntiCorrelated,
                             504},
                 0.1},
        DiskSpec{ProblemSpec{50, 200, 5, Distribution::kIndependent, 505},
                 0.02}));

TEST(SBAltTest, CapacitatedDiskRun) {
  ProblemSpec spec;
  spec.num_functions = 150;
  spec.num_objects = 50;
  spec.dims = 3;
  spec.seed = 606;
  spec.function_capacity = 2;
  spec.object_capacity = 3;
  AssignmentProblem problem = RandomProblem(spec);
  Matching want = NaiveStableMatching(problem);
  AssignResult got = RunDiskF("SB-alt", problem, 0.02);
  ExpectSame(got.matching, want, "SB-alt capacitated");
}

TEST(SBAltTest, BatchScanIsPageBounded) {
  // Per loop, SB-alt reads each list page at most once: with L loops and
  // P pages per list over D lists, sequential reads <= L * D * P. This
  // catches accidental per-object rescans.
  ProblemSpec spec;
  spec.num_functions = 2000;
  spec.num_objects = 30;
  spec.dims = 3;
  spec.seed = 707;
  AssignmentProblem problem = RandomProblem(spec);
  ExecContext ctx;
  MemTree mem(problem);
  DiskFunctionStore store(problem.functions, 0.0, &ctx.counters());
  MatcherEnv env;
  env.problem = &problem;
  env.tree = &mem.tree;
  env.fn_store = &store;
  env.ctx = &ctx;
  auto matcher = MatcherRegistry::Global().Create("SB-alt", env);
  ASSERT_NE(matcher, nullptr);
  AssignResult got = matcher->Run();
  EXPECT_EQ(got.matching.size(), 30u);
  int64_t pages = store.pages_per_list();
  // Sequential + random accesses, crude upper bound:
  // loops * D * pages (sequential) + encounters * D (random).
  int64_t bound = got.stats.loops * 3 * pages + 2000LL * 3 * got.stats.loops;
  EXPECT_LE(ctx.counters().page_reads, bound);
}

TEST(PriorityCapacityTest, CombinedVariantsAgree) {
  ProblemSpec spec;
  spec.num_functions = 15;
  spec.num_objects = 60;
  spec.dims = 3;
  spec.seed = 808;
  spec.max_gamma = 4;
  spec.function_capacity = 2;
  spec.object_capacity = 2;
  AssignmentProblem problem = RandomProblem(spec);
  Matching want = NaiveStableMatching(problem);
  for (const std::string& name : MatcherRegistry::Global().Names()) {
    ExpectSame(RunRegisteredMatcher(name, problem).matching, want,
               name + " gamma+cap");
  }
}

}  // namespace
}  // namespace fairmatch

// The serving layer's headline guarantee: a Response from fairmatchd is
// byte-identical (matching, io_accesses, pairs, loops) to a direct
// Matcher::Run() on the same inputs — for every registered matcher, at
// any lane count, under any request interleaving, over one shared
// resident dataset. Also covered: admission control (bounded queue →
// kOverloaded, drain completes every accepted request), the dataset
// open/close refcount lifecycle (second open shares, close under
// in-flight traffic is safe), and the typed-error contract (bad
// requests get a status, never an engine CHECK). Part of the TSan CI
// matrix: the concurrency here is real lanes over real shared indexes.
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fairmatch/common/rng.h"
#include "fairmatch/data/synthetic.h"
#include "fairmatch/serve/dataset_registry.h"
#include "fairmatch/serve/server.h"
#include "fairmatch/serve/status.h"
#include "fairmatch/update/delta_builder.h"
#include "fairmatch/update/stream_matcher.h"
#include "test_util.h"

namespace fairmatch::serve {
namespace {

using fairmatch::testing::ProblemSpec;
using fairmatch::testing::RandomProblem;
using fairmatch::testing::RunRegisteredMatcher;

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t MatchingHash(const Matching& m) {
  uint64_t h = 1469598103934665603ull;
  for (const MatchPair& p : m) {
    h = Fnv1a(h, static_cast<uint64_t>(p.fid));
    h = Fnv1a(h, static_cast<uint64_t>(p.oid));
  }
  return h;
}

/// The per-request numbers that must not depend on serving.
struct Fingerprint {
  uint64_t matching_hash;
  int64_t io_accesses;
  uint64_t pairs;
  int64_t loops;

  bool operator==(const Fingerprint& other) const {
    return matching_hash == other.matching_hash &&
           io_accesses == other.io_accesses && pairs == other.pairs &&
           loops == other.loops;
  }
};

Fingerprint OfResponse(const Response& response) {
  return Fingerprint{MatchingHash(response.matching),
                     response.stats.io_accesses, response.stats.pairs,
                     response.stats.loops};
}

Fingerprint OfDirect(const AssignResult& result) {
  return Fingerprint{MatchingHash(result.matching), result.stats.io_accesses,
                     result.stats.pairs, result.stats.loops};
}

AssignmentProblem SmallProblem(uint64_t seed) {
  ProblemSpec spec;
  spec.num_functions = 30;
  spec.num_objects = 250;
  spec.dims = 3;
  spec.distribution = Distribution::kAntiCorrelated;
  spec.seed = seed;
  spec.max_gamma = 3;  // priorities on, to exercise the richer paths
  return RandomProblem(spec);
}

/// Registered matchers the server runs end-to-end. Excludes test-local
/// stubs (registered by later tests in this binary, never by the
/// library).
std::vector<std::string> ServableMatchers() {
  std::vector<std::string> names;
  for (const std::string& name : MatcherRegistry::Global().Names()) {
    if (name != "Gated") names.push_back(name);
  }
  return names;
}

// --- the headline response contract ----------------------------------

TEST(ServeContractTest, ResponsesByteIdenticalToDirectRunsForEveryMatcher) {
  const AssignmentProblem problem = SmallProblem(41000);
  DatasetRegistry registry;
  registry.Open("ds", problem);

  ServerOptions options;
  options.lanes = 2;
  Server server(&registry, options);

  for (const std::string& name : ServableMatchers()) {
    ExecContext ctx;
    const Fingerprint direct = OfDirect(RunRegisteredMatcher(name, problem,
                                                             &ctx));
    Request request;
    request.dataset = "ds";
    request.matcher = name;
    const Response response = server.Execute(request);
    ASSERT_TRUE(response.status.ok())
        << name << ": " << response.status.message;
    EXPECT_TRUE(OfResponse(response) == direct)
        << name << " served response diverged from the direct run";
    EXPECT_EQ(response.stats.algorithm, name);
    EXPECT_GE(response.total_ms, response.exec_ms);
    EXPECT_GE(response.queue_ms, 0.0);
    EXPECT_GT(response.request_id, 0u);
  }
}

// The Section 7.6 setting rides through the request knob: a
// per-request DiskFunctionStore on the lane's recycled disk must count
// exactly the I/O a fresh-storage direct run counts.
TEST(ServeContractTest, DiskResidentFunctionRequestsMatchDirectRuns) {
  const AssignmentProblem problem = SmallProblem(42000);
  DatasetRegistry registry;
  registry.Open("ds", problem);
  Server server(&registry);

  for (const char* name : {"SB", "SB-alt", "BruteForce"}) {
    ExecContext ctx;
    const Fingerprint direct = OfDirect(RunRegisteredMatcher(
        name, problem, &ctx, /*force_disk_functions=*/true));
    Request request;
    request.dataset = "ds";
    request.matcher = name;
    request.disk_resident_functions = true;
    const Response response = server.Execute(request);
    ASSERT_TRUE(response.status.ok()) << name;
    EXPECT_TRUE(OfResponse(response) == direct) << name;
    EXPECT_GT(response.stats.io_accesses, 0) << name;
    // Consecutive requests on the same lane recycle the workspace;
    // the second run must not see the first one's pages.
    const Response again = server.Execute(request);
    ASSERT_TRUE(again.status.ok()) << name;
    EXPECT_TRUE(OfResponse(again) == direct) << name << " (recycled lane)";
  }
}

// The packed image is resident once; every request probes it through a
// private view. Both image placements must serve identical bytes.
TEST(ServeContractTest, PackedViewsServeIdenticalResultsInBothImageModes) {
  const AssignmentProblem problem = SmallProblem(43000);
  for (const bool mmap_mode : {false, true}) {
    DatasetRegistry registry;
    DatasetOptions dopts;
    dopts.packed_mmap = mmap_mode;
    registry.Open("ds", problem, dopts);
    Server server(&registry);

    for (const char* name : {"SB-Packed", "SB-alt-Packed"}) {
      ExecContext ctx;
      const Fingerprint direct = OfDirect(RunRegisteredMatcher(
          name, problem, &ctx, /*force_disk_functions=*/false,
          /*buffer_fraction=*/0.02, mmap_mode));
      Request request;
      request.dataset = "ds";
      request.matcher = name;
      const Response response = server.Execute(request);
      ASSERT_TRUE(response.status.ok()) << name << " mmap=" << mmap_mode;
      EXPECT_TRUE(OfResponse(response) == direct)
          << name << " mmap=" << mmap_mode;
      EXPECT_EQ(response.stats.io_accesses, 0) << name;
    }
  }
}

// Tree-mutating matchers get a private tree; the resident one must
// come through completely unscathed.
TEST(ServeContractTest, TreeMutatingMatchersDoNotDisturbTheSharedTree) {
  const AssignmentProblem problem = SmallProblem(44000);
  DatasetRegistry registry;
  registry.Open("ds", problem);
  Server server(&registry);

  Request sb;
  sb.dataset = "ds";
  sb.matcher = "SB";
  const Fingerprint before = OfResponse(server.Execute(sb));

  Request chain;
  chain.dataset = "ds";
  chain.matcher = "Chain";
  ExecContext ctx;
  const Fingerprint chain_direct =
      OfDirect(RunRegisteredMatcher("Chain", problem, &ctx));
  for (int i = 0; i < 3; ++i) {
    const Response response = server.Execute(chain);
    ASSERT_TRUE(response.status.ok());
    EXPECT_TRUE(OfResponse(response) == chain_direct) << "run " << i;
  }
  EXPECT_TRUE(OfResponse(server.Execute(sb)) == before)
      << "Chain requests mutated the shared resident tree";
}

// --- concurrent-request determinism ----------------------------------

TEST(ServeConcurrencyTest, DeterministicAtOneTwoAndEightLanes) {
  const AssignmentProblem problem = SmallProblem(45000);
  DatasetRegistry registry;
  registry.Open("ds", problem);

  // A request mix crossing every backend: shared tree, per-request
  // disk store, shared packed image, private tree.
  const std::vector<std::string> mix = {"SB",     "SB-Packed", "BruteForce",
                                        "SB-alt", "Chain",     "SB-alt-Packed",
                                        "SB-TwoSkylines"};
  const int kRequests = 21;
  std::vector<Fingerprint> direct;
  for (int i = 0; i < kRequests; ++i) {
    ExecContext ctx;
    direct.push_back(OfDirect(
        RunRegisteredMatcher(mix[static_cast<size_t>(i) % mix.size()],
                             problem, &ctx)));
  }

  for (const int lanes : {1, 2, 8}) {
    ServerOptions options;
    options.lanes = lanes;
    options.max_queue = kRequests;  // admit everything
    Server server(&registry, options);
    std::vector<ResponseFuture> futures;
    for (int i = 0; i < kRequests; ++i) {
      Request request;
      request.dataset = "ds";
      request.matcher = mix[static_cast<size_t>(i) % mix.size()];
      futures.push_back(server.Submit(std::move(request)));
    }
    for (int i = 0; i < kRequests; ++i) {
      const Response& response = futures[static_cast<size_t>(i)].Wait();
      ASSERT_TRUE(response.status.ok())
          << "request " << i << " at lanes=" << lanes << ": "
          << response.status.message;
      EXPECT_TRUE(OfResponse(response) == direct[static_cast<size_t>(i)])
          << "request " << i << " (" << response.stats.algorithm
          << ") diverged at lanes=" << lanes;
    }
    server.Close();
    const ServerCounters counters = server.counters();
    EXPECT_EQ(counters.accepted, kRequests);
    EXPECT_EQ(counters.completed, kRequests);
    EXPECT_EQ(counters.rejected, 0);
  }
}

// --- admission control -----------------------------------------------

/// Matcher stub whose Run() blocks until the test releases it — the
/// deterministic way to hold a lane busy and fill the queue.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  int started = 0;
  bool release = false;

  void WaitForStarted(int n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this, n] { return started >= n; });
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
  }
};

class GatedMatcher : public Matcher {
 public:
  explicit GatedMatcher(std::shared_ptr<Gate> gate)
      : gate_(std::move(gate)) {}
  std::string Name() const override { return "Gated"; }
  AssignResult Run() override {
    {
      std::lock_guard<std::mutex> lock(gate_->mu);
      ++gate_->started;
    }
    gate_->cv.notify_all();
    std::unique_lock<std::mutex> lock(gate_->mu);
    gate_->cv.wait(lock, [this] { return gate_->release; });
    AssignResult result;
    result.stats.algorithm = "Gated";
    return result;
  }

 private:
  std::shared_ptr<Gate> gate_;
};

/// Registers the gated stub (before any server lane exists — Register
/// is not synchronized) and returns its gate.
std::shared_ptr<Gate> RegisterGatedMatcher() {
  auto gate = std::make_shared<Gate>();
  MatcherInfo info;
  info.name = "Gated";
  info.description = "test stub: blocks until released";
  info.factory = [gate](const MatcherEnv&) {
    return std::make_unique<GatedMatcher>(gate);
  };
  MatcherRegistry::Global().Register(std::move(info));
  return gate;
}

TEST(ServeAdmissionTest, FullQueueRejectsWithOverloaded) {
  const AssignmentProblem problem = SmallProblem(46000);
  DatasetRegistry registry;
  registry.Open("ds", problem);
  std::shared_ptr<Gate> gate = RegisterGatedMatcher();

  ServerOptions options;
  options.lanes = 1;
  options.max_queue = 1;
  Server server(&registry, options);

  Request request;
  request.dataset = "ds";
  request.matcher = "Gated";

  // First request occupies the single lane...
  ResponseFuture running = server.Submit(request);
  gate->WaitForStarted(1);
  // ...second fills the queue...
  ResponseFuture queued = server.Submit(request);
  // ...third must be rejected, immediately and without blocking.
  ResponseFuture rejected = server.Submit(request);
  EXPECT_TRUE(rejected.done());
  EXPECT_EQ(rejected.Wait().status.code, ServeCode::kOverloaded);

  gate->Release();
  EXPECT_TRUE(running.Wait().status.ok());
  EXPECT_TRUE(queued.Wait().status.ok());

  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.accepted, 2);
  EXPECT_EQ(counters.rejected, 1);
}

TEST(ServeAdmissionTest, InflightCapRejectsWithOverloaded) {
  const AssignmentProblem problem = SmallProblem(46500);
  DatasetRegistry registry;
  registry.Open("ds", problem);
  std::shared_ptr<Gate> gate = RegisterGatedMatcher();

  ServerOptions options;
  options.lanes = 2;
  options.max_queue = 16;
  options.max_inflight = 2;  // both lanes busy = at capacity
  Server server(&registry, options);

  Request request;
  request.dataset = "ds";
  request.matcher = "Gated";
  ResponseFuture a = server.Submit(request);
  ResponseFuture b = server.Submit(request);
  gate->WaitForStarted(2);
  ResponseFuture c = server.Submit(request);
  EXPECT_TRUE(c.done());
  EXPECT_EQ(c.Wait().status.code, ServeCode::kOverloaded);

  gate->Release();
  EXPECT_TRUE(a.Wait().status.ok());
  EXPECT_TRUE(b.Wait().status.ok());
}

TEST(ServeAdmissionTest, DrainCompletesEveryAcceptedRequest) {
  const AssignmentProblem problem = SmallProblem(47000);
  DatasetRegistry registry;
  registry.Open("ds", problem);

  ServerOptions options;
  options.lanes = 2;
  options.max_queue = 64;
  Server server(&registry, options);

  std::vector<ResponseFuture> futures;
  for (int i = 0; i < 16; ++i) {
    Request request;
    request.dataset = "ds";
    request.matcher = (i % 2 == 0) ? "SB" : "BruteForce";
    futures.push_back(server.Submit(std::move(request)));
  }
  server.Close();  // must drain, not drop

  int completed_ok = 0;
  for (ResponseFuture& future : futures) {
    const Response& response = future.Wait();
    if (response.status.ok()) ++completed_ok;
    EXPECT_GT(response.stats.pairs, 0u);
  }
  EXPECT_EQ(completed_ok, 16);

  // After Close, new submissions are turned away with kUnavailable.
  Request late;
  late.dataset = "ds";
  late.matcher = "SB";
  const Response response = server.Execute(late);
  EXPECT_EQ(response.status.code, ServeCode::kUnavailable);
  EXPECT_EQ(server.counters().completed, 16);
}

// --- typed errors instead of CHECK-fails -----------------------------

TEST(ServeErrorTest, BadRequestsGetTypedStatusesNotCrashes) {
  const AssignmentProblem problem = SmallProblem(48000);
  DatasetRegistry registry;
  registry.Open("plain", problem, [] {
    DatasetOptions o;
    o.build_packed = false;  // no packed image
    return o;
  }());
  Server server(&registry);

  Request request;
  request.dataset = "plain";
  request.matcher = "NoSuchMatcher";
  EXPECT_EQ(server.Execute(request).status.code, ServeCode::kNotFound);

  request.matcher = "SB";
  request.dataset = "no-such-dataset";
  EXPECT_EQ(server.Execute(request).status.code, ServeCode::kNotFound);

  request.dataset = "plain";
  request.matcher = "SB-Packed";  // needs the packed image
  EXPECT_EQ(server.Execute(request).status.code,
            ServeCode::kFailedPrecondition);

  request.matcher = "SB";
  request.buffer_fraction = -0.5;
  EXPECT_EQ(server.Execute(request).status.code,
            ServeCode::kInvalidArgument);

  // The service survived all of it.
  request.buffer_fraction = 0.02;
  EXPECT_TRUE(server.Execute(request).status.ok());
  EXPECT_EQ(server.counters().rejected, 4);
}

// --- dataset lifecycle -----------------------------------------------

TEST(DatasetLifecycleTest, SecondOpenSharesTheResidentStructures) {
  const AssignmentProblem problem = SmallProblem(49000);
  DatasetRegistry registry;
  DatasetHandle first = registry.Open("ds", problem);
  DatasetHandle second = registry.Open("ds", problem);
  EXPECT_EQ(first.get(), second.get()) << "warm open rebuilt the dataset";
  EXPECT_EQ(registry.cold_opens(), 1);
  EXPECT_EQ(registry.warm_opens(), 1);
  EXPECT_GT(first->build_ms(), 0.0);
  EXPECT_GT(first->memory_bytes(), 0u);
  EXPECT_EQ(registry.Names(), std::vector<std::string>{"ds"});
}

TEST(DatasetLifecycleTest, CloseWhileHandlesLiveIsSafe) {
  const AssignmentProblem problem = SmallProblem(49500);
  DatasetRegistry registry;
  DatasetHandle handle = registry.Open("ds", problem);
  EXPECT_TRUE(registry.Close("ds").ok());
  EXPECT_EQ(registry.Find("ds"), nullptr);
  EXPECT_EQ(registry.Close("ds").code, ServeCode::kNotFound);

  // The outstanding handle still works: the structures live until the
  // last reference drops.
  EXPECT_EQ(handle->problem().objects.size(), problem.objects.size());
  EXPECT_GT(handle->tree()->size(), 0);

  // Re-opening builds fresh structures (a cold open again).
  DatasetHandle reopened = registry.Open("ds", problem);
  EXPECT_NE(reopened.get(), handle.get());
  EXPECT_EQ(registry.cold_opens(), 2);
}

TEST(DatasetLifecycleTest, CloseUnderInflightTrafficIsSafe) {
  const AssignmentProblem problem = SmallProblem(49800);
  DatasetRegistry registry;
  registry.Open("ds", problem);
  std::shared_ptr<Gate> gate = RegisterGatedMatcher();

  ServerOptions options;
  options.lanes = 1;
  Server server(&registry, options);

  Request gated;
  gated.dataset = "ds";
  gated.matcher = "Gated";
  ResponseFuture inflight = server.Submit(gated);
  gate->WaitForStarted(1);

  // Drop the registry's reference while the request holds its own.
  EXPECT_TRUE(registry.Close("ds").ok());
  gate->Release();
  EXPECT_TRUE(inflight.Wait().status.ok());

  // The dataset is gone for NEW requests only.
  Request late;
  late.dataset = "ds";
  late.matcher = "SB";
  EXPECT_EQ(server.Execute(late).status.code, ServeCode::kNotFound);
}

// OpenOrError attaches a pre-built packed image and reports attach
// failures typed, with the PackedOpenError class in the detail — the
// difference between "deploy the file" (kNotFound), "rebuild the image"
// (kDataLoss) and "wrong problem" (kFailedPrecondition).
TEST(DatasetLifecycleTest, OpenOrErrorReportsTypedPackedImageFailures) {
  const AssignmentProblem problem = SmallProblem(49900);
  const std::string path = ::testing::TempDir() + "/serve_packed_image.pkfl";
  std::string error;
  ASSERT_TRUE(PackedFunctionStore::WriteFile(problem.functions, path,
                                             /*block_entries=*/64, &error))
      << error;

  DatasetRegistry registry;
  DatasetOptions options;
  options.packed_image_path = path;

  // A good image opens cold and serves the *-Packed variants.
  DatasetHandle handle;
  ASSERT_TRUE(registry.OpenOrError("ds", problem, options, &handle).ok());
  ASSERT_NE(handle, nullptr);
  ASSERT_NE(handle->packed(), nullptr);
  EXPECT_EQ(handle->packed()->size(),
            static_cast<int>(problem.functions.size()));

  // Missing file: kNotFound, classed IO_ERROR.
  options.packed_image_path = path + ".missing";
  ServeStatus status = registry.OpenOrError("other", problem, options);
  EXPECT_EQ(status.code, ServeCode::kNotFound);
  EXPECT_NE(status.message.find("IO_ERROR"), std::string::npos)
      << status.message;

  // Image for a different problem shape: kFailedPrecondition.
  options.packed_image_path = path;
  AssignmentProblem mismatched = problem;
  mismatched.functions.pop_back();
  status = registry.OpenOrError("other", mismatched, options);
  EXPECT_EQ(status.code, ServeCode::kFailedPrecondition);

  // Damaged image: kDataLoss, with the corruption class named.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_SET);
    std::fputc('X', f);  // clobber the magic
    std::fclose(f);
  }
  status = registry.OpenOrError("other", problem, options);
  EXPECT_EQ(status.code, ServeCode::kDataLoss);
  EXPECT_NE(status.message.find("BAD_MAGIC"), std::string::npos)
      << status.message;

  // The already-resident dataset is untouched by the failures above.
  EXPECT_TRUE(registry.OpenOrError("ds", problem, options).ok());
  std::remove(path.c_str());
}

// Epoch republish: a request is pinned to the epoch resident at
// Submit(). Requests submitted before a Publish() finish on the old
// epoch and byte-match the old dataset; requests submitted after see
// the new one; and once the server closes and every handle drops, the
// old epoch's refcount drains to zero.
TEST(DatasetLifecycleTest, RepublishStraddlingRequestsServeTheirEpoch) {
  const AssignmentProblem problem = SmallProblem(50100);
  DatasetRegistry registry;
  DatasetHandle old_epoch = registry.Open("ds", problem);

  // Build the next epoch off-lock while the old one serves. The batch
  // churns a function and the tiny compaction threshold forces a fresh
  // flat packed image: an overlay epoch would otherwise keep the old
  // epoch alive on purpose (it shares the old flat image), and this
  // test wants to watch the old epoch's refcount drain to zero.
  update::DeltaOptions doptions;
  doptions.compaction_threshold = 0.01;
  update::DeltaBuilder builder(old_epoch, doptions);
  update::UpdateBatch batch;
  for (ObjectId oid = 0; oid < 25; ++oid) batch.delete_objects.push_back(oid);
  batch.delete_functions.push_back(0);
  Rng fn_rng(50123);
  batch.insert_functions = GenerateFunctions(1, problem.dims, &fn_rng);
  ASSERT_TRUE(builder.Apply(batch, nullptr).ok());
  DatasetHandle new_epoch = builder.current();

  const uint64_t old_hash =
      MatchingHash(update::RunOnDataset(*old_epoch, "SB").matching);
  const uint64_t new_hash =
      MatchingHash(update::RunOnDataset(*new_epoch, "SB").matching);
  ASSERT_NE(old_hash, new_hash)
      << "the update must change the matching for the straddle to bite";

  ServerOptions options;
  options.lanes = 2;
  options.max_queue = 64;
  Server server(&registry, options);

  Request request;
  request.dataset = "ds";
  request.matcher = "SB";
  constexpr int kEach = 8;
  std::vector<ResponseFuture> before;
  for (int i = 0; i < kEach; ++i) before.push_back(server.Submit(request));

  DatasetHandle replaced = registry.Publish(new_epoch);
  ASSERT_EQ(replaced.get(), old_epoch.get());
  EXPECT_EQ(registry.republishes(), 1);

  std::vector<ResponseFuture> after;
  for (int i = 0; i < kEach; ++i) after.push_back(server.Submit(request));

  for (int i = 0; i < kEach; ++i) {
    const Response& response = before[i].Wait();
    ASSERT_TRUE(response.status.ok()) << response.status.message;
    EXPECT_EQ(MatchingHash(response.matching), old_hash)
        << "pre-publish request " << i << " left its epoch";
  }
  for (int i = 0; i < kEach; ++i) {
    const Response& response = after[i].Wait();
    ASSERT_TRUE(response.status.ok()) << response.status.message;
    EXPECT_EQ(MatchingHash(response.matching), new_hash)
        << "post-publish request " << i << " served the stale epoch";
  }
  server.Close();

  // Refcount drain: the server is closed and the registry now maps the
  // name to the new epoch, so dropping the local handles must destroy
  // the old epoch.
  std::weak_ptr<const ResidentDataset> old_weak = old_epoch;
  before.clear();
  after.clear();
  replaced.reset();
  old_epoch.reset();
  EXPECT_TRUE(old_weak.expired()) << "old epoch leaked after republish";
}

}  // namespace
}  // namespace fairmatch::serve

// Shared helpers for the fairmatch test suite.
#ifndef FAIRMATCH_TESTS_TEST_UTIL_H_
#define FAIRMATCH_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "fairmatch/assign/problem.h"
#include "fairmatch/common/check.h"
#include "fairmatch/common/rng.h"
#include "fairmatch/data/synthetic.h"
#include "fairmatch/engine/registry.h"
#include "fairmatch/geom/point.h"
#include "fairmatch/rtree/node_store.h"
#include "fairmatch/rtree/rtree.h"
#include "fairmatch/topk/disk_function_lists.h"
#include "fairmatch/topk/packed_function_lists.h"

namespace fairmatch::testing {

/// Parameters for random problem construction.
struct ProblemSpec {
  int num_functions = 20;
  int num_objects = 100;
  int dims = 3;
  Distribution distribution = Distribution::kIndependent;
  uint64_t seed = 42;
  int function_capacity = 1;
  int object_capacity = 1;
  int max_gamma = 1;  // > 1 enables priorities
};

inline AssignmentProblem RandomProblem(const ProblemSpec& spec) {
  Rng rng(spec.seed);
  std::vector<Point> points =
      GeneratePoints(spec.distribution, spec.num_objects, spec.dims, &rng);
  FunctionSet fns = GenerateFunctions(spec.num_functions, spec.dims, &rng);
  if (spec.max_gamma > 1) AssignPriorities(&fns, spec.max_gamma, &rng);
  if (spec.function_capacity != 1) {
    SetFunctionCapacities(&fns, spec.function_capacity);
  }
  return MakeProblem(std::move(points), std::move(fns),
                     spec.object_capacity);
}

/// Points snapped to a coarse grid: guarantees heavy score ties and
/// duplicate points.
inline std::vector<Point> GridPoints(int n, int dims, int levels,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  for (int i = 0; i < n; ++i) {
    Point p(dims);
    for (int d = 0; d < dims; ++d) {
      p[d] = static_cast<float>(rng.UniformInt(0, levels)) / levels;
    }
    points.push_back(p);
  }
  return points;
}

/// Functions with grid weights (ties across functions are common).
inline FunctionSet GridFunctions(int n, int dims, int levels,
                                 uint64_t seed) {
  Rng rng(seed);
  FunctionSet fns;
  fns.reserve(n);
  for (int i = 0; i < n; ++i) {
    PrefFunction f;
    f.id = i;
    f.dims = dims;
    double total = 0.0;
    double w[kMaxDims];
    for (int d = 0; d < dims; ++d) {
      w[d] = static_cast<double>(rng.UniformInt(0, levels));
      total += w[d];
    }
    for (int d = 0; d < dims; ++d) {
      f.alpha[d] = total > 0 ? w[d] / total : 1.0 / dims;
    }
    fns.push_back(f);
  }
  return fns;
}

/// An object R-tree in memory for a problem.
struct MemTree {
  explicit MemTree(const AssignmentProblem& problem)
      : store(problem.dims), tree(&store) {
    BuildObjectTree(problem, &tree);
  }
  MemNodeStore store;
  RTree tree;
};

/// Runs the registered matcher `name` on a fresh in-memory tree (safe
/// for tree-mutating matchers). A disk-resident function store is built
/// where the variant requires one, or for any variant when
/// `force_disk_functions` is set (the Section 7.6 test setting); a
/// packed store (in-memory, or file-backed when `packed_mmap` is set)
/// is built for variants that require that. Instrumentation goes
/// through `ctx` when given.
inline AssignResult RunRegisteredMatcher(const std::string& name,
                                         const AssignmentProblem& problem,
                                         ExecContext* ctx = nullptr,
                                         bool force_disk_functions = false,
                                         double buffer_fraction = 0.02,
                                         bool packed_mmap = false) {
  const MatcherInfo* info = MatcherRegistry::Global().Find(name);
  FAIRMATCH_CHECK(info != nullptr);
  MemTree mem(problem);
  std::unique_ptr<DiskFunctionStore> fstore;
  std::unique_ptr<PackedFunctionStore> pstore;
  MatcherEnv env;
  env.problem = &problem;
  env.tree = &mem.tree;
  env.buffer_fraction = buffer_fraction;
  env.ctx = ctx;
  if (info->needs_disk_functions || force_disk_functions) {
    fstore = std::make_unique<DiskFunctionStore>(
        problem.functions, buffer_fraction,
        ctx != nullptr ? &ctx->counters() : nullptr);
    env.fn_store = fstore.get();
    if (ctx != nullptr) ctx->set_function_backend("disk");
  }
  if (info->needs_packed_functions) {
    PackedStoreOptions popts;
    popts.use_mmap = packed_mmap;
    pstore = std::make_unique<PackedFunctionStore>(problem.functions, popts);
    env.packed_fns = pstore.get();
    if (ctx != nullptr) {
      ctx->set_function_backend(pstore->mapped() ? "packed-mmap" : "packed");
    }
  }
  std::unique_ptr<Matcher> matcher =
      MatcherRegistry::Global().Create(name, env);
  FAIRMATCH_CHECK(matcher != nullptr);
  return matcher->Run();
}

/// Brute-force skyline of a point set (paper dominance: >= everywhere,
/// not coincident).
inline std::vector<int> NaiveSkyline(const std::vector<Point>& points,
                                     const std::vector<bool>* alive =
                                         nullptr) {
  std::vector<int> result;
  for (size_t i = 0; i < points.size(); ++i) {
    if (alive != nullptr && !(*alive)[i]) continue;
    bool dominated = false;
    for (size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i == j) continue;
      if (alive != nullptr && !(*alive)[j]) continue;
      dominated = points[j].Dominates(points[i]);
    }
    if (!dominated) result.push_back(static_cast<int>(i));
  }
  return result;
}

}  // namespace fairmatch::testing

#endif  // FAIRMATCH_TESTS_TEST_UTIL_H_

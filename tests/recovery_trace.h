// Shared harness for the crash-recovery sweeps (tests/recovery_test.cc
// and tests/recovery_kill_test.cc).
//
// The oracle side runs a seeded update trace uncrashed through a
// DurableBuilder and records, per epoch, a state fingerprint covering
// everything the durability layer promises to bring back byte-identical:
// the problem arrays (raw float/double bits), the R-tree shape AND its
// page bytes, the maintained skyline, and the SB matching served off
// the epoch. The sweep side replays the identical trace with a crash
// scheduled at one durable-op boundary, recovers, and compares the
// recovered epoch's fingerprint against the oracle's.
#ifndef FAIRMATCH_TESTS_RECOVERY_TRACE_H_
#define FAIRMATCH_TESTS_RECOVERY_TRACE_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <dirent.h>
#include <stdlib.h>
#include <unistd.h>
#endif

#include "fairmatch/common/check.h"
#include "fairmatch/common/rng.h"
#include "fairmatch/data/synthetic.h"
#include "fairmatch/recover/durable_builder.h"
#include "fairmatch/serve/dataset_registry.h"
#include "fairmatch/storage/fault_injector.h"
#include "fairmatch/update/delta_builder.h"
#include "fairmatch/update/stream_matcher.h"
#include "test_util.h"

namespace fairmatch::testing {

inline uint64_t RecFnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

inline uint64_t RecFnvBytes(uint64_t h, const void* bytes, size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(bytes);
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

inline uint64_t RecF32Bits(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline uint64_t RecF64Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Byte-level fingerprint of one epoch: problem + tree pages + skyline
/// + the SB matching it serves. Two datasets with equal fingerprints
/// are indistinguishable to every consumer the repo has.
inline uint64_t StateFingerprint(const serve::ResidentDataset& dataset) {
  uint64_t h = 1469598103934665603ull;
  const AssignmentProblem& problem = dataset.problem();
  h = RecFnv1a(h, static_cast<uint64_t>(problem.dims));
  for (const ObjectItem& o : problem.objects) {
    for (int d = 0; d < problem.dims; ++d) h = RecFnv1a(h, RecF32Bits(o.point[d]));
    h = RecFnv1a(h, static_cast<uint64_t>(o.capacity));
  }
  for (const PrefFunction& f : problem.functions) {
    for (int d = 0; d < problem.dims; ++d) h = RecFnv1a(h, RecF64Bits(f.alpha[d]));
    h = RecFnv1a(h, RecF64Bits(f.gamma));
    h = RecFnv1a(h, static_cast<uint64_t>(f.capacity));
  }
  const RTree* tree = dataset.tree();
  h = RecFnv1a(h, static_cast<uint64_t>(tree->root()));
  h = RecFnv1a(h, static_cast<uint64_t>(tree->root_level()));
  h = RecFnv1a(h, static_cast<uint64_t>(tree->size()));
  const MemNodeStore& store = dataset.node_store();
  h = RecFnv1a(h, static_cast<uint64_t>(store.num_pages()));
  for (PageId pid = 0; pid < store.num_pages(); ++pid) {
    if (!store.has_page(pid)) continue;
    h = RecFnv1a(h, static_cast<uint64_t>(pid));
    h = RecFnvBytes(h, store.page_bytes(pid), kPageSize);
  }
  for (const ObjectRecord& m : dataset.skyline()) {
    h = RecFnv1a(h, static_cast<uint64_t>(m.id));
    for (int d = 0; d < problem.dims; ++d) h = RecFnv1a(h, RecF32Bits(m.point[d]));
  }
  const AssignResult sb = update::RunOnDataset(dataset, "SB");
  for (const MatchPair& p : sb.matching) {
    h = RecFnv1a(h, static_cast<uint64_t>(p.fid));
    h = RecFnv1a(h, static_cast<uint64_t>(p.oid));
  }
  return h;
}

inline std::string MakeRecoveryDir(const std::string& tag) {
#if defined(__unix__) || defined(__APPLE__)
  std::string tmpl = ::testing::TempDir() + "/" + tag + "_XXXXXX";
  std::vector<char> buffer(tmpl.begin(), tmpl.end());
  buffer.push_back('\0');
  const char* made = mkdtemp(buffer.data());
  if (made != nullptr) return std::string(made);
#endif
  const std::string fallback = ::testing::TempDir() + "/" + tag;
  return fallback;
}

/// Best-effort rm -rf of a flat log directory.
inline void RemoveRecoveryDir(const std::string& dir) {
#if defined(__unix__) || defined(__APPLE__)
  DIR* d = opendir(dir.c_str());
  if (d != nullptr) {
    while (dirent* entry = readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      std::remove((dir + "/" + name).c_str());
    }
    closedir(d);
  }
  rmdir(dir.c_str());
#endif
}

/// The deterministic update trace one sweep seed runs.
struct TraceSpec {
  uint64_t seed = 1;
  int steps = 6;
  int snapshot_threshold = 3;  // two checkpoints inside a 6-step trace
};

/// Same generator as the update differential suite, smaller knobs: the
/// sweep reruns the trace once per durable-op boundary.
inline update::UpdateBatch RecoveryBatch(Rng* rng,
                                         const AssignmentProblem& problem,
                                         int mode) {
  update::UpdateBatch batch;
  const int num_objects = static_cast<int>(problem.objects.size());
  const int num_functions = static_cast<int>(problem.functions.size());
  if (mode % 3 != 0) {  // deletes
    const int want =
        static_cast<int>(rng->UniformInt(1, std::max(1, num_objects / 6)));
    std::vector<bool> picked(num_objects, false);
    for (int i = 0; i < want && static_cast<int>(batch.delete_objects.size()) <
                                    num_objects - 2;
         ++i) {
      const int id = static_cast<int>(rng->UniformInt(0, num_objects - 1));
      if (picked[id]) continue;
      picked[id] = true;
      batch.delete_objects.push_back(id);
    }
    if (num_functions > 3 && rng->UniformInt(0, 1) == 1) {
      batch.delete_functions.push_back(
          static_cast<FunctionId>(rng->UniformInt(0, num_functions - 1)));
    }
  }
  if (mode % 3 != 1) {  // inserts
    const int want =
        static_cast<int>(rng->UniformInt(1, std::max(1, num_objects / 8)));
    for (int i = 0; i < want; ++i) {
      ObjectItem o;
      o.point = Point(problem.dims);
      for (int d = 0; d < problem.dims; ++d) {
        o.point[d] = static_cast<float>(rng->Uniform());
      }
      batch.insert_objects.push_back(o);
    }
    if (rng->UniformInt(0, 1) == 1) {
      Rng fn_rng(static_cast<uint64_t>(rng->UniformInt(1, 1 << 20)));
      FunctionSet fresh = GenerateFunctions(
          static_cast<int>(rng->UniformInt(1, 2)), problem.dims, &fn_rng);
      for (PrefFunction& f : fresh) batch.insert_functions.push_back(f);
    }
  }
  return batch;
}

inline AssignmentProblem RecoveryProblem(uint64_t seed) {
  ProblemSpec spec;
  spec.num_functions = 16;
  spec.num_objects = 90;
  spec.dims = 3;
  spec.distribution = Distribution::kAntiCorrelated;
  spec.seed = seed;
  spec.max_gamma = 3;
  return RandomProblem(spec);
}

/// Everything the sweep needs to judge a crashed run of `spec`.
struct TraceOracle {
  AssignmentProblem problem;
  std::vector<update::UpdateBatch> batches;  // batches[i] -> epoch i + 2
  std::map<int64_t, uint64_t> expected;      // epoch -> StateFingerprint
  int64_t final_epoch = 0;
  int64_t total_durable_ops = 0;  // boundaries one uncrashed trace crosses
};

inline recover::DurableOptions MakeDurableOptions(const std::string& dir,
                                                  int snapshot_threshold,
                                                  FaultInjector* injector) {
  recover::DurableOptions options;
  options.dir = dir;
  options.snapshot_threshold = snapshot_threshold;
  options.injector = injector;
  return options;
}

/// Runs `spec` uncrashed in a throwaway directory, recording batches,
/// per-epoch fingerprints and the durable-op boundary count.
inline TraceOracle BuildTraceOracle(const TraceSpec& spec) {
  TraceOracle oracle;
  oracle.problem = RecoveryProblem(spec.seed);
  const std::string dir = MakeRecoveryDir("recovery_oracle");

  FaultInjector counter{FaultInjectorOptions{}};  // counts, never fires
  serve::DatasetRegistry registry;
  serve::DatasetHandle base = registry.Open("trace", oracle.problem, {});
  std::unique_ptr<recover::DurableBuilder> builder;
  const serve::ServeStatus boot = recover::DurableBuilder::Bootstrap(
      base, MakeDurableOptions(dir, spec.snapshot_threshold, &counter),
      &builder);
  FAIRMATCH_CHECK(boot.ok());
  oracle.expected[builder->epoch()] = StateFingerprint(*builder->current());

  Rng rng(spec.seed * 7919 + 17);
  for (int step = 1; step <= spec.steps; ++step) {
    const update::UpdateBatch batch =
        RecoveryBatch(&rng, builder->current()->problem(), step);
    oracle.batches.push_back(batch);
    const serve::ServeStatus status = builder->Apply(batch);
    FAIRMATCH_CHECK(status.ok());
    oracle.expected[builder->epoch()] =
        StateFingerprint(*builder->current());
  }
  oracle.final_epoch = builder->epoch();
  oracle.total_durable_ops = counter.counters().durable_ops;
  builder.reset();
  RemoveRecoveryDir(dir);
  return oracle;
}

/// Replays the oracle's trace in `dir` with `injector` armed. Updates
/// *last_completed after every DurableBuilder call that RETURNS —
/// under a crash schedule the call at the scheduled boundary never
/// returns, so on unwind *last_completed holds the newest epoch the
/// caller was actually acknowledged. Throws InjectedCrash (kThrow
/// mode) or dies by SIGKILL (kKill mode) at the scheduled boundary.
inline void RunCrashTrace(const std::string& dir, const TraceOracle& oracle,
                          int snapshot_threshold, FaultInjector* injector,
                          int64_t* last_completed) {
  serve::DatasetRegistry registry;
  serve::DatasetHandle base = registry.Open("trace", oracle.problem, {});
  std::unique_ptr<recover::DurableBuilder> builder;
  const serve::ServeStatus boot = recover::DurableBuilder::Bootstrap(
      base, MakeDurableOptions(dir, snapshot_threshold, injector), &builder);
  FAIRMATCH_CHECK(boot.ok());
  *last_completed = builder->epoch();
  for (const update::UpdateBatch& batch : oracle.batches) {
    builder->Apply(batch);
    *last_completed = builder->epoch();
  }
}

}  // namespace fairmatch::testing

#endif  // FAIRMATCH_TESTS_RECOVERY_TRACE_H_

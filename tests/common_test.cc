// Unit tests for fairmatch/common.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "fairmatch/common/float_util.h"
#include "fairmatch/common/preference.h"
#include "fairmatch/common/rng.h"
#include "fairmatch/common/stats.h"
#include "fairmatch/common/timer.h"

namespace fairmatch {
namespace {

TEST(RngTest, DeterministicBySeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Uniform() == b.Uniform()) same++;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(4);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(1, 4);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values hit
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(1.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(PerfCountersTest, IoAccessesSumsReadsAndWrites) {
  PerfCounters counters;
  counters.page_reads = 7;
  counters.page_writes = 5;
  EXPECT_EQ(counters.io_accesses(), 12);
  counters.Reset();
  EXPECT_EQ(counters.io_accesses(), 0);
  EXPECT_EQ(counters.buffer_hits, 0);
}

TEST(PerfCountersTest, ToStringMentionsCounts) {
  PerfCounters counters;
  counters.page_reads = 3;
  EXPECT_NE(counters.ToString().find("reads=3"), std::string::npos);
}

TEST(MemoryTrackerTest, TracksPeak) {
  MemoryTracker tracker;
  tracker.Set(100);
  tracker.Set(50);
  EXPECT_EQ(tracker.current(), 50u);
  EXPECT_EQ(tracker.peak(), 100u);
  tracker.Add(200);
  EXPECT_EQ(tracker.peak(), 250u);
  tracker.Reset();
  EXPECT_EQ(tracker.peak(), 0u);
}

TEST(FloatUpTest, NeverBelowInput) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.Uniform() * rng.Uniform(0.1, 16.0);
    float f = FloatUp(x);
    EXPECT_GE(static_cast<double>(f), x);
    // And tight: at most one ulp above the rounded value.
    float down = std::nextafterf(f, 0.0f);
    EXPECT_LT(static_cast<double>(down), x + 1e-30);
  }
}

TEST(FloatUpTest, ExactValuesUnchanged) {
  EXPECT_EQ(FloatUp(0.5), 0.5f);
  EXPECT_EQ(FloatUp(0.25), 0.25f);
  EXPECT_EQ(FloatUp(1.0), 1.0f);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GE(t.ElapsedMs(), 0.0);
  (void)sink;
}

TEST(PrefFunctionTest, ScoreIsEffectiveDotProduct) {
  PrefFunction f;
  f.id = 0;
  f.dims = 3;
  f.alpha = {0.5, 0.3, 0.2};
  f.gamma = 2.0;
  Point p(3);
  p[0] = 1.0f;
  p[1] = 0.5f;
  p[2] = 0.0f;
  EXPECT_DOUBLE_EQ(f.Score(p), 0.5 * 2 * 1.0 + 0.3 * 2 * 0.5 + 0.0);
  EXPECT_DOUBLE_EQ(f.eff(0), 1.0);
}

TEST(PrefFunctionTest, MaxScoreBoundsScoreInsideBox) {
  PrefFunction f;
  f.id = 0;
  f.dims = 2;
  f.alpha = {0.7, 0.3};
  Point lo(2, 0.2f);
  Point hi(2, 0.8f);
  MBR box(lo, hi);
  Point inside(2, 0.5f);
  EXPECT_LE(f.Score(inside), f.MaxScore(box));
}

}  // namespace
}  // namespace fairmatch

// Seed-behavior parity for the hot-path rewrite (flat candidate heap,
// arena-backed BBS, SoA SB-alt): every registered matcher must still
// produce the byte-identical assignment sequence and the identical
// deterministic counters (io_accesses, pairs, loops) that the
// pre-rewrite code produced, for in-memory and disk-resident function
// settings and for both TA probing strategies. The golden values below
// were captured from the seed implementation on the same fixed
// problems; matchings are compared through an order-sensitive FNV-1a
// hash of the (fid, oid) sequence.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "fairmatch/assign/sb.h"
#include "fairmatch/engine/exec_context.h"
#include "fairmatch/topk/function_lists.h"
#include "test_util.h"

namespace fairmatch {
namespace {

using fairmatch::testing::MemTree;
using fairmatch::testing::ProblemSpec;
using fairmatch::testing::RandomProblem;
using fairmatch::testing::RunRegisteredMatcher;

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t MatchingHash(const Matching& m) {
  uint64_t h = 1469598103934665603ull;
  for (const MatchPair& p : m) {
    h = Fnv1a(h, static_cast<uint64_t>(p.fid));
    h = Fnv1a(h, static_cast<uint64_t>(p.oid));
  }
  return h;
}

// Shapes chosen to exercise restarts/eviction (anti-correlated),
// capacities, priorities and every dimensionality the paper sweeps.
const ProblemSpec kSpecs[] = {
    ProblemSpec{40, 300, 3, Distribution::kAntiCorrelated, 7001},
    ProblemSpec{30, 250, 4, Distribution::kIndependent, 7002},
    ProblemSpec{25, 200, 3, Distribution::kCorrelated, 7003, 2, 1, 1},
    ProblemSpec{20, 200, 4, Distribution::kAntiCorrelated, 7004, 1, 2, 1},
    ProblemSpec{30, 220, 3, Distribution::kIndependent, 7005, 1, 1, 4},
};

struct MatcherGolden {
  size_t spec;
  const char* name;
  int64_t io_accesses;
  uint64_t pairs;
  int64_t loops;
  uint64_t matching_hash;
};

// Captured from the seed implementation (in-memory function lists).
const MatcherGolden kMatcherGoldens[] = {
    {0, "BruteForce", 0, 40, 116, 0x4593b914dac9ec5bull},
    {0, "Chain", 0, 40, 117, 0xc990f463e9ee2adfull},
    {0, "Naive", 0, 40, 0, 0x4593b914dac9ec5bull},
    {0, "SB", 0, 40, 12, 0xede54ad4b4de17e3ull},
    {0, "SB-DeltaSky", 0, 40, 40, 0x4593b914dac9ec5bull},
    {0, "SB-SinglePair", 0, 40, 40, 0x4593b914dac9ec5bull},
    {0, "SB-TwoSkylines", 0, 40, 12, 0xede54ad4b4de17e3ull},
    {0, "SB-UpdateSkyline", 0, 40, 40, 0x4593b914dac9ec5bull},
    {0, "SB-alt", 520, 40, 12, 0xede54ad4b4de17e3ull},
    {0, "SB-alt-Packed", 0, 40, 12, 0xede54ad4b4de17e3ull},
    {0, "SB-Packed", 0, 40, 12, 0xede54ad4b4de17e3ull},
    {1, "BruteForce", 0, 30, 67, 0x8fa050d81831063full},
    {1, "Chain", 0, 30, 69, 0xf9565a2bb04972ffull},
    {1, "Naive", 0, 30, 0, 0x8fa050d81831063full},
    {1, "SB", 0, 30, 7, 0x2c9b31ce674f49bfull},
    {1, "SB-DeltaSky", 0, 30, 30, 0x8fa050d81831063full},
    {1, "SB-SinglePair", 0, 30, 30, 0x8fa050d81831063full},
    {1, "SB-TwoSkylines", 0, 30, 7, 0x2c9b31ce674f49bfull},
    {1, "SB-UpdateSkyline", 0, 30, 30, 0x8fa050d81831063full},
    {1, "SB-alt", 277, 30, 7, 0x2c9b31ce674f49bfull},
    {1, "SB-alt-Packed", 0, 30, 7, 0x2c9b31ce674f49bfull},
    {1, "SB-Packed", 0, 30, 7, 0x2c9b31ce674f49bfull},
    {2, "BruteForce", 0, 50, 180, 0xb7d6f2b985be8e1dull},
    {2, "Chain", 0, 50, 108, 0x399e66f06f4a6b1dull},
    {2, "Naive", 0, 50, 0, 0xb7d6f2b985be8e1dull},
    {2, "SB", 0, 50, 23, 0xe879ff576277a9ddull},
    {2, "SB-DeltaSky", 0, 50, 50, 0xb7d6f2b985be8e1dull},
    {2, "SB-SinglePair", 0, 50, 50, 0xb7d6f2b985be8e1dull},
    {2, "SB-TwoSkylines", 0, 50, 23, 0xe879ff576277a9ddull},
    {2, "SB-UpdateSkyline", 0, 50, 50, 0xb7d6f2b985be8e1dull},
    {2, "SB-alt", 645, 50, 23, 0xe879ff576277a9ddull},
    {2, "SB-alt-Packed", 0, 50, 23, 0xe879ff576277a9ddull},
    {2, "SB-Packed", 0, 50, 23, 0xe879ff576277a9ddull},
    {3, "BruteForce", 0, 20, 31, 0x956d57b9357fa57eull},
    {3, "Chain", 0, 20, 37, 0x6168da9cabc3993eull},
    {3, "Naive", 0, 20, 0, 0x956d57b9357fa57eull},
    {3, "SB", 0, 20, 7, 0xf3fcbe51c5f5f3beull},
    {3, "SB-DeltaSky", 0, 20, 20, 0x956d57b9357fa57eull},
    {3, "SB-SinglePair", 0, 20, 20, 0x956d57b9357fa57eull},
    {3, "SB-TwoSkylines", 0, 20, 7, 0xf3fcbe51c5f5f3beull},
    {3, "SB-UpdateSkyline", 0, 20, 20, 0x956d57b9357fa57eull},
    {3, "SB-alt", 223, 20, 7, 0xf3fcbe51c5f5f3beull},
    {3, "SB-alt-Packed", 0, 20, 7, 0xf3fcbe51c5f5f3beull},
    {3, "SB-Packed", 0, 20, 7, 0xf3fcbe51c5f5f3beull},
    {4, "BruteForce", 0, 30, 63, 0xc0117845d4c28cc4ull},
    {4, "Chain", 0, 30, 84, 0x5db5c67a94b2cb04ull},
    {4, "Naive", 0, 30, 0, 0xc0117845d4c28cc4ull},
    {4, "SB", 0, 30, 13, 0xad4ceb66c01a1504ull},
    {4, "SB-DeltaSky", 0, 30, 30, 0xc0117845d4c28cc4ull},
    {4, "SB-SinglePair", 0, 30, 30, 0xc0117845d4c28cc4ull},
    {4, "SB-TwoSkylines", 0, 30, 13, 0xad4ceb66c01a1504ull},
    {4, "SB-UpdateSkyline", 0, 30, 30, 0xc0117845d4c28cc4ull},
    {4, "SB-alt", 417, 30, 13, 0xad4ceb66c01a1504ull},
    {4, "SB-alt-Packed", 0, 30, 13, 0xad4ceb66c01a1504ull},
    {4, "SB-Packed", 0, 30, 13, 0xad4ceb66c01a1504ull},
};

TEST(PerfParityTest, EveryRegisteredMatcherReproducesSeedBehavior) {
  // The golden table must stay exhaustive: a newly registered matcher
  // shows up as a count mismatch, not as silent non-coverage.
  const size_t num_specs = std::size(kSpecs);
  EXPECT_EQ(std::size(kMatcherGoldens),
            num_specs * MatcherRegistry::Global().Names().size())
      << "new matcher registered: extend the golden table";
  size_t spec_index = static_cast<size_t>(-1);
  AssignmentProblem problem;
  for (const MatcherGolden& golden : kMatcherGoldens) {
    if (golden.spec != spec_index) {
      spec_index = golden.spec;
      problem = RandomProblem(kSpecs[spec_index]);
    }
    ExecContext ctx;
    AssignResult got = RunRegisteredMatcher(golden.name, problem, &ctx);
    EXPECT_EQ(got.stats.io_accesses, golden.io_accesses)
        << golden.name << " spec " << golden.spec;
    EXPECT_EQ(got.stats.pairs, golden.pairs)
        << golden.name << " spec " << golden.spec;
    EXPECT_EQ(got.stats.loops, golden.loops)
        << golden.name << " spec " << golden.spec;
    EXPECT_EQ(MatchingHash(got.matching), golden.matching_hash)
        << golden.name << " spec " << golden.spec
        << ": assignment sequence diverged from the seed";
  }
}

struct DiskGolden {
  size_t spec;
  const char* name;
  int64_t io_accesses;
  uint64_t pairs;
  int64_t loops;
  uint64_t matching_hash;
};

const ProblemSpec kDiskSpecs[] = {
    ProblemSpec{200, 150, 3, Distribution::kAntiCorrelated, 8001},
    ProblemSpec{150, 120, 4, Distribution::kIndependent, 8002, 1, 1, 4},
};

// Captured from the seed implementation with disk-resident function
// lists (Section 7.6 setting); io_accesses counts the coefficient-list
// traffic, so this pins the TA probe/threshold read sequence exactly.
const DiskGolden kDiskGoldens[] = {
    {0, "SB", 57939, 150, 37, 0x7766bce5c3287d68ull},
    {0, "SB-alt", 8441, 150, 37, 0x7766bce5c3287d68ull},
    {0, "BruteForce", 4224, 150, 1358, 0x689624255b1d15a8ull},
    {0, "Chain", 4628, 150, 546, 0x8a2a02b1d57fb328ull},
    {1, "SB", 217470, 120, 34, 0xf82b6988b78178d5ull},
    {1, "SB-alt", 8220, 120, 34, 0xf82b6988b78178d5ull},
    {1, "BruteForce", 2168, 120, 512, 0x37d0be2ed2b25195ull},
    {1, "Chain", 4301, 120, 407, 0x6b4e477ff8e10795ull},
};

TEST(PerfParityTest, DiskResidentIoSequenceMatchesSeed) {
  size_t spec_index = static_cast<size_t>(-1);
  AssignmentProblem problem;
  for (const DiskGolden& golden : kDiskGoldens) {
    if (golden.spec != spec_index) {
      spec_index = golden.spec;
      problem = RandomProblem(kDiskSpecs[spec_index]);
    }
    ExecContext ctx;
    AssignResult got = RunRegisteredMatcher(golden.name, problem, &ctx,
                                            /*force_disk_functions=*/true);
    EXPECT_EQ(got.stats.io_accesses, golden.io_accesses)
        << golden.name << " disk spec " << golden.spec;
    EXPECT_EQ(got.stats.pairs, golden.pairs)
        << golden.name << " disk spec " << golden.spec;
    EXPECT_EQ(got.stats.loops, golden.loops)
        << golden.name << " disk spec " << golden.spec;
    EXPECT_EQ(MatchingHash(got.matching), golden.matching_hash)
        << golden.name << " disk spec " << golden.spec;
  }
}

struct SbOptionGolden {
  const char* mode;
  uint64_t pairs;
  int64_t loops;
  uint64_t matching_hash;
};

// SB under every TA strategy the ablation sweeps (captured from seed).
const SbOptionGolden kSbOptionGoldens[] = {
    {"biased", 40, 9, 0x3b0cd7695f96388full},
    {"round-robin", 40, 9, 0x3b0cd7695f96388full},
    {"no-resume", 40, 9, 0x3b0cd7695f96388full},
    {"tiny-omega", 40, 9, 0x3b0cd7695f96388full},
};

TEST(PerfParityTest, SbProbingStrategiesMatchSeed) {
  ProblemSpec spec{40, 300, 4, Distribution::kAntiCorrelated, 7010};
  AssignmentProblem problem = RandomProblem(spec);
  for (const SbOptionGolden& golden : kSbOptionGoldens) {
    MemTree mem(problem);
    SBOptions options;
    const std::string mode = golden.mode;
    options.ta.biased_probing = (mode != "round-robin");
    options.ta.resume = (mode != "no-resume");
    options.ta.omega = (mode == "tiny-omega") ? 0.004 : 0.025;
    SBAssignment sb(&problem, &mem.tree, options);
    AssignResult got = sb.Run();
    EXPECT_EQ(got.matching.size(), golden.pairs) << mode;
    EXPECT_EQ(got.stats.loops, golden.loops) << mode;
    EXPECT_EQ(MatchingHash(got.matching), golden.matching_hash) << mode;
  }
}

struct TaChurnGolden {
  bool biased;
  double omega;
  int64_t probes;
  int64_t restarts;
  uint64_t result_hash;
};

// The TA inner loop in isolation, under assignment churn that forces
// queue eviction and Omega restarts. Probes and restarts pin the exact
// probe sequence (PickList choices, threshold terminations); the hash
// pins every returned function id.
const TaChurnGolden kTaChurnGoldens[] = {
    {true, 0.025, 831, 0, 0x6894588dbdd8aa40ull},
    {true, 0.006, 1143, 13, 0x6894588dbdd8aa40ull},
    {false, 0.025, 2032, 0, 0x6894588dbdd8aa40ull},
    {false, 0.006, 2718, 15, 0x6894588dbdd8aa40ull},
};

TEST(PerfParityTest, TaProbeSequenceMatchesSeed) {
  for (const TaChurnGolden& golden : kTaChurnGoldens) {
    Rng rng(9301);
    FunctionSet fns = GenerateFunctions(400, 4, &rng);
    FunctionLists lists(&fns);
    ReverseTop1Options options;
    options.omega = golden.omega;
    options.biased_probing = golden.biased;
    ReverseTop1 rt1(&lists, options);
    auto points = GeneratePoints(Distribution::kAntiCorrelated, 50, 4, &rng);
    std::vector<uint8_t> assigned(fns.size(), 0);
    std::vector<ReverseTop1State> states(points.size());
    uint64_t h = 1469598103934665603ull;
    for (int round = 0; round < 10; ++round) {
      for (size_t i = 0; i < points.size(); ++i) {
        auto got = rt1.Best(&states[i], points[i], assigned);
        h = Fnv1a(h, got.has_value() ? static_cast<uint64_t>(got->first)
                                     : 0xdeadull);
      }
      for (size_t f = round; f < fns.size(); f += 11) assigned[f] = 1;
    }
    EXPECT_EQ(rt1.probes(), golden.probes)
        << "biased=" << golden.biased << " omega=" << golden.omega;
    EXPECT_EQ(rt1.restarts(), golden.restarts)
        << "biased=" << golden.biased << " omega=" << golden.omega;
    EXPECT_EQ(h, golden.result_hash)
        << "biased=" << golden.biased << " omega=" << golden.omega;
  }
}

}  // namespace
}  // namespace fairmatch

// Differential coverage for the packed function-list backend
// (topk/packed_function_lists.h) against the in-memory FunctionLists
// oracle, across randomized seeded shapes and in both placements
// (in-memory image and mmap):
//  * entries, scores and metadata are bitwise identical,
//  * the default ReverseTop1 traversal performs the identical probe
//    sequence (probes, restarts, returned ids) — the packed store is a
//    drop-in FunctionLists,
//  * the impact-ordered block traversal returns the identical winners
//    under assignment churn,
//  * the SB-Packed / SB-alt-Packed engine variants reproduce the
//    by-definition oracle matching,
//  * Open() rejects corrupt blocks (checksum), tampered headers and
//    truncated files.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/stat.h>
#endif

#include "fairmatch/assign/naive_matcher.h"
#include "fairmatch/storage/fault_injector.h"
#include "fairmatch/storage/mmap_file.h"
#include "fairmatch/topk/function_lists.h"
#include "fairmatch/topk/packed_function_lists.h"
#include "fairmatch/topk/reverse_top1.h"
#include "test_util.h"

namespace fairmatch {
namespace {

using fairmatch::testing::ProblemSpec;
using fairmatch::testing::RandomProblem;
using fairmatch::testing::RunRegisteredMatcher;

/// Randomized shapes spanning the block-layout regimes: lists smaller
/// than one default block, multi-block lists, tiny custom blocks (many
/// headers, early termination), and 2-byte id deltas.
struct PackedShape {
  ProblemSpec spec;
  int block_entries;
};

PackedShape ShapeForSeed(int seed) {
  Rng shape_rng(static_cast<uint64_t>(seed) * 9176 + 3);
  PackedShape shape;
  shape.spec.num_functions = 5 + static_cast<int>(shape_rng.UniformInt(0, 395));
  shape.spec.num_objects = 20 + static_cast<int>(shape_rng.UniformInt(0, 80));
  shape.spec.dims = 2 + static_cast<int>(shape_rng.UniformInt(0, 3));
  shape.spec.distribution =
      static_cast<Distribution>(shape_rng.UniformInt(0, 2));
  shape.spec.seed = static_cast<uint64_t>(seed) * 50021 + 11;
  shape.spec.function_capacity =
      1 + static_cast<int>(shape_rng.UniformInt(0, 1));
  shape.spec.object_capacity = 1 + static_cast<int>(shape_rng.UniformInt(0, 1));
  shape.spec.max_gamma = 1 + static_cast<int>(shape_rng.UniformInt(0, 3));
  const int choices[] = {4, 16, 128, 1024};
  shape.block_entries = choices[shape_rng.UniformInt(0, 3)];
  return shape;
}

class PackedDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(PackedDifferentialTest, EntriesScoresAndMetadataMatchFunctionLists) {
  const PackedShape shape = ShapeForSeed(GetParam());
  const AssignmentProblem problem = RandomProblem(shape.spec);
  FunctionLists lists(&problem.functions);
  for (const bool use_mmap : {false, true}) {
    PackedStoreOptions opts;
    opts.block_entries = shape.block_entries;
    opts.use_mmap = use_mmap;
    PackedFunctionStore packed(problem.functions, opts);
    ASSERT_EQ(packed.mapped(), use_mmap);
    ASSERT_EQ(packed.dims(), lists.dims());
    ASSERT_EQ(packed.size(), lists.size());
    ASSERT_EQ(packed.max_gamma(), lists.max_gamma());
    for (int d = 0; d < lists.dims(); ++d) {
      for (int pos = 0; pos < lists.size(); ++pos) {
        ASSERT_EQ(packed.Entry(d, pos), lists.Entry(d, pos))
            << "dim " << d << " pos " << pos << " mmap " << use_mmap;
      }
    }
    for (const PrefFunction& f : problem.functions) {
      for (int d = 0; d < lists.dims(); ++d) {
        ASSERT_EQ(packed.eff_of(f.id, d), f.eff(d));
      }
      for (size_t i = 0; i < problem.objects.size(); i += 7) {
        const Point& o = problem.objects[i].point;
        ASSERT_EQ(packed.ScoreOf(f.id, o), lists.ScoreOf(f.id, o));
      }
    }
    // Block invariants: per-list entry counts sum to |F| and the block
    // upper bounds are non-increasing (what the impact-ordered
    // early-termination argument rests on).
    std::vector<int32_t> fids(packed.block_entries());
    for (int d = 0; d < packed.dims(); ++d) {
      int total = 0;
      for (int b = 0; b < packed.num_blocks(); ++b) {
        total += packed.DecodeBlock(d, b, fids.data());
        if (b > 0) {
          ASSERT_LE(packed.BlockMaxImpact(d, b), packed.BlockMaxImpact(d, b - 1));
        }
        ASSERT_EQ(packed.BlockMaxImpact(d, b),
                  lists.Entry(d, b * packed.block_entries()).first);
      }
      ASSERT_EQ(total, packed.size());
    }
  }
}

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

/// Drives one ReverseTop1 through rounds of queries under assignment
/// churn (evictions, Omega restarts) and fingerprints every returned
/// id; optionally records probes/restarts.
uint64_t DrainFingerprint(ReverseTop1* rt1, const AssignmentProblem& problem,
                          int64_t* probes = nullptr,
                          int64_t* restarts = nullptr) {
  std::vector<uint8_t> assigned(problem.functions.size(), 0);
  std::vector<ReverseTop1State> states(problem.objects.size());
  uint64_t h = 1469598103934665603ull;
  for (int round = 0; round < 6; ++round) {
    for (size_t i = 0; i < problem.objects.size(); ++i) {
      auto got = rt1->Best(&states[i], problem.objects[i].point, assigned);
      h = Fnv1a(h, got.has_value() ? static_cast<uint64_t>(got->first)
                                   : 0xdeadull);
    }
    for (size_t f = round; f < assigned.size(); f += 5) assigned[f] = 1;
  }
  if (probes != nullptr) *probes = rt1->probes();
  if (restarts != nullptr) *restarts = rt1->restarts();
  return h;
}

TEST_P(PackedDifferentialTest, DefaultTraversalReproducesProbeSequence) {
  const PackedShape shape = ShapeForSeed(GetParam());
  const AssignmentProblem problem = RandomProblem(shape.spec);
  FunctionLists lists(&problem.functions);
  ReverseTop1Options options;
  options.omega = 0.01;  // small enough to force evictions and restarts
  ReverseTop1 oracle(&lists, options);
  int64_t want_probes = 0, want_restarts = 0;
  const uint64_t want =
      DrainFingerprint(&oracle, problem, &want_probes, &want_restarts);
  for (const bool use_mmap : {false, true}) {
    PackedStoreOptions opts;
    opts.block_entries = shape.block_entries;
    opts.use_mmap = use_mmap;
    PackedFunctionStore packed(problem.functions, opts);
    ReverseTop1 rt1(&packed, options);
    int64_t probes = 0, restarts = 0;
    const uint64_t got = DrainFingerprint(&rt1, problem, &probes, &restarts);
    EXPECT_EQ(got, want) << "mmap " << use_mmap;
    EXPECT_EQ(probes, want_probes) << "mmap " << use_mmap;
    EXPECT_EQ(restarts, want_restarts) << "mmap " << use_mmap;
  }
}

TEST_P(PackedDifferentialTest, ImpactOrderedTraversalReturnsOracleWinners) {
  const PackedShape shape = ShapeForSeed(GetParam());
  const AssignmentProblem problem = RandomProblem(shape.spec);
  FunctionLists lists(&problem.functions);
  ReverseTop1Options options;
  options.omega = 0.01;
  ReverseTop1 oracle(&lists, options);
  const uint64_t want = DrainFingerprint(&oracle, problem);
  for (const bool use_mmap : {false, true}) {
    PackedStoreOptions opts;
    opts.block_entries = shape.block_entries;
    opts.use_mmap = use_mmap;
    PackedFunctionStore packed(problem.functions, opts);
    ReverseTop1Options impact = options;
    impact.impact_ordered = true;
    ReverseTop1 rt1(&packed, impact);
    // Block consumption changes the probe count but must not change a
    // single returned winner.
    EXPECT_EQ(DrainFingerprint(&rt1, problem), want) << "mmap " << use_mmap;
  }
}

TEST_P(PackedDifferentialTest, PackedMatchersReproduceOracleMatching) {
  const PackedShape shape = ShapeForSeed(GetParam());
  const AssignmentProblem problem = RandomProblem(shape.spec);
  Matching want = NaiveStableMatching(problem);
  CanonicalizeMatching(&want);
  for (const char* name : {"SB-Packed", "SB-alt-Packed"}) {
    for (const bool use_mmap : {false, true}) {
      ExecContext ctx;
      AssignResult got = RunRegisteredMatcher(name, problem, &ctx,
                                              /*force_disk_functions=*/false,
                                              /*buffer_fraction=*/0.02,
                                              /*packed_mmap=*/use_mmap);
      CanonicalizeMatching(&got.matching);
      ASSERT_EQ(got.matching.size(), want.size())
          << name << " mmap " << use_mmap;
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got.matching[i].fid, want[i].fid) << name << " pair " << i;
        EXPECT_EQ(got.matching[i].oid, want[i].oid) << name << " pair " << i;
      }
      // No counted I/O: the packed image is queried in place.
      EXPECT_EQ(got.stats.io_accesses, 0) << name << " mmap " << use_mmap;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, PackedDifferentialTest,
                         ::testing::Range(0, 14));

// --- file-format rejection -------------------------------------------

std::vector<unsigned char> ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<unsigned char> bytes(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<unsigned char>& b) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  // fwrite's buffer is declared nonnull; an empty vector's data() isn't
  // (the zero-length-file test writes one).
  if (!b.empty()) {
    ASSERT_EQ(std::fwrite(b.data(), 1, b.size(), f), b.size());
  }
  std::fclose(f);
}

class PackedFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ProblemSpec spec;
    spec.num_functions = 300;
    spec.num_objects = 10;
    spec.seed = 515;
    problem_ = RandomProblem(spec);
    path_ = ::testing::TempDir() + "/packed_file_test.pkfl";
    std::string error;
    ASSERT_TRUE(PackedFunctionStore::WriteFile(problem_.functions, path_,
                                               /*block_entries=*/64, &error))
        << error;
  }
  void TearDown() override { std::remove(path_.c_str()); }

  AssignmentProblem problem_;
  std::string path_;
};

TEST_F(PackedFileTest, OpenRoundTripsAndVerifies) {
  std::string error;
  auto store = PackedFunctionStore::Open(path_, &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_TRUE(store->mapped());
  FunctionLists lists(&problem_.functions);
  for (int d = 0; d < lists.dims(); ++d) {
    for (int pos = 0; pos < lists.size(); pos += 3) {
      ASSERT_EQ(store->Entry(d, pos), lists.Entry(d, pos));
    }
  }
}

TEST_F(PackedFileTest, CorruptBlockPayloadIsRejected) {
  std::vector<unsigned char> bytes = ReadAll(path_);
  uint64_t blocks_offset = 0;
  std::memcpy(&blocks_offset, bytes.data() + 48, sizeof(blocks_offset));
  // First payload byte of the first block (24-byte block header).
  bytes[blocks_offset + 24] ^= 0x01;
  WriteAll(path_, bytes);
  std::string error;
  EXPECT_EQ(PackedFunctionStore::Open(path_, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST_F(PackedFileTest, CorruptBlockHeaderIsRejected) {
  std::vector<unsigned char> bytes = ReadAll(path_);
  uint64_t blocks_offset = 0;
  std::memcpy(&blocks_offset, bytes.data() + 48, sizeof(blocks_offset));
  bytes[blocks_offset + 2] ^= 0x40;  // inside the max_impact double
  WriteAll(path_, bytes);
  std::string error;
  EXPECT_EQ(PackedFunctionStore::Open(path_, &error), nullptr);
}

TEST_F(PackedFileTest, BadMagicIsRejected) {
  std::vector<unsigned char> bytes = ReadAll(path_);
  bytes[0] ^= 0xff;
  WriteAll(path_, bytes);
  EXPECT_EQ(PackedFunctionStore::Open(path_), nullptr);
}

TEST_F(PackedFileTest, TruncatedFileIsRejected) {
  const std::vector<unsigned char> bytes = ReadAll(path_);
  // Mid-image truncation (size/offset checks) and sub-header
  // truncation both fail cleanly.
  for (const size_t keep : {bytes.size() - 16, size_t{10}}) {
    WriteAll(path_, std::vector<unsigned char>(bytes.begin(),
                                               bytes.begin() + keep));
    std::string error;
    EXPECT_EQ(PackedFunctionStore::Open(path_, &error), nullptr)
        << "kept " << keep;
    EXPECT_FALSE(error.empty());
  }
}

// Open() classifies every rejection (PackedOpenError) so callers — the
// serving registry in particular — can distinguish a missing file from
// a damaged image without parsing message strings.
TEST_F(PackedFileTest, OpenReportsTypedErrorCodes) {
  const std::vector<unsigned char> bytes = ReadAll(path_);
  std::string error;
  PackedOpenError code = PackedOpenError::kBadBlock;  // must be reset

  ASSERT_NE(PackedFunctionStore::Open(path_, &error, &code), nullptr);
  EXPECT_EQ(code, PackedOpenError::kNone);

  EXPECT_EQ(PackedFunctionStore::Open(path_ + ".missing", &error, &code),
            nullptr);
  EXPECT_EQ(code, PackedOpenError::kIoError);

  std::vector<unsigned char> damaged = bytes;
  damaged[0] ^= 0xff;
  WriteAll(path_, damaged);
  EXPECT_EQ(PackedFunctionStore::Open(path_, &error, &code), nullptr);
  EXPECT_EQ(code, PackedOpenError::kBadMagic);

  WriteAll(path_, std::vector<unsigned char>(bytes.begin(),
                                             bytes.end() - 16));
  EXPECT_EQ(PackedFunctionStore::Open(path_, &error, &code), nullptr);
  EXPECT_EQ(code, PackedOpenError::kTruncated);

  damaged = bytes;
  uint64_t blocks_offset = 0;
  std::memcpy(&blocks_offset, damaged.data() + 48, sizeof(blocks_offset));
  damaged[blocks_offset + 24] ^= 0x01;  // first payload byte
  WriteAll(path_, damaged);
  EXPECT_EQ(PackedFunctionStore::Open(path_, &error, &code), nullptr);
  EXPECT_EQ(code, PackedOpenError::kBadChecksum);
  EXPECT_STREQ(PackedOpenErrorName(code), "BAD_CHECKSUM");
}

// --- the mapping seam under edge cases -------------------------------

TEST(MmapFileTest, ZeroLengthFileIsATypedFailureOnBothPaths) {
  const std::string path = ::testing::TempDir() + "/mmap_empty_test";
  WriteAll(path, {});
  MmapFile file;
  std::string error;
  EXPECT_FALSE(file.Map(path, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(file.valid());
  error.clear();
  EXPECT_FALSE(file.Load(path, &error));
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

TEST(MmapFileTest, ExternalMutationIsDetectedAndTypedBeforeDereference) {
  const std::string path = ::testing::TempDir() + "/mmap_shrink_test";
  WriteAll(path, std::vector<unsigned char>(8192, 0x2a));
  MmapFile file;
  std::string error;
  ASSERT_TRUE(file.Map(path, &error)) << error;
  EXPECT_EQ(file.path(), path);
  EXPECT_TRUE(file.SizeIntact());
  if (file.mapped()) {
    // Another process truncates the file behind the mapping: touching
    // tail pages would SIGBUS, so the re-stat must flag the range
    // BEFORE anyone dereferences it — and say which check tripped.
    WriteAll(path, std::vector<unsigned char>(16, 0x2a));
    std::string detail;
    EXPECT_FALSE(file.SizeIntact(&detail));
    EXPECT_NE(detail.find("shrank"), std::string::npos) << detail;
    // Growing past the attached range no longer SIGBUSes, but an
    // external writer rewrote the image: the mapping's content can no
    // longer be trusted to be what was validated at attach.
    WriteAll(path, std::vector<unsigned char>(9000, 0x2a));
    detail.clear();
    EXPECT_FALSE(file.SizeIntact(&detail));
    EXPECT_NE(detail.find("grew"), std::string::npos) << detail;
    // A vanished file cannot be trusted either.
    std::remove(path.c_str());
    detail.clear();
    EXPECT_FALSE(file.SizeIntact(&detail));
    EXPECT_NE(detail.find("vanished"), std::string::npos) << detail;
  }
  std::remove(path.c_str());
}

TEST(MmapFileTest, InPlaceRewriteAtSameSizeIsDetectedViaMtime) {
  const std::string path = ::testing::TempDir() + "/mmap_mtime_test";
  WriteAll(path, std::vector<unsigned char>(4096, 0x11));
  MmapFile file;
  std::string error;
  ASSERT_TRUE(file.Map(path, &error)) << error;
  if (!file.mapped()) {
    std::remove(path.c_str());
    GTEST_SKIP() << "no OS mapping on this platform";
  }
  EXPECT_TRUE(file.SizeIntact());
#if defined(__unix__) || defined(__APPLE__)
  // Same byte count, different content: only the timestamp betrays the
  // rewrite. Push mtime well away from the attach stamp rather than
  // racing the filesystem's timestamp granularity.
  WriteAll(path, std::vector<unsigned char>(4096, 0x77));
  struct timespec times[2];
  times[0].tv_sec = 1;  // atime
  times[0].tv_nsec = 0;
  times[1].tv_sec = 1;  // mtime: far in the past != attach stamp
  times[1].tv_nsec = 0;
  ASSERT_EQ(utimensat(AT_FDCWD, path.c_str(), times, 0), 0);
  std::string detail;
  EXPECT_FALSE(file.SizeIntact(&detail));
  EXPECT_NE(detail.find("rewritten in place"), std::string::npos) << detail;
#endif
  std::remove(path.c_str());
}

TEST(MmapFileTest, LoadedCopySurvivesBackingFileMutation) {
  const std::string path = ::testing::TempDir() + "/mmap_load_test";
  const std::vector<unsigned char> payload(4096, 0x5c);
  WriteAll(path, payload);
  MmapFile file;
  std::string error;
  ASSERT_TRUE(file.Load(path, &error)) << error;
  EXPECT_TRUE(file.valid());
  EXPECT_FALSE(file.mapped()) << "Load must never hand out an OS mapping";
  ASSERT_EQ(file.size(), payload.size());
  // The owned copy is immune to truncation and even deletion.
  std::remove(path.c_str());
  EXPECT_TRUE(file.SizeIntact());
  EXPECT_EQ(std::memcmp(file.data(), payload.data(), payload.size()), 0);
}

TEST(MmapFileTest, InjectorCanRefuseTheAttachDeterministically) {
  const std::string path = ::testing::TempDir() + "/mmap_inject_test";
  WriteAll(path, std::vector<unsigned char>(64, 0x11));
  FaultInjectorOptions plan;
  plan.seed = 3;
  plan.read_fail_rate = 1.0;
  FaultInjector injector(plan);
  MmapFile file;
  std::string error;
  EXPECT_FALSE(file.Map(path, &error, &injector));
  EXPECT_FALSE(file.valid());
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fairmatch

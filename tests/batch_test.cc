// The batch execution layer's headline guarantee: running a batch at
// T worker lanes changes NOTHING about any item's output. Per-item
// matchings (compared through an order-sensitive FNV-1a hash of the
// assignment sequence) and per-item deterministic counters (io_accesses,
// pairs, loops) must be byte-identical at threads = 1, 2 and 8, and
// identical to a direct single-run of the same instance. Also covered:
// submission-order results, lane/total stats consistency, and the
// ThreadPool underneath. This suite is part of the TSan CI matrix.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fairmatch/common/thread_pool.h"
#include "fairmatch/engine/batch_runner.h"
#include "test_util.h"

namespace fairmatch {
namespace {

using fairmatch::testing::MemTree;
using fairmatch::testing::ProblemSpec;
using fairmatch::testing::RandomProblem;

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t MatchingHash(const Matching& m) {
  uint64_t h = 1469598103934665603ull;
  for (const MatchPair& p : m) {
    h = Fnv1a(h, static_cast<uint64_t>(p.fid));
    h = Fnv1a(h, static_cast<uint64_t>(p.oid));
  }
  return h;
}

/// The per-item numbers that must not depend on the thread count.
struct ItemFingerprint {
  uint64_t matching_hash;
  int64_t io_accesses;
  uint64_t pairs;
  int64_t loops;

  bool operator==(const ItemFingerprint& other) const {
    return matching_hash == other.matching_hash &&
           io_accesses == other.io_accesses && pairs == other.pairs &&
           loops == other.loops;
  }
};

ItemFingerprint Fingerprint(const AssignResult& result) {
  return ItemFingerprint{MatchingHash(result.matching),
                         result.stats.io_accesses, result.stats.pairs,
                         result.stats.loops};
}

BatchProblemSpec SmallSpec(uint64_t base_seed) {
  BatchProblemSpec spec;
  spec.num_functions = 30;
  spec.num_objects = 250;
  spec.dims = 3;
  spec.distribution = Distribution::kAntiCorrelated;
  spec.base_seed = base_seed;
  return spec;
}

// --- the headline determinism guarantee ------------------------------

struct BatchCase {
  const char* matcher;
  bool disk_resident_functions;
};

class BatchDeterminismTest : public ::testing::TestWithParam<BatchCase> {};

TEST_P(BatchDeterminismTest, IdenticalResultsAtOneTwoAndEightThreads) {
  const BatchCase& param = GetParam();
  BatchProblemSpec spec = SmallSpec(31000);
  spec.disk_resident_functions = param.disk_resident_functions;
  spec.max_gamma = 3;  // priorities on, to exercise the richer paths
  const int kCount = 12;

  // The single-run oracle: each instance executed directly, no batch.
  std::vector<ItemFingerprint> direct;
  for (int i = 0; i < kCount; ++i) {
    direct.push_back(Fingerprint(
        RunGeneratedInstance(param.matcher, spec, static_cast<size_t>(i))));
  }

  for (const int threads : {1, 2, 8}) {
    BatchRunner runner(threads);
    const BatchResult result =
        runner.RunGenerated(param.matcher, spec, kCount);
    ASSERT_EQ(result.items.size(), static_cast<size_t>(kCount)) << threads;
    EXPECT_EQ(result.stats.threads, threads);
    for (int i = 0; i < kCount; ++i) {
      EXPECT_TRUE(Fingerprint(result.items[i]) == direct[i])
          << param.matcher << " item " << i << " at threads=" << threads
          << " diverged from the direct run";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matchers, BatchDeterminismTest,
    ::testing::Values(BatchCase{"SB", false}, BatchCase{"BruteForce", false},
                      BatchCase{"Chain", false}, BatchCase{"SB", true},
                      BatchCase{"SB-alt", true}),
    [](const ::testing::TestParamInfo<BatchCase>& info) {
      std::string name = info.param.matcher;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + (info.param.disk_resident_functions ? "_diskF" : "");
    });

// The packed-function setting gets the same guarantee, in both image
// modes: lane placement and the in-memory/mmap switch must not change
// any per-item number.
TEST(BatchDeterminismTest, PackedBackendsAreLaneCountInvariant) {
  for (const char* matcher : {"SB-Packed", "SB-alt-Packed"}) {
    BatchProblemSpec spec = SmallSpec(33000);
    spec.packed_functions = true;
    spec.max_gamma = 3;
    const int kCount = 10;

    std::vector<ItemFingerprint> direct;
    for (int i = 0; i < kCount; ++i) {
      direct.push_back(Fingerprint(
          RunGeneratedInstance(matcher, spec, static_cast<size_t>(i))));
    }
    for (const bool mmap_mode : {false, true}) {
      spec.packed_mmap = mmap_mode;
      for (const int threads : {1, 2, 8}) {
        BatchRunner runner(threads);
        const BatchResult result = runner.RunGenerated(matcher, spec, kCount);
        ASSERT_EQ(result.items.size(), static_cast<size_t>(kCount));
        for (int i = 0; i < kCount; ++i) {
          EXPECT_TRUE(Fingerprint(result.items[i]) == direct[i])
              << matcher << " item " << i << " at threads=" << threads
              << " mmap=" << mmap_mode;
        }
      }
    }
  }
}

// Lanes recycle their workspace disk between items; running the same
// instance on a heavily used workspace must be observably identical to
// a fresh-storage direct run, in both storage layouts that attach to
// the lane disk.
TEST(BatchDeterminismTest, RecycledWorkspaceMatchesFreshStorage) {
  LaneWorkspace ws;
  for (const bool disk_resident : {false, true}) {
    BatchProblemSpec spec = SmallSpec(34000);
    spec.disk_resident_functions = disk_resident;
    spec.max_gamma = 3;
    for (int i = 0; i < 6; ++i) {
      const ItemFingerprint fresh = Fingerprint(
          RunGeneratedInstance("SB", spec, static_cast<size_t>(i)));
      const ItemFingerprint reused = Fingerprint(
          RunGeneratedInstance("SB", spec, static_cast<size_t>(i), &ws));
      EXPECT_TRUE(fresh == reused)
          << "item " << i << " diskF=" << disk_resident
          << " diverged on a recycled workspace";
    }
  }
}

// Simulated I/O latency slows items down but must not change a bit of
// their output — it only changes where wall time goes.
TEST(BatchDeterminismTest, IoLatencyDoesNotChangeResults) {
  BatchProblemSpec spec = SmallSpec(32000);
  BatchRunner runner(4);
  const BatchResult fast = runner.RunGenerated("SB", spec, 6);
  spec.io_latency_us = 100;
  BatchRunner runner_slow(4);
  const BatchResult slow = runner_slow.RunGenerated("SB", spec, 6);
  ASSERT_EQ(fast.items.size(), slow.items.size());
  for (size_t i = 0; i < fast.items.size(); ++i) {
    EXPECT_TRUE(Fingerprint(fast.items[i]) == Fingerprint(slow.items[i]))
        << i;
  }
}

// --- submission order ------------------------------------------------

TEST(BatchRunnerTest, CallerItemsComeBackInSubmissionOrder) {
  // Items of recognizably different sizes: item i's matching has
  // min(|F_i|, |O_i|) pairs, so a shuffled result vector is caught by
  // the pair counts alone (and by the matching hashes).
  const int kCount = 9;
  std::vector<AssignmentProblem> problems;
  std::vector<std::unique_ptr<MemTree>> trees;
  std::vector<std::unique_ptr<ExecContext>> contexts;
  problems.reserve(kCount);
  for (int i = 0; i < kCount; ++i) {
    ProblemSpec spec;
    spec.num_functions = 5 + 3 * i;  // distinct per item
    spec.num_objects = 120;
    spec.seed = 33000 + static_cast<uint64_t>(i);
    problems.push_back(RandomProblem(spec));
  }
  std::vector<BatchItem> items;
  for (int i = 0; i < kCount; ++i) {
    trees.push_back(std::make_unique<MemTree>(problems[i]));
    contexts.push_back(std::make_unique<ExecContext>());
    BatchItem item;
    item.matcher_name = (i % 2 == 0) ? "SB" : "BruteForce";
    item.env.problem = &problems[i];
    item.env.tree = &trees[i]->tree;
    item.env.ctx = contexts[i].get();
    items.push_back(std::move(item));
  }

  BatchRunner runner(3);
  const BatchResult result = runner.Run(items);
  ASSERT_EQ(result.items.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(result.items[i].stats.pairs,
              static_cast<size_t>(5 + 3 * i))
        << "item " << i << " is not the item submitted at slot " << i;
    EXPECT_EQ(result.items[i].stats.algorithm,
              (i % 2 == 0) ? "SB" : "BruteForce");
  }
}

// --- aggregated stats ------------------------------------------------

TEST(BatchRunnerTest, LaneStatsSumToTotals) {
  const BatchProblemSpec spec = SmallSpec(34000);
  const int kCount = 10;
  for (const int threads : {1, 4}) {
    BatchRunner runner(threads);
    const BatchResult result = runner.RunGenerated("SB", spec, kCount);
    const BatchStats& stats = result.stats;
    ASSERT_EQ(stats.lanes.size(), static_cast<size_t>(threads));

    LaneStats sum;
    for (const LaneStats& lane : stats.lanes) {
      sum.items += lane.items;
      sum.io_accesses += lane.io_accesses;
      sum.cpu_ms += lane.cpu_ms;
      sum.pairs += lane.pairs;
      sum.loops += lane.loops;
      if (lane.peak_memory_bytes > sum.peak_memory_bytes) {
        sum.peak_memory_bytes = lane.peak_memory_bytes;
      }
    }
    EXPECT_EQ(stats.totals.items, kCount);
    EXPECT_EQ(sum.items, stats.totals.items);
    EXPECT_EQ(sum.io_accesses, stats.totals.io_accesses);
    EXPECT_EQ(sum.pairs, stats.totals.pairs);
    EXPECT_EQ(sum.loops, stats.totals.loops);
    EXPECT_EQ(sum.peak_memory_bytes, stats.totals.peak_memory_bytes);
    EXPECT_DOUBLE_EQ(sum.cpu_ms, stats.totals.cpu_ms);

    // Per-item totals are also thread-count-invariant, so the batch
    // totals must match the sum over direct runs.
    EXPECT_GT(stats.totals.pairs, 0u);
    EXPECT_GT(stats.wall_ms, 0.0);
    EXPECT_GT(stats.items_per_sec, 0.0);
  }
}

TEST(BatchRunnerTest, TotalsAreThreadCountInvariant) {
  const BatchProblemSpec spec = SmallSpec(35000);
  BatchRunner one(1), eight(8);
  const BatchResult a = one.RunGenerated("SB", spec, 8);
  const BatchResult b = eight.RunGenerated("SB", spec, 8);
  EXPECT_EQ(a.stats.totals.io_accesses, b.stats.totals.io_accesses);
  EXPECT_EQ(a.stats.totals.pairs, b.stats.totals.pairs);
  EXPECT_EQ(a.stats.totals.loops, b.stats.totals.loops);
  EXPECT_EQ(a.stats.totals.peak_memory_bytes,
            b.stats.totals.peak_memory_bytes);
}

TEST(BatchRunnerTest, EmptyBatchIsWellFormed) {
  BatchRunner runner(4);
  const BatchResult result = runner.RunGenerated("SB", SmallSpec(1), 0);
  EXPECT_TRUE(result.items.empty());
  EXPECT_EQ(result.stats.totals.items, 0);
  EXPECT_EQ(result.stats.items_per_sec, 0.0);
  EXPECT_EQ(runner.threads(), 4);
}

TEST(BatchRunnerTest, ThreadCountIsClampedToOne) {
  BatchRunner runner(0);
  EXPECT_EQ(runner.threads(), 1);
  const BatchResult result = runner.RunGenerated("SB", SmallSpec(2), 2);
  EXPECT_EQ(result.stats.lanes.size(), 1u);
  EXPECT_EQ(result.stats.totals.items, 2);
}

// --- the pool underneath ---------------------------------------------

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
  // The pool stays usable after a Wait().
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 201);
}

TEST(ThreadPoolTest, DestructorDrainsTheQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // ~ThreadPool joins after the queue drains
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ConcurrentSubmitters) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  {
    ThreadPool submitters(4);
    for (int s = 0; s < 4; ++s) {
      submitters.Submit([&pool, &counter] {
        for (int i = 0; i < 25; ++i) {
          pool.Submit([&counter] { counter.fetch_add(1); });
        }
      });
    }
    submitters.Wait();
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

}  // namespace
}  // namespace fairmatch

// Unit and property tests for the R-tree.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fairmatch/common/rng.h"
#include "fairmatch/rtree/node.h"
#include "fairmatch/rtree/node_store.h"
#include "fairmatch/rtree/rtree.h"
#include "test_util.h"

namespace fairmatch {
namespace {

using fairmatch::testing::GridPoints;

std::vector<ObjectRecord> RandomRecords(int n, int dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<ObjectRecord> records;
  records.reserve(n);
  for (int i = 0; i < n; ++i) {
    Point p(dims);
    for (int d = 0; d < dims; ++d) {
      p[d] = static_cast<float>(rng.Uniform());
    }
    records.push_back(ObjectRecord{p, i});
  }
  return records;
}

std::multiset<ObjectId> Ids(const std::vector<ObjectRecord>& records) {
  std::multiset<ObjectId> ids;
  for (const auto& r : records) ids.insert(r.id);
  return ids;
}

// Walks the tree checking structural invariants: every child MBR is
// contained in its parent entry's MBR, levels decrease by one, and no
// non-root node underflows past emptiness.
void CheckInvariants(const RTree& tree) {
  struct Item {
    PageId pid;
    int expected_level;
    bool has_bound;
    MBR bound;
  };
  std::vector<Item> stack{{tree.root(), tree.root_level(), false, MBR()}};
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    NodeHandle h = tree.ReadNode(item.pid);
    NodeView node = h.view();
    ASSERT_EQ(node.level(), item.expected_level);
    MBR computed = node.ComputeMBR();
    if (item.has_bound && node.count() > 0) {
      for (int d = 0; d < tree.dims(); ++d) {
        ASSERT_GE(computed.lo()[d], item.bound.lo()[d]);
        ASSERT_LE(computed.hi()[d], item.bound.hi()[d]);
      }
    }
    if (!node.is_leaf()) {
      ASSERT_GT(node.count(), 0);
      for (int i = 0; i < node.count(); ++i) {
        stack.push_back(
            Item{node.child(i), node.level() - 1, true, node.entry_mbr(i)});
      }
    }
  }
}

TEST(NodeViewTest, CapacitiesMatchPageSize) {
  for (int dims = 2; dims <= 8; ++dims) {
    int leaf = NodeView::LeafCapacity(dims);
    int internal = NodeView::InternalCapacity(dims);
    EXPECT_GT(leaf, internal);
    EXPECT_LE(4 + leaf * (4 * dims + 4), kPageSize);
    EXPECT_LE(4 + internal * (8 * dims + 4), kPageSize);
    // One more entry would overflow.
    EXPECT_GT(4 + (leaf + 1) * (4 * dims + 4), kPageSize);
  }
}

TEST(NodeViewTest, LeafRoundTrip) {
  MemNodeStore store(3);
  PageId pid = store.Allocate();
  NodeHandle h = store.Write(pid);
  NodeView node = h.view();
  node.Init(0);
  Point p(3);
  p[0] = 0.1f;
  p[1] = 0.2f;
  p[2] = 0.3f;
  node.AppendLeaf(p, 77);
  EXPECT_EQ(node.count(), 1);
  EXPECT_TRUE(node.is_leaf());
  EXPECT_EQ(node.leaf_point(0), p);
  EXPECT_EQ(node.child(0), 77);
}

TEST(NodeViewTest, InternalRoundTripAndRemove) {
  MemNodeStore store(2);
  PageId pid = store.Allocate();
  NodeHandle h = store.Write(pid);
  NodeView node = h.view();
  node.Init(1);
  Point lo(2, 0.1f), hi(2, 0.5f);
  node.AppendInternal(MBR(lo, hi), 5);
  node.AppendInternal(MBR(Point(2, 0.6f), Point(2, 0.9f)), 6);
  EXPECT_EQ(node.count(), 2);
  EXPECT_EQ(node.child(1), 6);
  node.RemoveEntry(0);  // swaps last into slot 0
  EXPECT_EQ(node.count(), 1);
  EXPECT_EQ(node.child(0), 6);
}

TEST(QuadraticSplitTest, RespectsMinFill) {
  Rng rng(9);
  std::vector<std::pair<MBR, int32_t>> entries;
  for (int i = 0; i < 51; ++i) {
    Point p(2);
    p[0] = static_cast<float>(rng.Uniform());
    p[1] = static_cast<float>(rng.Uniform());
    entries.emplace_back(MBR(p), i);
  }
  std::vector<std::pair<MBR, int32_t>> g1, g2;
  QuadraticSplit(entries, 20, &g1, &g2);
  EXPECT_EQ(g1.size() + g2.size(), entries.size());
  EXPECT_GE(g1.size(), 20u);
  EXPECT_GE(g2.size(), 20u);
  // Every entry lands in exactly one group.
  std::multiset<int32_t> all;
  for (auto& e : g1) all.insert(e.second);
  for (auto& e : g2) all.insert(e.second);
  EXPECT_EQ(all.size(), entries.size());
  EXPECT_EQ(*all.begin(), 0);
}

class RTreeParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RTreeParamTest, BulkLoadContainsAll) {
  auto [n, dims] = GetParam();
  MemNodeStore store(dims);
  RTree tree(&store);
  auto records = RandomRecords(n, dims, 101 + n + dims);
  tree.BulkLoad(records);
  EXPECT_EQ(tree.size(), n);
  auto scanned = tree.ScanAll();
  EXPECT_EQ(Ids(scanned), Ids(records));
  CheckInvariants(tree);
}

TEST_P(RTreeParamTest, InsertContainsAll) {
  auto [n, dims] = GetParam();
  MemNodeStore store(dims);
  RTree tree(&store);
  auto records = RandomRecords(n, dims, 202 + n + dims);
  for (const auto& r : records) tree.Insert(r.point, r.id);
  EXPECT_EQ(tree.size(), n);
  EXPECT_EQ(Ids(tree.ScanAll()), Ids(records));
  CheckInvariants(tree);
}

TEST_P(RTreeParamTest, DeleteHalfThenScan) {
  auto [n, dims] = GetParam();
  MemNodeStore store(dims);
  RTree tree(&store);
  auto records = RandomRecords(n, dims, 303 + n + dims);
  tree.BulkLoad(records);
  std::multiset<ObjectId> expect = Ids(records);
  for (int i = 0; i < n; i += 2) {
    ASSERT_TRUE(tree.Delete(records[i].point, records[i].id));
    expect.erase(expect.find(records[i].id));
  }
  EXPECT_EQ(tree.size(), n - (n + 1) / 2);
  EXPECT_EQ(Ids(tree.ScanAll()), expect);
  CheckInvariants(tree);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RTreeParamTest,
    ::testing::Values(std::make_tuple(1, 2), std::make_tuple(10, 2),
                      std::make_tuple(300, 2), std::make_tuple(300, 4),
                      std::make_tuple(2000, 3), std::make_tuple(5000, 4),
                      std::make_tuple(1000, 6)));

TEST(RTreeTest, DeleteMissingReturnsFalse) {
  MemNodeStore store(2);
  RTree tree(&store);
  auto records = RandomRecords(50, 2, 7);
  tree.BulkLoad(records);
  Point p(2, 0.5f);
  EXPECT_FALSE(tree.Delete(p, 9999));
  EXPECT_EQ(tree.size(), 50);
}

TEST(RTreeTest, DeleteEverything) {
  MemNodeStore store(3);
  RTree tree(&store);
  auto records = RandomRecords(800, 3, 8);
  tree.BulkLoad(records);
  Rng rng(88);
  std::shuffle(records.begin(), records.end(), rng.engine());
  for (const auto& r : records) {
    ASSERT_TRUE(tree.Delete(r.point, r.id));
  }
  EXPECT_EQ(tree.size(), 0);
  EXPECT_TRUE(tree.ScanAll().empty());
  // The tree remains usable after total deletion.
  tree.Insert(Point(3, 0.5f), 1);
  EXPECT_EQ(tree.size(), 1);
}

TEST(RTreeTest, MixedInsertDeleteStress) {
  MemNodeStore store(2);
  RTree tree(&store);
  Rng rng(31);
  std::vector<ObjectRecord> live;
  int next_id = 0;
  for (int round = 0; round < 2000; ++round) {
    if (live.empty() || rng.Uniform() < 0.6) {
      Point p(2);
      p[0] = static_cast<float>(rng.Uniform());
      p[1] = static_cast<float>(rng.Uniform());
      tree.Insert(p, next_id);
      live.push_back(ObjectRecord{p, next_id});
      next_id++;
    } else {
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      ASSERT_TRUE(tree.Delete(live[pick].point, live[pick].id));
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    }
  }
  EXPECT_EQ(tree.size(), static_cast<int64_t>(live.size()));
  EXPECT_EQ(Ids(tree.ScanAll()), Ids(live));
  CheckInvariants(tree);
}

TEST(RTreeTest, DuplicatePointsSupported) {
  MemNodeStore store(2);
  RTree tree(&store);
  auto points = GridPoints(400, 2, 3, 55);  // heavy duplication
  std::vector<ObjectRecord> records;
  for (int i = 0; i < 400; ++i) records.push_back({points[i], i});
  tree.BulkLoad(records);
  // Delete one specific duplicate; the others survive.
  ASSERT_TRUE(tree.Delete(records[10].point, records[10].id));
  auto ids = Ids(tree.ScanAll());
  EXPECT_EQ(ids.count(10), 0u);
  EXPECT_EQ(ids.size(), 399u);
}

TEST(RTreeTest, PagedStoreCountsIo) {
  PagedNodeStore store(3, /*buffer_frames=*/64);
  RTree tree(&store);
  tree.BulkLoad(RandomRecords(5000, 3, 66));
  store.ResetCounters();
  EXPECT_EQ(store.counters().io_accesses(), 0);
  auto scanned = tree.ScanAll();
  EXPECT_EQ(scanned.size(), 5000u);
  // A full scan with a small buffer reads (at least) every node once.
  EXPECT_GE(store.counters().page_reads, tree.CountNodes() - 64);
}

TEST(RTreeTest, BulkLoadRespectsFillFactor) {
  MemNodeStore store(2);
  RTree tree(&store);
  tree.BulkLoad(RandomRecords(10000, 2, 77), /*fill_factor=*/0.7);
  int64_t nodes = tree.CountNodes();
  // LeafCapacity(2) = 341; 10000 / (341 * 0.7) ~= 42 leaves plus a root
  // and STR slab remainders: roughly 40-55 nodes.
  EXPECT_GE(nodes, 30);
  EXPECT_LE(nodes, 60);
  CheckInvariants(tree);
}

TEST(RTreeTest, EmptyTreeBehaves) {
  MemNodeStore store(2);
  RTree tree(&store);
  EXPECT_EQ(tree.size(), 0);
  EXPECT_TRUE(tree.ScanAll().empty());
  EXPECT_FALSE(tree.Delete(Point(2, 0.1f), 0));
  EXPECT_EQ(tree.height(), 1);
}

}  // namespace
}  // namespace fairmatch

// Unit tests for the mutual-best pair engine and for the rounded-up
// function R-tree scoring used by Chain.
#include <gtest/gtest.h>

#include "fairmatch/assign/best_pair.h"
#include "fairmatch/common/float_util.h"
#include "fairmatch/common/rng.h"
#include "fairmatch/data/synthetic.h"
#include "fairmatch/rtree/node_store.h"
#include "fairmatch/rtree/rtree.h"
#include "fairmatch/topk/ranked_search.h"

namespace fairmatch {
namespace {

Point P2(float x, float y) {
  Point p(2);
  p[0] = x;
  p[1] = y;
  return p;
}

FunctionSet TwoFunctions() {
  FunctionSet fns(2);
  fns[0] = PrefFunction{0, 2, {0.9, 0.1}, 1.0, 1};
  fns[1] = PrefFunction{1, 2, {0.1, 0.9}, 1.0, 1};
  return fns;
}

TEST(BestPairEngineTest, MutualPairDetected) {
  FunctionSet fns = TwoFunctions();
  BestPairEngine engine(&fns);
  Point a = P2(0.9f, 0.1f);  // best for f0
  Point b = P2(0.1f, 0.9f);  // best for f1
  std::vector<MemberCandidate> members{
      {0, &a, 0, fns[0].Score(a)},
      {1, &b, 1, fns[1].Score(b)},
  };
  auto pairs = engine.FindMutualPairs(members, {0, 1});
  ASSERT_EQ(pairs.size(), 2u);
}

TEST(BestPairEngineTest, NonMutualCandidateNotEmitted) {
  FunctionSet fns = TwoFunctions();
  BestPairEngine engine(&fns);
  Point a = P2(0.9f, 0.2f);
  Point b = P2(0.8f, 0.1f);  // also names f0 but scores lower
  std::vector<MemberCandidate> members{
      {0, &a, 0, fns[0].Score(a)},
      {1, &b, 0, fns[0].Score(b)},
  };
  auto pairs = engine.FindMutualPairs(members, {0, 1});
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].oid, 0);
  EXPECT_EQ(pairs[0].fid, 0);
}

TEST(BestPairEngineTest, CacheUpdatesWithNewMembers) {
  FunctionSet fns = TwoFunctions();
  BestPairEngine engine(&fns);
  Point a = P2(0.7f, 0.1f);
  std::vector<MemberCandidate> members{{0, &a, 0, fns[0].Score(a)}};
  auto pairs = engine.FindMutualPairs(members, {0});
  ASSERT_EQ(pairs.size(), 1u);

  // A better object for f0 joins the skyline: the cached obest must be
  // displaced, so the old member no longer forms a mutual pair.
  Point better = P2(0.95f, 0.2f);
  std::vector<MemberCandidate> members2{
      {0, &a, 0, fns[0].Score(a)},
      {7, &better, 0, fns[0].Score(better)},
  };
  auto pairs2 = engine.FindMutualPairs(members2, {7});
  ASSERT_EQ(pairs2.size(), 1u);
  EXPECT_EQ(pairs2[0].oid, 7);
}

TEST(BestPairEngineTest, RemovedObjectInvalidatesCache) {
  FunctionSet fns = TwoFunctions();
  BestPairEngine engine(&fns);
  Point a = P2(0.9f, 0.1f);
  Point b = P2(0.7f, 0.1f);
  std::vector<MemberCandidate> members{
      {0, &a, 0, fns[0].Score(a)},
      {1, &b, 0, fns[0].Score(b)},
  };
  auto pairs = engine.FindMutualPairs(members, {0, 1});
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].oid, 0);

  engine.OnObjectsRemoved({0});
  std::vector<MemberCandidate> members2{{1, &b, 0, fns[0].Score(b)}};
  auto pairs2 = engine.FindMutualPairs(members2, {});
  ASSERT_EQ(pairs2.size(), 1u);
  EXPECT_EQ(pairs2[0].oid, 1);  // full rescan found the survivor
}

// Chain's function R-tree stores FloatUp-rounded effective coefficients
// as coordinates. Property: with exact leaf rescoring the search still
// returns the exact argmax function, for random objects and priorities.
TEST(FunctionTreeSearchTest, FloatUpCoordinatesPreserveExactOrder) {
  Rng rng(99);
  FunctionSet fns = GenerateFunctions(600, 4, &rng);
  AssignPriorities(&fns, 8, &rng);
  MemNodeStore store(4);
  RTree ftree(&store);
  std::vector<ObjectRecord> records;
  for (const PrefFunction& f : fns) {
    Point w(4);
    for (int d = 0; d < 4; ++d) w[d] = FloatUp(f.eff(d));
    records.push_back({w, f.id});
  }
  ftree.BulkLoad(records);

  auto points = GeneratePoints(Distribution::kIndependent, 200, 4, &rng);
  for (const Point& o : points) {
    // Exhaustive argmax (score desc, fid asc).
    FunctionId best = kInvalidFunction;
    double best_s = 0.0;
    for (const PrefFunction& f : fns) {
      double s = f.Score(o);
      if (best == kInvalidFunction || s > best_s ||
          (s == best_s && f.id < best)) {
        best = f.id;
        best_s = s;
      }
    }
    PrefFunction pseudo;
    pseudo.id = 0;
    pseudo.dims = 4;
    for (int d = 0; d < 4; ++d) pseudo.alpha[d] = o[d];
    RankedSearch search(&ftree, &pseudo);
    search.set_leaf_scorer(
        [&](ObjectId fid, const Point&) { return fns[fid].Score(o); });
    auto hit = search.Next();
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->id, best);
    EXPECT_DOUBLE_EQ(hit->score, best_s);
  }
}

}  // namespace
}  // namespace fairmatch

// Randomized differential sweep at the engine layer: for N seeded
// instances x every registered matcher, the result produced through
// MatcherRegistry/Matcher::Run must (a) pass the Definition-1 verifier
// (assign/verifier.h) and (b) agree with the naive by-definition oracle
// — same (fid, oid) matching and same objective value — both with
// in-memory function lists and with the disk-resident-F layout forced.
//
// This differs from stress_test.cc (which drives the algorithm entry
// points directly) by exercising the exact surface production callers
// and the batch layer use, and by checking stability rather than only
// cross-implementation agreement.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fairmatch/assign/naive_matcher.h"
#include "fairmatch/assign/verifier.h"
#include "fairmatch/engine/registry.h"
#include "test_util.h"

namespace fairmatch {
namespace {

using fairmatch::testing::ProblemSpec;
using fairmatch::testing::RandomProblem;
using fairmatch::testing::RunRegisteredMatcher;

/// Objective value in canonical pair order, so the floating-point sum
/// is comparable across algorithms that discover pairs in different
/// orders.
double CanonicalObjective(Matching matching) {
  CanonicalizeMatching(&matching);
  double sum = 0.0;
  for (const MatchPair& pair : matching) sum += pair.score;
  return sum;
}

/// A randomized shape drawn from the sweep seed, mirroring the
/// stress-test methodology (small enough for the O(P*|F|*|O|) oracle).
ProblemSpec SpecForSeed(int seed) {
  Rng shape_rng(static_cast<uint64_t>(seed) * 6271 + 29);
  ProblemSpec spec;
  spec.num_functions = 5 + static_cast<int>(shape_rng.UniformInt(0, 35));
  spec.num_objects = 20 + static_cast<int>(shape_rng.UniformInt(0, 100));
  spec.dims = 2 + static_cast<int>(shape_rng.UniformInt(0, 3));
  spec.distribution = static_cast<Distribution>(shape_rng.UniformInt(0, 2));
  spec.seed = static_cast<uint64_t>(seed) * 70001 + 17;
  spec.function_capacity = 1 + static_cast<int>(shape_rng.UniformInt(0, 1));
  spec.object_capacity = 1 + static_cast<int>(shape_rng.UniformInt(0, 1));
  spec.max_gamma = 1 + static_cast<int>(shape_rng.UniformInt(0, 3));
  return spec;
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, EngineResultsMatchOracleAndVerify) {
  const int seed = GetParam();
  const AssignmentProblem problem = RandomProblem(SpecForSeed(seed));
  const Matching want = NaiveStableMatching(problem);
  const double want_objective = CanonicalObjective(want);

  // The oracle itself must pass its own definition.
  ASSERT_TRUE(VerifyStableMatching(problem, want).ok) << "seed " << seed;

  for (const std::string& name : MatcherRegistry::Global().Names()) {
    // Both storage layouts: in-memory function lists, and the Section
    // 7.6 disk-resident-F setting forced onto every matcher (variants
    // without a disk-F code path ignore the store and must still agree).
    for (const bool disk_f : {false, true}) {
      const AssignResult got = RunRegisteredMatcher(
          name, problem, /*ctx=*/nullptr, /*force_disk_functions=*/disk_f);
      const std::string label =
          name + (disk_f ? " (disk-F)" : " (in-memory)") + ", seed " +
          std::to_string(seed);

      const VerifyResult verdict =
          VerifyStableMatching(problem, got.matching);
      EXPECT_TRUE(verdict.ok) << label << ": " << verdict.message;

      EXPECT_TRUE(SameMatching(got.matching, want))
          << label << " diverges from the oracle (|want|=" << want.size()
          << ", |got|=" << got.matching.size() << ")";
      EXPECT_DOUBLE_EQ(CanonicalObjective(got.matching), want_objective)
          << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace fairmatch

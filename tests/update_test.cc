// Update-vs-rebuild differential suite for incremental index updates
// (update/delta_builder.h, update/stream_matcher.h).
//
// The headline property: applying a batch of updates to a resident
// dataset must be indistinguishable, for every query, from rebuilding
// every structure from scratch over the updated problem. Randomized
// seeded update traces (insert-only, delete-only, mixed; in-memory and
// mmap-backed packed images) drive a DeltaBuilder and after every epoch
// compare against a from-scratch rebuild: matchings byte-identical per
// matcher, maintained skylines equal to both a brute-force skyline and
// a fresh BBS, serving responses identical between the updated and the
// rebuilt dataset at 1/2/8 lanes, and R-tree structural invariants
// (MBR containment, level/size bookkeeping) after adversarial update
// orders. Epoch publishes are exercised under concurrent traffic (the
// TSan leg runs this binary) with refcount-drain checks.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "fairmatch/common/rng.h"
#include "fairmatch/data/synthetic.h"
#include "fairmatch/geom/mbr.h"
#include "fairmatch/rtree/node.h"
#include "fairmatch/rtree/rtree.h"
#include "fairmatch/serve/dataset_registry.h"
#include "fairmatch/serve/server.h"
#include "fairmatch/skyline/delta_sky.h"
#include "fairmatch/update/delta_builder.h"
#include "fairmatch/update/stream_matcher.h"
#include "test_util.h"

namespace fairmatch {
namespace {

using serve::DatasetHandle;
using serve::DatasetOptions;
using serve::DatasetRegistry;
using serve::Request;
using serve::Response;
using serve::ServeCode;
using serve::Server;
using serve::ServerOptions;
using testing::MemTree;
using testing::NaiveSkyline;
using testing::ProblemSpec;
using testing::RandomProblem;
using testing::RunRegisteredMatcher;
using update::DeltaBuilder;
using update::DeltaOptions;
using update::RunOnDataset;
using update::StreamMatcher;
using update::StreamOptions;
using update::StreamStats;
using update::UpdateBatch;
using update::UpdateStats;

// The matchers the differential suite pins: the reference algorithm,
// the disk-resident-F variant, and the packed-image variant (which
// exercises the patch overlay on the update path).
const char* const kMatchers[] = {"SB", "SB-alt", "SB-Packed"};

// ---- helpers ---------------------------------------------------------

void ExpectSameSequence(const Matching& got, const Matching& want,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].fid, want[i].fid) << label << " pair " << i;
    EXPECT_EQ(got[i].oid, want[i].oid) << label << " pair " << i;
    EXPECT_EQ(got[i].score, want[i].score) << label << " pair " << i;
  }
}

/// Recursive structural audit: stored levels decrease by one per edge,
/// every stored entry MBR contains its subtree's actual bounding box,
/// non-root nodes are non-empty, and leaf records are counted.
void AuditNode(const RTree& tree, PageId pid, int level, bool is_root,
               int64_t* leaf_records, MBR* actual_mbr) {
  NodeHandle handle = tree.ReadNode(pid);
  NodeView node = handle.view();
  ASSERT_EQ(node.level(), level);
  if (!is_root) {
    EXPECT_GE(node.count(), 1) << "underflowed non-root node " << pid;
  }
  *actual_mbr = MBR::Empty(tree.dims());
  for (int i = 0; i < node.count(); ++i) {
    if (node.is_leaf()) {
      actual_mbr->Expand(node.leaf_point(i));
      ++*leaf_records;
    } else {
      MBR child_actual = MBR::Empty(tree.dims());
      AuditNode(tree, node.child(i), level - 1, false, leaf_records,
                &child_actual);
      const MBR stored = node.entry_mbr(i);
      for (int d = 0; d < tree.dims(); ++d) {
        EXPECT_LE(stored.lo()[d], child_actual.lo()[d])
            << "entry " << i << " of node " << pid;
        EXPECT_GE(stored.hi()[d], child_actual.hi()[d])
            << "entry " << i << " of node " << pid;
      }
      actual_mbr->Expand(stored);
    }
  }
}

void CheckTreeInvariants(const RTree& tree,
                         const std::vector<ObjectItem>& objects) {
  int64_t leaf_records = 0;
  MBR root_mbr = MBR::Empty(tree.dims());
  AuditNode(tree, tree.root(), tree.root_level(), true, &leaf_records,
            &root_mbr);
  EXPECT_EQ(leaf_records, tree.size());
  EXPECT_EQ(leaf_records, static_cast<int64_t>(objects.size()));

  // The tree holds exactly the live records.
  std::vector<ObjectRecord> records = tree.ScanAll();
  ASSERT_EQ(records.size(), objects.size());
  std::sort(records.begin(), records.end(),
            [](const ObjectRecord& a, const ObjectRecord& b) {
              return a.id < b.id;
            });
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].id, static_cast<ObjectId>(i));
    for (int d = 0; d < tree.dims(); ++d) {
      EXPECT_EQ(records[i].point[d], objects[i].point[d]);
    }
  }
}

void CheckSkyline(const serve::ResidentDataset& dataset) {
  const AssignmentProblem& problem = dataset.problem();
  std::vector<Point> points;
  points.reserve(problem.objects.size());
  for (const ObjectItem& o : problem.objects) points.push_back(o.point);

  std::vector<int> naive = NaiveSkyline(points);
  std::vector<int> maintained;
  for (const ObjectRecord& m : dataset.skyline()) {
    maintained.push_back(m.id);
  }
  EXPECT_EQ(maintained, naive) << "maintained skyline != brute force";

  // And against a fresh BBS over a from-scratch tree.
  MemTree rebuilt(problem);
  DeltaSkyManager fresh(&rebuilt.tree);
  fresh.ComputeInitial();
  std::vector<int> recomputed;
  fresh.skyline().ForEach([&recomputed](int, const SkylineObject& m) {
    recomputed.push_back(m.id);
  });
  std::sort(recomputed.begin(), recomputed.end());
  EXPECT_EQ(maintained, recomputed) << "maintained skyline != fresh BBS";
}

/// The full per-epoch differential: dense ids, tree structure and
/// contents, maintained skyline, and byte-identical matchings between
/// the updated dataset and a from-scratch rebuild of its problem.
void VerifyEpochAgainstRebuild(const serve::ResidentDataset& dataset) {
  const AssignmentProblem& problem = dataset.problem();
  for (size_t i = 0; i < problem.objects.size(); ++i) {
    ASSERT_EQ(problem.objects[i].id, static_cast<ObjectId>(i));
  }
  for (size_t i = 0; i < problem.functions.size(); ++i) {
    ASSERT_EQ(problem.functions[i].id, static_cast<FunctionId>(i));
  }
  CheckTreeInvariants(*dataset.tree(), problem.objects);
  CheckSkyline(dataset);

  for (const char* name : kMatchers) {
    AssignResult updated = RunOnDataset(dataset, name);
    ASSERT_TRUE(updated.status.ok()) << name << ": " << updated.status.message;
    AssignResult rebuilt = RunRegisteredMatcher(name, problem);
    ASSERT_TRUE(rebuilt.status.ok()) << name;
    ExpectSameSequence(updated.matching, rebuilt.matching,
                       std::string(name) + " updated-vs-rebuilt, epoch " +
                           std::to_string(dataset.epoch()));
  }

  // Rebuild-path determinism: two independent from-scratch runs agree
  // on every counter (io, pairs, loops), which is what makes the
  // rebuild a usable reference.
  AssignResult a = RunRegisteredMatcher("SB-alt", problem);
  AssignResult b = RunRegisteredMatcher("SB-alt", problem);
  EXPECT_EQ(a.stats.io_accesses, b.stats.io_accesses);
  EXPECT_EQ(a.stats.pairs, b.stats.pairs);
  EXPECT_EQ(a.stats.loops, b.stats.loops);
}

/// One random batch against the current problem. `mode` cycles the
/// trace through insert-only, delete-only and mixed steps, with
/// function churn on the mixed steps.
UpdateBatch RandomBatch(Rng* rng, const AssignmentProblem& problem,
                        int mode) {
  UpdateBatch batch;
  const int num_objects = static_cast<int>(problem.objects.size());
  const int num_functions = static_cast<int>(problem.functions.size());
  const bool inserts = mode % 3 != 1;
  const bool deletes = mode % 3 != 0;
  if (deletes) {
    // Sample distinct ids; keep at least 2 objects alive.
    const int want = static_cast<int>(
        rng->UniformInt(1, std::max(1, num_objects / 4)));
    std::vector<bool> picked(num_objects, false);
    for (int i = 0; i < want &&
                    static_cast<int>(batch.delete_objects.size()) <
                        num_objects - 2;
         ++i) {
      const int id = static_cast<int>(rng->UniformInt(0, num_objects - 1));
      if (picked[id]) continue;
      picked[id] = true;
      batch.delete_objects.push_back(id);
    }
    if (num_functions > 3 && rng->UniformInt(0, 1) == 1) {
      batch.delete_functions.push_back(
          static_cast<FunctionId>(rng->UniformInt(0, num_functions - 1)));
    }
  }
  if (inserts) {
    const int want =
        static_cast<int>(rng->UniformInt(1, std::max(1, num_objects / 5)));
    for (int i = 0; i < want; ++i) {
      ObjectItem o;
      o.point = Point(problem.dims);
      for (int d = 0; d < problem.dims; ++d) {
        o.point[d] = static_cast<float>(rng->Uniform());
      }
      batch.insert_objects.push_back(o);
    }
    if (rng->UniformInt(0, 1) == 1) {
      Rng fn_rng(static_cast<uint64_t>(rng->UniformInt(1, 1 << 20)));
      FunctionSet fresh =
          GenerateFunctions(static_cast<int>(rng->UniformInt(1, 3)),
                            problem.dims, &fn_rng);
      for (PrefFunction& f : fresh) batch.insert_functions.push_back(f);
    }
  }
  return batch;
}

void RunTrace(uint64_t seed, bool packed_mmap) {
  ProblemSpec spec;
  spec.num_functions = 16 + static_cast<int>(seed % 5);
  spec.num_objects = 80 + static_cast<int>(seed % 17);
  spec.dims = 3;
  spec.seed = seed;
  AssignmentProblem problem = RandomProblem(spec);

  DatasetRegistry registry;
  DatasetOptions dopts;
  dopts.packed_mmap = packed_mmap;
  DatasetHandle base = registry.Open("trace", problem, dopts);

  DeltaOptions options;
  options.dataset = dopts;
  options.compaction_threshold = 0.4;
  DeltaBuilder builder(base, options);

  Rng rng(seed * 7919 + 13);
  for (int step = 0; step < 4; ++step) {
    UpdateBatch batch =
        RandomBatch(&rng, builder.current()->problem(), step);
    UpdateStats stats;
    serve::ServeStatus status = builder.Apply(batch, &stats);
    ASSERT_TRUE(status.ok()) << status.message;
    ASSERT_EQ(stats.epoch, builder.current()->epoch());
    VerifyEpochAgainstRebuild(*builder.current());
    if (::testing::Test::HasFailure()) return;
  }
}

// ---- the randomized differential traces ------------------------------

TEST(UpdateDifferential, InMemoryTraces) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunTrace(seed, /*packed_mmap=*/false);
    if (HasFailure()) return;
  }
}

TEST(UpdateDifferential, MmapBackedTraces) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunTrace(seed, /*packed_mmap=*/true);
    if (HasFailure()) return;
  }
}

// Adversarial update orders: drain most of the dataset one object at a
// time (worst case for condensation), then refill, checking structure
// every few steps.
TEST(UpdateDifferential, AdversarialDeleteRefill) {
  ProblemSpec spec;
  spec.num_objects = 120;
  spec.num_functions = 12;
  spec.seed = 99;
  AssignmentProblem problem = RandomProblem(spec);
  DatasetRegistry registry;
  DatasetHandle base = registry.Open("adversarial", problem, {});
  DeltaBuilder builder(base, {});

  Rng rng(777);
  // Delete down to 8 objects, always removing the current minimum and
  // maximum id alternately — maximal swap-with-last churn.
  while (builder.current()->problem().objects.size() > 8) {
    const int n =
        static_cast<int>(builder.current()->problem().objects.size());
    UpdateBatch batch;
    batch.delete_objects.push_back(0);
    if (n > 9) batch.delete_objects.push_back(n - 1);
    ASSERT_TRUE(builder.Apply(batch, nullptr).ok());
    if (builder.current()->problem().objects.size() % 16 == 0) {
      CheckTreeInvariants(*builder.current()->tree(),
                          builder.current()->problem().objects);
      CheckSkyline(*builder.current());
    }
  }
  VerifyEpochAgainstRebuild(*builder.current());

  // Refill in bursts.
  for (int burst = 0; burst < 3; ++burst) {
    UpdateBatch batch;
    for (int i = 0; i < 40; ++i) {
      ObjectItem o;
      o.point = Point(spec.dims);
      for (int d = 0; d < spec.dims; ++d) {
        o.point[d] = static_cast<float>(rng.Uniform());
      }
      batch.insert_objects.push_back(o);
    }
    ASSERT_TRUE(builder.Apply(batch, nullptr).ok());
  }
  VerifyEpochAgainstRebuild(*builder.current());
}

// ---- batch validation ------------------------------------------------

TEST(UpdateValidation, MalformedBatchesAreTypedAndAtomic) {
  AssignmentProblem problem = RandomProblem({});
  DatasetRegistry registry;
  DatasetHandle base = registry.Open("valid", problem, {});
  DeltaBuilder builder(base, {});

  const auto expect_rejected = [&](UpdateBatch batch) {
    serve::ServeStatus status = builder.Apply(batch, nullptr);
    EXPECT_EQ(status.code, ServeCode::kInvalidArgument) << status.message;
    EXPECT_EQ(builder.current().get(), base.get())
        << "rejected batch must leave the epoch untouched";
  };

  UpdateBatch out_of_range;
  out_of_range.delete_objects = {static_cast<ObjectId>(
      problem.objects.size())};
  expect_rejected(out_of_range);

  UpdateBatch duplicate;
  duplicate.delete_objects = {3, 3};
  expect_rejected(duplicate);

  UpdateBatch bad_dims;
  ObjectItem o;
  o.point = Point(problem.dims + 1);
  bad_dims.insert_objects.push_back(o);
  expect_rejected(bad_dims);

  UpdateBatch empty_functions;
  for (FunctionId f = 0;
       f < static_cast<FunctionId>(problem.functions.size()); ++f) {
    empty_functions.delete_functions.push_back(f);
  }
  expect_rejected(empty_functions);
}

// ---- packed overlay: compaction accounting ---------------------------

TEST(UpdatePacked, OverlayGrowsThenCompacts) {
  ProblemSpec spec;
  spec.num_functions = 20;
  spec.seed = 5;
  AssignmentProblem problem = RandomProblem(spec);
  DatasetRegistry registry;
  DatasetHandle base = registry.Open("packed", problem, {});
  DeltaOptions options;
  options.compaction_threshold = 0.5;
  DeltaBuilder builder(base, options);

  // Small function churn: first epochs ride the patch overlay.
  Rng rng(31);
  UpdateBatch small;
  small.delete_functions = {1};
  Rng fn_rng(17);
  small.insert_functions = GenerateFunctions(1, spec.dims, &fn_rng);
  UpdateStats stats;
  ASSERT_TRUE(builder.Apply(small, &stats).ok());
  EXPECT_FALSE(stats.packed_compacted);
  EXPECT_EQ(stats.packed_patch_added, 1);
  EXPECT_EQ(stats.packed_patch_tombstones, 1);
  ASSERT_TRUE(builder.current()->packed() != nullptr);
  EXPECT_TRUE(builder.current()->packed()->patched());
  VerifyEpochAgainstRebuild(*builder.current());

  // Churn past the threshold: the image compacts back to flat.
  UpdateBatch big;
  for (FunctionId f = 0; f < 10; ++f) big.delete_functions.push_back(f);
  Rng fn_rng2(23);
  big.insert_functions = GenerateFunctions(8, spec.dims, &fn_rng2);
  ASSERT_TRUE(builder.Apply(big, &stats).ok());
  EXPECT_TRUE(stats.packed_compacted);
  EXPECT_FALSE(builder.current()->packed()->patched());
  VerifyEpochAgainstRebuild(*builder.current());
}

// ---- serving equality at 1/2/8 lanes ---------------------------------

TEST(UpdateServing, ResponsesMatchRebuiltDataset) {
  for (uint64_t seed : {3u, 11u}) {
    ProblemSpec spec;
    spec.seed = seed;
    spec.num_objects = 90;
    AssignmentProblem problem = RandomProblem(spec);

    DatasetRegistry updated_registry;
    DatasetHandle base = updated_registry.Open("live", problem, {});
    DeltaBuilder builder(base, {});
    Rng rng(seed * 101 + 7);
    for (int step = 0; step < 2; ++step) {
      ASSERT_TRUE(builder
                      .Apply(RandomBatch(&rng, builder.current()->problem(),
                                         step + 2),
                             nullptr)
                      .ok());
    }
    ASSERT_EQ(updated_registry.Publish(builder.current()) != nullptr, true);

    // A second registry holds the from-scratch rebuild of the same
    // problem.
    DatasetRegistry rebuilt_registry;
    rebuilt_registry.Open("live", builder.current()->problem(), {});

    for (int lanes : {1, 2, 8}) {
      ServerOptions sopts;
      sopts.lanes = lanes;
      sopts.max_queue = 128;
      Server updated_server(&updated_registry, sopts);
      Server rebuilt_server(&rebuilt_registry, sopts);
      for (const char* matcher : kMatchers) {
        std::vector<serve::ResponseFuture> updated_futures;
        std::vector<serve::ResponseFuture> rebuilt_futures;
        for (int i = 0; i < 6; ++i) {
          Request request;
          request.dataset = "live";
          request.matcher = matcher;
          updated_futures.push_back(updated_server.Submit(request));
          rebuilt_futures.push_back(rebuilt_server.Submit(request));
        }
        for (int i = 0; i < 6; ++i) {
          const Response& u = updated_futures[i].Wait();
          const Response& r = rebuilt_futures[i].Wait();
          ASSERT_TRUE(u.status.ok()) << matcher << ": " << u.status.message;
          ASSERT_TRUE(r.status.ok()) << matcher << ": " << r.status.message;
          ExpectSameSequence(u.matching, r.matching,
                             std::string(matcher) + " seed " +
                                 std::to_string(seed) + " lanes " +
                                 std::to_string(lanes));
        }
      }
    }
  }
}

// ---- epoch republish under concurrent traffic (TSan target) ----------

TEST(UpdateEpochSwap, ConcurrentTrafficAcrossPublishes) {
  ProblemSpec spec;
  spec.num_objects = 70;
  spec.num_functions = 14;
  spec.seed = 21;
  AssignmentProblem problem = RandomProblem(spec);

  DatasetRegistry registry;
  DatasetOptions dopts;
  DatasetHandle base = registry.Open("live", problem, dopts);

  std::vector<std::weak_ptr<const serve::ResidentDataset>> epochs;
  epochs.push_back(base);

  // Expected matchings per published epoch, guarded: the publisher
  // appends, request threads snapshot.
  std::mutex expected_mu;
  std::map<std::string, std::vector<Matching>> expected;
  for (const char* matcher : kMatchers) {
    expected[matcher].push_back(RunOnDataset(*base, matcher).matching);
  }

  {
    ServerOptions sopts;
    sopts.lanes = 8;
    sopts.max_queue = 256;
    Server server(&registry, sopts);

    std::atomic<bool> publishing_done{false};
    std::thread publisher([&] {
      DeltaOptions options;
      options.dataset = dopts;
      DeltaBuilder builder(base, options);
      Rng rng(4242);
      for (int e = 0; e < 4; ++e) {
        UpdateBatch batch =
            RandomBatch(&rng, builder.current()->problem(), e + 2);
        serve::ServeStatus status = builder.Apply(batch, nullptr);
        ASSERT_TRUE(status.ok()) << status.message;
        {
          std::lock_guard<std::mutex> lock(expected_mu);
          for (const char* matcher : kMatchers) {
            expected[matcher].push_back(
                RunOnDataset(*builder.current(), matcher).matching);
          }
          epochs.push_back(builder.current());
        }
        registry.Publish(builder.current());
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      publishing_done.store(true);
    });

    // Hammer the server from two client threads while epochs swap: every
    // response must be OK and byte-identical to the full matching of
    // SOME epoch (the one its handle captured at Submit).
    auto client = [&](int salt) {
      int round = 0;
      while (!publishing_done.load() || round < 4) {
        const char* matcher = kMatchers[(salt + round) % 3];
        Request request;
        request.dataset = "live";
        request.matcher = matcher;
        Response response = server.Execute(request);
        ASSERT_TRUE(response.status.ok()) << response.status.message;
        std::vector<Matching> snapshot;
        {
          std::lock_guard<std::mutex> lock(expected_mu);
          snapshot = expected[matcher];
        }
        bool matched_one = false;
        for (const Matching& want : snapshot) {
          if (want.size() != response.matching.size()) continue;
          bool same = true;
          for (size_t i = 0; i < want.size() && same; ++i) {
            same = want[i].fid == response.matching[i].fid &&
                   want[i].oid == response.matching[i].oid &&
                   want[i].score == response.matching[i].score;
          }
          if (same) {
            matched_one = true;
            break;
          }
        }
        EXPECT_TRUE(matched_one)
            << matcher << " response matches no epoch's matching";
        ++round;
      }
    };
    std::thread c1(client, 0);
    std::thread c2(client, 1);
    publisher.join();
    c1.join();
    c2.join();
    server.Close();
    EXPECT_EQ(registry.republishes(), 4);
  }

  // Refcount drain: with the server closed, the registry entry dropped
  // and every local handle released, every epoch must be destroyed.
  registry.Close("live");
  base.reset();
  for (size_t i = 0; i < epochs.size(); ++i) {
    EXPECT_TRUE(epochs[i].expired()) << "epoch handle " << i << " leaked";
  }
}

// ---- stream matcher --------------------------------------------------

TEST(StreamMatcherTest, UnlimitedBudgetConvergesExactly) {
  ProblemSpec spec;
  spec.seed = 8;
  AssignmentProblem problem = RandomProblem(spec);
  DatasetRegistry registry;
  DatasetHandle base = registry.Open("stream", problem, {});
  DeltaBuilder builder(base, {});
  StreamMatcher stream(base, {});

  Rng rng(55);
  for (int step = 0; step < 3; ++step) {
    UpdateBatch batch = RandomBatch(&rng, builder.current()->problem(), step);
    UpdateStats stats;
    ASSERT_TRUE(builder.Apply(batch, &stats).ok());
    StreamStats revision = stream.OnEpoch(builder.current(), stats);
    EXPECT_EQ(revision.deferred, 0);

    Matching target = RunOnDataset(*builder.current(), "SB").matching;
    CanonicalizeMatching(&target);
    ExpectSameSequence(stream.matching(), target,
                       "unlimited budget, epoch " +
                           std::to_string(stats.epoch));
    EXPECT_EQ(revision.pairs, target.size());
  }
}

TEST(StreamMatcherTest, BudgetZeroAppliesOnlyForcedDrops) {
  ProblemSpec spec;
  spec.seed = 9;
  AssignmentProblem problem = RandomProblem(spec);
  DatasetRegistry registry;
  DatasetHandle base = registry.Open("stream0", problem, {});
  DeltaBuilder builder(base, {});
  StreamOptions sopts;
  sopts.reassign_budget = 0;
  StreamMatcher stream(base, sopts);
  const size_t initial_pairs = stream.matching().size();

  UpdateBatch batch;
  batch.delete_objects = {0, 5, 9};
  UpdateStats stats;
  ASSERT_TRUE(builder.Apply(batch, &stats).ok());
  StreamStats revision = stream.OnEpoch(builder.current(), stats);

  EXPECT_EQ(revision.adds_applied, 0);
  EXPECT_EQ(revision.drops_applied, 0);
  EXPECT_LE(stream.matching().size(), initial_pairs);
  EXPECT_EQ(stream.matching().size(),
            initial_pairs - static_cast<size_t>(revision.forced_drops));
  // Every standing pair names live ids.
  const AssignmentProblem& now = builder.current()->problem();
  for (const MatchPair& pair : stream.matching()) {
    ASSERT_GE(pair.fid, 0);
    ASSERT_LT(pair.fid, static_cast<FunctionId>(now.functions.size()));
    ASSERT_GE(pair.oid, 0);
    ASSERT_LT(pair.oid, static_cast<ObjectId>(now.objects.size()));
  }
}

TEST(StreamMatcherTest, BudgetedRevisionConvergesOverEpochs) {
  ProblemSpec spec;
  spec.seed = 10;
  AssignmentProblem problem = RandomProblem(spec);
  DatasetRegistry registry;
  DatasetHandle base = registry.Open("streamk", problem, {});
  DeltaBuilder builder(base, {});
  StreamOptions sopts;
  sopts.reassign_budget = 4;
  StreamMatcher stream(base, sopts);

  UpdateBatch batch;
  batch.delete_objects = {1, 2, 3, 4, 5, 6};
  Rng rng(66);
  for (int i = 0; i < 6; ++i) {
    ObjectItem o;
    o.point = Point(spec.dims);
    for (int d = 0; d < spec.dims; ++d) {
      o.point[d] = static_cast<float>(rng.Uniform());
    }
    batch.insert_objects.push_back(o);
  }
  UpdateStats stats;
  ASSERT_TRUE(builder.Apply(batch, &stats).ok());

  // First revision under budget; then replay identity epochs until the
  // deferred work drains. Must converge to the full matching.
  StreamStats revision = stream.OnEpoch(builder.current(), stats);
  UpdateStats identity;
  identity.epoch = stats.epoch;
  identity.object_final.resize(builder.current()->problem().objects.size());
  identity.function_final.resize(
      builder.current()->problem().functions.size());
  for (size_t i = 0; i < identity.object_final.size(); ++i) {
    identity.object_final[i] = static_cast<ObjectId>(i);
  }
  for (size_t i = 0; i < identity.function_final.size(); ++i) {
    identity.function_final[i] = static_cast<FunctionId>(i);
  }
  int rounds = 0;
  while (revision.deferred > 0 && rounds < 64) {
    revision = stream.OnEpoch(builder.current(), identity);
    ++rounds;
  }
  EXPECT_EQ(revision.deferred, 0);
  Matching target = RunOnDataset(*builder.current(), "SB").matching;
  CanonicalizeMatching(&target);
  ExpectSameSequence(stream.matching(), target, "budgeted convergence");
  EXPECT_GT(revision.aggregate_score, 0.0);
  EXPECT_GT(revision.min_score, 0.0);
}

}  // namespace
}  // namespace fairmatch

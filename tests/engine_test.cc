// The matcher engine layer: registry contents, environment validation,
// uniform instrumentation, and — most importantly — registry-driven
// parity: every registered matcher must produce the oracle matching on
// randomized instances across dimensionalities, capacities, priorities
// and seeds. New algorithm variants get this coverage just by
// registering; no test edits needed.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fairmatch/assign/naive_matcher.h"
#include "fairmatch/common/status.h"
#include "fairmatch/engine/registry.h"
#include "fairmatch/serve/dataset_registry.h"
#include "fairmatch/update/delta_builder.h"
#include "fairmatch/topk/disk_function_lists.h"
#include "fairmatch/topk/packed_function_lists.h"
#include "test_util.h"

namespace fairmatch {
namespace {

using fairmatch::testing::MemTree;
using fairmatch::testing::ProblemSpec;
using fairmatch::testing::RandomProblem;
using fairmatch::testing::RunRegisteredMatcher;

TEST(RegistryTest, MatcherNameMatchesRegistryKey) {
  ProblemSpec spec;
  AssignmentProblem problem = RandomProblem(spec);
  MemTree mem(problem);
  DiskFunctionStore fstore(problem.functions, 0.02);
  PackedFunctionStore pstore(problem.functions, PackedStoreOptions{});
  MatcherEnv env;
  env.problem = &problem;
  env.tree = &mem.tree;
  env.fn_store = &fstore;
  env.packed_fns = &pstore;
  for (const std::string& name : MatcherRegistry::Global().Names()) {
    auto matcher = MatcherRegistry::Global().Create(name, env);
    ASSERT_NE(matcher, nullptr) << name;
    EXPECT_EQ(matcher->Name(), name);
  }
}

TEST(RegistryTest, ExposesAtLeastEightVariants) {
  const MatcherRegistry& registry = MatcherRegistry::Global();
  EXPECT_GE(registry.Names().size(), 8u);
  // The paper's roster must be present under these exact names.
  for (const char* name :
       {"SB", "SB-SinglePair", "SB-UpdateSkyline", "SB-DeltaSky",
        "SB-TwoSkylines", "SB-alt", "BruteForce", "Chain", "Naive"}) {
    EXPECT_NE(registry.Find(name), nullptr) << name;
  }
}

TEST(RegistryTest, MetadataMatchesAlgorithmContracts) {
  const MatcherRegistry& registry = MatcherRegistry::Global();
  // Chain physically deletes from the object tree; callers key fresh-
  // tree handling off this flag.
  EXPECT_TRUE(registry.Find("Chain")->mutates_tree);
  EXPECT_FALSE(registry.Find("SB")->mutates_tree);
  // The oracle is flagged so harnesses (bench Run) can refuse to
  // benchmark it.
  EXPECT_TRUE(registry.Find("Naive")->reference);
  // Exactly one variant is confined to the disk-resident-F setting.
  EXPECT_TRUE(registry.Find("SB-alt")->needs_disk_functions);
  EXPECT_FALSE(registry.Find("BruteForce")->needs_disk_functions);
}

TEST(RegistryTest, UnknownNameIsRejected) {
  ProblemSpec spec;
  AssignmentProblem problem = RandomProblem(spec);
  MemTree mem(problem);
  MatcherEnv env;
  env.problem = &problem;
  env.tree = &mem.tree;
  EXPECT_EQ(MatcherRegistry::Global().Find("NoSuchAlgorithm"), nullptr);
  EXPECT_EQ(MatcherRegistry::Global().Create("NoSuchAlgorithm", env),
            nullptr);
}

TEST(RegistryTest, CreateValidatesEnvironment) {
  ProblemSpec spec;
  AssignmentProblem problem = RandomProblem(spec);
  MemTree mem(problem);
  const MatcherRegistry& registry = MatcherRegistry::Global();
  {
    MatcherEnv env;  // no problem, no tree
    EXPECT_EQ(registry.Create("SB", env), nullptr);
  }
  {
    MatcherEnv env;
    env.problem = &problem;  // still no tree
    EXPECT_EQ(registry.Create("SB", env), nullptr);
  }
  {
    MatcherEnv env;
    env.problem = &problem;
    env.tree = &mem.tree;
    // SB-alt requires the disk-resident function store.
    ASSERT_TRUE(registry.Find("SB-alt")->needs_disk_functions);
    EXPECT_EQ(registry.Create("SB-alt", env), nullptr);
    EXPECT_NE(registry.Create("SB", env), nullptr);
  }
}

TEST(RegistryTest, ExternalVariantsPlugIn) {
  MatcherRegistry registry;  // private registry: don't pollute Global()
  MatcherInfo info;
  info.name = "AlwaysEmpty";
  info.description = "test stub";
  struct EmptyMatcher : Matcher {
    std::string Name() const override { return "AlwaysEmpty"; }
    AssignResult Run() override { return AssignResult{}; }
  };
  info.factory = [](const MatcherEnv&) {
    return std::make_unique<EmptyMatcher>();
  };
  registry.Register(std::move(info));
  ProblemSpec spec;
  AssignmentProblem problem = RandomProblem(spec);
  MemTree mem(problem);
  MatcherEnv env;
  env.problem = &problem;
  env.tree = &mem.tree;
  auto matcher = registry.Create("AlwaysEmpty", env);
  ASSERT_NE(matcher, nullptr);
  EXPECT_TRUE(matcher->Run().matching.empty());
}

// --- registry-driven parity ------------------------------------------
// Every registered matcher (the reference oracle included — it must
// agree with itself) reproduces the naive stable matching, and reports
// its stats uniformly.
class EngineParityTest : public ::testing::TestWithParam<ProblemSpec> {};

TEST_P(EngineParityTest, EveryRegisteredMatcherMatchesNaive) {
  AssignmentProblem problem = RandomProblem(GetParam());
  Matching want = NaiveStableMatching(problem);
  for (const std::string& name : MatcherRegistry::Global().Names()) {
    ExecContext ctx;
    AssignResult got = RunRegisteredMatcher(name, problem, &ctx);
    EXPECT_TRUE(SameMatching(got.matching, want))
        << name << " diverges from the oracle (|want|=" << want.size()
        << ", |got|=" << got.matching.size() << ")";
    // Uniform reporting: every matcher fills the same RunStats fields
    // through the ExecContext protocol.
    EXPECT_EQ(got.stats.algorithm, name);
    EXPECT_EQ(got.stats.pairs, got.matching.size()) << name;
    EXPECT_GE(got.stats.cpu_ms, 0.0) << name;
  }
}

TEST_P(EngineParityTest, MatchersAreDeterministic) {
  AssignmentProblem problem = RandomProblem(GetParam());
  for (const std::string& name : MatcherRegistry::Global().Names()) {
    AssignResult a = RunRegisteredMatcher(name, problem);
    AssignResult b = RunRegisteredMatcher(name, problem);
    EXPECT_TRUE(SameMatching(a.matching, b.matching)) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineParityTest,
    ::testing::Values(
        // Varying dimensionality.
        ProblemSpec{12, 90, 2, Distribution::kIndependent, 11001},
        ProblemSpec{12, 90, 3, Distribution::kAntiCorrelated, 11002},
        ProblemSpec{12, 90, 4, Distribution::kCorrelated, 11003},
        ProblemSpec{10, 70, 5, Distribution::kAntiCorrelated, 11004},
        // Varying cardinality shape (|F| > |O| leaves functions over).
        ProblemSpec{60, 25, 3, Distribution::kIndependent, 11005},
        ProblemSpec{30, 30, 3, Distribution::kAntiCorrelated, 11006},
        // Varying capacities.
        ProblemSpec{10, 60, 3, Distribution::kAntiCorrelated, 11007,
                    /*function_capacity=*/3, /*object_capacity=*/1},
        ProblemSpec{10, 60, 3, Distribution::kIndependent, 11008,
                    /*function_capacity=*/1, /*object_capacity=*/2},
        ProblemSpec{8, 40, 4, Distribution::kAntiCorrelated, 11009,
                    /*function_capacity=*/2, /*object_capacity=*/2},
        // Varying priorities (and priorities + capacities combined).
        ProblemSpec{15, 80, 3, Distribution::kAntiCorrelated, 11010,
                    /*function_capacity=*/1, /*object_capacity=*/1,
                    /*max_gamma=*/4},
        ProblemSpec{12, 50, 3, Distribution::kIndependent, 11011,
                    /*function_capacity=*/2, /*object_capacity=*/2,
                    /*max_gamma=*/8}));

// Run() consumes the environment, so a second call on the same matcher
// instance is a programming error — builtin matchers abort rather than
// silently return garbage (documented in engine/matcher.h).
TEST(MatcherContractTest, SecondRunAborts) {
  ProblemSpec spec;
  AssignmentProblem problem = RandomProblem(spec);
  MemTree mem(problem);
  MatcherEnv env;
  env.problem = &problem;
  env.tree = &mem.tree;
  auto matcher = MatcherRegistry::Global().Create("SB", env);
  ASSERT_NE(matcher, nullptr);
  EXPECT_FALSE(matcher->Run().matching.empty());
  EXPECT_DEATH(matcher->Run(), "called twice");
}

// With an ExecContext attached (the serve path always has one), the
// same misuse must come back typed instead: kFailedPrecondition through
// the ErrorSink, empty matching, process alive — a misbehaving caller
// must not take down a serving lane.
TEST(MatcherContractTest, SecondRunWithContextIsTypedNotFatal) {
  ProblemSpec spec;
  AssignmentProblem problem = RandomProblem(spec);
  MemTree mem(problem);
  ExecContext ctx;
  MatcherEnv env;
  env.problem = &problem;
  env.tree = &mem.tree;
  env.ctx = &ctx;
  auto matcher = MatcherRegistry::Global().Create("SB", env);
  ASSERT_NE(matcher, nullptr);
  const AssignResult first = matcher->Run();
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.matching.empty());

  const AssignResult second = matcher->Run();
  EXPECT_EQ(second.status.code, ErrorCode::kFailedPrecondition);
  EXPECT_NE(second.status.message.find("called twice"), std::string::npos)
      << second.status.message;
  EXPECT_TRUE(second.matching.empty());
  EXPECT_EQ(ctx.errors().status().code, ErrorCode::kFailedPrecondition);
}

// The shared context aggregates multi-store I/O: a disk-F run's
// RunStats must cover both the coefficient lists and any matcher-
// private disk structures, with no hand-stitching by the caller.
TEST(EngineInstrumentationTest, DiskRunsReportAggregatedIo) {
  ProblemSpec spec;
  spec.num_functions = 200;
  spec.num_objects = 40;
  spec.dims = 3;
  spec.seed = 12001;
  AssignmentProblem problem = RandomProblem(spec);
  for (const char* name : {"SB", "SB-alt", "BruteForce", "Chain"}) {
    ExecContext ctx;
    MemTree mem(problem);
    DiskFunctionStore fstore(problem.functions, 0.02, &ctx.counters());
    MatcherEnv env;
    env.problem = &problem;
    env.tree = &mem.tree;
    env.fn_store = &fstore;
    env.ctx = &ctx;
    auto matcher = MatcherRegistry::Global().Create(name, env);
    ASSERT_NE(matcher, nullptr) << name;
    AssignResult got = matcher->Run();
    EXPECT_GT(got.stats.io_accesses, 0) << name;
    EXPECT_EQ(got.stats.io_accesses, ctx.counters().io_accesses()) << name;
  }
}

// Epoch publishes must advance: serving a dataset and then "updating"
// it to an older (or the same) epoch would silently roll back
// acknowledged updates for every request that follows. The registry
// enforces the monotonicity contract both ways — a CHECK-abort on the
// engine-internal Publish (a caller holding stale handles is a
// programming error) and a typed kFailedPrecondition through
// PublishOrError + ErrorSink for the serving/recovery path, where one
// bad publisher must not take the process down.
TEST(DatasetRegistryTest, NonMonotonicPublishAbortsAndTypesPrecondition) {
  ProblemSpec spec;
  AssignmentProblem problem = RandomProblem(spec);
  serve::DatasetRegistry registry;
  serve::DatasetHandle base = registry.Open("epochs", problem, {});
  ASSERT_NE(base, nullptr);

  update::DeltaBuilder builder(base, {});
  update::UpdateBatch batch;
  batch.delete_objects.push_back(0);
  ASSERT_TRUE(builder.Apply(batch).ok());
  ASSERT_GT(builder.epoch(), base->epoch());
  registry.Publish(builder.current());

  // Typed path: re-publishing the superseded epoch (and the live epoch
  // itself) is rejected without touching what is being served.
  ErrorSink sink;
  serve::DatasetHandle replaced;
  const serve::ServeStatus stale =
      registry.PublishOrError(base, &replaced, &sink);
  EXPECT_EQ(stale.code, serve::ServeCode::kFailedPrecondition);
  EXPECT_NE(stale.message.find("non-monotonic"), std::string::npos)
      << stale.message;
  EXPECT_EQ(sink.status().code, ErrorCode::kFailedPrecondition);
  EXPECT_EQ(replaced, nullptr);
  const serve::ServeStatus same =
      registry.PublishOrError(builder.current());
  EXPECT_EQ(same.code, serve::ServeCode::kFailedPrecondition);
  serve::DatasetHandle live = registry.Find("epochs");
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(live->epoch(), builder.epoch());

  // Engine-internal path: the same misuse is a contract violation.
  EXPECT_DEATH(registry.Publish(base), "non-monotonic");
}

}  // namespace
}  // namespace fairmatch

// Unit tests for the simulated disk, LRU buffer pool and paged files.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fairmatch/storage/buffer_pool.h"
#include "fairmatch/storage/disk_manager.h"
#include "fairmatch/storage/paged_file.h"

namespace fairmatch {
namespace {

TEST(DiskManagerTest, AllocateReadWrite) {
  DiskManager disk;
  PageId a = disk.AllocatePage();
  PageId b = disk.AllocatePage();
  EXPECT_NE(a, b);
  std::byte buf[kPageSize];
  std::memset(buf, 0xAB, kPageSize);
  disk.WritePage(a, buf);
  std::byte out[kPageSize];
  disk.ReadPage(a, out);
  EXPECT_EQ(std::memcmp(buf, out, kPageSize), 0);
  // Page b still zeroed.
  disk.ReadPage(b, out);
  EXPECT_EQ(out[0], std::byte{0});
  EXPECT_EQ(disk.num_pages(), 2);
}

TEST(DiskManagerTest, FreePagesAreRecycled) {
  DiskManager disk;
  PageId a = disk.AllocatePage();
  disk.FreePage(a);
  EXPECT_EQ(disk.num_live_pages(), 0);
  PageId b = disk.AllocatePage();
  EXPECT_EQ(a, b);  // recycled
  EXPECT_EQ(disk.num_pages(), 1);
}

// Liveness violations on ids only a programming error can produce stay
// fatal (disk_manager.h "CHECK vs Status"): these pin both the abort
// and its page-id diagnostics. Data-*derived* ids are different — the
// caller guards them with IsLive() and degrades to kDataLoss.
TEST(DiskManagerDeathTest, DoubleFreeAbortsWithDiagnostics) {
  DiskManager disk;
  PageId a = disk.AllocatePage();
  disk.FreePage(a);
  EXPECT_DEATH(disk.FreePage(a), "FreePage: page 0 is not live");
}

TEST(DiskManagerDeathTest, OutOfRangeReadAbortsWithDiagnostics) {
  DiskManager disk;
  disk.AllocatePage();
  std::byte out[kPageSize];
  EXPECT_DEATH(disk.ReadPage(7, out), "ReadPage: page 7 is not live");
}

// Recycle() must leave the manager observably identical to a freshly
// constructed one — page ids restart at zero and reallocated pages come
// back zeroed — while reusing the parked buffers (that reuse is what
// BatchRunner lanes lean on between items).
TEST(DiskManagerTest, RecycleRestartsIdsWithZeroedPages) {
  DiskManager disk;
  std::byte junk[kPageSize];
  std::memset(junk, 0xCD, kPageSize);
  for (int i = 0; i < 5; ++i) disk.WritePage(disk.AllocatePage(), junk);
  disk.FreePage(2);  // a hole in the free list must not survive either
  EXPECT_EQ(disk.num_pages(), 5);

  disk.Recycle();
  EXPECT_EQ(disk.num_pages(), 0);
  EXPECT_EQ(disk.num_live_pages(), 0);
  EXPECT_EQ(disk.spare_pages(), 4u);  // the freed page was already gone

  PageId first = disk.AllocatePage();
  EXPECT_EQ(first, 0);  // ids restart, not resume
  EXPECT_EQ(disk.spare_pages(), 3u);  // served from the parked buffers
  std::byte out[kPageSize];
  disk.ReadPage(first, out);
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(out[i], std::byte{0}) << "byte " << i;
  }
}

TEST(BufferPoolTest, MissThenHit) {
  DiskManager disk;
  PerfCounters counters;
  BufferPool pool(&disk, 4, &counters);
  PageId pid;
  {
    PageHandle h = pool.NewPage();
    pid = h.page_id();
    h.mutable_bytes()[0] = std::byte{42};
  }
  pool.FlushAll();
  counters.Reset();

  {
    PageHandle h = pool.FetchPage(pid);
    EXPECT_EQ(h.bytes()[0], std::byte{42});
  }
  EXPECT_EQ(counters.page_reads, 1);
  {
    PageHandle h = pool.FetchPage(pid);
    (void)h;
  }
  EXPECT_EQ(counters.page_reads, 1);
  EXPECT_EQ(counters.buffer_hits, 1);
  EXPECT_EQ(counters.logical_reads, 2);
}

TEST(BufferPoolTest, LruEvictionOrder) {
  DiskManager disk;
  PerfCounters counters;
  BufferPool pool(&disk, 2, &counters);
  std::vector<PageId> pids;
  for (int i = 0; i < 3; ++i) {
    PageHandle h = pool.NewPage();
    pids.push_back(h.page_id());
  }
  pool.FlushAll();
  counters.Reset();

  // Touch 0, 1 (fills buffer), then 0 again, then 2 — evicts 1 (LRU).
  pool.FetchPage(pids[0]);
  pool.FetchPage(pids[1]);
  pool.FetchPage(pids[0]);
  pool.FetchPage(pids[2]);
  EXPECT_EQ(counters.page_reads, 3);
  counters.Reset();
  pool.FetchPage(pids[0]);  // still resident
  EXPECT_EQ(counters.page_reads, 0);
  pool.FetchPage(pids[1]);  // was evicted
  EXPECT_EQ(counters.page_reads, 1);
}

TEST(BufferPoolTest, ZeroCapacityAlwaysMisses) {
  DiskManager disk;
  PerfCounters counters;
  BufferPool pool(&disk, 0, &counters);
  PageId pid;
  {
    PageHandle h = pool.NewPage();
    pid = h.page_id();
  }
  pool.FlushAll();
  counters.Reset();
  for (int i = 0; i < 5; ++i) {
    PageHandle h = pool.FetchPage(pid);
    (void)h;
  }
  EXPECT_EQ(counters.page_reads, 5);
  EXPECT_EQ(counters.buffer_hits, 0);
  EXPECT_EQ(pool.resident_frames(), 0u);
}

TEST(BufferPoolTest, PinnedPagesSurviveCapacityPressure) {
  DiskManager disk;
  PerfCounters counters;
  BufferPool pool(&disk, 1, &counters);
  PageHandle a = pool.NewPage();
  a.mutable_bytes()[7] = std::byte{9};
  // Fetch more pages than capacity while `a` stays pinned.
  PageId b_pid;
  {
    PageHandle b = pool.NewPage();
    b_pid = b.page_id();
  }
  PageHandle c = pool.FetchPage(b_pid);
  EXPECT_EQ(a.bytes()[7], std::byte{9});  // still valid
}

TEST(BufferPoolTest, DirtyEvictionCountsWrite) {
  DiskManager disk;
  PerfCounters counters;
  BufferPool pool(&disk, 1, &counters);
  PageId a, b;
  {
    PageHandle h = pool.NewPage();
    a = h.page_id();
  }
  {
    PageHandle h = pool.NewPage();
    b = h.page_id();
  }
  pool.FlushAll();
  counters.Reset();
  {
    PageHandle h = pool.FetchPage(a);
    h.mutable_bytes()[0] = std::byte{1};
  }
  {
    PageHandle h = pool.FetchPage(b);  // evicts dirty a
    (void)h;
  }
  EXPECT_EQ(counters.page_writes, 1);
  // Durability: the write reached the disk.
  std::byte out[kPageSize];
  disk.ReadPage(a, out);
  EXPECT_EQ(out[0], std::byte{1});
}

TEST(BufferPoolTest, ShrinkCapacityEvicts) {
  DiskManager disk;
  PerfCounters counters;
  BufferPool pool(&disk, 8, &counters);
  for (int i = 0; i < 6; ++i) {
    PageHandle h = pool.NewPage();
    (void)h;
  }
  EXPECT_EQ(pool.resident_frames(), 6u);
  pool.set_capacity(2);
  EXPECT_LE(pool.resident_frames(), 2u);
}

TEST(PagedFileTest, AppendAndRead) {
  DiskManager disk;
  PerfCounters counters;
  BufferPool pool(&disk, 16, &counters);
  PagedFile file(&pool, sizeof(int64_t));
  const int n = 2000;  // spans multiple pages (512 per page)
  for (int64_t i = 0; i < n; ++i) {
    file.Append(&i);
  }
  file.Seal();
  EXPECT_EQ(file.num_records(), n);
  EXPECT_EQ(file.num_pages(), (n + 511) / 512);
  for (int64_t i = 0; i < n; i += 97) {
    int64_t v = -1;
    file.Read(i, &v);
    EXPECT_EQ(v, i);
  }
}

TEST(PagedFileTest, ReadPageReturnsAllRecords) {
  DiskManager disk;
  PerfCounters counters;
  BufferPool pool(&disk, 16, &counters);
  PagedFile file(&pool, sizeof(int32_t));
  const int n = 1500;
  for (int32_t i = 0; i < n; ++i) file.Append(&i);
  file.Seal();
  std::vector<int32_t> buf(file.records_per_page());
  int total = 0;
  for (int64_t p = 0; p < file.num_pages(); ++p) {
    int count = file.ReadPage(p, buf.data());
    for (int i = 0; i < count; ++i) {
      EXPECT_EQ(buf[i], total + i);
    }
    total += count;
  }
  EXPECT_EQ(total, n);
}

TEST(PagedFileTest, SequentialScanIsOneReadPerPage) {
  DiskManager disk;
  PerfCounters counters;
  BufferPool pool(&disk, 2, &counters);
  PagedFile file(&pool, 8);
  for (int64_t i = 0; i < 5120; ++i) file.Append(&i);  // 10 pages
  file.Seal();
  counters.Reset();
  int64_t v;
  for (int64_t i = 0; i < file.num_records(); ++i) file.Read(i, &v);
  EXPECT_EQ(counters.page_reads, file.num_pages());
}

}  // namespace
}  // namespace fairmatch

// Tests for BBS, UpdateSkyline (incl. the Theorem 1 I/O-optimality
// property), DeltaSky and the in-memory skyline.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "fairmatch/common/rng.h"
#include "fairmatch/data/synthetic.h"
#include "fairmatch/rtree/node_store.h"
#include "fairmatch/rtree/rtree.h"
#include "fairmatch/skyline/bbs.h"
#include "fairmatch/skyline/delta_sky.h"
#include "fairmatch/skyline/mem_skyline.h"
#include "fairmatch/skyline/skyline_set.h"
#include "test_util.h"

namespace fairmatch {
namespace {

using fairmatch::testing::GridPoints;
using fairmatch::testing::NaiveSkyline;

std::set<ObjectId> MemberIds(const SkylineSet& sky) {
  std::set<ObjectId> ids;
  sky.ForEach([&](int, const SkylineObject& m) { ids.insert(m.id); });
  return ids;
}

struct SkyCase {
  int n;
  int dims;
  Distribution distribution;
  uint64_t seed;
};

class SkylineParamTest : public ::testing::TestWithParam<SkyCase> {};

TEST_P(SkylineParamTest, InitialSkylineMatchesNaive) {
  SkyCase c = GetParam();
  Rng rng(c.seed);
  auto points = GeneratePoints(c.distribution, c.n, c.dims, &rng);
  MemNodeStore store(c.dims);
  RTree tree(&store);
  std::vector<ObjectRecord> records;
  for (size_t i = 0; i < points.size(); ++i) {
    records.push_back({points[i], static_cast<ObjectId>(i)});
  }
  tree.BulkLoad(records);

  SkylineManager mgr(&tree);
  mgr.ComputeInitial();
  auto naive = NaiveSkyline(points);
  std::set<ObjectId> expect(naive.begin(), naive.end());
  EXPECT_EQ(MemberIds(mgr.skyline()), expect);
}

TEST_P(SkylineParamTest, UpdateSkylineTracksDeletions) {
  SkyCase c = GetParam();
  Rng rng(c.seed + 1);
  auto points = GeneratePoints(c.distribution, c.n, c.dims, &rng);
  MemNodeStore store(c.dims);
  RTree tree(&store);
  std::vector<ObjectRecord> records;
  for (size_t i = 0; i < points.size(); ++i) {
    records.push_back({points[i], static_cast<ObjectId>(i)});
  }
  tree.BulkLoad(records);

  SkylineManager mgr(&tree);
  mgr.ComputeInitial();
  std::vector<bool> alive(points.size(), true);

  // Repeatedly delete 1-3 skyline members and compare with the naive
  // skyline of the survivors.
  Rng pick(c.seed + 2);
  for (int round = 0; round < 40; ++round) {
    auto members = MemberIds(mgr.skyline());
    if (members.empty()) break;
    std::vector<ObjectId> victims;
    int want = 1 + static_cast<int>(pick.UniformInt(0, 2));
    for (ObjectId id : members) {
      if (static_cast<int>(victims.size()) >= want) break;
      victims.push_back(id);
    }
    for (ObjectId id : victims) alive[id] = false;
    mgr.RemoveAndUpdate(victims);

    auto naive = NaiveSkyline(points, &alive);
    std::set<ObjectId> expect(naive.begin(), naive.end());
    ASSERT_EQ(MemberIds(mgr.skyline()), expect) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SkylineParamTest,
    ::testing::Values(SkyCase{200, 2, Distribution::kIndependent, 10},
                      SkyCase{500, 3, Distribution::kAntiCorrelated, 11},
                      SkyCase{500, 3, Distribution::kCorrelated, 12},
                      SkyCase{1500, 4, Distribution::kIndependent, 13},
                      SkyCase{1000, 5, Distribution::kAntiCorrelated, 14},
                      SkyCase{60, 2, Distribution::kAntiCorrelated, 15}));

TEST(SkylineManagerTest, DuplicateSkylinePointsBothReported) {
  std::vector<Point> points;
  Point a(2);
  a[0] = 0.9f;
  a[1] = 0.1f;
  Point b(2);
  b[0] = 0.1f;
  b[1] = 0.9f;
  points = {a, a, b};  // two coincident maxima on one axis
  MemNodeStore store(2);
  RTree tree(&store);
  std::vector<ObjectRecord> records;
  for (size_t i = 0; i < points.size(); ++i) {
    records.push_back({points[i], static_cast<ObjectId>(i)});
  }
  tree.BulkLoad(records);
  SkylineManager mgr(&tree);
  mgr.ComputeInitial();
  EXPECT_EQ(MemberIds(mgr.skyline()), (std::set<ObjectId>{0, 1, 2}));
}

// Theorem 1: UpdateSkyline never reads the same R-tree node twice across
// the entire deletion sequence.
TEST(SkylineManagerTest, Theorem1NoNodeReadTwice) {
  Rng rng(77);
  auto points = GeneratePoints(Distribution::kAntiCorrelated, 3000, 3, &rng);
  MemNodeStore store(3);
  RTree tree(&store);
  std::vector<ObjectRecord> records;
  for (size_t i = 0; i < points.size(); ++i) {
    records.push_back({points[i], static_cast<ObjectId>(i)});
  }
  tree.BulkLoad(records);

  SkylineManager mgr(&tree);
  mgr.EnableReadLog();
  mgr.ComputeInitial();
  // Delete every member until the data set is exhausted.
  while (mgr.skyline().size() > 0) {
    auto members = MemberIds(mgr.skyline());
    std::vector<ObjectId> victims(members.begin(), members.end());
    // Delete in chunks to exercise the batch path.
    victims.resize(std::max<size_t>(1, victims.size() / 2));
    mgr.RemoveAndUpdate(victims);
  }
  const auto& log = mgr.read_log();
  std::unordered_set<PageId> distinct(log.begin(), log.end());
  EXPECT_EQ(distinct.size(), log.size()) << "a node was read twice";
  // And every node was eventually needed: full exhaustion reads all.
  EXPECT_EQ(static_cast<int64_t>(log.size()), tree.CountNodes());
}

// Physical-I/O version of Theorem 1: with a 0% buffer each physical read
// maps 1:1 to a node access, so SB's skyline stack does exactly
// CountNodes() reads to drain the whole data set.
TEST(SkylineManagerTest, Theorem1PhysicalReadsWithZeroBuffer) {
  Rng rng(78);
  auto points = GeneratePoints(Distribution::kIndependent, 4000, 3, &rng);
  PagedNodeStore store(3, /*buffer_frames=*/64);
  RTree tree(&store);
  std::vector<ObjectRecord> records;
  for (size_t i = 0; i < points.size(); ++i) {
    records.push_back({points[i], static_cast<ObjectId>(i)});
  }
  tree.BulkLoad(records);
  store.ResetCounters();
  store.SetBufferFraction(0.0);

  SkylineManager mgr(&tree);
  mgr.ComputeInitial();
  while (mgr.skyline().size() > 0) {
    auto members = MemberIds(mgr.skyline());
    mgr.RemoveAndUpdate(
        std::vector<ObjectId>(members.begin(), members.end()));
  }
  // Capture the counter before CountNodes(), which itself reads pages.
  int64_t reads_during_drain = store.counters().page_reads;
  int64_t writes_during_drain = store.counters().page_writes;
  EXPECT_EQ(reads_during_drain, tree.CountNodes());
  EXPECT_EQ(writes_during_drain, 0);
}

TEST(DeltaSkyTest, MaintenanceMatchesNaive) {
  Rng rng(91);
  auto points = GeneratePoints(Distribution::kAntiCorrelated, 800, 3, &rng);
  MemNodeStore store(3);
  RTree tree(&store);
  std::vector<ObjectRecord> records;
  for (size_t i = 0; i < points.size(); ++i) {
    records.push_back({points[i], static_cast<ObjectId>(i)});
  }
  tree.BulkLoad(records);

  DeltaSkyManager mgr(&tree);
  mgr.ComputeInitial();
  std::vector<bool> alive(points.size(), true);
  {
    auto naive = NaiveSkyline(points, &alive);
    EXPECT_EQ(MemberIds(mgr.skyline()),
              std::set<ObjectId>(naive.begin(), naive.end()));
  }
  for (int round = 0; round < 60; ++round) {
    auto members = MemberIds(mgr.skyline());
    if (members.empty()) break;
    ObjectId victim = *members.begin();
    alive[victim] = false;
    mgr.Remove(victim);
    auto naive = NaiveSkyline(points, &alive);
    ASSERT_EQ(MemberIds(mgr.skyline()),
              std::set<ObjectId>(naive.begin(), naive.end()))
        << "round " << round;
  }
}

TEST(DeltaSkyTest, ReadsMoreNodesThanUpdateSkyline) {
  Rng rng(92);
  auto points = GeneratePoints(Distribution::kAntiCorrelated, 5000, 3, &rng);
  std::vector<ObjectRecord> records;
  for (size_t i = 0; i < points.size(); ++i) {
    records.push_back({points[i], static_cast<ObjectId>(i)});
  }

  MemNodeStore s1(3), s2(3);
  RTree t1(&s1), t2(&s2);
  t1.BulkLoad(records);
  t2.BulkLoad(records);

  SkylineManager update(&t1);
  DeltaSkyManager delta(&t2);
  update.ComputeInitial();
  delta.ComputeInitial();
  for (int round = 0; round < 50; ++round) {
    auto members = MemberIds(update.skyline());
    if (members.empty()) break;
    ObjectId victim = *members.begin();
    update.RemoveAndUpdate({victim});
    delta.Remove(victim);
  }
  EXPECT_LT(update.nodes_read(), delta.nodes_read());
}

TEST(SkylineSetTest, FindDominatorHonorsSumPruning) {
  SkylineSet sky;
  Point a(2);
  a[0] = 0.9f;
  a[1] = 0.8f;
  sky.Add(a, 1);
  Point probe(2);
  probe[0] = 0.5f;
  probe[1] = 0.5f;
  EXPECT_GE(sky.FindDominator(probe, probe.Sum()), 0);
  Point high(2);
  high[0] = 0.95f;
  high[1] = 0.95f;
  EXPECT_EQ(sky.FindDominator(high, high.Sum()), -1);
  sky.Remove(1);
  EXPECT_EQ(sky.FindDominator(probe, probe.Sum()), -1);
  EXPECT_EQ(sky.size(), 0u);
}

TEST(MemSkylineTest, MatchesNaiveUnderDeletions) {
  auto points = GridPoints(400, 3, 6, 33);
  MemSkyline sky(points);
  std::vector<bool> alive(points.size(), true);
  {
    auto naive = NaiveSkyline(points, &alive);
    auto members = sky.Members();
    EXPECT_EQ(std::set<int>(members.begin(), members.end()),
              std::set<int>(naive.begin(), naive.end()));
  }
  Rng rng(34);
  for (int round = 0; round < 100; ++round) {
    // Remove an arbitrary live point (skyline member or not).
    std::vector<int> live;
    for (size_t i = 0; i < alive.size(); ++i) {
      if (alive[i]) live.push_back(static_cast<int>(i));
    }
    if (live.empty()) break;
    int victim =
        live[rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1)];
    alive[victim] = false;
    sky.Remove(victim);
    auto naive = NaiveSkyline(points, &alive);
    auto members = sky.Members();
    ASSERT_EQ(std::set<int>(members.begin(), members.end()),
              std::set<int>(naive.begin(), naive.end()))
        << "round " << round;
  }
}

}  // namespace
}  // namespace fairmatch

// Correctness of the assignment algorithms on the standard problem:
// every matcher in the engine registry must produce exactly the
// matching defined by iterative best-pair extraction (plus targeted
// SB-option ablations, which are SBOptions knobs rather than registry
// variants).
#include <gtest/gtest.h>

#include "fairmatch/assign/naive_matcher.h"
#include "fairmatch/assign/sb.h"
#include "fairmatch/assign/verifier.h"
#include "fairmatch/engine/registry.h"
#include "test_util.h"

namespace fairmatch {
namespace {

using fairmatch::testing::GridFunctions;
using fairmatch::testing::GridPoints;
using fairmatch::testing::MemTree;
using fairmatch::testing::ProblemSpec;
using fairmatch::testing::RandomProblem;
using fairmatch::testing::RunRegisteredMatcher;

std::string Describe(const Matching& m) {
  std::string out;
  for (const auto& p : m) {
    out += "(f" + std::to_string(p.fid) + ",o" + std::to_string(p.oid) +
           ") ";
  }
  return out;
}

void ExpectSame(const Matching& got, const Matching& want,
                const std::string& label) {
  EXPECT_TRUE(SameMatching(got, want))
      << label << "\n got: " << Describe(got) << "\nwant: " << Describe(want);
}

class AssignParamTest : public ::testing::TestWithParam<ProblemSpec> {};

TEST_P(AssignParamTest, EveryRegisteredMatcherMatchesNaive) {
  AssignmentProblem problem = RandomProblem(GetParam());
  Matching want = NaiveStableMatching(problem);
  for (const std::string& name : MatcherRegistry::Global().Names()) {
    AssignResult got = RunRegisteredMatcher(name, problem);
    ExpectSame(got.matching, want, name + " vs naive");
    auto verdict = VerifyStableMatching(problem, got.matching);
    EXPECT_TRUE(verdict.ok) << name << ": " << verdict.message;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AssignParamTest,
    ::testing::Values(
        // |F| << |O|, the paper's standard setting.
        ProblemSpec{15, 150, 3, Distribution::kIndependent, 1001},
        ProblemSpec{15, 150, 3, Distribution::kAntiCorrelated, 1002},
        ProblemSpec{15, 150, 3, Distribution::kCorrelated, 1003},
        ProblemSpec{25, 120, 4, Distribution::kAntiCorrelated, 1004},
        ProblemSpec{10, 400, 5, Distribution::kIndependent, 1005},
        ProblemSpec{40, 60, 2, Distribution::kAntiCorrelated, 1006},
        // |F| > |O|: unmatched functions remain.
        ProblemSpec{80, 30, 3, Distribution::kIndependent, 1007},
        ProblemSpec{120, 20, 4, Distribution::kAntiCorrelated, 1008},
        // |F| == |O|.
        ProblemSpec{50, 50, 3, Distribution::kCorrelated, 1009},
        // Tiny edge cases.
        ProblemSpec{1, 1, 2, Distribution::kIndependent, 1010},
        ProblemSpec{1, 50, 3, Distribution::kAntiCorrelated, 1011},
        ProblemSpec{50, 1, 3, Distribution::kIndependent, 1012},
        ProblemSpec{2, 2, 6, Distribution::kIndependent, 1013}));

// SB option ablations must not change the result, only the cost.
struct SBVariant {
  const char* name;
  SBOptions options;
};

class SBOptionTest : public ::testing::TestWithParam<int> {};

TEST_P(SBOptionTest, AllVariantsAgree) {
  ProblemSpec spec;
  spec.num_functions = 30;
  spec.num_objects = 200;
  spec.dims = 3;
  spec.distribution = Distribution::kAntiCorrelated;
  spec.seed = 2000 + GetParam();
  AssignmentProblem problem = RandomProblem(spec);
  Matching want = NaiveStableMatching(problem);

  std::vector<SBVariant> variants;
  variants.push_back({"default", SBOptions{}});
  {
    SBOptions o;
    o.multi_pair = false;
    variants.push_back({"single-pair", o});
  }
  {
    SBOptions o;
    o.best_pair_mode = BestPairMode::kExhaustive;
    o.multi_pair = false;
    variants.push_back({"SB-UpdateSkyline (ablation)", o});
  }
  {
    SBOptions o;
    o.skyline_mode = SkylineMode::kDeltaSky;
    o.best_pair_mode = BestPairMode::kExhaustive;
    o.multi_pair = false;
    variants.push_back({"SB-DeltaSky (ablation)", o});
  }
  {
    SBOptions o;
    o.ta.omega = 0.004;  // tiny queue: forces restarts
    variants.push_back({"tiny-omega", o});
  }
  {
    SBOptions o;
    o.ta.biased_probing = false;
    variants.push_back({"round-robin", o});
  }
  {
    SBOptions o;
    o.ta.resume = false;
    variants.push_back({"no-resume", o});
  }
  {
    SBOptions o;
    o.skyline_mode = SkylineMode::kDeltaSky;
    variants.push_back({"deltasky+multipair", o});
  }

  for (const SBVariant& variant : variants) {
    MemTree mem(problem);
    SBAssignment sb(&problem, &mem.tree, variant.options);
    AssignResult got = sb.Run();
    ExpectSame(got.matching, want, variant.name);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SBOptionTest, ::testing::Range(0, 6));

// Tie-heavy instances: duplicate points and duplicate/grid weights.
//
// Under exact score ties the stable matching is not unique: a dominated
// object can tie a skyline member (e.g. under a zero weight), and the
// skyline-based algorithms then legitimately pick the member while the
// full-scan algorithms pick the smallest object id. Contract tested
// here: BF and Chain (full-object-set searches with the canonical tie
// order) reproduce naive *exactly*; the SB family produces a matching
// that is (a) stable per Definition 1, (b) of the same size, and
// (c) deterministic.
TEST(AssignTieTest, GridInstancesAllAlgorithmsAgree) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    auto points = GridPoints(80, 3, 3, 3000 + seed);
    FunctionSet fns = GridFunctions(25, 3, 3, 4000 + seed);
    AssignmentProblem problem = MakeProblem(points, fns);
    Matching want = NaiveStableMatching(problem);
    for (const std::string& name : MatcherRegistry::Global().Names()) {
      const MatcherInfo* info = MatcherRegistry::Global().Find(name);
      std::string label = name + " grid seed=" + std::to_string(seed);
      Matching got = RunRegisteredMatcher(name, problem).matching;
      if (info->exact_under_ties) {
        ExpectSame(got, want, label);
      } else {
        // The SB family: stable, same size, deterministic — but free to
        // resolve exact score ties differently from the full-scan
        // algorithms (see the contract above).
        auto verdict = VerifyStableMatching(problem, got);
        EXPECT_TRUE(verdict.ok) << label << ": " << verdict.message;
        EXPECT_EQ(got.size(), want.size()) << label;
        ExpectSame(RunRegisteredMatcher(name, problem).matching, got,
                   label + " determinism");
      }
    }
  }
}

TEST(AssignTieTest, IdenticalFunctionsShareObjectsDeterministically) {
  // Five identical functions compete for distinct objects.
  FunctionSet fns;
  for (int i = 0; i < 5; ++i) {
    PrefFunction f;
    f.id = i;
    f.dims = 2;
    f.alpha = {0.5, 0.5};
    fns.push_back(f);
  }
  Rng rng(5005);
  auto points = GeneratePoints(Distribution::kIndependent, 30, 2, &rng);
  AssignmentProblem problem = MakeProblem(points, fns);
  Matching want = NaiveStableMatching(problem);
  Matching got = RunRegisteredMatcher("SB", problem).matching;
  ExpectSame(got, want, "identical functions");
  // All five matched (|F| < |O|).
  EXPECT_EQ(got.size(), 5u);
}

TEST(AssignTest, PaperRunningExample) {
  // Figure 1: f1=0.8X+0.2Y, f2=0.2X+0.8Y, f3=0.5X+0.5Y over
  // a=(0.5,0.6) b=(0.2,0.7) c=(0.8,0.2) d=(0.4,0.4).
  FunctionSet fns(3);
  fns[0] = PrefFunction{0, 2, {0.8, 0.2}, 1.0, 1};
  fns[1] = PrefFunction{1, 2, {0.2, 0.8}, 1.0, 1};
  fns[2] = PrefFunction{2, 2, {0.5, 0.5}, 1.0, 1};
  std::vector<Point> points(4, Point(2));
  points[0][0] = 0.5f;
  points[0][1] = 0.6f;  // a
  points[1][0] = 0.2f;
  points[1][1] = 0.7f;  // b
  points[2][0] = 0.8f;
  points[2][1] = 0.2f;  // c
  points[3][0] = 0.4f;
  points[3][1] = 0.4f;  // d
  AssignmentProblem problem = MakeProblem(points, fns);

  Matching got = RunRegisteredMatcher("SB", problem).matching;
  CanonicalizeMatching(&got);
  // The paper's outcome: c -> f1, b -> f2, a -> f3.
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].fid, 0);
  EXPECT_EQ(got[0].oid, 2);
  EXPECT_EQ(got[1].fid, 1);
  EXPECT_EQ(got[1].oid, 1);
  EXPECT_EQ(got[2].fid, 2);
  EXPECT_EQ(got[2].oid, 0);
}

TEST(AssignTest, ProgressiveOutputOrderIsDescendingScore) {
  ProblemSpec spec;
  spec.num_functions = 30;
  spec.num_objects = 150;
  spec.seed = 6006;
  AssignmentProblem problem = RandomProblem(spec);
  Matching got = RunRegisteredMatcher("SB", problem).matching;
  // Multi-pair loops emit batches, and batches are in score order across
  // loops: the first pair of the run is the global maximum.
  Matching naive = NaiveStableMatching(problem);
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got[0].fid, naive[0].fid);
  EXPECT_EQ(got[0].oid, naive[0].oid);
}

TEST(VerifierTest, DetectsBlockingPair) {
  ProblemSpec spec;
  spec.num_functions = 10;
  spec.num_objects = 20;
  spec.seed = 7007;
  AssignmentProblem problem = RandomProblem(spec);
  Matching good = NaiveStableMatching(problem);
  EXPECT_TRUE(VerifyStableMatching(problem, good).ok);
  // Swap two assignments: stability breaks (generically).
  ASSERT_GE(good.size(), 2u);
  Matching bad = good;
  std::swap(bad[0].oid, bad[1].oid);
  bad[0].score = problem.functions[bad[0].fid].Score(
      problem.objects[bad[0].oid].point);
  bad[1].score = problem.functions[bad[1].fid].Score(
      problem.objects[bad[1].oid].point);
  EXPECT_FALSE(VerifyStableMatching(problem, bad).ok);
}

TEST(VerifierTest, DetectsNonMaximalMatching) {
  ProblemSpec spec;
  spec.num_functions = 10;
  spec.num_objects = 20;
  spec.seed = 7008;
  AssignmentProblem problem = RandomProblem(spec);
  Matching good = NaiveStableMatching(problem);
  Matching truncated(good.begin(), good.end() - 1);
  EXPECT_FALSE(VerifyStableMatching(problem, truncated).ok);
}

TEST(VerifierTest, DetectsCapacityViolation) {
  ProblemSpec spec;
  spec.num_functions = 5;
  spec.num_objects = 20;
  spec.seed = 7009;
  AssignmentProblem problem = RandomProblem(spec);
  Matching good = NaiveStableMatching(problem);
  Matching bad = good;
  bad.push_back(bad[0]);  // function 0 matched twice with capacity 1
  EXPECT_FALSE(VerifyStableMatching(problem, bad).ok);
}

}  // namespace
}  // namespace fairmatch

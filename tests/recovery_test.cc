// Crash-recovery suite (ctest label: recovery). The contract under
// test (recover/durable_builder.h): a process killed at ANY durable-op
// boundary — every WAL/snapshot/manifest write, fsync and rename —
// recovers to a servable epoch E in {last acknowledged, +1} whose
// state is byte-identical to the uncrashed run's epoch E: problem
// arrays, R-tree page bytes, maintained skyline and served SB matching
// all fingerprint-equal. Torn WAL tails truncate silently, half-
// applied (logged-but-unacknowledged) batches replay, a torn manifest
// slot fails over to the surviving slot, and unrecoverable damage
// surfaces as typed kDataLoss — never a crash, never a wrong answer.
//
// The sweep here is in-process: the crash is a thrown InjectedCrash
// unwinding out of the durability layer, so one binary can run
// hundreds of (seed, boundary) combinations under ASan/TSan. The
// subprocess kill -9 variant of the same sweep lives in
// tests/recovery_kill_test.cc (ctest label: killsweep).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fairmatch/recover/batch_codec.h"
#include "fairmatch/recover/durable_builder.h"
#include "fairmatch/recover/manifest.h"
#include "fairmatch/recover/snapshot.h"
#include "fairmatch/recover/wal.h"
#include "fairmatch/serve/dataset_registry.h"
#include "fairmatch/storage/durable_file.h"
#include "fairmatch/storage/fault_injector.h"
#include "fairmatch/update/delta_builder.h"
#include "recovery_trace.h"
#include "test_util.h"

namespace fairmatch::recover {
namespace {

using fairmatch::testing::BuildTraceOracle;
using fairmatch::testing::MakeDurableOptions;
using fairmatch::testing::MakeRecoveryDir;
using fairmatch::testing::RecoveryProblem;
using fairmatch::testing::RemoveRecoveryDir;
using fairmatch::testing::RunCrashTrace;
using fairmatch::testing::StateFingerprint;
using fairmatch::testing::TraceOracle;
using fairmatch::testing::TraceSpec;

bool RewriteFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  return true;
}

// --- the tentpole: every boundary, every seed, in-process unwind -----

TEST(CrashSweepTest, EveryDurableBoundaryRecoversByteIdentical) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    TraceSpec spec;
    spec.seed = seed;
    const TraceOracle oracle = BuildTraceOracle(spec);
    ASSERT_GT(oracle.total_durable_ops, 0);

    for (int64_t boundary = 0; boundary < oracle.total_durable_ops;
         ++boundary) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " boundary " +
                   std::to_string(boundary) + "/" +
                   std::to_string(oracle.total_durable_ops));
      const std::string dir = MakeRecoveryDir("recovery_sweep");
      FaultInjectorOptions plan;
      plan.seed = seed * 1000 + static_cast<uint64_t>(boundary);
      plan.crash_after_durable = boundary;
      plan.crash_mode = CrashMode::kThrow;
      FaultInjector injector(plan);

      int64_t last_completed = 0;
      bool crashed = false;
      try {
        RunCrashTrace(dir, oracle, spec.snapshot_threshold, &injector,
                      &last_completed);
      } catch (const InjectedCrash& crash) {
        crashed = true;
        EXPECT_EQ(crash.durable_op, boundary);
      }
      ASSERT_TRUE(crashed) << "schedule never fired";

      std::unique_ptr<DurableBuilder> builder;
      RecoveryStats stats;
      const serve::ServeStatus status = DurableBuilder::Recover(
          MakeDurableOptions(dir, spec.snapshot_threshold, nullptr), &builder,
          &stats);
      if (last_completed == 0) {
        // Crashed inside Bootstrap: nothing was ever acknowledged, so
        // an empty-or-unrecoverable directory is a legal outcome — but
        // it must be TYPED, and a successful recovery must land on the
        // bootstrap epoch.
        if (status.ok()) {
          ASSERT_EQ(builder->epoch(), 1);
          EXPECT_EQ(StateFingerprint(*builder->current()),
                    oracle.expected.at(1));
        } else {
          EXPECT_TRUE(status.code == serve::ServeCode::kNotFound ||
                      status.code == serve::ServeCode::kDataLoss)
              << status.message;
        }
        RemoveRecoveryDir(dir);
        continue;
      }

      ASSERT_TRUE(status.ok()) << status.message;
      const int64_t recovered = builder->epoch();
      EXPECT_EQ(recovered, stats.recovered_epoch);
      EXPECT_TRUE(recovered == last_completed ||
                  recovered == last_completed + 1)
          << "recovered epoch " << recovered << " after acking "
          << last_completed;
      ASSERT_TRUE(oracle.expected.count(recovered));
      EXPECT_EQ(StateFingerprint(*builder->current()),
                oracle.expected.at(recovered))
          << "recovered epoch " << recovered
          << " diverged from the uncrashed run";

      // The recovered builder must keep working: apply the rest of the
      // trace (batches[i] produces epoch i + 2) and converge to the
      // uncrashed run's final state.
      for (size_t i = static_cast<size_t>(recovered - 1);
           i < oracle.batches.size(); ++i) {
        const serve::ServeStatus apply = builder->Apply(oracle.batches[i]);
        ASSERT_TRUE(apply.ok()) << apply.message;
      }
      EXPECT_EQ(builder->epoch(), oracle.final_epoch);
      EXPECT_EQ(StateFingerprint(*builder->current()),
                oracle.expected.at(oracle.final_epoch));

      builder.reset();
      RemoveRecoveryDir(dir);
    }
  }
}

// --- WAL-level damage ------------------------------------------------

class DamageTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = MakeRecoveryDir("recovery_damage"); }
  void TearDown() override { RemoveRecoveryDir(dir_); }

  /// Bootstraps + applies `steps` batches with a huge snapshot
  /// threshold (no checkpoints: one manifest slot, one WAL file).
  void RunTrace(int steps) {
    TraceSpec spec;
    spec.steps = steps;
    spec.snapshot_threshold = 1 << 20;
    oracle_ = BuildTraceOracle(spec);
    int64_t last_completed = 0;
    RunCrashTrace(dir_, oracle_, spec.snapshot_threshold, nullptr,
                  &last_completed);
    ASSERT_EQ(last_completed, oracle_.final_epoch);
  }

  serve::ServeStatus Recover(std::unique_ptr<DurableBuilder>* builder,
                             RecoveryStats* stats) {
    return DurableBuilder::Recover(MakeDurableOptions(dir_, 1 << 20, nullptr),
                                   builder, stats);
  }

  std::string WalPath() const { return dir_ + "/wal-1.log"; }
  std::string SnapshotPath() const { return dir_ + "/snap-1.fms"; }
  std::string ManifestPath() const { return dir_ + "/MANIFEST"; }

  std::string dir_;
  TraceOracle oracle_;
};

TEST_F(DamageTest, TornWalTailIsTruncatedAndTheAckedPrefixRecovered) {
  RunTrace(3);

  // Simulate a torn append: garbage that parses as an incomplete
  // record at EOF (a plausible epoch header, then silence).
  std::string bytes, error;
  ASSERT_TRUE(ReadFileBytes(WalPath(), &bytes, &error)) << error;
  const int64_t intact = static_cast<int64_t>(bytes.size());
  std::FILE* f = std::fopen(WalPath().c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const int64_t fake_epoch = 5;
  std::fwrite(&fake_epoch, sizeof(fake_epoch), 1, f);
  std::fclose(f);

  std::vector<WalRecord> records;
  WalReadStats rstats;
  ASSERT_TRUE(ReadWal(WalPath(), &records, &rstats).ok());
  EXPECT_TRUE(rstats.torn_tail);
  EXPECT_EQ(rstats.torn_bytes, 8);
  EXPECT_EQ(rstats.bytes_used, intact);
  EXPECT_EQ(rstats.records, 3);

  std::unique_ptr<DurableBuilder> builder;
  RecoveryStats stats;
  ASSERT_TRUE(Recover(&builder, &stats).ok());
  EXPECT_TRUE(stats.wal_torn_tail);
  EXPECT_EQ(stats.wal_torn_bytes, 8);
  EXPECT_EQ(builder->epoch(), oracle_.final_epoch);
  EXPECT_EQ(StateFingerprint(*builder->current()),
            oracle_.expected.at(oracle_.final_epoch));

  // The torn residue was truncated before the writer re-attached:
  // post-recovery appends extend a clean log.
  ASSERT_TRUE(builder->Apply(oracle_.batches[0]).ok());
  const uint64_t continued = StateFingerprint(*builder->current());
  std::unique_ptr<DurableBuilder> again;
  ASSERT_TRUE(Recover(&again, &stats).ok());
  EXPECT_FALSE(stats.wal_torn_tail);
  EXPECT_EQ(again->epoch(), builder->epoch());
  EXPECT_EQ(StateFingerprint(*again->current()), continued);
}

TEST_F(DamageTest, InteriorWalCorruptionIsTypedDataLossNotATruncation) {
  RunTrace(3);

  // Flip one payload byte INSIDE the committed prefix (first record,
  // past the 8-byte file header + 16-byte record header): the record
  // is complete but its CRC fails — committed history is unreadable,
  // which must NOT be silently truncated away.
  std::string bytes, error;
  ASSERT_TRUE(ReadFileBytes(WalPath(), &bytes, &error)) << error;
  ASSERT_GT(bytes.size(), 30u);
  bytes[28] = static_cast<char>(bytes[28] ^ 0x40);
  ASSERT_TRUE(RewriteFile(WalPath(), bytes));

  std::vector<WalRecord> records;
  WalReadStats rstats;
  const serve::ServeStatus read = ReadWal(WalPath(), &records, &rstats);
  EXPECT_EQ(read.code, serve::ServeCode::kDataLoss) << read.message;

  // With the only slot's WAL unreadable, recovery is typed data loss.
  std::unique_ptr<DurableBuilder> builder;
  RecoveryStats stats;
  const serve::ServeStatus status = Recover(&builder, &stats);
  EXPECT_EQ(status.code, serve::ServeCode::kDataLoss);
  EXPECT_NE(status.message.find("checksum"), std::string::npos)
      << status.message;
}

TEST_F(DamageTest, DuplicateWalRecordIsSkippedOnReplay) {
  RunTrace(2);

  // Re-append a byte-exact copy of an already-committed record (epoch
  // 2, the first one after the header). Replay must skip it: applying
  // it twice would double the batch.
  std::string bytes, error;
  ASSERT_TRUE(ReadFileBytes(WalPath(), &bytes, &error)) << error;
  int64_t first_epoch;
  uint32_t first_len;
  std::memcpy(&first_epoch, bytes.data() + 8, sizeof(first_epoch));
  std::memcpy(&first_len, bytes.data() + 16, sizeof(first_len));
  ASSERT_EQ(first_epoch, 2);
  const std::string first_record = bytes.substr(8, 16 + first_len);
  std::FILE* f = std::fopen(WalPath().c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fwrite(first_record.data(), 1, first_record.size(), f);
  std::fclose(f);

  std::unique_ptr<DurableBuilder> builder;
  RecoveryStats stats;
  ASSERT_TRUE(Recover(&builder, &stats).ok());
  EXPECT_EQ(stats.wal_records_replayed, 2);
  EXPECT_EQ(stats.wal_records_skipped, 1);
  EXPECT_EQ(builder->epoch(), oracle_.final_epoch);
  EXPECT_EQ(StateFingerprint(*builder->current()),
            oracle_.expected.at(oracle_.final_epoch));
}

TEST_F(DamageTest, SnapshotCorruptionOnTheOnlySlotIsTypedDataLoss) {
  RunTrace(2);
  std::string bytes, error;
  ASSERT_TRUE(ReadFileBytes(SnapshotPath(), &bytes, &error)) << error;
  bytes[bytes.size() / 2] =
      static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  ASSERT_TRUE(RewriteFile(SnapshotPath(), bytes));

  std::unique_ptr<DurableBuilder> builder;
  RecoveryStats stats;
  const serve::ServeStatus status = Recover(&builder, &stats);
  EXPECT_EQ(status.code, serve::ServeCode::kDataLoss);
  EXPECT_EQ(stats.snapshot_fallbacks, 1);
  EXPECT_NE(status.message.find("snapshot"), std::string::npos)
      << status.message;
}

// --- manifest A/B failover -------------------------------------------

TEST(ManifestFailoverTest, TornCommitFailsOverToSurvivingSlotAndReplays) {
  // Crash exactly at the manifest-slot WRITE of the first checkpoint:
  // Bootstrap crosses 9 boundaries (manifest format 2, snapshot 3, WAL
  // create 2, commit 2), each apply 2 (record write + sync), and the
  // checkpoint after apply #2 (threshold 2) starts with snapshot (3) +
  // WAL create (2) — so the slot write for seq 2 is boundary 18. The
  // torn write lands in the OTHER slot: seq 1 survives, binds the old
  // snapshot + old WAL (pruning never ran), and replay reconverges to
  // the pre-crash epoch.
  TraceSpec spec;
  spec.seed = 3;
  spec.steps = 2;
  spec.snapshot_threshold = 2;
  const TraceOracle oracle = BuildTraceOracle(spec);
  ASSERT_EQ(oracle.total_durable_ops, 9 + 2 * 2 + 7);

  const std::string dir = MakeRecoveryDir("recovery_failover");
  FaultInjectorOptions plan;
  plan.seed = 99;
  plan.crash_after_durable = 18;
  plan.crash_mode = CrashMode::kThrow;
  FaultInjector injector(plan);
  int64_t last_completed = 0;
  bool crashed = false;
  try {
    RunCrashTrace(dir, oracle, spec.snapshot_threshold, &injector,
                  &last_completed);
  } catch (const InjectedCrash& crash) {
    crashed = true;
    EXPECT_STREQ(crash.site, "manifest slot write");
  }
  ASSERT_TRUE(crashed);
  // The tear is inside Apply #2's checkpoint, so epoch 3 was applied
  // and WAL-committed but never acknowledged: recovery must land on
  // acked + 1 via replay off the surviving slot.
  ASSERT_EQ(last_completed, 2);

  std::unique_ptr<DurableBuilder> builder;
  RecoveryStats stats;
  const serve::ServeStatus status = DurableBuilder::Recover(
      MakeDurableOptions(dir, spec.snapshot_threshold, nullptr), &builder,
      &stats);
  ASSERT_TRUE(status.ok()) << status.message;
  // The torn slot is corrupt (or, if the torn prefix was empty, still
  // empty); either way recovery runs off manifest seq 1 and replays
  // the old WAL back to the acked epoch.
  EXPECT_EQ(stats.manifest_seq, 1u);
  EXPECT_EQ(stats.snapshot_epoch, 1);
  EXPECT_EQ(builder->epoch(), 3);
  EXPECT_EQ(stats.wal_records_replayed, 2);
  EXPECT_EQ(StateFingerprint(*builder->current()), oracle.expected.at(3));
  builder.reset();
  RemoveRecoveryDir(dir);
}

TEST(ManifestFailoverTest, AllSlotsCorruptIsTypedDataLossWithATrail) {
  TraceSpec spec;
  spec.steps = 2;
  spec.snapshot_threshold = 1 << 20;
  const TraceOracle oracle = BuildTraceOracle(spec);
  const std::string dir = MakeRecoveryDir("recovery_corrupt");
  int64_t last_completed = 0;
  RunCrashTrace(dir, oracle, spec.snapshot_threshold, nullptr,
                &last_completed);

  // Flip a byte inside the one committed slot (seq 1 lives in slot 1,
  // bytes [256, 512)); slot 0 was never written and is empty.
  const std::string manifest_path = dir + "/MANIFEST";
  std::string bytes, error;
  ASSERT_TRUE(ReadFileBytes(manifest_path, &bytes, &error)) << error;
  ASSERT_EQ(bytes.size(), 512u);
  bytes[300] = static_cast<char>(bytes[300] ^ 0x10);
  ASSERT_TRUE(RewriteFile(manifest_path, bytes));

  std::vector<ManifestRecord> records;
  ManifestReadStats mstats;
  const serve::ServeStatus read =
      ReadManifest(manifest_path, &records, &mstats);
  EXPECT_EQ(read.code, serve::ServeCode::kDataLoss) << read.message;
  EXPECT_EQ(mstats.slots_corrupt, 1);
  EXPECT_EQ(mstats.slots_empty, 1);
  EXPECT_NE(mstats.detail.find("slot 1"), std::string::npos) << mstats.detail;

  std::unique_ptr<DurableBuilder> builder;
  RecoveryStats stats;
  const serve::ServeStatus status = DurableBuilder::Recover(
      MakeDurableOptions(dir, spec.snapshot_threshold, nullptr), &builder,
      &stats);
  EXPECT_EQ(status.code, serve::ServeCode::kDataLoss);
  EXPECT_EQ(stats.manifest_slots_corrupt, 1);
  RemoveRecoveryDir(dir);
}

TEST(ManifestFailoverTest, EmptyDirectoryIsNotFoundNotDataLoss) {
  const std::string dir = MakeRecoveryDir("recovery_empty");
  std::unique_ptr<DurableBuilder> builder;
  RecoveryStats stats;
  const serve::ServeStatus status = DurableBuilder::Recover(
      MakeDurableOptions(dir, 4, nullptr), &builder, &stats);
  EXPECT_EQ(status.code, serve::ServeCode::kNotFound);
  RemoveRecoveryDir(dir);
}

// --- replay semantics for logged-then-rejected batches ---------------

TEST(ReplayTest, RejectedBatchesAreLoggedAndRereJectedIdentically) {
  const std::string dir = MakeRecoveryDir("recovery_reject");
  const AssignmentProblem problem = RecoveryProblem(7);
  serve::DatasetRegistry registry;
  serve::DatasetHandle base = registry.Open("trace", problem, {});
  std::unique_ptr<DurableBuilder> builder;
  ASSERT_TRUE(DurableBuilder::Bootstrap(
                  base, MakeDurableOptions(dir, 1 << 20, nullptr), &builder)
                  .ok());

  // An invalid batch: the WAL-first protocol logs it, then the apply
  // rejects it without advancing the epoch — live and at replay.
  update::UpdateBatch invalid;
  invalid.delete_objects.push_back(
      static_cast<ObjectId>(problem.objects.size()) + 100);
  const serve::ServeStatus rejected = builder->Apply(invalid);
  EXPECT_EQ(rejected.code, serve::ServeCode::kInvalidArgument);
  EXPECT_EQ(builder->epoch(), 1);

  update::UpdateBatch valid;
  valid.delete_objects.push_back(0);
  ASSERT_TRUE(builder->Apply(valid).ok());
  EXPECT_EQ(builder->epoch(), 2);
  const uint64_t want = StateFingerprint(*builder->current());
  builder.reset();

  std::unique_ptr<DurableBuilder> recovered;
  RecoveryStats stats;
  ASSERT_TRUE(DurableBuilder::Recover(
                  MakeDurableOptions(dir, 1 << 20, nullptr), &recovered,
                  &stats)
                  .ok());
  EXPECT_EQ(stats.wal_records_rejected, 1);
  EXPECT_EQ(stats.wal_records_replayed, 1);
  EXPECT_EQ(recovered->epoch(), 2);
  EXPECT_EQ(StateFingerprint(*recovered->current()), want);
  recovered.reset();
  RemoveRecoveryDir(dir);
}

// --- the batch codec round-trips exactly -----------------------------

TEST(BatchCodecTest, RoundTripsEveryFieldAndRejectsDamage) {
  Rng rng(42);
  const AssignmentProblem problem = RecoveryProblem(42);
  const update::UpdateBatch batch =
      fairmatch::testing::RecoveryBatch(&rng, problem, 2);
  std::string payload;
  EncodeBatch(batch, problem.dims, &payload);

  update::UpdateBatch decoded;
  int dims = 0;
  ASSERT_TRUE(DecodeBatch(payload, &decoded, &dims));
  EXPECT_EQ(dims, problem.dims);
  ASSERT_EQ(decoded.insert_objects.size(), batch.insert_objects.size());
  for (size_t i = 0; i < batch.insert_objects.size(); ++i) {
    for (int d = 0; d < problem.dims; ++d) {
      EXPECT_EQ(decoded.insert_objects[i].point[d],
                batch.insert_objects[i].point[d]);
    }
    EXPECT_EQ(decoded.insert_objects[i].capacity,
              batch.insert_objects[i].capacity);
  }
  EXPECT_EQ(decoded.delete_objects, batch.delete_objects);
  ASSERT_EQ(decoded.insert_functions.size(), batch.insert_functions.size());
  for (size_t i = 0; i < batch.insert_functions.size(); ++i) {
    for (int d = 0; d < problem.dims; ++d) {
      EXPECT_EQ(decoded.insert_functions[i].alpha[d],
                batch.insert_functions[i].alpha[d]);
    }
    EXPECT_EQ(decoded.insert_functions[i].gamma,
              batch.insert_functions[i].gamma);
  }
  EXPECT_EQ(decoded.delete_functions, batch.delete_functions);

  // Truncated and over-long payloads are rejected, not misparsed.
  EXPECT_FALSE(
      DecodeBatch(payload.substr(0, payload.size() - 1), &decoded, &dims));
  EXPECT_FALSE(DecodeBatch(payload + "x", &decoded, &dims));
}

// --- boot-from-manifest through the registry -------------------------

TEST(RecoverAndPublishTest, RegistryServesTheRecoveredEpoch) {
  TraceSpec spec;
  spec.seed = 5;
  spec.steps = 4;
  const TraceOracle oracle = BuildTraceOracle(spec);
  const std::string dir = MakeRecoveryDir("recovery_publish");
  int64_t last_completed = 0;
  RunCrashTrace(dir, oracle, spec.snapshot_threshold, nullptr,
                &last_completed);

  serve::DatasetRegistry registry;
  serve::DatasetHandle handle;
  RecoveryStats stats;
  std::unique_ptr<DurableBuilder> builder;
  const serve::ServeStatus status = RecoverAndPublish(
      MakeDurableOptions(dir, spec.snapshot_threshold, nullptr), &registry,
      &handle, &stats, &builder);
  ASSERT_TRUE(status.ok()) << status.message;
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(registry.recoveries(), 1);
  EXPECT_EQ(handle->epoch(), oracle.final_epoch);

  // What the registry serves IS the recovered epoch (same handle), and
  // its state matches the uncrashed run's.
  serve::DatasetHandle found = registry.Find("trace");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found.get(), handle.get());
  EXPECT_EQ(StateFingerprint(*found), oracle.expected.at(oracle.final_epoch));

  // The recovered builder keeps producing publishable epochs.
  ASSERT_TRUE(builder->Apply(oracle.batches[0]).ok());
  serve::DatasetHandle replaced;
  ASSERT_TRUE(
      registry.PublishOrError(builder->current(), &replaced).ok());
  EXPECT_EQ(replaced.get(), handle.get());
  builder.reset();
  RemoveRecoveryDir(dir);
}

}  // namespace
}  // namespace fairmatch::recover

// The fairmatch_bench driver: figure registry completeness, up-front
// validation (clean errors instead of abort()), and golden checks of
// the CSV/JSON report shapes a smoke-scale figure produces.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "driver/driver.h"
#include "driver/figure_registry.h"
#include "driver/report.h"

namespace fairmatch::bench {
namespace {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

/// Parses a non-negative decimal number (integer or fixed-point).
bool NonNegativeNumber(const std::string& field) {
  if (field.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  return end == field.c_str() + field.size() && value >= 0.0;
}

class BenchDriverTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(SetScale("smoke")); }

  std::vector<ReportRow> RunFigure(const std::string& name, int repeat,
                                   std::vector<ReportSink*> sinks) {
    std::string error;
    std::vector<FigurePlan> plan = PlanFigures({name}, &error);
    EXPECT_EQ(error, "");
    // A collector on top of the caller's sinks.
    class Collector : public ReportSink {
     public:
      void AddRow(const ReportRow& row) override { rows.push_back(row); }
      std::vector<ReportRow> rows;
    } collector;
    sinks.push_back(&collector);
    RunPlan(plan, repeat, sinks, nullptr);
    return collector.rows;
  }
};

TEST_F(BenchDriverTest, RegistryHasAllBuiltinFigures) {
  const std::vector<std::string> expected = {
      "ablation_sb",
      "batch_throughput",
      "fault_recovery",
      "fig08_optimizations",
      "fig09_dimensionality",
      "fig10_function_cardinality",
      "fig11_object_cardinality",
      "fig12_function_distribution",
      "fig13_buffer_size",
      "fig14_function_capacity",
      "fig14_object_capacity",
      "fig15_priority",
      "fig16_nba",
      "fig16_zillow",
      "fig17_disk_functions",
      "micro_bbs",
      "micro_buffer_pool",
      "micro_packed_probe",
      "micro_reverse_top1",
      "micro_simd_score",
      "recovery_time",
      "scale_sweep",
      "serving_latency",
      "update_throughput",
  };
  EXPECT_EQ(FigureRegistry::Global().Names(), expected);
  for (const std::string& name : expected) {
    const FigureSpec* spec = FigureRegistry::Global().Find(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_FALSE(spec->description.empty()) << name;
    ASSERT_NE(spec->sections, nullptr) << name;
  }
}

TEST_F(BenchDriverTest, PlanRejectsUnknownFigureWithListing) {
  std::string error;
  EXPECT_TRUE(PlanFigures({"fig99_nope"}, &error).empty());
  EXPECT_NE(error.find("unknown figure 'fig99_nope'"), std::string::npos)
      << error;
  EXPECT_NE(error.find("fig08_optimizations"), std::string::npos) << error;
}

TEST_F(BenchDriverTest, CheckRunnableReportsCleanDiagnostics) {
  BenchConfig config;
  EXPECT_EQ(CheckRunnable("SB", config), "");
  const std::string unknown = CheckRunnable("NoSuchMatcher", config);
  EXPECT_NE(unknown.find("unknown matcher"), std::string::npos);
  EXPECT_NE(unknown.find("SB"), std::string::npos);  // registry listing
  EXPECT_NE(CheckRunnable("SB-alt", config).find("disk-resident"),
            std::string::npos);
  EXPECT_NE(CheckRunnable("Naive", config).find("reference oracle"),
            std::string::npos);
}

TEST_F(BenchDriverTest, PlanExpandsEveryFigure) {
  std::string error;
  const std::vector<FigurePlan> plan = PlanFigures({"all"}, &error);
  ASSERT_EQ(error, "");
  EXPECT_EQ(plan.size(), FigureRegistry::Global().size());
  for (const FigurePlan& figure : plan) {
    EXPECT_FALSE(figure.sections.empty()) << figure.name;
    for (const FigureSection& section : figure.sections) {
      EXPECT_FALSE(section.cells.empty()) << figure.name;
      for (const FigureCell& cell : section.cells) {
        EXPECT_FALSE(cell.x.empty()) << figure.name;
        EXPECT_FALSE(cell.runs.empty()) << figure.name;
      }
    }
  }
}

TEST_F(BenchDriverTest, CsvGolden) {
  std::ostringstream csv;
  ReportMeta meta{ScaleName(), "testsha", 1};
  CsvSink sink(&csv, meta);
  RunFigure("fig08_optimizations", 1, {&sink});

  const std::vector<std::string> lines = SplitLines(csv.str());
  ASSERT_EQ(lines.size(),
            1u + 3 * 3);  // header + 3 dims x {SB, UpdateSkyline, DeltaSky}
  EXPECT_EQ(lines[0],
            "figure,section,x,algorithm,io_accesses,cpu_ms,cpu_ms_min,"
            "cpu_ms_stddev,mem_mb,pairs,loops,seed,scale,git_sha");
  EXPECT_EQ(lines[0], CsvHeader());

  const std::set<std::string> algos = {"SB", "SB-UpdateSkyline",
                                       "SB-DeltaSky"};
  const std::set<std::string> xs = {"3", "4", "5"};
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::vector<std::string> f = SplitFields(lines[i]);
    ASSERT_EQ(f.size(), 14u) << lines[i];
    EXPECT_EQ(f[0], "fig08_optimizations");
    EXPECT_EQ(f[1], "");  // single-section figure
    EXPECT_EQ(xs.count(f[2]), 1u) << f[2];
    EXPECT_EQ(algos.count(f[3]), 1u) << f[3];
    for (int n = 4; n <= 11; ++n) {
      EXPECT_TRUE(NonNegativeNumber(f[n])) << lines[i];
    }
    EXPECT_EQ(f[12], "smoke");
    EXPECT_EQ(f[13], "testsha");
  }
}

TEST_F(BenchDriverTest, JsonSchema) {
  std::ostringstream json;
  ReportMeta meta{ScaleName(), "testsha", 2};
  JsonSink sink(&json, meta);
  const std::vector<ReportRow> rows =
      RunFigure("fig08_optimizations", 1, {&sink});
  const std::string doc = json.str();

  EXPECT_NE(doc.find("\"schema\": \"fairmatch-bench/v1\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"scale\": \"smoke\""), std::string::npos);
  EXPECT_NE(doc.find("\"git_sha\": \"testsha\""), std::string::npos);
  EXPECT_NE(doc.find("\"repeat\": 2"), std::string::npos);
  EXPECT_NE(doc.find("\"figures\": {"), std::string::npos);
  EXPECT_NE(doc.find("\"fig08_optimizations\": ["), std::string::npos);
  for (const char* key :
       {"\"section\"", "\"x\"", "\"algorithm\"", "\"io_accesses\"",
        "\"cpu_ms\"", "\"cpu_ms_min\"", "\"cpu_ms_stddev\"", "\"mem_mb\"",
        "\"pairs\"", "\"loops\"", "\"seed\""}) {
    EXPECT_NE(doc.find(key), std::string::npos) << key;
  }
  // One row object per measurement (plus the document and "figures"
  // objects), balanced braces, no NaN/negatives.
  EXPECT_EQ(static_cast<size_t>(std::count(doc.begin(), doc.end(), '{')),
            2u + rows.size());
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
  EXPECT_EQ(doc.find("nan"), std::string::npos);
  EXPECT_EQ(doc.find(": -"), std::string::npos);
}

// The repeat-spread columns: cpu_ms_min is the fastest sample (never
// above the median), the stddev is non-negative, and with repeat=1
// both collapse (min == median, stddev == 0) so single-run reports
// stay self-consistent.
TEST_F(BenchDriverTest, RepeatRowsCarryMinAndStddev) {
  const std::vector<ReportRow> once = RunFigure("fig08_optimizations", 1, {});
  for (const ReportRow& row : once) {
    EXPECT_EQ(row.cpu_ms_min, row.cpu_ms) << row.algorithm;
    EXPECT_EQ(row.cpu_ms_stddev, 0.0) << row.algorithm;
  }
  const std::vector<ReportRow> thrice =
      RunFigure("fig08_optimizations", 3, {});
  for (const ReportRow& row : thrice) {
    EXPECT_LE(row.cpu_ms_min, row.cpu_ms) << row.algorithm;
    EXPECT_GE(row.cpu_ms_stddev, 0.0) << row.algorithm;
  }
}

TEST_F(BenchDriverTest, RowsCarryDeterministicFieldsAcrossRepeats) {
  const std::vector<ReportRow> once = RunFigure("fig08_optimizations", 1, {});
  const std::vector<ReportRow> thrice =
      RunFigure("fig08_optimizations", 3, {});
  ASSERT_EQ(once.size(), thrice.size());
  for (size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(once[i].figure, thrice[i].figure);
    EXPECT_EQ(once[i].x, thrice[i].x);
    EXPECT_EQ(once[i].algorithm, thrice[i].algorithm);
    // Everything but the clock is deterministic, so the median-of-3
    // must reproduce the single run exactly.
    EXPECT_EQ(once[i].io_accesses, thrice[i].io_accesses);
    EXPECT_EQ(once[i].pairs, thrice[i].pairs);
    EXPECT_EQ(once[i].loops, thrice[i].loops);
    EXPECT_EQ(once[i].seed, thrice[i].seed);
    EXPECT_GT(once[i].pairs, 0u);
  }
}

// The batch figure: one row per (lane count, algorithm), with the
// deterministic columns (io/pairs/loops — batch totals) identical at
// every lane count. This is the same cross-thread invariant
// tests/batch_test.cc proves at the engine layer, asserted here on the
// report surface CI gates on.
/// Restores the default batch-figure params on scope exit, so a failed
/// ASSERT inside a test cannot leak overrides into later tests.
struct BatchParamsGuard {
  ~BatchParamsGuard() { SetBatchBenchParams(BatchBenchParams{}); }
};

TEST_F(BenchDriverTest, BatchThroughputRowsAreThreadCountInvariant) {
  BatchParamsGuard guard;
  BatchBenchParams params;
  params.threads = {1, 2};
  params.batch_items = 4;
  SetBatchBenchParams(params);
  const std::vector<ReportRow> rows = RunFigure("batch_throughput", 1, {});

  const std::set<std::string> algos = {"SB", "BruteForce", "SB-alt"};
  ASSERT_EQ(rows.size(), params.threads.size() * algos.size());
  std::map<std::string, std::vector<ReportRow>> by_algo;
  for (const ReportRow& row : rows) {
    EXPECT_EQ(row.figure, "batch_throughput");
    EXPECT_TRUE(row.x == "1" || row.x == "2") << row.x;
    EXPECT_EQ(algos.count(row.algorithm), 1u) << row.algorithm;
    EXPECT_GT(row.pairs, 0u) << row.algorithm;
    by_algo[row.algorithm].push_back(row);
  }
  for (const auto& [algo, algo_rows] : by_algo) {
    ASSERT_EQ(algo_rows.size(), 2u) << algo;
    EXPECT_EQ(algo_rows[0].io_accesses, algo_rows[1].io_accesses) << algo;
    EXPECT_EQ(algo_rows[0].pairs, algo_rows[1].pairs) << algo;
    EXPECT_EQ(algo_rows[0].loops, algo_rows[1].loops) << algo;
  }
}

// End-to-end plumbing of the --threads/--batch flags: DriverOptions ->
// SetBatchBenchParams -> figure expansion -> CSV rows.
TEST_F(BenchDriverTest, BatchFlagsPlumbThroughRunDriver) {
  BatchParamsGuard guard;
  const std::string out_path =
      ::testing::TempDir() + "/fairmatch_batch_flags.csv";
  DriverOptions options;
  options.figures = {"batch_throughput"};
  options.scale = "smoke";
  options.format = "csv";
  options.out_path = out_path;
  options.batch_threads = {1, 3};
  options.batch_items = 4;
  ASSERT_EQ(RunDriver(options), 0);

  std::ifstream in(out_path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::vector<std::string> lines = SplitLines(buffer.str());
  ASSERT_EQ(lines.size(), 1u + 2 * 3);  // header + {1,3} x three algos
  EXPECT_EQ(lines[0], CsvHeader());
  std::set<std::string> xs;
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::vector<std::string> f = SplitFields(lines[i]);
    ASSERT_EQ(f.size(), 14u) << lines[i];
    EXPECT_EQ(f[0], "batch_throughput");
    xs.insert(f[2]);
    for (int n = 4; n <= 11; ++n) {
      EXPECT_TRUE(NonNegativeNumber(f[n])) << lines[i];
    }
  }
  EXPECT_EQ(xs, (std::set<std::string>{"1", "3"}));
  std::remove(out_path.c_str());
}

// The serving figure: deterministic columns (io/pairs and the matching
// digest in loops) must be identical across every lane count and every
// arrival rate — the same invariant tests/serve_test.cc proves at the
// engine layer, asserted here on the report surface CI gates on.
/// Restores the default serving-figure params on scope exit.
struct ServeParamsGuard {
  ~ServeParamsGuard() { SetServeBenchParams(ServeBenchParams{}); }
};

TEST_F(BenchDriverTest, ServingLatencyRowsAreLaneAndRateInvariant) {
  ServeParamsGuard guard;
  ServeBenchParams params;
  params.lanes = {1, 2};
  params.arrival_per_sec = {500, 2000};
  params.requests = 9;  // 3 per matcher in the mix
  SetServeBenchParams(params);
  const std::vector<ReportRow> rows = RunFigure("serving_latency", 1, {});

  std::map<std::string, std::vector<ReportRow>> by_algo;
  std::map<std::string, ReportRow> overload;
  std::set<std::string> sections;
  for (const ReportRow& row : rows) {
    EXPECT_EQ(row.figure, "serving_latency");
    sections.insert(row.section);
    if (row.section.rfind("rate", 0) == 0) by_algo[row.algorithm].push_back(row);
    if (row.section == "overload") overload.emplace(row.algorithm, row);
  }
  EXPECT_EQ(sections, (std::set<std::string>{"rate500", "rate2000", "open",
                                             "overload"}));
  const std::set<std::string> expected_algos = {
      "SB",     "SB:p99",        "SB-Packed", "SB-Packed:p99",
      "SB-alt", "SB-alt:p99",    "mix:throughput"};
  for (const auto& [algo, algo_rows] : by_algo) {
    EXPECT_EQ(expected_algos.count(algo), 1u) << algo;
    ASSERT_EQ(algo_rows.size(), 4u) << algo;  // 2 rates x 2 lane counts
    for (const ReportRow& row : algo_rows) {
      EXPECT_EQ(row.io_accesses, algo_rows[0].io_accesses) << algo;
      EXPECT_EQ(row.pairs, algo_rows[0].pairs) << algo;
      EXPECT_EQ(row.loops, algo_rows[0].loops) << algo;
    }
    if (algo != "mix:throughput") {
      EXPECT_GT(algo_rows[0].pairs, 0u) << algo;
      EXPECT_GT(algo_rows[0].loops, 0) << algo;  // the matching digest
    }
  }

  // The overload section's counts are forced by the admission limits
  // (1 lane held + queue bound 4 + 12-request burst): the outcomes
  // partition the submitted set and both rejection paths fire.
  for (const char* name : {"submitted", "ok", "rejected", "deadline"}) {
    ASSERT_EQ(overload.count(name), 1u) << name;
  }
  EXPECT_EQ(overload.at("ok").io_accesses +
                overload.at("rejected").io_accesses +
                overload.at("deadline").io_accesses,
            overload.at("submitted").io_accesses);
  EXPECT_GT(overload.at("rejected").io_accesses, 0);
  EXPECT_GT(overload.at("deadline").io_accesses, 0);
}

// End-to-end plumbing of the --serve-lanes/--arrival/--requests flags:
// DriverOptions -> SetServeBenchParams -> figure expansion -> CSV rows.
TEST_F(BenchDriverTest, ServeFlagsPlumbThroughRunDriver) {
  ServeParamsGuard guard;
  const std::string out_path =
      ::testing::TempDir() + "/fairmatch_serve_flags.csv";
  DriverOptions options;
  options.figures = {"serving_latency"};
  options.scale = "smoke";
  options.format = "csv";
  options.out_path = out_path;
  options.serve_lanes = {1, 3};
  options.arrival_per_sec = {1000};
  options.serve_requests = 6;
  ASSERT_EQ(RunDriver(options), 0);

  std::ifstream in(out_path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::vector<std::string> lines = SplitLines(buffer.str());
  // header + 2 lane cells x 7 rate rows + 2 open rows + 4 overload rows
  ASSERT_EQ(lines.size(), 1u + 2 * 7 + 2 + 4);
  EXPECT_EQ(lines[0], CsvHeader());
  std::set<std::string> rate_xs;
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::vector<std::string> f = SplitFields(lines[i]);
    ASSERT_EQ(f.size(), 14u) << lines[i];
    EXPECT_EQ(f[0], "serving_latency");
    if (f[1] == "rate1000") rate_xs.insert(f[2]);
    for (int n = 4; n <= 11; ++n) {
      EXPECT_TRUE(NonNegativeNumber(f[n])) << lines[i];
    }
  }
  EXPECT_EQ(rate_xs, (std::set<std::string>{"1", "3"}));
  std::remove(out_path.c_str());
}

TEST_F(BenchDriverTest, AblationRunsThroughCustomRunners) {
  const std::vector<ReportRow> rows = RunFigure("ablation_sb", 1, {});
  ASSERT_EQ(rows.size(), 10u);  // 5 omega + 3 probing + 2 multi-pair
  std::set<std::string> sections;
  for (const ReportRow& row : rows) {
    sections.insert(row.section);
    EXPECT_EQ(row.algorithm, "SB");
    EXPECT_GT(row.pairs, 0u);
  }
  EXPECT_EQ(sections,
            (std::set<std::string>{"omega", "probing", "multi-pair"}));
}

}  // namespace
}  // namespace fairmatch::bench

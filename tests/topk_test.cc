// Tests for BRS ranked search and the TA-based reverse top-1 search.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "fairmatch/common/rng.h"
#include "fairmatch/data/synthetic.h"
#include "fairmatch/rtree/node_store.h"
#include "fairmatch/rtree/rtree.h"
#include "fairmatch/topk/disk_function_lists.h"
#include "fairmatch/topk/function_lists.h"
#include "fairmatch/topk/ranked_search.h"
#include "fairmatch/topk/reverse_top1.h"
#include "test_util.h"

namespace fairmatch {
namespace {

using fairmatch::testing::GridFunctions;
using fairmatch::testing::GridPoints;

PrefFunction MakeFn(std::initializer_list<double> weights, double gamma = 1) {
  PrefFunction f;
  f.id = 0;
  f.dims = static_cast<int>(weights.size());
  int d = 0;
  for (double w : weights) f.alpha[d++] = w;
  f.gamma = gamma;
  return f;
}

std::vector<std::pair<double, ObjectId>> ReferenceRanking(
    const std::vector<Point>& points, const PrefFunction& f) {
  std::vector<std::pair<double, ObjectId>> ranked;
  for (size_t i = 0; i < points.size(); ++i) {
    ranked.emplace_back(f.Score(points[i]), static_cast<ObjectId>(i));
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  return ranked;
}

TEST(RankedSearchTest, EmitsFullDescendingOrder) {
  Rng rng(1);
  auto points = GeneratePoints(Distribution::kIndependent, 700, 3, &rng);
  MemNodeStore store(3);
  RTree tree(&store);
  std::vector<ObjectRecord> records;
  for (size_t i = 0; i < points.size(); ++i) {
    records.push_back({points[i], static_cast<ObjectId>(i)});
  }
  tree.BulkLoad(records);

  PrefFunction f = MakeFn({0.5, 0.2, 0.3});
  RankedSearch search(&tree, &f);
  auto expect = ReferenceRanking(points, f);
  for (const auto& [score, oid] : expect) {
    auto hit = search.Next();
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->id, oid);
    EXPECT_DOUBLE_EQ(hit->score, score);
  }
  EXPECT_FALSE(search.Next().has_value());
}

TEST(RankedSearchTest, TieBreakBySmallerIdOnGrid) {
  auto points = GridPoints(500, 2, 4, 7);  // many exact ties
  MemNodeStore store(2);
  RTree tree(&store);
  std::vector<ObjectRecord> records;
  for (size_t i = 0; i < points.size(); ++i) {
    records.push_back({points[i], static_cast<ObjectId>(i)});
  }
  tree.BulkLoad(records);
  PrefFunction f = MakeFn({0.25, 0.75});
  RankedSearch search(&tree, &f);
  auto expect = ReferenceRanking(points, f);
  for (const auto& [score, oid] : expect) {
    auto hit = search.Next();
    ASSERT_TRUE(hit.has_value());
    ASSERT_EQ(hit->id, oid) << "tie broken differently at score " << score;
  }
}

TEST(RankedSearchTest, AliveFilterSkipsDeadObjects) {
  Rng rng(2);
  auto points = GeneratePoints(Distribution::kAntiCorrelated, 300, 2, &rng);
  MemNodeStore store(2);
  RTree tree(&store);
  std::vector<ObjectRecord> records;
  for (size_t i = 0; i < points.size(); ++i) {
    records.push_back({points[i], static_cast<ObjectId>(i)});
  }
  tree.BulkLoad(records);
  PrefFunction f = MakeFn({0.6, 0.4});
  std::vector<uint8_t> alive(points.size(), 1);
  for (size_t i = 0; i < points.size(); i += 3) alive[i] = 0;

  RankedSearch search(&tree, &f);
  std::optional<double> last;
  int count = 0;
  while (auto hit = search.Next(&alive)) {
    EXPECT_TRUE(alive[hit->id]);
    if (last.has_value()) {
      EXPECT_LE(hit->score, *last);
    }
    last = hit->score;
    count++;
  }
  EXPECT_EQ(count, static_cast<int>(std::count(alive.begin(), alive.end(),
                                               uint8_t{1})));
}

TEST(RankedSearchTest, ResumeAfterTombstoning) {
  Rng rng(3);
  auto points = GeneratePoints(Distribution::kIndependent, 200, 2, &rng);
  MemNodeStore store(2);
  RTree tree(&store);
  std::vector<ObjectRecord> records;
  for (size_t i = 0; i < points.size(); ++i) {
    records.push_back({points[i], static_cast<ObjectId>(i)});
  }
  tree.BulkLoad(records);
  PrefFunction f = MakeFn({0.5, 0.5});
  std::vector<uint8_t> alive(points.size(), 1);

  RankedSearch search(&tree, &f);
  auto first = search.Next(&alive);
  ASSERT_TRUE(first.has_value());
  // Kill the next-best object, then resume: result skips it.
  auto expect = ReferenceRanking(points, f);
  alive[expect[1].second] = 0;
  auto second = search.Next(&alive);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->id, expect[2].second);
}

// ---------------------------------------------------------------------------
// Reverse top-1 (TA)
// ---------------------------------------------------------------------------

std::pair<FunctionId, double> ReferenceBestFn(
    const FunctionSet& fns, const Point& o,
    const std::vector<uint8_t>& assigned) {
  FunctionId best = kInvalidFunction;
  double best_s = 0.0;
  for (const PrefFunction& f : fns) {
    if (assigned[f.id]) continue;
    double s = f.Score(o);
    if (best == kInvalidFunction || s > best_s ||
        (s == best_s && f.id < best)) {
      best = f.id;
      best_s = s;
    }
  }
  return {best, best_s};
}

struct TaParam {
  double omega;
  bool biased;
  int max_gamma;
};

class ReverseTop1ParamTest : public ::testing::TestWithParam<TaParam> {};

TEST_P(ReverseTop1ParamTest, MatchesExhaustiveUnderAssignmentChurn) {
  TaParam param = GetParam();
  Rng rng(11);
  FunctionSet fns = GenerateFunctions(300, 4, &rng);
  if (param.max_gamma > 1) AssignPriorities(&fns, param.max_gamma, &rng);
  FunctionLists lists(&fns);
  ReverseTop1Options options;
  options.omega = param.omega;
  options.biased_probing = param.biased;
  ReverseTop1 rt1(&lists, options);

  auto points = GeneratePoints(Distribution::kIndependent, 40, 4, &rng);
  std::vector<uint8_t> assigned(fns.size(), 0);
  std::vector<ReverseTop1State> states(points.size());

  // Interleave queries with function assignments, exercising resume.
  for (int round = 0; round < 12; ++round) {
    for (size_t i = 0; i < points.size(); ++i) {
      auto expect = ReferenceBestFn(fns, points[i], assigned);
      auto got = rt1.Best(&states[i], points[i], assigned);
      if (expect.first == kInvalidFunction) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(got->first, expect.first) << "round " << round;
        EXPECT_DOUBLE_EQ(got->second, expect.second);
      }
    }
    // Assign ~8% of the remaining functions.
    for (size_t f = round; f < fns.size(); f += 13) assigned[f] = 1;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OmegaAndProbing, ReverseTop1ParamTest,
    ::testing::Values(TaParam{0.025, true, 1}, TaParam{0.025, false, 1},
                      TaParam{0.5, true, 1}, TaParam{0.004, true, 1},
                      TaParam{0.025, true, 4}, TaParam{0.1, false, 8}));

TEST(ReverseTop1Test, TieHeavyGridAgreesWithExhaustive) {
  FunctionSet fns = GridFunctions(150, 3, 4, 21);
  FunctionLists lists(&fns);
  ReverseTop1 rt1(&lists, ReverseTop1Options{});
  auto points = GridPoints(60, 3, 4, 22);
  std::vector<uint8_t> assigned(fns.size(), 0);
  std::vector<ReverseTop1State> states(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    auto expect = ReferenceBestFn(fns, points[i], assigned);
    auto got = rt1.Best(&states[i], points[i], assigned);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->first, expect.first);
  }
}

TEST(ReverseTop1Test, AllAssignedReturnsNothing) {
  Rng rng(31);
  FunctionSet fns = GenerateFunctions(20, 3, &rng);
  FunctionLists lists(&fns);
  ReverseTop1 rt1(&lists, ReverseTop1Options{});
  std::vector<uint8_t> assigned(fns.size(), 1);
  ReverseTop1State state;
  Point o(3, 0.5f);
  EXPECT_FALSE(rt1.Best(&state, o, assigned).has_value());
}

TEST(ReverseTop1Test, BiasedProbingProbesNoMoreThanRoundRobin) {
  Rng rng(41);
  FunctionSet fns = GenerateFunctions(2000, 4, &rng);
  FunctionLists lists(&fns);
  auto points = GeneratePoints(Distribution::kAntiCorrelated, 100, 4, &rng);
  std::vector<uint8_t> assigned(fns.size(), 0);

  int64_t probes_biased;
  int64_t probes_rr;
  {
    ReverseTop1Options options;
    options.biased_probing = true;
    ReverseTop1 rt1(&lists, options);
    for (const Point& p : points) {
      ReverseTop1State state;
      rt1.Best(&state, p, assigned);
    }
    probes_biased = rt1.probes();
  }
  {
    ReverseTop1Options options;
    options.biased_probing = false;
    ReverseTop1 rt1(&lists, options);
    for (const Point& p : points) {
      ReverseTop1State state;
      rt1.Best(&state, p, assigned);
    }
    probes_rr = rt1.probes();
  }
  EXPECT_LE(probes_biased, probes_rr);
}

TEST(FunctionListsTest, ListsSortedDescendingPerDimension) {
  Rng rng(51);
  FunctionSet fns = GenerateFunctions(500, 5, &rng);
  FunctionLists lists(&fns);
  for (int d = 0; d < 5; ++d) {
    double prev = 1e100;
    for (int pos = 0; pos < lists.size(); ++pos) {
      auto [coef, fid] = lists.Entry(d, pos);
      EXPECT_LE(coef, prev);
      EXPECT_DOUBLE_EQ(coef, fns[fid].eff(d));
      prev = coef;
    }
  }
  EXPECT_DOUBLE_EQ(lists.max_gamma(), 1.0);
}

// ---------------------------------------------------------------------------
// Disk-resident lists
// ---------------------------------------------------------------------------

TEST(DiskFunctionStoreTest, EntriesMatchInMemoryLists) {
  Rng rng(61);
  FunctionSet fns = GenerateFunctions(700, 4, &rng);
  FunctionLists mem_lists(&fns);
  DiskFunctionStore disk_lists(fns, /*buffer_fraction=*/0.5);
  for (int d = 0; d < 4; ++d) {
    for (int pos = 0; pos < 700; pos += 31) {
      auto a = mem_lists.Entry(d, pos);
      auto b = disk_lists.Entry(d, pos);
      EXPECT_EQ(a.second, b.second);
      EXPECT_DOUBLE_EQ(a.first, b.first);
    }
  }
}

TEST(DiskFunctionStoreTest, ScoreOfBitIdenticalToMemory) {
  Rng rng(62);
  FunctionSet fns = GenerateFunctions(300, 5, &rng);
  AssignPriorities(&fns, 4, &rng);
  DiskFunctionStore store(fns, 0.5);
  auto points = GeneratePoints(Distribution::kIndependent, 50, 5, &rng);
  for (const Point& p : points) {
    for (FunctionId fid = 0; fid < 300; fid += 17) {
      EXPECT_EQ(store.ScoreOf(fid, p), fns[fid].Score(p));
    }
  }
}

TEST(DiskFunctionStoreTest, CountsIo) {
  Rng rng(63);
  FunctionSet fns = GenerateFunctions(4000, 4, &rng);
  DiskFunctionStore store(fns, /*buffer_fraction=*/0.0);
  EXPECT_EQ(store.counters().io_accesses(), 0);
  Point p(4, 0.5f);
  store.ScoreOf(0, p);
  // One random access per list with no buffer.
  EXPECT_EQ(store.counters().page_reads, 4);
  store.ResetCounters();
  std::vector<ListRecord> page;
  store.ReadListPage(0, 0, &page);
  EXPECT_EQ(store.counters().page_reads, 1);
  EXPECT_EQ(static_cast<int>(page.size()), store.records_per_page());
}

TEST(DiskFunctionStoreTest, ReverseTop1OverDiskMatchesMemory) {
  Rng rng(64);
  FunctionSet fns = GenerateFunctions(400, 3, &rng);
  FunctionLists mem_lists(&fns);
  DiskFunctionStore disk_lists(fns, 0.3);
  ReverseTop1 mem_rt1(&mem_lists, ReverseTop1Options{});
  ReverseTop1 disk_rt1(&disk_lists, ReverseTop1Options{});
  auto points = GeneratePoints(Distribution::kAntiCorrelated, 60, 3, &rng);
  std::vector<uint8_t> assigned(fns.size(), 0);
  for (const Point& p : points) {
    ReverseTop1State s1, s2;
    auto a = mem_rt1.Best(&s1, p, assigned);
    auto b = disk_rt1.Best(&s2, p, assigned);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->first, b->first);
    EXPECT_DOUBLE_EQ(a->second, b->second);
  }
  EXPECT_GT(disk_lists.counters().io_accesses(), 0);
}

}  // namespace
}  // namespace fairmatch

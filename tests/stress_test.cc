// Randomized cross-algorithm stress sweeps: many seeds and shapes,
// exact agreement between every implementation and the by-definition
// oracle (small instances) or between the implementations themselves
// (moderate instances where the O(|F|*|O|*P) oracle is too slow).
#include <gtest/gtest.h>

#include "fairmatch/assign/brute_force.h"
#include "fairmatch/assign/chain.h"
#include "fairmatch/assign/naive_matcher.h"
#include "fairmatch/assign/sb.h"
#include "fairmatch/assign/sb_alt.h"
#include "fairmatch/assign/two_skyline.h"
#include "fairmatch/assign/verifier.h"
#include "fairmatch/topk/disk_function_lists.h"
#include "test_util.h"

namespace fairmatch {
namespace {

using fairmatch::testing::MemTree;
using fairmatch::testing::ProblemSpec;
using fairmatch::testing::RandomProblem;

class StressSmall : public ::testing::TestWithParam<int> {};

TEST_P(StressSmall, EveryAlgorithmMatchesOracle) {
  const int seed = GetParam();
  Rng shape_rng(seed * 7919 + 13);
  ProblemSpec spec;
  spec.num_functions = 5 + static_cast<int>(shape_rng.UniformInt(0, 45));
  spec.num_objects = 5 + static_cast<int>(shape_rng.UniformInt(0, 120));
  spec.dims = 2 + static_cast<int>(shape_rng.UniformInt(0, 3));
  spec.distribution = static_cast<Distribution>(shape_rng.UniformInt(0, 2));
  spec.seed = static_cast<uint64_t>(seed) * 104729;
  spec.function_capacity = 1 + static_cast<int>(shape_rng.UniformInt(0, 2));
  spec.object_capacity = 1 + static_cast<int>(shape_rng.UniformInt(0, 2));
  spec.max_gamma = 1 + static_cast<int>(shape_rng.UniformInt(0, 3));
  AssignmentProblem problem = RandomProblem(spec);
  Matching want = NaiveStableMatching(problem);

  {
    MemTree mem(problem);
    SBAssignment sb(&problem, &mem.tree, SBOptions{});
    EXPECT_TRUE(SameMatching(sb.Run().matching, want)) << "SB seed " << seed;
  }
  {
    MemTree mem(problem);
    EXPECT_TRUE(
        SameMatching(BruteForceAssignment(problem, mem.tree).matching, want))
        << "BF seed " << seed;
  }
  {
    MemTree mem(problem);
    EXPECT_TRUE(SameMatching(ChainAssignment(problem, &mem.tree).matching,
                             want))
        << "Chain seed " << seed;
  }
  {
    MemTree mem(problem);
    EXPECT_TRUE(
        SameMatching(TwoSkylineAssignment(problem, mem.tree).matching, want))
        << "TwoSkyline seed " << seed;
  }
  {
    MemTree mem(problem);
    DiskFunctionStore store(problem.functions, 0.02);
    EXPECT_TRUE(SameMatching(
        SBAltAssignment(problem, mem.tree, &store).matching, want))
        << "SB-alt seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSmall, ::testing::Range(0, 24));

class StressModerate : public ::testing::TestWithParam<int> {};

TEST_P(StressModerate, ImplementationsAgreePairwise) {
  const int seed = GetParam();
  ProblemSpec spec;
  spec.num_functions = 400;
  spec.num_objects = 4000;
  spec.dims = 3 + seed % 3;
  spec.distribution = static_cast<Distribution>(seed % 3);
  spec.seed = 31337u + static_cast<uint64_t>(seed);
  AssignmentProblem problem = RandomProblem(spec);

  Matching sb_matching;
  {
    MemTree mem(problem);
    SBAssignment sb(&problem, &mem.tree, SBOptions{});
    sb_matching = sb.Run().matching;
  }
  EXPECT_EQ(sb_matching.size(), 400u);
  auto verdict = VerifyStableMatching(problem, sb_matching);
  EXPECT_TRUE(verdict.ok) << verdict.message;
  {
    MemTree mem(problem);
    EXPECT_TRUE(SameMatching(
        BruteForceAssignment(problem, mem.tree).matching, sb_matching))
        << "BF vs SB seed " << seed;
  }
  {
    MemTree mem(problem);
    EXPECT_TRUE(SameMatching(ChainAssignment(problem, &mem.tree).matching,
                             sb_matching))
        << "Chain vs SB seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressModerate, ::testing::Range(0, 6));

// The Omega/biased/resume knobs must never change the matching, only
// cost — swept jointly over several shapes.
class StressOptions
    : public ::testing::TestWithParam<std::tuple<double, bool, bool>> {};

TEST_P(StressOptions, KnobsPreserveTheMatching) {
  auto [omega, biased, resume] = GetParam();
  ProblemSpec spec;
  spec.num_functions = 120;
  spec.num_objects = 900;
  spec.dims = 4;
  spec.distribution = Distribution::kAntiCorrelated;
  spec.seed = 55555;
  AssignmentProblem problem = RandomProblem(spec);
  Matching want;
  {
    MemTree mem(problem);
    SBAssignment sb(&problem, &mem.tree, SBOptions{});
    want = sb.Run().matching;
  }
  SBOptions options;
  options.ta.omega = omega;
  options.ta.biased_probing = biased;
  options.ta.resume = resume;
  MemTree mem(problem);
  SBAssignment sb(&problem, &mem.tree, options);
  EXPECT_TRUE(SameMatching(sb.Run().matching, want));
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, StressOptions,
    ::testing::Combine(::testing::Values(0.002, 0.025, 0.2),
                       ::testing::Bool(), ::testing::Bool()));

}  // namespace
}  // namespace fairmatch

// Unit and property tests for points and MBRs.
#include <gtest/gtest.h>

#include "fairmatch/common/rng.h"
#include "fairmatch/geom/mbr.h"
#include "fairmatch/geom/point.h"

namespace fairmatch {
namespace {

Point P2(float x, float y) {
  Point p(2);
  p[0] = x;
  p[1] = y;
  return p;
}

TEST(PointTest, DominanceBasics) {
  EXPECT_TRUE(P2(0.5f, 0.6f).Dominates(P2(0.4f, 0.4f)));
  EXPECT_TRUE(P2(0.5f, 0.4f).Dominates(P2(0.4f, 0.4f)));
  EXPECT_FALSE(P2(0.5f, 0.3f).Dominates(P2(0.4f, 0.4f)));
  // Coincident points do not dominate each other (paper definition).
  EXPECT_FALSE(P2(0.4f, 0.4f).Dominates(P2(0.4f, 0.4f)));
  EXPECT_TRUE(P2(0.4f, 0.4f).DominatesOrEqual(P2(0.4f, 0.4f)));
}

TEST(PointTest, DominanceIsIrreflexiveAndAntisymmetric) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    Point a(4), b(4);
    for (int d = 0; d < 4; ++d) {
      a[d] = static_cast<float>(rng.Uniform());
      b[d] = static_cast<float>(rng.Uniform());
    }
    EXPECT_FALSE(a.Dominates(a));
    EXPECT_FALSE(a.Dominates(b) && b.Dominates(a));
  }
}

TEST(PointTest, DominanceIsTransitive) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    Point a(3), b(3), c(3);
    for (int d = 0; d < 3; ++d) {
      a[d] = static_cast<float>(rng.UniformInt(0, 4)) / 4.0f;
      b[d] = static_cast<float>(rng.UniformInt(0, 4)) / 4.0f;
      c[d] = static_cast<float>(rng.UniformInt(0, 4)) / 4.0f;
    }
    if (a.Dominates(b) && b.Dominates(c)) {
      EXPECT_TRUE(a.Dominates(c));
    }
  }
}

TEST(PointTest, DominanceImpliesLargerSum) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    Point a(5), b(5);
    for (int d = 0; d < 5; ++d) {
      a[d] = static_cast<float>(rng.UniformInt(0, 8)) / 8.0f;
      b[d] = static_cast<float>(rng.UniformInt(0, 8)) / 8.0f;
    }
    if (a.Dominates(b)) {
      EXPECT_GT(a.Sum(), b.Sum());
    }
  }
}

TEST(PointTest, ScoreMonotoneUnderDominance) {
  Rng rng(4);
  double w[3] = {0.2, 0.5, 0.3};
  for (int i = 0; i < 1000; ++i) {
    Point a(3), b(3);
    for (int d = 0; d < 3; ++d) {
      a[d] = static_cast<float>(rng.Uniform());
      b[d] = static_cast<float>(rng.Uniform());
    }
    if (a.DominatesOrEqual(b)) {
      EXPECT_GE(a.Score(w), b.Score(w));
    }
  }
}

TEST(MBRTest, ExpandAndContains) {
  MBR box = MBR::Empty(2);
  EXPECT_TRUE(box.is_empty());
  box.Expand(P2(0.2f, 0.8f));
  box.Expand(P2(0.6f, 0.3f));
  EXPECT_FALSE(box.is_empty());
  EXPECT_TRUE(box.Contains(P2(0.4f, 0.5f)));
  EXPECT_FALSE(box.Contains(P2(0.1f, 0.5f)));
  EXPECT_FLOAT_EQ(box.lo()[0], 0.2f);
  EXPECT_FLOAT_EQ(box.hi()[1], 0.8f);
}

TEST(MBRTest, AreaMarginEnlargement) {
  MBR box(P2(0.0f, 0.0f), P2(0.5f, 0.2f));
  EXPECT_NEAR(box.Area(), 0.5 * 0.2, 1e-6);
  EXPECT_NEAR(box.Margin(), 0.7, 1e-6);
  EXPECT_NEAR(box.Enlargement(P2(1.0f, 0.2f)), 1.0 * 0.2 - 0.1, 1e-6);
  EXPECT_DOUBLE_EQ(box.Enlargement(P2(0.3f, 0.1f)), 0.0);
}

TEST(MBRTest, EnlargementOfMBR) {
  MBR a(P2(0.0f, 0.0f), P2(0.4f, 0.4f));
  MBR b(P2(0.6f, 0.6f), P2(1.0f, 1.0f));
  EXPECT_NEAR(a.Enlargement(b), 1.0 - 0.16, 1e-6);
  EXPECT_DOUBLE_EQ(a.Enlargement(a), 0.0);
}

TEST(MBRTest, Intersects) {
  MBR a(P2(0.0f, 0.0f), P2(0.5f, 0.5f));
  MBR b(P2(0.4f, 0.4f), P2(0.9f, 0.9f));
  MBR c(P2(0.6f, 0.6f), P2(0.9f, 0.9f));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  // Touching boxes intersect.
  MBR d(P2(0.5f, 0.0f), P2(0.9f, 0.5f));
  EXPECT_TRUE(a.Intersects(d));
}

TEST(MBRTest, BestSumBoundsContainedPoints) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    Point lo(3), hi(3);
    for (int d = 0; d < 3; ++d) {
      float a = static_cast<float>(rng.Uniform());
      float b = static_cast<float>(rng.Uniform());
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    MBR box(lo, hi);
    Point inside(3);
    for (int d = 0; d < 3; ++d) {
      inside[d] = lo[d] + (hi[d] - lo[d]) *
                              static_cast<float>(rng.Uniform());
    }
    EXPECT_GE(box.BestSum(), inside.Sum() - 1e-6);
  }
}

TEST(MBRTest, MaxScoreBoundsContainedPoints) {
  Rng rng(6);
  double w[3] = {0.1, 0.6, 0.3};
  for (int i = 0; i < 500; ++i) {
    Point lo(3), hi(3);
    for (int d = 0; d < 3; ++d) {
      float a = static_cast<float>(rng.Uniform());
      float b = static_cast<float>(rng.Uniform());
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    MBR box(lo, hi);
    Point inside(3);
    for (int d = 0; d < 3; ++d) {
      inside[d] =
          lo[d] + (hi[d] - lo[d]) * static_cast<float>(rng.Uniform());
    }
    EXPECT_GE(box.MaxScore(w), inside.Score(w) - 1e-9);
  }
}

TEST(MBRTest, DominanceRegionIntersection) {
  MBR box(P2(0.3f, 0.3f), P2(0.7f, 0.7f));
  // p above box's lower corner in all dims: intersects dom region.
  EXPECT_TRUE(box.IntersectsDominanceRegionOf(P2(0.4f, 0.4f)));
  EXPECT_TRUE(box.IntersectsDominanceRegionOf(P2(1.0f, 1.0f)));
  EXPECT_TRUE(box.IntersectsDominanceRegionOf(P2(0.3f, 0.3f)));
  // p strictly below the lower corner in one dim: disjoint.
  EXPECT_FALSE(box.IntersectsDominanceRegionOf(P2(0.2f, 0.9f)));
}

TEST(MBRTest, DegeneratePointBox) {
  Point p = P2(0.4f, 0.7f);
  MBR box(p);
  EXPECT_TRUE(box.Contains(p));
  EXPECT_DOUBLE_EQ(box.Area(), 0.0);
  EXPECT_EQ(box.best_corner(), p);
  EXPECT_DOUBLE_EQ(box.BestSum(), p.Sum());
}

}  // namespace
}  // namespace fairmatch

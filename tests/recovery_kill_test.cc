// Subprocess crash sweep (ctest label: killsweep — deliberately NOT
// matching the `recovery` label regex: CI runs this fork+SIGKILL sweep
// as a separate non-sanitizer step with a hard timeout).
//
// Same contract as tests/recovery_test.cc's in-process sweep, with
// nothing simulated about the death: a forked child runs the seeded
// update trace with a kKill crash schedule, the injector writes the
// scheduled torn prefix and then raises SIGKILL against the child's
// own pid — no unwinding, no destructors, no atexit — and the parent
// recovers from whatever bytes actually landed in the log directory.
// The child reports acknowledged progress through a side file written
// after every Apply() returns, so the parent can assert the recovered
// epoch is in {acked, acked + 1} and byte-identical to the uncrashed
// oracle.
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "fairmatch/recover/durable_builder.h"
#include "fairmatch/serve/dataset_registry.h"
#include "fairmatch/storage/fault_injector.h"
#include "recovery_trace.h"
#include "test_util.h"

namespace fairmatch::recover {
namespace {

using fairmatch::testing::BuildTraceOracle;
using fairmatch::testing::MakeDurableOptions;
using fairmatch::testing::MakeRecoveryDir;
using fairmatch::testing::RemoveRecoveryDir;
using fairmatch::testing::RunCrashTrace;
using fairmatch::testing::StateFingerprint;
using fairmatch::testing::TraceOracle;
using fairmatch::testing::TraceSpec;

/// Child exit code meaning "the whole trace ran, the schedule never
/// fired" — the parent uses it to detect the end of the boundary range.
constexpr int kNoCrashExit = 42;

/// Plain (non-durable) progress file: the newest epoch the child was
/// acknowledged. Written after every Apply() RETURN, so a kill mid-call
/// leaves the previous value — exactly the in-process sweep's
/// last_completed semantics.
std::string AckPath(const std::string& dir) { return dir + "/ACKED"; }

void WriteAck(const std::string& dir, int64_t epoch) {
  std::FILE* f = std::fopen(AckPath(dir).c_str(), "wb");
  if (f == nullptr) return;
  std::fprintf(f, "%lld", static_cast<long long>(epoch));
  std::fclose(f);
}

int64_t ReadAck(const std::string& dir) {
  std::FILE* f = std::fopen(AckPath(dir).c_str(), "rb");
  if (f == nullptr) return 0;
  long long epoch = 0;
  if (std::fscanf(f, "%lld", &epoch) != 1) epoch = 0;
  std::fclose(f);
  return epoch;
}

/// The child body: run the trace under a kKill schedule. Never returns
/// normally under a live schedule — the injector SIGKILLs the process
/// mid-durable-write.
[[noreturn]] void ChildRun(const std::string& dir, const TraceOracle& oracle,
                           int snapshot_threshold, int64_t boundary,
                           uint64_t seed) {
  FaultInjectorOptions plan;
  plan.seed = seed;
  plan.crash_after_durable = boundary;
  plan.crash_mode = CrashMode::kKill;
  FaultInjector injector(plan);

  serve::DatasetRegistry registry;
  serve::DatasetHandle base = registry.Open("trace", oracle.problem, {});
  std::unique_ptr<DurableBuilder> builder;
  const serve::ServeStatus boot = DurableBuilder::Bootstrap(
      base, MakeDurableOptions(dir, snapshot_threshold, &injector), &builder);
  if (!boot.ok()) _exit(3);
  WriteAck(dir, builder->epoch());
  for (const update::UpdateBatch& batch : oracle.batches) {
    builder->Apply(batch);
    WriteAck(dir, builder->epoch());
  }
  _exit(kNoCrashExit);
}

TEST(KillSweepTest, SigkillAtEveryDurableBoundaryRecoversByteIdentical) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    TraceSpec spec;
    spec.seed = seed;
    const TraceOracle oracle = BuildTraceOracle(spec);
    ASSERT_GT(oracle.total_durable_ops, 0);

    bool exhausted = false;
    for (int64_t boundary = 0; !exhausted; ++boundary) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " boundary " +
                   std::to_string(boundary));
      const std::string dir = MakeRecoveryDir("killsweep");
      const pid_t pid = fork();
      ASSERT_GE(pid, 0) << "fork failed";
      if (pid == 0) {
        ChildRun(dir, oracle, spec.snapshot_threshold, boundary,
                 seed * 1000 + static_cast<uint64_t>(boundary));
      }
      int wstatus = 0;
      ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);

      if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == kNoCrashExit) {
        // The schedule never fired: we stepped past the last boundary.
        EXPECT_EQ(boundary, oracle.total_durable_ops);
        exhausted = true;
        RemoveRecoveryDir(dir);
        continue;
      }
      ASSERT_TRUE(WIFSIGNALED(wstatus))
          << "child neither crashed nor finished (status " << wstatus << ")";
      ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

      const int64_t acked = ReadAck(dir);
      std::unique_ptr<DurableBuilder> builder;
      RecoveryStats stats;
      const serve::ServeStatus status = DurableBuilder::Recover(
          MakeDurableOptions(dir, spec.snapshot_threshold, nullptr), &builder,
          &stats);
      if (acked == 0) {
        // Killed inside Bootstrap: nothing acknowledged; an empty or
        // typed-unrecoverable directory is legal, a recovered one must
        // be the bootstrap epoch.
        if (status.ok()) {
          ASSERT_EQ(builder->epoch(), 1);
          EXPECT_EQ(StateFingerprint(*builder->current()),
                    oracle.expected.at(1));
        } else {
          EXPECT_TRUE(status.code == serve::ServeCode::kNotFound ||
                      status.code == serve::ServeCode::kDataLoss)
              << status.message;
        }
        RemoveRecoveryDir(dir);
        continue;
      }

      ASSERT_TRUE(status.ok()) << status.message;
      const int64_t recovered = builder->epoch();
      EXPECT_TRUE(recovered == acked || recovered == acked + 1)
          << "recovered epoch " << recovered << " after acking " << acked;
      ASSERT_TRUE(oracle.expected.count(recovered));
      EXPECT_EQ(StateFingerprint(*builder->current()),
                oracle.expected.at(recovered))
          << "recovered epoch " << recovered
          << " diverged from the uncrashed run";
      builder.reset();
      RemoveRecoveryDir(dir);
    }
  }
}

}  // namespace
}  // namespace fairmatch::recover

#else  // !POSIX

TEST(KillSweepTest, SkippedWithoutPosixProcessControl) {
  GTEST_SKIP() << "fork/SIGKILL sweep needs POSIX process control";
}

#endif

#!/usr/bin/env python3
"""CI regression gate: diff two fairmatch_bench JSON reports.

Usage: bench_regression_gate.py PREVIOUS.json CURRENT.json

Exits 0 with a note when the previous report is missing (first run on a
branch, expired artifact) or was produced at a different scale.
Otherwise fails (exit 1) when, for any (figure, section, x, algorithm)
row present in both reports:

  * a deterministic metric drifted (io_accesses, pairs or loops must be
    bit-identical run to run), or
  * median cpu_ms regressed by more than REGRESSION_FACTOR (default
    1.30, i.e. >30%) on rows large enough to measure (>= MIN_CPU_MS),

or when a row present in the previous report disappeared (a figure or
matcher silently dropped out). New rows are allowed — they have no
baseline yet.
"""
import json
import os
import sys

REGRESSION_FACTOR = float(os.environ.get("BENCH_REGRESSION_FACTOR", "1.30"))
MIN_CPU_MS = float(os.environ.get("BENCH_REGRESSION_MIN_CPU_MS", "5.0"))
DETERMINISTIC_FIELDS = ("io_accesses", "pairs", "loops")


def note(message):
    print(f"bench_regression_gate: {message}")


def load_rows(path):
    with open(path) as f:
        report = json.load(f)
    if report.get("schema") != "fairmatch-bench/v1":
        raise ValueError(f"unexpected schema {report.get('schema')!r}")
    rows = {}
    for figure, figure_rows in report.get("figures", {}).items():
        for row in figure_rows:
            key = (figure, row["section"], row["x"], row["algorithm"])
            rows[key] = row
    return report, rows


def main():
    if len(sys.argv) != 3:
        note(f"usage: {sys.argv[0]} PREVIOUS.json CURRENT.json")
        return 1
    prev_path, cur_path = sys.argv[1], sys.argv[2]

    if not os.path.exists(prev_path):
        note(f"no previous report at {prev_path}; skipping (first run?)")
        return 0
    try:
        prev_report, prev_rows = load_rows(prev_path)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        note(f"cannot parse previous report ({e}); skipping")
        return 0
    cur_report, cur_rows = load_rows(cur_path)

    if prev_report.get("scale") != cur_report.get("scale"):
        note(
            f"scale changed ({prev_report.get('scale')} -> "
            f"{cur_report.get('scale')}); skipping"
        )
        return 0

    failures = []
    slowdowns = []
    for key, prev in sorted(prev_rows.items()):
        cur = cur_rows.get(key)
        label = "/".join(k for k in key if k)
        if cur is None:
            failures.append(f"row disappeared: {label}")
            continue
        for field in DETERMINISTIC_FIELDS:
            if prev[field] != cur[field]:
                failures.append(
                    f"deterministic drift: {label} {field} "
                    f"{prev[field]} -> {cur[field]}"
                )
        if prev["cpu_ms"] >= MIN_CPU_MS and cur["cpu_ms"] > prev[
            "cpu_ms"
        ] * REGRESSION_FACTOR:
            slowdowns.append(
                f"cpu regression: {label} {prev['cpu_ms']:.1f}ms -> "
                f"{cur['cpu_ms']:.1f}ms "
                f"(x{cur['cpu_ms'] / prev['cpu_ms']:.2f})"
            )

    for line in failures + slowdowns:
        note(f"FAIL: {line}")
    if failures or slowdowns:
        note(
            f"{len(failures)} drift / {len(slowdowns)} cpu failures against "
            f"{prev_report.get('git_sha')}"
        )
        return 1
    note(
        f"OK — {len(prev_rows)} baseline rows match "
        f"(baseline git_sha={prev_report.get('git_sha')}, "
        f"cpu threshold x{REGRESSION_FACTOR}, floor {MIN_CPU_MS}ms)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

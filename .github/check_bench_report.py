#!/usr/bin/env python3
"""CI gate over the fairmatch_bench JSON report.

Usage: check_bench_report.py BENCH_smoke.json path/to/fairmatch_bench

Fails (exit 1) when the report is malformed, any registered figure is
missing or empty, or any row lacks the schema's fields / carries a
negative or non-numeric measurement — i.e. whenever a figure or matcher
silently dropped out of the sweep.
"""
import json
import subprocess
import sys

NUMERIC_FIELDS = (
    "io_accesses",
    "cpu_ms",
    "cpu_ms_min",
    "cpu_ms_stddev",
    "mem_mb",
    "pairs",
    "loops",
    "seed",
)
STRING_FIELDS = ("section", "x", "algorithm")


def fail(message):
    print(f"check_bench_report: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_batch_figure(batch_rows):
    """batch_throughput carries the batch layer's determinism guarantee
    onto the report surface: the same batch runs at every lane count
    (the x axis), so each algorithm's deterministic totals (io_accesses,
    pairs, loops) must be identical across its rows, and the sweep must
    actually cover more than one lane count."""
    by_algo = {}
    for row in batch_rows:
        by_algo.setdefault(row["algorithm"], []).append(row)
    for algo, rows in by_algo.items():
        if len(rows) < 2:
            fail(
                f"batch_throughput: {algo!r} has {len(rows)} row(s); "
                "expected a sweep over >= 2 lane counts"
            )
        baseline = rows[0]
        for row in rows[1:]:
            for field in ("io_accesses", "pairs", "loops"):
                if row[field] != baseline[field]:
                    fail(
                        f"batch_throughput: {algo!r} {field} differs across "
                        f"lane counts ({baseline[field]} at x={baseline['x']} "
                        f"vs {row[field]} at x={row['x']}): the batch layer "
                        "is not thread-count deterministic"
                    )


def check_micro_packed_probe(rows):
    """The packed store is a drop-in FunctionLists: at every x the
    'lists' and 'packed' rows must agree on every deterministic column
    (identical probe sequence), and 'packed-impact' must drain the same
    assignments (pairs) even though its block-granular probe count
    differs."""
    by_x = {}
    for row in rows:
        by_x.setdefault(row["x"], {})[row["algorithm"]] = row
    for x, algos in by_x.items():
        for name in ("lists", "packed", "packed-impact"):
            if name not in algos:
                fail(f"micro_packed_probe: missing {name!r} row at x={x}")
        for field in ("io_accesses", "pairs", "loops"):
            if algos["lists"][field] != algos["packed"][field]:
                fail(
                    f"micro_packed_probe: {field} differs between lists "
                    f"({algos['lists'][field]}) and packed "
                    f"({algos['packed'][field]}) at x={x}: the packed "
                    "default traversal diverged from FunctionLists"
                )
        if algos["packed-impact"]["pairs"] != algos["lists"]["pairs"]:
            fail(
                f"micro_packed_probe: packed-impact drained "
                f"{algos['packed-impact']['pairs']} pairs vs "
                f"{algos['lists']['pairs']} at x={x}: the impact-ordered "
                "traversal lost or invented assignments"
            )


def check_scale_sweep(rows):
    """Every backend performs the same full drain at each x, so pairs
    must be identical across the per-x rows, and the sweep must cover
    more than one size."""
    by_x = {}
    for row in rows:
        by_x.setdefault(row["x"], []).append(row)
    if len(by_x) < 2:
        fail(
            f"scale_sweep: {len(by_x)} x value(s); expected a sweep over "
            ">= 2 sizes"
        )
    for x, x_rows in by_x.items():
        if len(x_rows) < 3:
            fail(f"scale_sweep: {len(x_rows)} row(s) at x={x}; expected 3")
        baseline = x_rows[0]
        for row in x_rows[1:]:
            if row["pairs"] != baseline["pairs"]:
                fail(
                    f"scale_sweep: pairs differs at x={x} "
                    f"({baseline['algorithm']}={baseline['pairs']} vs "
                    f"{row['algorithm']}={row['pairs']}): the backends did "
                    "not perform the same drain"
                )


def check_serving_latency(rows):
    """serving_latency carries the serving core's determinism guarantee
    onto the report surface: every cell submits the same fixed request
    sequence, so each algorithm's deterministic columns (io_accesses,
    pairs, and the matching digest in loops) must be identical across
    every lane count AND every arrival rate — only the latency columns
    may move. The sweep must actually cover more than one lane count
    and more than one rate, and the 'open' section must report both the
    cold and warm open cost."""
    rate_rows = [r for r in rows if r["section"].startswith("rate")]
    open_rows = [r for r in rows if r["section"] == "open"]

    sections = {r["section"] for r in rate_rows}
    lanes = {r["x"] for r in rate_rows}
    if len(sections) < 2:
        fail(
            f"serving_latency: {len(sections)} arrival-rate section(s); "
            "expected a sweep over >= 2 rates"
        )
    if len(lanes) < 2:
        fail(
            f"serving_latency: {len(lanes)} lane count(s); expected a "
            "sweep over >= 2 lane counts"
        )

    expected_algos = {
        "SB", "SB:p99", "SB-Packed", "SB-Packed:p99",
        "SB-alt", "SB-alt:p99", "mix:throughput",
    }
    by_cell = {}
    for row in rate_rows:
        by_cell.setdefault((row["section"], row["x"]), set()).add(
            row["algorithm"]
        )
    for cell, algos in by_cell.items():
        missing = expected_algos - algos
        if missing:
            fail(
                f"serving_latency: cell {cell} is missing rows "
                f"{sorted(missing)}"
            )

    by_algo = {}
    for row in rate_rows:
        by_algo.setdefault(row["algorithm"], []).append(row)
    for algo, algo_rows in by_algo.items():
        baseline = algo_rows[0]
        for row in algo_rows[1:]:
            for field in ("io_accesses", "pairs", "loops"):
                if row[field] != baseline[field]:
                    fail(
                        f"serving_latency: {algo!r} {field} differs across "
                        f"cells ({baseline[field]} at "
                        f"{baseline['section']}/x={baseline['x']} vs "
                        f"{row[field]} at {row['section']}/x={row['x']}): "
                        "the serving core is not lane/arrival-rate "
                        "deterministic"
                    )
        if algo != "mix:throughput" and baseline["loops"] == 0:
            fail(
                f"serving_latency: {algo!r} carries an empty matching "
                "digest (loops=0): the responses were empty"
            )

    # The p50 and p99 rows of one matcher come from the same responses.
    for algo in ("SB", "SB-Packed", "SB-alt"):
        base, p99 = by_algo[algo][0], by_algo[f"{algo}:p99"][0]
        for field in ("io_accesses", "pairs", "loops"):
            if base[field] != p99[field]:
                fail(
                    f"serving_latency: {algo!r} and {algo}:p99 disagree on "
                    f"{field} ({base[field]} vs {p99[field]}): the rows do "
                    "not describe the same request set"
                )

    opens = {r["x"] for r in open_rows}
    if opens != {"cold", "warm"}:
        fail(
            f"serving_latency: open section covers {sorted(opens)}; "
            "expected exactly ['cold', 'warm']"
        )
    cold = next(r for r in open_rows if r["x"] == "cold")
    if cold["mem_mb"] <= 0:
        fail(
            "serving_latency: cold open reports a zero resident "
            "footprint; the dataset was not built"
        )

    # The overload section's counts are forced by the server's admission
    # limits (1 lane held + queue bound 4 + 12-request burst), so they
    # are exact: the outcomes must partition the submitted set, and both
    # rejection paths must actually fire.
    overload = {
        r["algorithm"]: r for r in rows if r["section"] == "overload"
    }
    for name in ("submitted", "ok", "rejected", "deadline"):
        if name not in overload:
            fail(f"serving_latency: overload section is missing {name!r}")
    submitted = overload["submitted"]["io_accesses"]
    outcomes = sum(
        overload[name]["io_accesses"] for name in ("ok", "rejected", "deadline")
    )
    if outcomes != submitted:
        fail(
            f"serving_latency: overload outcomes ({outcomes}) do not "
            f"partition the {submitted} submitted requests: a request "
            "finished with an unexpected status"
        )
    for name in ("rejected", "deadline"):
        if overload[name]["io_accesses"] <= 0:
            fail(
                f"serving_latency: overload produced zero {name} "
                "requests; admission control never engaged"
            )
    for name, row in overload.items():
        if row["pairs"] != submitted:
            fail(
                f"serving_latency: overload row {name!r} reports "
                f"pairs={row['pairs']}, expected submitted={submitted}"
            )


def check_fault_recovery(rows):
    """fault_recovery carries the fault injector's determinism guarantee
    onto the report surface: schedules depend only on (plan seed,
    request id, attempt), so each section's deterministic columns
    (io_accesses = injected faults, pairs = retries, loops = the
    status+matching digest) must be identical at every lane count. The
    rate0 baseline runs with the injector disabled and must report zero
    faults, zero retries and 100% success; at least one faulted section
    must actually inject."""
    by_section = {}
    for row in rows:
        by_section.setdefault(row["section"], []).append(row)
    if len(by_section) < 2 or "rate0" not in by_section:
        fail(
            f"fault_recovery: sections {sorted(by_section)}; expected "
            "rate0 plus >= 1 faulted intensity"
        )

    expected_algos = {"mix", "mix:p99", "mix:success"}
    for section, section_rows in by_section.items():
        lanes = {r["x"] for r in section_rows}
        if len(lanes) < 2:
            fail(
                f"fault_recovery: {section} covers {len(lanes)} lane "
                "count(s); expected a sweep over >= 2"
            )
        by_cell = {}
        for row in section_rows:
            by_cell.setdefault(row["x"], set()).add(row["algorithm"])
        for x, algos in by_cell.items():
            missing = expected_algos - algos
            if missing:
                fail(
                    f"fault_recovery: cell {section}/x={x} is missing "
                    f"rows {sorted(missing)}"
                )
        baseline = section_rows[0]
        for row in section_rows[1:]:
            for field in ("io_accesses", "pairs", "loops"):
                if row[field] != baseline[field]:
                    fail(
                        f"fault_recovery: {field} differs within "
                        f"{section} ({baseline[field]} at "
                        f"x={baseline['x']}/{baseline['algorithm']} vs "
                        f"{row[field]} at x={row['x']}/{row['algorithm']}): "
                        "the fault schedule is not lane-invariant"
                    )

    for row in by_section["rate0"]:
        if row["io_accesses"] != 0 or row["pairs"] != 0:
            fail(
                f"fault_recovery: rate0 row {row['algorithm']!r} reports "
                f"faults={row['io_accesses']} retries={row['pairs']}; the "
                "disabled injector must inject nothing"
            )
        if row["algorithm"] == "mix:success" and row["cpu_ms"] != 100.0:
            fail(
                f"fault_recovery: rate0 success rate is {row['cpu_ms']}%; "
                "a fault-free run must succeed completely"
            )
    if not any(
        row["io_accesses"] > 0
        for section, section_rows in by_section.items()
        if section != "rate0"
        for row in section_rows
    ):
        fail(
            "fault_recovery: no faulted section injected a single "
            "fault; the injector never engaged"
        )


def check_update_throughput(rows):
    """update_throughput carries the update-vs-rebuild differential onto
    the report surface: in every batch-size cell the query:updated row
    (SB on the incrementally updated epoch) and the query:rebuilt row
    (SB on a from-scratch rebuild of the identical final problem) must
    carry the same matching digest (loops) and pair count — the update
    path is required to be byte-exact. The apply rows' updates-applied
    and R-tree node-edit counts are pure functions of the cell's seed
    and must be non-zero and consistent between the two apply rows."""
    by_cell = {}
    for row in rows:
        by_cell.setdefault(row["x"], {}).setdefault(
            row["algorithm"], []
        ).append(row)
    if len(by_cell) < 2:
        fail(
            f"update_throughput: {len(by_cell)} batch-size cell(s); "
            "expected a sweep over >= 2 batch sizes"
        )
    expected_algos = {
        "apply:updates_per_s", "apply:epoch_ms",
        "query:updated", "query:rebuilt",
    }
    for x, algos in by_cell.items():
        missing = expected_algos - set(algos)
        if missing:
            fail(
                f"update_throughput: cell x={x} is missing rows "
                f"{sorted(missing)}"
            )
        updated = algos["query:updated"][0]
        rebuilt = algos["query:rebuilt"][0]
        if updated["loops"] == 0:
            fail(
                f"update_throughput: x={x} query:updated carries an "
                "empty matching digest (loops=0): the updated epoch "
                "served nothing"
            )
        if (
            updated["loops"] != rebuilt["loops"]
            or updated["pairs"] != rebuilt["pairs"]
        ):
            fail(
                f"update_throughput: x={x} updated-vs-rebuilt diverged "
                f"(digest {updated['loops']} vs {rebuilt['loops']}, "
                f"pairs {updated['pairs']} vs {rebuilt['pairs']}): "
                "incremental updates are not byte-exact"
            )
        throughput = algos["apply:updates_per_s"][0]
        epoch_ms = algos["apply:epoch_ms"][0]
        for name, row in (("apply:updates_per_s", throughput),
                          ("apply:epoch_ms", epoch_ms)):
            if row["pairs"] <= 0 or row["io_accesses"] <= 0:
                fail(
                    f"update_throughput: x={x} {name} reports "
                    f"updates={row['pairs']} tree_ops={row['io_accesses']}; "
                    "the apply phase did no work"
                )
        if (
            throughput["pairs"] != epoch_ms["pairs"]
            or throughput["io_accesses"] != epoch_ms["io_accesses"]
        ):
            fail(
                f"update_throughput: x={x} apply rows disagree on the "
                "work done; they must come from the same experiment"
            )


def check_recovery_time(rows):
    """recovery_time carries the restart-equals-no-crash differential
    onto the report surface: in every cell the state:recovered row
    (digest of the epoch Recover() rebuilt from the manifest + snapshot
    + WAL suffix) must equal the state:uncrashed row (digest of the
    epoch the live builder was serving at clean shutdown) on both
    deterministic columns. In the replay section the snapshot threshold
    is disabled, so the replayed-record count must equal the cell's x;
    the threshold section must show the knob actually shrinking the
    replayed suffix."""
    by_section = {}
    for row in rows:
        by_section.setdefault(row["section"], {}).setdefault(
            row["x"], {}
        )[row["algorithm"]] = row
    for name in ("replay", "threshold"):
        if name not in by_section:
            fail(f"recovery_time: missing section {name!r}")
        if len(by_section[name]) < 2:
            fail(
                f"recovery_time: section {name!r} has "
                f"{len(by_section[name])} x value(s); expected >= 2"
            )
    expected_algos = {
        "recover:time_to_serving_ms", "recover:replay_records_per_s",
        "state:recovered", "state:uncrashed",
    }
    for section, cells in by_section.items():
        for x, algos in cells.items():
            missing = expected_algos - set(algos)
            if missing:
                fail(
                    f"recovery_time: cell {section}/x={x} is missing "
                    f"rows {sorted(missing)}"
                )
            recovered = algos["state:recovered"]
            uncrashed = algos["state:uncrashed"]
            if recovered["loops"] == 0:
                fail(
                    f"recovery_time: {section}/x={x} carries an empty "
                    "epoch digest (loops=0): recovery served nothing"
                )
            if (
                recovered["loops"] != uncrashed["loops"]
                or recovered["pairs"] != uncrashed["pairs"]
            ):
                fail(
                    f"recovery_time: {section}/x={x} recovered-vs-"
                    f"uncrashed diverged (digest {recovered['loops']} vs "
                    f"{uncrashed['loops']}, pairs {recovered['pairs']} vs "
                    f"{uncrashed['pairs']}): restart did not converge to "
                    "the pre-shutdown epoch"
                )
            replayed = {r["io_accesses"] for r in algos.values()}
            if len(replayed) != 1:
                fail(
                    f"recovery_time: {section}/x={x} rows disagree on "
                    f"the replayed-record count ({sorted(replayed)}); "
                    "they must come from the same experiment"
                )
            if section == "replay" and replayed != {int(x)}:
                fail(
                    f"recovery_time: replay/x={x} replayed "
                    f"{sorted(replayed)} WAL records; with snapshots "
                    f"disabled every one of the {x} batches must replay"
                )
    suffixes = {
        x: algos["state:recovered"]["io_accesses"]
        for x, algos in by_section["threshold"].items()
    }
    if len(set(suffixes.values())) < 2:
        fail(
            f"recovery_time: threshold section replayed the same "
            f"suffix everywhere ({suffixes}); the snapshot-threshold "
            "knob had no effect"
        )


def main():
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} REPORT.json FAIRMATCH_BENCH_BINARY")
    report_path, bench_binary = sys.argv[1], sys.argv[2]

    try:
        with open(report_path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {report_path}: {e}")

    if report.get("schema") != "fairmatch-bench/v1":
        fail(f"unexpected schema {report.get('schema')!r}")

    registered = set(
        subprocess.run(
            [bench_binary, "--list-names"],
            check=True,
            capture_output=True,
            text=True,
        ).stdout.split()
    )
    reported = set(report.get("figures", {}))
    if reported != registered:
        fail(
            f"figure set mismatch: missing={sorted(registered - reported)} "
            f"unexpected={sorted(reported - registered)}"
        )

    rows = 0
    for figure, figure_rows in report["figures"].items():
        if not figure_rows:
            fail(f"figure {figure!r} has no rows")
        for row in figure_rows:
            for field in STRING_FIELDS:
                if not isinstance(row.get(field), str):
                    fail(f"{figure}: row missing string field {field!r}: {row}")
            if not row["x"] or not row["algorithm"]:
                fail(f"{figure}: empty x/algorithm in row {row}")
            for field in NUMERIC_FIELDS:
                value = row.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    fail(f"{figure}: bad {field}={value!r} in row {row}")
            rows += 1

    check_batch_figure(report["figures"].get("batch_throughput", []))
    check_micro_packed_probe(report["figures"].get("micro_packed_probe", []))
    check_scale_sweep(report["figures"].get("scale_sweep", []))
    check_serving_latency(report["figures"].get("serving_latency", []))
    check_fault_recovery(report["figures"].get("fault_recovery", []))
    check_update_throughput(report["figures"].get("update_throughput", []))
    check_recovery_time(report["figures"].get("recovery_time", []))

    print(
        f"check_bench_report: OK — {len(reported)} figures, {rows} rows, "
        f"scale={report.get('scale')}, git_sha={report.get('git_sha')}"
    )


if __name__ == "__main__":
    main()

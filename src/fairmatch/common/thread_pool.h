// A small fixed-size worker pool for batch execution.
//
// The engine's BatchRunner (engine/batch_runner.h) fans independent
// assignment problems out over worker lanes; this pool is the reusable
// mechanism underneath: N long-lived threads draining one FIFO task
// queue. It is deliberately minimal — no futures, no priorities, no
// work stealing — because every fairmatch use so far submits a handful
// of coarse lane loops and then waits for all of them.
//
// Thread safety: Submit() and Wait() may be called from any thread,
// including concurrently; tasks themselves must not call Wait() (a task
// waiting for the queue it runs on deadlocks a single-worker pool).
// The destructor drains the queue (equivalent to Wait()) before
// joining the workers.
#ifndef FAIRMATCH_COMMON_THREAD_POOL_H_
#define FAIRMATCH_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "fairmatch/common/check.h"

namespace fairmatch {

/// Fixed pool of worker threads over a FIFO task queue.
class ThreadPool {
 public:
  /// Starts `threads` workers (at least 1).
  explicit ThreadPool(int threads) {
    FAIRMATCH_CHECK(threads >= 1);
    workers_.reserve(static_cast<size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Waits for all submitted tasks, then joins the workers.
  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. Tasks run in submission order but complete in
  /// any order once more than one worker exists.
  void Submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      FAIRMATCH_CHECK(!stopping_);
      queue_.push_back(std::move(task));
    }
    work_cv_.notify_one();
  }

  /// Blocks until the queue is empty and every running task finished.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ with a drained queue
        task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
      }
      task();
      {
        std::unique_lock<std::mutex> lock(mu_);
        --active_;
        if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool stopping_ = false;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_COMMON_THREAD_POOL_H_

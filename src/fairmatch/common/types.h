// Core scalar types and limits shared across all fairmatch modules.
#ifndef FAIRMATCH_COMMON_TYPES_H_
#define FAIRMATCH_COMMON_TYPES_H_

#include <cstdint>

namespace fairmatch {

/// Identifier of a data object in O. Dense, starting at 0.
using ObjectId = int32_t;

/// Identifier of a preference function in F. Dense, starting at 0.
using FunctionId = int32_t;

/// Identifier of a 4 KB page on the simulated disk.
using PageId = int32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPage = -1;

/// Sentinel for "no object".
inline constexpr ObjectId kInvalidObject = -1;

/// Sentinel for "no function".
inline constexpr FunctionId kInvalidFunction = -1;

/// Maximum dimensionality supported by the fixed-size geometry types.
/// The paper evaluates D in [3, 6]; 8 leaves headroom without heap
/// allocation in hot paths.
inline constexpr int kMaxDims = 8;

/// Simulated disk page size in bytes (the paper uses 4 KB R-tree pages).
inline constexpr int kPageSize = 4096;

}  // namespace fairmatch

#endif  // FAIRMATCH_COMMON_TYPES_H_

// Preference functions (the paper's set F).
//
// A preference function is a normalized linear weight vector over the D
// object attributes (Equation 1), optionally extended with an integer
// capacity (Section 6.1) and a priority gamma (Section 6.2, Equation 2):
//
//   f(o) = gamma * sum_i alpha_i * o_i,   sum_i alpha_i = 1.
#ifndef FAIRMATCH_COMMON_PREFERENCE_H_
#define FAIRMATCH_COMMON_PREFERENCE_H_

#include <array>
#include <vector>

#include "fairmatch/common/types.h"
#include "fairmatch/geom/mbr.h"
#include "fairmatch/geom/point.h"

namespace fairmatch {

/// One user preference function.
struct PrefFunction {
  FunctionId id = kInvalidFunction;
  int dims = 0;
  /// Normalized weights: sum_i alpha[i] == 1.
  std::array<double, kMaxDims> alpha{};
  /// Priority multiplier (Section 6.2). 1.0 in the standard problem.
  double gamma = 1.0;
  /// How many objects this user may receive (Section 6.1).
  int capacity = 1;

  /// Effective coefficient alpha'_i = alpha_i * gamma.
  double eff(int i) const { return alpha[i] * gamma; }

  /// Score of an object under this function (Equation 2; reduces to
  /// Equation 1 when gamma == 1). Computed as sum_i eff(i) * o_i so that
  /// every component in the library — in-memory lists, disk-resident
  /// lists, skylines over effective coefficients — produces bit-identical
  /// scores and algorithms agree exactly on ties.
  double Score(const Point& p) const {
    double s = 0.0;
    for (int i = 0; i < dims; ++i) s += alpha[i] * gamma * p[i];
    return s;
  }

  /// Upper bound of Score over an MBR (used by Chain's object-side BRS).
  double MaxScore(const MBR& box) const {
    double s = 0.0;
    for (int i = 0; i < dims; ++i) s += alpha[i] * gamma * box.hi()[i];
    return s;
  }
};

/// The function set F. Function ids equal vector indices.
using FunctionSet = std::vector<PrefFunction>;

}  // namespace fairmatch

#endif  // FAIRMATCH_COMMON_PREFERENCE_H_

// Wall-clock timer for the experimental harness.
#ifndef FAIRMATCH_COMMON_TIMER_H_
#define FAIRMATCH_COMMON_TIMER_H_

#include <chrono>

namespace fairmatch {

/// Millisecond stopwatch, started at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_COMMON_TIMER_H_

// Lightweight invariant-checking macros (abort on violation).
//
// The library is exception-free (Google style); programming errors and
// violated invariants terminate with a diagnostic instead of throwing.
#ifndef FAIRMATCH_COMMON_CHECK_H_
#define FAIRMATCH_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace fairmatch::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "FAIRMATCH_CHECK failed at %s:%d: %s\n", file, line,
               expr);
  std::abort();
}

}  // namespace fairmatch::internal

/// Aborts the process if `expr` is false. Enabled in all build types:
/// the checks guard data-structure invariants whose violation would
/// silently corrupt experiment results.
#define FAIRMATCH_CHECK(expr)                                         \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::fairmatch::internal::CheckFailed(__FILE__, __LINE__, #expr);  \
    }                                                                 \
  } while (0)

/// Debug-only check for hot paths.
#ifndef NDEBUG
#define FAIRMATCH_DCHECK(expr) FAIRMATCH_CHECK(expr)
#else
#define FAIRMATCH_DCHECK(expr) \
  do {                         \
  } while (0)
#endif

#endif  // FAIRMATCH_COMMON_CHECK_H_

#include "fairmatch/common/stats.h"

#include <cstdio>

namespace fairmatch {

std::string PerfCounters::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "io=%lld (reads=%lld writes=%lld) hits=%lld logical=%lld",
                static_cast<long long>(io_accesses()),
                static_cast<long long>(page_reads),
                static_cast<long long>(page_writes),
                static_cast<long long>(buffer_hits),
                static_cast<long long>(logical_reads));
  return std::string(buf);
}

}  // namespace fairmatch

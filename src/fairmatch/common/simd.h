// Portable vector kernels for the column-major (SoA) hot loops.
//
// Two kernels cover both vectorized inner loops: linear scoring of a
// block of member columns (SB-alt's batch search) and first-dominator
// search over a block of skyline columns (SkylineSet::FindDominator).
// Both operate on dim-major float columns: `cols[d * stride + j]` is
// coordinate d of column j, so one vector load touches consecutive
// columns of one dimension.
//
// Backend selection is at compile time: AVX2 when the target enables
// it, else SSE2 (any x86-64), else NEON (aarch64), else the scalar
// reference. -DFAIRMATCH_SIMD=OFF (CMake) defines
// FAIRMATCH_SIMD_DISABLED and forces the scalar reference everywhere.
//
// Every backend is bit-identical to the scalar reference, which is
// what lets the bench regression gate compare SIMD and scalar builds
// row by row:
//  * scoring lanes accumulate per column in ascending-dimension order
//    with separate IEEE mul and add (no FMA contraction, no horizontal
//    reduction), exactly the scalar sequence;
//  * dominance tests are float comparisons, which carry no rounding at
//    all.
// tests/perf_util_test.cc checks both kernels against the references
// on randomized blocks, and the FAIRMATCH_SIMD=OFF CI leg re-runs the
// full suite and smoke sweep on the scalar build.
#ifndef FAIRMATCH_COMMON_SIMD_H_
#define FAIRMATCH_COMMON_SIMD_H_

#include <cstddef>

#if !defined(FAIRMATCH_SIMD_DISABLED) && defined(__AVX2__)
#define FAIRMATCH_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(FAIRMATCH_SIMD_DISABLED) && \
    (defined(__SSE2__) || defined(_M_X64) || defined(__x86_64__))
#define FAIRMATCH_SIMD_SSE2 1
#include <emmintrin.h>
#elif !defined(FAIRMATCH_SIMD_DISABLED) && defined(__ARM_NEON)
#define FAIRMATCH_SIMD_NEON 1
#include <arm_neon.h>
#else
#define FAIRMATCH_SIMD_SCALAR 1
#endif

namespace fairmatch::simd {

/// Active backend, for diagnostics and bench row labels.
inline const char* BackendName() {
#if defined(FAIRMATCH_SIMD_AVX2)
  return "avx2";
#elif defined(FAIRMATCH_SIMD_SSE2)
  return "sse2";
#elif defined(FAIRMATCH_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

/// True when a vector backend is compiled in (bench labeling).
inline constexpr bool kVectorized =
#if defined(FAIRMATCH_SIMD_SCALAR)
    false;
#else
    true;
#endif

// ---------------------------------------------------------------------
// Kernel 1 — block scoring: out[j] = sum_d weights[d] * cols[d*stride+j]
// ---------------------------------------------------------------------

/// Scalar reference. Per column the products are accumulated in
/// ascending-dimension order; every backend reproduces this sequence
/// lane-for-lane.
inline void ScoreColumnsScalar(const float* cols, size_t stride, int dims,
                               const double* weights, int count,
                               double* out) {
  for (int j = 0; j < count; ++j) out[j] = 0.0;
  for (int d = 0; d < dims; ++d) {
    const float* col = cols + static_cast<size_t>(d) * stride;
    const double w = weights[d];
    for (int j = 0; j < count; ++j) {
      out[j] += w * static_cast<double>(col[j]);
    }
  }
}

/// Vector backends tile the columns into register blocks (a few
/// vectors of accumulators held across the whole dimension loop), so
/// the per-dimension pass touches memory once per column block instead
/// of re-loading the accumulator array for every dimension. Each lane
/// still accumulates its column's products in ascending-dimension
/// order with separate mul + add — bit-identical to the reference.
inline void ScoreColumns(const float* cols, size_t stride, int dims,
                         const double* weights, int count, double* out) {
#if defined(FAIRMATCH_SIMD_AVX2)
  int j = 0;
  for (; j + 16 <= count; j += 16) {
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    for (int d = 0; d < dims; ++d) {
      const float* col = cols + static_cast<size_t>(d) * stride + j;
      const __m256d w = _mm256_set1_pd(weights[d]);
      a0 = _mm256_add_pd(
          a0, _mm256_mul_pd(w, _mm256_cvtps_pd(_mm_loadu_ps(col))));
      a1 = _mm256_add_pd(
          a1, _mm256_mul_pd(w, _mm256_cvtps_pd(_mm_loadu_ps(col + 4))));
      a2 = _mm256_add_pd(
          a2, _mm256_mul_pd(w, _mm256_cvtps_pd(_mm_loadu_ps(col + 8))));
      a3 = _mm256_add_pd(
          a3, _mm256_mul_pd(w, _mm256_cvtps_pd(_mm_loadu_ps(col + 12))));
    }
    _mm256_storeu_pd(out + j, a0);
    _mm256_storeu_pd(out + j + 4, a1);
    _mm256_storeu_pd(out + j + 8, a2);
    _mm256_storeu_pd(out + j + 12, a3);
  }
  if (j < count) {
    ScoreColumnsScalar(cols + j, stride, dims, weights, count - j,
                       out + j);
  }
#elif defined(FAIRMATCH_SIMD_SSE2)
  const auto load2 = [](const float* p) {
    return _mm_cvtps_pd(_mm_castsi128_ps(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p))));
  };
  int j = 0;
  for (; j + 8 <= count; j += 8) {
    __m128d a0 = _mm_setzero_pd();
    __m128d a1 = _mm_setzero_pd();
    __m128d a2 = _mm_setzero_pd();
    __m128d a3 = _mm_setzero_pd();
    for (int d = 0; d < dims; ++d) {
      const float* col = cols + static_cast<size_t>(d) * stride + j;
      const __m128d w = _mm_set1_pd(weights[d]);
      a0 = _mm_add_pd(a0, _mm_mul_pd(w, load2(col)));
      a1 = _mm_add_pd(a1, _mm_mul_pd(w, load2(col + 2)));
      a2 = _mm_add_pd(a2, _mm_mul_pd(w, load2(col + 4)));
      a3 = _mm_add_pd(a3, _mm_mul_pd(w, load2(col + 6)));
    }
    _mm_storeu_pd(out + j, a0);
    _mm_storeu_pd(out + j + 2, a1);
    _mm_storeu_pd(out + j + 4, a2);
    _mm_storeu_pd(out + j + 6, a3);
  }
  if (j < count) {
    ScoreColumnsScalar(cols + j, stride, dims, weights, count - j,
                       out + j);
  }
#elif defined(FAIRMATCH_SIMD_NEON)
  int j = 0;
  for (; j + 8 <= count; j += 8) {
    float64x2_t a0 = vdupq_n_f64(0.0);
    float64x2_t a1 = vdupq_n_f64(0.0);
    float64x2_t a2 = vdupq_n_f64(0.0);
    float64x2_t a3 = vdupq_n_f64(0.0);
    for (int d = 0; d < dims; ++d) {
      const float* col = cols + static_cast<size_t>(d) * stride + j;
      const float64x2_t w = vdupq_n_f64(weights[d]);
      a0 = vaddq_f64(a0, vmulq_f64(w, vcvt_f64_f32(vld1_f32(col))));
      a1 = vaddq_f64(a1, vmulq_f64(w, vcvt_f64_f32(vld1_f32(col + 2))));
      a2 = vaddq_f64(a2, vmulq_f64(w, vcvt_f64_f32(vld1_f32(col + 4))));
      a3 = vaddq_f64(a3, vmulq_f64(w, vcvt_f64_f32(vld1_f32(col + 6))));
    }
    vst1q_f64(out + j, a0);
    vst1q_f64(out + j + 2, a1);
    vst1q_f64(out + j + 4, a2);
    vst1q_f64(out + j + 6, a3);
  }
  if (j < count) {
    ScoreColumnsScalar(cols + j, stride, dims, weights, count - j,
                       out + j);
  }
#else
  ScoreColumnsScalar(cols, stride, dims, weights, count, out);
#endif
}

// ---------------------------------------------------------------------
// Kernel 2 — first dominator: smallest j in [0, count) whose column is
// >= corner in every dimension and > in at least one; -1 if none.
// ---------------------------------------------------------------------

/// Scalar reference (Point::Dominates over one column).
inline int FirstDominatorScalar(const float* cols, size_t stride, int dims,
                                const float* corner, int count) {
  for (int j = 0; j < count; ++j) {
    bool ge = true;
    bool gt = false;
    for (int d = 0; d < dims; ++d) {
      const float v = cols[static_cast<size_t>(d) * stride + j];
      if (v < corner[d]) {
        ge = false;
        break;
      }
      if (v > corner[d]) gt = true;
    }
    if (ge && gt) return j;
  }
  return -1;
}

inline int FirstDominator(const float* cols, size_t stride, int dims,
                          const float* corner, int count) {
#if defined(FAIRMATCH_SIMD_AVX2)
  int j = 0;
  for (; j + 8 <= count; j += 8) {
    __m256 ge = _mm256_castsi256_ps(_mm256_set1_epi32(-1));
    __m256 gt = _mm256_setzero_ps();
    for (int d = 0; d < dims; ++d) {
      const __m256 v =
          _mm256_loadu_ps(cols + static_cast<size_t>(d) * stride + j);
      const __m256 c = _mm256_set1_ps(corner[d]);
      ge = _mm256_and_ps(ge, _mm256_cmp_ps(v, c, _CMP_GE_OQ));
      gt = _mm256_or_ps(gt, _mm256_cmp_ps(v, c, _CMP_GT_OQ));
    }
    const int mask = _mm256_movemask_ps(_mm256_and_ps(ge, gt));
    if (mask != 0) return j + __builtin_ctz(mask);
  }
  if (j < count) {
    const int tail =
        FirstDominatorScalar(cols + j, stride, dims, corner, count - j);
    if (tail >= 0) return j + tail;
  }
  return -1;
#elif defined(FAIRMATCH_SIMD_SSE2)
  int j = 0;
  for (; j + 4 <= count; j += 4) {
    __m128 ge = _mm_castsi128_ps(_mm_set1_epi32(-1));
    __m128 gt = _mm_setzero_ps();
    for (int d = 0; d < dims; ++d) {
      const __m128 v =
          _mm_loadu_ps(cols + static_cast<size_t>(d) * stride + j);
      const __m128 c = _mm_set1_ps(corner[d]);
      ge = _mm_and_ps(ge, _mm_cmpge_ps(v, c));
      gt = _mm_or_ps(gt, _mm_cmpgt_ps(v, c));
    }
    const int mask = _mm_movemask_ps(_mm_and_ps(ge, gt));
    if (mask != 0) return j + __builtin_ctz(mask);
  }
  if (j < count) {
    const int tail =
        FirstDominatorScalar(cols + j, stride, dims, corner, count - j);
    if (tail >= 0) return j + tail;
  }
  return -1;
#elif defined(FAIRMATCH_SIMD_NEON)
  int j = 0;
  for (; j + 4 <= count; j += 4) {
    uint32x4_t ge = vdupq_n_u32(0xFFFFFFFFu);
    uint32x4_t gt = vdupq_n_u32(0);
    for (int d = 0; d < dims; ++d) {
      const float32x4_t v =
          vld1q_f32(cols + static_cast<size_t>(d) * stride + j);
      const float32x4_t c = vdupq_n_f32(corner[d]);
      ge = vandq_u32(ge, vcgeq_f32(v, c));
      gt = vorrq_u32(gt, vcgtq_f32(v, c));
    }
    const uint32x4_t hit = vandq_u32(ge, gt);
    if (vmaxvq_u32(hit) != 0) {
      uint32_t lanes[4];
      vst1q_u32(lanes, hit);
      for (int lane = 0; lane < 4; ++lane) {
        if (lanes[lane] != 0) return j + lane;
      }
    }
  }
  if (j < count) {
    const int tail =
        FirstDominatorScalar(cols + j, stride, dims, corner, count - j);
    if (tail >= 0) return j + tail;
  }
  return -1;
#else
  return FirstDominatorScalar(cols, stride, dims, corner, count);
#endif
}

}  // namespace fairmatch::simd

#endif  // FAIRMATCH_COMMON_SIMD_H_

// Portable vector kernels for the column-major (SoA) hot loops.
//
// Four kernels cover the vectorized inner loops: linear scoring of a
// block of member columns (SB-alt's batch search), first-dominator
// search over a block of skyline columns (SkylineSet::FindDominator),
// fractional-knapsack score bounds over a batch of members (SB-alt's
// fetch-worthiness probe), and fixed-width id decode (the packed
// function-list block payloads). The first two operate on dim-major
// float columns: `cols[d * stride + j]` is coordinate d of column j,
// so one vector load touches consecutive columns of one dimension; the
// knapsack kernel instead lanes over members (gathered rows), and the
// id decoder is a pure integer widening pass.
//
// Backend selection is at compile time: AVX2 when the target enables
// it, else SSE2 (any x86-64), else NEON (aarch64), else the scalar
// reference. -DFAIRMATCH_SIMD=OFF (CMake) defines
// FAIRMATCH_SIMD_DISABLED and forces the scalar reference everywhere.
//
// Every backend is bit-identical to the scalar reference, which is
// what lets the bench regression gate compare SIMD and scalar builds
// row by row:
//  * scoring lanes accumulate per column in ascending-dimension order
//    with separate IEEE mul and add (no FMA contraction, no horizontal
//    reduction), exactly the scalar sequence;
//  * dominance tests are float comparisons, which carry no rounding at
//    all.
// tests/perf_util_test.cc checks both kernels against the references
// on randomized blocks, and the FAIRMATCH_SIMD=OFF CI leg re-runs the
// full suite and smoke sweep on the scalar build.
#ifndef FAIRMATCH_COMMON_SIMD_H_
#define FAIRMATCH_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

#if !defined(FAIRMATCH_SIMD_DISABLED) && defined(__AVX2__)
#define FAIRMATCH_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(FAIRMATCH_SIMD_DISABLED) && \
    (defined(__SSE2__) || defined(_M_X64) || defined(__x86_64__))
#define FAIRMATCH_SIMD_SSE2 1
#include <emmintrin.h>
#elif !defined(FAIRMATCH_SIMD_DISABLED) && defined(__ARM_NEON)
#define FAIRMATCH_SIMD_NEON 1
#include <arm_neon.h>
#else
#define FAIRMATCH_SIMD_SCALAR 1
#endif

namespace fairmatch::simd {

/// Active backend, for diagnostics and bench row labels.
inline const char* BackendName() {
#if defined(FAIRMATCH_SIMD_AVX2)
  return "avx2";
#elif defined(FAIRMATCH_SIMD_SSE2)
  return "sse2";
#elif defined(FAIRMATCH_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

/// True when a vector backend is compiled in (bench labeling).
inline constexpr bool kVectorized =
#if defined(FAIRMATCH_SIMD_SCALAR)
    false;
#else
    true;
#endif

// ---------------------------------------------------------------------
// Kernel 1 — block scoring: out[j] = sum_d weights[d] * cols[d*stride+j]
// ---------------------------------------------------------------------

/// Scalar reference. Per column the products are accumulated in
/// ascending-dimension order; every backend reproduces this sequence
/// lane-for-lane.
inline void ScoreColumnsScalar(const float* cols, size_t stride, int dims,
                               const double* weights, int count,
                               double* out) {
  for (int j = 0; j < count; ++j) out[j] = 0.0;
  for (int d = 0; d < dims; ++d) {
    const float* col = cols + static_cast<size_t>(d) * stride;
    const double w = weights[d];
    for (int j = 0; j < count; ++j) {
      out[j] += w * static_cast<double>(col[j]);
    }
  }
}

/// Vector backends tile the columns into register blocks (a few
/// vectors of accumulators held across the whole dimension loop), so
/// the per-dimension pass touches memory once per column block instead
/// of re-loading the accumulator array for every dimension. Each lane
/// still accumulates its column's products in ascending-dimension
/// order with separate mul + add — bit-identical to the reference.
inline void ScoreColumns(const float* cols, size_t stride, int dims,
                         const double* weights, int count, double* out) {
#if defined(FAIRMATCH_SIMD_AVX2)
  int j = 0;
  for (; j + 16 <= count; j += 16) {
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    for (int d = 0; d < dims; ++d) {
      const float* col = cols + static_cast<size_t>(d) * stride + j;
      const __m256d w = _mm256_set1_pd(weights[d]);
      a0 = _mm256_add_pd(
          a0, _mm256_mul_pd(w, _mm256_cvtps_pd(_mm_loadu_ps(col))));
      a1 = _mm256_add_pd(
          a1, _mm256_mul_pd(w, _mm256_cvtps_pd(_mm_loadu_ps(col + 4))));
      a2 = _mm256_add_pd(
          a2, _mm256_mul_pd(w, _mm256_cvtps_pd(_mm_loadu_ps(col + 8))));
      a3 = _mm256_add_pd(
          a3, _mm256_mul_pd(w, _mm256_cvtps_pd(_mm_loadu_ps(col + 12))));
    }
    _mm256_storeu_pd(out + j, a0);
    _mm256_storeu_pd(out + j + 4, a1);
    _mm256_storeu_pd(out + j + 8, a2);
    _mm256_storeu_pd(out + j + 12, a3);
  }
  if (j < count) {
    ScoreColumnsScalar(cols + j, stride, dims, weights, count - j,
                       out + j);
  }
#elif defined(FAIRMATCH_SIMD_SSE2)
  const auto load2 = [](const float* p) {
    return _mm_cvtps_pd(_mm_castsi128_ps(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p))));
  };
  int j = 0;
  for (; j + 8 <= count; j += 8) {
    __m128d a0 = _mm_setzero_pd();
    __m128d a1 = _mm_setzero_pd();
    __m128d a2 = _mm_setzero_pd();
    __m128d a3 = _mm_setzero_pd();
    for (int d = 0; d < dims; ++d) {
      const float* col = cols + static_cast<size_t>(d) * stride + j;
      const __m128d w = _mm_set1_pd(weights[d]);
      a0 = _mm_add_pd(a0, _mm_mul_pd(w, load2(col)));
      a1 = _mm_add_pd(a1, _mm_mul_pd(w, load2(col + 2)));
      a2 = _mm_add_pd(a2, _mm_mul_pd(w, load2(col + 4)));
      a3 = _mm_add_pd(a3, _mm_mul_pd(w, load2(col + 6)));
    }
    _mm_storeu_pd(out + j, a0);
    _mm_storeu_pd(out + j + 2, a1);
    _mm_storeu_pd(out + j + 4, a2);
    _mm_storeu_pd(out + j + 6, a3);
  }
  if (j < count) {
    ScoreColumnsScalar(cols + j, stride, dims, weights, count - j,
                       out + j);
  }
#elif defined(FAIRMATCH_SIMD_NEON)
  int j = 0;
  for (; j + 8 <= count; j += 8) {
    float64x2_t a0 = vdupq_n_f64(0.0);
    float64x2_t a1 = vdupq_n_f64(0.0);
    float64x2_t a2 = vdupq_n_f64(0.0);
    float64x2_t a3 = vdupq_n_f64(0.0);
    for (int d = 0; d < dims; ++d) {
      const float* col = cols + static_cast<size_t>(d) * stride + j;
      const float64x2_t w = vdupq_n_f64(weights[d]);
      a0 = vaddq_f64(a0, vmulq_f64(w, vcvt_f64_f32(vld1_f32(col))));
      a1 = vaddq_f64(a1, vmulq_f64(w, vcvt_f64_f32(vld1_f32(col + 2))));
      a2 = vaddq_f64(a2, vmulq_f64(w, vcvt_f64_f32(vld1_f32(col + 4))));
      a3 = vaddq_f64(a3, vmulq_f64(w, vcvt_f64_f32(vld1_f32(col + 6))));
    }
    vst1q_f64(out + j, a0);
    vst1q_f64(out + j + 2, a1);
    vst1q_f64(out + j + 4, a2);
    vst1q_f64(out + j + 6, a3);
  }
  if (j < count) {
    ScoreColumnsScalar(cols + j, stride, dims, weights, count - j,
                       out + j);
  }
#else
  ScoreColumnsScalar(cols, stride, dims, weights, count, out);
#endif
}

// ---------------------------------------------------------------------
// Kernel 2 — first dominator: smallest j in [0, count) whose column is
// >= corner in every dimension and > in at least one; -1 if none.
// ---------------------------------------------------------------------

/// Scalar reference (Point::Dominates over one column).
inline int FirstDominatorScalar(const float* cols, size_t stride, int dims,
                                const float* corner, int count) {
  for (int j = 0; j < count; ++j) {
    bool ge = true;
    bool gt = false;
    for (int d = 0; d < dims; ++d) {
      const float v = cols[static_cast<size_t>(d) * stride + j];
      if (v < corner[d]) {
        ge = false;
        break;
      }
      if (v > corner[d]) gt = true;
    }
    if (ge && gt) return j;
  }
  return -1;
}

inline int FirstDominator(const float* cols, size_t stride, int dims,
                          const float* corner, int count) {
#if defined(FAIRMATCH_SIMD_AVX2)
  int j = 0;
  for (; j + 8 <= count; j += 8) {
    __m256 ge = _mm256_castsi256_ps(_mm256_set1_epi32(-1));
    __m256 gt = _mm256_setzero_ps();
    for (int d = 0; d < dims; ++d) {
      const __m256 v =
          _mm256_loadu_ps(cols + static_cast<size_t>(d) * stride + j);
      const __m256 c = _mm256_set1_ps(corner[d]);
      ge = _mm256_and_ps(ge, _mm256_cmp_ps(v, c, _CMP_GE_OQ));
      gt = _mm256_or_ps(gt, _mm256_cmp_ps(v, c, _CMP_GT_OQ));
    }
    const int mask = _mm256_movemask_ps(_mm256_and_ps(ge, gt));
    if (mask != 0) return j + __builtin_ctz(mask);
  }
  if (j < count) {
    const int tail =
        FirstDominatorScalar(cols + j, stride, dims, corner, count - j);
    if (tail >= 0) return j + tail;
  }
  return -1;
#elif defined(FAIRMATCH_SIMD_SSE2)
  int j = 0;
  for (; j + 4 <= count; j += 4) {
    __m128 ge = _mm_castsi128_ps(_mm_set1_epi32(-1));
    __m128 gt = _mm_setzero_ps();
    for (int d = 0; d < dims; ++d) {
      const __m128 v =
          _mm_loadu_ps(cols + static_cast<size_t>(d) * stride + j);
      const __m128 c = _mm_set1_ps(corner[d]);
      ge = _mm_and_ps(ge, _mm_cmpge_ps(v, c));
      gt = _mm_or_ps(gt, _mm_cmpgt_ps(v, c));
    }
    const int mask = _mm_movemask_ps(_mm_and_ps(ge, gt));
    if (mask != 0) return j + __builtin_ctz(mask);
  }
  if (j < count) {
    const int tail =
        FirstDominatorScalar(cols + j, stride, dims, corner, count - j);
    if (tail >= 0) return j + tail;
  }
  return -1;
#elif defined(FAIRMATCH_SIMD_NEON)
  int j = 0;
  for (; j + 4 <= count; j += 4) {
    uint32x4_t ge = vdupq_n_u32(0xFFFFFFFFu);
    uint32x4_t gt = vdupq_n_u32(0);
    for (int d = 0; d < dims; ++d) {
      const float32x4_t v =
          vld1q_f32(cols + static_cast<size_t>(d) * stride + j);
      const float32x4_t c = vdupq_n_f32(corner[d]);
      ge = vandq_u32(ge, vcgeq_f32(v, c));
      gt = vorrq_u32(gt, vcgtq_f32(v, c));
    }
    const uint32x4_t hit = vandq_u32(ge, gt);
    if (vmaxvq_u32(hit) != 0) {
      uint32_t lanes[4];
      vst1q_u32(lanes, hit);
      for (int lane = 0; lane < 4; ++lane) {
        if (lanes[lane] != 0) return j + lane;
      }
    }
  }
  if (j < count) {
    const int tail =
        FirstDominatorScalar(cols + j, stride, dims, corner, count - j);
    if (tail >= 0) return j + tail;
  }
  return -1;
#else
  return FirstDominatorScalar(cols, stride, dims, corner, count);
#endif
}

// ---------------------------------------------------------------------
// Kernel 3 — knapsack score bounds: for each listed member m, the
// fractional-knapsack upper bound of an unseen function's score given
// the per-list frontier values (SB-alt's fetch-worthiness probe):
//   bound(m) = coef * pt_m[skip_dim]
//            + sum over k in order_m of clamp(min(budget, frontier[k]))
// with budget starting at budget0 and shrinking by the amount taken,
// and dimension skip_dim (whose exact coefficient `coef` is known)
// contributing nothing to the knapsack.
// ---------------------------------------------------------------------

/// Scalar reference. `pts`/`orders` are row-major member blocks of
/// `stride` floats/ints per row; `members[0..count)` selects the rows.
/// Per lane the products accumulate in the member's `orders` sequence
/// with separate IEEE mul and add; the beta clamp is written so every
/// backend reproduces the same bit pattern (including the +-0 cases).
inline void KnapsackBoundsScalar(const float* pts, const int* orders,
                                 size_t stride, int dims, int skip_dim,
                                 double coef, double budget0,
                                 const double* frontier, const int* members,
                                 int count, double* out) {
  for (int l = 0; l < count; ++l) {
    const int m = members[l];
    const float* pt = pts + static_cast<size_t>(m) * stride;
    const int* order = orders + static_cast<size_t>(m) * stride;
    double budget = budget0;
    double bound = coef * static_cast<double>(pt[skip_dim]);
    for (int j = 0; j < dims; ++j) {
      const int k = order[j];
      double beta = frontier[k] < budget ? frontier[k] : budget;
      if (beta < 0.0) beta = 0.0;
      if (k == skip_dim) beta = 0.0;
      bound += beta * static_cast<double>(pt[k]);
      budget -= beta;
    }
    out[l] = bound;
  }
}

/// AVX2 lanes four members through the same op sequence with gathered
/// rows (min/max/andnot reproduce the scalar clamp bit-for-bit, and the
/// zero-beta lanes add an exact +0.0). SSE2 and NEON have no gather and
/// use the scalar reference, which is what the bit-identity contract
/// requires anyway.
inline void KnapsackBounds(const float* pts, const int* orders, size_t stride,
                           int dims, int skip_dim, double coef, double budget0,
                           const double* frontier, const int* members,
                           int count, double* out) {
#if defined(FAIRMATCH_SIMD_AVX2)
  int l = 0;
  const __m256d zero = _mm256_setzero_pd();
  for (; l + 4 <= count; l += 4) {
    const __m128i mvec =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(members + l));
    const __m128i base =
        _mm_mullo_epi32(mvec, _mm_set1_epi32(static_cast<int>(stride)));
    const __m128 pt_skip = _mm_i32gather_ps(
        pts, _mm_add_epi32(base, _mm_set1_epi32(skip_dim)), 4);
    __m256d bound =
        _mm256_mul_pd(_mm256_set1_pd(coef), _mm256_cvtps_pd(pt_skip));
    __m256d budget = _mm256_set1_pd(budget0);
    for (int j = 0; j < dims; ++j) {
      const __m128i k = _mm_i32gather_epi32(
          orders, _mm_add_epi32(base, _mm_set1_epi32(j)), 4);
      const __m256d fr = _mm256_i32gather_pd(frontier, k, 8);
      __m256d beta = _mm256_max_pd(_mm256_min_pd(budget, fr), zero);
      const __m256d skip_mask = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(
          _mm_cmpeq_epi32(k, _mm_set1_epi32(skip_dim))));
      beta = _mm256_andnot_pd(skip_mask, beta);
      const __m128 ptk = _mm_i32gather_ps(pts, _mm_add_epi32(base, k), 4);
      bound = _mm256_add_pd(bound, _mm256_mul_pd(beta, _mm256_cvtps_pd(ptk)));
      budget = _mm256_sub_pd(budget, beta);
    }
    _mm256_storeu_pd(out + l, bound);
  }
  if (l < count) {
    KnapsackBoundsScalar(pts, orders, stride, dims, skip_dim, coef, budget0,
                         frontier, members + l, count - l, out + l);
  }
#else
  KnapsackBoundsScalar(pts, orders, stride, dims, skip_dim, coef, budget0,
                       frontier, members, count, out);
#endif
}

// ---------------------------------------------------------------------
// Kernel 4 — packed id decode: out[i] = base + the i-th little-endian
// unsigned integer of `id_bytes` bytes (1, 2 or 4) in `src`. Integer
// widening is exact, so every backend is trivially bit-identical; the
// vector paths exist for decode throughput (a whole packed block per
// TA probe).
// ---------------------------------------------------------------------

/// Scalar reference.
inline void UnpackIdsScalar(const unsigned char* src, int id_bytes,
                            int32_t base, int count, int32_t* out) {
  for (int i = 0; i < count; ++i) {
    const unsigned char* p = src + static_cast<size_t>(i) * id_bytes;
    uint32_t v = 0;
    for (int b = 0; b < id_bytes; ++b) {
      v |= static_cast<uint32_t>(p[b]) << (8 * b);
    }
    out[i] = base + static_cast<int32_t>(v);
  }
}

inline void UnpackIds(const unsigned char* src, int id_bytes, int32_t base,
                      int count, int32_t* out) {
#if defined(FAIRMATCH_SIMD_AVX2)
  const __m256i vbase = _mm256_set1_epi32(base);
  int i = 0;
  if (id_bytes == 1) {
    for (; i + 8 <= count; i += 8) {
      const __m128i raw =
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + i));
      const __m256i v = _mm256_add_epi32(_mm256_cvtepu8_epi32(raw), vbase);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    }
  } else if (id_bytes == 2) {
    for (; i + 8 <= count; i += 8) {
      const __m128i raw = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(src + 2 * static_cast<size_t>(i)));
      const __m256i v = _mm256_add_epi32(_mm256_cvtepu16_epi32(raw), vbase);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    }
  } else if (id_bytes == 4) {
    for (; i + 8 <= count; i += 8) {
      const __m256i raw = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(src + 4 * static_cast<size_t>(i)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                          _mm256_add_epi32(raw, vbase));
    }
  }
  if (i < count) {
    UnpackIdsScalar(src + static_cast<size_t>(i) * id_bytes, id_bytes, base,
                    count - i, out + i);
  }
#elif defined(FAIRMATCH_SIMD_SSE2)
  const __m128i vbase = _mm_set1_epi32(base);
  const __m128i zero = _mm_setzero_si128();
  int i = 0;
  if (id_bytes == 1) {
    for (; i + 4 <= count; i += 4) {
      int32_t word;
      __builtin_memcpy(&word, src + i, 4);
      __m128i v = _mm_cvtsi32_si128(word);
      v = _mm_unpacklo_epi8(v, zero);
      v = _mm_unpacklo_epi16(v, zero);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                       _mm_add_epi32(v, vbase));
    }
  } else if (id_bytes == 2) {
    for (; i + 4 <= count; i += 4) {
      __m128i v = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(src + 2 * static_cast<size_t>(i)));
      v = _mm_unpacklo_epi16(v, zero);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                       _mm_add_epi32(v, vbase));
    }
  } else if (id_bytes == 4) {
    for (; i + 4 <= count; i += 4) {
      const __m128i raw = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(src + 4 * static_cast<size_t>(i)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                       _mm_add_epi32(raw, vbase));
    }
  }
  if (i < count) {
    UnpackIdsScalar(src + static_cast<size_t>(i) * id_bytes, id_bytes, base,
                    count - i, out + i);
  }
#elif defined(FAIRMATCH_SIMD_NEON)
  const int32x4_t vbase = vdupq_n_s32(base);
  int i = 0;
  if (id_bytes == 1) {
    for (; i + 8 <= count; i += 8) {
      const uint16x8_t w = vmovl_u8(vld1_u8(src + i));
      const int32x4_t lo = vreinterpretq_s32_u32(vmovl_u16(vget_low_u16(w)));
      const int32x4_t hi = vreinterpretq_s32_u32(vmovl_u16(vget_high_u16(w)));
      vst1q_s32(out + i, vaddq_s32(lo, vbase));
      vst1q_s32(out + i + 4, vaddq_s32(hi, vbase));
    }
  } else if (id_bytes == 2) {
    for (; i + 8 <= count; i += 8) {
      // Unaligned-safe byte load; little-endian lanes reinterpret as u16.
      const uint16x8_t w = vreinterpretq_u16_u8(
          vld1q_u8(src + 2 * static_cast<size_t>(i)));
      const int32x4_t lo = vreinterpretq_s32_u32(vmovl_u16(vget_low_u16(w)));
      const int32x4_t hi = vreinterpretq_s32_u32(vmovl_u16(vget_high_u16(w)));
      vst1q_s32(out + i, vaddq_s32(lo, vbase));
      vst1q_s32(out + i + 4, vaddq_s32(hi, vbase));
    }
  } else if (id_bytes == 4) {
    for (; i + 4 <= count; i += 4) {
      const int32x4_t raw = vreinterpretq_s32_u8(
          vld1q_u8(src + 4 * static_cast<size_t>(i)));
      vst1q_s32(out + i, vaddq_s32(raw, vbase));
    }
  }
  if (i < count) {
    UnpackIdsScalar(src + static_cast<size_t>(i) * id_bytes, id_bytes, base,
                    count - i, out + i);
  }
#else
  UnpackIdsScalar(src, id_bytes, base, count, out);
#endif
}

}  // namespace fairmatch::simd

#endif  // FAIRMATCH_COMMON_SIMD_H_

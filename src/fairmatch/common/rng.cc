#include "fairmatch/common/rng.h"

namespace fairmatch {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::Exponential(double rate) {
  std::exponential_distribution<double> dist(rate);
  return dist(engine_);
}

}  // namespace fairmatch

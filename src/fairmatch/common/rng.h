// Deterministic random number generation for workload synthesis.
//
// All generators in fairmatch take an explicit Rng so that every dataset,
// workload and experiment is reproducible from a single seed.
#ifndef FAIRMATCH_COMMON_RNG_H_
#define FAIRMATCH_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace fairmatch {

/// Thin wrapper around std::mt19937_64 with convenience distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal sample scaled by `stddev` around `mean`.
  double Gaussian(double mean, double stddev);

  /// Exponential sample with the given rate parameter.
  double Exponential(double rate);

  /// Underlying engine, for std::shuffle and friends.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace fairmatch

#endif  // FAIRMATCH_COMMON_RNG_H_

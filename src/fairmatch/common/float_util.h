// Floating-point helpers.
#ifndef FAIRMATCH_COMMON_FLOAT_UTIL_H_
#define FAIRMATCH_COMMON_FLOAT_UTIL_H_

#include <cmath>
#include <limits>

namespace fairmatch {

/// Smallest float >= x. Used when double-precision values (effective
/// function coefficients) are stored in float R-tree coordinates that
/// must remain valid *upper* bounds for branch-and-bound pruning.
inline float FloatUp(double x) {
  float f = static_cast<float>(x);
  if (static_cast<double>(f) < x) {
    f = std::nextafterf(f, std::numeric_limits<float>::infinity());
  }
  return f;
}

}  // namespace fairmatch

#endif  // FAIRMATCH_COMMON_FLOAT_UTIL_H_

// Recoverable, typed error propagation for the storage/engine stack.
//
// The library's CHECK macros (common/check.h) stay the answer for
// programmer error: a violated invariant aborts. Data-dependent
// failures — a page that fails to read, a checksum mismatch, a deadline
// that expired — are a different category: under a long-lived server
// they must abort ONE request, never the process. Status is the typed
// carrier for that category, and ErrorSink is how it travels.
//
// Threading a Status return through every storage accessor would churn
// dozens of hot signatures (and cost happy-path branches the perf
// parity suite forbids). Instead the stack uses a *sticky sink*: the
// ExecContext of a run owns an ErrorSink, the DiskManager at the bottom
// of the storage stack is pointed at it (set_error_sink), and every
// fault lands there as the run's first error. Read paths degrade to
// zero-filled pages (structurally safe: a zeroed page parses as an
// empty node / empty record list), matchers poll
// ExecContext::ShouldAbort() at their outer loops, and the adapter
// copies the sink's status into AssignResult::status. The happy path
// pays one null-pointer test per physical access and one bool test per
// outer loop.
#ifndef FAIRMATCH_COMMON_STATUS_H_
#define FAIRMATCH_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace fairmatch {

/// Failure classes of a run, canonical-status style. Everything here is
/// recoverable at the request boundary; none of these abort.
enum class ErrorCode {
  kOk = 0,
  /// A page or record was lost or failed verification (read returned a
  /// checksum mismatch, a decoded id was out of range, a node was
  /// malformed). Retrying may help only if the damage was in transfer.
  kDataLoss,
  /// A transient storage failure (an injected or real read/write error).
  /// Retrying the whole run is the expected recovery.
  kUnavailable,
  /// A resource budget was exhausted mid-run.
  kResourceExhausted,
  /// The run's deadline expired before it completed.
  kDeadlineExceeded,
  /// The caller violated a stateful contract (e.g. Matcher::Run()
  /// invoked twice on one instance). Retrying the same call cannot
  /// succeed; the caller must rebuild the violated state.
  kFailedPrecondition,
};

/// Stable identifier for logs/tests ("OK", "DATA_LOSS", ...).
inline const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kDataLoss:
      return "DATA_LOSS";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
  }
  return "UNKNOWN";
}

/// Error code + human-readable detail. Default-constructed is OK.
struct Status {
  ErrorCode code = ErrorCode::kOk;
  std::string message;

  bool ok() const { return code == ErrorCode::kOk; }

  static Status Ok() { return {}; }
  static Status DataLoss(std::string message) {
    return {ErrorCode::kDataLoss, std::move(message)};
  }
  static Status Unavailable(std::string message) {
    return {ErrorCode::kUnavailable, std::move(message)};
  }
  static Status ResourceExhausted(std::string message) {
    return {ErrorCode::kResourceExhausted, std::move(message)};
  }
  static Status DeadlineExceeded(std::string message) {
    return {ErrorCode::kDeadlineExceeded, std::move(message)};
  }
  static Status FailedPrecondition(std::string message) {
    return {ErrorCode::kFailedPrecondition, std::move(message)};
  }
};

/// Sticky first-error collector for one run. Not thread-safe: a sink
/// belongs to one ExecContext, which belongs to one lane (the same
/// single-lane rule as PerfCounters).
///
/// The FIRST reported error wins (it is the root cause; later errors
/// are usually knock-on effects of the zero-filled pages the storage
/// layer hands out after the first fault). All reports are counted.
class ErrorSink {
 public:
  ErrorSink() = default;

  ErrorSink(const ErrorSink&) = delete;
  ErrorSink& operator=(const ErrorSink&) = delete;

  /// Records an error. Keeps only the first; counts all.
  void Report(ErrorCode code, std::string message) {
    ++reports_;
    if (status_.ok()) {
      status_.code = code;
      status_.message = std::move(message);
    }
  }

  /// True once any error was reported. This is the single load matchers
  /// poll at their cancellation points.
  bool failed() const { return reports_ != 0; }

  /// The first reported error (OK when failed() is false).
  const Status& status() const { return status_; }

  /// Total errors reported, including suppressed knock-on ones.
  int64_t reports() const { return reports_; }

  void Reset() {
    status_ = Status();
    reports_ = 0;
  }

 private:
  Status status_;
  int64_t reports_ = 0;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_COMMON_STATUS_H_

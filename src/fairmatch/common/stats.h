// Performance counters and memory tracking for the experimental harness.
//
// The paper evaluates algorithms on three axes: I/O accesses (counted
// page reads/writes through the buffer pool), CPU time, and the maximum
// memory consumed by search structures (priority queues, pruned lists,
// TA states). PerfCounters collects the first axis; MemoryTracker the
// third. CPU time is measured by the bench harness with a steady clock.
#ifndef FAIRMATCH_COMMON_STATS_H_
#define FAIRMATCH_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace fairmatch {

/// Counters for simulated-disk traffic. One instance is shared by the
/// disk manager / buffer pool of each storage entity (object R-tree,
/// disk-resident function lists, ...).
struct PerfCounters {
  /// Physical page reads (buffer misses).
  int64_t page_reads = 0;
  /// Physical page writes (dirty evictions / flushes).
  int64_t page_writes = 0;
  /// Logical accesses satisfied by the buffer pool.
  int64_t buffer_hits = 0;
  /// Logical accesses total (hits + misses).
  int64_t logical_reads = 0;

  /// Total I/O accesses, the paper's headline metric.
  int64_t io_accesses() const { return page_reads + page_writes; }

  void Reset() { *this = PerfCounters(); }

  /// Human-readable one-liner for logs.
  std::string ToString() const;
};

/// Tracks the current and peak number of bytes held by an algorithm's
/// search structures. Algorithms report gross structure sizes at loop
/// boundaries via Set(); transient allocations inside one loop are
/// approximated by their peak via Add/Sub where convenient.
class MemoryTracker {
 public:
  /// Replaces the current usage estimate with `bytes`.
  void Set(size_t bytes) {
    current_ = bytes;
    if (current_ > peak_) peak_ = current_;
  }

  /// Adds `bytes` to the current estimate.
  void Add(size_t bytes) { Set(current_ + bytes); }

  /// Subtracts `bytes` (clamped at zero).
  void Sub(size_t bytes) { current_ = bytes > current_ ? 0 : current_ - bytes; }

  size_t current() const { return current_; }
  size_t peak() const { return peak_; }
  double peak_mb() const { return static_cast<double>(peak_) / (1024.0 * 1024.0); }

  void Reset() {
    current_ = 0;
    peak_ = 0;
  }

 private:
  size_t current_ = 0;
  size_t peak_ = 0;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_COMMON_STATS_H_

// CRC32 (the reflected 0xEDB88320 polynomial), shared by every layer
// that checks bytes for integrity: the packed function-list image's
// per-block checksums (topk/packed_function_lists.cc) and the simulated
// disk's optional per-page verify-on-read (storage/disk_manager.h).
//
// Streaming form: seed the state with 0xFFFFFFFF, feed any number of
// Crc32Update calls, xor the final state with 0xFFFFFFFF. Crc32Of is
// the one-shot convenience over one buffer.
#ifndef FAIRMATCH_COMMON_CRC32_H_
#define FAIRMATCH_COMMON_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace fairmatch {

inline uint32_t Crc32Update(uint32_t state, const void* data, size_t len) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    state = table[(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

inline uint32_t Crc32Of(const void* data, size_t len) {
  return Crc32Update(0xFFFFFFFFu, data, len) ^ 0xFFFFFFFFu;
}

}  // namespace fairmatch

#endif  // FAIRMATCH_COMMON_CRC32_H_

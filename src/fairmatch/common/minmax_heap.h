// Flat (array-backed) min-max heap [Atkinson et al., CACM 1986].
//
// A double-ended priority queue over one contiguous buffer: peek-min,
// pop-min, pop-max and push are all O(log n) with no per-node
// allocation. fairmatch uses it for capacity-bounded candidate queues
// (reverse_top1.h keeps the top-Omega candidates: the best is consumed
// from one end while the overflow is evicted from the other), where the
// seed's sorted std::vector paid O(n) per erase/insert.
//
// `Less` must be a strict total order for the pop sequence to be
// deterministic and identical to the sorted-vector behavior it
// replaces; fairmatch comparators always tie-break on ids.
#ifndef FAIRMATCH_COMMON_MINMAX_HEAP_H_
#define FAIRMATCH_COMMON_MINMAX_HEAP_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "fairmatch/common/check.h"

namespace fairmatch {

template <typename T, typename Less = std::less<T>>
class MinMaxHeap {
 public:
  MinMaxHeap() = default;
  explicit MinMaxHeap(Less less) : less_(std::move(less)) {}

  bool empty() const { return data_.empty(); }
  size_t size() const { return data_.size(); }
  size_t capacity() const { return data_.capacity(); }
  void clear() { data_.clear(); }
  void reserve(size_t n) { data_.reserve(n); }

  /// Smallest element (the "best" under fairmatch's best-first orders).
  const T& min() const {
    FAIRMATCH_DCHECK(!data_.empty());
    return data_[0];
  }

  /// Largest element.
  const T& max() const {
    FAIRMATCH_DCHECK(!data_.empty());
    return data_[MaxIndex()];
  }

  void push(const T& value) {
    data_.push_back(value);
    BubbleUp(data_.size() - 1);
  }

  /// Removes the smallest element.
  void pop_min() {
    FAIRMATCH_DCHECK(!data_.empty());
    RemoveAt(0);
  }

  /// Removes the largest element.
  void pop_max() {
    FAIRMATCH_DCHECK(!data_.empty());
    RemoveAt(MaxIndex());
  }

 private:
  // Level 0 (the root) is a min level; levels alternate. On min levels
  // every node is <= its subtree, on max levels >= .
  static bool IsMinLevel(size_t i) {
    int level = 0;
    for (size_t v = i + 1; v > 1; v >>= 1) level++;
    return (level & 1) == 0;
  }

  static size_t Parent(size_t i) { return (i - 1) / 2; }
  static bool HasGrandparent(size_t i) { return i >= 3; }
  static size_t Grandparent(size_t i) { return Parent(Parent(i)); }

  size_t MaxIndex() const {
    if (data_.size() == 1) return 0;
    if (data_.size() == 2) return 1;
    return less_(data_[1], data_[2]) ? 2 : 1;
  }

  void RemoveAt(size_t i) {
    const size_t last = data_.size() - 1;
    if (i != last) {
      data_[i] = std::move(data_[last]);
      data_.pop_back();
      TrickleDown(i);
    } else {
      data_.pop_back();
    }
  }

  void BubbleUp(size_t i) {
    if (i == 0) return;
    const size_t parent = Parent(i);
    if (IsMinLevel(i)) {
      if (less_(data_[parent], data_[i])) {
        std::swap(data_[i], data_[parent]);
        BubbleUpMax(parent);
      } else {
        BubbleUpMin(i);
      }
    } else {
      if (less_(data_[i], data_[parent])) {
        std::swap(data_[i], data_[parent]);
        BubbleUpMin(parent);
      } else {
        BubbleUpMax(i);
      }
    }
  }

  void BubbleUpMin(size_t i) {
    while (HasGrandparent(i)) {
      const size_t g = Grandparent(i);
      if (!less_(data_[i], data_[g])) break;
      std::swap(data_[i], data_[g]);
      i = g;
    }
  }

  void BubbleUpMax(size_t i) {
    while (HasGrandparent(i)) {
      const size_t g = Grandparent(i);
      if (!less_(data_[g], data_[i])) break;
      std::swap(data_[i], data_[g]);
      i = g;
    }
  }

  void TrickleDown(size_t i) {
    if (IsMinLevel(i)) {
      TrickleDownMin(i);
    } else {
      TrickleDownMax(i);
    }
  }

  // Index of the extreme (per `min`) element among the children and
  // grandchildren of i, or i itself when childless. Children of i are
  // 2i+1 and 2i+2; grandchildren are 4i+3 .. 4i+6.
  size_t ExtremeDescendant(size_t i, bool min) const {
    const size_t n = data_.size();
    const size_t c1 = 2 * i + 1;
    if (c1 >= n) return i;
    size_t best = c1;
    if (c1 + 1 < n && Extreme(c1 + 1, best, min)) best = c1 + 1;
    const size_t g1 = 4 * i + 3;
    for (size_t g = g1; g < n && g < g1 + 4; ++g) {
      if (Extreme(g, best, min)) best = g;
    }
    return best;
  }

  bool Extreme(size_t a, size_t b, bool min) const {
    return min ? less_(data_[a], data_[b]) : less_(data_[b], data_[a]);
  }

  void TrickleDownMin(size_t i) {
    while (true) {
      const size_t m = ExtremeDescendant(i, /*min=*/true);
      if (m == i) return;
      if (m <= 2 * i + 2) {  // direct child
        if (less_(data_[m], data_[i])) std::swap(data_[m], data_[i]);
        return;
      }
      // Grandchild.
      if (!less_(data_[m], data_[i])) return;
      std::swap(data_[m], data_[i]);
      const size_t p = Parent(m);
      if (less_(data_[p], data_[m])) std::swap(data_[m], data_[p]);
      i = m;
    }
  }

  void TrickleDownMax(size_t i) {
    while (true) {
      const size_t m = ExtremeDescendant(i, /*min=*/false);
      if (m == i) return;
      if (m <= 2 * i + 2) {  // direct child
        if (less_(data_[i], data_[m])) std::swap(data_[m], data_[i]);
        return;
      }
      // Grandchild.
      if (!less_(data_[i], data_[m])) return;
      std::swap(data_[m], data_[i]);
      const size_t p = Parent(m);
      if (less_(data_[m], data_[p])) std::swap(data_[m], data_[p]);
      i = m;
    }
  }

  std::vector<T> data_;
  Less less_;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_COMMON_MINMAX_HEAP_H_

#include "fairmatch/storage/mmap_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <new>

#include "fairmatch/storage/fault_injector.h"

#if defined(__unix__) || defined(__APPLE__)
#define FAIRMATCH_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace fairmatch {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

/// Consults the injector's map stream; true = refuse this attach.
bool InjectedMapFailure(FaultInjector* injector, const std::string& path,
                        std::string* error) {
  if (injector == nullptr) return false;
  Status status = injector->OnMap(path);
  if (status.ok()) return false;
  SetError(error, status.message);
  return true;
}

#if defined(FAIRMATCH_HAVE_MMAP)
/// Modification time in nanoseconds (platform-specific stat field).
uint64_t MtimeNs(const struct stat& st) {
#if defined(__APPLE__)
  return static_cast<uint64_t>(st.st_mtimespec.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(st.st_mtimespec.tv_nsec);
#else
  return static_cast<uint64_t>(st.st_mtim.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(st.st_mtim.tv_nsec);
#endif
}
#endif

}  // namespace

bool MmapFile::Map(const std::string& path, std::string* error,
                   FaultInjector* injector) {
  Reset();
  if (InjectedMapFailure(injector, path, error)) return false;
#if defined(FAIRMATCH_HAVE_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    SetError(error, "open failed for " + path + ": " + std::strerror(errno));
    return false;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    SetError(error, "fstat failed for " + path + ": " + std::strerror(errno));
    ::close(fd);
    return false;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    SetError(error, path + " is empty");
    ::close(fd);
    return false;
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (addr == MAP_FAILED) {
    SetError(error, "mmap failed for " + path + ": " + std::strerror(errno));
    return false;
  }
  data_ = static_cast<std::byte*>(addr);
  size_ = size;
  mapped_ = true;
  path_ = path;
  attach_mtime_ns_ = MtimeNs(st);
  return true;
#else
  // No OS mapping available: the owned-copy path is the only one.
  return Load(path, error, nullptr);
#endif
}

bool MmapFile::Load(const std::string& path, std::string* error,
                    FaultInjector* injector) {
  Reset();
  if (InjectedMapFailure(injector, path, error)) return false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    SetError(error, "fopen failed for " + path);
    return false;
  }
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end <= 0) {
    SetError(error, path + " is empty or unseekable");
    std::fclose(f);
    return false;
  }
  std::fseek(f, 0, SEEK_SET);
  const size_t size = static_cast<size_t>(end);
  std::byte* buffer = new (std::nothrow) std::byte[size];
  if (buffer == nullptr || std::fread(buffer, 1, size, f) != size) {
    SetError(error, "short read from " + path);
    delete[] buffer;
    std::fclose(f);
    return false;
  }
  std::fclose(f);
  data_ = buffer;
  size_ = size;
  mapped_ = false;
  path_ = path;
  return true;
}

bool MmapFile::SizeIntact(std::string* detail) const {
  if (!valid() || !mapped_) {
    if (!valid()) SetError(detail, "no file attached");
    return valid();
  }
#if defined(FAIRMATCH_HAVE_MMAP)
  struct stat st;
  if (::stat(path_.c_str(), &st) != 0 || st.st_size < 0) {
    // The file vanished out from under the mapping; the pages already
    // resident stay readable, but treat it as no longer intact.
    SetError(detail, "stat failed for " + path_ +
                         " (backing file vanished): " + std::strerror(errno));
    return false;
  }
  const auto now = static_cast<size_t>(st.st_size);
  if (now < size_) {
    SetError(detail, "backing file " + path_ + " shrank to " +
                         std::to_string(now) + " bytes under a " +
                         std::to_string(size_) +
                         "-byte mapping (tail pages would SIGBUS)");
    return false;
  }
  if (now > size_) {
    SetError(detail, "backing file " + path_ + " grew to " +
                         std::to_string(now) + " bytes past the attached " +
                         std::to_string(size_) +
                         " (external writer mutated the image)");
    return false;
  }
  if (MtimeNs(st) != attach_mtime_ns_) {
    SetError(detail, "backing file " + path_ +
                         " was rewritten in place since attach "
                         "(mtime changed at unchanged size)");
    return false;
  }
  return true;
#else
  return true;
#endif
}

void MmapFile::Reset() {
  if (data_ == nullptr) {
    path_.clear();
    return;
  }
#if defined(FAIRMATCH_HAVE_MMAP)
  if (mapped_) {
    ::munmap(data_, size_);
  } else {
    delete[] data_;
  }
#else
  delete[] data_;
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  path_.clear();
}

bool MmapFile::Write(const std::string& path, const void* bytes, size_t size,
                     std::string* error, bool durable) {
  // Temp-and-rename: readers of `path` only ever see the previous
  // complete image or the new complete image, never a torn hybrid.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    SetError(error, "fopen failed for " + tmp);
    return false;
  }
  bool ok = size == 0 || std::fwrite(bytes, 1, size, f) == size;
  if (ok && durable) {
    ok = std::fflush(f) == 0;
#if defined(FAIRMATCH_HAVE_MMAP)
    if (ok) ok = ::fsync(::fileno(f)) == 0;
#endif
  }
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    SetError(error, "short write to " + tmp);
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    SetError(error, "rename " + tmp + " -> " + path + " failed: " +
                        std::strerror(errno));
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace fairmatch

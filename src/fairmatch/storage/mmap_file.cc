#include "fairmatch/storage/mmap_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#define FAIRMATCH_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace fairmatch {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

bool MmapFile::Map(const std::string& path, std::string* error) {
  Reset();
#if defined(FAIRMATCH_HAVE_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    SetError(error, "open failed for " + path + ": " + std::strerror(errno));
    return false;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    SetError(error, "fstat failed for " + path + ": " + std::strerror(errno));
    ::close(fd);
    return false;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    SetError(error, path + " is empty");
    ::close(fd);
    return false;
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (addr == MAP_FAILED) {
    SetError(error, "mmap failed for " + path + ": " + std::strerror(errno));
    return false;
  }
  data_ = static_cast<std::byte*>(addr);
  size_ = size;
  mapped_ = true;
  return true;
#else
  // Portable fallback: read the whole file into an owned buffer.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    SetError(error, "fopen failed for " + path);
    return false;
  }
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end <= 0) {
    SetError(error, path + " is empty or unseekable");
    std::fclose(f);
    return false;
  }
  std::fseek(f, 0, SEEK_SET);
  const size_t size = static_cast<size_t>(end);
  std::byte* buffer = new (std::nothrow) std::byte[size];
  if (buffer == nullptr || std::fread(buffer, 1, size, f) != size) {
    SetError(error, "short read from " + path);
    delete[] buffer;
    std::fclose(f);
    return false;
  }
  std::fclose(f);
  data_ = buffer;
  size_ = size;
  mapped_ = false;
  return true;
#endif
}

void MmapFile::Reset() {
  if (data_ == nullptr) return;
#if defined(FAIRMATCH_HAVE_MMAP)
  if (mapped_) {
    ::munmap(data_, size_);
  } else {
    delete[] data_;
  }
#else
  delete[] data_;
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

bool MmapFile::Write(const std::string& path, const void* bytes, size_t size,
                     std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    SetError(error, "fopen failed for " + path);
    return false;
  }
  const bool ok = size == 0 || std::fwrite(bytes, 1, size, f) == size;
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    SetError(error, "short write to " + path);
    std::remove(path.c_str());
    return false;
  }
  return true;
}

}  // namespace fairmatch

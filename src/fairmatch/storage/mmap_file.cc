#include "fairmatch/storage/mmap_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <new>

#include "fairmatch/storage/fault_injector.h"

#if defined(__unix__) || defined(__APPLE__)
#define FAIRMATCH_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace fairmatch {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

/// Consults the injector's map stream; true = refuse this attach.
bool InjectedMapFailure(FaultInjector* injector, const std::string& path,
                        std::string* error) {
  if (injector == nullptr) return false;
  Status status = injector->OnMap(path);
  if (status.ok()) return false;
  SetError(error, status.message);
  return true;
}

}  // namespace

bool MmapFile::Map(const std::string& path, std::string* error,
                   FaultInjector* injector) {
  Reset();
  if (InjectedMapFailure(injector, path, error)) return false;
#if defined(FAIRMATCH_HAVE_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    SetError(error, "open failed for " + path + ": " + std::strerror(errno));
    return false;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    SetError(error, "fstat failed for " + path + ": " + std::strerror(errno));
    ::close(fd);
    return false;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    SetError(error, path + " is empty");
    ::close(fd);
    return false;
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (addr == MAP_FAILED) {
    SetError(error, "mmap failed for " + path + ": " + std::strerror(errno));
    return false;
  }
  data_ = static_cast<std::byte*>(addr);
  size_ = size;
  mapped_ = true;
  path_ = path;
  return true;
#else
  // No OS mapping available: the owned-copy path is the only one.
  return Load(path, error, nullptr);
#endif
}

bool MmapFile::Load(const std::string& path, std::string* error,
                    FaultInjector* injector) {
  Reset();
  if (InjectedMapFailure(injector, path, error)) return false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    SetError(error, "fopen failed for " + path);
    return false;
  }
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end <= 0) {
    SetError(error, path + " is empty or unseekable");
    std::fclose(f);
    return false;
  }
  std::fseek(f, 0, SEEK_SET);
  const size_t size = static_cast<size_t>(end);
  std::byte* buffer = new (std::nothrow) std::byte[size];
  if (buffer == nullptr || std::fread(buffer, 1, size, f) != size) {
    SetError(error, "short read from " + path);
    delete[] buffer;
    std::fclose(f);
    return false;
  }
  std::fclose(f);
  data_ = buffer;
  size_ = size;
  mapped_ = false;
  path_ = path;
  return true;
}

bool MmapFile::SizeIntact() const {
  if (!valid() || !mapped_) return valid();
#if defined(FAIRMATCH_HAVE_MMAP)
  struct stat st;
  if (::stat(path_.c_str(), &st) != 0 || st.st_size < 0) {
    // The file vanished out from under the mapping; the pages already
    // resident stay readable, but treat it as no longer intact.
    return false;
  }
  return static_cast<size_t>(st.st_size) >= size_;
#else
  return true;
#endif
}

void MmapFile::Reset() {
  if (data_ == nullptr) {
    path_.clear();
    return;
  }
#if defined(FAIRMATCH_HAVE_MMAP)
  if (mapped_) {
    ::munmap(data_, size_);
  } else {
    delete[] data_;
  }
#else
  delete[] data_;
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  path_.clear();
}

bool MmapFile::Write(const std::string& path, const void* bytes, size_t size,
                     std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    SetError(error, "fopen failed for " + path);
    return false;
  }
  const bool ok = size == 0 || std::fwrite(bytes, 1, size, f) == size;
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    SetError(error, "short write to " + path);
    std::remove(path.c_str());
    return false;
  }
  return true;
}

}  // namespace fairmatch

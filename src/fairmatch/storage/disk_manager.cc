#include "fairmatch/storage/disk_manager.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "fairmatch/common/crc32.h"
#include "fairmatch/storage/fault_injector.h"

namespace fairmatch {

namespace {

void SimulateLatency(int us) {
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

void DiskManager::CheckLive(PageId pid, const char* op) const {
  if (IsLive(pid)) return;
  std::fprintf(stderr,
               "DiskManager::%s: page %d is not live (%s; num_pages=%lld, "
               "live=%lld)\n",
               op, static_cast<int>(pid),
               pid < 0 || pid >= num_pages() ? "id out of range"
                                             : "already freed",
               static_cast<long long>(num_pages()),
               static_cast<long long>(num_live_pages()));
  std::abort();
}

void DiskManager::ReportBadPageRef(PageId pid, const char* origin) const {
  if (error_sink_ != nullptr) {
    error_sink_->Report(
        ErrorCode::kDataLoss,
        std::string(origin) + ": reference to non-live page " +
            std::to_string(pid) + " (num_pages=" +
            std::to_string(num_pages()) + ")");
  }
}

std::unique_ptr<PageData> DiskManager::TakePage() {
  if (!spare_.empty()) {
    std::unique_ptr<PageData> page = std::move(spare_.back());
    spare_.pop_back();
    return page;
  }
  return std::make_unique<PageData>();
}

PageId DiskManager::AllocatePage() {
  if (!free_list_.empty()) {
    PageId pid = free_list_.back();
    free_list_.pop_back();
    pages_[pid] = TakePage();
    std::memset(pages_[pid]->bytes, 0, kPageSize);
    if (verify_checksums_) crcs_[pid] = Crc32Of(pages_[pid]->bytes, kPageSize);
    return pid;
  }
  pages_.push_back(TakePage());
  std::memset(pages_.back()->bytes, 0, kPageSize);
  if (verify_checksums_) {
    crcs_.push_back(Crc32Of(pages_.back()->bytes, kPageSize));
  }
  return static_cast<PageId>(pages_.size() - 1);
}

void DiskManager::Recycle() {
  for (std::unique_ptr<PageData>& page : pages_) {
    if (page != nullptr) spare_.push_back(std::move(page));
  }
  pages_.clear();
  free_list_.clear();
  crcs_.clear();
  verify_checksums_ = false;
  fault_injector_ = nullptr;
  error_sink_ = nullptr;
}

void DiskManager::FreePage(PageId pid) {
  CheckLive(pid, "FreePage");
  pages_[pid].reset();
  free_list_.push_back(pid);
}

void DiskManager::set_verify_checksums(bool on) {
  verify_checksums_ = on;
  crcs_.clear();
  if (!on) return;
  crcs_.resize(pages_.size(), 0);
  for (size_t pid = 0; pid < pages_.size(); ++pid) {
    if (pages_[pid] != nullptr) {
      crcs_[pid] = Crc32Of(pages_[pid]->bytes, kPageSize);
    }
  }
}

Status DiskManager::ReadPage(PageId pid, std::byte* dst) const {
  CheckLive(pid, "ReadPage");
  SimulateLatency(io_latency_us_);
  std::memcpy(dst, pages_[pid]->bytes, kPageSize);
  if (fault_injector_ != nullptr) {
    int spike_us = 0;
    Status status = fault_injector_->OnRead(pid, dst, &spike_us);
    SimulateLatency(spike_us);
    if (!status.ok()) {
      std::memset(dst, 0, kPageSize);
      if (error_sink_ != nullptr) {
        error_sink_->Report(status.code, status.message);
      }
      return status;
    }
  }
  if (verify_checksums_ && Crc32Of(dst, kPageSize) != crcs_[pid]) {
    std::memset(dst, 0, kPageSize);
    Status status = Status::DataLoss("checksum mismatch reading page " +
                                     std::to_string(pid));
    if (error_sink_ != nullptr) {
      error_sink_->Report(status.code, status.message);
    }
    return status;
  }
  return Status::Ok();
}

Status DiskManager::WritePage(PageId pid, const std::byte* src) {
  CheckLive(pid, "WritePage");
  SimulateLatency(io_latency_us_);
  if (fault_injector_ != nullptr) {
    int spike_us = 0;
    Status status = fault_injector_->OnWrite(pid, &spike_us);
    SimulateLatency(spike_us);
    if (!status.ok()) {
      if (error_sink_ != nullptr) {
        error_sink_->Report(status.code, status.message);
      }
      return status;  // dropped: the page keeps its previous content
    }
  }
  std::memcpy(pages_[pid]->bytes, src, kPageSize);
  if (verify_checksums_) crcs_[pid] = Crc32Of(src, kPageSize);
  return Status::Ok();
}

}  // namespace fairmatch

#include "fairmatch/storage/disk_manager.h"

#include <chrono>
#include <thread>

namespace fairmatch {

namespace {

void SimulateLatency(int us) {
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

std::unique_ptr<PageData> DiskManager::TakePage() {
  if (!spare_.empty()) {
    std::unique_ptr<PageData> page = std::move(spare_.back());
    spare_.pop_back();
    return page;
  }
  return std::make_unique<PageData>();
}

PageId DiskManager::AllocatePage() {
  if (!free_list_.empty()) {
    PageId pid = free_list_.back();
    free_list_.pop_back();
    pages_[pid] = TakePage();
    std::memset(pages_[pid]->bytes, 0, kPageSize);
    return pid;
  }
  pages_.push_back(TakePage());
  std::memset(pages_.back()->bytes, 0, kPageSize);
  return static_cast<PageId>(pages_.size() - 1);
}

void DiskManager::Recycle() {
  for (std::unique_ptr<PageData>& page : pages_) {
    if (page != nullptr) spare_.push_back(std::move(page));
  }
  pages_.clear();
  free_list_.clear();
}

void DiskManager::FreePage(PageId pid) {
  FAIRMATCH_CHECK(IsLive(pid));
  pages_[pid].reset();
  free_list_.push_back(pid);
}

void DiskManager::ReadPage(PageId pid, std::byte* dst) const {
  FAIRMATCH_CHECK(IsLive(pid));
  SimulateLatency(io_latency_us_);
  std::memcpy(dst, pages_[pid]->bytes, kPageSize);
}

void DiskManager::WritePage(PageId pid, const std::byte* src) {
  FAIRMATCH_CHECK(IsLive(pid));
  SimulateLatency(io_latency_us_);
  std::memcpy(pages_[pid]->bytes, src, kPageSize);
}

}  // namespace fairmatch

// Read-only memory mapping of a file, with a portable fallback.
//
// The packed function-list format (topk/packed_function_lists.h) is an
// immutable byte image: build once, then query in place. MmapFile is
// the thin OS seam that turns a file of that image into a stable byte
// range — mmap(2) on POSIX systems (the kernel pages the image in and
// out; nothing is copied up front), or a plain read into an owned
// buffer elsewhere. Callers never branch on which path was taken: they
// get (data, size) either way, and `mapped()` only informs diagnostics
// and bench row labels.
//
// Unlike storage/disk_manager.h, this is a REAL file on the host
// filesystem, not the simulated counted-I/O disk: the packed store's
// probes are memory reads by design, which is exactly the property the
// scale bench measures against DiskFunctionStore's counted pages.
//
// Robustness notes:
//  * A mapped range is only as stable as the file behind it — if
//    another process truncates the file, touching pages past the new
//    end raises SIGBUS. SizeIntact() re-stats the file so callers can
//    detect the shrink as typed data loss before dereferencing.
//  * Load() is the always-available owned-copy path (the same code the
//    non-POSIX fallback uses): it trades the zero-copy property for
//    immunity to concurrent file mutation.
//  * Map()/Load() accept an optional FaultInjector whose OnMap stream
//    can deterministically refuse the attach (chaos testing).
#ifndef FAIRMATCH_STORAGE_MMAP_FILE_H_
#define FAIRMATCH_STORAGE_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <utility>

namespace fairmatch {

class FaultInjector;

/// A read-only byte range backed by a mapped (or loaded) file.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile() { Reset(); }

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept { MoveFrom(&other); }
  MmapFile& operator=(MmapFile&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(&other);
    }
    return *this;
  }

  /// Maps (POSIX) or loads `path` read-only. On failure returns false
  /// and, when `error` is non-null, stores a one-line reason. Any
  /// previous mapping is released first. When `injector` is non-null
  /// its OnMap stream may deterministically refuse the attach.
  bool Map(const std::string& path, std::string* error = nullptr,
           FaultInjector* injector = nullptr);

  /// Reads `path` into an owned buffer (never an OS mapping) — immune
  /// to the file being truncated or rewritten afterwards. Same failure
  /// contract as Map().
  bool Load(const std::string& path, std::string* error = nullptr,
            FaultInjector* injector = nullptr);

  /// Releases the mapping / buffer.
  void Reset();

  const std::byte* data() const { return data_; }
  size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }
  /// True when the range is an OS mapping rather than an owned copy.
  bool mapped() const { return mapped_; }
  /// Path this range was attached from (empty when not valid()).
  const std::string& path() const { return path_; }

  /// True when the backing file is still exactly the one attached. Only
  /// an OS mapping can change under the range (an owned copy is always
  /// intact); a false return means the bytes are no longer trustworthy —
  /// a shrink can SIGBUS on tail pages, a grown or rewritten file means
  /// some other writer mutated the image — and the caller should treat
  /// the range as data loss. Checks, in order: the file still stats,
  /// its size matches the attached size (shrink AND growth both fail),
  /// and its mtime is unchanged since attach (catches a same-size
  /// external rewrite). When `detail` is non-null it receives which
  /// check failed, suitable for a typed status message.
  bool SizeIntact(std::string* detail = nullptr) const;

  /// Writes `size` bytes to `path` via a temp file + atomic rename: a
  /// crash mid-write leaves either the old file or the new one, never a
  /// torn hybrid. With `durable` the bytes are fsynced before the
  /// rename (the write-ahead-log discipline; off for scratch images
  /// where the extra sync is pure cost). Returns false and fills
  /// `error` on failure.
  static bool Write(const std::string& path, const void* bytes, size_t size,
                    std::string* error = nullptr, bool durable = false);

 private:
  void MoveFrom(MmapFile* other) {
    data_ = other->data_;
    size_ = other->size_;
    mapped_ = other->mapped_;
    path_ = std::move(other->path_);
    attach_mtime_ns_ = other->attach_mtime_ns_;
    other->data_ = nullptr;
    other->size_ = 0;
    other->mapped_ = false;
    other->path_.clear();
    other->attach_mtime_ns_ = 0;
  }

  std::byte* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::string path_;
  /// Backing file mtime (ns) at attach time; SizeIntact() re-stats and
  /// compares to catch same-size external rewrites.
  uint64_t attach_mtime_ns_ = 0;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_STORAGE_MMAP_FILE_H_

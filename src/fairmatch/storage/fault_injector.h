// Deterministic, seeded storage-fault injection.
//
// A FaultInjector is attached to exactly one DiskManager (or consulted
// by an MmapFile attach) for the duration of one run and decides, per
// physical access, whether that access fails, delivers corrupted bytes,
// or stalls for a latency spike. Every decision is a pure function of
// (seed, access index, decision stream): the schedule is reproducible —
// re-running the same single-lane access sequence against the same seed
// injects exactly the same faults. That determinism is what the chaos
// suite and the fault_recovery bench figure build on: the serving layer
// seeds one injector per (request, attempt), so fault and retry counts
// are invariant under lane count and completion order.
//
// Fault model (all faults are *transfer* faults — the stored page
// stays intact, so a retried attempt can succeed):
//  * read failure  — the read returns kUnavailable; the caller sees a
//    zero-filled page.
//  * corruption    — the read delivers the page with a few bytes
//    flipped. Only detectable when the disk's per-page CRC verification
//    is on (DiskManager::set_verify_checksums), which turns it into a
//    typed kDataLoss; with verification off the flipped bytes are
//    silently consumed, exactly like real hardware.
//  * write failure — the write is dropped, kUnavailable.
//  * latency spike — the access additionally sleeps spike_us.
//
// Not thread-safe: an injector belongs to the one lane whose disk it is
// attached to, like the DiskManager itself.
#ifndef FAIRMATCH_STORAGE_FAULT_INJECTOR_H_
#define FAIRMATCH_STORAGE_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "fairmatch/common/status.h"
#include "fairmatch/common/types.h"

namespace fairmatch {

/// How a scheduled crash point takes the process down.
enum class CrashMode {
  /// Throw InjectedCrash: the stack unwinds out of the durable path and
  /// a test harness catches it — an in-process kill whose aftermath
  /// (the files on disk) is exactly what a real crash leaves behind.
  kThrow,
  /// raise SIGKILL: the subprocess crash-sweep mode — no unwinding, no
  /// destructors, the parent observes a genuinely killed child.
  kKill,
};

/// Thrown by a CrashMode::kThrow crash point. Deliberately NOT derived
/// from std::exception: nothing in the engine catches it by accident,
/// only a harness that asked for the crash.
struct InjectedCrash {
  int64_t durable_op = 0;  // the boundary index that died
  const char* site = "";   // which durable boundary (e.g. "wal append")
};

/// Fault schedule knobs. All rates are probabilities in [0, 1] applied
/// independently per physical access; all-zero rates = a disabled plan.
struct FaultInjectorOptions {
  /// Root of the deterministic decision schedule.
  uint64_t seed = 0;

  /// P(a physical read fails outright) — surfaces as kUnavailable.
  double read_fail_rate = 0.0;

  /// P(a physical read delivers flipped bytes). Detected (kDataLoss)
  /// only under DiskManager::set_verify_checksums(true).
  double corrupt_rate = 0.0;

  /// P(a physical write is dropped) — surfaces as kUnavailable.
  double write_fail_rate = 0.0;

  /// P(an access additionally sleeps spike_us). Latency only; never
  /// affects results.
  double spike_rate = 0.0;
  int spike_us = 0;

  /// Crash schedule over the *durable* op stream (real file writes,
  /// fsyncs and renames on the recovery path, storage/durable_file.h):
  /// die at the boundary with this 0-based index, -1 = never. A write
  /// boundary dies torn — a schedule-determined strict prefix of the
  /// bytes lands before the crash — so the sweep exercises every torn
  /// tail the format must truncate.
  int64_t crash_after_durable = -1;
  CrashMode crash_mode = CrashMode::kThrow;

  /// True when any fault can ever fire.
  bool active() const {
    return read_fail_rate > 0.0 || corrupt_rate > 0.0 ||
           write_fail_rate > 0.0 || spike_rate > 0.0 ||
           crash_after_durable >= 0;
  }
};

/// What actually fired (monotonic; snapshot freely).
struct FaultCounters {
  int64_t read_failures = 0;
  int64_t corruptions = 0;
  int64_t write_failures = 0;
  int64_t spikes = 0;

  /// Durable-op boundaries observed (writes + syncs + renames on the
  /// recovery path). Not a fault: a crash sweep counts one uncrashed
  /// run's boundaries, then schedules a crash at each index in turn.
  int64_t durable_ops = 0;

  /// Result-affecting faults (spikes excluded: they only cost time).
  int64_t injected() const {
    return read_failures + corruptions + write_failures;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectorOptions options) : options_(options) {}

  /// Derives an independent schedule seed from a base seed and two
  /// coordinates (the serving layer uses (request_id, attempt), so each
  /// retry of each request replays its own schedule regardless of which
  /// lane runs it or in what order).
  static uint64_t DeriveSeed(uint64_t base, uint64_t a, uint64_t b);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// One physical read of `pid`. May flip bytes in `page` (kPageSize
  /// bytes) in place; `*spike_us` gets the extra latency to sleep (0
  /// almost always). Returns OK or kUnavailable (read failure — the
  /// caller must discard/zero the page content).
  Status OnRead(PageId pid, std::byte* page, int* spike_us);

  /// One physical write of `pid`. Returns OK or kUnavailable (the write
  /// must be dropped).
  Status OnWrite(PageId pid, int* spike_us);

  /// One file-mapping attach (storage/mmap_file.h). Fails with the
  /// read-failure stream: returns kUnavailable when the map should be
  /// refused.
  Status OnMap(const std::string& path);

  /// One durable *write* boundary of `size` bytes (a real file write on
  /// the recovery path). Ticks the durable-op counter. Returns false
  /// normally (write all `size` bytes). Returns true when this boundary
  /// is the scheduled crash point: the caller must write only
  /// `*torn_prefix` bytes (a schedule-determined strict prefix,
  /// possibly 0) and then call Crash() — the torn record is exactly
  /// what a mid-write power cut leaves.
  bool OnDurableWrite(size_t size, size_t* torn_prefix);

  /// One durable non-write boundary (fsync, rename). Ticks the
  /// durable-op counter; true = this is the crash point, call Crash().
  bool OnDurablePoint();

  /// Dies per options().crash_mode: kThrow throws InjectedCrash{op,
  /// site}, kKill raises SIGKILL (never returns either way).
  [[noreturn]] void Crash(const char* site);

  const FaultCounters& counters() const { return counters_; }
  const FaultInjectorOptions& options() const { return options_; }

 private:
  /// Deterministic U[0,1) draw for decision stream `salt` of the
  /// current access index.
  double Unit(uint64_t salt) const;

  FaultInjectorOptions options_;
  FaultCounters counters_;
  uint64_t op_ = 0;  // physical-access index; one tick per access
  int64_t crashed_at_ = -1;  // durable-op index Crash() was armed for
};

}  // namespace fairmatch

#endif  // FAIRMATCH_STORAGE_FAULT_INJECTOR_H_

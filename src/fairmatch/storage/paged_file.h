// Fixed-size-record array stored on the simulated disk.
//
// Used for the disk-resident function representations of Section 7.6:
// per-dimension sorted coefficient lists and the function coefficient
// table. Records never span pages.
#ifndef FAIRMATCH_STORAGE_PAGED_FILE_H_
#define FAIRMATCH_STORAGE_PAGED_FILE_H_

#include <cstdint>
#include <vector>

#include "fairmatch/storage/buffer_pool.h"

namespace fairmatch {

/// An immutable-after-build array of `record_size`-byte records packed
/// into pages. Reads are counted through the owning buffer pool.
class PagedFile {
 public:
  /// `record_size` must be in (0, kPageSize].
  PagedFile(BufferPool* pool, int record_size);

  /// Appends a record during the build phase.
  void Append(const void* record);

  /// Finishes the build phase and flushes pages to disk.
  void Seal();

  /// Reads record `index` into `dst` (counted I/O via buffer pool).
  void Read(int64_t index, void* dst) const;

  /// Page that holds record `index` (for locality-aware readers).
  PageId PageOf(int64_t index) const;

  /// Sequential reader support: reads all records in page `page_index`
  /// (0-based within this file) appending them to `dst`.
  /// Returns the number of records read.
  int ReadPage(int64_t page_index, void* dst) const;

  int64_t num_records() const { return num_records_; }
  int64_t num_pages() const { return static_cast<int64_t>(pages_.size()); }
  int records_per_page() const { return records_per_page_; }

 private:
  BufferPool* pool_;
  int record_size_;
  int records_per_page_;
  int64_t num_records_ = 0;
  std::vector<PageId> pages_;
  bool sealed_ = false;
  // Build-phase tail page handle.
  PageHandle tail_;
  int tail_count_ = 0;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_STORAGE_PAGED_FILE_H_

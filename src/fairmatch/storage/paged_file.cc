#include "fairmatch/storage/paged_file.h"

#include <algorithm>
#include <cstring>

#include "fairmatch/common/check.h"

namespace fairmatch {

PagedFile::PagedFile(BufferPool* pool, int record_size)
    : pool_(pool), record_size_(record_size) {
  FAIRMATCH_CHECK(record_size_ > 0 && record_size_ <= kPageSize);
  records_per_page_ = kPageSize / record_size_;
}

void PagedFile::Append(const void* record) {
  FAIRMATCH_CHECK(!sealed_);
  if (tail_count_ == 0 || tail_count_ == records_per_page_) {
    tail_ = pool_->NewPage();
    pages_.push_back(tail_.page_id());
    tail_count_ = 0;
  }
  std::memcpy(tail_.mutable_bytes() + tail_count_ * record_size_, record,
              record_size_);
  tail_count_++;
  num_records_++;
}

void PagedFile::Seal() {
  FAIRMATCH_CHECK(!sealed_);
  tail_.Release();
  sealed_ = true;
  pool_->FlushAll();
}

void PagedFile::Read(int64_t index, void* dst) const {
  FAIRMATCH_CHECK(sealed_);
  if (index < 0 || index >= num_records_) {
    // Indices can be data-derived (a position read from a page that
    // was corrupt); inside a sinked run that is data loss, not a
    // programmer error. Hand back a zeroed record — every record type
    // above parses zeros safely — and let the run unwind.
    if (ErrorSink* sink = pool_->disk()->error_sink()) {
      sink->Report(ErrorCode::kDataLoss,
                   "PagedFile::Read: record index " + std::to_string(index) +
                       " out of range [0, " + std::to_string(num_records_) +
                       ")");
      std::memset(dst, 0, static_cast<size_t>(record_size_));
      return;
    }
    FAIRMATCH_CHECK(index >= 0 && index < num_records_);
  }
  int64_t page_index = index / records_per_page_;
  int slot = static_cast<int>(index % records_per_page_);
  PageHandle handle = pool_->FetchPage(pages_[page_index]);
  std::memcpy(dst, handle.bytes() + slot * record_size_, record_size_);
}

PageId PagedFile::PageOf(int64_t index) const {
  FAIRMATCH_CHECK(index >= 0 && index < num_records_);
  return pages_[index / records_per_page_];
}

int PagedFile::ReadPage(int64_t page_index, void* dst) const {
  FAIRMATCH_CHECK(sealed_);
  FAIRMATCH_CHECK(page_index >= 0 && page_index < num_pages());
  int64_t first = page_index * records_per_page_;
  int count = static_cast<int>(
      std::min<int64_t>(records_per_page_, num_records_ - first));
  PageHandle handle = pool_->FetchPage(pages_[page_index]);
  std::memcpy(dst, handle.bytes(), static_cast<size_t>(count) * record_size_);
  return count;
}

}  // namespace fairmatch

// LRU buffer pool over the simulated disk, with pin/unpin semantics and
// exact I/O accounting.
//
// Every page access goes through FetchPage(). A miss costs one physical
// read (PerfCounters::page_reads); evicting a dirty frame costs one
// physical write. A capacity of zero frames models the paper's "0%
// buffer" configuration: pages stay resident only while pinned and every
// fetch is a miss.
#ifndef FAIRMATCH_STORAGE_BUFFER_POOL_H_
#define FAIRMATCH_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <list>
#include <memory>
#include <unordered_map>

#include "fairmatch/common/stats.h"
#include "fairmatch/common/types.h"
#include "fairmatch/storage/disk_manager.h"

namespace fairmatch {

class BufferPool;

/// RAII pin on a buffered page. While alive, the page bytes stay valid.
/// Movable, not copyable.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, PageId pid, std::byte* bytes);
  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  /// Releases the pin early.
  void Release();

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return pid_; }
  const std::byte* bytes() const { return bytes_; }

  /// Mutable access; marks the frame dirty.
  std::byte* mutable_bytes();

 private:
  BufferPool* pool_ = nullptr;
  PageId pid_ = kInvalidPage;
  std::byte* bytes_ = nullptr;
};

/// LRU replacement buffer pool. Frames above capacity are tolerated while
/// pinned (a path of pinned pages may exceed a tiny buffer); they are
/// evicted as soon as they are unpinned.
///
/// Not thread-safe, even for concurrent FetchPage() of the same page:
/// every fetch moves LRU state and pin counts. A pool (and the
/// DiskManager and PerfCounters it is wired to) belongs to exactly one
/// execution lane; batch execution (engine/batch_runner.h) isolates
/// lanes by giving each its own storage stack rather than locking here,
/// which also keeps per-lane I/O counts deterministic.
class BufferPool {
 public:
  /// `capacity_frames` may be 0 (no caching). `counters` must outlive
  /// the pool.
  BufferPool(DiskManager* disk, size_t capacity_frames,
             PerfCounters* counters);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the page and returns a handle to its bytes.
  PageHandle FetchPage(PageId pid);

  /// Allocates a fresh page on disk, pins it, and marks it dirty.
  /// The initial write is counted when the frame is flushed.
  PageHandle NewPage();

  /// Drops the page from the buffer (without flushing) and frees it on
  /// disk. The page must not be pinned.
  void DeletePage(PageId pid);

  /// Flushes all dirty frames (counting writes) and drops clean frames.
  void FlushAll();

  /// Changes the capacity; evicts immediately if shrinking.
  void set_capacity(size_t capacity_frames);
  size_t capacity() const { return capacity_; }

  PerfCounters* counters() { return counters_; }
  DiskManager* disk() { return disk_; }

  /// Number of frames currently resident (diagnostics/tests).
  size_t resident_frames() const { return frames_.size(); }

 private:
  friend class PageHandle;

  struct Frame {
    std::unique_ptr<PageData> data;
    int pin_count = 0;
    bool dirty = false;
    // Position in lru_ when pin_count == 0; lru_.end() otherwise.
    std::list<PageId>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(PageId pid, bool dirty);
  void EvictIfNeeded();
  void FlushFrame(PageId pid, Frame& frame);

  DiskManager* disk_;
  size_t capacity_;
  PerfCounters* counters_;
  std::unordered_map<PageId, Frame> frames_;
  // Unpinned frames in LRU order (front = least recently used).
  std::list<PageId> lru_;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_STORAGE_BUFFER_POOL_H_

// LRU buffer pool over the simulated disk, with pin/unpin semantics and
// exact I/O accounting.
//
// Every page access goes through FetchPage(). A miss costs one physical
// read (PerfCounters::page_reads); evicting a dirty frame costs one
// physical write. A capacity of zero frames models the paper's "0%
// buffer" configuration: pages stay resident only while pinned and every
// fetch is a miss.
//
// The frame table is a sharded open-addressing hash (linear probing,
// backward-shift deletion) over a recycling frame arena, and the LRU is
// an intrusive doubly-linked list threaded through the frames. Fetch,
// pin and unpin are O(1) with no allocation on the steady-state path:
// frame slots and their 4 KB page blocks are recycled through a
// freelist, so eviction churn never touches the general allocator.
#ifndef FAIRMATCH_STORAGE_BUFFER_POOL_H_
#define FAIRMATCH_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "fairmatch/common/stats.h"
#include "fairmatch/common/types.h"
#include "fairmatch/storage/disk_manager.h"

namespace fairmatch {

class BufferPool;

/// RAII pin on a buffered page. While alive, the page bytes stay valid.
/// Movable, not copyable.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, PageId pid, std::byte* bytes);
  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  /// Releases the pin early.
  void Release();

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return pid_; }
  const std::byte* bytes() const { return bytes_; }

  /// Mutable access; marks the frame dirty.
  std::byte* mutable_bytes();

 private:
  BufferPool* pool_ = nullptr;
  PageId pid_ = kInvalidPage;
  std::byte* bytes_ = nullptr;
};

/// LRU replacement buffer pool. Frames above capacity are tolerated while
/// pinned (a path of pinned pages may exceed a tiny buffer); they are
/// evicted as soon as they are unpinned.
///
/// Not thread-safe, even for concurrent FetchPage() of the same page:
/// every fetch moves LRU state and pin counts. A pool (and the
/// DiskManager and PerfCounters it is wired to) belongs to exactly one
/// execution lane; batch execution (engine/batch_runner.h) isolates
/// lanes by giving each its own storage stack rather than locking here,
/// which also keeps per-lane I/O counts deterministic. (The shards
/// below are a cache-footprint measure — smaller probe tables — not a
/// locking domain.)
class BufferPool {
 public:
  /// `capacity_frames` may be 0 (no caching). `counters` must outlive
  /// the pool.
  BufferPool(DiskManager* disk, size_t capacity_frames,
             PerfCounters* counters);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the page and returns a handle to its bytes.
  PageHandle FetchPage(PageId pid);

  /// Allocates a fresh page on disk, pins it, and marks it dirty.
  /// The initial write is counted when the frame is flushed.
  PageHandle NewPage();

  /// Drops the page from the buffer (without flushing) and frees it on
  /// disk. The page must not be pinned.
  void DeletePage(PageId pid);

  /// Flushes all dirty frames (counting writes) and drops clean frames.
  void FlushAll();

  /// Changes the capacity; evicts immediately if shrinking.
  void set_capacity(size_t capacity_frames);
  size_t capacity() const { return capacity_; }

  PerfCounters* counters() { return counters_; }
  DiskManager* disk() { return disk_; }

  /// Number of frames currently resident (diagnostics/tests).
  size_t resident_frames() const { return resident_; }

 private:
  friend class PageHandle;

  static constexpr int32_t kNoFrame = -1;
  static constexpr int kShardBits = 3;
  static constexpr int kNumShards = 1 << kShardBits;

  struct Frame {
    PageId pid = kInvalidPage;  // kInvalidPage marks a free slot
    int32_t pin_count = 0;
    bool dirty = false;
    bool in_lru = false;
    int32_t lru_prev = kNoFrame;
    int32_t lru_next = kNoFrame;
    // Page bytes, stable across frame-arena growth; recycled with the
    // slot so steady-state eviction/fetch churn never allocates.
    std::unique_ptr<PageData> data;
  };

  /// One open-addressing shard: power-of-two bucket array of frame
  /// indices, linear probing, backward-shift deletion.
  struct Shard {
    std::vector<int32_t> buckets;  // kNoFrame = empty
    size_t used = 0;
  };

  static uint64_t Hash(PageId pid) {
    return static_cast<uint64_t>(static_cast<uint32_t>(pid)) *
           0x9E3779B97F4A7C15ull;
  }
  Shard& ShardFor(PageId pid) {
    return shards_[Hash(pid) >> (64 - kShardBits)];
  }

  /// Frame index of `pid`, or kNoFrame.
  int32_t Lookup(PageId pid);
  /// Maps `pid` to `frame` (must not be present). May grow the shard.
  void Insert(PageId pid, int32_t frame);
  /// Unmaps `pid` (must be present).
  void Erase(PageId pid);

  /// Takes a frame slot (recycled or fresh) with a ready data block.
  int32_t AllocFrame(PageId pid);
  /// Returns the slot (and its data block) to the freelist.
  void FreeFrame(int32_t frame);

  void LruPushBack(int32_t frame);
  void LruRemove(int32_t frame);

  void Unpin(PageId pid, bool dirty);
  void EvictIfNeeded();
  void FlushFrame(Frame& frame);

  DiskManager* disk_;
  size_t capacity_;
  PerfCounters* counters_;

  std::vector<Frame> frames_;         // arena; slots recycled
  std::vector<int32_t> free_frames_;  // freelist of arena slots
  size_t resident_ = 0;
  Shard shards_[kNumShards];
  // Intrusive LRU over unpinned frames (head = least recently used).
  int32_t lru_head_ = kNoFrame;
  int32_t lru_tail_ = kNoFrame;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_STORAGE_BUFFER_POOL_H_

// Crash-consistent file primitives for the recovery path.
//
// Everything the durable epoch machinery (src/fairmatch/recover/)
// writes goes through these helpers, which enforce the two disciplines
// crash consistency needs and make every one of them a deterministic
// crash point:
//  * write-then-fsync — a record is durable only after DurableSync()
//    returned; the WAL's commit point.
//  * atomic rename — whole-file replacement goes tmp + fsync + rename,
//    so a reader of the final name never sees a torn image.
//
// Crash points: when a FaultInjector with a crash schedule
// (FaultInjectorOptions::crash_after_durable) is passed, each write /
// sync / rename boundary ticks the durable-op counter and, at the
// scheduled index, dies per CrashMode — a write boundary first lands a
// schedule-determined strict prefix of its bytes, so the sweep
// exercises genuinely torn records. A null injector (or an unscheduled
// one) costs one counter tick per boundary and nothing else.
//
// POSIX is the real implementation; the portable fallback keeps the
// same API with stdio and no sync guarantee (good enough for the
// in-process tests that exist on such platforms).
#ifndef FAIRMATCH_STORAGE_DURABLE_FILE_H_
#define FAIRMATCH_STORAGE_DURABLE_FILE_H_

#include <cstddef>
#include <string>

namespace fairmatch {

class FaultInjector;

/// RAII file descriptor for the durable write paths. Move-only.
class DurableFile {
 public:
  DurableFile() = default;
  ~DurableFile() { Close(); }

  DurableFile(const DurableFile&) = delete;
  DurableFile& operator=(const DurableFile&) = delete;
  DurableFile(DurableFile&& other) noexcept { MoveFrom(&other); }
  DurableFile& operator=(DurableFile&& other) noexcept {
    if (this != &other) {
      Close();
      MoveFrom(&other);
    }
    return *this;
  }

  /// Opens `path` for appending, creating it (empty) when absent.
  static DurableFile OpenAppend(const std::string& path, std::string* error);

  /// Opens `path` for positioned writes (pwrite), creating when absent.
  static DurableFile OpenRw(const std::string& path, std::string* error);

  /// Creates/truncates `path` for writing from scratch.
  static DurableFile Create(const std::string& path, std::string* error);

  bool valid() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  void Close();

  /// One durable write boundary: appends `size` bytes at the end of the
  /// file. Crash point (torn: a prefix may land before the die).
  bool Append(const void* bytes, size_t size, FaultInjector* injector,
              const char* site, std::string* error);

  /// One durable write boundary at an absolute offset (the manifest's
  /// slot writes). Crash point (torn).
  bool WriteAt(const void* bytes, size_t size, long long offset,
               FaultInjector* injector, const char* site, std::string* error);

  /// One durable sync boundary: fsync. The commit point of everything
  /// appended before it. Crash point (the preceding writes are already
  /// in the file; what dies here is the *acknowledgement*).
  bool Sync(FaultInjector* injector, const char* site, std::string* error);

 private:
  void MoveFrom(DurableFile* other) {
    fd_ = other->fd_;
    path_ = std::move(other->path_);
    other->fd_ = -1;
    other->path_.clear();
  }

  int fd_ = -1;
  std::string path_;
};

/// One durable rename boundary: atomically moves `from` over `to` and
/// fsyncs the containing directory. Crash point (before the rename —
/// a crash leaves `from` in place and `to` untouched).
bool DurableRename(const std::string& from, const std::string& to,
                   FaultInjector* injector, const char* site,
                   std::string* error);

/// Whole-file replacement with full discipline: tmp file, one write
/// boundary, one sync boundary, one rename boundary.
bool DurableWriteFile(const std::string& path, const void* bytes, size_t size,
                      FaultInjector* injector, const char* site,
                      std::string* error);

/// Truncates `path` to `size` bytes (recovery's torn-tail cut before
/// re-appending; not a crash point — it runs during recovery, which is
/// idempotent from the start).
bool TruncateFile(const std::string& path, long long size,
                  std::string* error);

/// Reads all of `path` into `out`. Plain buffered reads (recovery-time
/// loads are not crash points). False + error when the file cannot be
/// read; an empty file reads as an empty string.
bool ReadFileBytes(const std::string& path, std::string* out,
                   std::string* error);

}  // namespace fairmatch

#endif  // FAIRMATCH_STORAGE_DURABLE_FILE_H_

#include "fairmatch/storage/durable_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "fairmatch/storage/fault_injector.h"

#if defined(__unix__) || defined(__APPLE__)
#define FAIRMATCH_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace fairmatch {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

#if defined(FAIRMATCH_HAVE_POSIX_IO)
/// write(2) until done (short writes are legal and must be resumed).
bool WriteFully(int fd, const char* bytes, size_t size, long long offset,
                bool positioned) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n =
        positioned
            ? ::pwrite(fd, bytes + done, size - done,
                       static_cast<off_t>(offset) + static_cast<off_t>(done))
            : ::write(fd, bytes + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

/// fsync the directory containing `path` so a rename within it is
/// itself durable. Best-effort: some filesystems refuse O_RDONLY
/// directory syncs; the rename still happened.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}
#endif

/// The shared write-boundary body: consult the crash schedule, land a
/// torn prefix when this boundary is the scheduled death, write.
bool BoundaryWrite(int fd, const void* bytes, size_t size, long long offset,
                   bool positioned, FaultInjector* injector, const char* site,
                   std::string* error, const std::string& path) {
#if defined(FAIRMATCH_HAVE_POSIX_IO)
  const char* p = static_cast<const char*>(bytes);
  size_t to_write = size;
  bool crash = false;
  if (injector != nullptr) {
    crash = injector->OnDurableWrite(size, &to_write);
  }
  if (!WriteFully(fd, p, to_write, offset, positioned)) {
    SetError(error, std::string("write failed for ") + path + ": " +
                        std::strerror(errno));
    return false;
  }
  if (crash) injector->Crash(site);
  return true;
#else
  (void)fd;
  (void)offset;
  (void)positioned;
  size_t to_write = size;
  bool crash = false;
  if (injector != nullptr) crash = injector->OnDurableWrite(size, &to_write);
  std::FILE* f = std::fopen(path.c_str(), positioned ? "r+b" : "ab");
  if (f == nullptr && positioned) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    SetError(error, "fopen failed for " + path);
    return false;
  }
  if (positioned) std::fseek(f, static_cast<long>(offset), SEEK_SET);
  const bool ok = to_write == 0 ||
                  std::fwrite(bytes, 1, to_write, f) == to_write;
  std::fclose(f);
  if (!ok) {
    SetError(error, "short write to " + path);
    return false;
  }
  if (crash) injector->Crash(site);
  return true;
#endif
}

}  // namespace

DurableFile DurableFile::OpenAppend(const std::string& path,
                                    std::string* error) {
  DurableFile file;
#if defined(FAIRMATCH_HAVE_POSIX_IO)
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    SetError(error, "open(append) failed for " + path + ": " +
                        std::strerror(errno));
    return file;
  }
  file.fd_ = fd;
#else
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    SetError(error, "fopen(append) failed for " + path);
    return file;
  }
  std::fclose(f);
  file.fd_ = 0;  // fallback: path-addressed stdio per call
#endif
  file.path_ = path;
  return file;
}

DurableFile DurableFile::OpenRw(const std::string& path, std::string* error) {
  DurableFile file;
#if defined(FAIRMATCH_HAVE_POSIX_IO)
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    SetError(error,
             "open(rw) failed for " + path + ": " + std::strerror(errno));
    return file;
  }
  file.fd_ = fd;
#else
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    SetError(error, "fopen(rw) failed for " + path);
    return file;
  }
  std::fclose(f);
  file.fd_ = 0;
#endif
  file.path_ = path;
  return file;
}

DurableFile DurableFile::Create(const std::string& path, std::string* error) {
  DurableFile file;
#if defined(FAIRMATCH_HAVE_POSIX_IO)
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    SetError(error,
             "create failed for " + path + ": " + std::strerror(errno));
    return file;
  }
  file.fd_ = fd;
#else
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    SetError(error, "create failed for " + path);
    return file;
  }
  std::fclose(f);
  file.fd_ = 0;
#endif
  file.path_ = path;
  return file;
}

void DurableFile::Close() {
#if defined(FAIRMATCH_HAVE_POSIX_IO)
  if (fd_ >= 0) ::close(fd_);
#endif
  fd_ = -1;
  path_.clear();
}

bool DurableFile::Append(const void* bytes, size_t size,
                         FaultInjector* injector, const char* site,
                         std::string* error) {
  return BoundaryWrite(fd_, bytes, size, /*offset=*/0, /*positioned=*/false,
                       injector, site, error, path_);
}

bool DurableFile::WriteAt(const void* bytes, size_t size, long long offset,
                          FaultInjector* injector, const char* site,
                          std::string* error) {
  return BoundaryWrite(fd_, bytes, size, offset, /*positioned=*/true, injector,
                       site, error, path_);
}

bool DurableFile::Sync(FaultInjector* injector, const char* site,
                       std::string* error) {
  if (injector != nullptr && injector->OnDurablePoint()) {
    // The crash lands before the fsync: the preceding writes sit in the
    // page cache (visible to the recovering process either way — what a
    // real machine might lose here is exactly what replay idempotence
    // absorbs: a record that was written but never acknowledged).
    injector->Crash(site);
  }
#if defined(FAIRMATCH_HAVE_POSIX_IO)
  if (::fsync(fd_) != 0) {
    SetError(error,
             "fsync failed for " + path_ + ": " + std::strerror(errno));
    return false;
  }
#endif
  return true;
}

bool DurableRename(const std::string& from, const std::string& to,
                   FaultInjector* injector, const char* site,
                   std::string* error) {
  if (injector != nullptr && injector->OnDurablePoint()) injector->Crash(site);
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    SetError(error, "rename " + from + " -> " + to + " failed: " +
                        std::strerror(errno));
    return false;
  }
#if defined(FAIRMATCH_HAVE_POSIX_IO)
  SyncParentDir(to);
#endif
  return true;
}

bool DurableWriteFile(const std::string& path, const void* bytes, size_t size,
                      FaultInjector* injector, const char* site,
                      std::string* error) {
  const std::string tmp = path + ".tmp";
  DurableFile file = DurableFile::Create(tmp, error);
  if (!file.valid()) return false;
  if (!file.Append(bytes, size, injector, site, error)) return false;
  if (!file.Sync(injector, site, error)) return false;
  file.Close();
  return DurableRename(tmp, path, injector, site, error);
}

bool TruncateFile(const std::string& path, long long size,
                  std::string* error) {
#if defined(FAIRMATCH_HAVE_POSIX_IO)
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    SetError(error, "truncate failed for " + path + ": " +
                        std::strerror(errno));
    return false;
  }
  return true;
#else
  std::string bytes;
  if (!ReadFileBytes(path, &bytes, error)) return false;
  if (static_cast<long long>(bytes.size()) < size) {
    SetError(error, "truncate target past end of " + path);
    return false;
  }
  bytes.resize(static_cast<size_t>(size));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    SetError(error, "fopen failed for " + path);
    return false;
  }
  const bool ok = bytes.empty() ||
                  std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  if (!ok) SetError(error, "short write to " + path);
  return ok;
#endif
}

bool ReadFileBytes(const std::string& path, std::string* out,
                   std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    SetError(error, "fopen failed for " + path);
    return false;
  }
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end < 0) {
    SetError(error, path + " is unseekable");
    std::fclose(f);
    return false;
  }
  std::fseek(f, 0, SEEK_SET);
  out->resize(static_cast<size_t>(end));
  const bool ok =
      end == 0 || std::fread(&(*out)[0], 1, out->size(), f) == out->size();
  std::fclose(f);
  if (!ok) {
    SetError(error, "short read from " + path);
    return false;
  }
  return true;
}

}  // namespace fairmatch

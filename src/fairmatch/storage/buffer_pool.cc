#include "fairmatch/storage/buffer_pool.h"

#include <cstring>
#include <utility>

#include "fairmatch/common/check.h"

namespace fairmatch {

PageHandle::PageHandle(BufferPool* pool, PageId pid, std::byte* bytes)
    : pool_(pool), pid_(pid), bytes_(bytes) {}

PageHandle::PageHandle(PageHandle&& other) noexcept
    : pool_(other.pool_), pid_(other.pid_), bytes_(other.bytes_) {
  other.pool_ = nullptr;
  other.bytes_ = nullptr;
  other.pid_ = kInvalidPage;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    pid_ = other.pid_;
    bytes_ = other.bytes_;
    other.pool_ = nullptr;
    other.bytes_ = nullptr;
    other.pid_ = kInvalidPage;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(pid_, /*dirty=*/false);
    pool_ = nullptr;
    bytes_ = nullptr;
    pid_ = kInvalidPage;
  }
}

std::byte* PageHandle::mutable_bytes() {
  FAIRMATCH_CHECK(pool_ != nullptr);
  const int32_t frame = pool_->Lookup(pid_);
  FAIRMATCH_CHECK(frame != BufferPool::kNoFrame);
  pool_->frames_[frame].dirty = true;
  return bytes_;
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity_frames,
                       PerfCounters* counters)
    : disk_(disk), capacity_(capacity_frames), counters_(counters) {}

BufferPool::~BufferPool() {
  // Intentionally no flush: dropping a pool discards counted state only;
  // the simulated disk already holds the last flushed content. Callers
  // that care about persistence call FlushAll() explicitly.
}

// --- frame table (sharded open addressing) ---------------------------

int32_t BufferPool::Lookup(PageId pid) {
  Shard& shard = ShardFor(pid);
  if (shard.buckets.empty()) return kNoFrame;
  const size_t mask = shard.buckets.size() - 1;
  size_t i = Hash(pid) & mask;
  while (true) {
    const int32_t frame = shard.buckets[i];
    if (frame == kNoFrame) return kNoFrame;
    if (frames_[frame].pid == pid) return frame;
    i = (i + 1) & mask;
  }
}

void BufferPool::Insert(PageId pid, int32_t frame) {
  Shard& shard = ShardFor(pid);
  // Grow at ~0.7 load (amortized; the only allocating path besides
  // frame-arena high-water growth).
  if (shard.buckets.empty() ||
      (shard.used + 1) * 10 >= shard.buckets.size() * 7) {
    const size_t new_size =
        shard.buckets.empty() ? 16 : shard.buckets.size() * 2;
    std::vector<int32_t> old = std::move(shard.buckets);
    shard.buckets.assign(new_size, kNoFrame);
    const size_t mask = new_size - 1;
    for (int32_t f : old) {
      if (f == kNoFrame) continue;
      size_t i = Hash(frames_[f].pid) & mask;
      while (shard.buckets[i] != kNoFrame) i = (i + 1) & mask;
      shard.buckets[i] = f;
    }
  }
  const size_t mask = shard.buckets.size() - 1;
  size_t i = Hash(pid) & mask;
  while (shard.buckets[i] != kNoFrame) {
    FAIRMATCH_DCHECK(frames_[shard.buckets[i]].pid != pid);
    i = (i + 1) & mask;
  }
  shard.buckets[i] = frame;
  shard.used++;
}

void BufferPool::Erase(PageId pid) {
  Shard& shard = ShardFor(pid);
  FAIRMATCH_CHECK(!shard.buckets.empty());
  const size_t mask = shard.buckets.size() - 1;
  size_t i = Hash(pid) & mask;
  while (true) {
    const int32_t frame = shard.buckets[i];
    FAIRMATCH_CHECK(frame != kNoFrame);
    if (frames_[frame].pid == pid) break;
    i = (i + 1) & mask;
  }
  // Backward-shift deletion: refill the hole with any later entry of
  // the probe chain whose ideal bucket is not cyclically inside
  // (hole, entry].
  size_t hole = i;
  size_t j = i;
  while (true) {
    j = (j + 1) & mask;
    const int32_t frame = shard.buckets[j];
    if (frame == kNoFrame) break;
    const size_t ideal = Hash(frames_[frame].pid) & mask;
    const bool movable = hole <= j ? (ideal <= hole || ideal > j)
                                   : (ideal <= hole && ideal > j);
    if (movable) {
      shard.buckets[hole] = frame;
      hole = j;
    }
  }
  shard.buckets[hole] = kNoFrame;
  shard.used--;
}

// --- frame arena and LRU ---------------------------------------------

int32_t BufferPool::AllocFrame(PageId pid) {
  int32_t frame;
  if (!free_frames_.empty()) {
    frame = free_frames_.back();
    free_frames_.pop_back();
  } else {
    frame = static_cast<int32_t>(frames_.size());
    frames_.emplace_back();
    frames_.back().data = std::make_unique<PageData>();
  }
  Frame& f = frames_[frame];
  f.pid = pid;
  f.pin_count = 0;
  f.dirty = false;
  f.in_lru = false;
  f.lru_prev = kNoFrame;
  f.lru_next = kNoFrame;
  resident_++;
  return frame;
}

void BufferPool::FreeFrame(int32_t frame) {
  frames_[frame].pid = kInvalidPage;
  free_frames_.push_back(frame);
  resident_--;
}

void BufferPool::LruPushBack(int32_t frame) {
  Frame& f = frames_[frame];
  f.lru_prev = lru_tail_;
  f.lru_next = kNoFrame;
  f.in_lru = true;
  if (lru_tail_ != kNoFrame) {
    frames_[lru_tail_].lru_next = frame;
  } else {
    lru_head_ = frame;
  }
  lru_tail_ = frame;
}

void BufferPool::LruRemove(int32_t frame) {
  Frame& f = frames_[frame];
  if (f.lru_prev != kNoFrame) {
    frames_[f.lru_prev].lru_next = f.lru_next;
  } else {
    lru_head_ = f.lru_next;
  }
  if (f.lru_next != kNoFrame) {
    frames_[f.lru_next].lru_prev = f.lru_prev;
  } else {
    lru_tail_ = f.lru_prev;
  }
  f.lru_prev = kNoFrame;
  f.lru_next = kNoFrame;
  f.in_lru = false;
}

// --- pool operations -------------------------------------------------

PageHandle BufferPool::FetchPage(PageId pid) {
  counters_->logical_reads++;
  int32_t frame = Lookup(pid);
  if (frame != kNoFrame) {
    counters_->buffer_hits++;
    Frame& f = frames_[frame];
    if (f.in_lru) LruRemove(frame);
    f.pin_count++;
    return PageHandle(this, pid, f.data->bytes);
  }
  // Miss: physical read (before any eviction writeback, matching the
  // counted access order of the original pool).
  counters_->page_reads++;
  frame = AllocFrame(pid);
  Frame& f = frames_[frame];
  if (!disk_->IsLive(pid) && disk_->has_error_sink()) {
    // A data-derived id (e.g. a child pointer decoded from a page that
    // was itself corrupt) pointing nowhere: typed error + a zeroed
    // frame instead of the liveness abort inside DiskManager::ReadPage.
    // Without a sink (no run to report to) the abort below stands —
    // that is a programmer error, not data loss.
    disk_->ReportBadPageRef(pid, "BufferPool::FetchPage");
    std::memset(f.data->bytes, 0, kPageSize);
  } else {
    // A faulted read (injected failure, checksum mismatch) already
    // zero-filled the frame and reported to the run's sink; the zeroed
    // page is structurally safe for every consumer, so the fetch
    // proceeds and the run unwinds at its next cancellation point.
    disk_->ReadPage(pid, f.data->bytes);
  }
  f.pin_count = 1;
  Insert(pid, frame);
  EvictIfNeeded();
  return PageHandle(this, pid, f.data->bytes);
}

PageHandle BufferPool::NewPage() {
  PageId pid = disk_->AllocatePage();
  const int32_t frame = AllocFrame(pid);
  Frame& f = frames_[frame];
  std::memset(f.data->bytes, 0, kPageSize);
  f.pin_count = 1;
  f.dirty = true;
  Insert(pid, frame);
  EvictIfNeeded();
  return PageHandle(this, pid, f.data->bytes);
}

void BufferPool::DeletePage(PageId pid) {
  const int32_t frame = Lookup(pid);
  if (frame != kNoFrame) {
    Frame& f = frames_[frame];
    FAIRMATCH_CHECK(f.pin_count == 0);
    if (f.in_lru) LruRemove(frame);
    Erase(pid);
    FreeFrame(frame);
  }
  if (!disk_->IsLive(pid) && disk_->has_error_sink()) {
    // Data-derived deletes (Chain frees nodes named by decoded child
    // pointers) may chase a corrupt id; degrade to a typed error
    // instead of DiskManager::FreePage's double-free abort. Without a
    // sink the abort stands (programmer error).
    disk_->ReportBadPageRef(pid, "BufferPool::DeletePage");
    return;
  }
  disk_->FreePage(pid);
}

void BufferPool::FlushAll() {
  for (int32_t frame = 0; frame < static_cast<int32_t>(frames_.size());
       ++frame) {
    Frame& f = frames_[frame];
    if (f.pid == kInvalidPage) continue;
    FAIRMATCH_CHECK(f.pin_count == 0);
    FlushFrame(f);
    if (f.in_lru) LruRemove(frame);
    Erase(f.pid);
    FreeFrame(frame);
  }
}

void BufferPool::set_capacity(size_t capacity_frames) {
  capacity_ = capacity_frames;
  EvictIfNeeded();
}

void BufferPool::Unpin(PageId pid, bool dirty) {
  const int32_t frame = Lookup(pid);
  FAIRMATCH_CHECK(frame != kNoFrame);
  Frame& f = frames_[frame];
  FAIRMATCH_CHECK(f.pin_count > 0);
  f.pin_count--;
  if (dirty) f.dirty = true;
  if (f.pin_count == 0) {
    LruPushBack(frame);
    EvictIfNeeded();
  }
}

void BufferPool::EvictIfNeeded() {
  while (resident_ > capacity_ && lru_head_ != kNoFrame) {
    const int32_t victim = lru_head_;
    LruRemove(victim);
    Frame& f = frames_[victim];
    FAIRMATCH_CHECK(f.pin_count == 0);
    FlushFrame(f);
    Erase(f.pid);
    FreeFrame(victim);
  }
}

void BufferPool::FlushFrame(Frame& frame) {
  if (frame.dirty) {
    counters_->page_writes++;
    disk_->WritePage(frame.pid, frame.data->bytes);
    frame.dirty = false;
  }
}

}  // namespace fairmatch

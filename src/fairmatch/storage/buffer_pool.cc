#include "fairmatch/storage/buffer_pool.h"

#include <utility>

#include "fairmatch/common/check.h"

namespace fairmatch {

PageHandle::PageHandle(BufferPool* pool, PageId pid, std::byte* bytes)
    : pool_(pool), pid_(pid), bytes_(bytes) {}

PageHandle::PageHandle(PageHandle&& other) noexcept
    : pool_(other.pool_), pid_(other.pid_), bytes_(other.bytes_) {
  other.pool_ = nullptr;
  other.bytes_ = nullptr;
  other.pid_ = kInvalidPage;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    pid_ = other.pid_;
    bytes_ = other.bytes_;
    other.pool_ = nullptr;
    other.bytes_ = nullptr;
    other.pid_ = kInvalidPage;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(pid_, /*dirty=*/false);
    pool_ = nullptr;
    bytes_ = nullptr;
    pid_ = kInvalidPage;
  }
}

std::byte* PageHandle::mutable_bytes() {
  FAIRMATCH_CHECK(pool_ != nullptr);
  auto it = pool_->frames_.find(pid_);
  FAIRMATCH_CHECK(it != pool_->frames_.end());
  it->second.dirty = true;
  return bytes_;
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity_frames,
                       PerfCounters* counters)
    : disk_(disk), capacity_(capacity_frames), counters_(counters) {}

BufferPool::~BufferPool() {
  // Intentionally no flush: dropping a pool discards counted state only;
  // the simulated disk already holds the last flushed content. Callers
  // that care about persistence call FlushAll() explicitly.
}

PageHandle BufferPool::FetchPage(PageId pid) {
  counters_->logical_reads++;
  auto it = frames_.find(pid);
  if (it != frames_.end()) {
    counters_->buffer_hits++;
    Frame& frame = it->second;
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    frame.pin_count++;
    return PageHandle(this, pid, frame.data->bytes);
  }
  // Miss: physical read.
  counters_->page_reads++;
  Frame frame;
  frame.data = std::make_unique<PageData>();
  disk_->ReadPage(pid, frame.data->bytes);
  frame.pin_count = 1;
  auto [ins, ok] = frames_.emplace(pid, std::move(frame));
  FAIRMATCH_CHECK(ok);
  EvictIfNeeded();
  return PageHandle(this, pid, ins->second.data->bytes);
}

PageHandle BufferPool::NewPage() {
  PageId pid = disk_->AllocatePage();
  Frame frame;
  frame.data = std::make_unique<PageData>();
  std::memset(frame.data->bytes, 0, kPageSize);
  frame.pin_count = 1;
  frame.dirty = true;
  auto [ins, ok] = frames_.emplace(pid, std::move(frame));
  FAIRMATCH_CHECK(ok);
  EvictIfNeeded();
  return PageHandle(this, pid, ins->second.data->bytes);
}

void BufferPool::DeletePage(PageId pid) {
  auto it = frames_.find(pid);
  if (it != frames_.end()) {
    FAIRMATCH_CHECK(it->second.pin_count == 0);
    if (it->second.in_lru) lru_.erase(it->second.lru_pos);
    frames_.erase(it);
  }
  disk_->FreePage(pid);
}

void BufferPool::FlushAll() {
  for (auto it = frames_.begin(); it != frames_.end();) {
    FAIRMATCH_CHECK(it->second.pin_count == 0);
    FlushFrame(it->first, it->second);
    if (it->second.in_lru) lru_.erase(it->second.lru_pos);
    it = frames_.erase(it);
  }
  lru_.clear();
}

void BufferPool::set_capacity(size_t capacity_frames) {
  capacity_ = capacity_frames;
  EvictIfNeeded();
}

void BufferPool::Unpin(PageId pid, bool dirty) {
  auto it = frames_.find(pid);
  FAIRMATCH_CHECK(it != frames_.end());
  Frame& frame = it->second;
  FAIRMATCH_CHECK(frame.pin_count > 0);
  frame.pin_count--;
  if (dirty) frame.dirty = true;
  if (frame.pin_count == 0) {
    frame.lru_pos = lru_.insert(lru_.end(), pid);
    frame.in_lru = true;
    EvictIfNeeded();
  }
}

void BufferPool::EvictIfNeeded() {
  while (frames_.size() > capacity_ && !lru_.empty()) {
    PageId victim = lru_.front();
    lru_.pop_front();
    auto it = frames_.find(victim);
    FAIRMATCH_CHECK(it != frames_.end());
    FAIRMATCH_CHECK(it->second.pin_count == 0);
    it->second.in_lru = false;
    FlushFrame(victim, it->second);
    frames_.erase(it);
  }
}

void BufferPool::FlushFrame(PageId pid, Frame& frame) {
  if (frame.dirty) {
    counters_->page_writes++;
    disk_->WritePage(pid, frame.data->bytes);
    frame.dirty = false;
  }
}

}  // namespace fairmatch

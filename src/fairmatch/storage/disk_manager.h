// Simulated disk: a collection of 4 KB pages held in memory.
//
// The paper's experiments measure I/O as *counted page accesses* against
// an R-tree with 4 KB pages behind an LRU buffer. We therefore simulate
// the disk in-process: pages are real byte blocks (data structures
// serialize into them), and every physical read/write is counted by the
// buffer pool that owns this disk. See DESIGN.md "Substitutions".
#ifndef FAIRMATCH_STORAGE_DISK_MANAGER_H_
#define FAIRMATCH_STORAGE_DISK_MANAGER_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <vector>

#include "fairmatch/common/check.h"
#include "fairmatch/common/types.h"

namespace fairmatch {

/// Raw content of one disk page.
struct PageData {
  std::byte bytes[kPageSize];
};

/// Allocates, frees and transfers fixed-size pages. Not thread-safe; all
/// fairmatch algorithms are single-threaded like the paper's.
class DiskManager {
 public:
  DiskManager() = default;

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a zeroed page and returns its id. Reuses freed pages.
  PageId AllocatePage();

  /// Returns a page to the free list. The page id may be recycled.
  void FreePage(PageId pid);

  /// Copies the page content into `dst` (kPageSize bytes).
  void ReadPage(PageId pid, std::byte* dst) const;

  /// Copies `src` (kPageSize bytes) into the page.
  void WritePage(PageId pid, const std::byte* src);

  /// Number of pages ever allocated (capacity of the simulated file,
  /// including freed pages). Used to size buffers as a % of the file.
  int64_t num_pages() const { return static_cast<int64_t>(pages_.size()); }

  /// Number of currently live (allocated, not freed) pages.
  int64_t num_live_pages() const {
    return num_pages() - static_cast<int64_t>(free_list_.size());
  }

  /// File size in bytes.
  int64_t size_bytes() const { return num_pages() * kPageSize; }

 private:
  bool IsLive(PageId pid) const {
    return pid >= 0 && pid < num_pages() && pages_[pid] != nullptr;
  }

  std::vector<std::unique_ptr<PageData>> pages_;
  std::vector<PageId> free_list_;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_STORAGE_DISK_MANAGER_H_

// Simulated disk: a collection of 4 KB pages held in memory.
//
// The paper's experiments measure I/O as *counted page accesses* against
// an R-tree with 4 KB pages behind an LRU buffer. We therefore simulate
// the disk in-process: pages are real byte blocks (data structures
// serialize into them), and every physical read/write is counted by the
// buffer pool that owns this disk. See DESIGN.md "Substitutions".
#ifndef FAIRMATCH_STORAGE_DISK_MANAGER_H_
#define FAIRMATCH_STORAGE_DISK_MANAGER_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <vector>

#include "fairmatch/common/check.h"
#include "fairmatch/common/types.h"

namespace fairmatch {

/// Raw content of one disk page.
struct PageData {
  std::byte bytes[kPageSize];
};

/// Allocates, frees and transfers fixed-size pages.
///
/// Not thread-safe: one DiskManager (like the buffer pool above it)
/// belongs to exactly one execution lane. Batch execution
/// (engine/batch_runner.h) gives every lane its own storage stack
/// instead of locking this one.
class DiskManager {
 public:
  DiskManager() = default;

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a zeroed page and returns its id. Reuses freed pages.
  PageId AllocatePage();

  /// Returns a page to the free list. The page id may be recycled.
  void FreePage(PageId pid);

  /// Parks every page buffer in an internal spare pool and resets the
  /// manager to its freshly constructed state: ids restart at zero and
  /// reallocated pages come back zeroed, so a recycled manager is
  /// observably identical to a new one — only the 4 KB allocations are
  /// saved. This is how BatchRunner lanes reuse one storage stack
  /// across consecutive items (engine/batch_runner.h) without touching
  /// the per-item determinism contract.
  void Recycle();

  /// Buffers parked by Recycle() and not yet handed back out.
  size_t spare_pages() const { return spare_.size(); }

  /// Copies the page content into `dst` (kPageSize bytes).
  void ReadPage(PageId pid, std::byte* dst) const;

  /// Copies `src` (kPageSize bytes) into the page.
  void WritePage(PageId pid, const std::byte* src);

  /// Per-physical-access latency, in microseconds. Zero (the default)
  /// keeps the disk a pure byte store, as in all paper experiments,
  /// where cost is *counted* rather than waited out. A positive value
  /// makes each ReadPage/WritePage block for that long, modeling a real
  /// device; the batch throughput bench uses this so that multi-lane
  /// runs overlap I/O stalls the way a real disk-resident deployment
  /// would. Counted I/O (PerfCounters) is unaffected.
  void set_io_latency_us(int us) { io_latency_us_ = us; }
  int io_latency_us() const { return io_latency_us_; }

  /// Number of pages ever allocated (capacity of the simulated file,
  /// including freed pages). Used to size buffers as a % of the file.
  int64_t num_pages() const { return static_cast<int64_t>(pages_.size()); }

  /// Number of currently live (allocated, not freed) pages.
  int64_t num_live_pages() const {
    return num_pages() - static_cast<int64_t>(free_list_.size());
  }

  /// File size in bytes.
  int64_t size_bytes() const { return num_pages() * kPageSize; }

 private:
  bool IsLive(PageId pid) const {
    return pid >= 0 && pid < num_pages() && pages_[pid] != nullptr;
  }

  /// A zero-filled page buffer: from the spare pool when available.
  std::unique_ptr<PageData> TakePage();

  std::vector<std::unique_ptr<PageData>> pages_;
  std::vector<PageId> free_list_;
  std::vector<std::unique_ptr<PageData>> spare_;  // parked by Recycle()
  int io_latency_us_ = 0;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_STORAGE_DISK_MANAGER_H_

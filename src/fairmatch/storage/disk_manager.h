// Simulated disk: a collection of 4 KB pages held in memory.
//
// The paper's experiments measure I/O as *counted page accesses* against
// an R-tree with 4 KB pages behind an LRU buffer. We therefore simulate
// the disk in-process: pages are real byte blocks (data structures
// serialize into them), and every physical read/write is counted by the
// buffer pool that owns this disk. See DESIGN.md "Substitutions".
//
// Fault surface: this is the single origin of typed storage errors for
// the layers above. A FaultInjector (storage/fault_injector.h) can be
// attached to fail/corrupt/delay accesses on a seeded schedule, and
// set_verify_checksums(true) maintains a per-page CRC32 side table so a
// corrupted read is *detected* (kDataLoss) instead of silently
// consumed. Failures never abort: ReadPage zero-fills the destination
// (a zeroed page parses as an empty node / empty record run everywhere
// above), reports to the attached ErrorSink, and returns a Status the
// buffer pool may also inspect. With no injector and checksums off
// (the default), behavior and cost are byte-identical to the plain
// byte store the parity suite pins.
//
// CHECK vs Status: liveness violations on ids that only a programming
// error can produce (double FreePage, a WritePage past the allocation
// frontier) still abort — with page-id/live-count diagnostics. Reads of
// data-*derived* ids are the caller's job to guard: BufferPool checks
// IsLive() first and degrades a bad id to kDataLoss.
#ifndef FAIRMATCH_STORAGE_DISK_MANAGER_H_
#define FAIRMATCH_STORAGE_DISK_MANAGER_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <vector>

#include "fairmatch/common/check.h"
#include "fairmatch/common/status.h"
#include "fairmatch/common/types.h"

namespace fairmatch {

class FaultInjector;

/// Raw content of one disk page.
struct PageData {
  std::byte bytes[kPageSize];
};

/// Allocates, frees and transfers fixed-size pages.
///
/// Not thread-safe: one DiskManager (like the buffer pool above it)
/// belongs to exactly one execution lane. Batch execution
/// (engine/batch_runner.h) gives every lane its own storage stack
/// instead of locking this one.
class DiskManager {
 public:
  DiskManager() = default;

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a zeroed page and returns its id. Reuses freed pages.
  PageId AllocatePage();

  /// Returns a page to the free list. The page id may be recycled.
  /// Aborts (with diagnostics) on a double free or an out-of-range id:
  /// frees are never data-derived.
  void FreePage(PageId pid);

  /// Parks every page buffer in an internal spare pool and resets the
  /// manager to its freshly constructed state: ids restart at zero and
  /// reallocated pages come back zeroed, so a recycled manager is
  /// observably identical to a new one — only the 4 KB allocations are
  /// saved. This is how BatchRunner lanes reuse one storage stack
  /// across consecutive items (engine/batch_runner.h) without touching
  /// the per-item determinism contract. Fault wiring (injector, sink,
  /// checksums) is also cleared: faults are per-run state.
  void Recycle();

  /// Buffers parked by Recycle() and not yet handed back out.
  size_t spare_pages() const { return spare_.size(); }

  /// Copies the page content into `dst` (kPageSize bytes). On a fault
  /// (injected read failure, checksum mismatch) `dst` is zero-filled —
  /// structurally safe for every consumer above — the error is
  /// reported to the attached sink, and the Status says what happened.
  /// Aborts on a non-live `pid`: data-derived ids must be guarded with
  /// IsLive() by the caller (BufferPool does).
  Status ReadPage(PageId pid, std::byte* dst) const;

  /// Copies `src` (kPageSize bytes) into the page. On an injected
  /// write failure the page keeps its previous content. Aborts on a
  /// non-live `pid`.
  Status WritePage(PageId pid, const std::byte* src);

  /// True when `pid` names a live (allocated, not freed) page. Public
  /// so callers handing over *data-derived* ids (a child pointer
  /// decoded from a page that may have been corrupt) can degrade an
  /// invalid id to a typed error instead of hitting the CHECK inside
  /// ReadPage.
  bool IsLive(PageId pid) const {
    return pid >= 0 && pid < num_pages() && pages_[pid] != nullptr;
  }

  /// Per-physical-access latency, in microseconds. Zero (the default)
  /// keeps the disk a pure byte store, as in all paper experiments,
  /// where cost is *counted* rather than waited out. A positive value
  /// makes each ReadPage/WritePage block for that long, modeling a real
  /// device; the batch throughput bench uses this so that multi-lane
  /// runs overlap I/O stalls the way a real disk-resident deployment
  /// would. Counted I/O (PerfCounters) is unaffected.
  void set_io_latency_us(int us) { io_latency_us_ = us; }
  int io_latency_us() const { return io_latency_us_; }

  /// Attaches (or detaches, nullptr) a fault injector consulted on
  /// every physical access. Not owned; per-run state (cleared by
  /// Recycle()).
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_ = injector;
  }
  FaultInjector* fault_injector() const { return fault_injector_; }

  /// Attaches (or detaches, nullptr) the sink that receives every
  /// fault as a typed error. Not owned; per-run state (cleared by
  /// Recycle()).
  void set_error_sink(ErrorSink* sink) { error_sink_ = sink; }
  bool has_error_sink() const { return error_sink_ != nullptr; }
  /// The attached sink (nullptr when detached). Layers above use it to
  /// report their own decode-level data loss (bad record index,
  /// malformed node) with precise messages.
  ErrorSink* error_sink() const { return error_sink_; }

  /// Maintains a CRC32 per page (computed on write/allocate, verified
  /// on read) so corrupted reads surface as kDataLoss. Off by default:
  /// the paper benches run the disk as a trusted byte store and the
  /// parity suite pins that happy path. Enabling mid-life checksums
  /// the currently live pages.
  void set_verify_checksums(bool on);
  bool verify_checksums() const { return verify_checksums_; }

  /// Reports a data-derived reference to a non-live page as kDataLoss
  /// to the attached sink (no-op on the page store itself). Callers
  /// use this right after an IsLive() guard fails.
  void ReportBadPageRef(PageId pid, const char* origin) const;

  /// Number of pages ever allocated (capacity of the simulated file,
  /// including freed pages). Used to size buffers as a % of the file.
  int64_t num_pages() const { return static_cast<int64_t>(pages_.size()); }

  /// Number of currently live (allocated, not freed) pages.
  int64_t num_live_pages() const {
    return num_pages() - static_cast<int64_t>(free_list_.size());
  }

  /// File size in bytes.
  int64_t size_bytes() const { return num_pages() * kPageSize; }

 private:
  /// Aborts with page-id/live-count diagnostics when `pid` is not
  /// live. `op` names the caller in the message.
  void CheckLive(PageId pid, const char* op) const;

  /// A zero-filled page buffer: from the spare pool when available.
  std::unique_ptr<PageData> TakePage();

  std::vector<std::unique_ptr<PageData>> pages_;
  std::vector<PageId> free_list_;
  std::vector<std::unique_ptr<PageData>> spare_;  // parked by Recycle()
  std::vector<uint32_t> crcs_;  // per-page CRC32; maintained when verifying
  int io_latency_us_ = 0;
  bool verify_checksums_ = false;
  FaultInjector* fault_injector_ = nullptr;
  ErrorSink* error_sink_ = nullptr;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_STORAGE_DISK_MANAGER_H_

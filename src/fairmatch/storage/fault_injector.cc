#include "fairmatch/storage/fault_injector.h"

#include "fairmatch/common/types.h"

namespace fairmatch {

namespace {

/// splitmix64 finalizer: a well-mixed 64-bit hash of the state.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Upper 53 bits as a uniform double in [0, 1).
double UnitFrom(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Decision streams: independent draws per access index.
constexpr uint64_t kReadStream = 0x72656164;    // which read fault fires
constexpr uint64_t kWriteStream = 0x77726974;   // whether a write drops
constexpr uint64_t kSpikeStream = 0x7370696B;   // whether to stall
constexpr uint64_t kDamageStream = 0x64616D67;  // where corruption lands

}  // namespace

uint64_t FaultInjector::DeriveSeed(uint64_t base, uint64_t a, uint64_t b) {
  return Mix64(Mix64(base ^ Mix64(a)) ^ Mix64(b));
}

double FaultInjector::Unit(uint64_t salt) const {
  return UnitFrom(Mix64(options_.seed ^ Mix64(op_ ^ (salt << 32))));
}

Status FaultInjector::OnRead(PageId pid, std::byte* page, int* spike_us) {
  *spike_us = 0;
  if (options_.spike_rate > 0.0 && Unit(kSpikeStream) < options_.spike_rate) {
    ++counters_.spikes;
    *spike_us = options_.spike_us;
  }
  const double u = Unit(kReadStream);
  const uint64_t op = op_++;
  if (u < options_.read_fail_rate) {
    ++counters_.read_failures;
    return Status::Unavailable("injected read failure on page " +
                               std::to_string(pid));
  }
  if (u < options_.read_fail_rate + options_.corrupt_rate) {
    ++counters_.corruptions;
    // Flip 1..8 bytes at schedule-determined offsets with nonzero masks.
    uint64_t damage = Mix64(options_.seed ^ Mix64(op ^ (kDamageStream << 32)));
    const int flips = 1 + static_cast<int>(damage & 7u);
    for (int i = 0; i < flips; ++i) {
      damage = Mix64(damage);
      const size_t offset = static_cast<size_t>(damage % kPageSize);
      const auto mask =
          static_cast<unsigned char>(((damage >> 32) & 0xFFu) | 1u);
      page[offset] ^= std::byte{mask};
    }
  }
  return Status::Ok();
}

Status FaultInjector::OnWrite(PageId pid, int* spike_us) {
  *spike_us = 0;
  if (options_.spike_rate > 0.0 && Unit(kSpikeStream) < options_.spike_rate) {
    ++counters_.spikes;
    *spike_us = options_.spike_us;
  }
  const double u = Unit(kWriteStream);
  ++op_;
  if (u < options_.write_fail_rate) {
    ++counters_.write_failures;
    return Status::Unavailable("injected write failure on page " +
                               std::to_string(pid));
  }
  return Status::Ok();
}

Status FaultInjector::OnMap(const std::string& path) {
  const double u = Unit(kReadStream);
  ++op_;
  if (u < options_.read_fail_rate) {
    ++counters_.read_failures;
    return Status::Unavailable("injected map failure for " + path);
  }
  return Status::Ok();
}

}  // namespace fairmatch

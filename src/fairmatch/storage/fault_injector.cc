#include "fairmatch/storage/fault_injector.h"

#include "fairmatch/common/types.h"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <unistd.h>
#else
#include <cstdlib>
#endif

namespace fairmatch {

namespace {

/// splitmix64 finalizer: a well-mixed 64-bit hash of the state.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Upper 53 bits as a uniform double in [0, 1).
double UnitFrom(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Decision streams: independent draws per access index.
constexpr uint64_t kReadStream = 0x72656164;    // which read fault fires
constexpr uint64_t kWriteStream = 0x77726974;   // whether a write drops
constexpr uint64_t kSpikeStream = 0x7370696B;   // whether to stall
constexpr uint64_t kDamageStream = 0x64616D67;  // where corruption lands

}  // namespace

uint64_t FaultInjector::DeriveSeed(uint64_t base, uint64_t a, uint64_t b) {
  return Mix64(Mix64(base ^ Mix64(a)) ^ Mix64(b));
}

double FaultInjector::Unit(uint64_t salt) const {
  return UnitFrom(Mix64(options_.seed ^ Mix64(op_ ^ (salt << 32))));
}

Status FaultInjector::OnRead(PageId pid, std::byte* page, int* spike_us) {
  *spike_us = 0;
  if (options_.spike_rate > 0.0 && Unit(kSpikeStream) < options_.spike_rate) {
    ++counters_.spikes;
    *spike_us = options_.spike_us;
  }
  const double u = Unit(kReadStream);
  const uint64_t op = op_++;
  if (u < options_.read_fail_rate) {
    ++counters_.read_failures;
    return Status::Unavailable("injected read failure on page " +
                               std::to_string(pid));
  }
  if (u < options_.read_fail_rate + options_.corrupt_rate) {
    ++counters_.corruptions;
    // Flip 1..8 bytes at schedule-determined offsets with nonzero masks.
    uint64_t damage = Mix64(options_.seed ^ Mix64(op ^ (kDamageStream << 32)));
    const int flips = 1 + static_cast<int>(damage & 7u);
    for (int i = 0; i < flips; ++i) {
      damage = Mix64(damage);
      const size_t offset = static_cast<size_t>(damage % kPageSize);
      const auto mask =
          static_cast<unsigned char>(((damage >> 32) & 0xFFu) | 1u);
      page[offset] ^= std::byte{mask};
    }
  }
  return Status::Ok();
}

Status FaultInjector::OnWrite(PageId pid, int* spike_us) {
  *spike_us = 0;
  if (options_.spike_rate > 0.0 && Unit(kSpikeStream) < options_.spike_rate) {
    ++counters_.spikes;
    *spike_us = options_.spike_us;
  }
  const double u = Unit(kWriteStream);
  ++op_;
  if (u < options_.write_fail_rate) {
    ++counters_.write_failures;
    return Status::Unavailable("injected write failure on page " +
                               std::to_string(pid));
  }
  return Status::Ok();
}

Status FaultInjector::OnMap(const std::string& path) {
  const double u = Unit(kReadStream);
  ++op_;
  if (u < options_.read_fail_rate) {
    ++counters_.read_failures;
    return Status::Unavailable("injected map failure for " + path);
  }
  return Status::Ok();
}

bool FaultInjector::OnDurableWrite(size_t size, size_t* torn_prefix) {
  const int64_t op = counters_.durable_ops++;
  *torn_prefix = size;
  if (op != options_.crash_after_durable) return false;
  // A strict prefix, schedule-determined: the sweep sees every torn
  // shape from "nothing landed" up to "one byte short of complete".
  const uint64_t h = Mix64(options_.seed ^ Mix64(static_cast<uint64_t>(op) ^
                                                 (kDamageStream << 32)));
  *torn_prefix = size == 0 ? 0 : static_cast<size_t>(h % size);
  crashed_at_ = op;
  return true;
}

bool FaultInjector::OnDurablePoint() {
  const int64_t op = counters_.durable_ops++;
  if (op != options_.crash_after_durable) return false;
  crashed_at_ = op;
  return true;
}

void FaultInjector::Crash(const char* site) {
  if (options_.crash_mode == CrashMode::kKill) {
#if defined(__unix__) || defined(__APPLE__)
    ::kill(::getpid(), SIGKILL);
    // SIGKILL cannot be handled; control never reaches here. Fall
    // through to the throw to satisfy [[noreturn]] on exotic platforms.
#else
    std::abort();
#endif
  }
  throw InjectedCrash{crashed_at_, site};
}

}  // namespace fairmatch

// Synthetic stand-ins for the paper's real datasets (see DESIGN.md
// "Substitutions"): the originals (Zillow crawl, NBA statistics dump)
// are not redistributable, so we generate sets that match their
// documented cardinality, dimensionality, skew and correlation shape —
// the properties the Figure 16 experiments exercise.
#ifndef FAIRMATCH_DATA_REAL_SIM_H_
#define FAIRMATCH_DATA_REAL_SIM_H_

#include <vector>

#include "fairmatch/common/rng.h"
#include "fairmatch/geom/point.h"

namespace fairmatch {

/// Zillow-like real-estate records, 5 attributes (bathrooms, bedrooms,
/// living area, price attractiveness, lot area), normalized to [0,1].
/// Heavily skewed with discretized room counts (many duplicates) and
/// log-normal sizes/prices, positively correlated through a latent
/// "property size" factor.
std::vector<Point> ZillowSim(int n, uint64_t seed);

/// NBA-like player-season statlines, 5 attributes (points, rebounds,
/// assists, steals, blocks), normalized to [0,1]. Heavy-tailed and
/// positively correlated through a latent skill factor, with a
/// guard/big "role" axis trading assists/steals against rebounds/blocks.
std::vector<Point> NbaSim(int n, uint64_t seed);

/// Cardinality of the paper's NBA dataset (12,278 player seasons).
inline constexpr int kNbaSize = 12278;

}  // namespace fairmatch

#endif  // FAIRMATCH_DATA_REAL_SIM_H_

// Synthetic workload generators following the skyline-literature
// methodology the paper uses (Börzsönyi et al.): independent, correlated
// and anti-correlated object sets, plus preference-function generators
// (independent simplex weights and the clustered Gaussian mixture of the
// Figure 12 experiment).
//
// Concurrency: every generator is a pure function of its arguments and
// the explicit Rng — no global or static state — so concurrent threads
// may generate in parallel as long as each passes its own Rng (batch
// lanes derive one from their item seed; see engine/batch_runner.h).
#ifndef FAIRMATCH_DATA_SYNTHETIC_H_
#define FAIRMATCH_DATA_SYNTHETIC_H_

#include <vector>

#include "fairmatch/assign/problem.h"
#include "fairmatch/common/rng.h"

namespace fairmatch {

/// Object attribute distribution (paper Section 7).
enum class Distribution {
  kIndependent,
  kCorrelated,
  kAntiCorrelated,
};

/// Parses "independent" / "correlated" / "anti" (prefix match).
Distribution ParseDistribution(const std::string& name);
const char* DistributionName(Distribution d);

/// Generates `n` points in [0,1]^dims.
std::vector<Point> GeneratePoints(Distribution distribution, int n, int dims,
                                  Rng* rng);

/// Generates `n` preference functions with independent weights uniform
/// on the simplex (coefficients sum to 1), capacity 1, gamma 1.
FunctionSet GenerateFunctions(int n, int dims, Rng* rng);

/// Clustered weights (Figure 12): `clusters` random centers; each
/// function picks a center and perturbs it with N(0, stddev) per
/// dimension, then re-normalizes.
FunctionSet GenerateClusteredFunctions(int n, int dims, int clusters,
                                       double stddev, Rng* rng);

/// Assigns uniform-random integer priorities in [1, max_gamma]
/// (Section 6.2).
void AssignPriorities(FunctionSet* fns, int max_gamma, Rng* rng);

/// Sets every function capacity to `k` (Section 6.1).
void SetFunctionCapacities(FunctionSet* fns, int k);

/// Builds a problem instance from points and functions.
AssignmentProblem MakeProblem(std::vector<Point> points, FunctionSet fns,
                              int object_capacity = 1);

}  // namespace fairmatch

#endif  // FAIRMATCH_DATA_SYNTHETIC_H_

#include "fairmatch/data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "fairmatch/common/check.h"

namespace fairmatch {

namespace {

float Clamp01(double v) {
  return static_cast<float>(std::min(1.0, std::max(0.0, v)));
}

/// Uniform sample from the (dims-1)-simplex via normalized exponentials.
void SimplexSample(int dims, Rng* rng, double* out) {
  double total = 0.0;
  for (int d = 0; d < dims; ++d) {
    out[d] = rng->Exponential(1.0);
    total += out[d];
  }
  for (int d = 0; d < dims; ++d) out[d] /= total;
}

Point IndependentPoint(int dims, Rng* rng) {
  Point p(dims);
  for (int d = 0; d < dims; ++d) p[d] = Clamp01(rng->Uniform());
  return p;
}

Point CorrelatedPoint(int dims, Rng* rng) {
  // Values close in all dimensions: a shared base plus small noise.
  double base = rng->Uniform();
  Point p(dims);
  for (int d = 0; d < dims; ++d) {
    p[d] = Clamp01(base + rng->Gaussian(0.0, 0.08));
  }
  return p;
}

Point AntiCorrelatedPoint(int dims, Rng* rng) {
  // Mass concentrated around the hyperplane sum(x) ~= t * dims: points
  // good in one dimension tend to be poor in the others.
  double frac[kMaxDims];
  for (int attempt = 0; attempt < 32; ++attempt) {
    SimplexSample(dims, rng, frac);
    double t = rng->Gaussian(0.5, 0.12);
    t = std::min(0.95, std::max(0.05, t));
    Point p(dims);
    bool ok = true;
    for (int d = 0; d < dims; ++d) {
      double v = frac[d] * t * dims;
      if (v > 1.0) {
        ok = false;
        break;
      }
      p[d] = Clamp01(v);
    }
    if (ok) return p;
  }
  // Fallback: clamped plane point (rare).
  SimplexSample(dims, rng, frac);
  Point p(dims);
  for (int d = 0; d < dims; ++d) p[d] = Clamp01(frac[d] * 0.5 * dims);
  return p;
}

}  // namespace

Distribution ParseDistribution(const std::string& name) {
  if (name.rfind("ind", 0) == 0) return Distribution::kIndependent;
  if (name.rfind("cor", 0) == 0) return Distribution::kCorrelated;
  return Distribution::kAntiCorrelated;
}

const char* DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kIndependent:
      return "independent";
    case Distribution::kCorrelated:
      return "correlated";
    case Distribution::kAntiCorrelated:
      return "anti-correlated";
  }
  return "?";
}

std::vector<Point> GeneratePoints(Distribution distribution, int n, int dims,
                                  Rng* rng) {
  FAIRMATCH_CHECK(dims >= 1 && dims <= kMaxDims);
  std::vector<Point> points;
  points.reserve(n);
  for (int i = 0; i < n; ++i) {
    switch (distribution) {
      case Distribution::kIndependent:
        points.push_back(IndependentPoint(dims, rng));
        break;
      case Distribution::kCorrelated:
        points.push_back(CorrelatedPoint(dims, rng));
        break;
      case Distribution::kAntiCorrelated:
        points.push_back(AntiCorrelatedPoint(dims, rng));
        break;
    }
  }
  return points;
}

FunctionSet GenerateFunctions(int n, int dims, Rng* rng) {
  FunctionSet fns;
  fns.reserve(n);
  double w[kMaxDims];
  for (int i = 0; i < n; ++i) {
    PrefFunction f;
    f.id = i;
    f.dims = dims;
    SimplexSample(dims, rng, w);
    for (int d = 0; d < dims; ++d) f.alpha[d] = w[d];
    fns.push_back(f);
  }
  return fns;
}

FunctionSet GenerateClusteredFunctions(int n, int dims, int clusters,
                                       double stddev, Rng* rng) {
  FAIRMATCH_CHECK(clusters >= 1);
  std::vector<std::array<double, kMaxDims>> centers(clusters);
  double w[kMaxDims];
  for (int c = 0; c < clusters; ++c) {
    SimplexSample(dims, rng, w);
    for (int d = 0; d < dims; ++d) centers[c][d] = w[d];
  }
  FunctionSet fns;
  fns.reserve(n);
  for (int i = 0; i < n; ++i) {
    int c = static_cast<int>(rng->UniformInt(0, clusters - 1));
    PrefFunction f;
    f.id = i;
    f.dims = dims;
    double total = 0.0;
    for (int d = 0; d < dims; ++d) {
      double v = std::max(0.0, centers[c][d] + rng->Gaussian(0.0, stddev));
      f.alpha[d] = v;
      total += v;
    }
    if (total <= 0.0) {
      for (int d = 0; d < dims; ++d) f.alpha[d] = 1.0 / dims;
    } else {
      for (int d = 0; d < dims; ++d) f.alpha[d] /= total;
    }
    fns.push_back(f);
  }
  return fns;
}

void AssignPriorities(FunctionSet* fns, int max_gamma, Rng* rng) {
  for (PrefFunction& f : *fns) {
    f.gamma = static_cast<double>(rng->UniformInt(1, max_gamma));
  }
}

void SetFunctionCapacities(FunctionSet* fns, int k) {
  for (PrefFunction& f : *fns) f.capacity = k;
}

AssignmentProblem MakeProblem(std::vector<Point> points, FunctionSet fns,
                              int object_capacity) {
  AssignmentProblem problem;
  FAIRMATCH_CHECK(!points.empty());
  FAIRMATCH_CHECK(!fns.empty());
  problem.dims = points[0].dims();
  problem.functions = std::move(fns);
  problem.objects.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    problem.objects.push_back(ObjectItem{static_cast<ObjectId>(i),
                                         points[i], object_capacity});
  }
  return problem;
}

}  // namespace fairmatch

#include "fairmatch/data/real_sim.h"

#include <algorithm>
#include <cmath>

namespace fairmatch {

namespace {

float Clamp01(double v) {
  return static_cast<float>(std::min(1.0, std::max(0.0, v)));
}

}  // namespace

std::vector<Point> ZillowSim(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Latent property size factor (log-normal-ish).
    double size = std::exp(rng.Gaussian(0.0, 0.6));
    // Discrete room counts correlated with size: many exact duplicates,
    // the skew that hurts top-1 search on the real Zillow data.
    int bedrooms = std::clamp(
        static_cast<int>(std::round(1.0 + 2.0 * size + rng.Gaussian(0, 0.7))),
        1, 8);
    int bathrooms = std::clamp(
        static_cast<int>(std::round(0.5 + 1.2 * size + rng.Gaussian(0, 0.5))),
        1, 6);
    // Living area (sqft-like), log-normal around the size factor.
    double area = 800.0 * size * std::exp(rng.Gaussian(0.0, 0.25));
    // Price grows superlinearly with area/rooms; attractiveness is the
    // inverted, normalized price (cheaper = better).
    double price =
        120.0 * std::pow(area, 1.1) * std::exp(rng.Gaussian(0.0, 0.4));
    // Lot area: very heavy tail (rural outliers).
    double lot = area * (1.5 + rng.Exponential(0.7));

    Point p(5);
    p[0] = Clamp01(bathrooms / 6.0);
    p[1] = Clamp01(bedrooms / 8.0);
    p[2] = Clamp01(std::log(area / 300.0) / std::log(40.0));
    p[3] = Clamp01(1.0 - std::log(price / 2.0e4) / std::log(500.0));
    p[4] = Clamp01(std::log(lot / 400.0) / std::log(120.0));
    points.push_back(p);
  }
  return points;
}

std::vector<Point> NbaSim(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Latent per-season skill: most players are role players, few stars.
    double u = rng.Uniform();
    double skill = u * u;  // heavy concentration near 0
    // Role axis: 0 = big man (rebounds/blocks), 1 = guard
    // (assists/steals).
    double role = rng.Uniform();

    double pts = 30.0 * skill * std::exp(rng.Gaussian(0.0, 0.35));
    double reb = 14.0 * skill * (1.2 - role) * std::exp(rng.Gaussian(0, 0.4));
    double ast = 11.0 * skill * (0.2 + role) * std::exp(rng.Gaussian(0, 0.4));
    double stl = 2.5 * skill * (0.4 + 0.6 * role) *
                 std::exp(rng.Gaussian(0.0, 0.5));
    double blk = 3.5 * skill * (1.1 - role) * std::exp(rng.Gaussian(0, 0.6));

    Point p(5);
    p[0] = Clamp01(pts / 35.0);
    p[1] = Clamp01(reb / 16.0);
    p[2] = Clamp01(ast / 12.0);
    p[3] = Clamp01(stl / 3.0);
    p[4] = Clamp01(blk / 4.0);
    points.push_back(p);
  }
  return points;
}

}  // namespace fairmatch

#include "fairmatch/rtree/node_store.h"

#include <cmath>
#include <utility>

#include "fairmatch/common/check.h"

namespace fairmatch {

NodeHandle::NodeHandle(PageHandle page, int dims, bool writable)
    : page_(std::move(page)), dims_(dims), writable_(writable) {
  pid_ = page_.page_id();
  bytes_ = writable_ ? page_.mutable_bytes()
                     : const_cast<std::byte*>(page_.bytes());
}

NodeHandle::NodeHandle(std::byte* bytes, PageId pid, int dims, bool writable)
    : bytes_(bytes), pid_(pid), dims_(dims), writable_(writable) {}

NodeHandle::NodeHandle(NodeHandle&& other) noexcept
    : page_(std::move(other.page_)),
      bytes_(other.bytes_),
      pid_(other.pid_),
      dims_(other.dims_),
      writable_(other.writable_) {
  other.bytes_ = nullptr;
  other.pid_ = kInvalidPage;
}

NodeHandle& NodeHandle::operator=(NodeHandle&& other) noexcept {
  if (this != &other) {
    page_ = std::move(other.page_);
    bytes_ = other.bytes_;
    pid_ = other.pid_;
    dims_ = other.dims_;
    writable_ = other.writable_;
    other.bytes_ = nullptr;
    other.pid_ = kInvalidPage;
  }
  return *this;
}

void NodeHandle::Release() {
  page_.Release();
  bytes_ = nullptr;
  pid_ = kInvalidPage;
}

PagedNodeStore::PagedNodeStore(int dims, size_t buffer_frames,
                               PerfCounters* counters, DiskManager* disk)
    : NodeStore(dims),
      disk_(disk != nullptr ? disk : &own_disk_),
      counters_(counters != nullptr ? counters : &own_counters_),
      pool_(disk_, buffer_frames, counters_) {}

NodeHandle PagedNodeStore::Read(PageId pid) {
  NodeHandle handle(pool_.FetchPage(pid), dims(), /*writable=*/false);
  return GuardMalformed(std::move(handle), pid, /*writable=*/false);
}

NodeHandle PagedNodeStore::Write(PageId pid) {
  NodeHandle handle(pool_.FetchPage(pid), dims(), /*writable=*/true);
  return GuardMalformed(std::move(handle), pid, /*writable=*/true);
}

NodeHandle PagedNodeStore::GuardMalformed(NodeHandle handle, PageId pid,
                                          bool writable) {
  // Inside a sinked run, a header that cannot describe a node (count
  // past capacity, absurd level) is data loss — reading its entries
  // would run off the 4 KB page. Degrade to a stable zeroed node (an
  // empty leaf: every traversal terminates on it) and let the run
  // unwind at its next cancellation point. Without a sink the bytes
  // pass through untouched, as the seed did: trusted callers never see
  // malformed pages and pay nothing here beyond the header test.
  ErrorSink* sink = disk_->error_sink();
  if (sink == nullptr || handle.view().IsWellFormed()) return handle;
  sink->Report(ErrorCode::kDataLoss,
               "PagedNodeStore: malformed node header on page " +
                   std::to_string(pid));
  std::memset(zero_node_.bytes, 0, kPageSize);
  return NodeHandle(zero_node_.bytes, pid, dims(), writable);
}

PageId PagedNodeStore::Allocate() {
  PageHandle handle = pool_.NewPage();
  return handle.page_id();
}

void PagedNodeStore::Free(PageId pid) { pool_.DeletePage(pid); }

void PagedNodeStore::SetBufferFraction(double fraction) {
  auto frames = static_cast<size_t>(
      std::llround(fraction * static_cast<double>(disk_->num_pages())));
  pool_.set_capacity(frames);
}

void PagedNodeStore::ResetCounters() {
  pool_.FlushAll();
  counters_->Reset();
}

NodeHandle MemNodeStore::Read(PageId pid) {
  return NodeHandle(BytesOf(pid), pid, dims(), /*writable=*/false);
}

NodeHandle MemNodeStore::Write(PageId pid) {
  return NodeHandle(BytesOf(pid), pid, dims(), /*writable=*/true);
}

PageId MemNodeStore::Allocate() {
  if (!free_list_.empty()) {
    PageId pid = free_list_.back();
    free_list_.pop_back();
    pages_[pid] = std::make_unique<PageData>();
    std::memset(pages_[pid]->bytes, 0, kPageSize);
    return pid;
  }
  pages_.push_back(std::make_unique<PageData>());
  std::memset(pages_.back()->bytes, 0, kPageSize);
  return static_cast<PageId>(pages_.size() - 1);
}

void MemNodeStore::Free(PageId pid) {
  FAIRMATCH_CHECK(pid >= 0 && pid < num_pages() && pages_[pid] != nullptr);
  pages_[pid].reset();
  free_list_.push_back(pid);
}

void MemNodeStore::CopyFrom(const MemNodeStore& other) {
  FAIRMATCH_CHECK(dims() == other.dims());
  pages_.clear();
  pages_.reserve(other.pages_.size());
  for (const std::unique_ptr<PageData>& page : other.pages_) {
    if (page == nullptr) {
      pages_.push_back(nullptr);
      continue;
    }
    pages_.push_back(std::make_unique<PageData>());
    std::memcpy(pages_.back()->bytes, page->bytes, kPageSize);
  }
  free_list_ = other.free_list_;
}

void MemNodeStore::Adopt(MemNodeStore* donor) {
  FAIRMATCH_CHECK(dims() == donor->dims());
  pages_.swap(donor->pages_);
  free_list_.swap(donor->free_list_);
}

void MemNodeStore::RestoreInit(int64_t num_pages) {
  pages_.clear();
  free_list_.clear();
  pages_.resize(static_cast<size_t>(num_pages));
}

std::byte* MemNodeStore::RestorePage(PageId pid) {
  FAIRMATCH_CHECK(pid >= 0 && pid < num_pages() && pages_[pid] == nullptr);
  pages_[pid] = std::make_unique<PageData>();
  std::memset(pages_[pid]->bytes, 0, kPageSize);
  return pages_[pid]->bytes;
}

void MemNodeStore::RestoreFreeList(std::vector<PageId> order) {
  free_list_ = std::move(order);
}

std::byte* MemNodeStore::BytesOf(PageId pid) {
  FAIRMATCH_CHECK(pid >= 0 && pid < num_pages() && pages_[pid] != nullptr);
  return pages_[pid]->bytes;
}

}  // namespace fairmatch

#include "fairmatch/rtree/node.h"

#include <cstddef>
#include <cstring>

#include "fairmatch/common/check.h"

namespace fairmatch {

namespace {
constexpr int kHeaderSize = 4;

int16_t ReadI16(const std::byte* p) {
  int16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void WriteI16(std::byte* p, int16_t v) { std::memcpy(p, &v, sizeof(v)); }

int32_t ReadI32(const std::byte* p) {
  int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void WriteI32(std::byte* p, int32_t v) { std::memcpy(p, &v, sizeof(v)); }

float ReadF32(const std::byte* p) {
  float v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void WriteF32(std::byte* p, float v) { std::memcpy(p, &v, sizeof(v)); }
}  // namespace

int NodeView::LeafCapacity(int dims) {
  return (kPageSize - kHeaderSize) / (4 * dims + 4);
}

int NodeView::InternalCapacity(int dims) {
  return (kPageSize - kHeaderSize) / (8 * dims + 4);
}

int NodeView::level() const { return ReadI16(bytes_); }

int NodeView::count() const { return ReadI16(bytes_ + 2); }

void NodeView::set_count(int count) {
  FAIRMATCH_DCHECK(writable_);
  WriteI16(bytes_ + 2, static_cast<int16_t>(count));
}

void NodeView::Init(int level) {
  FAIRMATCH_DCHECK(writable_);
  WriteI16(bytes_, static_cast<int16_t>(level));
  WriteI16(bytes_ + 2, 0);
}

int NodeView::entry_size() const {
  return is_leaf() ? 4 * dims_ + 4 : 8 * dims_ + 4;
}

std::byte* NodeView::entry_ptr(int i) const {
  return bytes_ + kHeaderSize + static_cast<ptrdiff_t>(i) * entry_size();
}

Point NodeView::leaf_point(int i) const {
  FAIRMATCH_DCHECK(is_leaf());
  FAIRMATCH_DCHECK(i >= 0 && i < count());
  Point p(dims_);
  const std::byte* e = entry_ptr(i);
  for (int d = 0; d < dims_; ++d) p[d] = ReadF32(e + 4 * d);
  return p;
}

MBR NodeView::entry_mbr(int i) const {
  FAIRMATCH_DCHECK(i >= 0 && i < count());
  const std::byte* e = entry_ptr(i);
  if (is_leaf()) {
    Point p(dims_);
    for (int d = 0; d < dims_; ++d) p[d] = ReadF32(e + 4 * d);
    return MBR(p);
  }
  Point lo(dims_);
  Point hi(dims_);
  for (int d = 0; d < dims_; ++d) {
    lo[d] = ReadF32(e + 4 * d);
    hi[d] = ReadF32(e + 4 * (dims_ + d));
  }
  return MBR(lo, hi);
}

int32_t NodeView::child(int i) const {
  FAIRMATCH_DCHECK(i >= 0 && i < count());
  const std::byte* e = entry_ptr(i);
  return ReadI32(e + (is_leaf() ? 4 * dims_ : 8 * dims_));
}

void NodeView::AppendEntry(const MBR& mbr, int32_t child) {
  if (is_leaf()) {
    AppendLeaf(mbr.lo(), child);
  } else {
    AppendInternal(mbr, child);
  }
}

void NodeView::AppendLeaf(const Point& p, ObjectId id) {
  FAIRMATCH_DCHECK(writable_);
  FAIRMATCH_DCHECK(is_leaf());
  int n = count();
  FAIRMATCH_CHECK(n < capacity());
  std::byte* e = entry_ptr(n);
  for (int d = 0; d < dims_; ++d) WriteF32(e + 4 * d, p[d]);
  WriteI32(e + 4 * dims_, id);
  set_count(n + 1);
}

void NodeView::AppendInternal(const MBR& mbr, PageId child_pid) {
  FAIRMATCH_DCHECK(writable_);
  FAIRMATCH_DCHECK(!is_leaf());
  int n = count();
  FAIRMATCH_CHECK(n < capacity());
  SetInternalEntryAtUnchecked(n, mbr, child_pid);
  set_count(n + 1);
}

void NodeView::SetInternalEntry(int i, const MBR& mbr, PageId child_pid) {
  FAIRMATCH_DCHECK(i >= 0 && i < count());
  SetInternalEntryAtUnchecked(i, mbr, child_pid);
}

void NodeView::SetInternalEntryAtUnchecked(int i, const MBR& mbr,
                                           PageId child_pid) {
  FAIRMATCH_DCHECK(writable_);
  FAIRMATCH_DCHECK(!is_leaf());
  std::byte* e = entry_ptr(i);
  for (int d = 0; d < dims_; ++d) {
    WriteF32(e + 4 * d, mbr.lo()[d]);
    WriteF32(e + 4 * (dims_ + d), mbr.hi()[d]);
  }
  WriteI32(e + 8 * dims_, child_pid);
}

void NodeView::RemoveEntry(int i) {
  FAIRMATCH_DCHECK(writable_);
  int n = count();
  FAIRMATCH_DCHECK(i >= 0 && i < n);
  if (i != n - 1) {
    std::memcpy(entry_ptr(i), entry_ptr(n - 1),
                static_cast<size_t>(entry_size()));
  }
  set_count(n - 1);
}

MBR NodeView::ComputeMBR() const {
  MBR box = MBR::Empty(dims_);
  for (int i = 0; i < count(); ++i) box.Expand(entry_mbr(i));
  return box;
}

}  // namespace fairmatch

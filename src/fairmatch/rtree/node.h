// On-page R-tree node layout and accessors.
//
// A node occupies exactly one 4 KB page:
//
//   offset 0 : int16  level   (0 = leaf)
//   offset 2 : int16  count
//   offset 4 : packed entries
//
// Leaf entry     : D floats (point)            + int32 object id
// Internal entry : D floats lo + D floats hi   + int32 child page id
//
// NodeView is a zero-copy accessor over the page bytes; serialization
// happens exactly at the simulated-disk boundary (buffer pool frames hold
// the same byte layout that is "on disk").
#ifndef FAIRMATCH_RTREE_NODE_H_
#define FAIRMATCH_RTREE_NODE_H_

#include <cstdint>

#include "fairmatch/geom/mbr.h"
#include "fairmatch/geom/point.h"

namespace fairmatch {

/// Lightweight view over a node page. Cheap to copy; does not own the
/// bytes. Mutating methods require the view to be writable.
class NodeView {
 public:
  NodeView(std::byte* bytes, int dims, bool writable)
      : bytes_(bytes), dims_(dims), writable_(writable) {}

  /// Maximum number of entries in a leaf node for dimensionality `dims`.
  static int LeafCapacity(int dims);
  /// Maximum number of entries in an internal node.
  static int InternalCapacity(int dims);

  int level() const;
  int count() const;
  bool is_leaf() const { return level() == 0; }

  /// Structural sanity of the header: level in [0, 64) and count in
  /// [0, capacity]. False means the page bytes cannot be a node (e.g.
  /// corruption that slipped past checksums) and reading entries would
  /// run off the page; callers on untrusted read paths
  /// (PagedNodeStore::Read) check this before handing the node out.
  bool IsWellFormed() const {
    const int lvl = level();
    if (lvl < 0 || lvl >= 64) return false;
    const int n = count();
    return n >= 0 && n <= capacity();
  }
  int dims() const { return dims_; }
  int capacity() const {
    return is_leaf() ? LeafCapacity(dims_) : InternalCapacity(dims_);
  }

  /// Resets the node to an empty node at `level`.
  void Init(int level);

  /// Point stored in leaf entry `i`.
  Point leaf_point(int i) const;

  /// MBR of entry `i` (degenerate point box for leaf entries).
  MBR entry_mbr(int i) const;

  /// Child page id (internal) or object id (leaf) of entry `i`.
  int32_t child(int i) const;

  /// Appends an entry. For leaves, `mbr` must be degenerate (lo used as
  /// the point). Node must have free capacity.
  void AppendEntry(const MBR& mbr, int32_t child);

  void AppendLeaf(const Point& p, ObjectId id);
  void AppendInternal(const MBR& mbr, PageId child_pid);

  /// Overwrites internal entry `i`.
  void SetInternalEntry(int i, const MBR& mbr, PageId child_pid);

  /// Removes entry `i` by swapping the last entry into its slot.
  void RemoveEntry(int i);

  /// Tight bounding box over all entries.
  MBR ComputeMBR() const;

 private:
  int entry_size() const;
  std::byte* entry_ptr(int i) const;
  void set_count(int count);
  void SetInternalEntryAtUnchecked(int i, const MBR& mbr, PageId child_pid);

  std::byte* bytes_;
  int dims_;
  bool writable_;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_RTREE_NODE_H_

// Sort-Tile-Recursive (STR) bulk loading for the R-tree.
#include <algorithm>
#include <cmath>
#include <functional>

#include "fairmatch/common/check.h"
#include "fairmatch/rtree/rtree.h"

namespace fairmatch {

namespace {

// Recursively tiles `items` into groups of at most `cap`, sorting each
// slab on successive dimensions. `key(item, dim)` extracts the sort key.
template <typename Item, typename KeyFn>
void StrTile(std::vector<Item>& items, int begin, int end, int dim, int dims,
             int cap, const KeyFn& key,
             const std::function<void(int, int)>& emit) {
  int n = end - begin;
  if (n <= cap) {
    if (n > 0) emit(begin, end);
    return;
  }
  if (dim == dims - 1) {
    std::sort(items.begin() + begin, items.begin() + end,
              [&](const Item& a, const Item& b) {
                return key(a, dim) < key(b, dim);
              });
    for (int i = begin; i < end; i += cap) {
      emit(i, std::min(i + cap, end));
    }
    return;
  }
  std::sort(items.begin() + begin, items.begin() + end,
            [&](const Item& a, const Item& b) {
              return key(a, dim) < key(b, dim);
            });
  double pages = std::ceil(static_cast<double>(n) / cap);
  int remaining_dims = dims - dim;
  int slabs = static_cast<int>(
      std::ceil(std::pow(pages, 1.0 / remaining_dims)));
  slabs = std::max(1, slabs);
  int slab_size = (n + slabs - 1) / slabs;
  for (int i = begin; i < end; i += slab_size) {
    StrTile(items, i, std::min(i + slab_size, end), dim + 1, dims, cap, key,
            emit);
  }
}

}  // namespace

void RTree::BulkLoad(std::vector<ObjectRecord> items, double fill_factor) {
  FAIRMATCH_CHECK(size_ == 0);
  FAIRMATCH_CHECK(fill_factor > 0.0 && fill_factor <= 1.0);
  if (items.empty()) return;
  const int dims = store_->dims();

  int leaf_cap = std::max(
      1, static_cast<int>(NodeView::LeafCapacity(dims) * fill_factor));
  int internal_cap = std::max(
      2, static_cast<int>(NodeView::InternalCapacity(dims) * fill_factor));

  // Pack points into leaves.
  std::vector<std::pair<MBR, PageId>> level_entries;
  StrTile(
      items, 0, static_cast<int>(items.size()), 0, dims, leaf_cap,
      [](const ObjectRecord& rec, int dim) { return rec.point[dim]; },
      [&](int begin, int end) {
        PageId pid = store_->Allocate();
        NodeHandle h = store_->Write(pid);
        NodeView node = h.view();
        node.Init(0);
        MBR box = MBR::Empty(dims);
        for (int i = begin; i < end; ++i) {
          node.AppendLeaf(items[i].point, items[i].id);
          box.Expand(items[i].point);
        }
        level_entries.emplace_back(box, pid);
      });

  // Pack node entries upward until a single root remains.
  int level = 1;
  while (level_entries.size() > 1) {
    std::vector<std::pair<MBR, PageId>> next;
    StrTile(
        level_entries, 0, static_cast<int>(level_entries.size()), 0, dims,
        internal_cap,
        [](const std::pair<MBR, PageId>& e, int dim) {
          return 0.5 * (e.first.lo()[dim] + e.first.hi()[dim]);
        },
        [&](int begin, int end) {
          PageId pid = store_->Allocate();
          NodeHandle h = store_->Write(pid);
          NodeView node = h.view();
          node.Init(level);
          MBR box = MBR::Empty(dims);
          for (int i = begin; i < end; ++i) {
            node.AppendInternal(level_entries[i].first,
                                level_entries[i].second);
            box.Expand(level_entries[i].first);
          }
          next.emplace_back(box, pid);
        });
    level_entries = std::move(next);
    level++;
  }

  // Replace the empty root with the packed tree.
  store_->Free(root_);
  root_ = level_entries[0].second;
  root_level_ = level - 1;
  size_ = static_cast<int64_t>(items.size());
}

}  // namespace fairmatch

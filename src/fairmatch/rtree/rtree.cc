#include "fairmatch/rtree/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fairmatch/common/check.h"

namespace fairmatch {

RTree::RTree(NodeStore* store) : store_(store) {
  root_ = store_->Allocate();
  NodeHandle h = store_->Write(root_);
  h.view().Init(0);
  root_level_ = 0;
}

RTree::RTree(NodeStore* store, PageId root, int root_level, int64_t size)
    : store_(store), root_(root), root_level_(root_level), size_(size) {}

int RTree::MinFill(const NodeView& node) {
  return std::max(1, node.capacity() * 40 / 100);
}

void RTree::Insert(const Point& p, ObjectId id) {
  InsertEntry(0, MBR(p), id);
  size_++;
}

void RTree::InsertEntry(int target_level, const MBR& emb, int32_t child) {
  MBR root_mbr;
  std::optional<PendingSplit> split =
      InsertRec(root_, target_level, emb, child, &root_mbr);
  if (split.has_value()) {
    PageId new_root = store_->Allocate();
    NodeHandle h = store_->Write(new_root);
    NodeView node = h.view();
    node.Init(root_level_ + 1);
    node.AppendInternal(root_mbr, root_);
    node.AppendInternal(split->mbr, split->pid);
    root_ = new_root;
    root_level_++;
  }
}

std::optional<RTree::PendingSplit> RTree::InsertRec(PageId pid,
                                                    int target_level,
                                                    const MBR& emb,
                                                    int32_t child,
                                                    MBR* out_mbr) {
  NodeHandle h = store_->Write(pid);
  NodeView node = h.view();
  FAIRMATCH_CHECK(node.level() >= target_level);
  if (node.level() == target_level) {
    if (node.count() < node.capacity()) {
      node.AppendEntry(emb, child);
      *out_mbr = node.ComputeMBR();
      return std::nullopt;
    }
    h.Release();
    return SplitNode(pid, emb, child, out_mbr);
  }

  // Choose the subtree needing least enlargement (ties: smaller area).
  int best = -1;
  double best_enlargement = std::numeric_limits<double>::max();
  double best_area = std::numeric_limits<double>::max();
  for (int i = 0; i < node.count(); ++i) {
    MBR box = node.entry_mbr(i);
    double enlargement = box.Enlargement(emb);
    double area = box.Area();
    if (enlargement < best_enlargement ||
        (enlargement == best_enlargement && area < best_area)) {
      best = i;
      best_enlargement = enlargement;
      best_area = area;
    }
  }
  FAIRMATCH_CHECK(best >= 0);
  PageId child_pid = node.child(best);

  MBR child_mbr;
  std::optional<PendingSplit> split =
      InsertRec(child_pid, target_level, emb, child, &child_mbr);
  node.SetInternalEntry(best, child_mbr, child_pid);
  if (split.has_value()) {
    if (node.count() < node.capacity()) {
      node.AppendInternal(split->mbr, split->pid);
      *out_mbr = node.ComputeMBR();
      return std::nullopt;
    }
    MBR sibling_mbr = split->mbr;
    PageId sibling_pid = split->pid;
    h.Release();
    return SplitNode(pid, sibling_mbr, sibling_pid, out_mbr);
  }
  *out_mbr = node.ComputeMBR();
  return std::nullopt;
}

RTree::PendingSplit RTree::SplitNode(PageId pid, const MBR& extra_mbr,
                                     int32_t extra_child, MBR* out_mbr) {
  std::vector<std::pair<MBR, int32_t>> entries;
  int level;
  {
    NodeHandle h = store_->Read(pid);
    NodeView node = h.view();
    level = node.level();
    entries.reserve(node.count() + 1);
    for (int i = 0; i < node.count(); ++i) {
      entries.emplace_back(node.entry_mbr(i), node.child(i));
    }
  }
  entries.emplace_back(extra_mbr, extra_child);

  std::vector<std::pair<MBR, int32_t>> g1;
  std::vector<std::pair<MBR, int32_t>> g2;
  {
    // Compute min fill from the (level-dependent) capacity.
    int capacity = level == 0 ? NodeView::LeafCapacity(store_->dims())
                              : NodeView::InternalCapacity(store_->dims());
    QuadraticSplit(entries, std::max(1, capacity * 40 / 100), &g1, &g2);
  }

  MBR mbr1 = MBR::Empty(store_->dims());
  {
    NodeHandle h = store_->Write(pid);
    NodeView node = h.view();
    node.Init(level);
    for (const auto& [mbr, child] : g1) {
      node.AppendEntry(mbr, child);
      mbr1.Expand(mbr);
    }
  }

  PageId sibling = store_->Allocate();
  MBR mbr2 = MBR::Empty(store_->dims());
  {
    NodeHandle h = store_->Write(sibling);
    NodeView node = h.view();
    node.Init(level);
    for (const auto& [mbr, child] : g2) {
      node.AppendEntry(mbr, child);
      mbr2.Expand(mbr);
    }
  }

  *out_mbr = mbr1;
  return PendingSplit{mbr2, sibling};
}

void QuadraticSplit(const std::vector<std::pair<MBR, int32_t>>& entries,
                    int min_fill,
                    std::vector<std::pair<MBR, int32_t>>* group1,
                    std::vector<std::pair<MBR, int32_t>>* group2) {
  const int n = static_cast<int>(entries.size());
  FAIRMATCH_CHECK(n >= 2);
  FAIRMATCH_CHECK(2 * min_fill <= n);
  group1->clear();
  group2->clear();

  // PickSeeds: the pair wasting the most area.
  int seed1 = 0;
  int seed2 = 1;
  double worst = -std::numeric_limits<double>::max();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      MBR cover = entries[i].first;
      cover.Expand(entries[j].first);
      double waste =
          cover.Area() - entries[i].first.Area() - entries[j].first.Area();
      if (waste > worst) {
        worst = waste;
        seed1 = i;
        seed2 = j;
      }
    }
  }

  std::vector<bool> assigned(n, false);
  group1->push_back(entries[seed1]);
  group2->push_back(entries[seed2]);
  assigned[seed1] = assigned[seed2] = true;
  MBR box1 = entries[seed1].first;
  MBR box2 = entries[seed2].first;
  int remaining = n - 2;

  while (remaining > 0) {
    // If one group must absorb the rest to reach min fill, dump.
    if (static_cast<int>(group1->size()) + remaining ==
        static_cast<int>(min_fill)) {
      for (int i = 0; i < n; ++i) {
        if (!assigned[i]) {
          group1->push_back(entries[i]);
          assigned[i] = true;
        }
      }
      remaining = 0;
      break;
    }
    if (static_cast<int>(group2->size()) + remaining ==
        static_cast<int>(min_fill)) {
      for (int i = 0; i < n; ++i) {
        if (!assigned[i]) {
          group2->push_back(entries[i]);
          assigned[i] = true;
        }
      }
      remaining = 0;
      break;
    }

    // PickNext: max |d1 - d2|.
    int next = -1;
    double best_diff = -1.0;
    double d1_best = 0.0;
    double d2_best = 0.0;
    for (int i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      double d1 = box1.Enlargement(entries[i].first);
      double d2 = box2.Enlargement(entries[i].first);
      double diff = std::abs(d1 - d2);
      if (diff > best_diff) {
        best_diff = diff;
        next = i;
        d1_best = d1;
        d2_best = d2;
      }
    }
    FAIRMATCH_CHECK(next >= 0);

    bool to_first;
    if (d1_best != d2_best) {
      to_first = d1_best < d2_best;
    } else if (box1.Area() != box2.Area()) {
      to_first = box1.Area() < box2.Area();
    } else {
      to_first = group1->size() <= group2->size();
    }
    if (to_first) {
      group1->push_back(entries[next]);
      box1.Expand(entries[next].first);
    } else {
      group2->push_back(entries[next]);
      box2.Expand(entries[next].first);
    }
    assigned[next] = true;
    remaining--;
  }
}

bool RTree::FindLeaf(PageId pid, const Point& p, ObjectId id,
                     std::vector<std::pair<PageId, int>>* path) const {
  NodeHandle h = store_->Read(pid);
  NodeView node = h.view();
  if (node.is_leaf()) {
    for (int i = 0; i < node.count(); ++i) {
      if (node.child(i) == id && node.leaf_point(i) == p) {
        path->emplace_back(pid, i);
        return true;
      }
    }
    return false;
  }
  for (int i = 0; i < node.count(); ++i) {
    if (node.entry_mbr(i).Contains(p)) {
      path->emplace_back(pid, i);
      if (FindLeaf(node.child(i), p, id, path)) return true;
      path->pop_back();
    }
  }
  return false;
}

bool RTree::Delete(const Point& p, ObjectId id) {
  std::vector<std::pair<PageId, int>> path;
  if (!FindLeaf(root_, p, id, &path)) return false;

  // Remove the leaf entry.
  {
    auto [leaf_pid, leaf_idx] = path.back();
    NodeHandle h = store_->Write(leaf_pid);
    h.view().RemoveEntry(leaf_idx);
  }
  size_--;

  // Condense: walk from the leaf up. path[i].second is the index of
  // path[i+1]'s entry within node path[i]; the last element is the leaf.
  std::vector<ObjectRecord> reinsert;
  for (int i = static_cast<int>(path.size()) - 1; i >= 1; --i) {
    PageId npid = path[i].first;
    PageId parent_pid = path[i - 1].first;
    int idx_in_parent = path[i - 1].second;

    bool underflow;
    MBR nmbr;
    {
      NodeHandle h = store_->Read(npid);
      NodeView node = h.view();
      underflow = node.count() < MinFill(node);
      nmbr = node.ComputeMBR();
    }
    NodeHandle ph = store_->Write(parent_pid);
    if (underflow) {
      ph.view().RemoveEntry(idx_in_parent);
      ph.Release();
      CollectSubtree(npid, &reinsert, /*free_pages=*/true);
    } else {
      ph.view().SetInternalEntry(idx_in_parent, nmbr, npid);
    }
  }

  ShrinkRoot();

  for (const ObjectRecord& rec : reinsert) {
    InsertEntry(0, MBR(rec.point), rec.id);
  }
  return true;
}

void RTree::ShrinkRoot() {
  while (true) {
    NodeHandle h = store_->Read(root_);
    NodeView node = h.view();
    if (node.is_leaf()) return;
    if (node.count() == 1) {
      PageId child = node.child(0);
      h.Release();
      store_->Free(root_);
      root_ = child;
      root_level_--;
      continue;
    }
    if (node.count() == 0) {
      // All children were condensed away; reset to an empty leaf.
      h.Release();
      NodeHandle w = store_->Write(root_);
      w.view().Init(0);
      root_level_ = 0;
      return;
    }
    return;
  }
}

void RTree::CollectSubtree(PageId pid, std::vector<ObjectRecord>* out,
                           bool free_pages) {
  NodeHandle h = store_->Read(pid);
  NodeView node = h.view();
  if (node.is_leaf()) {
    for (int i = 0; i < node.count(); ++i) {
      out->push_back(ObjectRecord{node.leaf_point(i), node.child(i)});
    }
  } else {
    for (int i = 0; i < node.count(); ++i) {
      CollectSubtree(node.child(i), out, free_pages);
    }
  }
  h.Release();
  if (free_pages) store_->Free(pid);
}

std::vector<ObjectRecord> RTree::ScanAll() const {
  std::vector<ObjectRecord> out;
  const_cast<RTree*>(this)->CollectSubtree(root_, &out, /*free_pages=*/false);
  return out;
}

int64_t RTree::CountNodes() const {
  int64_t count = 0;
  std::vector<PageId> stack{root_};
  while (!stack.empty()) {
    PageId pid = stack.back();
    stack.pop_back();
    count++;
    NodeHandle h = store_->Read(pid);
    NodeView node = h.view();
    if (!node.is_leaf()) {
      for (int i = 0; i < node.count(); ++i) stack.push_back(node.child(i));
    }
  }
  return count;
}

}  // namespace fairmatch

// R-tree over D-dimensional points with Guttman quadratic insert,
// physical delete with tree condensation, and STR bulk loading.
//
// The tree stores (point, object id) pairs in its leaves. Search
// algorithms (BBS skyline, BRS ranked search) live in their own modules
// and traverse the tree through ReadNode(), so that every traversal is
// charged I/O by the node store.
//
// Concurrency: the tree itself adds no mutable state on the read path —
// ReadNode()/ScanAll() are const and safe for concurrent readers iff
// the backing NodeStore is (MemNodeStore: yes, while nobody mutates;
// PagedNodeStore: no, its buffer pool mutates on every read — see
// rtree/node_store.h). BulkLoad/Insert/Delete always require exclusive
// access. Batch execution gives each lane a private store + tree.
#ifndef FAIRMATCH_RTREE_RTREE_H_
#define FAIRMATCH_RTREE_RTREE_H_

#include <optional>
#include <utility>
#include <vector>

#include "fairmatch/rtree/node_store.h"

namespace fairmatch {

/// A (point, id) record stored in the tree.
struct ObjectRecord {
  Point point;
  ObjectId id = kInvalidObject;
};

class RTree {
 public:
  /// Creates an empty tree (a single empty leaf root) in `store`.
  /// `store` must outlive the tree.
  explicit RTree(NodeStore* store);

  /// Attaches to a tree that already exists in `store` — the
  /// incremental-update path (update/delta_builder.h): a cloned store's
  /// pages are adopted and edited node-by-node instead of rebuilt.
  /// `root`/`root_level`/`size` must describe a valid tree in `store`;
  /// nothing is allocated or validated here.
  RTree(NodeStore* store, PageId root, int root_level, int64_t size);

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  /// Bulk-loads `items` with the Sort-Tile-Recursive algorithm at the
  /// given node fill factor. The tree must be empty.
  void BulkLoad(std::vector<ObjectRecord> items, double fill_factor = 0.7);

  /// Inserts one record (Guttman quadratic split on overflow).
  void Insert(const Point& p, ObjectId id);

  /// Physically deletes a record; condenses underflowing nodes by
  /// reinserting the leaf records of their subtrees. Returns false if
  /// the record was not found.
  bool Delete(const Point& p, ObjectId id);

  PageId root() const { return root_; }
  int root_level() const { return root_level_; }
  int height() const { return root_level_ + 1; }
  int64_t size() const { return size_; }
  int dims() const { return store_->dims(); }
  NodeStore* store() const { return store_; }

  /// Read access for search algorithms (counted I/O in paged stores).
  NodeHandle ReadNode(PageId pid) const { return store_->Read(pid); }

  /// Collects every record in the tree (test/diagnostic helper).
  std::vector<ObjectRecord> ScanAll() const;

  /// Number of nodes currently in the tree (walks the tree; tests only).
  int64_t CountNodes() const;

 private:
  struct PendingSplit {
    MBR mbr;
    PageId pid;
  };

  static int MinFill(const NodeView& node);

  /// Inserts an entry into a node at `target_level`; returns a new
  /// sibling if the subtree root split. `out_mbr` receives the subtree
  /// root's updated MBR.
  std::optional<PendingSplit> InsertRec(PageId pid, int target_level,
                                        const MBR& emb, int32_t child,
                                        MBR* out_mbr);

  /// Inserts an entry at the given level, growing the root on split.
  void InsertEntry(int target_level, const MBR& emb, int32_t child);

  /// Splits the full node behind `pid` plus the extra entry; writes one
  /// group back to `pid` and the other to a fresh page.
  PendingSplit SplitNode(PageId pid, const MBR& extra_mbr, int32_t extra_child,
                         MBR* out_mbr);

  bool FindLeaf(PageId pid, const Point& p, ObjectId id,
                std::vector<std::pair<PageId, int>>* path) const;

  /// Appends all leaf records under `pid` to `out`; frees the subtree's
  /// pages when `free_pages` is set.
  void CollectSubtree(PageId pid, std::vector<ObjectRecord>* out,
                      bool free_pages);

  void ShrinkRoot();

  NodeStore* store_;
  PageId root_;
  int root_level_ = 0;
  int64_t size_ = 0;
};

/// Guttman quadratic split of `entries` (size = capacity + 1) into two
/// groups with at least `min_fill` entries each. Exposed for testing.
void QuadraticSplit(const std::vector<std::pair<MBR, int32_t>>& entries,
                    int min_fill,
                    std::vector<std::pair<MBR, int32_t>>* group1,
                    std::vector<std::pair<MBR, int32_t>>* group2);

}  // namespace fairmatch

#endif  // FAIRMATCH_RTREE_RTREE_H_

// Node storage backends for the R-tree.
//
// PagedNodeStore keeps nodes on the simulated disk behind an LRU buffer
// pool (every access is counted I/O) — this models the paper's
// disk-resident object R-tree. MemNodeStore keeps nodes in main memory
// with no I/O accounting — this models the paper's main-memory R-tree
// over the function weights (used by the Chain baseline) and is also
// used by tests.
//
// Concurrency (audited for engine/batch_runner.h):
//  * PagedNodeStore::Read mutates buffer state (LRU order, pin counts)
//    on every call — it is single-lane only, like the BufferPool and
//    DiskManager underneath. Parallel batch items each own a store.
//  * MemNodeStore::Read is mutation-free and returns stable bytes, so
//    any number of threads may Read concurrently PROVIDED no thread
//    calls Write/Allocate/Free meanwhile (tree-mutating matchers like
//    Chain therefore still need a per-item store + tree).
#ifndef FAIRMATCH_RTREE_NODE_STORE_H_
#define FAIRMATCH_RTREE_NODE_STORE_H_

#include <memory>
#include <vector>

#include "fairmatch/rtree/node.h"
#include "fairmatch/storage/buffer_pool.h"
#include "fairmatch/storage/disk_manager.h"

namespace fairmatch {

/// RAII access to one node. Keeps the underlying page pinned (paged
/// store) for as long as the handle lives.
class NodeHandle {
 public:
  NodeHandle() = default;

  /// Paged-store handle.
  NodeHandle(PageHandle page, int dims, bool writable);

  /// Memory-store handle (bytes owned elsewhere, stable).
  NodeHandle(std::byte* bytes, PageId pid, int dims, bool writable);

  NodeHandle(NodeHandle&& other) noexcept;
  NodeHandle& operator=(NodeHandle&& other) noexcept;
  NodeHandle(const NodeHandle&) = delete;
  NodeHandle& operator=(const NodeHandle&) = delete;
  ~NodeHandle() = default;

  bool valid() const { return bytes_ != nullptr; }
  PageId page_id() const { return pid_; }

  /// Accessor over the node bytes.
  NodeView view() const { return NodeView(bytes_, dims_, writable_); }

  /// Releases the pin early.
  void Release();

 private:
  PageHandle page_;
  std::byte* bytes_ = nullptr;
  PageId pid_ = kInvalidPage;
  int dims_ = 0;
  bool writable_ = false;
};

/// Abstract node storage.
class NodeStore {
 public:
  explicit NodeStore(int dims) : dims_(dims) {}
  virtual ~NodeStore() = default;

  NodeStore(const NodeStore&) = delete;
  NodeStore& operator=(const NodeStore&) = delete;

  int dims() const { return dims_; }

  /// Read-only access (counted as a read in the paged store).
  virtual NodeHandle Read(PageId pid) = 0;

  /// Read-write access; the node is marked dirty in the paged store.
  virtual NodeHandle Write(PageId pid) = 0;

  /// Allocates a fresh (zeroed) node page and returns its id.
  virtual PageId Allocate() = 0;

  /// Frees a node page.
  virtual void Free(PageId pid) = 0;

  /// Number of pages in the backing file (for buffer sizing).
  virtual int64_t num_pages() const = 0;

 private:
  int dims_;
};

/// Disk-backed store with I/O accounting.
class PagedNodeStore : public NodeStore {
 public:
  /// `buffer_frames` is the initial LRU capacity; use
  /// SetBufferFraction() after bulk load to size it as a % of the file.
  /// When `counters` is non-null (typically an ExecContext's shared
  /// counters), this store's traffic is accounted there instead of in a
  /// private PerfCounters; `counters` must outlive the store. When
  /// `disk` is non-null, pages live on that externally owned manager
  /// (a BatchRunner lane's recycled one — it must be freshly
  /// constructed or Recycle()d, and outlive the store) instead of a
  /// private one.
  PagedNodeStore(int dims, size_t buffer_frames,
                 PerfCounters* counters = nullptr,
                 DiskManager* disk = nullptr);

  NodeHandle Read(PageId pid) override;
  NodeHandle Write(PageId pid) override;
  PageId Allocate() override;
  void Free(PageId pid) override;
  int64_t num_pages() const override { return disk_->num_pages(); }

  /// Sizes the buffer as `fraction` of the current file size, in pages
  /// (fraction 0 => no caching, the paper's "0% buffer").
  void SetBufferFraction(double fraction);

  /// Flushes the buffer and zeroes the I/O counters: call between the
  /// build phase and the measured phase.
  void ResetCounters();

  PerfCounters& counters() { return *counters_; }
  const PerfCounters& counters() const { return *counters_; }
  BufferPool& pool() { return pool_; }
  DiskManager& disk() { return *disk_; }

 private:
  /// Substitutes a zeroed node (stable bytes in zero_node_) for a
  /// structurally malformed page when an error sink is attached —
  /// reports kDataLoss instead of letting entry reads run off the page.
  NodeHandle GuardMalformed(NodeHandle handle, PageId pid, bool writable);

  DiskManager own_disk_;
  DiskManager* disk_;  // own_disk_ or an injected recyclable one
  PerfCounters own_counters_;
  PerfCounters* counters_;  // own_counters_ or an injected external one
  BufferPool pool_;
  PageData zero_node_;  // surrogate page for malformed reads
};

/// Main-memory store; no I/O accounting.
class MemNodeStore : public NodeStore {
 public:
  explicit MemNodeStore(int dims) : NodeStore(dims) {}

  NodeHandle Read(PageId pid) override;
  NodeHandle Write(PageId pid) override;
  PageId Allocate() override;
  void Free(PageId pid) override;
  int64_t num_pages() const override {
    return static_cast<int64_t>(pages_.size());
  }

  /// Approximate resident bytes (for the memory-usage metric).
  size_t memory_bytes() const {
    return (pages_.size() - free_list_.size()) * sizeof(PageData);
  }

  /// True when `pid` names a live (allocated, not freed) page.
  bool has_page(PageId pid) const {
    return pid >= 0 && pid < num_pages() && pages_[pid] != nullptr;
  }

  /// Replaces this store's contents with a page-level copy of `other`
  /// (same dims; this store must be freshly constructed or disposable).
  /// The epoch-clone primitive for incremental updates: the copy shares
  /// nothing with `other`, so node-level edits here never perturb a
  /// published epoch still being read by in-flight requests.
  void CopyFrom(const MemNodeStore& other);

  /// Swaps page ownership with `donor` (same dims). Lets a builder hand
  /// a fully updated store to an adopting owner without a second
  /// page-level copy.
  void Adopt(MemNodeStore* donor);

  /// Raw bytes of a live page (one PageData). Update-path hook: the
  /// epoch clone runs its fault-injection schedule over these (flips
  /// land on the clone's private copy, never on a published epoch).
  std::byte* raw_page(PageId pid) { return BytesOf(pid); }

  /// Read-only page bytes (snapshot serialization; `pid` must be live).
  const std::byte* page_bytes(PageId pid) const {
    return pages_[pid]->bytes;
  }

  /// Free-page ids in pop order (back first). Snapshots persist this
  /// because Allocate() reuses it LIFO: replaying WAL batches on a
  /// restored store only produces byte-identical pages if page-id
  /// assignment replays too.
  const std::vector<PageId>& free_list() const { return free_list_; }

  /// Snapshot-restore primitives, used together: RestoreInit(n) resets
  /// the store to `n` empty page slots; RestorePage(pid) installs a
  /// live (zeroed) page at slot `pid` and returns its bytes to fill;
  /// RestoreFreeList() installs the persisted free order. The result
  /// must equal the serialized store exactly — live pages, holes, and
  /// allocator state.
  void RestoreInit(int64_t num_pages);
  std::byte* RestorePage(PageId pid);
  void RestoreFreeList(std::vector<PageId> order);

 private:
  std::byte* BytesOf(PageId pid);

  std::vector<std::unique_ptr<PageData>> pages_;
  std::vector<PageId> free_list_;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_RTREE_NODE_STORE_H_

// Serialization of one UpdateBatch — the WAL record payload.
//
// The write-ahead log (recover/wal.h) records each DeltaBuilder batch
// before it is applied; recovery replays the decoded batches through a
// fresh DeltaBuilder. Replay only converges byte-identically if the
// decoded batch IS the logged batch, so every field round-trips
// bit-exactly: object coordinates as raw f32, function weights/gamma
// as raw f64, capacities and delete-id lists as i32. The `id` fields
// of inserted items are deliberately not serialized — DeltaBuilder
// ignores them and assigns dense ids itself (delta_builder.h), and
// replay must reproduce exactly that assignment.
#ifndef FAIRMATCH_RECOVER_BATCH_CODEC_H_
#define FAIRMATCH_RECOVER_BATCH_CODEC_H_

#include <string>

#include "fairmatch/update/delta_builder.h"

namespace fairmatch::recover {

/// Appends the encoded batch to `out`.
void EncodeBatch(const update::UpdateBatch& batch, int dims,
                 std::string* out);

/// Decodes one batch (the exact output of EncodeBatch). False when the
/// bytes are malformed or truncated — which a CRC-verified WAL record
/// never is, so a false here means a format-version bug, not damage.
bool DecodeBatch(const std::string& payload, update::UpdateBatch* batch,
                 int* dims);

}  // namespace fairmatch::recover

#endif  // FAIRMATCH_RECOVER_BATCH_CODEC_H_

#include "fairmatch/recover/durable_builder.h"

#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "fairmatch/recover/batch_codec.h"
#include "fairmatch/recover/snapshot.h"
#include "fairmatch/storage/fault_injector.h"

namespace fairmatch::recover {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string Join(const std::string& dir, const std::string& basename) {
  return dir + "/" + basename;
}

std::string SnapshotName(int64_t epoch) {
  return "snap-" + std::to_string(epoch) + ".fms";
}

std::string WalName(int64_t epoch) {
  return "wal-" + std::to_string(epoch) + ".log";
}

std::string ManifestPath(const std::string& dir) {
  return Join(dir, "MANIFEST");
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

void AppendDetail(std::string* detail, const std::string& piece) {
  if (!detail->empty()) *detail += "; ";
  *detail += piece;
}

}  // namespace

serve::ServeStatus DurableBuilder::Bootstrap(
    serve::DatasetHandle base, const DurableOptions& options,
    std::unique_ptr<DurableBuilder>* out) {
  const std::string manifest_path = ManifestPath(options.dir);
  if (FileExists(manifest_path)) {
    return serve::ServeStatus::FailedPrecondition(
        "bootstrap into " + options.dir +
        ": a manifest already exists (Recover() owns this directory)");
  }

  auto builder = std::unique_ptr<DurableBuilder>(new DurableBuilder());
  builder->options_ = options;
  builder->delta_ =
      std::make_unique<update::DeltaBuilder>(std::move(base), options.delta);

  serve::ServeStatus status =
      ManifestWriter::Open(manifest_path, options.injector,
                           &builder->manifest_);
  if (!status.ok()) return status;

  const int64_t epoch = builder->delta_->epoch();
  const serve::DatasetHandle& dataset = builder->delta_->current();
  ManifestRecord record;
  record.seq = 1;
  record.epoch = epoch;
  record.snapshot_file = SnapshotName(epoch);
  record.wal_file = WalName(epoch);
  record.dataset = dataset->name();

  status = WriteSnapshot(Join(options.dir, record.snapshot_file), *dataset,
                         options.injector);
  if (!status.ok()) return status;
  status = WalWriter::Create(Join(options.dir, record.wal_file),
                             options.injector, &builder->wal_);
  if (!status.ok()) return status;
  status = builder->manifest_.Commit(record, options.injector);
  if (!status.ok()) return status;

  builder->committed_ = record;
  *out = std::move(builder);
  return serve::ServeStatus::Ok();
}

serve::ServeStatus DurableBuilder::Recover(const DurableOptions& options,
                                           std::unique_ptr<DurableBuilder>* out,
                                           RecoveryStats* stats) {
  RecoveryStats local;
  if (stats == nullptr) stats = &local;
  *stats = RecoveryStats{};
  const Clock::time_point t0 = Clock::now();

  std::vector<ManifestRecord> candidates;
  ManifestReadStats mstats;
  serve::ServeStatus status =
      ReadManifest(ManifestPath(options.dir), &candidates, &mstats);
  stats->manifest_slots_corrupt = mstats.slots_corrupt;
  if (!mstats.detail.empty()) AppendDetail(&stats->detail, mstats.detail);
  if (!status.ok()) {
    stats->total_ms = MsSince(t0);
    return status;
  }

  for (const ManifestRecord& record : candidates) {
    const Clock::time_point slot_t0 = Clock::now();
    serve::DatasetHandle snapshot;
    status = LoadSnapshot(Join(options.dir, record.snapshot_file),
                          options.delta.dataset, &snapshot);
    if (!status.ok()) {
      ++stats->snapshot_fallbacks;
      AppendDetail(&stats->detail, "seq " + std::to_string(record.seq) + ": " +
                                       status.message);
      continue;
    }
    if (!record.dataset.empty() && snapshot->name() != record.dataset) {
      ++stats->snapshot_fallbacks;
      AppendDetail(&stats->detail,
                   "seq " + std::to_string(record.seq) +
                       ": snapshot names dataset '" + snapshot->name() +
                       "' but the manifest slot binds '" + record.dataset +
                       "'");
      continue;
    }

    std::vector<WalRecord> wal_records;
    WalReadStats wstats;
    status =
        ReadWal(Join(options.dir, record.wal_file), &wal_records, &wstats);
    if (!status.ok()) {
      // A committed WAL that is missing or whose committed prefix is
      // unreadable: this slot cannot converge, fail over.
      ++stats->snapshot_fallbacks;
      AppendDetail(&stats->detail, "seq " + std::to_string(record.seq) + ": " +
                                       status.message);
      continue;
    }
    const double load_ms = MsSince(slot_t0);

    // Replay runs through the exact apply path the live process used,
    // minus the delta-level injector (a replayed batch must not have
    // faults re-injected into it).
    update::DeltaOptions replay_options = options.delta;
    replay_options.injector = nullptr;
    auto delta = std::make_unique<update::DeltaBuilder>(std::move(snapshot),
                                                        replay_options);

    const Clock::time_point replay_t0 = Clock::now();
    int64_t replayed = 0;
    int64_t skipped = 0;
    int64_t rejected = 0;
    bool slot_ok = true;
    for (const WalRecord& wal_record : wal_records) {
      if (wal_record.epoch <= delta->epoch()) {
        // Already folded into the snapshot (or a duplicate append):
        // replay is idempotent, skip.
        ++skipped;
        continue;
      }
      if (wal_record.epoch != delta->epoch() + 1) {
        AppendDetail(&stats->detail,
                     "seq " + std::to_string(record.seq) +
                         ": WAL epoch gap (record for epoch " +
                         std::to_string(wal_record.epoch) + " after epoch " +
                         std::to_string(delta->epoch()) + ")");
        slot_ok = false;
        break;
      }
      update::UpdateBatch batch;
      int dims = 0;
      if (!DecodeBatch(wal_record.payload, &batch, &dims)) {
        AppendDetail(&stats->detail,
                     "seq " + std::to_string(record.seq) +
                         ": WAL record for epoch " +
                         std::to_string(wal_record.epoch) +
                         " passed its checksum but failed to decode");
        slot_ok = false;
        break;
      }
      const serve::ServeStatus apply = delta->Apply(batch);
      if (apply.ok()) {
        ++replayed;
      } else if (apply.code == serve::ServeCode::kInvalidArgument) {
        // The live path logged this batch and then rejected it without
        // advancing the epoch; replay rejects it identically.
        ++rejected;
      } else {
        AppendDetail(&stats->detail, "seq " + std::to_string(record.seq) +
                                         ": replay of epoch " +
                                         std::to_string(wal_record.epoch) +
                                         " failed: " + apply.message);
        slot_ok = false;
        break;
      }
    }
    if (!slot_ok) {
      ++stats->snapshot_fallbacks;
      continue;
    }
    const double replay_ms = MsSince(replay_t0);

    auto builder = std::unique_ptr<DurableBuilder>(new DurableBuilder());
    builder->options_ = options;
    status = WalWriter::OpenForAppend(Join(options.dir, record.wal_file),
                                      wstats.bytes_used, options.injector,
                                      &builder->wal_);
    if (!status.ok()) return status;
    status = ManifestWriter::Open(ManifestPath(options.dir), options.injector,
                                  &builder->manifest_);
    if (!status.ok()) return status;
    builder->delta_ = std::move(delta);
    builder->committed_ = record;
    builder->records_since_snapshot_ = replayed + rejected;

    stats->recovered_epoch = builder->epoch();
    stats->snapshot_epoch = record.epoch;
    stats->manifest_seq = record.seq;
    stats->wal_records_replayed = replayed;
    stats->wal_records_skipped = skipped;
    stats->wal_records_rejected = rejected;
    stats->wal_torn_bytes = wstats.torn_bytes;
    stats->wal_torn_tail = wstats.torn_tail;
    stats->load_ms = load_ms;
    stats->replay_ms = replay_ms;
    stats->total_ms = MsSince(t0);
    *out = std::move(builder);
    return serve::ServeStatus::Ok();
  }

  stats->total_ms = MsSince(t0);
  return serve::ServeStatus::DataLoss(
      "no manifest slot of " + options.dir +
      " leads to a servable epoch (" + stats->detail + ")");
}

serve::ServeStatus DurableBuilder::Apply(const update::UpdateBatch& batch,
                                         update::UpdateStats* stats) {
  // WAL first: the record must be durable before any in-memory state
  // moves. Its fsync is the commit point.
  std::string payload;
  EncodeBatch(batch, delta_->current()->problem().dims, &payload);
  serve::ServeStatus status =
      wal_.Append(delta_->epoch() + 1, payload, options_.injector);
  if (!status.ok()) return status;
  ++records_since_snapshot_;

  status = delta_->Apply(batch, stats);
  if (!status.ok()) return status;

  if (records_since_snapshot_ >= options_.snapshot_threshold) {
    return Checkpoint();
  }
  return serve::ServeStatus::Ok();
}

serve::ServeStatus DurableBuilder::Checkpoint() {
  const int64_t epoch = delta_->epoch();
  if (epoch <= committed_.epoch) {
    // Every record since the last checkpoint was rejected; there is no
    // new epoch to bind and re-snapshotting the committed one would
    // rotate away nothing but rejected records. Skip.
    return serve::ServeStatus::Ok();
  }

  ManifestRecord next;
  next.seq = committed_.seq + 1;
  next.epoch = epoch;
  next.snapshot_file = SnapshotName(epoch);
  next.wal_file = WalName(epoch);
  next.dataset = delta_->current()->name();

  // Order matters: snapshot, fresh WAL, manifest commit. A crash at
  // any boundary before the commit's fsync leaves the old slot bound
  // to the old snapshot + old WAL — both still on disk and complete.
  serve::ServeStatus status =
      WriteSnapshot(Join(options_.dir, next.snapshot_file),
                    *delta_->current(), options_.injector);
  if (!status.ok()) return status;
  WalWriter next_wal;
  status = WalWriter::Create(Join(options_.dir, next.wal_file),
                             options_.injector, &next_wal);
  if (!status.ok()) return status;
  status = manifest_.Commit(next, options_.injector);
  if (!status.ok()) return status;

  // Committed. The superseded files are unreferenced by both slots'
  // surviving histories; pruning them is best-effort cleanup.
  const ManifestRecord old = committed_;
  wal_ = std::move(next_wal);
  committed_ = next;
  records_since_snapshot_ = 0;
  if (old.snapshot_file != next.snapshot_file) {
    std::remove(Join(options_.dir, old.snapshot_file).c_str());
  }
  if (old.wal_file != next.wal_file) {
    std::remove(Join(options_.dir, old.wal_file).c_str());
  }
  return serve::ServeStatus::Ok();
}

serve::ServeStatus RecoverAndPublish(
    const DurableOptions& options, serve::DatasetRegistry* registry,
    serve::DatasetHandle* out, RecoveryStats* stats,
    std::unique_ptr<DurableBuilder>* builder_out) {
  std::unique_ptr<DurableBuilder> builder;
  serve::ServeStatus status = DurableBuilder::Recover(options, &builder, stats);
  if (!status.ok()) return status;
  status = registry->PublishRecovered(builder->current());
  if (!status.ok()) return status;
  if (out != nullptr) *out = builder->current();
  if (builder_out != nullptr) *builder_out = std::move(builder);
  return serve::ServeStatus::Ok();
}

}  // namespace fairmatch::recover

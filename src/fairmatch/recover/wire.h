// Byte-level encode/decode helpers shared by the durable formats
// (recover/wal.h, recover/manifest.h, recover/snapshot.h).
//
// Fixed-width little-endian-native fields via memcpy: the files are
// host-local (written and recovered on the same machine), so no
// byte-swapping — what matters is that floats and doubles round-trip
// bit-exactly, which raw-byte copies guarantee and text formats do not.
#ifndef FAIRMATCH_RECOVER_WIRE_H_
#define FAIRMATCH_RECOVER_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace fairmatch::recover {

template <typename T>
inline void PutRaw(std::string* buffer, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  buffer->append(bytes, sizeof(T));
}

inline void PutU32(std::string* b, uint32_t v) { PutRaw(b, v); }
inline void PutU64(std::string* b, uint64_t v) { PutRaw(b, v); }
inline void PutI32(std::string* b, int32_t v) { PutRaw(b, v); }
inline void PutI64(std::string* b, int64_t v) { PutRaw(b, v); }
inline void PutF32(std::string* b, float v) { PutRaw(b, v); }
inline void PutF64(std::string* b, double v) { PutRaw(b, v); }

/// Cursor over an encoded byte range. Every Get* checks bounds; after
/// any failure ok() is false and all further Gets return zero values —
/// callers can decode a full struct and check ok() once at the end.
class WireReader {
 public:
  WireReader(const char* data, size_t size)
      : p_(data), end_(data + size) {}
  explicit WireReader(const std::string& bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  template <typename T>
  T GetRaw() {
    T value{};
    if (!ok_ || remaining() < sizeof(T)) {
      ok_ = false;
      return value;
    }
    std::memcpy(&value, p_, sizeof(T));
    p_ += sizeof(T);
    return value;
  }

  uint32_t GetU32() { return GetRaw<uint32_t>(); }
  uint64_t GetU64() { return GetRaw<uint64_t>(); }
  int32_t GetI32() { return GetRaw<int32_t>(); }
  int64_t GetI64() { return GetRaw<int64_t>(); }
  float GetF32() { return GetRaw<float>(); }
  double GetF64() { return GetRaw<double>(); }

  /// Copies `n` raw bytes out; empty string (and !ok()) on underrun.
  std::string GetBytes(size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return {};
    }
    std::string out(p_, n);
    p_ += n;
    return out;
  }

 private:
  const char* p_;
  const char* end_;
  bool ok_ = true;
};

}  // namespace fairmatch::recover

#endif  // FAIRMATCH_RECOVER_WIRE_H_

// Durable epoch manifest: a versioned superblock in double-slot A/B
// form.
//
// One 512-byte file, two fixed 256-byte slots:
//
//   offset 0    +---------------------------+
//               | slot A (256 B)            |
//   offset 256  +---------------------------+
//               | slot B (256 B)            |
//               +---------------------------+
//
//   slot := magic "FMMAN001" (8 B)
//           seq   u64   monotonic commit number (0 = never written)
//           epoch i64   the snapshot epoch this slot binds
//           snapshot_file  char[80]  NUL-padded basename
//           wal_file       char[80]  NUL-padded basename
//           dataset        char[64]  NUL-padded dataset name
//           reserved u32
//           crc      u32  CRC32 over the preceding 252 bytes
//
// Copy-on-write protocol: commit `seq` writes slot `seq % 2` — always
// the slot holding the OLDER state — with one positioned write (torn-
// able under a crash schedule) and one fsync. The newest committed
// state is therefore never overwritten in place: a torn slot write
// leaves the other slot intact and recovery simply fails over to it.
// Readers validate both slots independently (magic + CRC) and order
// the survivors by seq descending; an all-zero slot is "empty" (a
// fresh file), anything else that fails validation is "corrupt".
#ifndef FAIRMATCH_RECOVER_MANIFEST_H_
#define FAIRMATCH_RECOVER_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fairmatch/serve/status.h"
#include "fairmatch/storage/durable_file.h"

namespace fairmatch {
class FaultInjector;
}

namespace fairmatch::recover {

/// One committed manifest state.
struct ManifestRecord {
  uint64_t seq = 0;
  int64_t epoch = 0;
  std::string snapshot_file;  // basename, relative to the log dir
  std::string wal_file;       // basename
  std::string dataset;        // dataset name (sanity-checked on boot)
};

/// What ReadManifest() observed per file.
struct ManifestReadStats {
  int slots_valid = 0;
  int slots_empty = 0;
  int slots_corrupt = 0;
  std::string detail;  // which slot failed which check
};

/// Serializes + durably commits manifest records. One writer per file.
class ManifestWriter {
 public:
  /// Opens (creating + zero-filling if absent) the manifest at `path`.
  /// Creation durably writes the 512 zero bytes (one write + one sync
  /// boundary) so slot writes never extend the file.
  static serve::ServeStatus Open(const std::string& path,
                                 FaultInjector* injector,
                                 ManifestWriter* out);

  ManifestWriter() = default;
  ManifestWriter(ManifestWriter&&) = default;
  ManifestWriter& operator=(ManifestWriter&&) = default;

  bool valid() const { return file_.valid(); }

  /// Durably commits `record` into slot (record.seq % 2): one torn-able
  /// positioned write boundary + one sync boundary. record.seq must
  /// advance the last committed seq.
  serve::ServeStatus Commit(const ManifestRecord& record,
                            FaultInjector* injector);

 private:
  DurableFile file_;
};

/// Validates both slots of `path`, returning the survivors newest
/// first. Missing file -> kNotFound. A file with at least one valid
/// slot -> OK (stats says whether the other was empty or corrupt; a
/// corrupt one is the torn-write failover case). No valid slot at all
/// -> kNotFound when both are empty (nothing ever committed), typed
/// kDataLoss when anything was corrupt.
serve::ServeStatus ReadManifest(const std::string& path,
                                std::vector<ManifestRecord>* records,
                                ManifestReadStats* stats);

}  // namespace fairmatch::recover

#endif  // FAIRMATCH_RECOVER_MANIFEST_H_

// Checksummed, length-prefixed write-ahead log of update batches.
//
// File layout:
//
//   +----------------------------+
//   | "FMWAL001"          (8 B)  |   file header (magic + version)
//   +----------------------------+
//   | record 0                   |
//   | record 1                   |
//   | ...                        |
//   +----------------------------+
//
//   record := epoch   i64   the epoch this batch produces when applied
//             len     u32   payload byte count
//             crc     u32   CRC32 over (epoch, len, payload)
//             payload u8[len]   EncodeBatch bytes (recover/batch_codec.h)
//
// Durability protocol: Append() lands the whole record with one durable
// write (torn-able under a crash schedule) and one fsync — the record
// is committed iff the fsync returned. The reader walks records until
// the first torn or checksum-failing one and STOPS there: a torn tail
// is the normal residue of a crash mid-append, truncated silently (the
// batch was never acknowledged, so it never happened); everything
// before it is intact by CRC. Damage in the header or in an interior
// record is a different matter — that means the committed prefix is
// unreadable — and comes back as typed kDataLoss so recovery can fail
// over to an older manifest slot.
#ifndef FAIRMATCH_RECOVER_WAL_H_
#define FAIRMATCH_RECOVER_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fairmatch/serve/status.h"
#include "fairmatch/storage/durable_file.h"

namespace fairmatch {
class FaultInjector;
}

namespace fairmatch::recover {

/// One decoded WAL record (payload still encoded; recovery hands it to
/// DecodeBatch).
struct WalRecord {
  int64_t epoch = 0;
  std::string payload;
};

/// What a read pass observed.
struct WalReadStats {
  int64_t records = 0;
  int64_t bytes_total = 0;
  int64_t bytes_used = 0;  // header + intact records
  /// Bytes discarded at the tail (torn record residue), and whether
  /// any were.
  int64_t torn_bytes = 0;
  bool torn_tail = false;
};

/// Appends records durably. One writer per log file.
class WalWriter {
 public:
  /// Creates/truncates `path` and durably writes the file header (one
  /// write + one sync boundary). `injector` may be null; when armed
  /// its crash schedule fires at those boundaries.
  static serve::ServeStatus Create(const std::string& path,
                                   FaultInjector* injector, WalWriter* out);

  /// Opens an existing log for appending after its intact prefix was
  /// replayed. `intact_bytes` (from WalReadStats::bytes_used) becomes
  /// the append position: the file is first truncated there, so a torn
  /// tail record never has garbage appended after it.
  static serve::ServeStatus OpenForAppend(const std::string& path,
                                          int64_t intact_bytes,
                                          FaultInjector* injector,
                                          WalWriter* out);

  WalWriter() = default;
  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;

  bool valid() const { return file_.valid(); }
  const std::string& path() const { return file_.path(); }

  /// Durably appends one record: one (torn-able) write boundary with
  /// the full record bytes, one sync boundary. OK means committed.
  serve::ServeStatus Append(int64_t epoch, const std::string& payload,
                            FaultInjector* injector);

 private:
  DurableFile file_;
};

/// Reads the intact record prefix of `path` into `records`. A torn or
/// CRC-failing tail record truncates (OK + stats.torn_tail); a missing
/// file is kNotFound; a bad header or unreadable committed prefix is
/// kDataLoss.
serve::ServeStatus ReadWal(const std::string& path,
                           std::vector<WalRecord>* records,
                           WalReadStats* stats);

}  // namespace fairmatch::recover

#endif  // FAIRMATCH_RECOVER_WAL_H_

#include "fairmatch/recover/snapshot.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "fairmatch/common/crc32.h"
#include "fairmatch/recover/wire.h"
#include "fairmatch/storage/durable_file.h"
#include "fairmatch/storage/fault_injector.h"

namespace fairmatch::recover {

namespace {

constexpr char kSnapMagic[8] = {'F', 'M', 'S', 'N', 'A', 'P', '0', '1'};
constexpr uint32_t kSnapVersion = 1;

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace

serve::ServeStatus WriteSnapshot(const std::string& path,
                                 const serve::ResidentDataset& dataset,
                                 FaultInjector* injector) {
  const AssignmentProblem& problem = dataset.problem();
  const MemNodeStore& store = dataset.node_store();
  const int dims = problem.dims;

  std::string buffer;
  buffer.append(kSnapMagic, sizeof(kSnapMagic));
  PutU32(&buffer, kSnapVersion);
  PutU32(&buffer, static_cast<uint32_t>(dims));
  PutI64(&buffer, dataset.epoch());
  PutU32(&buffer, static_cast<uint32_t>(dataset.name().size()));
  buffer.append(dataset.name());

  PutU32(&buffer, static_cast<uint32_t>(problem.objects.size()));
  for (const ObjectItem& o : problem.objects) {
    for (int d = 0; d < dims; ++d) PutF32(&buffer, o.point[d]);
    PutI32(&buffer, o.capacity);
  }
  PutU32(&buffer, static_cast<uint32_t>(problem.functions.size()));
  for (const PrefFunction& f : problem.functions) {
    for (int d = 0; d < dims; ++d) PutF64(&buffer, f.alpha[d]);
    PutF64(&buffer, f.gamma);
    PutI32(&buffer, f.capacity);
  }

  const RTree* tree = dataset.tree();
  PutI64(&buffer, tree->root());
  PutI32(&buffer, tree->root_level());
  PutI64(&buffer, tree->size());
  const int64_t num_slots = store.num_pages();
  PutI64(&buffer, num_slots);
  uint32_t live = 0;
  for (PageId pid = 0; pid < num_slots; ++pid) {
    if (store.has_page(pid)) ++live;
  }
  PutU32(&buffer, live);
  for (PageId pid = 0; pid < num_slots; ++pid) {
    if (!store.has_page(pid)) continue;
    PutI64(&buffer, pid);
    buffer.append(reinterpret_cast<const char*>(store.page_bytes(pid)),
                  kPageSize);
  }
  PutU32(&buffer, static_cast<uint32_t>(store.free_list().size()));
  for (PageId pid : store.free_list()) PutI64(&buffer, pid);

  PutU32(&buffer, static_cast<uint32_t>(dataset.skyline().size()));
  for (const ObjectRecord& m : dataset.skyline()) {
    PutI32(&buffer, m.id);
    for (int d = 0; d < dims; ++d) PutF32(&buffer, m.point[d]);
  }

  PutU32(&buffer, Crc32Of(buffer.data(), buffer.size()));

  std::string error;
  if (!DurableWriteFile(path, buffer.data(), buffer.size(), injector,
                        "snapshot", &error)) {
    return serve::ServeStatus::Unavailable("snapshot write: " + error);
  }
  return serve::ServeStatus::Ok();
}

serve::ServeStatus LoadSnapshot(const std::string& path,
                                const serve::DatasetOptions& options,
                                serve::DatasetHandle* out) {
  if (!FileExists(path)) {
    return serve::ServeStatus::NotFound("snapshot missing: " + path);
  }
  std::string bytes;
  std::string error;
  if (!ReadFileBytes(path, &bytes, &error)) {
    return serve::ServeStatus::DataLoss("snapshot unreadable: " + error);
  }
  if (bytes.size() < sizeof(kSnapMagic) + 4 ||
      std::memcmp(bytes.data(), kSnapMagic, sizeof(kSnapMagic)) != 0) {
    return serve::ServeStatus::DataLoss("snapshot magic mismatch: " + path);
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4, 4);
  if (Crc32Of(bytes.data(), bytes.size() - 4) != stored_crc) {
    return serve::ServeStatus::DataLoss("snapshot checksum mismatch: " +
                                        path);
  }

  WireReader r(bytes.data() + sizeof(kSnapMagic),
               bytes.size() - sizeof(kSnapMagic) - 4);
  if (r.GetU32() != kSnapVersion) {
    return serve::ServeStatus::DataLoss("snapshot version unsupported: " +
                                        path);
  }
  const int dims = static_cast<int>(r.GetU32());
  const int64_t epoch = r.GetI64();
  const std::string name = r.GetBytes(r.ok() ? r.GetU32() : 0);
  if (!r.ok() || dims < 1 || dims > kMaxDims) {
    return serve::ServeStatus::DataLoss("snapshot header malformed: " + path);
  }

  AssignmentProblem problem;
  problem.dims = dims;
  const uint32_t n_objects = r.GetU32();
  problem.objects.reserve(n_objects);
  for (uint32_t i = 0; r.ok() && i < n_objects; ++i) {
    ObjectItem o;
    o.id = static_cast<ObjectId>(i);
    o.point = Point(dims);
    for (int d = 0; d < dims; ++d) o.point[d] = r.GetF32();
    o.capacity = r.GetI32();
    problem.objects.push_back(o);
  }
  const uint32_t n_functions = r.GetU32();
  problem.functions.reserve(n_functions);
  for (uint32_t i = 0; r.ok() && i < n_functions; ++i) {
    PrefFunction f;
    f.id = static_cast<FunctionId>(i);
    f.dims = dims;
    for (int d = 0; d < dims; ++d) f.alpha[d] = r.GetF64();
    f.gamma = r.GetF64();
    f.capacity = r.GetI32();
    problem.functions.push_back(f);
  }

  const PageId root = r.GetI64();
  const int root_level = r.GetI32();
  const int64_t tree_size = r.GetI64();
  const int64_t num_slots = r.GetI64();
  const uint32_t live = r.GetU32();
  if (!r.ok() || num_slots < 0 ||
      static_cast<int64_t>(live) > num_slots) {
    return serve::ServeStatus::DataLoss("snapshot tree header malformed: " +
                                        path);
  }
  MemNodeStore store(dims);
  store.RestoreInit(num_slots);
  for (uint32_t i = 0; i < live; ++i) {
    const PageId pid = r.GetI64();
    if (!r.ok() || pid < 0 || pid >= num_slots ||
        r.remaining() < kPageSize) {
      return serve::ServeStatus::DataLoss("snapshot page table malformed: " +
                                          path);
    }
    const std::string page = r.GetBytes(kPageSize);
    std::memcpy(store.RestorePage(pid), page.data(), kPageSize);
  }
  const uint32_t n_free = r.GetU32();
  std::vector<PageId> free_list;
  free_list.reserve(n_free);
  for (uint32_t i = 0; r.ok() && i < n_free; ++i) {
    free_list.push_back(r.GetI64());
  }
  store.RestoreFreeList(std::move(free_list));

  const uint32_t n_sky = r.GetU32();
  std::vector<ObjectRecord> skyline;
  skyline.reserve(n_sky);
  for (uint32_t i = 0; r.ok() && i < n_sky; ++i) {
    ObjectRecord m;
    m.id = r.GetI32();
    m.point = Point(dims);
    for (int d = 0; d < dims; ++d) m.point[d] = r.GetF32();
    skyline.push_back(m);
  }
  if (!r.ok() || r.remaining() != 0) {
    return serve::ServeStatus::DataLoss("snapshot payload malformed: " + path);
  }

  // The packed image is derived state: rebuild it flat from the
  // restored function set (overlay vs flat serves identical matchings,
  // so the recovered epoch's responses match the uncrashed epoch's).
  std::unique_ptr<PackedFunctionStore> packed;
  if (options.build_packed && !problem.functions.empty()) {
    PackedStoreOptions popts;
    popts.block_entries = options.packed_block_entries;
    popts.use_mmap = options.packed_mmap;
    packed = std::make_unique<PackedFunctionStore>(problem.functions, popts);
  }

  *out = std::make_shared<const serve::ResidentDataset>(
      name, std::move(problem), &store, root, root_level, tree_size,
      std::move(packed), std::move(skyline), epoch);
  return serve::ServeStatus::Ok();
}

}  // namespace fairmatch::recover

// Durable epochs: DeltaBuilder behind a write-ahead log + manifest.
//
// A DurableBuilder owns one log directory and keeps the on-disk state
// in lockstep with the in-memory epoch chain:
//
//   Apply(batch):
//     1. encode the batch, append it to the WAL, fsync   <- commit point
//     2. DeltaBuilder::Apply (in-memory, atomic)
//     3. every snapshot_threshold records: Checkpoint() — write a new
//        snapshot + fresh WAL, commit a manifest slot binding them,
//        then delete the superseded files.
//
// Crash-consistency argument, boundary by boundary:
//  * die before/inside the WAL append -> the record is torn or absent;
//    the batch was never acknowledged; recovery truncates the tail and
//    converges to the previous epoch.
//  * die between WAL fsync and the in-memory apply (or any time after)
//    -> the record is durable; recovery replays it; the caller never
//    got an OK, so converging one epoch PAST the last acknowledged one
//    is correct (this is what "half-applied batches replayed" means).
//  * die anywhere inside Checkpoint() -> the manifest still binds the
//    OLD snapshot + OLD WAL, which still holds every record; stale
//    snap/wal files from the aborted checkpoint are unreferenced
//    garbage, overwritten or deleted by the next successful one. A
//    torn manifest-slot write corrupts only the alternate slot —
//    recovery fails over to the surviving one (the A/B protocol).
//
// Recovery (Recover()): read the manifest, try each intact slot newest
// first — load its snapshot, replay its WAL suffix through a fresh
// DeltaBuilder (records at or below the recovered epoch are skipped:
// replay idempotence; records the live path rejected as invalid are
// re-rejected identically) — and fail over to the older slot with a
// typed detail when a snapshot or committed WAL prefix is unreadable.
// The recovered builder appends to the recovered WAL and keeps going.
//
// RecoverAndPublish() is the boot path: recover, then publish the
// epoch through DatasetRegistry::PublishRecovered so serving resumes
// exactly where the crash interrupted it.
#ifndef FAIRMATCH_RECOVER_DURABLE_BUILDER_H_
#define FAIRMATCH_RECOVER_DURABLE_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "fairmatch/recover/manifest.h"
#include "fairmatch/recover/wal.h"
#include "fairmatch/serve/dataset_registry.h"
#include "fairmatch/serve/status.h"
#include "fairmatch/update/delta_builder.h"

namespace fairmatch::recover {

/// Durability knobs.
struct DurableOptions {
  /// Log directory (must exist). One DurableBuilder per directory.
  std::string dir;

  /// Checkpoint (snapshot + manifest commit + WAL rotation) after this
  /// many WAL records. Smaller = cheaper recovery replay, pricier
  /// applies — the recovery_time bench figure measures the trade.
  int snapshot_threshold = 8;

  /// Epoch-construction knobs, passed through to DeltaBuilder. The
  /// delta-level injector must stay null here: replay re-applies
  /// batches through a fresh DeltaBuilder, and only an injector-free
  /// apply path replays bit-identically. Crash scheduling uses
  /// `injector` below instead — it fires only at durable-file
  /// boundaries, which replay never re-executes.
  update::DeltaOptions delta;

  /// Crash points + durable-op accounting over every WAL/snapshot/
  /// manifest write, fsync and rename (storage/durable_file.h). May be
  /// null. Must outlive the builder.
  FaultInjector* injector = nullptr;
};

/// What one Recover() did.
struct RecoveryStats {
  int64_t recovered_epoch = 0;
  int64_t snapshot_epoch = 0;
  uint64_t manifest_seq = 0;

  int manifest_slots_corrupt = 0;  // failed-over torn/corrupt slots
  int snapshot_fallbacks = 0;      // intact slots whose payload failed

  int64_t wal_records_replayed = 0;
  int64_t wal_records_skipped = 0;   // at/below snapshot epoch (idempotence)
  int64_t wal_records_rejected = 0;  // invalid batches, re-rejected
  int64_t wal_torn_bytes = 0;
  bool wal_torn_tail = false;

  double load_ms = 0.0;    // manifest + snapshot read/restore
  double replay_ms = 0.0;  // WAL suffix through DeltaBuilder
  double total_ms = 0.0;   // time to a servable epoch

  /// Failover trail: every slot/payload that had to be skipped, typed.
  std::string detail;
};

class DurableBuilder {
 public:
  /// Starts a durable log in options.dir from `base` (epoch 1 or any
  /// later epoch): writes its snapshot, a fresh WAL and the first
  /// manifest commit. The directory must not already hold a manifest.
  static serve::ServeStatus Bootstrap(serve::DatasetHandle base,
                                      const DurableOptions& options,
                                      std::unique_ptr<DurableBuilder>* out);

  /// Recovers the newest intact epoch from options.dir (see file
  /// comment). kNotFound = nothing was ever committed; kDataLoss = a
  /// manifest exists but no slot leads to a servable epoch (the detail
  /// carries the per-slot trail).
  static serve::ServeStatus Recover(const DurableOptions& options,
                                    std::unique_ptr<DurableBuilder>* out,
                                    RecoveryStats* stats = nullptr);

  DurableBuilder(const DurableBuilder&) = delete;
  DurableBuilder& operator=(const DurableBuilder&) = delete;

  /// WAL-first apply (see file comment). Statuses are DeltaBuilder's,
  /// plus kUnavailable for a durable-write failure.
  serve::ServeStatus Apply(const update::UpdateBatch& batch,
                           update::UpdateStats* stats = nullptr);

  const serve::DatasetHandle& current() const { return delta_->current(); }
  int64_t epoch() const { return delta_->epoch(); }
  const std::vector<ObjectRecord>& skyline() const {
    return delta_->skyline();
  }

  /// WAL records since the last checkpoint (the replay debt a crash
  /// right now would incur).
  int64_t records_since_snapshot() const { return records_since_snapshot_; }

 private:
  DurableBuilder() = default;

  /// Snapshot current(), rotate the WAL, commit the manifest, prune
  /// superseded files.
  serve::ServeStatus Checkpoint();

  DurableOptions options_;
  std::unique_ptr<update::DeltaBuilder> delta_;
  WalWriter wal_;
  ManifestWriter manifest_;
  ManifestRecord committed_;  // last committed manifest state
  int64_t records_since_snapshot_ = 0;
};

/// Boot-from-manifest: Recover() + DatasetRegistry::PublishRecovered.
/// `out`/`stats`/`builder_out` may be null; on success the registry
/// serves the recovered epoch and recoveries() ticked.
serve::ServeStatus RecoverAndPublish(const DurableOptions& options,
                                     serve::DatasetRegistry* registry,
                                     serve::DatasetHandle* out = nullptr,
                                     RecoveryStats* stats = nullptr,
                                     std::unique_ptr<DurableBuilder>*
                                         builder_out = nullptr);

}  // namespace fairmatch::recover

#endif  // FAIRMATCH_RECOVER_DURABLE_BUILDER_H_

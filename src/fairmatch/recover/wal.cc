#include "fairmatch/recover/wal.h"

#include <cstdio>

#include "fairmatch/common/crc32.h"
#include "fairmatch/recover/wire.h"
#include "fairmatch/storage/fault_injector.h"

namespace fairmatch::recover {

namespace {

constexpr char kWalMagic[8] = {'F', 'M', 'W', 'A', 'L', '0', '0', '1'};
constexpr size_t kRecordHeader = 8 + 4 + 4;  // epoch + len + crc

uint32_t RecordCrc(int64_t epoch, const std::string& payload) {
  uint32_t state = 0xFFFFFFFFu;
  state = Crc32Update(state, &epoch, sizeof(epoch));
  const auto len = static_cast<uint32_t>(payload.size());
  state = Crc32Update(state, &len, sizeof(len));
  state = Crc32Update(state, payload.data(), payload.size());
  return state ^ 0xFFFFFFFFu;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace

serve::ServeStatus WalWriter::Create(const std::string& path,
                                     FaultInjector* injector,
                                     WalWriter* out) {
  std::string error;
  DurableFile file = DurableFile::Create(path, &error);
  if (!file.valid()) {
    return serve::ServeStatus::Unavailable("wal create: " + error);
  }
  if (!file.Append(kWalMagic, sizeof(kWalMagic), injector, "wal header write",
                   &error) ||
      !file.Sync(injector, "wal header sync", &error)) {
    return serve::ServeStatus::Unavailable("wal create: " + error);
  }
  out->file_ = std::move(file);
  return serve::ServeStatus::Ok();
}

serve::ServeStatus WalWriter::OpenForAppend(const std::string& path,
                                            int64_t intact_bytes,
                                            FaultInjector* injector,
                                            WalWriter* out) {
  (void)injector;
  std::string error;
  // Cut the torn tail first: appending after torn residue would hide
  // every later record behind an unreadable one.
  if (!TruncateFile(path, intact_bytes, &error)) {
    return serve::ServeStatus::Unavailable("wal reopen: " + error);
  }
  DurableFile file = DurableFile::OpenAppend(path, &error);
  if (!file.valid()) {
    return serve::ServeStatus::Unavailable("wal reopen: " + error);
  }
  out->file_ = std::move(file);
  return serve::ServeStatus::Ok();
}

serve::ServeStatus WalWriter::Append(int64_t epoch,
                                     const std::string& payload,
                                     FaultInjector* injector) {
  std::string record;
  record.reserve(kRecordHeader + payload.size());
  PutI64(&record, epoch);
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  PutU32(&record, RecordCrc(epoch, payload));
  record.append(payload);
  std::string error;
  if (!file_.Append(record.data(), record.size(), injector,
                    "wal record write", &error) ||
      !file_.Sync(injector, "wal record sync", &error)) {
    return serve::ServeStatus::Unavailable("wal append: " + error);
  }
  return serve::ServeStatus::Ok();
}

serve::ServeStatus ReadWal(const std::string& path,
                           std::vector<WalRecord>* records,
                           WalReadStats* stats) {
  records->clear();
  *stats = WalReadStats{};
  if (!FileExists(path)) {
    return serve::ServeStatus::NotFound("wal missing: " + path);
  }
  std::string bytes;
  std::string error;
  if (!ReadFileBytes(path, &bytes, &error)) {
    return serve::ServeStatus::DataLoss("wal unreadable: " + error);
  }
  stats->bytes_total = static_cast<int64_t>(bytes.size());
  if (bytes.size() < sizeof(kWalMagic) ||
      std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return serve::ServeStatus::DataLoss("wal header corrupt: " + path);
  }
  size_t pos = sizeof(kWalMagic);
  while (pos < bytes.size()) {
    // An INCOMPLETE record at the end of the file is the torn tail —
    // the residue of a crash mid-append, whose batch was never
    // acknowledged: stop and truncate. A COMPLETE record whose CRC
    // fails is different: appends are single writes, so a torn prefix
    // can never produce a full-length record — those bytes rotted
    // after commit, and the committed history is unreadable.
    if (bytes.size() - pos < kRecordHeader) break;
    WireReader r(bytes.data() + pos, kRecordHeader);
    const int64_t epoch = r.GetI64();
    const uint32_t len = r.GetU32();
    const uint32_t crc = r.GetU32();
    if (bytes.size() - pos - kRecordHeader < len) break;
    std::string payload = bytes.substr(pos + kRecordHeader, len);
    if (RecordCrc(epoch, payload) != crc) {
      return serve::ServeStatus::DataLoss(
          "wal record " + std::to_string(stats->records) +
          " checksum mismatch in " + path +
          " (committed history unreadable)");
    }
    records->push_back(WalRecord{epoch, std::move(payload)});
    pos += kRecordHeader + len;
    ++stats->records;
  }
  stats->bytes_used = static_cast<int64_t>(pos);
  stats->torn_bytes = stats->bytes_total - stats->bytes_used;
  stats->torn_tail = stats->torn_bytes > 0;
  return serve::ServeStatus::Ok();
}

}  // namespace fairmatch::recover

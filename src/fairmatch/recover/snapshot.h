// Serialized epoch snapshots: the manifest's payload files.
//
// A snapshot captures everything a ResidentDataset epoch needs to come
// back byte-identical after a crash:
//  * the problem — object coordinates/capacities and function
//    weights/gamma/capacities, raw-bit f32/f64;
//  * the R-tree — root/root_level/size plus the MemNodeStore page
//    table verbatim: every live page's 4 KB bytes AND the free-list
//    order. The free list matters because Allocate() reuses it LIFO;
//    WAL replay on the restored store only reproduces the uncrashed
//    run's pages bit-for-bit if page-id assignment replays too;
//  * the maintained skyline (id + point per member).
//
// The packed function image is NOT serialized: it is a pure function
// of the function set (rebuilt flat on load per the dataset options),
// and overlay-vs-flat images are query-identical by the update
// differential suite's contract — so persisting the overlay shape
// would cost bytes without changing a single served response.
//
// One trailing CRC32 covers the whole snapshot; a mismatch is typed
// kDataLoss and recovery fails over to an older manifest slot. Files
// are written tmp + fsync + atomic rename (each a crash point), so a
// half-written snapshot never sits at the name a manifest binds.
#ifndef FAIRMATCH_RECOVER_SNAPSHOT_H_
#define FAIRMATCH_RECOVER_SNAPSHOT_H_

#include <string>

#include "fairmatch/serve/dataset_registry.h"

namespace fairmatch {
class FaultInjector;
}

namespace fairmatch::recover {

/// Durably writes a snapshot of `dataset` to `path` (three crash-point
/// boundaries: write, sync, rename).
serve::ServeStatus WriteSnapshot(const std::string& path,
                                 const serve::ResidentDataset& dataset,
                                 FaultInjector* injector);

/// Loads a snapshot into a fresh ResidentDataset (name and epoch from
/// the file, packed image rebuilt per `options`). Corruption — bad
/// magic, failed CRC, malformed payload — comes back kDataLoss with
/// the failing check in the detail; a missing file is kNotFound.
serve::ServeStatus LoadSnapshot(const std::string& path,
                                const serve::DatasetOptions& options,
                                serve::DatasetHandle* out);

}  // namespace fairmatch::recover

#endif  // FAIRMATCH_RECOVER_SNAPSHOT_H_

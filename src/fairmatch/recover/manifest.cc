#include "fairmatch/recover/manifest.h"

#include <cstdio>
#include <cstring>

#include "fairmatch/common/crc32.h"
#include "fairmatch/recover/wire.h"
#include "fairmatch/storage/fault_injector.h"

namespace fairmatch::recover {

namespace {

constexpr char kManifestMagic[8] = {'F', 'M', 'M', 'A', 'N', '0', '0', '1'};
constexpr size_t kSlotSize = 256;
constexpr size_t kNameField = 80;
constexpr size_t kDatasetField = 64;
constexpr size_t kCrcOffset = kSlotSize - 4;

void PutPadded(std::string* buffer, const std::string& value, size_t width) {
  std::string field = value.substr(0, width - 1);  // always NUL-terminated
  field.resize(width, '\0');
  buffer->append(field);
}

std::string TrimNul(const std::string& field) {
  const size_t nul = field.find('\0');
  return nul == std::string::npos ? field : field.substr(0, nul);
}

/// Serializes one slot (exactly kSlotSize bytes, CRC in the tail).
std::string EncodeSlot(const ManifestRecord& record) {
  std::string slot;
  slot.reserve(kSlotSize);
  slot.append(kManifestMagic, sizeof(kManifestMagic));
  PutU64(&slot, record.seq);
  PutI64(&slot, record.epoch);
  PutPadded(&slot, record.snapshot_file, kNameField);
  PutPadded(&slot, record.wal_file, kNameField);
  PutPadded(&slot, record.dataset, kDatasetField);
  PutU32(&slot, 0);  // reserved
  slot.resize(kCrcOffset, '\0');
  PutU32(&slot, Crc32Of(slot.data(), kCrcOffset));
  return slot;
}

enum class SlotState { kValid, kEmpty, kCorrupt };

SlotState DecodeSlot(const char* bytes, ManifestRecord* record,
                     std::string* why) {
  bool all_zero = true;
  for (size_t i = 0; i < kSlotSize; ++i) {
    if (bytes[i] != '\0') {
      all_zero = false;
      break;
    }
  }
  if (all_zero) return SlotState::kEmpty;
  if (std::memcmp(bytes, kManifestMagic, sizeof(kManifestMagic)) != 0) {
    *why = "bad magic";
    return SlotState::kCorrupt;
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, bytes + kCrcOffset, sizeof(stored_crc));
  if (Crc32Of(bytes, kCrcOffset) != stored_crc) {
    *why = "checksum mismatch (torn slot write)";
    return SlotState::kCorrupt;
  }
  WireReader r(bytes + sizeof(kManifestMagic),
               kSlotSize - sizeof(kManifestMagic));
  record->seq = r.GetU64();
  record->epoch = r.GetI64();
  record->snapshot_file = TrimNul(r.GetBytes(kNameField));
  record->wal_file = TrimNul(r.GetBytes(kNameField));
  record->dataset = TrimNul(r.GetBytes(kDatasetField));
  if (record->seq == 0) {
    *why = "zero seq under valid checksum";
    return SlotState::kCorrupt;
  }
  return SlotState::kValid;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace

serve::ServeStatus ManifestWriter::Open(const std::string& path,
                                        FaultInjector* injector,
                                        ManifestWriter* out) {
  std::string error;
  const bool fresh = !FileExists(path);
  DurableFile file = DurableFile::OpenRw(path, &error);
  if (!file.valid()) {
    return serve::ServeStatus::Unavailable("manifest open: " + error);
  }
  if (fresh) {
    const std::string zeros(2 * kSlotSize, '\0');
    if (!file.WriteAt(zeros.data(), zeros.size(), 0, injector,
                      "manifest format write", &error) ||
        !file.Sync(injector, "manifest format sync", &error)) {
      return serve::ServeStatus::Unavailable("manifest format: " + error);
    }
  }
  out->file_ = std::move(file);
  return serve::ServeStatus::Ok();
}

serve::ServeStatus ManifestWriter::Commit(const ManifestRecord& record,
                                          FaultInjector* injector) {
  const std::string slot = EncodeSlot(record);
  const long long offset =
      static_cast<long long>((record.seq % 2) * kSlotSize);
  std::string error;
  if (!file_.WriteAt(slot.data(), slot.size(), offset, injector,
                     "manifest slot write", &error) ||
      !file_.Sync(injector, "manifest slot sync", &error)) {
    return serve::ServeStatus::Unavailable("manifest commit: " + error);
  }
  return serve::ServeStatus::Ok();
}

serve::ServeStatus ReadManifest(const std::string& path,
                                std::vector<ManifestRecord>* records,
                                ManifestReadStats* stats) {
  records->clear();
  *stats = ManifestReadStats{};
  if (!FileExists(path)) {
    return serve::ServeStatus::NotFound("manifest missing: " + path);
  }
  std::string bytes;
  std::string error;
  if (!ReadFileBytes(path, &bytes, &error)) {
    return serve::ServeStatus::DataLoss("manifest unreadable: " + error);
  }
  bytes.resize(2 * kSlotSize, '\0');  // a short file reads as empty slots
  for (int slot = 0; slot < 2; ++slot) {
    ManifestRecord record;
    std::string why;
    switch (DecodeSlot(bytes.data() + slot * kSlotSize, &record, &why)) {
      case SlotState::kValid:
        ++stats->slots_valid;
        records->push_back(std::move(record));
        break;
      case SlotState::kEmpty:
        ++stats->slots_empty;
        break;
      case SlotState::kCorrupt:
        ++stats->slots_corrupt;
        if (!stats->detail.empty()) stats->detail += "; ";
        stats->detail += "slot " + std::to_string(slot) + ": " + why;
        break;
    }
  }
  if (records->size() == 2 && (*records)[0].seq < (*records)[1].seq) {
    std::swap((*records)[0], (*records)[1]);
  }
  if (!records->empty()) return serve::ServeStatus::Ok();
  if (stats->slots_corrupt > 0) {
    return serve::ServeStatus::DataLoss(
        "manifest " + path + " has no intact slot (" + stats->detail + ")");
  }
  return serve::ServeStatus::NotFound("manifest " + path +
                                      " was never committed");
}

}  // namespace fairmatch::recover

#include "fairmatch/recover/batch_codec.h"

#include <cstdint>

#include "fairmatch/recover/wire.h"

namespace fairmatch::recover {

namespace {

constexpr uint32_t kBatchVersion = 1;

}  // namespace

void EncodeBatch(const update::UpdateBatch& batch, int dims,
                 std::string* out) {
  PutU32(out, kBatchVersion);
  PutU32(out, static_cast<uint32_t>(dims));

  PutU32(out, static_cast<uint32_t>(batch.insert_objects.size()));
  for (const ObjectItem& o : batch.insert_objects) {
    for (int d = 0; d < dims; ++d) PutF32(out, o.point[d]);
    PutI32(out, o.capacity);
  }

  PutU32(out, static_cast<uint32_t>(batch.delete_objects.size()));
  for (ObjectId id : batch.delete_objects) PutI32(out, id);

  PutU32(out, static_cast<uint32_t>(batch.insert_functions.size()));
  for (const PrefFunction& f : batch.insert_functions) {
    for (int d = 0; d < dims; ++d) PutF64(out, f.alpha[d]);
    PutF64(out, f.gamma);
    PutI32(out, f.capacity);
  }

  PutU32(out, static_cast<uint32_t>(batch.delete_functions.size()));
  for (FunctionId id : batch.delete_functions) PutI32(out, id);
}

bool DecodeBatch(const std::string& payload, update::UpdateBatch* batch,
                 int* dims) {
  WireReader r(payload);
  if (r.GetU32() != kBatchVersion) return false;
  const int d = static_cast<int>(r.GetU32());
  if (!r.ok() || d < 1 || d > kMaxDims) return false;

  *batch = update::UpdateBatch{};
  if (dims != nullptr) *dims = d;

  const uint32_t n_io = r.GetU32();
  for (uint32_t i = 0; r.ok() && i < n_io; ++i) {
    ObjectItem o;
    o.point = Point(d);
    for (int k = 0; k < d; ++k) o.point[k] = r.GetF32();
    o.capacity = r.GetI32();
    batch->insert_objects.push_back(o);
  }

  const uint32_t n_do = r.GetU32();
  for (uint32_t i = 0; r.ok() && i < n_do; ++i) {
    batch->delete_objects.push_back(r.GetI32());
  }

  const uint32_t n_if = r.GetU32();
  for (uint32_t i = 0; r.ok() && i < n_if; ++i) {
    PrefFunction f;
    f.dims = d;
    for (int k = 0; k < d; ++k) f.alpha[k] = r.GetF64();
    f.gamma = r.GetF64();
    f.capacity = r.GetI32();
    batch->insert_functions.push_back(f);
  }

  const uint32_t n_df = r.GetU32();
  for (uint32_t i = 0; r.ok() && i < n_df; ++i) {
    batch->delete_functions.push_back(r.GetI32());
  }

  return r.ok() && r.remaining() == 0;
}

}  // namespace fairmatch::recover

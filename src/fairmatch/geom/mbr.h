// Minimum bounding rectangles for R-tree entries.
#ifndef FAIRMATCH_GEOM_MBR_H_
#define FAIRMATCH_GEOM_MBR_H_

#include <string>

#include "fairmatch/geom/point.h"

namespace fairmatch {

/// Axis-aligned box [lo, hi] in D dimensions.
class MBR {
 public:
  MBR() = default;

  /// Degenerate MBR around a single point.
  explicit MBR(const Point& p) : lo_(p), hi_(p) {}

  MBR(const Point& lo, const Point& hi) : lo_(lo), hi_(hi) {
    FAIRMATCH_DCHECK(lo.dims() == hi.dims());
  }

  /// An "empty" MBR that any Expand() call overwrites.
  static MBR Empty(int dims);

  int dims() const { return lo_.dims(); }
  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }

  /// Best corner under the larger-is-better convention.
  const Point& best_corner() const { return hi_; }
  /// Worst corner.
  const Point& worst_corner() const { return lo_; }

  bool is_empty() const { return empty_; }

  /// Grows to cover `p`.
  void Expand(const Point& p);
  /// Grows to cover `other`.
  void Expand(const MBR& other);

  bool Contains(const Point& p) const;
  bool Intersects(const MBR& other) const;

  double Area() const;
  double Margin() const;

  /// Area increase if this MBR were expanded to cover `p`.
  double Enlargement(const Point& p) const;

  /// Area increase if this MBR were expanded to cover `other`.
  double Enlargement(const MBR& other) const;

  /// Upper bound of sum-of-coordinates over the box: Sum(hi). Monotone
  /// key for BBS ordering ("ascending L1 distance from the sky point").
  double BestSum() const { return hi_.Sum(); }

  /// Upper bound of the linear score over the box:
  /// sum_i w[i] * hi[i], assuming non-negative weights (BRS maxscore).
  double MaxScore(const double* weights) const { return hi_.Score(weights); }

  /// True iff the box intersects the dominance region of `p`, i.e. it
  /// contains at least one point q with q <= p in every dimension.
  bool IntersectsDominanceRegionOf(const Point& p) const;

  bool operator==(const MBR& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_ && empty_ == other.empty_;
  }

  std::string ToString() const;

 private:
  Point lo_;
  Point hi_;
  bool empty_ = false;

  friend class NodeView;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_GEOM_MBR_H_

#include "fairmatch/geom/mbr.h"

#include <algorithm>
#include <limits>

namespace fairmatch {

MBR MBR::Empty(int dims) {
  MBR box;
  box.lo_ = Point(dims, std::numeric_limits<float>::max());
  box.hi_ = Point(dims, std::numeric_limits<float>::lowest());
  box.empty_ = true;
  return box;
}

void MBR::Expand(const Point& p) {
  FAIRMATCH_DCHECK(lo_.dims() == p.dims());
  for (int i = 0; i < p.dims(); ++i) {
    lo_[i] = std::min(lo_[i], p[i]);
    hi_[i] = std::max(hi_[i], p[i]);
  }
  empty_ = false;
}

void MBR::Expand(const MBR& other) {
  if (other.empty_) return;
  Expand(other.lo_);
  Expand(other.hi_);
}

bool MBR::Contains(const Point& p) const {
  if (empty_) return false;
  for (int i = 0; i < p.dims(); ++i) {
    if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
  }
  return true;
}

bool MBR::Intersects(const MBR& other) const {
  if (empty_ || other.empty_) return false;
  for (int i = 0; i < dims(); ++i) {
    if (other.hi_[i] < lo_[i] || other.lo_[i] > hi_[i]) return false;
  }
  return true;
}

double MBR::Area() const {
  if (empty_) return 0.0;
  double area = 1.0;
  for (int i = 0; i < dims(); ++i) {
    area *= static_cast<double>(hi_[i]) - static_cast<double>(lo_[i]);
  }
  return area;
}

double MBR::Margin() const {
  if (empty_) return 0.0;
  double margin = 0.0;
  for (int i = 0; i < dims(); ++i) {
    margin += static_cast<double>(hi_[i]) - static_cast<double>(lo_[i]);
  }
  return margin;
}

double MBR::Enlargement(const Point& p) const {
  if (empty_) return 0.0;
  double expanded = 1.0;
  for (int i = 0; i < dims(); ++i) {
    float lo = std::min(lo_[i], p[i]);
    float hi = std::max(hi_[i], p[i]);
    expanded *= static_cast<double>(hi) - static_cast<double>(lo);
  }
  return expanded - Area();
}

double MBR::Enlargement(const MBR& other) const {
  if (empty_) return other.Area();
  if (other.empty_) return 0.0;
  double expanded = 1.0;
  for (int i = 0; i < dims(); ++i) {
    float lo = std::min(lo_[i], other.lo_[i]);
    float hi = std::max(hi_[i], other.hi_[i]);
    expanded *= static_cast<double>(hi) - static_cast<double>(lo);
  }
  return expanded - Area();
}

bool MBR::IntersectsDominanceRegionOf(const Point& p) const {
  if (empty_) return false;
  for (int i = 0; i < dims(); ++i) {
    if (lo_[i] > p[i]) return false;
  }
  return true;
}

std::string MBR::ToString() const {
  if (empty_) return "[empty]";
  return "[" + lo_.ToString() + " .. " + hi_.ToString() + "]";
}

}  // namespace fairmatch

// D-dimensional points with runtime dimensionality (D <= kMaxDims).
//
// Convention throughout fairmatch: *larger coordinate values are better*
// (the paper's "best point" is the top corner of the space). Dominance,
// skyline and score computations all follow this orientation.
#ifndef FAIRMATCH_GEOM_POINT_H_
#define FAIRMATCH_GEOM_POINT_H_

#include <array>
#include <string>
#include <vector>

#include "fairmatch/common/check.h"
#include "fairmatch/common/types.h"

namespace fairmatch {

/// Fixed-capacity point. Coordinates are stored as float (matching the
/// on-page R-tree layout); scores are computed in double.
class Point {
 public:
  Point() : dims_(0) { v_.fill(0.0f); }

  explicit Point(int dims, float value = 0.0f) : dims_(dims) {
    FAIRMATCH_CHECK(dims >= 1 && dims <= kMaxDims);
    v_.fill(0.0f);
    for (int i = 0; i < dims_; ++i) v_[i] = value;
  }

  /// Builds a point from a coordinate vector.
  static Point FromVector(const std::vector<float>& coords);

  int dims() const { return dims_; }

  float operator[](int i) const {
    FAIRMATCH_DCHECK(i >= 0 && i < dims_);
    return v_[i];
  }
  float& operator[](int i) {
    FAIRMATCH_DCHECK(i >= 0 && i < dims_);
    return v_[i];
  }

  /// True iff this point dominates `other`: >= in every dimension and
  /// the points do not coincide (paper Section 2.2).
  bool Dominates(const Point& other) const;

  /// True iff every coordinate is >= the corresponding one of `other`
  /// (coincident points allowed). This is the pruning relation used for
  /// R-tree entries: an entry whose best corner is covered this way
  /// cannot contain any skyline member that is not a duplicate.
  bool DominatesOrEqual(const Point& other) const;

  bool operator==(const Point& other) const;
  bool operator!=(const Point& other) const { return !(*this == other); }

  /// Sum of coordinates. Ordering by descending Sum() is the "ascending
  /// distance from the sky point" order used by BBS under L1 distance.
  double Sum() const;

  /// Linear score sum_i weights[i] * coord[i]. `weights` must have
  /// exactly dims() entries.
  double Score(const double* weights) const;

  std::string ToString() const;

 private:
  std::array<float, kMaxDims> v_;
  int dims_;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_GEOM_POINT_H_

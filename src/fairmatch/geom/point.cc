#include "fairmatch/geom/point.h"

#include <cstdio>

namespace fairmatch {

Point Point::FromVector(const std::vector<float>& coords) {
  Point p(static_cast<int>(coords.size()));
  for (int i = 0; i < p.dims(); ++i) p[i] = coords[i];
  return p;
}

bool Point::Dominates(const Point& other) const {
  FAIRMATCH_DCHECK(dims_ == other.dims_);
  bool strict = false;
  for (int i = 0; i < dims_; ++i) {
    if (v_[i] < other.v_[i]) return false;
    if (v_[i] > other.v_[i]) strict = true;
  }
  return strict;
}

bool Point::DominatesOrEqual(const Point& other) const {
  FAIRMATCH_DCHECK(dims_ == other.dims_);
  for (int i = 0; i < dims_; ++i) {
    if (v_[i] < other.v_[i]) return false;
  }
  return true;
}

bool Point::operator==(const Point& other) const {
  if (dims_ != other.dims_) return false;
  for (int i = 0; i < dims_; ++i) {
    if (v_[i] != other.v_[i]) return false;
  }
  return true;
}

double Point::Sum() const {
  double s = 0.0;
  for (int i = 0; i < dims_; ++i) s += v_[i];
  return s;
}

double Point::Score(const double* weights) const {
  double s = 0.0;
  for (int i = 0; i < dims_; ++i) s += weights[i] * v_[i];
  return s;
}

std::string Point::ToString() const {
  std::string out = "(";
  char buf[32];
  for (int i = 0; i < dims_; ++i) {
    std::snprintf(buf, sizeof(buf), "%s%.4f", i > 0 ? ", " : "", v_[i]);
    out += buf;
  }
  out += ")";
  return out;
}

}  // namespace fairmatch

#include "fairmatch/topk/function_lists.h"

#include <algorithm>

#include "fairmatch/common/check.h"

namespace fairmatch {

FunctionLists::FunctionLists(const FunctionSet* fns) : fns_(fns) {
  FAIRMATCH_CHECK(!fns->empty());
  dims_ = (*fns)[0].dims;
  max_gamma_ = 0.0;
  lists_.resize(dims_);
  for (int d = 0; d < dims_; ++d) {
    lists_[d].reserve(fns->size());
  }
  for (const PrefFunction& f : *fns) {
    FAIRMATCH_CHECK(f.dims == dims_);
    max_gamma_ = std::max(max_gamma_, f.gamma);
    for (int d = 0; d < dims_; ++d) {
      lists_[d].emplace_back(f.eff(d), f.id);
    }
  }
  for (int d = 0; d < dims_; ++d) {
    std::sort(lists_[d].begin(), lists_[d].end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
  }
}

size_t FunctionLists::memory_bytes() const {
  size_t bytes = 0;
  for (const auto& list : lists_) {
    bytes += list.size() * sizeof(std::pair<double, FunctionId>);
  }
  return bytes;
}

}  // namespace fairmatch

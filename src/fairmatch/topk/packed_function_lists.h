// Packed, memory-mappable function lists — the third FunctionIndexBase
// backend (after the in-memory FunctionLists and the counted-I/O
// DiskFunctionStore).
//
// The store is one immutable byte image, built once from a function
// set and then queried in place with zero per-probe allocation:
//
//   FileHeader | eff table | sharded block directory | block sequences
//
//  * eff table — num_functions x dims doubles, function-major
//    (`eff[fid * dims + d]`), the full-precision effective coefficients
//    alpha_d * gamma. Scores computed from a row are bit-identical to
//    PrefFunction::Score, so the packed backend agrees exactly with the
//    other two on every tie.
//  * block sequences — each of the D coefficient lists (entries in
//    descending-coefficient = descending-impact order, ties by
//    ascending id, the FunctionLists order) is cut into blocks of
//    `block_entries` entries. A block stores a fixed-size header
//    {max_impact, count, base_fid, id_bytes, checksum} followed by the
//    entry ids as `id_bytes`-wide little-endian deltas from base_fid
//    (1, 2 or 4 bytes, the narrowest width that fits the block — the
//    score-at-a-time posting-block layout). Coefficients are NOT
//    duplicated per entry: they are looked up in the eff table at
//    decode time, which is what makes the image ~2x smaller per
//    (function, dim) than DiskFunctionStore's 16-byte ListRecords.
//  * sharded block directory — per list, shard base offsets (u64, one
//    per 64 blocks) plus per-block u32 deltas: O(1) position lookup of
//    any block at half the size of a flat 64-bit offset table.
//
// The image lives either in an owned in-memory buffer (the fallback,
// and the batch/test default) or in a file mapped read-only through
// storage/mmap_file.h. Either way queries never touch the simulated
// counted-I/O disk: like FunctionLists, the packed store reports zero
// io_accesses, and its default-traversal probe sequence is identical
// to FunctionLists' (tests/packed_lists_test.cc pins both). The block
// granularity exists for ReverseTop1's impact-ordered traversal
// (ReverseTop1Options::impact_ordered) and SB-alt-Packed, which consume
// whole blocks in descending max-impact order and early-terminate on
// the TA threshold.
//
// Integrity: every block carries a CRC32 over its (zero-checksummed)
// header and payload, verified on Open() along with structural bounds,
// so a corrupt or truncated file is rejected before any query runs.
#ifndef FAIRMATCH_TOPK_PACKED_FUNCTION_LISTS_H_
#define FAIRMATCH_TOPK_PACKED_FUNCTION_LISTS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fairmatch/common/preference.h"
#include "fairmatch/storage/mmap_file.h"
#include "fairmatch/topk/function_lists.h"

namespace fairmatch {

/// Build/placement knobs for a PackedFunctionStore.
struct PackedStoreOptions {
  /// Entries per block. Smaller blocks terminate earlier under the
  /// impact-ordered traversal; larger ones amortize the header and
  /// decode better. 128 keeps a block (header + 2-byte ids) in a few
  /// cache lines.
  int block_entries = 128;

  /// Serialize the image to `path` and map it read-only instead of
  /// keeping the built buffer. Falls back to the in-memory buffer
  /// (mapped() == false) if the file cannot be written or mapped.
  bool use_mmap = false;

  /// File path for use_mmap. Empty = an auto-generated temp path
  /// (removed on destruction).
  std::string path;

  /// Keep the written file on destruction (only meaningful with an
  /// explicit `path`).
  bool keep_file = false;
};

/// Why an Open()/Attach failed, machine-readable. The string `error`
/// out-params stay the human-readable detail; this enum is what the
/// serving layer surfaces in a typed ServeStatus so clients can
/// distinguish "file missing" from "file corrupt".
enum class PackedOpenError {
  kNone = 0,
  /// The file could not be read or mapped at all.
  kIoError,
  /// The image is shorter than its header claims (or than the header
  /// itself).
  kTruncated,
  /// The leading magic is not a packed function-list image.
  kBadMagic,
  /// A header field is out of range or self-inconsistent.
  kBadHeader,
  /// A directory offset points outside the blocks region.
  kBadDirectory,
  /// A block header or payload is structurally invalid.
  kBadBlock,
  /// A block's CRC32 does not match its bytes.
  kBadChecksum,
};

/// Stable identifier for logs/statuses ("NONE", "IO_ERROR", ...).
inline const char* PackedOpenErrorName(PackedOpenError error) {
  switch (error) {
    case PackedOpenError::kNone:
      return "NONE";
    case PackedOpenError::kIoError:
      return "IO_ERROR";
    case PackedOpenError::kTruncated:
      return "TRUNCATED";
    case PackedOpenError::kBadMagic:
      return "BAD_MAGIC";
    case PackedOpenError::kBadHeader:
      return "BAD_HEADER";
    case PackedOpenError::kBadDirectory:
      return "BAD_DIRECTORY";
    case PackedOpenError::kBadBlock:
      return "BAD_BLOCK";
    case PackedOpenError::kBadChecksum:
      return "BAD_CHECKSUM";
  }
  return "UNKNOWN";
}

/// Immutable packed function-list index over one function set.
///
/// Thread safety: same single-lane rule as the other backends —
/// Entry() mutates the per-list decode cache. Batch items each build
/// their own store; concurrent *requests* over one resident image each
/// query through their own NewSharedView() instead (the image bytes
/// are immutable, only the decode caches are per-view).
class PackedFunctionStore : public FunctionIndexBase {
 public:
  /// Builds the packed image from `fns` (and mmaps it per `opts`).
  /// `fns` must be non-empty with dense ids.
  explicit PackedFunctionStore(const FunctionSet& fns,
                               PackedStoreOptions opts = {});

  /// Opens an existing packed file, verifying structure and per-block
  /// checksums. Returns nullptr (with a one-line `error` and, when
  /// `error_code` is non-null, the failure class) on any malformed,
  /// truncated or corrupt image.
  static std::unique_ptr<PackedFunctionStore> Open(
      const std::string& path, std::string* error = nullptr,
      PackedOpenError* error_code = nullptr);

  /// Builds the image from `fns` and writes it to `path` without
  /// constructing a queryable store.
  static bool WriteFile(const FunctionSet& fns, const std::string& path,
                        int block_entries = 128, std::string* error = nullptr);

  /// Patch-overlay construction — the incremental-update path
  /// (update/delta_builder.h). Presents `live_fns` (dense ids) without
  /// rebuilding the image: `base`'s flat image is kept verbatim, dead
  /// ids are tombstoned and surviving ones renamed through `remap`
  /// (`remap[base_fid]` = the function's id in `live_fns`, or -1 =
  /// tombstoned), and functions absent from the image (arrivals since
  /// it was built) are appended as sorted per-dim patch blocks that
  /// every traversal consults alongside the base blocks. `base_owner`
  /// keeps the object owning `base` alive for the overlay's lifetime
  /// (epoch chaining across republishes). The overlay preserves the
  /// descending-impact invariants the TA Entry() scan and the
  /// block-ordered traversals rely on: merged Entry() order is globally
  /// descending, and a base block's max_impact stays a valid upper
  /// bound even when its leading entries are tombstoned. Remapped
  /// functions must be byte-identical to their base-image versions —
  /// renames and removals only; a changed function is a remove + add.
  static std::unique_ptr<PackedFunctionStore> NewPatched(
      const PackedFunctionStore& base, std::shared_ptr<const void> base_owner,
      const FunctionSet& live_fns, const std::vector<int32_t>& remap);

  /// True for a patch overlay (NewPatched), false for a flat image.
  bool patched() const { return patch_ != nullptr; }
  /// Overlay accounting, 0 for flat images: entries appended by the
  /// patch and base-image ids tombstoned. Their sum against size() is
  /// the compaction trigger (update/delta_builder.h).
  int patch_added() const;
  int patch_tombstones() const;

  /// A queryable view sharing `base`'s packed image: no byte copy, no
  /// re-verification — only the view's private decode caches are
  /// allocated. The image bytes themselves are immutable, so any number
  /// of views (plus `base`) may be queried concurrently from different
  /// lanes; the single-lane rule applies to each view individually.
  /// This is what lets a resident dataset (serve/dataset_registry.h)
  /// keep ONE image warm while every in-flight request probes it
  /// through its own view. `base` must outlive the view.
  static std::unique_ptr<PackedFunctionStore> NewSharedView(
      const PackedFunctionStore& base);

  ~PackedFunctionStore() override;

  PackedFunctionStore(const PackedFunctionStore&) = delete;
  PackedFunctionStore& operator=(const PackedFunctionStore&) = delete;

  // --- FunctionIndexBase ---------------------------------------------
  int dims() const override { return dims_; }
  int size() const override { return num_functions_; }
  double max_gamma() const override { return max_gamma_; }
  std::pair<double, FunctionId> Entry(int dim, int pos) override;
  double ScoreOf(FunctionId fid, const Point& o) override {
    const double* eff = EffRow(fid);
    double s = 0.0;
    for (int i = 0; i < dims_; ++i) s += eff[i] * o[i];
    return s;
  }
  PackedFunctionStore* packed() override { return this; }

  // --- block API (impact-ordered traversals) -------------------------
  /// Blocks per list (identical for every list).
  int num_blocks() const { return num_blocks_; }
  int block_entries() const { return block_entries_; }

  /// Upper bound (= first, largest coefficient) of block `block` of
  /// list `dim`.
  double BlockMaxImpact(int dim, int block) const;

  /// Decodes the ids of one block into `out_fids` (capacity >=
  /// block_entries()); returns the entry count. Zero allocation; the
  /// byte-packed deltas go through simd::UnpackIds.
  int DecodeBlock(int dim, int block, int32_t* out_fids) const;

  /// The function's effective-coefficient row (`dims()` doubles).
  const double* EffRow(FunctionId fid) const {
    return eff_table_ + static_cast<size_t>(fid) * dims_;
  }
  double eff_of(FunctionId fid, int d) const { return EffRow(fid)[d]; }

  // --- placement / accounting ----------------------------------------
  /// True when the image bytes are an OS file mapping (vs the in-memory
  /// buffer); a patch overlay reports its base image's placement.
  bool mapped() const;

  /// Total bytes held: the packed image plus the per-list decode
  /// caches. For a mapped image this is the mapping size (resident on
  /// demand), the honest comparison against the other backends'
  /// materialized footprints.
  size_t footprint_bytes() const;

  /// Bytes of the packed image alone (the bytes/function bench metric);
  /// for a patch overlay, the base image plus the patch tables.
  size_t image_bytes() const;

 private:
  PackedFunctionStore() = default;

  /// Points the accessors into `data` and re-derives the directory;
  /// `verify_checksums` additionally walks every block (Open()). On
  /// failure fills `error` and, when non-null, `error_code`.
  bool Attach(const std::byte* data, size_t size, bool verify_checksums,
              std::string* error, PackedOpenError* error_code = nullptr);

  /// Offset of block `block` of list `dim` inside the blocks region.
  size_t BlockOffset(int dim, int block) const;

  // Image storage: exactly one of `buffer_` (in-memory) or `file_`
  // (mapped) holds the bytes that `data_` points into.
  std::unique_ptr<std::byte[]> buffer_;
  MmapFile file_;
  const std::byte* data_ = nullptr;
  size_t image_size_ = 0;
  std::string owned_path_;  // non-empty = remove this file on destruction

  // Parsed header fields.
  int dims_ = 0;
  int num_functions_ = 0;
  int block_entries_ = 0;
  int num_blocks_ = 0;
  double max_gamma_ = 1.0;
  const double* eff_table_ = nullptr;
  const std::byte* dir_ = nullptr;     // sharded directory region
  const std::byte* blocks_ = nullptr;  // block sequences region
  size_t blocks_size_ = 0;
  size_t dir_stride_ = 0;  // directory bytes per list
  int num_shards_ = 0;

  // Per-list single-block decode cache: sequential Entry() scans (the
  // default TA traversal) decode each block once.
  struct DecodeCache {
    int block = -1;
    int count = 0;
    std::vector<int32_t> fids;
  };
  mutable std::vector<DecodeCache> cache_;

  // --- patch overlay (NewPatched) ------------------------------------
  // Immutable overlay state, shared by every view of the overlay.
  struct PatchState;
  std::shared_ptr<const PatchState> patch_;

  /// Per-list merge cursor over (live base entries, patch entries) for
  /// the overlay's Entry() path. Private per store/view, like cache_.
  struct MergeCursor {
    int pos = 0;         // merged live positions consumed so far
    int base_block = 0;  // next base block to decode
    int base_idx = 0;    // next entry within the decoded block
    int base_count = 0;
    bool base_has = false;  // a peeked, not yet consumed base candidate
    double base_coeff = 0.0;
    int32_t base_live = -1;
    size_t patch_idx = 0;  // next patch-list entry
    std::vector<int32_t> fids;  // decoded base-block ids
  };
  std::vector<MergeCursor> merge_;

  /// Peeks the next non-tombstoned base entry of list `dim` into the
  /// cursor (no-op if one is already peeked); false when exhausted.
  bool PeekBaseEntry(int dim);
  /// Produces the next entry of the merged descending-coefficient list.
  std::pair<double, FunctionId> NextMerged(int dim);
};

}  // namespace fairmatch

#endif  // FAIRMATCH_TOPK_PACKED_FUNCTION_LISTS_H_

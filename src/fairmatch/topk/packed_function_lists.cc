#include "fairmatch/topk/packed_function_lists.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <utility>

#include "fairmatch/common/check.h"
#include "fairmatch/common/crc32.h"
#include "fairmatch/common/simd.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace fairmatch {

namespace {

// "FMPKLST1" as a little-endian u64.
constexpr uint64_t kMagic = 0x3154534C4B504D46ull;
constexpr uint32_t kVersion = 1;
// Directory sharding granularity: one u64 base per 64 blocks, u32
// deltas within the shard.
constexpr int kShardBlocks = 64;

/// On-image file header (64 bytes, host-endian; the image is a local
/// artifact, not an interchange format).
struct FileHeaderRaw {
  uint64_t magic;
  uint32_t version;
  uint32_t dims;
  uint32_t num_functions;
  uint32_t block_entries;
  double max_gamma;
  uint64_t eff_offset;
  uint64_t dir_offset;
  uint64_t blocks_offset;
  uint64_t file_size;
};
static_assert(sizeof(FileHeaderRaw) == 64, "packed header layout drifted");

/// On-image block header (24 bytes). `checksum` is CRC32 over this
/// header with the checksum field zeroed, then the payload bytes.
struct BlockHeaderRaw {
  double max_impact;
  uint32_t count;
  int32_t base_fid;
  uint16_t id_bytes;
  uint16_t reserved;
  uint32_t checksum;
};
static_assert(sizeof(BlockHeaderRaw) == 24, "block header layout drifted");

size_t AlignUp8(size_t x) { return (x + 7) & ~size_t{7}; }

uint32_t BlockChecksum(const BlockHeaderRaw& header, const std::byte* payload,
                       size_t payload_bytes) {
  BlockHeaderRaw copy = header;
  copy.checksum = 0;
  uint32_t state = 0xFFFFFFFFu;
  state = Crc32Update(state, &copy, sizeof(copy));
  state = Crc32Update(state, payload, payload_bytes);
  return state ^ 0xFFFFFFFFu;
}

/// Narrowest byte width that encodes deltas up to `max_delta`.
uint16_t IdWidth(uint32_t max_delta) {
  if (max_delta < (1u << 8)) return 1;
  if (max_delta < (1u << 16)) return 2;
  return 4;
}

std::string AutoTempPath() {
  static std::atomic<uint64_t> seq{0};
#if defined(__unix__) || defined(__APPLE__)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return "/tmp/fairmatch_packed_" + std::to_string(pid) + "_" +
         std::to_string(seq.fetch_add(1)) + ".pkfl";
}

/// Serializes `fns` into one packed image. List order is exactly
/// FunctionLists': descending effective coefficient, ties by ascending
/// id — the probe-sequence parity the differential tests pin depends
/// on the two backends sorting identically.
std::unique_ptr<std::byte[]> BuildImage(const FunctionSet& fns,
                                        int block_entries, size_t* out_size) {
  const int dims = fns[0].dims;
  const int n = static_cast<int>(fns.size());
  // A block never holds more entries than the list has; clamping keeps
  // the default block size usable on small problems.
  block_entries = std::min(block_entries, n);
  double max_gamma = 0.0;
  for (const PrefFunction& f : fns) {
    FAIRMATCH_CHECK(f.dims == dims);
    FAIRMATCH_CHECK(f.id >= 0 && f.id < n);
    max_gamma = std::max(max_gamma, f.gamma);
  }

  std::vector<std::vector<std::pair<double, int32_t>>> lists(dims);
  for (int d = 0; d < dims; ++d) lists[d].reserve(fns.size());
  for (const PrefFunction& f : fns) {
    for (int d = 0; d < dims; ++d) lists[d].emplace_back(f.eff(d), f.id);
  }
  for (int d = 0; d < dims; ++d) {
    std::sort(lists[d].begin(), lists[d].end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
  }

  const int num_blocks = (n + block_entries - 1) / block_entries;
  const int num_shards = (num_blocks + kShardBlocks - 1) / kShardBlocks;

  // Plan per-block placement (offsets relative to the blocks region).
  std::vector<std::vector<size_t>> rel(dims);
  std::vector<std::vector<int32_t>> bases(dims);
  std::vector<std::vector<uint16_t>> widths(dims);
  size_t cursor = 0;
  for (int d = 0; d < dims; ++d) {
    rel[d].resize(num_blocks);
    bases[d].resize(num_blocks);
    widths[d].resize(num_blocks);
    for (int b = 0; b < num_blocks; ++b) {
      const int begin = b * block_entries;
      const int count = std::min(block_entries, n - begin);
      int32_t base = lists[d][begin].second;
      int32_t hi = base;
      for (int i = 1; i < count; ++i) {
        const int32_t fid = lists[d][begin + i].second;
        base = std::min(base, fid);
        hi = std::max(hi, fid);
      }
      bases[d][b] = base;
      widths[d][b] = IdWidth(static_cast<uint32_t>(hi - base));
      rel[d][b] = cursor;
      cursor += AlignUp8(sizeof(BlockHeaderRaw) +
                         static_cast<size_t>(count) * widths[d][b]);
    }
  }
  const size_t blocks_size = cursor;

  const size_t eff_offset = sizeof(FileHeaderRaw);
  const size_t dir_offset =
      eff_offset + static_cast<size_t>(n) * dims * sizeof(double);
  const size_t dir_stride = static_cast<size_t>(num_shards) * sizeof(uint64_t) +
                            static_cast<size_t>(num_blocks) * sizeof(uint32_t);
  const size_t blocks_offset = AlignUp8(dir_offset + dims * dir_stride);
  const size_t total = blocks_offset + blocks_size;

  auto image = std::make_unique<std::byte[]>(total);
  std::memset(image.get(), 0, total);

  FileHeaderRaw header{};
  header.magic = kMagic;
  header.version = kVersion;
  header.dims = static_cast<uint32_t>(dims);
  header.num_functions = static_cast<uint32_t>(n);
  header.block_entries = static_cast<uint32_t>(block_entries);
  header.max_gamma = max_gamma;
  header.eff_offset = eff_offset;
  header.dir_offset = dir_offset;
  header.blocks_offset = blocks_offset;
  header.file_size = total;
  std::memcpy(image.get(), &header, sizeof(header));

  // Effective-coefficient table, function-major. Each cell rounds
  // alpha * gamma exactly once (PrefFunction::eff), so row scores
  // reproduce PrefFunction::Score bit-for-bit.
  auto* eff = reinterpret_cast<double*>(image.get() + eff_offset);
  for (const PrefFunction& f : fns) {
    for (int d = 0; d < dims; ++d) {
      eff[static_cast<size_t>(f.id) * dims + d] = f.eff(d);
    }
  }

  // Sharded directory.
  for (int d = 0; d < dims; ++d) {
    std::byte* dir = image.get() + dir_offset + d * dir_stride;
    for (int s = 0; s < num_shards; ++s) {
      const uint64_t shard_base = rel[d][s * kShardBlocks];
      std::memcpy(dir + static_cast<size_t>(s) * sizeof(uint64_t),
                  &shard_base, sizeof(shard_base));
    }
    std::byte* deltas = dir + static_cast<size_t>(num_shards) * sizeof(uint64_t);
    for (int b = 0; b < num_blocks; ++b) {
      const uint32_t delta = static_cast<uint32_t>(
          rel[d][b] - rel[d][(b / kShardBlocks) * kShardBlocks]);
      std::memcpy(deltas + static_cast<size_t>(b) * sizeof(uint32_t), &delta,
                  sizeof(delta));
    }
  }

  // Block sequences.
  for (int d = 0; d < dims; ++d) {
    for (int b = 0; b < num_blocks; ++b) {
      const int begin = b * block_entries;
      const int count = std::min(block_entries, n - begin);
      const uint16_t width = widths[d][b];
      std::byte* block = image.get() + blocks_offset + rel[d][b];
      std::byte* payload = block + sizeof(BlockHeaderRaw);
      for (int i = 0; i < count; ++i) {
        const uint32_t delta =
            static_cast<uint32_t>(lists[d][begin + i].second - bases[d][b]);
        std::memcpy(payload + static_cast<size_t>(i) * width, &delta, width);
      }
      BlockHeaderRaw bh{};
      bh.max_impact = lists[d][begin].first;
      bh.count = static_cast<uint32_t>(count);
      bh.base_fid = bases[d][b];
      bh.id_bytes = width;
      bh.reserved = 0;
      bh.checksum =
          BlockChecksum(bh, payload, static_cast<size_t>(count) * width);
      std::memcpy(block, &bh, sizeof(bh));
    }
  }

  *out_size = total;
  return image;
}

}  // namespace

PackedFunctionStore::PackedFunctionStore(const FunctionSet& fns,
                                         PackedStoreOptions opts) {
  FAIRMATCH_CHECK(!fns.empty());
  FAIRMATCH_CHECK(opts.block_entries >= 1);
  size_t size = 0;
  std::unique_ptr<std::byte[]> image = BuildImage(fns, opts.block_entries,
                                                  &size);
  std::string error;
  if (opts.use_mmap) {
    std::string path = opts.path.empty() ? AutoTempPath() : opts.path;
    if (MmapFile::Write(path, image.get(), size, &error) &&
        file_.Map(path, &error)) {
      if (opts.path.empty() || !opts.keep_file) owned_path_ = path;
      FAIRMATCH_CHECK(
          Attach(file_.data(), file_.size(), /*verify_checksums=*/false,
                 &error));
      return;
    }
    // In-memory fallback: the freshly built image is still in hand.
    file_.Reset();
  }
  buffer_ = std::move(image);
  FAIRMATCH_CHECK(
      Attach(buffer_.get(), size, /*verify_checksums=*/false, &error));
}

PackedFunctionStore::~PackedFunctionStore() {
  if (!owned_path_.empty()) {
    file_.Reset();  // unmap before removing the backing file
    std::remove(owned_path_.c_str());
  }
}

std::unique_ptr<PackedFunctionStore> PackedFunctionStore::Open(
    const std::string& path, std::string* error,
    PackedOpenError* error_code) {
  if (error_code != nullptr) *error_code = PackedOpenError::kNone;
  std::unique_ptr<PackedFunctionStore> store(new PackedFunctionStore());
  if (!store->file_.Map(path, error)) {
    if (error_code != nullptr) *error_code = PackedOpenError::kIoError;
    return nullptr;
  }
  if (!store->Attach(store->file_.data(), store->file_.size(),
                     /*verify_checksums=*/true, error, error_code)) {
    return nullptr;
  }
  return store;
}

bool PackedFunctionStore::WriteFile(const FunctionSet& fns,
                                    const std::string& path, int block_entries,
                                    std::string* error) {
  FAIRMATCH_CHECK(!fns.empty());
  FAIRMATCH_CHECK(block_entries >= 1);
  size_t size = 0;
  std::unique_ptr<std::byte[]> image = BuildImage(fns, block_entries, &size);
  return MmapFile::Write(path, image.get(), size, error);
}

/// Immutable overlay state over a flat base image. Shared (read-only)
/// by the overlay store and all its views; only merge/decode cursors
/// are per-view.
struct PackedFunctionStore::PatchState {
  const PackedFunctionStore* base = nullptr;
  std::shared_ptr<const void> base_owner;  // keeps `base`'s owner alive
  std::vector<int32_t> remap;              // base fid -> live fid / -1
  std::vector<double> eff;                 // live_functions x dims
  /// Per-dim appended entries (descending eff, ties by ascending id):
  /// the live functions absent from the base image.
  std::vector<std::vector<std::pair<double, int32_t>>> patch_lists;
  /// Per-dim block sequence in descending max-impact order: value >= 0
  /// is a base block index, value < 0 is ~(patch block index).
  std::vector<std::vector<int32_t>> block_order;
  int added = 0;
  int tombstones = 0;

  size_t bytes() const {
    size_t total = sizeof(*this) + remap.capacity() * sizeof(int32_t) +
                   eff.capacity() * sizeof(double);
    for (const auto& list : patch_lists) {
      total += list.capacity() * sizeof(std::pair<double, int32_t>);
    }
    for (const auto& order : block_order) {
      total += order.capacity() * sizeof(int32_t);
    }
    return total;
  }
};

std::unique_ptr<PackedFunctionStore> PackedFunctionStore::NewPatched(
    const PackedFunctionStore& base, std::shared_ptr<const void> base_owner,
    const FunctionSet& live_fns, const std::vector<int32_t>& remap) {
  FAIRMATCH_CHECK(base.data_ != nullptr && base.patch_ == nullptr);
  FAIRMATCH_CHECK(remap.size() == static_cast<size_t>(base.size()));
  FAIRMATCH_CHECK(!live_fns.empty());
  const int dims = base.dims();
  const int live = static_cast<int>(live_fns.size());

  auto state = std::make_shared<PatchState>();
  state->base = &base;
  state->base_owner = std::move(base_owner);
  state->remap = remap;

  // Which live ids the base image already covers (renamed survivors).
  std::vector<char> from_base(live_fns.size(), 0);
  for (int32_t mapped : remap) {
    if (mapped < 0) {
      ++state->tombstones;
      continue;
    }
    FAIRMATCH_CHECK(mapped < live && !from_base[mapped]);
    from_base[mapped] = 1;
  }

  // Live eff table + per-dim patch lists for the functions the image
  // lacks, in the FunctionLists order (descending eff, ties by
  // ascending id) so merged traversal order matches a rebuilt list's.
  state->eff.resize(static_cast<size_t>(live) * dims);
  state->patch_lists.resize(dims);
  double max_gamma = 0.0;
  for (int f = 0; f < live; ++f) {
    FAIRMATCH_CHECK(live_fns[f].dims == dims && live_fns[f].id == f);
    max_gamma = std::max(max_gamma, live_fns[f].gamma);
    for (int d = 0; d < dims; ++d) {
      state->eff[static_cast<size_t>(f) * dims + d] = live_fns[f].eff(d);
    }
    if (from_base[f]) continue;
    ++state->added;
    for (int d = 0; d < dims; ++d) {
      state->patch_lists[d].emplace_back(live_fns[f].eff(d), f);
    }
  }
  for (int d = 0; d < dims; ++d) {
    std::sort(state->patch_lists[d].begin(), state->patch_lists[d].end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
  }

  // Merged per-dim block order: base blocks (already descending by
  // max_impact) interleaved with the patch blocks by max_impact, ties
  // to the base side. Every dim has the same block count.
  const int block_entries = base.block_entries_;
  const int patch_blocks =
      (state->added + block_entries - 1) / block_entries;
  state->block_order.resize(dims);
  for (int d = 0; d < dims; ++d) {
    std::vector<int32_t>& order = state->block_order[d];
    order.reserve(static_cast<size_t>(base.num_blocks_) + patch_blocks);
    int bb = 0;
    int pb = 0;
    while (bb < base.num_blocks_ || pb < patch_blocks) {
      if (pb >= patch_blocks) {
        order.push_back(bb++);
        continue;
      }
      const double patch_impact =
          state->patch_lists[d][static_cast<size_t>(pb) * block_entries].first;
      if (bb < base.num_blocks_ &&
          base.BlockMaxImpact(d, bb) >= patch_impact) {
        order.push_back(bb++);
      } else {
        order.push_back(~pb);
        ++pb;
      }
    }
  }

  std::unique_ptr<PackedFunctionStore> store(new PackedFunctionStore());
  store->dims_ = dims;
  store->num_functions_ = live;
  store->block_entries_ = block_entries;
  store->num_blocks_ = base.num_blocks_ + patch_blocks;
  store->max_gamma_ = max_gamma;
  store->eff_table_ = state->eff.data();
  store->patch_ = std::move(state);
  store->merge_.assign(dims, MergeCursor{});
  for (MergeCursor& cursor : store->merge_) cursor.fids.resize(block_entries);
  return store;
}

int PackedFunctionStore::patch_added() const {
  return patch_ == nullptr ? 0 : patch_->added;
}

int PackedFunctionStore::patch_tombstones() const {
  return patch_ == nullptr ? 0 : patch_->tombstones;
}

std::unique_ptr<PackedFunctionStore> PackedFunctionStore::NewSharedView(
    const PackedFunctionStore& base) {
  if (base.patch_ != nullptr) {
    // Overlay view: share the immutable patch state, allocate private
    // merge/decode cursors. The base image's bytes are reachable
    // through the state (which also keeps their owner alive).
    std::unique_ptr<PackedFunctionStore> view(new PackedFunctionStore());
    view->dims_ = base.dims_;
    view->num_functions_ = base.num_functions_;
    view->block_entries_ = base.block_entries_;
    view->num_blocks_ = base.num_blocks_;
    view->max_gamma_ = base.max_gamma_;
    view->patch_ = base.patch_;
    view->eff_table_ = view->patch_->eff.data();
    view->merge_.assign(base.dims_, MergeCursor{});
    for (MergeCursor& cursor : view->merge_) {
      cursor.fids.resize(base.block_entries_);
    }
    return view;
  }
  FAIRMATCH_CHECK(base.data_ != nullptr);
  std::unique_ptr<PackedFunctionStore> view(new PackedFunctionStore());
  // The base already validated the image (constructor or Open); the
  // view only re-derives its pointers and allocates private caches.
  // Neither buffer_ nor file_ is populated: the view borrows the bytes.
  std::string error;
  FAIRMATCH_CHECK(view->Attach(base.data_, base.image_size_,
                               /*verify_checksums=*/false, &error));
  return view;
}

bool PackedFunctionStore::Attach(const std::byte* data, size_t size,
                                 bool verify_checksums, std::string* error,
                                 PackedOpenError* error_code) {
  const auto fail = [error, error_code](PackedOpenError code,
                                        const char* what) {
    if (error != nullptr) *error = what;
    if (error_code != nullptr) *error_code = code;
    return false;
  };
  if (size < sizeof(FileHeaderRaw)) {
    return fail(PackedOpenError::kTruncated, "image smaller than header");
  }
  FileHeaderRaw h;
  std::memcpy(&h, data, sizeof(h));
  if (h.magic != kMagic) return fail(PackedOpenError::kBadMagic, "bad magic");
  if (h.version != kVersion) {
    return fail(PackedOpenError::kBadHeader, "unsupported version");
  }
  if (h.dims < 1 || h.dims > static_cast<uint32_t>(kMaxDims)) {
    return fail(PackedOpenError::kBadHeader, "dims out of range");
  }
  if (h.num_functions < 1 || h.num_functions > (1u << 30)) {
    return fail(PackedOpenError::kBadHeader, "function count out of range");
  }
  if (h.block_entries < 1 || h.block_entries > h.num_functions) {
    return fail(PackedOpenError::kBadHeader, "block_entries out of range");
  }
  if (h.file_size > size) {
    return fail(PackedOpenError::kTruncated,
                "file size mismatch (truncated?)");
  }
  if (h.file_size != size) {
    return fail(PackedOpenError::kBadHeader, "file size mismatch");
  }

  const int dims = static_cast<int>(h.dims);
  const int n = static_cast<int>(h.num_functions);
  const int block_entries = static_cast<int>(h.block_entries);
  const int num_blocks = (n + block_entries - 1) / block_entries;
  const int num_shards = (num_blocks + kShardBlocks - 1) / kShardBlocks;
  const size_t eff_offset = sizeof(FileHeaderRaw);
  const size_t dir_offset =
      eff_offset + static_cast<size_t>(n) * dims * sizeof(double);
  const size_t dir_stride = static_cast<size_t>(num_shards) * sizeof(uint64_t) +
                            static_cast<size_t>(num_blocks) * sizeof(uint32_t);
  const size_t blocks_offset = AlignUp8(dir_offset + dims * dir_stride);
  // The region layout is fully determined by (dims, n, block_entries);
  // a header that disagrees is rejected rather than trusted.
  if (h.eff_offset != eff_offset || h.dir_offset != dir_offset ||
      h.blocks_offset != blocks_offset || size < blocks_offset) {
    return fail(PackedOpenError::kBadHeader,
                "region offsets inconsistent with header");
  }

  data_ = data;
  image_size_ = size;
  dims_ = dims;
  num_functions_ = n;
  block_entries_ = block_entries;
  num_blocks_ = num_blocks;
  num_shards_ = num_shards;
  max_gamma_ = h.max_gamma;
  eff_table_ = reinterpret_cast<const double*>(data + eff_offset);
  dir_ = data + dir_offset;
  blocks_ = data + blocks_offset;
  blocks_size_ = size - blocks_offset;
  dir_stride_ = dir_stride;
  cache_.assign(dims, DecodeCache{});
  for (DecodeCache& c : cache_) c.fids.resize(block_entries);

  // Walk every block: offsets in bounds, headers well-formed, counts
  // exactly as the list length dictates, impacts non-increasing (the
  // invariant the impact-ordered traversal's early termination relies
  // on), and — when opening an untrusted file — checksums and decoded
  // id ranges.
  std::vector<int32_t> scratch(block_entries);
  for (int d = 0; d < dims; ++d) {
    double prev_impact = 0.0;
    for (int b = 0; b < num_blocks; ++b) {
      const size_t off = BlockOffset(d, b);
      if (off + sizeof(BlockHeaderRaw) > blocks_size_) {
        return fail(PackedOpenError::kBadDirectory,
                    "block header out of bounds");
      }
      BlockHeaderRaw bh;
      std::memcpy(&bh, blocks_ + off, sizeof(bh));
      const int expect =
          std::min(block_entries, n - b * block_entries);
      if (bh.count != static_cast<uint32_t>(expect)) {
        return fail(PackedOpenError::kBadBlock, "block count mismatch");
      }
      if (bh.id_bytes != 1 && bh.id_bytes != 2 && bh.id_bytes != 4) {
        return fail(PackedOpenError::kBadBlock, "unsupported id width");
      }
      const size_t payload = static_cast<size_t>(bh.count) * bh.id_bytes;
      if (off + sizeof(BlockHeaderRaw) + payload > blocks_size_) {
        return fail(PackedOpenError::kBadBlock,
                    "block payload out of bounds");
      }
      if (b > 0 && bh.max_impact > prev_impact) {
        return fail(PackedOpenError::kBadBlock,
                    "block impacts not descending");
      }
      prev_impact = bh.max_impact;
      if (verify_checksums) {
        const std::byte* bytes = blocks_ + off + sizeof(BlockHeaderRaw);
        if (BlockChecksum(bh, bytes, payload) != bh.checksum) {
          return fail(PackedOpenError::kBadChecksum,
                      "block checksum mismatch");
        }
        simd::UnpackIds(reinterpret_cast<const unsigned char*>(bytes),
                        bh.id_bytes, bh.base_fid,
                        static_cast<int>(bh.count), scratch.data());
        for (uint32_t i = 0; i < bh.count; ++i) {
          if (scratch[i] < 0 || scratch[i] >= n) {
            return fail(PackedOpenError::kBadBlock,
                        "decoded function id out of range");
          }
        }
      }
    }
  }
  return true;
}

size_t PackedFunctionStore::BlockOffset(int dim, int block) const {
  const std::byte* dir = dir_ + static_cast<size_t>(dim) * dir_stride_;
  uint64_t shard_base;
  std::memcpy(&shard_base,
              dir + static_cast<size_t>(block / kShardBlocks) *
                        sizeof(uint64_t),
              sizeof(shard_base));
  uint32_t delta;
  std::memcpy(&delta,
              dir + static_cast<size_t>(num_shards_) * sizeof(uint64_t) +
                  static_cast<size_t>(block) * sizeof(uint32_t),
              sizeof(delta));
  return static_cast<size_t>(shard_base) + delta;
}

double PackedFunctionStore::BlockMaxImpact(int dim, int block) const {
  if (patch_ != nullptr) {
    const int32_t source = patch_->block_order[dim][block];
    if (source >= 0) return patch_->base->BlockMaxImpact(dim, source);
    return patch_->patch_lists[dim]
        [static_cast<size_t>(~source) * block_entries_].first;
  }
  double impact;
  std::memcpy(&impact, blocks_ + BlockOffset(dim, block), sizeof(impact));
  return impact;
}

int PackedFunctionStore::DecodeBlock(int dim, int block,
                                     int32_t* out_fids) const {
  if (patch_ != nullptr) {
    const int32_t source = patch_->block_order[dim][block];
    if (source >= 0) {
      // Base block: decode (thread-safe on the flat base — no cache),
      // then rename survivors and compact out the tombstoned ids. The
      // returned count may be smaller than the block's; consumers use
      // the count, never block_entries().
      const int raw = patch_->base->DecodeBlock(dim, source, out_fids);
      int kept = 0;
      for (int i = 0; i < raw; ++i) {
        const int32_t live = patch_->remap[out_fids[i]];
        if (live >= 0) out_fids[kept++] = live;
      }
      return kept;
    }
    const auto& list = patch_->patch_lists[dim];
    const size_t begin = static_cast<size_t>(~source) * block_entries_;
    const size_t end =
        std::min(list.size(), begin + static_cast<size_t>(block_entries_));
    for (size_t i = begin; i < end; ++i) {
      out_fids[i - begin] = list[i].second;
    }
    return static_cast<int>(end - begin);
  }
  const std::byte* p = blocks_ + BlockOffset(dim, block);
  BlockHeaderRaw bh;
  std::memcpy(&bh, p, sizeof(bh));
  simd::UnpackIds(
      reinterpret_cast<const unsigned char*>(p + sizeof(BlockHeaderRaw)),
      bh.id_bytes, bh.base_fid, static_cast<int>(bh.count), out_fids);
  return static_cast<int>(bh.count);
}

bool PackedFunctionStore::PeekBaseEntry(int dim) {
  MergeCursor& cursor = merge_[dim];
  if (cursor.base_has) return true;
  const PatchState& patch = *patch_;
  for (;;) {
    if (cursor.base_idx >= cursor.base_count) {
      if (cursor.base_block >= patch.base->num_blocks()) return false;
      cursor.base_count =
          patch.base->DecodeBlock(dim, cursor.base_block, cursor.fids.data());
      ++cursor.base_block;
      cursor.base_idx = 0;
      continue;
    }
    const int32_t base_fid = cursor.fids[cursor.base_idx];
    const int32_t live = patch.remap[base_fid];
    if (live < 0) {  // tombstoned: invisible to the merged list
      ++cursor.base_idx;
      continue;
    }
    cursor.base_has = true;
    cursor.base_coeff = patch.base->eff_of(base_fid, dim);
    cursor.base_live = live;
    return true;
  }
}

std::pair<double, FunctionId> PackedFunctionStore::NextMerged(int dim) {
  MergeCursor& cursor = merge_[dim];
  const auto& list = patch_->patch_lists[dim];
  const bool base_has = PeekBaseEntry(dim);
  const bool patch_has = cursor.patch_idx < list.size();
  FAIRMATCH_CHECK(base_has || patch_has);
  bool take_base;
  if (!patch_has) {
    take_base = true;
  } else if (!base_has) {
    take_base = false;
  } else {
    const auto& p = list[cursor.patch_idx];
    take_base = cursor.base_coeff > p.first ||
                (cursor.base_coeff == p.first && cursor.base_live < p.second);
  }
  ++cursor.pos;
  if (take_base) {
    cursor.base_has = false;
    ++cursor.base_idx;
    return {cursor.base_coeff, cursor.base_live};
  }
  const auto& p = list[cursor.patch_idx++];
  return {p.first, p.second};
}

std::pair<double, FunctionId> PackedFunctionStore::Entry(int dim, int pos) {
  if (patch_ != nullptr) {
    // Merged enumeration of (live base entries, patch entries), both
    // descending. Sequential scans — the TA traversal — advance the
    // cursor by one; a rewind replays from the top of the list.
    MergeCursor& cursor = merge_[dim];
    if (pos < cursor.pos) {
      const int block_entries = block_entries_;
      cursor = MergeCursor{};
      cursor.fids.resize(block_entries);
    }
    while (cursor.pos < pos) (void)NextMerged(dim);
    return NextMerged(dim);
  }
  const int block = pos / block_entries_;
  DecodeCache& cache = cache_[dim];
  if (cache.block != block) {
    cache.count = DecodeBlock(dim, block, cache.fids.data());
    cache.block = block;
  }
  const FunctionId fid = cache.fids[pos - block * block_entries_];
  return {eff_of(fid, dim), fid};
}

bool PackedFunctionStore::mapped() const {
  if (patch_ != nullptr) return patch_->base->mapped();
  return file_.mapped();
}

size_t PackedFunctionStore::image_bytes() const {
  if (patch_ != nullptr) return patch_->base->image_bytes() + patch_->bytes();
  return image_size_;
}

size_t PackedFunctionStore::footprint_bytes() const {
  // An overlay does not own the base image: it reports only its own
  // resident state (the image is counted by the epoch that owns it).
  size_t bytes = sizeof(*this) + (patch_ != nullptr ? patch_->bytes()
                                                    : image_size_);
  for (const DecodeCache& c : cache_) {
    bytes += c.fids.capacity() * sizeof(int32_t);
  }
  for (const MergeCursor& c : merge_) {
    bytes += c.fids.capacity() * sizeof(int32_t);
  }
  return bytes;
}

}  // namespace fairmatch

// Disk-resident function lists (Section 7.6 / Figure 17).
//
// When F does not fit in memory, the paper materializes the D sorted
// coefficient lists on disk. We store each list as a PagedFile of
// (float coefficient, int32 function id) records on the simulated disk
// behind one shared LRU buffer, so that
//   * sequential block scans (SB-alt's batch search) cost one read per
//     page, and
//   * TA random accesses (fetching a function's remaining coefficients)
//     cost one counted page access each, via an in-memory position map
//     (the random-access capability the TA model assumes).
//
// Function priorities/capacities are tiny per-function metadata and stay
// in memory; only the coefficients live on disk.
#ifndef FAIRMATCH_TOPK_DISK_FUNCTION_LISTS_H_
#define FAIRMATCH_TOPK_DISK_FUNCTION_LISTS_H_

#include <memory>
#include <vector>

#include "fairmatch/common/preference.h"
#include "fairmatch/storage/paged_file.h"
#include "fairmatch/topk/function_lists.h"

namespace fairmatch {

/// One on-disk sorted-list record. The coefficient is stored in full
/// double precision so that disk-backed scores are bit-identical to the
/// in-memory ones (algorithms must agree exactly on ties).
struct ListRecord {
  double coef;
  int32_t fid;
};

/// Disk-backed implementation of FunctionIndexBase with counted I/O.
///
/// Not thread-safe, reads included: Entry/ScoreOf/ReadListPage/FetchEff
/// all go through the LRU buffer (which mutates on every access) and
/// the shared PerfCounters. One store per execution lane — batch items
/// running concurrently (engine/batch_runner.h) each build their own.
class DiskFunctionStore : public FunctionIndexBase {
 public:
  /// Builds the lists from `fns` and flushes them to the simulated disk.
  /// `buffer_fraction` sizes the LRU buffer as a fraction of the file.
  /// When `counters` is non-null (typically an ExecContext's shared
  /// counters), traffic is accounted there instead of in a private
  /// PerfCounters; `counters` must outlive the store. Construction
  /// traffic is excluded either way (counters are reset at the end of
  /// the constructor). When `disk` is non-null, list pages live on that
  /// externally owned manager (a BatchRunner lane's recycled one — it
  /// must be freshly constructed or Recycle()d, and outlive the store)
  /// instead of a private one.
  DiskFunctionStore(const FunctionSet& fns, double buffer_fraction,
                    PerfCounters* counters = nullptr,
                    DiskManager* disk = nullptr);

  int dims() const override { return dims_; }
  int size() const override { return num_functions_; }
  double max_gamma() const override { return max_gamma_; }

  /// Entry `pos` of list `dim`; one counted page access (usually a
  /// buffer hit when scanning sequentially).
  std::pair<double, FunctionId> Entry(int dim, int pos) override;

  /// Score of `fid` on `o`: D-1 random accesses to the other lists plus
  /// the already-known coefficient would be cheaper, but callers do not
  /// carry that context, so we charge D random accesses (one per list).
  double ScoreOf(FunctionId fid, const Point& o) override;

  /// Reads a whole page of list `dim` (SB-alt's batch scan); returns the
  /// records. One counted page access.
  int ReadListPage(int dim, int64_t page_index,
                   std::vector<ListRecord>* out);

  /// Reads the full effective-coefficient vector of `fid` into
  /// `out[0..dims)`: one random access per list, skipping `known_dim`
  /// whose coefficient `known_coef` the caller already holds (the
  /// paper's "D-1 random accesses on the remaining lists"). Pass
  /// known_dim = -1 to fetch all D coefficients.
  void FetchEff(FunctionId fid, int known_dim, double known_coef,
                double* out);

  int64_t pages_per_list() const { return lists_[0]->num_pages(); }
  int records_per_page() const { return lists_[0]->records_per_page(); }

  /// Capacity/priority metadata (in-memory). Ids are clamped: an id a
  /// caller obtained from a corrupt record degrades to neutral metadata
  /// instead of indexing out of bounds (the decode path already
  /// reported the data loss).
  double gamma_of(FunctionId fid) const {
    return fid >= 0 && fid < num_functions_ ? gamma_[fid] : 0.0;
  }
  int capacity_of(FunctionId fid) const {
    return fid >= 0 && fid < num_functions_ ? capacity_[fid] : 0;
  }

  PerfCounters& counters() { return *counters_; }
  void ResetCounters();
  void SetBufferFraction(double fraction);
  int64_t num_pages() const { return disk_->num_pages(); }
  /// The underlying simulated disk (latency knob, diagnostics).
  DiskManager& disk() { return *disk_; }

 private:
  double RandomCoef(int dim, FunctionId fid);

  DiskManager own_disk_;
  DiskManager* disk_;  // own_disk_ or an injected recyclable one
  PerfCounters own_counters_;
  PerfCounters* counters_;  // own_counters_ or an injected external one
  BufferPool pool_;
  std::vector<std::unique_ptr<PagedFile>> lists_;
  // pos_[dim][fid] = index of fid's record in list `dim`.
  std::vector<std::vector<int32_t>> pos_;
  std::vector<double> gamma_;
  std::vector<int> capacity_;
  int dims_ = 0;
  int num_functions_ = 0;
  double max_gamma_ = 1.0;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_TOPK_DISK_FUNCTION_LISTS_H_

// Per-dimension sorted coefficient lists over the function set F
// (Section 5.1). List L_i holds (f.alpha'_i, f) pairs for all f in F,
// sorted descending by the effective coefficient alpha'_i = alpha_i *
// gamma. The lists are static; assigned functions are skipped lazily.
//
// FunctionIndexBase abstracts where the lists live: FunctionLists keeps
// them in memory (the paper's default setting, F fits in memory), while
// DiskFunctionStore (disk_function_lists.h) materializes them on the
// simulated disk with counted I/O (Section 7.6 / Figure 17).
#ifndef FAIRMATCH_TOPK_FUNCTION_LISTS_H_
#define FAIRMATCH_TOPK_FUNCTION_LISTS_H_

#include <utility>
#include <vector>

#include "fairmatch/common/preference.h"

namespace fairmatch {

class PackedFunctionStore;

/// Access interface for the TA-style reverse top-1 search. Methods are
/// non-const because disk-backed implementations count I/O.
class FunctionIndexBase {
 public:
  virtual ~FunctionIndexBase() = default;

  virtual int dims() const = 0;
  /// Number of functions (= length of every list).
  virtual int size() const = 0;
  /// Knapsack budget B = max gamma over F (Section 6.2).
  virtual double max_gamma() const = 0;

  /// Entry `pos` (0-based, descending coefficient order) of list `dim`.
  virtual std::pair<double, FunctionId> Entry(int dim, int pos) = 0;

  /// Aggregate score of function `fid` on object `o` — the TA "random
  /// accesses" that collect the function's remaining coefficients.
  virtual double ScoreOf(FunctionId fid, const Point& o) = 0;

  /// Fast path: direct pointer to list `dim`'s entries when the index is
  /// memory-resident (saves a virtual call per TA probe), or nullptr for
  /// disk-backed indexes whose accesses must be counted.
  virtual const std::pair<double, FunctionId>* RawList(int dim) const {
    (void)dim;
    return nullptr;
  }

  /// Downcast hook: the packed block store returns itself, every other
  /// backend nullptr. Lets ReverseTop1 opt into the impact-ordered
  /// block traversal without RTTI.
  virtual PackedFunctionStore* packed() { return nullptr; }
};

/// Immutable in-memory sorted-list index over F's effective coefficients.
class FunctionLists : public FunctionIndexBase {
 public:
  /// Builds the D sorted lists. `fns` must outlive this index.
  explicit FunctionLists(const FunctionSet* fns);

  int dims() const override { return dims_; }
  int size() const override { return static_cast<int>(fns_->size()); }
  double max_gamma() const override { return max_gamma_; }

  std::pair<double, FunctionId> Entry(int dim, int pos) override {
    return lists_[dim][pos];
  }

  double ScoreOf(FunctionId fid, const Point& o) override {
    return (*fns_)[fid].Score(o);
  }

  const std::pair<double, FunctionId>* RawList(int dim) const override {
    return lists_[dim].data();
  }

  const FunctionSet& functions() const { return *fns_; }

  /// Bytes held by the index.
  size_t memory_bytes() const;

 private:
  const FunctionSet* fns_;
  int dims_;
  double max_gamma_;
  std::vector<std::vector<std::pair<double, FunctionId>>> lists_;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_TOPK_FUNCTION_LISTS_H_

#include "fairmatch/topk/disk_function_lists.h"

#include <algorithm>
#include <cmath>

#include "fairmatch/common/check.h"

namespace fairmatch {

DiskFunctionStore::DiskFunctionStore(const FunctionSet& fns,
                                     double buffer_fraction,
                                     PerfCounters* counters,
                                     DiskManager* disk)
    : disk_(disk != nullptr ? disk : &own_disk_),
      counters_(counters != nullptr ? counters : &own_counters_),
      pool_(disk_, /*capacity_frames=*/1024, counters_) {
  FAIRMATCH_CHECK(!fns.empty());
  dims_ = fns[0].dims;
  num_functions_ = static_cast<int>(fns.size());
  gamma_.reserve(fns.size());
  capacity_.reserve(fns.size());
  for (const PrefFunction& f : fns) {
    FAIRMATCH_CHECK(f.dims == dims_);
    gamma_.push_back(f.gamma);
    capacity_.push_back(f.capacity);
    max_gamma_ = std::max(max_gamma_, f.gamma);
  }

  pos_.assign(dims_, std::vector<int32_t>(fns.size(), 0));
  std::vector<std::pair<double, int32_t>> sorted(fns.size());
  for (int d = 0; d < dims_; ++d) {
    for (size_t i = 0; i < fns.size(); ++i) {
      sorted[i] = {fns[i].eff(d), fns[i].id};
    }
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    auto file = std::make_unique<PagedFile>(&pool_, sizeof(ListRecord));
    for (size_t i = 0; i < sorted.size(); ++i) {
      ListRecord rec{sorted[i].first, sorted[i].second};
      file->Append(&rec);
      pos_[d][sorted[i].second] = static_cast<int32_t>(i);
    }
    file->Seal();
    lists_.push_back(std::move(file));
  }
  SetBufferFraction(buffer_fraction);
  ResetCounters();
}

std::pair<double, FunctionId> DiskFunctionStore::Entry(int dim, int pos) {
  ListRecord rec;
  lists_[dim]->Read(pos, &rec);
  if (rec.fid < 0 || rec.fid >= num_functions_) {
    // A record decoded off a faulted page (zero-filled reads come back
    // as fid 0, but undetected corruption can carry any bits): inside a
    // sinked run report data loss and hand back a harmless entry so the
    // caller's id-indexed structures stay in bounds.
    if (ErrorSink* sink = disk_->error_sink()) {
      sink->Report(ErrorCode::kDataLoss,
                   "DiskFunctionStore::Entry: decoded function id " +
                       std::to_string(rec.fid) + " out of range");
      return {0.0, 0};
    }
  }
  return {rec.coef, rec.fid};
}

double DiskFunctionStore::RandomCoef(int dim, FunctionId fid) {
  if (fid < 0 || fid >= num_functions_) {
    if (ErrorSink* sink = disk_->error_sink()) {
      sink->Report(ErrorCode::kDataLoss,
                   "DiskFunctionStore::RandomCoef: function id " +
                       std::to_string(fid) + " out of range");
      return 0.0;
    }
    FAIRMATCH_CHECK(fid >= 0 && fid < num_functions_);
  }
  ListRecord rec;
  lists_[dim]->Read(pos_[dim][fid], &rec);
  if (rec.fid != fid && disk_->has_error_sink()) {
    disk_->error_sink()->Report(
        ErrorCode::kDataLoss,
        "DiskFunctionStore::RandomCoef: record for function " +
            std::to_string(fid) + " decoded as " + std::to_string(rec.fid));
    return 0.0;
  }
  FAIRMATCH_DCHECK(rec.fid == fid);
  return rec.coef;
}

void DiskFunctionStore::FetchEff(FunctionId fid, int known_dim,
                                 double known_coef, double* out) {
  for (int d = 0; d < dims_; ++d) {
    out[d] = d == known_dim ? known_coef : RandomCoef(d, fid);
  }
}

double DiskFunctionStore::ScoreOf(FunctionId fid, const Point& o) {
  double score = 0.0;
  for (int d = 0; d < dims_; ++d) {
    score += RandomCoef(d, fid) * o[d];
  }
  return score;
}

int DiskFunctionStore::ReadListPage(int dim, int64_t page_index,
                                    std::vector<ListRecord>* out) {
  out->resize(lists_[dim]->records_per_page());
  int count = lists_[dim]->ReadPage(page_index, out->data());
  out->resize(count);
  if (ErrorSink* sink = disk_->error_sink()) {
    // Sanitize before the batch consumers (SB-alt) index their
    // fid-sized arrays with these records.
    for (ListRecord& rec : *out) {
      if (rec.fid < 0 || rec.fid >= num_functions_) {
        sink->Report(ErrorCode::kDataLoss,
                     "DiskFunctionStore::ReadListPage: decoded function id " +
                         std::to_string(rec.fid) + " out of range");
        rec = ListRecord{0.0, 0};
      }
    }
  }
  return count;
}

void DiskFunctionStore::ResetCounters() {
  pool_.FlushAll();
  counters_->Reset();
}

void DiskFunctionStore::SetBufferFraction(double fraction) {
  auto frames = static_cast<size_t>(
      std::llround(fraction * static_cast<double>(disk_->num_pages())));
  pool_.set_capacity(frames);
}

}  // namespace fairmatch

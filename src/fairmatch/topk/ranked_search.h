// BRS — branch-and-bound ranked search over the R-tree [Tao et al. 2007].
//
// Visits R-tree entries in descending maxscore order of a linear
// preference function and emits objects in descending score order. The
// search is *incremental*: Next() can be called repeatedly, and the heap
// persists between calls, which implements the "resuming search" feature
// of the Brute Force baseline (Section 4.1).
#ifndef FAIRMATCH_TOPK_RANKED_SEARCH_H_
#define FAIRMATCH_TOPK_RANKED_SEARCH_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "fairmatch/common/preference.h"
#include "fairmatch/rtree/rtree.h"

namespace fairmatch {

/// Result of one ranked-search step.
struct RankedHit {
  ObjectId id = kInvalidObject;
  double score = 0.0;
  Point point;
};

/// Incremental top-k traversal for one preference function.
class RankedSearch {
 public:
  /// `tree` and `fn` must outlive the search. The search starts at the
  /// root; the first Next() call reads it.
  RankedSearch(const RTree* tree, const PrefFunction* fn);

  /// Exact leaf rescoring hook. When the indexed coordinates are rounded
  /// *upper bounds* of the true values (Chain's function R-tree stores
  /// FloatUp(alpha_i * gamma)), node maxscores stay valid bounds while
  /// leaf records are rescored exactly through this callback, keeping
  /// the emission order identical to exact arithmetic.
  void set_leaf_scorer(std::function<double(ObjectId, const Point&)> scorer) {
    leaf_scorer_ = std::move(scorer);
  }

  /// Returns the next best live object, or nullopt when exhausted.
  /// `alive` (optional) maps ObjectId -> nonzero if the object is still
  /// assignable; dead objects are skipped (tombstone deletion used by
  /// the Brute Force baseline).
  std::optional<RankedHit> Next(const std::vector<uint8_t>* alive = nullptr);

  /// Entries currently queued (for the memory-usage metric).
  size_t heap_size() const { return heap_.size(); }

  /// Approximate bytes held by this search's queue.
  size_t memory_bytes() const { return heap_.size() * sizeof(HeapEntry); }

 private:
  struct HeapEntry {
    double score;
    bool is_node;
    int32_t id;  // page id (node) or object id (leaf record)
    Point point;
  };
  struct Worse {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.score != b.score) return a.score < b.score;
      // Nodes first so ties among equal-score objects inside unexpanded
      // nodes are resolved deterministically ...
      if (a.is_node != b.is_node) return !a.is_node;
      // ... then by ascending id.
      return a.id > b.id;
    }
  };

  const RTree* tree_;
  const PrefFunction* fn_;
  std::function<double(ObjectId, const Point&)> leaf_scorer_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, Worse> heap_;
  bool started_ = false;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_TOPK_RANKED_SEARCH_H_

#include "fairmatch/topk/reverse_top1.h"

#include <algorithm>
#include <cmath>

#include "fairmatch/common/check.h"

namespace fairmatch {

namespace {
// The knapsack threshold accumulates products in a different order than
// PrefFunction::Score, so the two can disagree by a few ulps. The bound
// must stay an upper bound of every unseen score, so termination demands
// strictly exceeding it by this slack (far above accumulated rounding,
// far below any genuine score gap); ties keep scanning, which also makes
// the smallest-id tie winner reachable.
constexpr double kBoundSlack = 1e-9;
}  // namespace

ReverseTop1::ReverseTop1(FunctionIndexBase* index, ReverseTop1Options options)
    : index_(index), options_(options) {
  omega_cap_ = std::max(
      1, static_cast<int>(std::llround(options_.omega * index_->size())));
  raw_lists_.resize(index_->dims());
  for (int d = 0; d < index_->dims(); ++d) {
    raw_lists_[d] = index_->RawList(d);
  }
}

void ReverseTop1::Reset(ReverseTop1State* state, const Point& o) const {
  const int dims = index_->dims();
  state->positions_.assign(dims, 0);
  state->queue_.clear();
  state->seen_.assign((index_->size() + 63) / 64, 0);
  state->seen_count_ = 0;
  state->omega_left_ = omega_cap_;
  state->round_robin_next_ = 0;
  state->dim_order_.resize(dims);
  for (int d = 0; d < dims; ++d) state->dim_order_[d] = d;
  std::sort(state->dim_order_.begin(), state->dim_order_.end(),
            [&](int a, int b) {
              if (o[a] != o[b]) return o[a] > o[b];
              return a < b;
            });
  state->initialized = true;
}

double ReverseTop1::TightThreshold(const ReverseTop1State& state,
                                   const Point& o) {
  // An unseen function must appear at or below the current position in
  // every list, so its coefficient in dim d is bounded by the next
  // unread value l_d. Maximize sum beta_d * o_d subject to beta_d <= l_d
  // and sum beta_d = B (fractional knapsack, Section 5.1).
  const int n = index_->size();
  double budget = index_->max_gamma();
  double threshold = 0.0;
  for (int d : state.dim_order_) {
    if (budget <= 0.0) break;
    int pos = state.positions_[d];
    // Exhausted list: every function was seen there; no unseen function
    // exists, so the threshold over unseen functions is -infinity.
    if (pos >= n) return -1.0;
    double l = EntryAt(d, pos).first;
    double beta = std::min(budget, l);
    threshold += beta * o[d];
    budget -= beta;
  }
  return threshold;
}

int ReverseTop1::PickList(const ReverseTop1State& state, const Point& o) {
  const int dims = index_->dims();
  const int n = index_->size();
  if (!options_.biased_probing) {
    // Round-robin over non-exhausted lists.
    for (int step = 0; step < dims; ++step) {
      int d = (state.round_robin_next_ + step) % dims;
      if (state.positions_[d] < n) return d;
    }
    return -1;
  }
  int best = -1;
  double best_gain = -1.0;
  for (int d = 0; d < dims; ++d) {
    int pos = state.positions_[d];
    if (pos >= n) continue;
    double gain = EntryAt(d, pos).first * o[d];
    if (gain > best_gain) {
      best_gain = gain;
      best = d;
    }
  }
  return best;
}

std::optional<std::pair<FunctionId, double>> ReverseTop1::Best(
    ReverseTop1State* state, const Point& o,
    const std::vector<uint8_t>& assigned) {
  if (!state->initialized || !options_.resume) Reset(state, o);

  while (true) {
    // Drop candidates that were assigned to other objects since the last
    // call; each pop reduces the queue's remaining guarantee (Omega).
    while (!state->queue_.empty() && assigned[state->queue_.front().fid]) {
      state->queue_.erase(state->queue_.begin());
      state->omega_left_--;
    }
    if (state->omega_left_ <= 0) {
      // The capped queue can no longer guarantee the maximum: restart.
      restarts_++;
      Reset(state, o);
      continue;
    }

    // Terminate if the best candidate already beats the tight threshold
    // for every unseen function.
    if (!state->queue_.empty()) {
      double threshold = TightThreshold(*state, o);
      const auto& top = state->queue_.front();
      if (top.score > threshold + kBoundSlack) {
        return std::make_pair(top.fid, top.score);
      }
    }

    int d = PickList(*state, o);
    if (d < 0) {
      // All lists exhausted: every function has been seen. The queue
      // holds the best unassigned candidates unless eviction lost them.
      if (!state->queue_.empty()) {
        const auto& top = state->queue_.front();
        return std::make_pair(top.fid, top.score);
      }
      // Queue starved by eviction: restart unless F is fully assigned.
      bool any_unassigned =
          std::any_of(assigned.begin(), assigned.end(),
                      [](uint8_t a) { return a == 0; });
      if (!any_unassigned) return std::nullopt;
      restarts_++;
      Reset(state, o);
      continue;
    }

    // Probe one entry of list d.
    int pos = state->positions_[d]++;
    state->round_robin_next_ = (d + 1) % index_->dims();
    probes_++;
    FunctionId fid = EntryAt(d, pos).second;
    if (state->Seen(fid)) continue;
    state->MarkSeen(fid);
    if (assigned[fid]) continue;
    // "Random accesses" to the other lists: fetch the function's
    // remaining coefficients and compute its aggregate score.
    double score = index_->ScoreOf(fid, o);
    // Keep only the top-Omega candidates (Section 5.1 memory bound).
    ReverseTop1State::QueueItem item{score, fid};
    auto pos_it = std::lower_bound(state->queue_.begin(),
                                   state->queue_.end(), item);
    state->queue_.insert(pos_it, item);
    if (static_cast<int>(state->queue_.size()) > state->omega_left_) {
      state->queue_.pop_back();
    }
  }
}

}  // namespace fairmatch

#include "fairmatch/topk/reverse_top1.h"

#include <algorithm>
#include <cmath>

#include "fairmatch/common/check.h"

namespace fairmatch {

namespace {
// The knapsack threshold accumulates products in a different order than
// PrefFunction::Score, so the two can disagree by a few ulps. The bound
// must stay an upper bound of every unseen score, so termination demands
// strictly exceeding it by this slack (far above accumulated rounding,
// far below any genuine score gap); ties keep scanning, which also makes
// the smallest-id tie winner reachable.
constexpr double kBoundSlack = 1e-9;

// Argmax over the cached gains of non-exhausted lists; the exact scan
// PickList used to run per call (strict >, so ties pick the smallest
// dimension). -1 when every list is exhausted.
int BestGainDim(const std::vector<int>& positions,
                const std::vector<double>& gains, int n) {
  int best = -1;
  double best_gain = -1.0;
  for (int d = 0; d < static_cast<int>(gains.size()); ++d) {
    if (positions[d] >= n) continue;
    if (gains[d] > best_gain) {
      best_gain = gains[d];
      best = d;
    }
  }
  return best;
}
}  // namespace

ReverseTop1::ReverseTop1(FunctionIndexBase* index, ReverseTop1Options options)
    : index_(index), options_(options) {
  omega_cap_ = std::max(
      1, static_cast<int>(std::llround(options_.omega * index_->size())));
  raw_lists_.resize(index_->dims());
  bool all_raw = true;
  for (int d = 0; d < index_->dims(); ++d) {
    raw_lists_[d] = index_->RawList(d);
    if (raw_lists_[d] == nullptr) all_raw = false;
  }
  packed_ = index_->packed();
  use_impact_ = options_.impact_ordered && packed_ != nullptr;
  // Scan cursors advance in blocks under the impact-ordered traversal,
  // in entries otherwise.
  scan_limit_ = use_impact_ ? packed_->num_blocks() : index_->size();
  if (use_impact_) scratch_fids_.resize(packed_->block_entries());
  // The incremental frontier/gains/threshold caches pay for themselves
  // only when biased probing consults the gains every iteration;
  // round-robin invalidates the threshold on almost every probe and
  // never reads the gains, so it keeps the seed's direct scans. The
  // packed store is memory-resident too (zero counted I/O), so it takes
  // the same cached path as FunctionLists.
  use_caches_ = (all_raw || packed_ != nullptr) && options_.biased_probing;
  use_seen_epoch_ = !options_.resume;
}

void ReverseTop1::Reset(ReverseTop1State* state, const Point& o) const {
  const int dims = index_->dims();
  const int n = index_->size();
  state->positions_.assign(dims, 0);
  state->queue_.Reset(omega_cap_);
  if (use_seen_epoch_) {
    // Generation bump instead of clearing: the byte map is wiped only
    // on first use, size change, or 8-bit generation wrap-around.
    if (state->seen_gen_.size() != static_cast<size_t>(n)) {
      state->seen_gen_.assign(n, 0);
      state->gen_ = 0;
    }
    if (++state->gen_ == 0) {
      std::fill(state->seen_gen_.begin(), state->seen_gen_.end(), 0);
      state->gen_ = 1;
    }
  } else {
    state->seen_bits_.assign((n + 63) / 64, 0);
  }
  state->omega_left_ = omega_cap_;
  state->round_robin_next_ = 0;
  state->dim_order_.resize(dims);
  for (int d = 0; d < dims; ++d) state->dim_order_[d] = d;
  std::sort(state->dim_order_.begin(), state->dim_order_.end(),
            [&](int a, int b) {
              if (o[a] != o[b]) return o[a] > o[b];
              return a < b;
            });
  if (use_caches_) {
    state->frontier_.assign(dims, 0.0);
    state->gains_.assign(dims, -1.0);
    for (int d = 0; d < dims; ++d) {
      if (scan_limit_ == 0) continue;
      state->frontier_[d] = FrontierValue(d, 0);
      state->gains_[d] = state->frontier_[d] * o[d];
    }
    state->best_gain_dim_ =
        BestGainDim(state->positions_, state->gains_, scan_limit_);
    state->threshold_valid_ = false;
  }
  state->initialized = true;
}

void ReverseTop1::RefreshFrontier(ReverseTop1State* state, const Point& o,
                                  int d) const {
  const int pos = state->positions_[d];
  if (pos >= scan_limit_) {
    // List exhausted: drop it from the gains and force a threshold
    // recomputation (the knapsack result flips to "no unseen function").
    state->gains_[d] = -1.0;
    state->threshold_valid_ = false;
    if (state->best_gain_dim_ == d) {
      state->best_gain_dim_ =
          BestGainDim(state->positions_, state->gains_, scan_limit_);
    }
    return;
  }
  const double l = FrontierValue(d, pos);
  if (l == state->frontier_[d]) return;  // duplicate coefficient: no-op
  state->frontier_[d] = l;
  state->gains_[d] = l * o[d];
  state->threshold_valid_ = false;
  // Gains only decrease as the scan descends, so the argmax can change
  // only when the probed dimension was the argmax (ties resolve to the
  // smallest dimension, which a decrease elsewhere cannot disturb).
  if (state->best_gain_dim_ == d) {
    state->best_gain_dim_ =
        BestGainDim(state->positions_, state->gains_, scan_limit_);
  }
}

double ReverseTop1::TightThreshold(ReverseTop1State* state, const Point& o) {
  // An unseen function must appear at or below the current position in
  // every list, so its coefficient in dim d is bounded by the next
  // unread value l_d. Maximize sum beta_d * o_d subject to beta_d <= l_d
  // and sum beta_d = B (fractional knapsack, Section 5.1).
  if (use_caches_ && state->threshold_valid_) return state->cached_threshold_;
  double budget = index_->max_gamma();
  double threshold = 0.0;
  for (int d : state->dim_order_) {
    if (budget <= 0.0) break;
    int pos = state->positions_[d];
    // Exhausted list: every function was seen there; no unseen function
    // exists, so the threshold over unseen functions is -infinity.
    if (pos >= scan_limit_) {
      threshold = -1.0;
      break;
    }
    // Cached frontier on the memory-resident path; a counted list read
    // on the disk path (whose access sequence must stay as-is).
    double l = use_caches_ ? state->frontier_[d] : FrontierValue(d, pos);
    double beta = std::min(budget, l);
    threshold += beta * o[d];
    budget -= beta;
  }
  if (use_caches_) {
    state->cached_threshold_ = threshold;
    state->threshold_valid_ = true;
  }
  return threshold;
}

int ReverseTop1::PickList(const ReverseTop1State& state, const Point& o) {
  const int dims = index_->dims();
  if (!options_.biased_probing) {
    // Round-robin over non-exhausted lists.
    for (int step = 0; step < dims; ++step) {
      int d = (state.round_robin_next_ + step) % dims;
      if (state.positions_[d] < scan_limit_) return d;
    }
    return -1;
  }
  // Memory-resident: the argmax is maintained incrementally on probe.
  if (use_caches_) return state.best_gain_dim_;
  int best = -1;
  double best_gain = -1.0;
  for (int d = 0; d < dims; ++d) {
    int pos = state.positions_[d];
    if (pos >= scan_limit_) continue;
    double gain = FrontierValue(d, pos) * o[d];
    if (gain > best_gain) {
      best_gain = gain;
      best = d;
    }
  }
  return best;
}

std::optional<std::pair<FunctionId, double>> ReverseTop1::Best(
    ReverseTop1State* state, const Point& o,
    const std::vector<uint8_t>& assigned, int64_t num_unassigned) {
  if (!state->initialized || !options_.resume) Reset(state, o);

  while (true) {
    // Drop candidates that were assigned to other objects since the last
    // call; each pop reduces the queue's remaining guarantee (Omega).
    while (!state->queue_.empty() &&
           assigned[state->queue_.best().fid]) {
      state->queue_.PopBest();
      state->omega_left_--;
    }
    if (state->omega_left_ <= 0) {
      // The capped queue can no longer guarantee the maximum: restart.
      restarts_++;
      Reset(state, o);
      continue;
    }

    // Terminate if the best candidate already beats the tight threshold
    // for every unseen function.
    if (!state->queue_.empty()) {
      double threshold = TightThreshold(state, o);
      const auto& top = state->queue_.best();
      if (top.score > threshold + kBoundSlack) {
        return std::make_pair(top.fid, top.score);
      }
    }

    int d = PickList(*state, o);
    if (d < 0) {
      // All lists exhausted: every function has been seen. The queue
      // holds the best unassigned candidates unless eviction lost them.
      if (!state->queue_.empty()) {
        const auto& top = state->queue_.best();
        return std::make_pair(top.fid, top.score);
      }
      // Queue starved by eviction: restart unless F is fully assigned.
      // SB passes its unassigned-function count; without it, fall back
      // to the scan (cold callers on this rare path).
      bool any_unassigned =
          num_unassigned >= 0
              ? num_unassigned > 0
              : std::any_of(assigned.begin(), assigned.end(),
                            [](uint8_t a) { return a == 0; });
      if (!any_unassigned) return std::nullopt;
      restarts_++;
      Reset(state, o);
      continue;
    }

    // Probe list d: one whole packed block under the impact-ordered
    // traversal, one entry otherwise.
    int pos = state->positions_[d]++;
    state->round_robin_next_ = (d + 1) % index_->dims();
    if (use_impact_) {
      const int count = packed_->DecodeBlock(d, pos, scratch_fids_.data());
      probes_ += count;
      if (use_caches_) RefreshFrontier(state, o, d);
      for (int i = 0; i < count; ++i) {
        const FunctionId fid = scratch_fids_[i];
        if (Seen(*state, fid)) continue;
        MarkSeen(state, fid);
        if (assigned[fid]) continue;
        const double score = index_->ScoreOf(fid, o);
        state->queue_.Push(ScoredCandidate{score, fid});
        if (static_cast<int>(state->queue_.size()) > state->omega_left_) {
          state->queue_.PopWorst();
        }
      }
      continue;
    }
    probes_++;
    FunctionId fid = EntryAt(d, pos).second;
    if (use_caches_) RefreshFrontier(state, o, d);
    if (Seen(*state, fid)) continue;
    MarkSeen(state, fid);
    if (assigned[fid]) continue;
    // "Random accesses" to the other lists: fetch the function's
    // remaining coefficients and compute its aggregate score.
    double score = index_->ScoreOf(fid, o);
    // Keep only the top-Omega candidates (Section 5.1 memory bound):
    // push, then evict the queue's worst end on overflow.
    state->queue_.Push(ScoredCandidate{score, fid});
    if (static_cast<int>(state->queue_.size()) > state->omega_left_) {
      state->queue_.PopWorst();
    }
  }
}

}  // namespace fairmatch

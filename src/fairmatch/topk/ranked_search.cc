#include "fairmatch/topk/ranked_search.h"

namespace fairmatch {

RankedSearch::RankedSearch(const RTree* tree, const PrefFunction* fn)
    : tree_(tree), fn_(fn) {}

std::optional<RankedHit> RankedSearch::Next(
    const std::vector<uint8_t>* alive) {
  if (!started_) {
    started_ = true;
    heap_.push(HeapEntry{/*score=*/0.0, /*is_node=*/true, tree_->root(),
                         Point()});
    // Score of the root does not matter: it is the only entry.
  }
  while (!heap_.empty()) {
    HeapEntry top = heap_.top();
    heap_.pop();
    if (!top.is_node) {
      if (alive != nullptr && !(*alive)[top.id]) continue;
      return RankedHit{top.id, top.score, top.point};
    }
    NodeHandle h = tree_->ReadNode(top.id);
    NodeView node = h.view();
    if (node.is_leaf()) {
      for (int i = 0; i < node.count(); ++i) {
        Point p = node.leaf_point(i);
        double score = leaf_scorer_ ? leaf_scorer_(node.child(i), p)
                                    : fn_->Score(p);
        heap_.push(HeapEntry{score, false, node.child(i), p});
      }
    } else {
      for (int i = 0; i < node.count(); ++i) {
        heap_.push(HeapEntry{fn_->MaxScore(node.entry_mbr(i)), true,
                             node.child(i), Point()});
      }
    }
  }
  return std::nullopt;
}

}  // namespace fairmatch

// Reverse top-1 search: the best *function* for a given object
// (Section 5.1). An adaptation of the Threshold Algorithm [Fagin et al.]
// over the per-dimension sorted coefficient lists, with three paper
// optimizations:
//
//  * T_tight — the termination threshold is computed by solving a
//    fractional-knapsack problem over the frontier list values, so it
//    respects the coefficient normalization sum_i beta_i = B
//    (B = max gamma; 1 for normalized functions).
//  * biased probing — instead of round-robin, the next probe goes to the
//    list maximizing l_i * o_i, greedily shrinking the threshold.
//  * resumable, capacity-bounded state — each object keeps the TA scan
//    positions and a top-Omega candidate queue; when its current best
//    function is assigned to another object, the search resumes instead
//    of restarting. Omega decreases on every queue pop; at zero the
//    search restarts from scratch (the omega trade-off of Section 5.1).
#ifndef FAIRMATCH_TOPK_REVERSE_TOP1_H_
#define FAIRMATCH_TOPK_REVERSE_TOP1_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "fairmatch/common/preference.h"
#include "fairmatch/topk/function_lists.h"

namespace fairmatch {

/// Tuning knobs for the reverse top-1 search.
struct ReverseTop1Options {
  /// Queue capacity fraction: Omega = omega * |F| (paper default 2.5%).
  double omega = 0.025;
  /// Biased list probing (Section 5.1); false = classic round-robin.
  bool biased_probing = true;
  /// Resume searches across calls; false = restart every time (used by
  /// the ablation bench).
  bool resume = true;
};

/// Per-object resumable TA state. Owned by the caller (one per skyline
/// object); opaque except for memory accounting.
class ReverseTop1State {
 public:
  ReverseTop1State() = default;

  /// Approximate bytes held (memory-usage metric).
  size_t memory_bytes() const {
    return sizeof(*this) + positions_.capacity() * sizeof(int) +
           dim_order_.capacity() * sizeof(int) +
           queue_.size() * (sizeof(QueueItem) + 32) +
           seen_.capacity() * sizeof(uint64_t);
  }

 private:
  friend class ReverseTop1;

  // Candidate queue item: (score, fid), ordered best-first.
  struct QueueItem {
    double score;
    FunctionId fid;
    bool operator<(const QueueItem& other) const {
      if (score != other.score) return score > other.score;
      return fid < other.fid;
    }
  };

  bool initialized = false;
  std::vector<int> positions_;     // next unread index per list
  std::vector<int> dim_order_;     // dims sorted by o[d] descending
  // Top candidates, kept sorted best-first; capacity-bounded by Omega,
  // so a flat sorted vector beats a node-based set.
  std::vector<QueueItem> queue_;
  std::vector<uint64_t> seen_;     // bitmap over function ids
  size_t seen_count_ = 0;
  int omega_left_ = 0;
  int round_robin_next_ = 0;

  bool Seen(FunctionId fid) const {
    return (seen_[static_cast<size_t>(fid) >> 6] >> (fid & 63)) & 1;
  }
  void MarkSeen(FunctionId fid) {
    seen_[static_cast<size_t>(fid) >> 6] |= uint64_t{1} << (fid & 63);
    seen_count_++;
  }
};

/// Reverse top-1 searcher over one function index.
class ReverseTop1 {
 public:
  ReverseTop1(FunctionIndexBase* index, ReverseTop1Options options);

  /// Returns the unassigned function maximizing f(o) (ties: smaller id),
  /// or nullopt if every function is assigned. `assigned[fid]` nonzero
  /// marks assigned functions. The state resumes from previous calls
  /// for the same object.
  std::optional<std::pair<FunctionId, double>> Best(
      ReverseTop1State* state, const Point& o,
      const std::vector<uint8_t>& assigned);

  /// Number of list probes performed (diagnostics / ablation).
  int64_t probes() const { return probes_; }
  /// Number of from-scratch restarts triggered by Omega exhaustion.
  int64_t restarts() const { return restarts_; }

 private:
  void Reset(ReverseTop1State* state, const Point& o) const;

  /// Fractional-knapsack threshold over the next-unread list values
  /// (upper bound of f(o) for any function not yet seen in any list).
  /// Returns a negative value when all lists are exhausted.
  double TightThreshold(const ReverseTop1State& state, const Point& o);

  /// Picks the list to probe next; -1 when all lists are exhausted.
  int PickList(const ReverseTop1State& state, const Point& o);

  /// Entry accessor: raw array when available, virtual call otherwise.
  std::pair<double, FunctionId> EntryAt(int dim, int pos) {
    const auto* raw = raw_lists_[dim];
    return raw != nullptr ? raw[pos] : index_->Entry(dim, pos);
  }

  FunctionIndexBase* index_;
  ReverseTop1Options options_;
  std::vector<const std::pair<double, FunctionId>*> raw_lists_;
  int omega_cap_;
  int64_t probes_ = 0;
  int64_t restarts_ = 0;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_TOPK_REVERSE_TOP1_H_

// Reverse top-1 search: the best *function* for a given object
// (Section 5.1). An adaptation of the Threshold Algorithm [Fagin et al.]
// over the per-dimension sorted coefficient lists, with three paper
// optimizations:
//
//  * T_tight — the termination threshold is computed by solving a
//    fractional-knapsack problem over the frontier list values, so it
//    respects the coefficient normalization sum_i beta_i = B
//    (B = max gamma; 1 for normalized functions).
//  * biased probing — instead of round-robin, the next probe goes to the
//    list maximizing l_i * o_i, greedily shrinking the threshold.
//  * resumable, capacity-bounded state — each object keeps the TA scan
//    positions and a top-Omega candidate queue; when its current best
//    function is assigned to another object, the search resumes instead
//    of restarting. Omega decreases on every queue pop; at zero the
//    search restarts from scratch (the omega trade-off of Section 5.1).
//
// Hot-path engineering (beyond the paper): the candidate queue is a
// CandidateQueue (a sorted ring with O(1) end pops for the common
// small-Omega regime, a flat min-max heap above ~512 entries — the
// seed paid an O(Omega) erase(begin()) shift per drop), the seen set
// is a generation-stamped byte map that restarts reuse without
// clearing, and for memory-resident indexes the frontier values,
// biased-probing gains and the knapsack threshold are cached in the
// state and updated incrementally on probe instead of being rescanned
// from the lists every iteration. Disk-backed indexes keep the
// per-call list reads so their counted I/O access sequence is
// unchanged.
#ifndef FAIRMATCH_TOPK_REVERSE_TOP1_H_
#define FAIRMATCH_TOPK_REVERSE_TOP1_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "fairmatch/common/minmax_heap.h"
#include "fairmatch/common/preference.h"
#include "fairmatch/topk/function_lists.h"
#include "fairmatch/topk/packed_function_lists.h"

namespace fairmatch {

/// Tuning knobs for the reverse top-1 search.
struct ReverseTop1Options {
  /// Queue capacity fraction: Omega = omega * |F| (paper default 2.5%).
  double omega = 0.025;
  /// Biased list probing (Section 5.1); false = classic round-robin.
  bool biased_probing = true;
  /// Resume searches across calls; false = restart every time (used by
  /// the ablation bench).
  bool resume = true;
  /// Impact-ordered block traversal: when the index is a
  /// PackedFunctionStore, probes consume whole packed blocks in
  /// descending max-impact order and a list stops contributing as soon
  /// as its next block's max impact falls under the knapsack threshold.
  /// The threshold/frontier caches are reused verbatim with block max
  /// impacts standing in for frontier coefficients. Ignored (plain
  /// entry-at-a-time TA) for non-packed indexes.
  bool impact_ordered = false;
};

/// Candidate queue item: (score, fid), ordered best-first.
struct ScoredCandidate {
  double score;
  FunctionId fid;
  bool operator<(const ScoredCandidate& other) const {
    if (score != other.score) return score > other.score;
    return fid < other.fid;
  }
};

/// Capacity-bounded best-first candidate queue: the best is consumed
/// from one end, overflow is evicted from the other. Two storage
/// regimes behind one interface, picked by the expected capacity:
///
///  * small Omega (the common in-memory setting) — a sorted ring: a
///    flat best-first vector with a head index, so both end pops are
///    O(1) (the seed paid an O(Omega) erase(begin()) memmove per
///    drop) and inserts are one short memmove, which beats any
///    log-structure for a few hundred entries;
///  * large Omega (disk-scale |F|) — a flat min-max heap
///    (common/minmax_heap.h) with O(log Omega) push/pop at both ends.
///
/// ScoredCandidate's order is total, so both regimes pop and evict the
/// exact same elements in the same sequence.
class CandidateQueue {
 public:
  /// Capacities above this use the min-max heap.
  static constexpr int kHeapThreshold = 512;
  // Ring-compaction cadence: dead prefix reclaimed every 64 pops.
  static constexpr size_t kCompactAt = 64;

  /// Empties the queue and (re)selects the regime for `capacity`.
  void Reset(int capacity) {
    use_heap_ = capacity > kHeapThreshold;
    ring_.clear();
    head_ = 0;
    heap_.clear();
  }

  bool empty() const {
    return use_heap_ ? heap_.empty() : head_ == ring_.size();
  }
  size_t size() const {
    return use_heap_ ? heap_.size() : ring_.size() - head_;
  }

  const ScoredCandidate& best() const {
    return use_heap_ ? heap_.min() : ring_[head_];
  }

  void PopBest() {
    if (use_heap_) {
      heap_.pop_min();
    } else if (++head_ >= kCompactAt) {
      ring_.erase(ring_.begin(), ring_.begin() + head_);
      head_ = 0;
    }
  }

  void PopWorst() {
    if (use_heap_) {
      heap_.pop_max();
    } else {
      ring_.pop_back();
    }
  }

  void Push(const ScoredCandidate& item) {
    if (use_heap_) {
      heap_.push(item);
    } else {
      ring_.insert(
          std::lower_bound(ring_.begin() + head_, ring_.end(), item),
          item);
    }
  }

  size_t memory_bytes() const {
    return ring_.capacity() * sizeof(ScoredCandidate) +
           heap_.capacity() * sizeof(ScoredCandidate);
  }

 private:
  bool use_heap_ = false;
  std::vector<ScoredCandidate> ring_;  // sorted best-first from head_
  size_t head_ = 0;
  MinMaxHeap<ScoredCandidate> heap_;
};

/// Per-object resumable TA state. Owned by the caller (one per skyline
/// object); opaque except for memory accounting and recycling.
class ReverseTop1State {
 public:
  ReverseTop1State() = default;

  /// Approximate bytes held (memory-usage metric).
  size_t memory_bytes() const {
    return sizeof(*this) + positions_.capacity() * sizeof(int) +
           dim_order_.capacity() * sizeof(int) + queue_.memory_bytes() +
           frontier_.capacity() * sizeof(double) +
           gains_.capacity() * sizeof(double) +
           seen_bits_.capacity() * sizeof(uint64_t) +
           seen_gen_.capacity() * sizeof(uint8_t);
  }

  /// Returns the state to "never searched" while keeping every buffer's
  /// capacity, so a recycled state behaves exactly like a fresh one (the
  /// next Best() call Reset()s and reassigns all contents) without
  /// re-growing its vectors. The epoch seen-map generation deliberately
  /// survives: stale marks from a previous owner all carry generations
  /// <= gen_, so the bump in Reset() invalidates them, and the wipe on
  /// 8-bit wrap-around is preserved.
  void Recycle() { initialized = false; }

 private:
  friend class ReverseTop1;

  bool initialized = false;
  std::vector<int> positions_;  // next unread index per list
  std::vector<int> dim_order_;  // dims sorted by o[d] descending
  // Top candidates, capacity-bounded by Omega.
  CandidateQueue queue_;
  // Seen set, representation picked by ReverseTop1::use_seen_epoch_:
  // resumable searches reset rarely, so they keep the compact bitmap
  // (1 bit per function — per-probe cache footprint matters more than
  // the occasional |F|/64-word clear); no-resume searches reset every
  // call, so they use a generation-stamped byte map (fid seen iff
  // seen_gen_[fid] == gen_) that resets by bumping gen_ and is wiped
  // only when the 8-bit generation wraps.
  std::vector<uint64_t> seen_bits_;
  std::vector<uint8_t> seen_gen_;
  uint8_t gen_ = 0;
  int omega_left_ = 0;
  int round_robin_next_ = 0;

  // Memory-resident biased-probing fast path (ReverseTop1::
  // use_caches_): cached frontier coefficients, probing gains, and
  // knapsack threshold, incrementally maintained as probes advance the
  // positions. Unused (left empty) for disk-backed indexes and
  // round-robin probing.
  std::vector<double> frontier_;  // next unread coefficient per dim
  std::vector<double> gains_;    // frontier_[d] * o[d]
  int best_gain_dim_ = -1;       // argmax of gains_ over live dims
  double cached_threshold_ = 0.0;
  bool threshold_valid_ = false;

};

/// Arena of recycled ReverseTop1State buffers. SB churns one state per
/// skyline object: objects leave when fully assigned and new skyline
/// members appear every loop, so without recycling each arrival
/// re-grows a queue, a seen map and the per-dim caches through the
/// allocator. Releasing a retired object's state parks its buffers
/// here; acquiring moves them to the next arrival. A recycled state is
/// observably identical to a default-constructed one (see
/// ReverseTop1State::Recycle), so search results are unchanged.
class ReverseTop1StatePool {
 public:
  /// A state ready for first use: recycled buffers when available.
  ReverseTop1State Acquire() {
    if (free_.empty()) return ReverseTop1State();
    ReverseTop1State state = std::move(free_.back());
    free_.pop_back();
    return state;
  }

  /// Parks a retired state's buffers for reuse.
  void Release(ReverseTop1State&& state) {
    state.Recycle();
    free_.push_back(std::move(state));
  }

  /// Bytes parked in the freelist (memory-usage metric).
  size_t memory_bytes() const {
    size_t bytes = free_.capacity() * sizeof(ReverseTop1State);
    for (const ReverseTop1State& s : free_) {
      bytes += s.memory_bytes() - sizeof(ReverseTop1State);
    }
    return bytes;
  }

  size_t size() const { return free_.size(); }

 private:
  std::vector<ReverseTop1State> free_;
};

/// Reverse top-1 searcher over one function index.
class ReverseTop1 {
 public:
  ReverseTop1(FunctionIndexBase* index, ReverseTop1Options options);

  /// Returns the unassigned function maximizing f(o) (ties: smaller id),
  /// or nullopt if every function is assigned. `assigned[fid]` nonzero
  /// marks assigned functions. The state resumes from previous calls
  /// for the same object. `num_unassigned`, when >= 0, is the caller's
  /// count of functions with assigned[fid] == 0 (SB maintains it); it
  /// replaces the O(|F|) exhaustion scan on the queue-starved path.
  std::optional<std::pair<FunctionId, double>> Best(
      ReverseTop1State* state, const Point& o,
      const std::vector<uint8_t>& assigned, int64_t num_unassigned = -1);

  /// Number of list probes performed (diagnostics / ablation).
  int64_t probes() const { return probes_; }
  /// Number of from-scratch restarts triggered by Omega exhaustion.
  int64_t restarts() const { return restarts_; }

 private:
  void Reset(ReverseTop1State* state, const Point& o) const;

  /// Fractional-knapsack threshold over the next-unread list values
  /// (upper bound of f(o) for any function not yet seen in any list).
  /// Returns a negative value when all lists are exhausted.
  double TightThreshold(ReverseTop1State* state, const Point& o);

  /// Picks the list to probe next; -1 when all lists are exhausted.
  int PickList(const ReverseTop1State& state, const Point& o);

  /// Refreshes the cached frontier/gains/threshold of dim `d` after its
  /// position advanced (memory-resident fast path only).
  void RefreshFrontier(ReverseTop1State* state, const Point& o, int d) const;

  /// Entry accessor: raw array when available, virtual call otherwise.
  std::pair<double, FunctionId> EntryAt(int dim, int pos) {
    const auto* raw = raw_lists_[dim];
    return raw != nullptr ? raw[pos] : index_->Entry(dim, pos);
  }

  /// Upper bound on the coefficient of any unseen function in list
  /// `dim` once the scan cursor is at `pos`: the next unread entry's
  /// coefficient, or — impact-ordered — the next unconsumed block's max
  /// impact (every entry of a consumed block is marked seen, so an
  /// unseen function sits in a later block).
  double FrontierValue(int dim, int pos) const {
    if (use_impact_) return packed_->BlockMaxImpact(dim, pos);
    const auto* raw = raw_lists_[dim];
    return raw != nullptr ? raw[pos].first : index_->Entry(dim, pos).first;
  }

  bool Seen(const ReverseTop1State& state, FunctionId fid) const {
    if (use_seen_epoch_) return state.seen_gen_[fid] == state.gen_;
    return (state.seen_bits_[static_cast<size_t>(fid) >> 6] >>
            (fid & 63)) &
           1;
  }
  void MarkSeen(ReverseTop1State* state, FunctionId fid) const {
    if (use_seen_epoch_) {
      state->seen_gen_[fid] = state->gen_;
    } else {
      state->seen_bits_[static_cast<size_t>(fid) >> 6] |= uint64_t{1}
                                                          << (fid & 63);
    }
  }

  FunctionIndexBase* index_;
  ReverseTop1Options options_;
  std::vector<const std::pair<double, FunctionId>*> raw_lists_;
  // Set when the index is a PackedFunctionStore; use_impact_ adds
  // options_.impact_ordered. Impact-ordered scans advance positions_ in
  // BLOCK units and scan_limit_ is the per-list block count; otherwise
  // positions are entry indexes and the limit is |F|.
  PackedFunctionStore* packed_ = nullptr;
  bool use_impact_ = false;
  int scan_limit_ = 0;
  std::vector<int32_t> scratch_fids_;  // one-block decode buffer
  // True when every list is memory-resident AND probing is biased: the
  // state caches frontier/gains/threshold and updates them per probe.
  bool use_caches_ = false;
  // Seen-set representation (see ReverseTop1State): epoch byte map for
  // no-resume (reset-per-call) searches, compact bitmap otherwise.
  bool use_seen_epoch_ = false;
  int omega_cap_;
  int64_t probes_ = 0;
  int64_t restarts_ = 0;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_TOPK_REVERSE_TOP1_H_

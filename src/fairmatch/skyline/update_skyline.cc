// Incremental skyline maintenance (paper Algorithm 2).
#include "fairmatch/common/check.h"
#include "fairmatch/skyline/bbs.h"

namespace fairmatch {

void SkylineManager::RemoveAndUpdate(const std::vector<ObjectId>& removed) {
  if (removed.empty()) return;

  // Phase 1: detach every removed member, collecting their parked
  // chains. All removals happen before any re-parking so that entries
  // dominated only by removed members are re-examined rather than
  // re-parked under a member that is about to disappear.
  pending_.clear();
  for (ObjectId id : removed) {
    int slot = sky_.SlotOf(id);
    FAIRMATCH_CHECK(slot >= 0);
    for (uint32_t h = plist_head_[slot]; h != SkyEntryArena::kNil;) {
      const uint32_t next = arena_.next(h);
      pending_.push_back(h);
      h = next;
    }
    plist_head_[slot] = SkyEntryArena::kNil;
    sky_.Remove(id);
  }

  // Phase 2: re-park entries still dominated by a surviving member; the
  // rest fall in the union of the removed members' exclusive dominance
  // regions and form the candidate set S_cand. All probes go through
  // one multi-probe dominator call (parking and enqueueing never add
  // members, so the batch matches per-entry probing).
  Heap candidates;
  batch_handles_.assign(pending_.begin(), pending_.end());
  ParkOrPushBatch(&candidates);

  // Phase 3: resume BBS over S_cand (Algorithm 2's ResumeSkyline).
  ProcessHeap(&candidates);
}

}  // namespace fairmatch

// Incremental skyline maintenance (paper Algorithm 2).
#include <utility>

#include "fairmatch/common/check.h"
#include "fairmatch/skyline/bbs.h"

namespace fairmatch {

void SkylineManager::RemoveAndUpdate(const std::vector<ObjectId>& removed) {
  if (removed.empty()) return;

  // Phase 1: detach every removed member, collecting their plists.
  // All removals happen before any re-parking so that entries dominated
  // only by removed members are re-examined rather than re-parked under
  // a member that is about to disappear.
  std::vector<SkyEntry> pending;
  for (ObjectId id : removed) {
    int slot = sky_.SlotOf(id);
    FAIRMATCH_CHECK(slot >= 0);
    std::vector<SkyEntry>& plist = sky_.at(slot).plist;
    pending.insert(pending.end(), std::make_move_iterator(plist.begin()),
                   std::make_move_iterator(plist.end()));
    plist.clear();
    sky_.Remove(id);
  }

  // Phase 2: re-park entries still dominated by a surviving member; the
  // rest fall in the union of the removed members' exclusive dominance
  // regions and form the candidate set S_cand.
  Heap candidates;
  for (const SkyEntry& e : pending) {
    ParkOrPush(&candidates, e);
  }

  // Phase 3: resume BBS over S_cand (Algorithm 2's ResumeSkyline).
  ProcessHeap(&candidates);
}

}  // namespace fairmatch

// Pool allocator for SkyEntry nodes with an intrusive freelist.
//
// UpdateSkyline churns entries between the BBS heap and the members'
// pruned lists on every RemoveAndUpdate: with std::vector plists each
// park copies a ~100-byte SkyEntry and each drain reallocates. The
// arena keeps every parked or queued entry in one growing buffer;
// entries move between lists by relinking a 4-byte handle, freed slots
// are recycled through the freelist, and the high-water mark feeds the
// paper's search-structure memory metric (via MemoryTracker).
//
// Handles are indices, so they stay valid across buffer growth. The
// `next` link doubles as the freelist pointer and as the intrusive
// plist chain, which is why a live entry's next is reset on Alloc.
#ifndef FAIRMATCH_SKYLINE_SKY_ARENA_H_
#define FAIRMATCH_SKYLINE_SKY_ARENA_H_

#include <cstdint>
#include <vector>

#include "fairmatch/common/check.h"
#include "fairmatch/skyline/sky_entry.h"

namespace fairmatch {

/// Growable pool of SkyEntry nodes addressed by 32-bit handles.
class SkyEntryArena {
 public:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  /// Allocates a node holding `e`; reuses a freed slot when available.
  uint32_t Alloc(const SkyEntry& e) {
    uint32_t h;
    if (free_head_ != kNil) {
      h = free_head_;
      free_head_ = nodes_[h].next;
    } else {
      h = static_cast<uint32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    nodes_[h].entry = e;
    nodes_[h].next = kNil;
    live_++;
    if (live_ > high_water_) high_water_ = live_;
    return h;
  }

  /// Returns a node to the freelist. The handle must be live.
  void Free(uint32_t h) {
    FAIRMATCH_DCHECK(h < nodes_.size());
    nodes_[h].next = free_head_;
    free_head_ = h;
    live_--;
  }

  SkyEntry& entry(uint32_t h) {
    FAIRMATCH_DCHECK(h < nodes_.size());
    return nodes_[h].entry;
  }
  const SkyEntry& entry(uint32_t h) const {
    FAIRMATCH_DCHECK(h < nodes_.size());
    return nodes_[h].entry;
  }

  uint32_t next(uint32_t h) const {
    FAIRMATCH_DCHECK(h < nodes_.size());
    return nodes_[h].next;
  }
  void set_next(uint32_t h, uint32_t n) {
    FAIRMATCH_DCHECK(h < nodes_.size());
    nodes_[h].next = n;
  }

  /// Currently allocated node count.
  size_t live() const { return live_; }
  /// Largest live() ever observed (the paper's memory-usage metric).
  size_t high_water() const { return high_water_; }
  size_t high_water_bytes() const { return high_water_ * sizeof(Node); }
  /// Bytes actually reserved by the pool.
  size_t reserved_bytes() const { return nodes_.capacity() * sizeof(Node); }

 private:
  struct Node {
    SkyEntry entry;
    uint32_t next = kNil;
  };

  std::vector<Node> nodes_;
  uint32_t free_head_ = kNil;
  size_t live_ = 0;
  size_t high_water_ = 0;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_SKYLINE_SKY_ARENA_H_

// Container for the current skyline with fast dominance queries.
//
// Members are kept indexed by descending coordinate sum, which allows
// dominance probes to stop early: a strict dominator of a point must
// have a strictly larger sum. A "last successful pruner" cache
// accelerates the common case of spatially clustered probes.
#ifndef FAIRMATCH_SKYLINE_SKYLINE_SET_H_
#define FAIRMATCH_SKYLINE_SKYLINE_SET_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "fairmatch/skyline/sky_entry.h"

namespace fairmatch {

/// One skyline member and the entries it exclusively prunes.
struct SkylineObject {
  Point point;
  ObjectId id = kInvalidObject;
  double sum = 0.0;
  bool live = false;
  /// Pruned list (Section 5.2): entries dominated by this member and by
  /// no earlier-checked live member.
  std::vector<SkyEntry> plist;
};

/// The set of current skyline members.
class SkylineSet {
 public:
  SkylineSet() = default;

  /// Adds a member; returns its slot.
  int Add(const Point& p, ObjectId id);

  /// Removes a member. The caller is responsible for draining its plist
  /// first (or accepting its loss).
  void Remove(ObjectId id);

  bool Contains(ObjectId id) const { return by_id_.count(id) > 0; }
  int SlotOf(ObjectId id) const;

  SkylineObject& at(int slot) { return slots_[slot]; }
  const SkylineObject& at(int slot) const { return slots_[slot]; }

  /// Slot of a live member strictly dominating `corner` (sum-pruned
  /// scan), or -1. `corner_sum` must equal corner.Sum().
  int FindDominator(const Point& corner, double corner_sum);

  size_t size() const { return by_id_.size(); }

  /// Invokes fn(slot, member) for every live member.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, slot] : order_) {
      fn(slot, slots_[slot]);
    }
  }

  /// Live member slots (descending sum order).
  std::vector<int> LiveSlots() const;

  /// Approximate bytes held by members, plists and indexes (the paper's
  /// memory-usage metric for SB's search structures).
  size_t memory_bytes() const;

 private:
  std::vector<SkylineObject> slots_;
  std::vector<int> free_slots_;
  // (-sum, slot) -> slot: ascending on -sum = descending on sum.
  std::map<std::pair<double, int>, int> order_;
  std::unordered_map<ObjectId, int> by_id_;
  int last_pruner_ = -1;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_SKYLINE_SKYLINE_SET_H_

// Container for the current skyline with fast dominance queries.
//
// Members are kept in a dense rank order of descending coordinate sum,
// which allows dominance probes to stop early: a strict dominator of a
// point must have a strictly larger sum. The prunable prefix is found
// by binary search and scanned as dim-major (SoA) float columns by a
// batched dominance kernel (common/simd.h) that tests a whole vector
// of members per step. A "last successful pruner" cache accelerates
// the common case of spatially clustered probes.
//
// The scan order — descending sum, ties by ascending slot, cache
// checked first — and the cache update sequence are exactly the
// original map-based implementation's, so every caller sees the same
// dominator slots in the same order.
#ifndef FAIRMATCH_SKYLINE_SKYLINE_SET_H_
#define FAIRMATCH_SKYLINE_SKYLINE_SET_H_

#include <unordered_map>
#include <vector>

#include "fairmatch/skyline/sky_entry.h"

namespace fairmatch {

/// One skyline member and the entries it exclusively prunes.
struct SkylineObject {
  Point point;
  ObjectId id = kInvalidObject;
  double sum = 0.0;
  bool live = false;
  /// Pruned list (Section 5.2): entries dominated by this member and by
  /// no earlier-checked live member.
  std::vector<SkyEntry> plist;
};

/// One dominance probe of a batch: a corner and its coordinate sum
/// (`sum` must equal corner->Sum(); callers cache it as the BBS key).
struct DominatorProbe {
  const Point* corner;
  double sum;
};

/// The set of current skyline members.
class SkylineSet {
 public:
  SkylineSet() = default;

  /// Adds a member; returns its slot.
  int Add(const Point& p, ObjectId id);

  /// Removes a member. The caller is responsible for draining its plist
  /// first (or accepting its loss).
  void Remove(ObjectId id);

  bool Contains(ObjectId id) const { return by_id_.count(id) > 0; }
  int SlotOf(ObjectId id) const;

  SkylineObject& at(int slot) { return slots_[slot]; }
  const SkylineObject& at(int slot) const { return slots_[slot]; }

  /// Slot of a live member strictly dominating `corner` (sum-pruned
  /// scan), or -1. `corner_sum` must equal corner.Sum().
  int FindDominator(const Point& corner, double corner_sum);

  /// Multi-probe entry point: out[i] = FindDominator(*probes[i]) for
  /// every probe, in order (pruner-cache effects included). Equivalent
  /// to `count` consecutive single probes; the skyline must not change
  /// between them — callers batch the children of one expanded node or
  /// one parked chain, which only park or enqueue.
  void FindDominatorBatch(const DominatorProbe* probes, int count,
                          int* out);

  /// Like FindDominatorBatch, but stops after the first probe that
  /// finds no dominator (its out entry is -1). Returns the number of
  /// probes executed. Callers that add the undominated point to the
  /// skyline resume with the remaining probes, reproducing the exact
  /// probe-Add interleaving of sequential FindDominator calls.
  int FindDominatorPrefix(const DominatorProbe* probes, int count,
                          int* out);

  size_t size() const { return by_id_.size(); }

  /// Invokes fn(slot, member) for every live member (descending sum).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (int i = 0; i < live_count_; ++i) {
      fn(rank_slot_[i], slots_[rank_slot_[i]]);
    }
  }

  /// Live member slots (descending sum order).
  std::vector<int> LiveSlots() const;

  /// Approximate bytes held by members, plists and indexes (the paper's
  /// memory-usage metric for SB's search structures).
  size_t memory_bytes() const;

 private:
  /// One ordered sum-pruned scan (the FindDominator core).
  int ProbeOrdered(const Point& corner, double corner_sum);

  /// Rank position of the live member in `slot` (exact match on the
  /// (-sum, slot) key).
  int RankOf(double sum, int slot) const;

  /// Grows the coordinate columns to hold at least `needed` members.
  void GrowCoords(int needed);

  std::vector<SkylineObject> slots_;
  std::vector<int> free_slots_;
  std::unordered_map<ObjectId, int> by_id_;
  int last_pruner_ = -1;

  // Dense rank arrays, ascending (-sum, slot) — i.e. descending sum
  // with ties on ascending slot, the probe scan order. rank_coords_ is
  // dim-major: row d is the float coordinates of dimension d over rank
  // positions, so the dominance kernel loads consecutive members.
  int dims_ = 0;
  int live_count_ = 0;
  std::vector<double> rank_sum_;
  std::vector<int> rank_slot_;
  std::vector<float> rank_coords_;  // dims_ rows x coord_cap_ columns
  int coord_cap_ = 0;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_SKYLINE_SKYLINE_SET_H_

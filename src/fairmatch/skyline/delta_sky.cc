#include "fairmatch/skyline/delta_sky.h"

#include <algorithm>
#include <queue>

#include "fairmatch/common/check.h"

namespace fairmatch {

namespace {
using Heap =
    std::priority_queue<SkyEntry, std::vector<SkyEntry>, SkyEntryWorse>;
}  // namespace

void DeltaSkyManager::ComputeInitial() {
  FAIRMATCH_CHECK(sky_.size() == 0);
  if (tree_->size() == 0) return;
  Heap heap;
  heap.push(SkyEntry::ForNode(MBR::Empty(tree_->dims()), tree_->root()));
  // The root entry's key is irrelevant: it is alone on the heap, and an
  // empty MBR is never reported dominated.
  bool root = true;
  // Per-expansion scratch for the multi-probe dominator call.
  std::vector<SkyEntry> children;
  std::vector<DominatorProbe> probes;
  std::vector<int> dominated;
  while (!heap.empty()) {
    peak_heap_bytes_ =
        std::max(peak_heap_bytes_, heap.size() * sizeof(SkyEntry));
    SkyEntry e = heap.top();
    heap.pop();
    if (!root) {
      if (sky_.FindDominator(e.mbr.best_corner(), e.key) >= 0) continue;
    }
    root = false;
    if (e.is_node) {
      NodeHandle h = tree_->ReadNode(e.id);
      nodes_read_++;
      NodeView node = h.view();
      // All child corners of the expanded node in one probe batch
      // (pushing never adds members, so batching matches per-child
      // probes); survivors enter the heap in child order, as before.
      children.clear();
      probes.clear();
      for (int i = 0; i < node.count(); ++i) {
        children.push_back(node.is_leaf()
                               ? SkyEntry::ForObject(node.leaf_point(i),
                                                     node.child(i))
                               : SkyEntry::ForNode(node.entry_mbr(i),
                                                   node.child(i)));
      }
      for (const SkyEntry& child : children) {
        probes.push_back(DominatorProbe{&child.mbr.best_corner(), child.key});
      }
      dominated.resize(children.size());
      sky_.FindDominatorBatch(probes.data(),
                              static_cast<int>(children.size()),
                              dominated.data());
      for (size_t i = 0; i < children.size(); ++i) {
        if (dominated[i] < 0) heap.push(children[i]);
      }
    } else {
      sky_.Add(e.point(), e.id);
    }
  }
}

void DeltaSkyManager::Remove(ObjectId id) {
  int slot = sky_.SlotOf(id);
  FAIRMATCH_CHECK(slot >= 0);
  Point deleted = sky_.at(slot).point;
  sky_.Remove(id);
  removed_.insert(id);

  // Constrained BBS over the deleted member's EDR, from the root.
  Heap heap;
  heap.push(SkyEntry::ForNode(MBR::Empty(tree_->dims()), tree_->root()));
  bool root = true;
  const int dims = tree_->dims();
  while (!heap.empty()) {
    peak_heap_bytes_ =
        std::max(peak_heap_bytes_, heap.size() * sizeof(SkyEntry));
    SkyEntry e = heap.top();
    heap.pop();
    if (!root) {
      if (e.is_node) {
        // Entries disjoint from the deleted member's dominance region
        // cannot contain promoted objects.
        if (!e.mbr.IntersectsDominanceRegionOf(deleted)) continue;
        // DeltaSky's EDR test without materializing the EDR: clip the
        // entry to the dominance region and check whether some current
        // member dominates the clipped best corner (O(|Osky| * D)).
        Point corner(dims);
        for (int d = 0; d < dims; ++d) {
          corner[d] = std::min(e.mbr.hi()[d], deleted[d]);
        }
        if (sky_.FindDominator(corner, corner.Sum()) >= 0) continue;
      } else {
        if (removed_.count(e.id) > 0) continue;
        if (sky_.Contains(e.id)) continue;
        // Promotion candidates lie inside the deleted member's
        // dominance region ...
        if (!deleted.Dominates(e.point())) continue;
        // ... and must not be dominated by any surviving member.
        if (sky_.FindDominator(e.mbr.best_corner(), e.key) >= 0) continue;
      }
    }
    root = false;
    if (e.is_node) {
      NodeHandle h = tree_->ReadNode(e.id);
      nodes_read_++;
      NodeView node = h.view();
      for (int i = 0; i < node.count(); ++i) {
        SkyEntry child = node.is_leaf()
                             ? SkyEntry::ForObject(node.leaf_point(i),
                                                   node.child(i))
                             : SkyEntry::ForNode(node.entry_mbr(i),
                                                 node.child(i));
        heap.push(child);
      }
    } else {
      sky_.Add(e.point(), e.id);
    }
  }
}

bool DeltaSkyManager::Insert(const Point& p, ObjectId id) {
  if (sky_.Contains(id)) return false;
  if (sky_.FindDominator(p, p.Sum()) >= 0) return false;
  std::vector<ObjectId> evict;
  sky_.ForEach([&](int, const SkylineObject& m) {
    if (p.Dominates(m.point)) evict.push_back(m.id);
  });
  for (ObjectId e : evict) sky_.Remove(e);
  sky_.Add(p, id);
  return true;
}

size_t DeltaSkyManager::memory_bytes() const {
  return sky_.memory_bytes() + peak_heap_bytes_ + removed_.size() * 16;
}

}  // namespace fairmatch

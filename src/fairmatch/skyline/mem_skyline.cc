#include "fairmatch/skyline/mem_skyline.h"

#include <algorithm>
#include <numeric>

#include "fairmatch/common/check.h"

namespace fairmatch {

MemSkyline::MemSkyline(const std::vector<Point>& points) {
  removed_.assign(points.size(), 0);
  // Process in descending sum order: any dominator of a point precedes
  // it, so a single pass suffices.
  std::vector<int> order(points.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> sums(points.size());
  for (size_t i = 0; i < points.size(); ++i) sums[i] = points[i].Sum();
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (sums[a] != sums[b]) return sums[a] > sums[b];
    return a < b;
  });
  for (int id : order) {
    Park(SkyEntry::ForObject(points[id], id));
  }
}

void MemSkyline::Park(const SkyEntry& e) {
  int dominator = sky_.FindDominator(e.mbr.best_corner(), e.key);
  if (dominator >= 0) {
    sky_.at(dominator).plist.push_back(e);
  } else {
    sky_.Add(e.point(), e.id);
  }
}

void MemSkyline::Remove(int id) {
  FAIRMATCH_CHECK(id >= 0 && id < static_cast<int>(removed_.size()));
  FAIRMATCH_CHECK(!removed_[id]);
  removed_[id] = 1;
  int slot = sky_.SlotOf(id);
  if (slot < 0) return;  // dominated point: skipped lazily on promotion

  std::vector<SkyEntry> pending = std::move(sky_.at(slot).plist);
  sky_.at(slot).plist.clear();
  sky_.Remove(id);

  // Candidates must be re-examined in descending sum order so that
  // promoted members precede the points they dominate.
  std::sort(pending.begin(), pending.end(), [](const SkyEntry& a,
                                               const SkyEntry& b) {
    if (a.key != b.key) return a.key > b.key;
    return a.id < b.id;
  });
  for (const SkyEntry& e : pending) {
    if (removed_[e.id]) continue;
    Park(e);
  }
}

std::vector<int> MemSkyline::Members() const {
  std::vector<int> ids;
  ids.reserve(sky_.size());
  sky_.ForEach([&](int, const SkylineObject& member) {
    ids.push_back(member.id);
  });
  return ids;
}

}  // namespace fairmatch

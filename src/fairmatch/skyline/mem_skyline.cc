#include "fairmatch/skyline/mem_skyline.h"

#include <algorithm>
#include <numeric>

#include "fairmatch/common/check.h"

namespace fairmatch {

MemSkyline::MemSkyline(const std::vector<Point>& points) {
  removed_.assign(points.size(), 0);
  // Process in descending sum order: any dominator of a point precedes
  // it, so a single pass suffices.
  std::vector<int> order(points.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> sums(points.size());
  for (size_t i = 0; i < points.size(); ++i) sums[i] = points[i].Sum();
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (sums[a] != sums[b]) return sums[a] > sums[b];
    return a < b;
  });
  std::vector<SkyEntry> entries;
  entries.reserve(points.size());
  for (int id : order) {
    entries.push_back(SkyEntry::ForObject(points[id], id));
  }
  ParkAll(entries);
}

void MemSkyline::ParkAll(const std::vector<SkyEntry>& entries) {
  // Multi-probe parking: dominated prefixes are probed in one batch;
  // the first undominated entry becomes a member (which can dominate
  // later entries, so probing resumes against the updated skyline) —
  // the exact probe-Add interleaving of per-entry Park calls.
  const int n = static_cast<int>(entries.size());
  std::vector<DominatorProbe> probes;
  probes.reserve(n);
  for (const SkyEntry& e : entries) {
    probes.push_back(DominatorProbe{&e.mbr.best_corner(), e.key});
  }
  std::vector<int> dominator(n);
  int i = 0;
  while (i < n) {
    const int done =
        sky_.FindDominatorPrefix(&probes[i], n - i, &dominator[i]);
    for (int j = i; j < i + done; ++j) {
      if (dominator[j] >= 0) {
        sky_.at(dominator[j]).plist.push_back(entries[j]);
      } else {
        sky_.Add(entries[j].point(), entries[j].id);
      }
    }
    i += done;
  }
}

void MemSkyline::Remove(int id) {
  FAIRMATCH_CHECK(id >= 0 && id < static_cast<int>(removed_.size()));
  FAIRMATCH_CHECK(!removed_[id]);
  removed_[id] = 1;
  int slot = sky_.SlotOf(id);
  if (slot < 0) return;  // dominated point: skipped lazily on promotion

  std::vector<SkyEntry> pending = std::move(sky_.at(slot).plist);
  sky_.at(slot).plist.clear();
  sky_.Remove(id);

  // Candidates must be re-examined in descending sum order so that
  // promoted members precede the points they dominate.
  std::sort(pending.begin(), pending.end(), [](const SkyEntry& a,
                                               const SkyEntry& b) {
    if (a.key != b.key) return a.key > b.key;
    return a.id < b.id;
  });
  // Drop already-removed ids up front (removed_ is fixed for the whole
  // drain, so prefiltering matches the per-entry check).
  pending.erase(std::remove_if(pending.begin(), pending.end(),
                               [&](const SkyEntry& e) {
                                 return removed_[e.id] != 0;
                               }),
                pending.end());
  ParkAll(pending);
}

std::vector<int> MemSkyline::Members() const {
  std::vector<int> ids;
  ids.reserve(sky_.size());
  sky_.ForEach([&](int, const SkylineObject& member) {
    ids.push_back(member.id);
  });
  return ids;
}

}  // namespace fairmatch

#include "fairmatch/skyline/bbs.h"

#include <algorithm>

#include "fairmatch/common/check.h"

namespace fairmatch {

void SkylineManager::ParkOrPush(Heap* heap, const SkyEntry& e) {
  int dominator = sky_.FindDominator(e.mbr.best_corner(), e.key);
  if (dominator >= 0) {
    sky_.at(dominator).plist.push_back(e);
  } else {
    heap->push(e);
  }
}

void SkylineManager::ProcessHeap(Heap* heap) {
  while (!heap->empty()) {
    peak_heap_bytes_ =
        std::max(peak_heap_bytes_, heap->size() * sizeof(SkyEntry));
    SkyEntry e = heap->top();
    heap->pop();
    // The entry may have become dominated by a member added after it
    // was pushed.
    int dominator = sky_.FindDominator(e.mbr.best_corner(), e.key);
    if (dominator >= 0) {
      sky_.at(dominator).plist.push_back(e);
      continue;
    }
    if (e.is_node) {
      NodeHandle h = tree_->ReadNode(e.id);
      nodes_read_++;
      if (log_reads_) read_log_.push_back(e.id);
      NodeView node = h.view();
      if (node.is_leaf()) {
        for (int i = 0; i < node.count(); ++i) {
          ParkOrPush(heap, SkyEntry::ForObject(node.leaf_point(i),
                                               node.child(i)));
        }
      } else {
        for (int i = 0; i < node.count(); ++i) {
          ParkOrPush(heap,
                     SkyEntry::ForNode(node.entry_mbr(i), node.child(i)));
        }
      }
    } else {
      sky_.Add(e.point(), e.id);
    }
  }
}

void SkylineManager::ComputeInitial() {
  FAIRMATCH_CHECK(sky_.size() == 0);
  if (tree_->size() == 0) return;
  Heap heap;
  // Seed with the root's entries (one counted read).
  NodeHandle h = tree_->ReadNode(tree_->root());
  nodes_read_++;
  if (log_reads_) read_log_.push_back(tree_->root());
  NodeView node = h.view();
  if (node.is_leaf()) {
    for (int i = 0; i < node.count(); ++i) {
      ParkOrPush(&heap, SkyEntry::ForObject(node.leaf_point(i),
                                            node.child(i)));
    }
  } else {
    for (int i = 0; i < node.count(); ++i) {
      ParkOrPush(&heap, SkyEntry::ForNode(node.entry_mbr(i), node.child(i)));
    }
  }
  h.Release();
  ProcessHeap(&heap);
}

size_t SkylineManager::memory_bytes() const {
  return sky_.memory_bytes() + peak_heap_bytes_;
}

}  // namespace fairmatch

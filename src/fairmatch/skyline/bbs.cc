#include "fairmatch/skyline/bbs.h"

#include <algorithm>

#include "fairmatch/common/check.h"

namespace fairmatch {

void SkylineManager::ParkOrPush(Heap* heap, uint32_t handle) {
  const SkyEntry& e = arena_.entry(handle);
  int dominator = sky_.FindDominator(e.mbr.best_corner(), e.key);
  if (dominator >= 0) {
    Park(dominator, handle);
  } else {
    heap->push(HeapItem{e.key, e.id, e.is_node, handle});
  }
}

void SkylineManager::ProcessHeap(Heap* heap) {
  while (!heap->empty()) {
    peak_heap_bytes_ =
        std::max(peak_heap_bytes_, heap->size() * sizeof(HeapItem));
    const HeapItem item = heap->top();
    heap->pop();
    const SkyEntry& e = arena_.entry(item.handle);
    // The entry may have become dominated by a member added after it
    // was pushed.
    int dominator = sky_.FindDominator(e.mbr.best_corner(), e.key);
    if (dominator >= 0) {
      Park(dominator, item.handle);
      continue;
    }
    if (item.is_node) {
      // The MBR is consumed by the expansion; release the node's arena
      // slot before the children claim new ones.
      arena_.Free(item.handle);
      NodeHandle h = tree_->ReadNode(item.id);
      nodes_read_++;
      if (log_reads_) read_log_.push_back(item.id);
      NodeView node = h.view();
      if (node.is_leaf()) {
        for (int i = 0; i < node.count(); ++i) {
          ParkOrPush(heap, arena_.Alloc(SkyEntry::ForObject(
                               node.leaf_point(i), node.child(i))));
        }
      } else {
        for (int i = 0; i < node.count(); ++i) {
          ParkOrPush(heap, arena_.Alloc(SkyEntry::ForNode(
                               node.entry_mbr(i), node.child(i))));
        }
      }
    } else {
      const Point point = e.point();  // copy: Add may grow structures
      arena_.Free(item.handle);
      int slot = sky_.Add(point, item.id);
      EnsurePlistSlot(slot);
    }
  }
}

void SkylineManager::ComputeInitial() {
  FAIRMATCH_CHECK(sky_.size() == 0);
  if (tree_->size() == 0) return;
  Heap heap;
  // Seed with the root's entries (one counted read).
  NodeHandle h = tree_->ReadNode(tree_->root());
  nodes_read_++;
  if (log_reads_) read_log_.push_back(tree_->root());
  NodeView node = h.view();
  if (node.is_leaf()) {
    for (int i = 0; i < node.count(); ++i) {
      ParkOrPush(&heap, arena_.Alloc(SkyEntry::ForObject(
                            node.leaf_point(i), node.child(i))));
    }
  } else {
    for (int i = 0; i < node.count(); ++i) {
      ParkOrPush(&heap, arena_.Alloc(SkyEntry::ForNode(node.entry_mbr(i),
                                                       node.child(i))));
    }
  }
  h.Release();
  ProcessHeap(&heap);
}

size_t SkylineManager::memory_bytes() const {
  return sky_.memory_bytes() + arena_.high_water_bytes() +
         plist_head_.capacity() * sizeof(uint32_t) + peak_heap_bytes_;
}

}  // namespace fairmatch

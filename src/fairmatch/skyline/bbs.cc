#include "fairmatch/skyline/bbs.h"

#include <algorithm>

#include "fairmatch/common/check.h"

namespace fairmatch {

void SkylineManager::ParkOrPushBatch(Heap* heap) {
  const int count = static_cast<int>(batch_handles_.size());
  if (count == 0) return;
  // Build the probes only after every handle is allocated: Alloc may
  // grow the arena, which would invalidate earlier entry references.
  batch_probes_.clear();
  for (uint32_t h : batch_handles_) {
    const SkyEntry& e = arena_.entry(h);
    batch_probes_.push_back(DominatorProbe{&e.mbr.best_corner(), e.key});
  }
  batch_out_.resize(count);
  sky_.FindDominatorBatch(batch_probes_.data(), count, batch_out_.data());
  for (int i = 0; i < count; ++i) {
    const uint32_t handle = batch_handles_[i];
    if (batch_out_[i] >= 0) {
      Park(batch_out_[i], handle);
    } else {
      const SkyEntry& e = arena_.entry(handle);
      heap->push(HeapItem{e.key, e.id, e.is_node, handle});
    }
  }
  batch_handles_.clear();
}

void SkylineManager::ExpandInto(Heap* heap, const NodeView& node) {
  batch_handles_.clear();
  if (node.is_leaf()) {
    for (int i = 0; i < node.count(); ++i) {
      batch_handles_.push_back(arena_.Alloc(
          SkyEntry::ForObject(node.leaf_point(i), node.child(i))));
    }
  } else {
    for (int i = 0; i < node.count(); ++i) {
      batch_handles_.push_back(arena_.Alloc(
          SkyEntry::ForNode(node.entry_mbr(i), node.child(i))));
    }
  }
  ParkOrPushBatch(heap);
}

void SkylineManager::ProcessHeap(Heap* heap) {
  while (!heap->empty()) {
    peak_heap_bytes_ =
        std::max(peak_heap_bytes_, heap->size() * sizeof(HeapItem));
    const HeapItem item = heap->top();
    heap->pop();
    const SkyEntry& e = arena_.entry(item.handle);
    // The entry may have become dominated by a member added after it
    // was pushed.
    int dominator = sky_.FindDominator(e.mbr.best_corner(), e.key);
    if (dominator >= 0) {
      Park(dominator, item.handle);
      continue;
    }
    if (item.is_node) {
      // The MBR is consumed by the expansion; release the node's arena
      // slot before the children claim new ones.
      arena_.Free(item.handle);
      NodeHandle h = tree_->ReadNode(item.id);
      nodes_read_++;
      if (log_reads_) read_log_.push_back(item.id);
      ExpandInto(heap, h.view());
    } else {
      const Point point = e.point();  // copy: Add may grow structures
      arena_.Free(item.handle);
      int slot = sky_.Add(point, item.id);
      EnsurePlistSlot(slot);
    }
  }
}

void SkylineManager::ComputeInitial() {
  FAIRMATCH_CHECK(sky_.size() == 0);
  if (tree_->size() == 0) return;
  Heap heap;
  // Seed with the root's entries (one counted read).
  NodeHandle h = tree_->ReadNode(tree_->root());
  nodes_read_++;
  if (log_reads_) read_log_.push_back(tree_->root());
  ExpandInto(&heap, h.view());
  h.Release();
  ProcessHeap(&heap);
}

size_t SkylineManager::memory_bytes() const {
  return sky_.memory_bytes() + arena_.high_water_bytes() +
         plist_head_.capacity() * sizeof(uint32_t) + peak_heap_bytes_;
}

}  // namespace fairmatch

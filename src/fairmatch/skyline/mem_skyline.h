// In-memory deletion-only skyline with pruned-entry parking.
//
// Used for the function skyline F_sky of the two-skyline prioritized
// variant (Section 6.2): each dominated point is parked under exactly
// one skyline member; removing a member re-examines only its parked
// points. The same plist idea as UpdateSkyline, without an R-tree.
#ifndef FAIRMATCH_SKYLINE_MEM_SKYLINE_H_
#define FAIRMATCH_SKYLINE_MEM_SKYLINE_H_

#include <vector>

#include "fairmatch/skyline/skyline_set.h"

namespace fairmatch {

/// Skyline over an in-memory point set, supporting only deletions.
class MemSkyline {
 public:
  /// Builds the skyline of `points` (ids = indices into `points`).
  explicit MemSkyline(const std::vector<Point>& points);

  /// Removes a point. If it is a skyline member its parked points are
  /// re-examined (some may be promoted); otherwise it is lazily skipped
  /// when later re-examined.
  void Remove(int id);

  bool IsSkyline(int id) const { return sky_.Contains(id); }

  /// Live skyline member ids.
  std::vector<int> Members() const;

  size_t memory_bytes() const { return sky_.memory_bytes(); }

 private:
  /// Parks every entry in order through batched dominator probes;
  /// undominated entries become members mid-stream (each probe either
  /// parks the entry under its dominator's plist or adds it).
  void ParkAll(const std::vector<SkyEntry>& entries);

  SkylineSet sky_;
  std::vector<uint8_t> removed_;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_SKYLINE_MEM_SKYLINE_H_

// DeltaSky-style skyline maintenance (Wu et al., ICDE 2007) — the
// baseline the paper compares UpdateSkyline against (Figure 8).
//
// DeltaSky keeps no pruned lists. After a skyline member is deleted, it
// re-traverses the R-tree from the root with a constrained BBS that
// visits only entries intersecting the deleted member's exclusive
// dominance region (EDR). The EDR is never materialized: each entry is
// tested with an O(|Osky| * D) dominance check against the current
// skyline, which is DeltaSky's headline trick. Because each deletion
// restarts from the root, the same nodes are read many times across the
// assignment — the I/O gap Figure 8 measures.
#ifndef FAIRMATCH_SKYLINE_DELTA_SKY_H_
#define FAIRMATCH_SKYLINE_DELTA_SKY_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "fairmatch/rtree/rtree.h"
#include "fairmatch/skyline/skyline_set.h"

namespace fairmatch {

/// Skyline maintenance without pruned lists (per-deletion re-traversal).
class DeltaSkyManager {
 public:
  explicit DeltaSkyManager(const RTree* tree) : tree_(tree) {}

  /// Computes the initial skyline with plain BBS (pruned entries are
  /// discarded, not tracked).
  void ComputeInitial();

  /// Deletes one skyline member and restores the skyline by a
  /// constrained traversal of the member's EDR.
  void Remove(ObjectId id);

  /// Seeds one member without any traversal. This is the epoch-handoff
  /// primitive for incremental updates (update/delta_builder.h): the
  /// caller re-seeds the previous epoch's skyline — a valid, mutually
  /// non-dominated set by construction — over the updated tree, then
  /// replays the epoch's deletions (Remove) and arrivals (Insert).
  void Seed(const Point& p, ObjectId id) { sky_.Add(p, id); }

  /// Incremental arrival: adds `p` unless a current member dominates
  /// it, and evicts members `p` dominates. Eviction needs no EDR
  /// traversal — dominance is transitive, so every object an evicted
  /// member kept out of the skyline is also dominated by `p`. No-op
  /// (returns false) when `p` is dominated or `id` is already a member.
  bool Insert(const Point& p, ObjectId id);

  SkylineSet& skyline() { return sky_; }
  const SkylineSet& skyline() const { return sky_; }

  size_t memory_bytes() const;
  int64_t nodes_read() const { return nodes_read_; }

 private:
  const RTree* tree_;
  SkylineSet sky_;
  // Objects already assigned: still present in the (never-shrinking)
  // R-tree, so re-traversals must skip them.
  std::unordered_set<ObjectId> removed_;
  int64_t nodes_read_ = 0;
  size_t peak_heap_bytes_ = 0;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_SKYLINE_DELTA_SKY_H_

// Branch-and-Bound Skyline over the R-tree (Papadias et al.), extended
// with the paper's pruned-list bookkeeping, plus the paper's
// I/O-optimal incremental maintenance (Algorithm 2, "UpdateSkyline").
//
// Invariant maintained across the entire assignment computation: every
// R-tree entry (node or object) that is not a current skyline member and
// has not been expanded lives in exactly one live member's plist or in
// the processing heap. Consequently no R-tree node is ever read twice
// (Theorem 1); tests assert this via the read log.
//
// Entries live in a SkyEntryArena (sky_arena.h): plists are intrusive
// handle chains and the heap holds 24-byte items with the ordering key
// inline, so RemoveAndUpdate churn relinks handles instead of copying
// ~100-byte SkyEntry values through the general allocator.
#ifndef FAIRMATCH_SKYLINE_BBS_H_
#define FAIRMATCH_SKYLINE_BBS_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "fairmatch/rtree/rtree.h"
#include "fairmatch/skyline/sky_arena.h"
#include "fairmatch/skyline/skyline_set.h"

namespace fairmatch {

/// Maintains the skyline of the live objects in an R-tree under
/// deletions (assignments), reading each tree node at most once.
class SkylineManager {
 public:
  explicit SkylineManager(const RTree* tree) : tree_(tree) {}

  /// Computes the initial skyline with BBS, parking every pruned entry
  /// in the plist of the member that pruned it.
  void ComputeInitial();

  /// Removes assigned skyline members and restores the skyline of the
  /// remaining objects (Algorithm 2; batch form for the multi-pair
  /// optimization of Section 5.3).
  void RemoveAndUpdate(const std::vector<ObjectId>& removed);

  SkylineSet& skyline() { return sky_; }
  const SkylineSet& skyline() const { return sky_; }

  /// Approximate bytes held by the skyline, arena-parked entries and
  /// heap (the paper's memory-usage metric).
  size_t memory_bytes() const;

  /// High-water mark of the entry arena, in bytes (perf diagnostics;
  /// reported through MemoryTracker via memory_bytes()).
  size_t arena_high_water_bytes() const {
    return arena_.high_water_bytes();
  }

  int64_t nodes_read() const { return nodes_read_; }

  /// When enabled, records every node page read (Theorem 1 tests).
  void EnableReadLog() { log_reads_ = true; }
  const std::vector<PageId>& read_log() const { return read_log_; }

 private:
  // Heap element: the SkyEntryWorse ordering fields cached inline (the
  // sift path never touches the arena), payload behind `handle`.
  struct HeapItem {
    double key;
    int32_t id;
    bool is_node;
    uint32_t handle;
  };
  // Max-heap order mirroring SkyEntryWorse: larger key first; at equal
  // keys nodes expand before objects emit; final tie on ascending id.
  // The order is total, so the pop sequence is deterministic.
  struct HeapItemWorse {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.key != b.key) return a.key < b.key;
      if (a.is_node != b.is_node) return !a.is_node;
      return a.id > b.id;
    }
  };
  using Heap =
      std::priority_queue<HeapItem, std::vector<HeapItem>, HeapItemWorse>;

  /// Core BBS loop: drains the heap, parking dominated entries,
  /// expanding nodes and promoting non-dominated objects.
  void ProcessHeap(Heap* heap);

  /// Routes every arena entry in `batch_handles_` to a dominator's
  /// plist or onto the heap: one multi-probe dominator call for all
  /// entries (same probe order as per-entry FindDominator calls, which
  /// probing alone never invalidates — it adds no skyline members),
  /// then the same routing.
  void ParkOrPushBatch(Heap* heap);

  /// Allocates arena entries for every child of `node` into
  /// `batch_handles_` and routes them via ParkOrPushBatch.
  void ExpandInto(Heap* heap, const NodeView& node);

  /// Prepends `handle` to slot's intrusive plist chain.
  void Park(int slot, uint32_t handle) {
    arena_.set_next(handle, plist_head_[slot]);
    plist_head_[slot] = handle;
  }

  /// Grows plist_head_ to cover `slot` (new skyline member).
  void EnsurePlistSlot(int slot) {
    if (static_cast<size_t>(slot) >= plist_head_.size()) {
      plist_head_.resize(slot + 1, SkyEntryArena::kNil);
    }
    FAIRMATCH_DCHECK(plist_head_[slot] == SkyEntryArena::kNil);
  }

  const RTree* tree_;
  SkylineSet sky_;
  SkyEntryArena arena_;
  // Per sky_ slot: head of the member's parked-entry chain (kNil when
  // empty). Indexed in lockstep with SkylineSet slots.
  std::vector<uint32_t> plist_head_;
  std::vector<uint32_t> pending_;  // RemoveAndUpdate scratch
  // Multi-probe scratch (ParkOrPushBatch), hoisted across expansions.
  std::vector<uint32_t> batch_handles_;
  std::vector<DominatorProbe> batch_probes_;
  std::vector<int> batch_out_;
  int64_t nodes_read_ = 0;
  bool log_reads_ = false;
  std::vector<PageId> read_log_;
  size_t peak_heap_bytes_ = 0;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_SKYLINE_BBS_H_

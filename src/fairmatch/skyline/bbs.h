// Branch-and-Bound Skyline over the R-tree (Papadias et al.), extended
// with the paper's pruned-list bookkeeping, plus the paper's
// I/O-optimal incremental maintenance (Algorithm 2, "UpdateSkyline").
//
// Invariant maintained across the entire assignment computation: every
// R-tree entry (node or object) that is not a current skyline member and
// has not been expanded lives in exactly one live member's plist or in
// the processing heap. Consequently no R-tree node is ever read twice
// (Theorem 1); tests assert this via the read log.
#ifndef FAIRMATCH_SKYLINE_BBS_H_
#define FAIRMATCH_SKYLINE_BBS_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "fairmatch/rtree/rtree.h"
#include "fairmatch/skyline/skyline_set.h"

namespace fairmatch {

/// Maintains the skyline of the live objects in an R-tree under
/// deletions (assignments), reading each tree node at most once.
class SkylineManager {
 public:
  explicit SkylineManager(const RTree* tree) : tree_(tree) {}

  /// Computes the initial skyline with BBS, parking every pruned entry
  /// in the plist of the member that pruned it.
  void ComputeInitial();

  /// Removes assigned skyline members and restores the skyline of the
  /// remaining objects (Algorithm 2; batch form for the multi-pair
  /// optimization of Section 5.3).
  void RemoveAndUpdate(const std::vector<ObjectId>& removed);

  SkylineSet& skyline() { return sky_; }
  const SkylineSet& skyline() const { return sky_; }

  /// Approximate bytes held by the skyline, plists and heap.
  size_t memory_bytes() const;

  int64_t nodes_read() const { return nodes_read_; }

  /// When enabled, records every node page read (Theorem 1 tests).
  void EnableReadLog() { log_reads_ = true; }
  const std::vector<PageId>& read_log() const { return read_log_; }

 private:
  using Heap =
      std::priority_queue<SkyEntry, std::vector<SkyEntry>, SkyEntryWorse>;

  /// Core BBS loop: drains the heap, parking dominated entries,
  /// expanding nodes and promoting non-dominated objects.
  void ProcessHeap(Heap* heap);

  /// Routes `e` to a dominator's plist or pushes it onto the heap.
  void ParkOrPush(Heap* heap, const SkyEntry& e);

  const RTree* tree_;
  SkylineSet sky_;
  int64_t nodes_read_ = 0;
  bool log_reads_ = false;
  std::vector<PageId> read_log_;
  size_t peak_heap_bytes_ = 0;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_SKYLINE_BBS_H_

// Heap/pruned-list element shared by the skyline algorithms.
#ifndef FAIRMATCH_SKYLINE_SKY_ENTRY_H_
#define FAIRMATCH_SKYLINE_SKY_ENTRY_H_

#include <cstdint>

#include "fairmatch/geom/mbr.h"

namespace fairmatch {

/// Either an R-tree node entry or a data object, queued for skyline
/// processing or parked in a pruned list.
struct SkyEntry {
  MBR mbr;       // degenerate box for objects
  int32_t id;    // page id (node) or object id (object)
  bool is_node;
  double key;    // cached mbr.BestSum(): larger = closer to the sky point

  static SkyEntry ForObject(const Point& p, ObjectId id) {
    return SkyEntry{MBR(p), id, false, p.Sum()};
  }
  static SkyEntry ForNode(const MBR& mbr, PageId pid) {
    return SkyEntry{mbr, pid, true, mbr.BestSum()};
  }

  const Point& point() const { return mbr.lo(); }
};

/// Max-heap order: larger key first (closer to the sky point); at equal
/// keys nodes expand before objects emit; final tie on ascending id.
/// This makes BBS deterministic and safe for duplicate points.
struct SkyEntryWorse {
  bool operator()(const SkyEntry& a, const SkyEntry& b) const {
    if (a.key != b.key) return a.key < b.key;
    if (a.is_node != b.is_node) return !a.is_node;
    return a.id > b.id;
  }
};

}  // namespace fairmatch

#endif  // FAIRMATCH_SKYLINE_SKY_ENTRY_H_

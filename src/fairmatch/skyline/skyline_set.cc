#include "fairmatch/skyline/skyline_set.h"

#include "fairmatch/common/check.h"

namespace fairmatch {

int SkylineSet::Add(const Point& p, ObjectId id) {
  FAIRMATCH_CHECK(by_id_.count(id) == 0);
  int slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<int>(slots_.size());
    slots_.emplace_back();
  }
  SkylineObject& member = slots_[slot];
  member.point = p;
  member.id = id;
  member.sum = p.Sum();
  member.live = true;
  member.plist.clear();
  order_.emplace(std::make_pair(-member.sum, slot), slot);
  by_id_.emplace(id, slot);
  return slot;
}

void SkylineSet::Remove(ObjectId id) {
  auto it = by_id_.find(id);
  FAIRMATCH_CHECK(it != by_id_.end());
  int slot = it->second;
  SkylineObject& member = slots_[slot];
  order_.erase(std::make_pair(-member.sum, slot));
  by_id_.erase(it);
  member.live = false;
  member.plist.clear();
  member.plist.shrink_to_fit();
  free_slots_.push_back(slot);
  if (last_pruner_ == slot) last_pruner_ = -1;
}

int SkylineSet::SlotOf(ObjectId id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? -1 : it->second;
}

int SkylineSet::FindDominator(const Point& corner, double corner_sum) {
  if (last_pruner_ >= 0 && slots_[last_pruner_].live &&
      slots_[last_pruner_].point.Dominates(corner)) {
    return last_pruner_;
  }
  // A strict dominator has a strictly larger coordinate sum, so only the
  // prefix of the descending-sum order needs scanning.
  for (const auto& [key, slot] : order_) {
    double sum = -key.first;
    if (sum <= corner_sum) break;
    if (slots_[slot].point.Dominates(corner)) {
      last_pruner_ = slot;
      return slot;
    }
  }
  return -1;
}

std::vector<int> SkylineSet::LiveSlots() const {
  std::vector<int> live;
  live.reserve(order_.size());
  for (const auto& [key, slot] : order_) live.push_back(slot);
  return live;
}

size_t SkylineSet::memory_bytes() const {
  size_t bytes = slots_.capacity() * sizeof(SkylineObject) +
                 order_.size() * 48 + by_id_.size() * 24;
  for (const SkylineObject& member : slots_) {
    bytes += member.plist.capacity() * sizeof(SkyEntry);
  }
  return bytes;
}

}  // namespace fairmatch

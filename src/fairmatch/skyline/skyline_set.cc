#include "fairmatch/skyline/skyline_set.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "fairmatch/common/check.h"
#include "fairmatch/common/simd.h"

namespace fairmatch {

namespace {

/// The original map key: ascending (-sum, slot) == the probe scan
/// order. Kept as an explicit pair so tie semantics (including signed
/// zeros) stay exactly std::map's.
inline std::pair<double, int> RankKey(double sum, int slot) {
  return std::make_pair(-sum, slot);
}

}  // namespace

void SkylineSet::GrowCoords(int needed) {
  if (needed <= coord_cap_) return;
  int new_cap = coord_cap_ == 0 ? 16 : coord_cap_;
  while (new_cap < needed) new_cap *= 2;
  std::vector<float> grown(static_cast<size_t>(dims_) * new_cap);
  if (live_count_ > 0) {
    for (int d = 0; d < dims_; ++d) {
      std::memcpy(grown.data() + static_cast<size_t>(d) * new_cap,
                  rank_coords_.data() + static_cast<size_t>(d) * coord_cap_,
                  sizeof(float) * live_count_);
    }
  }
  rank_coords_ = std::move(grown);
  coord_cap_ = new_cap;
}

int SkylineSet::RankOf(double sum, int slot) const {
  const auto key = RankKey(sum, slot);
  int lo = 0;
  int hi = live_count_;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (RankKey(rank_sum_[mid], rank_slot_[mid]) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  FAIRMATCH_DCHECK(lo < live_count_ && rank_slot_[lo] == slot);
  return lo;
}

int SkylineSet::Add(const Point& p, ObjectId id) {
  FAIRMATCH_CHECK(by_id_.count(id) == 0);
  int slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<int>(slots_.size());
    slots_.emplace_back();
  }
  SkylineObject& member = slots_[slot];
  member.point = p;
  member.id = id;
  member.sum = p.Sum();
  member.live = true;
  member.plist.clear();
  by_id_.emplace(id, slot);

  if (dims_ == 0) dims_ = p.dims();
  FAIRMATCH_DCHECK(p.dims() == dims_);
  GrowCoords(live_count_ + 1);

  // Rank insertion position: first rank whose key is not less than the
  // new member's (-sum, slot).
  const auto key = RankKey(member.sum, slot);
  int pos = 0;
  {
    int lo = 0;
    int hi = live_count_;
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (RankKey(rank_sum_[mid], rank_slot_[mid]) < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    pos = lo;
  }
  rank_sum_.insert(rank_sum_.begin() + pos, member.sum);
  rank_slot_.insert(rank_slot_.begin() + pos, slot);
  for (int d = 0; d < dims_; ++d) {
    float* row = &rank_coords_[static_cast<size_t>(d) * coord_cap_];
    std::memmove(row + pos + 1, row + pos,
                 sizeof(float) * (live_count_ - pos));
    row[pos] = p[d];
  }
  live_count_++;
  return slot;
}

void SkylineSet::Remove(ObjectId id) {
  auto it = by_id_.find(id);
  FAIRMATCH_CHECK(it != by_id_.end());
  int slot = it->second;
  SkylineObject& member = slots_[slot];

  const int pos = RankOf(member.sum, slot);
  rank_sum_.erase(rank_sum_.begin() + pos);
  rank_slot_.erase(rank_slot_.begin() + pos);
  for (int d = 0; d < dims_; ++d) {
    float* row = &rank_coords_[static_cast<size_t>(d) * coord_cap_];
    std::memmove(row + pos, row + pos + 1,
                 sizeof(float) * (live_count_ - pos - 1));
  }
  live_count_--;

  by_id_.erase(it);
  member.live = false;
  member.plist.clear();
  member.plist.shrink_to_fit();
  free_slots_.push_back(slot);
  if (last_pruner_ == slot) last_pruner_ = -1;
}

int SkylineSet::SlotOf(ObjectId id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? -1 : it->second;
}

int SkylineSet::ProbeOrdered(const Point& corner, double corner_sum) {
  if (last_pruner_ >= 0 && slots_[last_pruner_].live &&
      slots_[last_pruner_].point.Dominates(corner)) {
    return last_pruner_;
  }
  // A strict dominator has a strictly larger coordinate sum, so only
  // the prefix of the descending-sum rank order can prune. The prefix
  // limit is a binary search; the scan is the SoA block kernel.
  const int limit = static_cast<int>(
      std::lower_bound(rank_sum_.begin(), rank_sum_.begin() + live_count_,
                       corner_sum, [](double a, double b) { return a > b; }) -
      rank_sum_.begin());
  if (limit == 0) return -1;
  float c[kMaxDims];
  for (int d = 0; d < dims_; ++d) c[d] = corner[d];
  const int hit = simd::FirstDominator(rank_coords_.data(), coord_cap_,
                                       dims_, c, limit);
  if (hit < 0) return -1;
  last_pruner_ = rank_slot_[hit];
  return last_pruner_;
}

int SkylineSet::FindDominator(const Point& corner, double corner_sum) {
  return ProbeOrdered(corner, corner_sum);
}

void SkylineSet::FindDominatorBatch(const DominatorProbe* probes, int count,
                                    int* out) {
  for (int i = 0; i < count; ++i) {
    out[i] = ProbeOrdered(*probes[i].corner, probes[i].sum);
  }
}

int SkylineSet::FindDominatorPrefix(const DominatorProbe* probes, int count,
                                    int* out) {
  for (int i = 0; i < count; ++i) {
    out[i] = ProbeOrdered(*probes[i].corner, probes[i].sum);
    if (out[i] < 0) return i + 1;
  }
  return count;
}

std::vector<int> SkylineSet::LiveSlots() const {
  return std::vector<int>(rank_slot_.begin(),
                          rank_slot_.begin() + live_count_);
}

size_t SkylineSet::memory_bytes() const {
  size_t bytes = slots_.capacity() * sizeof(SkylineObject) +
                 rank_sum_.capacity() * sizeof(double) +
                 rank_slot_.capacity() * sizeof(int) +
                 rank_coords_.capacity() * sizeof(float) +
                 by_id_.size() * 24;
  for (const SkylineObject& member : slots_) {
    bytes += member.plist.capacity() * sizeof(SkyEntry);
  }
  return bytes;
}

}  // namespace fairmatch

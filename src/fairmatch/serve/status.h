// Typed request-level statuses for the serving layer (fairmatchd).
//
// The engine underneath is exception-free and CHECK-fails on contract
// violations — correct for a batch harness whose caller assembled every
// input, fatal for a long-lived service where one bad request must not
// take the process down. The server therefore validates requests up
// front and reports failures as a ServeStatus inside the Response; the
// engine's CHECKs are never reachable from client input.
#ifndef FAIRMATCH_SERVE_STATUS_H_
#define FAIRMATCH_SERVE_STATUS_H_

#include <string>
#include <utility>

namespace fairmatch::serve {

/// Request outcome classes, canonical-status style.
enum class ServeCode {
  kOk = 0,
  /// Unknown dataset or matcher name.
  kNotFound,
  /// The request contradicts itself or the matcher's contract (e.g. a
  /// non-positive timing knob).
  kInvalidArgument,
  /// The matcher's requirements are not satisfied by the resident
  /// dataset (e.g. a *-Packed variant against a dataset opened without
  /// a packed image).
  kFailedPrecondition,
  /// Admission control rejected the request: the bounded queue is full
  /// or the in-flight cap is reached. Retry later.
  kOverloaded,
  /// The server is draining/closed, or a dataset is shedding load
  /// after repeated data-loss failures; no new requests are accepted.
  kUnavailable,
  /// The request's deadline expired — while queued, or mid-run at an
  /// engine cancellation point.
  kDeadlineExceeded,
  /// Storage-level data loss (failed read, checksum mismatch, decode
  /// of corrupt bytes) survived every retry attempt.
  kDataLoss,
};

/// Status + human-readable detail. Default-constructed is OK.
struct ServeStatus {
  ServeCode code = ServeCode::kOk;
  std::string message;

  bool ok() const { return code == ServeCode::kOk; }

  static ServeStatus Ok() { return {}; }
  static ServeStatus NotFound(std::string message) {
    return {ServeCode::kNotFound, std::move(message)};
  }
  static ServeStatus InvalidArgument(std::string message) {
    return {ServeCode::kInvalidArgument, std::move(message)};
  }
  static ServeStatus FailedPrecondition(std::string message) {
    return {ServeCode::kFailedPrecondition, std::move(message)};
  }
  static ServeStatus Overloaded(std::string message) {
    return {ServeCode::kOverloaded, std::move(message)};
  }
  static ServeStatus Unavailable(std::string message) {
    return {ServeCode::kUnavailable, std::move(message)};
  }
  static ServeStatus DeadlineExceeded(std::string message) {
    return {ServeCode::kDeadlineExceeded, std::move(message)};
  }
  static ServeStatus DataLoss(std::string message) {
    return {ServeCode::kDataLoss, std::move(message)};
  }
};

/// Stable identifier for logs/tests ("OK", "NOT_FOUND", ...).
inline const char* ServeCodeName(ServeCode code) {
  switch (code) {
    case ServeCode::kOk:
      return "OK";
    case ServeCode::kNotFound:
      return "NOT_FOUND";
    case ServeCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ServeCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ServeCode::kOverloaded:
      return "OVERLOADED";
    case ServeCode::kUnavailable:
      return "UNAVAILABLE";
    case ServeCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case ServeCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

}  // namespace fairmatch::serve

#endif  // FAIRMATCH_SERVE_STATUS_H_

// fairmatchd: a long-lived, in-process matching service core.
//
// Where BatchRunner (engine/batch_runner.h) executes one caller-owned
// batch and returns, the Server is the inverse sharing model: warm,
// immutable index sets (serve/dataset_registry.h) stay resident while
// many concurrent clients submit Requests — {dataset, matcher,
// options} — and get Responses — {matching, RunStats, queue/latency
// timings, typed status} — back. No network is involved: this is the
// engine-side core the way DBImpl is a database without a wire
// protocol; a transport would sit on top.
//
// Execution model: `lanes` worker threads drain one bounded FIFO
// admission queue. Each request runs with its own ExecContext and
// whatever per-request structures its matcher needs (a packed-image
// view, a disk-resident function store on the lane's recycled
// DiskManager, a private tree for tree-mutating matchers); everything
// else — problem, object tree, packed image — is shared const-clean
// across lanes per the PR 4 concurrency contracts. The result contract
// follows from that isolation: a response is byte-identical (matching,
// io_accesses, pairs, loops) to a direct Matcher::Run() on the same
// inputs, at any lane count and under any interleaving
// (tests/serve_test.cc).
//
// Admission control: Submit() never blocks. A request is either
// accepted (future completes when a lane finishes it) or rejected
// immediately with a typed status — kOverloaded when the queue is full
// or the in-flight cap is reached, kUnavailable after Close() started
// or while a dataset is shedding load (see health below),
// kNotFound / kFailedPrecondition / kInvalidArgument for bad requests.
// Invalid input is never allowed to reach an engine CHECK: one bad
// request cannot take down the service.
//
// Deadlines: Request::deadline_ms bounds end-to-end latency from
// Submit(). It is enforced twice — at dequeue (a request that already
// overstayed its deadline in the queue is failed without running) and
// mid-run (the ExecContext deadline trips at the matcher's next
// cancellation point). Either way the response is kDeadlineExceeded.
//
// Fault recovery: when ServerOptions::fault_plan is active, every
// attempt of every request runs against a FaultInjector seeded from
// (plan seed, request id, attempt) on the lane's workspace disk, with
// per-page CRC verification on. Storage faults surface as typed
// engine statuses (common/status.h), never a crash. Transient failures
// (kUnavailable, kDataLoss) are retried up to max_attempts with a
// fixed backoff; each attempt is a fresh isolated run on a recycled
// workspace, so a successful retry is byte-identical to a fault-free
// run (tests/chaos_test.cc holds it to that). Because the schedule
// depends only on (request id, attempt), fault and retry counts are
// invariant under lane count and completion order.
//
// Health: after `health_threshold` consecutive requests against one
// dataset end in data loss, the server sheds further load on that
// dataset (Submit rejects with kUnavailable) until a success or
// ResetHealth() clears it — a persistently corrupt dataset degrades to
// fast typed rejections instead of burning lanes on doomed retries.
//
// Shutdown: Close() stops admitting, drains every accepted request,
// then joins the lanes. Destruction closes.
#ifndef FAIRMATCH_SERVE_SERVER_H_
#define FAIRMATCH_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fairmatch/assign/problem.h"
#include "fairmatch/engine/batch_runner.h"
#include "fairmatch/serve/dataset_registry.h"
#include "fairmatch/serve/status.h"
#include "fairmatch/storage/fault_injector.h"

namespace fairmatch {
struct MatcherInfo;
}

namespace fairmatch::serve {

/// Server construction knobs.
struct ServerOptions {
  /// Worker lanes draining the admission queue (clamped to >= 1).
  int lanes = 2;

  /// Admission bound: requests queued (accepted, not yet running).
  /// A Submit() that would exceed it is rejected with kOverloaded.
  size_t max_queue = 64;

  /// Cap on accepted-but-unfinished requests (queued + running).
  /// 0 = max_queue + lanes (the natural capacity).
  size_t max_inflight = 0;

  /// Execution attempts per request (clamped to >= 1). Attempts beyond
  /// the first fire only on transient failures (kUnavailable,
  /// kDataLoss); kDeadlineExceeded is terminal.
  int max_attempts = 1;

  /// Fixed sleep between attempts, milliseconds.
  double retry_backoff_ms = 0.0;

  /// Consecutive final data-loss failures against one dataset before
  /// the server sheds further load on it (0 = never shed).
  int health_threshold = 0;

  /// Deterministic storage-fault schedule applied to every attempt's
  /// lane-workspace disk (chaos testing / the fault_recovery bench).
  /// Inactive (all-zero rates) by default: no injector is attached and
  /// per-page CRC verification stays off.
  FaultInjectorOptions fault_plan;
};

/// One client request against a resident dataset.
struct Request {
  /// Name of a dataset opened in the server's DatasetRegistry.
  std::string dataset;

  /// Name of a registered matcher (engine/registry.h). Tree-mutating
  /// matchers (Chain) are served on a per-request private tree; the
  /// shared resident tree is never mutated.
  std::string matcher;

  /// Run the Section 7.6 disk-resident-F setting: a per-request
  /// DiskFunctionStore built on the lane's recycled disk (counted
  /// I/O). Matchers whose info requires it get one regardless.
  bool disk_resident_functions = false;

  /// Buffer fraction for per-request disk structures.
  double buffer_fraction = 0.02;

  /// End-to-end deadline from Submit(), milliseconds. 0 = none.
  /// Enforced at dequeue and at engine cancellation points; an expired
  /// request completes with kDeadlineExceeded.
  double deadline_ms = 0.0;
};

/// What the client gets back. On a non-OK status, matching/stats are
/// empty and only the timings are meaningful.
struct Response {
  ServeStatus status;
  Matching matching;
  RunStats stats;

  /// Milliseconds spent queued before a lane picked the request up.
  double queue_ms = 0.0;
  /// Milliseconds of lane execution (env assembly + Matcher::Run).
  double exec_ms = 0.0;
  /// End-to-end milliseconds from Submit() to completion.
  double total_ms = 0.0;

  /// Server-assigned id, increasing in admission order.
  uint64_t request_id = 0;

  /// Execution attempts made (0 when the request never ran: rejected
  /// at Submit, or expired while queued).
  int attempts = 0;

  /// Result-affecting storage faults injected across all attempts
  /// (deterministic for a given fault plan + request id).
  int64_t injected_faults = 0;
};

/// Handle to an in-flight (or already-failed) request. Cheap to copy;
/// all copies share the same response.
class ResponseFuture {
 public:
  ResponseFuture() = default;

  /// False for a default-constructed handle.
  bool valid() const { return state_ != nullptr; }

  /// True once the response is ready (never blocks).
  bool done() const;

  /// Blocks until the response is ready, then returns it. The
  /// reference stays valid as long as any copy of this future lives.
  const Response& Wait() const;

 private:
  friend class Server;
  struct State;
  explicit ResponseFuture(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// Monotonic admission/completion counters (snapshot).
struct ServerCounters {
  int64_t accepted = 0;
  int64_t rejected = 0;
  int64_t completed = 0;
  /// Re-run attempts after a transient failure (attempt 2 and up).
  int64_t retries = 0;
  /// Requests that completed with kDeadlineExceeded.
  int64_t deadline_exceeded = 0;
  /// Requests that completed with kDataLoss (after retries).
  int64_t data_loss = 0;
  /// Submits rejected because the dataset was shedding load.
  int64_t shed = 0;
};

/// The serving core. Thread-safe: any number of threads may Submit()
/// concurrently; Close() may race with submissions.
class Server {
 public:
  /// Serves datasets resident in `registry` (not owned; must outlive
  /// the server).
  explicit Server(DatasetRegistry* registry, ServerOptions options = {});

  /// Close()s, draining accepted requests.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  int lanes() const { return static_cast<int>(lanes_.size()); }
  DatasetRegistry* registry() const { return registry_; }

  /// Validates and enqueues `request`. Never blocks: returns either an
  /// accepted future or one already completed with the rejection
  /// status.
  ResponseFuture Submit(Request request);

  /// Submit + Wait, for synchronous callers.
  Response Execute(Request request);

  /// Stops admitting (new Submits get kUnavailable), waits for every
  /// accepted request to finish, joins the lanes. Idempotent.
  void Close();

  ServerCounters counters() const;

  /// Requests queued (accepted, not yet picked up) right now.
  size_t queue_depth() const;

  /// Clears `dataset`'s consecutive-data-loss count, re-admitting
  /// traffic after a shed (e.g. once the storage is repaired).
  void ResetHealth(const std::string& dataset);

 private:
  struct Pending;

  /// Admission check under mu_. Empty message = admit.
  ServeStatus AdmissionStatus() const;

  /// Static validation (names, matcher requirements) against the
  /// registry; fills `dataset` on success.
  ServeStatus Validate(const Request& request, DatasetHandle* dataset) const;

  void LaneLoop(LaneWorkspace* workspace);

  /// Executes one admitted request on a lane — the per-attempt loop
  /// (recycle workspace, seed injector, run, classify, maybe retry).
  /// Never CHECK-fails on request content: everything reachable from
  /// client input was validated at Submit().
  void Process(Pending* pending, LaneWorkspace* workspace);

  /// One isolated execution attempt; fills response matching/stats on
  /// success and returns the mapped request status.
  ServeStatus RunAttempt(Pending* pending, LaneWorkspace* workspace,
                         const MatcherInfo* info, int attempt,
                         Response* response);

  /// Records the final status of a run against `dataset` (consecutive
  /// data-loss tracking) and bumps the outcome counters.
  void RecordOutcome(const std::string& dataset, const ServeStatus& status);

  DatasetRegistry* registry_;
  ServerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::unique_ptr<Pending>> queue_;
  bool draining_ = false;
  size_t inflight_ = 0;
  uint64_t next_id_ = 1;
  ServerCounters counters_;
  /// Consecutive final kDataLoss outcomes per dataset name; reaching
  /// options_.health_threshold sheds that dataset's traffic.
  std::map<std::string, int> consecutive_data_loss_;

  std::vector<std::unique_ptr<LaneWorkspace>> workspaces_;
  std::vector<std::thread> lanes_;
  bool joined_ = false;
};

}  // namespace fairmatch::serve

#endif  // FAIRMATCH_SERVE_SERVER_H_

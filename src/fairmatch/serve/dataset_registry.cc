#include "fairmatch/serve/dataset_registry.h"

#include <cstdio>
#include <utility>

#include "fairmatch/common/check.h"
#include "fairmatch/common/timer.h"

namespace fairmatch::serve {

ResidentDataset::ResidentDataset(std::string name, AssignmentProblem problem,
                                 const DatasetOptions& options)
    : name_(std::move(name)),
      problem_(std::move(problem)),
      store_(problem_.dims),
      tree_(&store_) {
  Timer timer;
  BuildObjectTree(problem_, &tree_, options.fill_factor);
  if (options.build_packed && !problem_.functions.empty()) {
    PackedStoreOptions popts;
    popts.use_mmap = options.packed_mmap;
    popts.block_entries = options.packed_block_entries;
    packed_ =
        std::make_unique<PackedFunctionStore>(problem_.functions, popts);
  }
  build_ms_ = timer.ElapsedMs();
}

ResidentDataset::ResidentDataset(std::string name, AssignmentProblem problem,
                                 const DatasetOptions& options,
                                 std::unique_ptr<PackedFunctionStore> packed)
    : name_(std::move(name)),
      problem_(std::move(problem)),
      store_(problem_.dims),
      tree_(&store_),
      packed_(std::move(packed)) {
  Timer timer;
  BuildObjectTree(problem_, &tree_, options.fill_factor);
  build_ms_ = timer.ElapsedMs();
}

ResidentDataset::ResidentDataset(std::string name, AssignmentProblem problem,
                                 MemNodeStore* store, PageId root,
                                 int root_level, int64_t tree_size,
                                 std::unique_ptr<PackedFunctionStore> packed,
                                 std::vector<ObjectRecord> skyline,
                                 int64_t epoch)
    : name_(std::move(name)),
      problem_(std::move(problem)),
      store_(problem_.dims),
      // The attach constructor reads nothing, so initializing tree_
      // before Adopt() moves the pages in is safe.
      tree_(&store_, root, root_level, tree_size),
      packed_(std::move(packed)),
      skyline_(std::move(skyline)),
      epoch_(epoch) {
  store_.Adopt(store);
}

size_t ResidentDataset::memory_bytes() const {
  size_t bytes = store_.memory_bytes();
  if (packed_ != nullptr) bytes += packed_->footprint_bytes();
  return bytes;
}

DatasetHandle DatasetRegistry::Open(const std::string& name,
                                    const AssignmentProblem& problem,
                                    const DatasetOptions& options) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = datasets_.find(name);
    if (it != datasets_.end()) {
      ++warm_opens_;
      return it->second;
    }
  }
  // Build outside the lock: a cold open of a big dataset must not
  // stall warm opens and Finds on other names. If two threads race a
  // cold open of the same name, the first insert wins and the loser's
  // build is discarded (both get the winner's handle).
  auto dataset =
      std::make_shared<const ResidentDataset>(name, problem, options);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = datasets_.emplace(name, std::move(dataset));
  if (inserted) {
    ++cold_opens_;
  } else {
    ++warm_opens_;
  }
  return it->second;
}

ServeStatus DatasetRegistry::OpenOrError(const std::string& name,
                                         const AssignmentProblem& problem,
                                         const DatasetOptions& options,
                                         DatasetHandle* out) {
  if (options.packed_image_path.empty()) {
    DatasetHandle handle = Open(name, problem, options);
    if (out != nullptr) *out = std::move(handle);
    return ServeStatus::Ok();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = datasets_.find(name);
    if (it != datasets_.end()) {
      ++warm_opens_;
      if (out != nullptr) *out = it->second;
      return ServeStatus::Ok();
    }
  }
  // Attach (and fully verify) the image outside the lock, like Open()'s
  // cold build.
  std::string error;
  PackedOpenError code = PackedOpenError::kNone;
  std::unique_ptr<PackedFunctionStore> packed =
      PackedFunctionStore::Open(options.packed_image_path, &error, &code);
  if (packed == nullptr) {
    const std::string detail = "packed image '" + options.packed_image_path +
                               "': " + PackedOpenErrorName(code) + ": " +
                               error;
    return code == PackedOpenError::kIoError ? ServeStatus::NotFound(detail)
                                             : ServeStatus::DataLoss(detail);
  }
  if (packed->dims() != problem.dims ||
      packed->size() != static_cast<int>(problem.functions.size())) {
    return ServeStatus::FailedPrecondition(
        "packed image '" + options.packed_image_path + "' has " +
        std::to_string(packed->size()) + " functions x " +
        std::to_string(packed->dims()) + " dims, problem has " +
        std::to_string(problem.functions.size()) + " x " +
        std::to_string(problem.dims));
  }
  auto dataset = std::make_shared<const ResidentDataset>(name, problem,
                                                         options,
                                                         std::move(packed));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = datasets_.emplace(name, std::move(dataset));
  if (inserted) {
    ++cold_opens_;
  } else {
    ++warm_opens_;
  }
  if (out != nullptr) *out = it->second;
  return ServeStatus::Ok();
}

DatasetHandle DatasetRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : it->second;
}

DatasetHandle DatasetRegistry::Publish(DatasetHandle handle) {
  DatasetHandle replaced;
  const ServeStatus status = PublishOrError(std::move(handle), &replaced);
  if (!status.ok()) {
    std::fprintf(stderr, "DatasetRegistry::Publish: %s\n",
                 status.message.c_str());
  }
  FAIRMATCH_CHECK(status.ok() && "publish must advance the live epoch");
  return replaced;
}

ServeStatus DatasetRegistry::PublishOrError(DatasetHandle handle,
                                            DatasetHandle* replaced,
                                            ErrorSink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(handle->name());
  if (it == datasets_.end()) {
    datasets_.emplace(handle->name(), std::move(handle));
    if (replaced != nullptr) replaced->reset();
    return ServeStatus::Ok();
  }
  if (handle->epoch() <= it->second->epoch()) {
    const std::string detail =
        "non-monotonic publish of dataset '" + handle->name() + "': epoch " +
        std::to_string(handle->epoch()) + " does not advance live epoch " +
        std::to_string(it->second->epoch());
    if (sink != nullptr) sink->Report(ErrorCode::kFailedPrecondition, detail);
    return ServeStatus::FailedPrecondition(detail);
  }
  DatasetHandle previous = std::move(it->second);
  it->second = std::move(handle);
  ++republishes_;
  if (replaced != nullptr) *replaced = std::move(previous);
  return ServeStatus::Ok();
}

ServeStatus DatasetRegistry::PublishRecovered(DatasetHandle handle,
                                              DatasetHandle* replaced,
                                              ErrorSink* sink) {
  const ServeStatus status =
      PublishOrError(std::move(handle), replaced, sink);
  if (status.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++recoveries_;
  }
  return status;
}

int64_t DatasetRegistry::republishes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return republishes_;
}

int64_t DatasetRegistry::recoveries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recoveries_;
}

ServeStatus DatasetRegistry::Close(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return ServeStatus::NotFound("dataset '" + name + "' is not resident");
  }
  datasets_.erase(it);  // outstanding handles keep the dataset alive
  return ServeStatus::Ok();
}

std::vector<std::string> DatasetRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, dataset] : datasets_) names.push_back(name);
  return names;  // std::map keeps them sorted
}

int64_t DatasetRegistry::warm_opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return warm_opens_;
}

int64_t DatasetRegistry::cold_opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cold_opens_;
}

}  // namespace fairmatch::serve

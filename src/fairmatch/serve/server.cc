#include "fairmatch/serve/server.h"

#include <optional>
#include <utility>

#include "fairmatch/common/check.h"
#include "fairmatch/common/timer.h"
#include "fairmatch/engine/registry.h"
#include "fairmatch/topk/disk_function_lists.h"

namespace fairmatch::serve {

/// Shared completion state behind a ResponseFuture.
struct ResponseFuture::State {
  mutable std::mutex mu;
  mutable std::condition_variable cv;
  bool done = false;
  Response response;

  void Complete(Response&& r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      response = std::move(r);
      done = true;
    }
    cv.notify_all();
  }
};

bool ResponseFuture::done() const {
  FAIRMATCH_CHECK(state_ != nullptr);
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

const Response& ResponseFuture::Wait() const {
  FAIRMATCH_CHECK(state_ != nullptr);
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  return state_->response;
}

/// One admitted request queued for a lane. The dataset handle pins the
/// resident structures for the request's whole life, which is what
/// makes DatasetRegistry::Close safe under in-flight traffic.
struct Server::Pending {
  Request request;
  DatasetHandle dataset;
  std::shared_ptr<ResponseFuture::State> state;
  uint64_t id = 0;
  /// Started at admission; read once at pickup (queue_ms) and once at
  /// completion (total_ms).
  Timer since_submit;
};

Server::Server(DatasetRegistry* registry, ServerOptions options)
    : registry_(registry), options_(options) {
  FAIRMATCH_CHECK(registry_ != nullptr);
  if (options_.lanes < 1) options_.lanes = 1;
  if (options_.max_inflight == 0) {
    options_.max_inflight =
        options_.max_queue + static_cast<size_t>(options_.lanes);
  }
  // Touch the registry before spawning lanes so its lazy builtin
  // registration happens once, off the serving path.
  MatcherRegistry::Global();
  workspaces_.reserve(static_cast<size_t>(options_.lanes));
  lanes_.reserve(static_cast<size_t>(options_.lanes));
  for (int i = 0; i < options_.lanes; ++i) {
    workspaces_.push_back(std::make_unique<LaneWorkspace>());
    LaneWorkspace* workspace = workspaces_.back().get();
    lanes_.emplace_back([this, workspace] { LaneLoop(workspace); });
  }
}

Server::~Server() { Close(); }

ServeStatus Server::AdmissionStatus() const {
  if (draining_) {
    return ServeStatus::Unavailable("server is draining");
  }
  if (queue_.size() >= options_.max_queue) {
    return ServeStatus::Overloaded("admission queue is full (" +
                                   std::to_string(options_.max_queue) +
                                   " queued)");
  }
  if (inflight_ >= options_.max_inflight) {
    return ServeStatus::Overloaded("in-flight cap reached (" +
                                   std::to_string(options_.max_inflight) +
                                   " accepted)");
  }
  return ServeStatus::Ok();
}

ServeStatus Server::Validate(const Request& request,
                             DatasetHandle* dataset) const {
  const MatcherInfo* info = MatcherRegistry::Global().Find(request.matcher);
  if (info == nullptr) {
    return ServeStatus::NotFound("unknown matcher '" + request.matcher + "'");
  }
  if (request.buffer_fraction < 0.0 || request.buffer_fraction > 1.0) {
    return ServeStatus::InvalidArgument(
        "buffer_fraction must be in [0, 1], got " +
        std::to_string(request.buffer_fraction));
  }
  *dataset = registry_->Find(request.dataset);
  if (*dataset == nullptr) {
    return ServeStatus::NotFound("unknown dataset '" + request.dataset +
                                 "'");
  }
  if (info->needs_packed_functions && (*dataset)->packed() == nullptr) {
    return ServeStatus::FailedPrecondition(
        "matcher '" + request.matcher + "' needs a packed image, but "
        "dataset '" + request.dataset + "' was opened without one");
  }
  return ServeStatus::Ok();
}

ResponseFuture Server::Submit(Request request) {
  auto state = std::make_shared<ResponseFuture::State>();

  // Reject with a completed future: the caller never blocks to learn
  // that a request was not admitted.
  auto reject = [&state](ServeStatus status) {
    Response response;
    response.status = std::move(status);
    state->Complete(std::move(response));
    return ResponseFuture(state);
  };

  DatasetHandle dataset;
  ServeStatus status = Validate(request, &dataset);
  if (!status.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.rejected;
    return reject(std::move(status));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    status = AdmissionStatus();
    if (!status.ok()) {
      ++counters_.rejected;
      return reject(std::move(status));
    }
    auto pending = std::make_unique<Pending>();
    pending->request = std::move(request);
    pending->dataset = std::move(dataset);
    pending->state = state;
    pending->id = next_id_++;
    queue_.push_back(std::move(pending));
    ++inflight_;
    ++counters_.accepted;
  }
  work_cv_.notify_one();
  return ResponseFuture(state);
}

Response Server::Execute(Request request) {
  return Submit(std::move(request)).Wait();
}

void Server::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (joined_) return;
    draining_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& lane : lanes_) lane.join();
  std::lock_guard<std::mutex> lock(mu_);
  joined_ = true;
}

ServerCounters Server::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void Server::LaneLoop(LaneWorkspace* workspace) {
  for (;;) {
    std::unique_ptr<Pending> pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) return;  // draining with an empty queue
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    Process(pending.get(), workspace);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
      ++counters_.completed;
    }
  }
}

void Server::Process(Pending* pending, LaneWorkspace* workspace) {
  Response response;
  response.request_id = pending->id;
  response.queue_ms = pending->since_submit.ElapsedMs();

  const Request& request = pending->request;
  const ResidentDataset& dataset = *pending->dataset;
  // Re-resolved, not cached from Submit: re-registration (tests stub
  // variants) must not leave a dangling info pointer in the queue.
  const MatcherInfo* info = MatcherRegistry::Global().Find(request.matcher);

  Timer exec_timer;
  if (info == nullptr) {
    // The matcher disappeared between Submit and pickup (only possible
    // through test re-registration); typed error, not a CHECK.
    response.status = ServeStatus::NotFound("matcher '" + request.matcher +
                                            "' is no longer registered");
  } else {
    // Per-request execution state over the shared dataset, mirroring
    // engine/batch_runner.h's per-item isolation: private ExecContext,
    // private disk structures on the lane's recycled workspace,
    // private packed-image view, and — for tree-mutating matchers — a
    // private tree, so the resident one stays immutable.
    workspace->Recycle();
    ExecContext ctx;
    MatcherEnv env;
    env.problem = &dataset.problem();
    env.tree = dataset.tree();
    env.buffer_fraction = request.buffer_fraction;
    env.ctx = &ctx;

    std::optional<MemNodeStore> private_store;
    std::optional<RTree> private_tree;
    if (info->mutates_tree) {
      private_store.emplace(dataset.problem().dims);
      private_tree.emplace(&*private_store);
      BuildObjectTree(dataset.problem(), &*private_tree);
      env.tree = &*private_tree;
    }

    std::optional<DiskFunctionStore> fstore;
    if (info->needs_disk_functions || request.disk_resident_functions) {
      fstore.emplace(dataset.problem().functions, request.buffer_fraction,
                     &ctx.counters(), &workspace->disk());
      env.fn_store = &*fstore;
      ctx.set_function_backend("disk");
    }

    std::unique_ptr<PackedFunctionStore> packed_view;
    if (info->needs_packed_functions) {
      packed_view = PackedFunctionStore::NewSharedView(*dataset.packed());
      env.packed_fns = packed_view.get();
      ctx.set_function_backend(dataset.packed()->mapped() ? "packed-mmap"
                                                          : "packed");
    }

    std::unique_ptr<Matcher> matcher =
        MatcherRegistry::Global().Create(request.matcher, env);
    if (matcher == nullptr) {
      // Validate() checks every Create precondition, so this is
      // unreachable today; kept as a typed error so a future
      // requirement added to Create degrades to a rejected request
      // instead of a crashed service.
      response.status = ServeStatus::FailedPrecondition(
          "matcher '" + request.matcher +
          "' cannot run against dataset '" + request.dataset + "'");
    } else {
      AssignResult result = matcher->Run();
      response.matching = std::move(result.matching);
      response.stats = std::move(result.stats);
    }
  }

  response.exec_ms = exec_timer.ElapsedMs();
  response.total_ms = pending->since_submit.ElapsedMs();
  pending->state->Complete(std::move(response));
}

}  // namespace fairmatch::serve

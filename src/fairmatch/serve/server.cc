#include "fairmatch/serve/server.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "fairmatch/common/check.h"
#include "fairmatch/common/timer.h"
#include "fairmatch/engine/registry.h"
#include "fairmatch/topk/disk_function_lists.h"

namespace fairmatch::serve {

namespace {

/// Engine-status → request-status mapping. The engine's typed codes
/// (common/status.h) are a storage/runtime vocabulary; the serve codes
/// are the client-facing one.
ServeStatus MapEngineStatus(const Status& status) {
  switch (status.code) {
    case ErrorCode::kOk:
      return ServeStatus::Ok();
    case ErrorCode::kDataLoss:
      return ServeStatus::DataLoss(status.message);
    case ErrorCode::kDeadlineExceeded:
      return ServeStatus::DeadlineExceeded(status.message);
    case ErrorCode::kFailedPrecondition:
      return ServeStatus::FailedPrecondition(status.message);
    case ErrorCode::kUnavailable:
    case ErrorCode::kResourceExhausted:
      return ServeStatus::Unavailable(status.message);
  }
  return ServeStatus::Unavailable(status.message);
}

/// Transient = a fresh attempt can plausibly succeed (the fault model
/// is transfer-level). Deadline expiry is terminal: retrying cannot
/// recover time already spent.
bool IsTransient(ServeCode code) {
  return code == ServeCode::kUnavailable || code == ServeCode::kDataLoss;
}

}  // namespace

/// Shared completion state behind a ResponseFuture.
struct ResponseFuture::State {
  mutable std::mutex mu;
  mutable std::condition_variable cv;
  bool done = false;
  Response response;

  void Complete(Response&& r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      response = std::move(r);
      done = true;
    }
    cv.notify_all();
  }
};

bool ResponseFuture::done() const {
  FAIRMATCH_CHECK(state_ != nullptr);
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

const Response& ResponseFuture::Wait() const {
  FAIRMATCH_CHECK(state_ != nullptr);
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  return state_->response;
}

/// One admitted request queued for a lane. The dataset handle pins the
/// resident structures for the request's whole life, which is what
/// makes DatasetRegistry::Close safe under in-flight traffic.
struct Server::Pending {
  Request request;
  DatasetHandle dataset;
  std::shared_ptr<ResponseFuture::State> state;
  uint64_t id = 0;
  /// Started at admission; read once at pickup (queue_ms) and once at
  /// completion (total_ms).
  Timer since_submit;
};

Server::Server(DatasetRegistry* registry, ServerOptions options)
    : registry_(registry), options_(options) {
  FAIRMATCH_CHECK(registry_ != nullptr);
  if (options_.lanes < 1) options_.lanes = 1;
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  if (options_.max_inflight == 0) {
    options_.max_inflight =
        options_.max_queue + static_cast<size_t>(options_.lanes);
  }
  // Touch the registry before spawning lanes so its lazy builtin
  // registration happens once, off the serving path.
  MatcherRegistry::Global();
  workspaces_.reserve(static_cast<size_t>(options_.lanes));
  lanes_.reserve(static_cast<size_t>(options_.lanes));
  for (int i = 0; i < options_.lanes; ++i) {
    workspaces_.push_back(std::make_unique<LaneWorkspace>());
    LaneWorkspace* workspace = workspaces_.back().get();
    lanes_.emplace_back([this, workspace] { LaneLoop(workspace); });
  }
}

Server::~Server() { Close(); }

ServeStatus Server::AdmissionStatus() const {
  if (draining_) {
    return ServeStatus::Unavailable("server is draining");
  }
  if (queue_.size() >= options_.max_queue) {
    return ServeStatus::Overloaded("admission queue is full (" +
                                   std::to_string(options_.max_queue) +
                                   " queued)");
  }
  if (inflight_ >= options_.max_inflight) {
    return ServeStatus::Overloaded("in-flight cap reached (" +
                                   std::to_string(options_.max_inflight) +
                                   " accepted)");
  }
  return ServeStatus::Ok();
}

ServeStatus Server::Validate(const Request& request,
                             DatasetHandle* dataset) const {
  const MatcherInfo* info = MatcherRegistry::Global().Find(request.matcher);
  if (info == nullptr) {
    return ServeStatus::NotFound("unknown matcher '" + request.matcher + "'");
  }
  if (request.buffer_fraction < 0.0 || request.buffer_fraction > 1.0) {
    return ServeStatus::InvalidArgument(
        "buffer_fraction must be in [0, 1], got " +
        std::to_string(request.buffer_fraction));
  }
  *dataset = registry_->Find(request.dataset);
  if (*dataset == nullptr) {
    return ServeStatus::NotFound("unknown dataset '" + request.dataset +
                                 "'");
  }
  if (info->needs_packed_functions && (*dataset)->packed() == nullptr) {
    return ServeStatus::FailedPrecondition(
        "matcher '" + request.matcher + "' needs a packed image, but "
        "dataset '" + request.dataset + "' was opened without one");
  }
  return ServeStatus::Ok();
}

ResponseFuture Server::Submit(Request request) {
  auto state = std::make_shared<ResponseFuture::State>();

  // Reject with a completed future: the caller never blocks to learn
  // that a request was not admitted.
  auto reject = [&state](ServeStatus status) {
    Response response;
    response.status = std::move(status);
    state->Complete(std::move(response));
    return ResponseFuture(state);
  };

  DatasetHandle dataset;
  ServeStatus status = Validate(request, &dataset);
  if (!status.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.rejected;
    return reject(std::move(status));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    status = AdmissionStatus();
    if (!status.ok()) {
      ++counters_.rejected;
      return reject(std::move(status));
    }
    if (options_.health_threshold > 0) {
      auto it = consecutive_data_loss_.find(request.dataset);
      if (it != consecutive_data_loss_.end() &&
          it->second >= options_.health_threshold) {
        ++counters_.rejected;
        ++counters_.shed;
        return reject(ServeStatus::Unavailable(
            "dataset '" + request.dataset + "' is shedding load after " +
            std::to_string(it->second) +
            " consecutive data-loss failures"));
      }
    }
    auto pending = std::make_unique<Pending>();
    pending->request = std::move(request);
    pending->dataset = std::move(dataset);
    pending->state = state;
    pending->id = next_id_++;
    queue_.push_back(std::move(pending));
    ++inflight_;
    ++counters_.accepted;
  }
  work_cv_.notify_one();
  return ResponseFuture(state);
}

Response Server::Execute(Request request) {
  return Submit(std::move(request)).Wait();
}

void Server::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (joined_) return;
    draining_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& lane : lanes_) lane.join();
  std::lock_guard<std::mutex> lock(mu_);
  joined_ = true;
}

ServerCounters Server::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

size_t Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void Server::ResetHealth(const std::string& dataset) {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_data_loss_.erase(dataset);
}

void Server::RecordOutcome(const std::string& dataset,
                           const ServeStatus& status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (status.code == ServeCode::kDeadlineExceeded) {
    ++counters_.deadline_exceeded;
  } else if (status.code == ServeCode::kDataLoss) {
    ++counters_.data_loss;
  }
  if (options_.health_threshold <= 0) return;
  if (status.ok()) {
    consecutive_data_loss_.erase(dataset);
  } else if (status.code == ServeCode::kDataLoss) {
    ++consecutive_data_loss_[dataset];
  }
}

void Server::LaneLoop(LaneWorkspace* workspace) {
  for (;;) {
    std::unique_ptr<Pending> pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) return;  // draining with an empty queue
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    Process(pending.get(), workspace);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
      ++counters_.completed;
    }
  }
}

void Server::Process(Pending* pending, LaneWorkspace* workspace) {
  Response response;
  response.request_id = pending->id;
  response.queue_ms = pending->since_submit.ElapsedMs();

  const Request& request = pending->request;
  // Re-resolved, not cached from Submit: re-registration (tests stub
  // variants) must not leave a dangling info pointer in the queue.
  const MatcherInfo* info = MatcherRegistry::Global().Find(request.matcher);

  Timer exec_timer;
  if (info == nullptr) {
    // The matcher disappeared between Submit and pickup (only possible
    // through test re-registration); typed error, not a CHECK.
    response.status = ServeStatus::NotFound("matcher '" + request.matcher +
                                            "' is no longer registered");
  } else if (request.deadline_ms > 0.0 &&
             response.queue_ms >= request.deadline_ms) {
    // Expired while queued: fail fast instead of burning a lane on a
    // request whose client has already given up.
    response.status = ServeStatus::DeadlineExceeded(
        "deadline of " + std::to_string(request.deadline_ms) +
        " ms expired after " + std::to_string(response.queue_ms) +
        " ms in queue");
  } else {
    for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
      response.attempts = attempt;
      response.status = RunAttempt(pending, workspace, info, attempt,
                                   &response);
      if (response.status.ok() || !IsTransient(response.status.code) ||
          attempt == options_.max_attempts) {
        break;
      }
      // A retry re-runs the whole attempt from scratch on the recycled
      // workspace; if the deadline cannot survive the backoff, report
      // the expiry now instead of sleeping through it.
      if (request.deadline_ms > 0.0 &&
          pending->since_submit.ElapsedMs() + options_.retry_backoff_ms >=
              request.deadline_ms) {
        response.status = ServeStatus::DeadlineExceeded(
            "deadline of " + std::to_string(request.deadline_ms) +
            " ms leaves no room to retry after: " + response.status.message);
        break;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.retries;
      }
      if (options_.retry_backoff_ms > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            options_.retry_backoff_ms));
      }
    }
  }

  RecordOutcome(request.dataset, response.status);
  response.exec_ms = exec_timer.ElapsedMs();
  response.total_ms = pending->since_submit.ElapsedMs();
  pending->state->Complete(std::move(response));
}

ServeStatus Server::RunAttempt(Pending* pending, LaneWorkspace* workspace,
                               const MatcherInfo* info, int attempt,
                               Response* response) {
  const Request& request = pending->request;
  const ResidentDataset& dataset = *pending->dataset;

  // Per-attempt execution state over the shared dataset, mirroring
  // engine/batch_runner.h's per-item isolation: private ExecContext,
  // private disk structures on the lane's recycled workspace, private
  // packed-image view, and — for tree-mutating matchers — a private
  // tree, so the resident one stays immutable. Because every attempt
  // starts from a recycled (observably fresh) workspace, a successful
  // retry is byte-identical to a fault-free first attempt.
  workspace->Recycle();
  DiskManager& lane_disk = workspace->disk();
  ExecContext ctx;
  // The lane disk reports storage faults into this attempt's sink; the
  // matcher unwinds at its next cancellation point.
  lane_disk.set_error_sink(&ctx.errors());

  std::optional<FaultInjector> injector;
  if (options_.fault_plan.active()) {
    // One schedule per (request, attempt): independent of lane count,
    // lane placement and completion order.
    FaultInjectorOptions plan = options_.fault_plan;
    plan.seed = FaultInjector::DeriveSeed(plan.seed, pending->id,
                                          static_cast<uint64_t>(attempt));
    injector.emplace(plan);
    lane_disk.set_fault_injector(&*injector);
    // Checksums make injected corruption detectable (typed kDataLoss)
    // instead of silently consumed.
    lane_disk.set_verify_checksums(true);
  }

  if (request.deadline_ms > 0.0) {
    // Remaining budget may already be negative after earlier attempts;
    // the context then trips at the first cancellation point.
    ctx.set_deadline(std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             request.deadline_ms -
                             pending->since_submit.ElapsedMs())));
  }

  MatcherEnv env;
  env.problem = &dataset.problem();
  env.tree = dataset.tree();
  env.buffer_fraction = request.buffer_fraction;
  env.ctx = &ctx;

  std::optional<MemNodeStore> private_store;
  std::optional<RTree> private_tree;
  if (info->mutates_tree) {
    private_store.emplace(dataset.problem().dims);
    private_tree.emplace(&*private_store);
    BuildObjectTree(dataset.problem(), &*private_tree);
    env.tree = &*private_tree;
  }

  std::optional<DiskFunctionStore> fstore;
  if (info->needs_disk_functions || request.disk_resident_functions) {
    fstore.emplace(dataset.problem().functions, request.buffer_fraction,
                   &ctx.counters(), &lane_disk);
    env.fn_store = &*fstore;
    ctx.set_function_backend("disk");
  }

  std::unique_ptr<PackedFunctionStore> packed_view;
  if (info->needs_packed_functions) {
    packed_view = PackedFunctionStore::NewSharedView(*dataset.packed());
    env.packed_fns = packed_view.get();
    ctx.set_function_backend(dataset.packed()->mapped() ? "packed-mmap"
                                                        : "packed");
  }

  ServeStatus status;
  std::unique_ptr<Matcher> matcher =
      MatcherRegistry::Global().Create(request.matcher, env);
  if (matcher == nullptr) {
    // Validate() checks every Create precondition, so this is
    // unreachable today; kept as a typed error so a future
    // requirement added to Create degrades to a rejected request
    // instead of a crashed service.
    status = ServeStatus::FailedPrecondition(
        "matcher '" + request.matcher + "' cannot run against dataset '" +
        request.dataset + "'");
  } else {
    AssignResult result = matcher->Run();
    status = MapEngineStatus(result.status);
    if (status.ok()) {
      response->matching = std::move(result.matching);
      response->stats = std::move(result.stats);
    } else {
      // On a non-OK status matching/stats are empty by contract; the
      // partial result of an aborted run must not leak out.
      response->matching.clear();
      response->stats = RunStats{};
    }
  }

  if (injector.has_value()) {
    response->injected_faults += injector->counters().injected();
  }
  // Unwire before the stack-owned injector and sink die; the next
  // attempt (or item) re-wires against its own.
  lane_disk.set_fault_injector(nullptr);
  lane_disk.set_error_sink(nullptr);
  lane_disk.set_verify_checksums(false);
  return status;
}

}  // namespace fairmatch::serve

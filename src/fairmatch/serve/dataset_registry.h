// Resident datasets for the serving layer: build once, serve many.
//
// The paper's design premise is that the expensive structures — the
// object R-tree and the function index — are built once and then answer
// many preference queries. DatasetRegistry is that inverse sharing
// model (the DBImpl open/close lifecycle shape): Open() turns a Problem
// into a ResidentDataset (objects bulk-loaded into an R-tree over a
// MemNodeStore, functions packed into an immutable PackedFunctionStore
// image, in memory or mmap-attached), and every subsequent open of the
// same name shares the warm structures instead of rebuilding them.
//
// Concurrency contract (per the PR 4 audits in rtree/rtree.h,
// rtree/node_store.h and topk/packed_function_lists.h): everything a
// ResidentDataset exposes is immutable after Open() — MemNodeStore
// reads are const-clean, the tree is never mutated (the server refuses
// mutates_tree matchers a shared tree), and the packed image is probed
// through per-request shared views. Any number of server lanes may
// therefore read one dataset concurrently with no locking.
//
// Lifecycle: handles are refcounts. The registry map holds one
// reference; Close() drops it, but the dataset stays alive until the
// last outstanding handle (an in-flight request, a caller) releases
// it — closing a dataset under live traffic is safe by construction.
#ifndef FAIRMATCH_SERVE_DATASET_REGISTRY_H_
#define FAIRMATCH_SERVE_DATASET_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fairmatch/assign/problem.h"
#include "fairmatch/common/status.h"
#include "fairmatch/rtree/node_store.h"
#include "fairmatch/rtree/rtree.h"
#include "fairmatch/serve/status.h"
#include "fairmatch/topk/packed_function_lists.h"

namespace fairmatch::serve {

/// Build knobs for one resident dataset.
struct DatasetOptions {
  /// Build the packed function image (required to serve the *-Packed
  /// variants). Off saves the build for datasets that only serve the
  /// in-memory-list matchers.
  bool build_packed = true;

  /// Route the packed image through a file + read-only mapping instead
  /// of the in-memory buffer (PackedStoreOptions::use_mmap).
  bool packed_mmap = false;

  /// Entries per packed block (PackedStoreOptions::block_entries).
  int packed_block_entries = 128;

  /// When non-empty, attach the resident packed store from this
  /// pre-built image file (PackedFunctionStore::Open: full structural
  /// and checksum verification) instead of building one from the
  /// function set. Only honored by OpenOrError(), which is how attach
  /// failures come back typed; plain Open() ignores it.
  std::string packed_image_path;

  /// R-tree bulk-load fill factor.
  double fill_factor = 0.7;
};

/// One warm, immutable index set over one problem instance. Construct
/// through DatasetRegistry::Open; read-only thereafter.
class ResidentDataset {
 public:
  ResidentDataset(std::string name, AssignmentProblem problem,
                  const DatasetOptions& options);

  /// Adopts `packed` (may be null) instead of building an image;
  /// OpenOrError() uses this after verifying a packed_image_path.
  ResidentDataset(std::string name, AssignmentProblem problem,
                  const DatasetOptions& options,
                  std::unique_ptr<PackedFunctionStore> packed);

  /// Adopts pre-built structures wholesale — the incremental-update
  /// path (update/delta_builder.h). `store`'s pages are consumed
  /// (swapped in, no copy): they must already contain the tree described
  /// by `root`/`root_level`/`tree_size` over `problem`'s objects.
  /// `packed` (may be null, possibly a patch overlay) becomes the
  /// resident function index, `skyline` the maintained skyline of the
  /// live objects, and `epoch` the republish generation.
  ResidentDataset(std::string name, AssignmentProblem problem,
                  MemNodeStore* store, PageId root, int root_level,
                  int64_t tree_size,
                  std::unique_ptr<PackedFunctionStore> packed,
                  std::vector<ObjectRecord> skyline, int64_t epoch);

  ResidentDataset(const ResidentDataset&) = delete;
  ResidentDataset& operator=(const ResidentDataset&) = delete;

  const std::string& name() const { return name_; }
  const AssignmentProblem& problem() const { return problem_; }

  /// The shared object tree. Non-const because matcher environments
  /// take RTree* — the server only hands it to matchers whose info
  /// says they never mutate it.
  RTree* tree() const { return &tree_; }

  /// The resident packed image, or nullptr when the dataset was opened
  /// with build_packed = false. Never probe this store directly from a
  /// request lane — take a view (PackedFunctionStore::NewSharedView).
  const PackedFunctionStore* packed() const { return packed_.get(); }

  /// Wall time Open() spent building the structures (the cold-open
  /// cost; warm opens pay none of it).
  double build_ms() const { return build_ms_; }

  /// Resident footprint: tree pages plus the packed image.
  size_t memory_bytes() const;

  /// Republish generation: 1 for registry-built datasets, incremented
  /// by every DeltaBuilder::Apply epoch.
  int64_t epoch() const { return epoch_; }

  /// Maintained skyline of the live objects, ascending id — filled by
  /// the incremental-update path, empty for registry-built datasets
  /// (queries compute skylines on demand either way; this is the
  /// delta-maintained copy the update differential suite audits).
  const std::vector<ObjectRecord>& skyline() const { return skyline_; }

  /// The backing node store (page-level access for epoch cloning).
  const MemNodeStore& node_store() const { return store_; }

 private:
  std::string name_;
  AssignmentProblem problem_;
  mutable MemNodeStore store_;
  mutable RTree tree_;
  std::unique_ptr<PackedFunctionStore> packed_;
  std::vector<ObjectRecord> skyline_;
  double build_ms_ = 0.0;
  int64_t epoch_ = 1;
};

/// Shared ownership of a resident dataset. Copying shares; the dataset
/// is destroyed when the registry entry and every handle are gone.
using DatasetHandle = std::shared_ptr<const ResidentDataset>;

/// Name-keyed registry of resident datasets. All methods are
/// thread-safe (one mutex; builds happen outside hot paths).
class DatasetRegistry {
 public:
  DatasetRegistry() = default;

  DatasetRegistry(const DatasetRegistry&) = delete;
  DatasetRegistry& operator=(const DatasetRegistry&) = delete;

  /// Opens dataset `name`. Cold path: builds the resident structures
  /// from `problem` (copied in). Warm path: `name` is already resident,
  /// the existing structures are shared and `problem`/`options` are
  /// ignored. Returns the handle either way.
  DatasetHandle Open(const std::string& name, const AssignmentProblem& problem,
                     const DatasetOptions& options = {});

  /// Open() with typed failure reporting. The fallible build step is
  /// attaching a pre-built packed image (options.packed_image_path): an
  /// unreadable file comes back kNotFound, a malformed/corrupt one
  /// kDataLoss — both with the PackedOpenError class in the detail —
  /// and an image that does not match `problem`'s shape
  /// kFailedPrecondition. On success fills `out` (when non-null) and
  /// returns OK. Without a packed_image_path this is exactly Open().
  ServeStatus OpenOrError(const std::string& name,
                          const AssignmentProblem& problem,
                          const DatasetOptions& options,
                          DatasetHandle* out = nullptr);

  /// The resident dataset `name`, or nullptr. Shares (refcount++ for
  /// the caller) without ever building.
  DatasetHandle Find(const std::string& name) const;

  /// Atomically replaces (or installs) the resident dataset under
  /// `handle->name()` — the epoch-republish primitive, equivalent to
  /// Close() + re-Open() with no window in which the name is absent.
  /// In-flight requests holding the previous epoch finish on it (their
  /// handles keep it alive); every later Find()/Open() sees the new
  /// one. Returns the replaced handle, or nullptr if the name was not
  /// resident.
  ///
  /// Epochs must be monotonic: `handle->epoch()` must exceed the live
  /// epoch, or the swap would silently roll requests back to stale
  /// data (and a same-epoch republish would hide a stuck builder).
  /// This entry point CHECK-fails on a violation — a non-monotonic
  /// publish is a caller bug, not a runtime condition; use
  /// PublishOrError() where it must come back typed.
  DatasetHandle Publish(DatasetHandle handle);

  /// Publish() with the monotonicity violation reported as typed
  /// kFailedPrecondition instead of a CHECK: the status (and `sink`,
  /// when non-null) carries both epochs, the registry is untouched. On
  /// success `*replaced` (when non-null) receives what Publish() would
  /// have returned.
  ServeStatus PublishOrError(DatasetHandle handle,
                             DatasetHandle* replaced = nullptr,
                             ErrorSink* sink = nullptr);

  /// PublishOrError() for an epoch restored by crash recovery
  /// (recover/durable_builder.h) — same swap/install and the same
  /// monotonicity contract, counted separately in recoveries().
  ServeStatus PublishRecovered(DatasetHandle handle,
                               DatasetHandle* replaced = nullptr,
                               ErrorSink* sink = nullptr);

  /// Total Publish() calls that replaced an existing dataset.
  int64_t republishes() const;

  /// Total recovered epochs published (PublishRecovered).
  int64_t recoveries() const;

  /// Drops the registry's reference. Outstanding handles (in-flight
  /// requests) keep the dataset alive; a later Open() of the same name
  /// builds fresh structures. Returns NotFound if `name` is not
  /// resident.
  ServeStatus Close(const std::string& name);

  /// Names of the resident datasets, sorted.
  std::vector<std::string> Names() const;

  /// Total opens that found the dataset already resident.
  int64_t warm_opens() const;
  /// Total opens that built the dataset.
  int64_t cold_opens() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const ResidentDataset>> datasets_;
  int64_t warm_opens_ = 0;
  int64_t cold_opens_ = 0;
  int64_t republishes_ = 0;
  int64_t recoveries_ = 0;
};

}  // namespace fairmatch::serve

#endif  // FAIRMATCH_SERVE_DATASET_REGISTRY_H_

// Incremental index updates with epoch-based republish.
//
// The paper's structures — the object R-tree, the skylines, the packed
// function lists — are built once and then serve many queries. This
// module makes them *updatable* without the full rebuild: a
// DeltaBuilder applies a batch of object/function inserts and deletes
// to a ResidentDataset (serve/dataset_registry.h) by editing clones of
// the resident structures node-by-node, and produces a NEW immutable
// ResidentDataset — the next *epoch* — that the registry then publishes
// atomically (DatasetRegistry::Publish). In-flight requests finish on
// the epoch they opened; everything that starts later sees the new one.
//
// What "apply" means per structure:
//  * R-tree — the previous epoch's pages are cloned (MemNodeStore::
//    CopyFrom) and edited in place with Guttman insert / physical
//    delete + condensation (rtree/rtree.h), i.e. node-level edits with
//    overflow splits and underflow merges instead of an STR re-load.
//  * skyline — the previous epoch's skyline is re-seeded over the
//    updated tree and repaired incrementally: deletions replay
//    DeltaSky's constrained EDR traversal (DeltaSkyManager::Remove),
//    arrivals go through the traversal-free DeltaSkyManager::Insert.
//  * packed function image — survivors are renamed and dead ids
//    tombstoned through a patch overlay over the unchanged flat image
//    (PackedFunctionStore::NewPatched); arrivals append as sorted
//    patch blocks. When the overlay grows past
//    DeltaOptions::compaction_threshold of the live set, the image is
//    compacted: rebuilt flat (in memory or mmap-backed per the dataset
//    options) and the remap reset to identity.
//
// Id discipline: every matcher indexes problem.objects[oid] /
// problem.functions[fid] directly, so ids must stay equal to vector
// indices across updates. Deletion therefore renames by swap-with-last
// (processed in descending deleted id, so a mover is never itself a
// pending delete target); UpdateStats reports the old-id -> new-id maps
// so stream consumers (update/stream_matcher.h) can revise standing
// assignments.
//
// Atomicity: Apply() stages every change on throwaway clones and
// constructs the next epoch only after the last fallible step
// succeeded. Any failure — invalid batch, injected storage fault
// (DeltaOptions::injector), structural damage detected in a cloned
// page — returns a typed ServeStatus and leaves the builder on the old
// epoch, which was never touched. There is no partially-applied state
// to roll back, by construction.
#ifndef FAIRMATCH_UPDATE_DELTA_BUILDER_H_
#define FAIRMATCH_UPDATE_DELTA_BUILDER_H_

#include <cstdint>
#include <vector>

#include "fairmatch/assign/problem.h"
#include "fairmatch/serve/dataset_registry.h"
#include "fairmatch/serve/status.h"
#include "fairmatch/storage/fault_injector.h"

namespace fairmatch::update {

/// One batch of updates against the current epoch. Delete ids refer to
/// the CURRENT epoch's dense ids; the `id` fields of inserted objects
/// and functions are ignored (the builder assigns the next dense ids).
struct UpdateBatch {
  std::vector<ObjectItem> insert_objects;
  std::vector<ObjectId> delete_objects;
  FunctionSet insert_functions;
  std::vector<FunctionId> delete_functions;

  bool empty() const {
    return insert_objects.empty() && delete_objects.empty() &&
           insert_functions.empty() && delete_functions.empty();
  }
};

/// What one Apply() did, plus the id renames it caused.
struct UpdateStats {
  int64_t epoch = 0;

  int objects_inserted = 0;
  int objects_deleted = 0;
  int functions_inserted = 0;
  int functions_deleted = 0;

  /// Node-level R-tree edits (Insert/Delete calls, including the
  /// rename patch ops of swap-with-last moves).
  int64_t tree_ops = 0;

  /// Packed-image outcome: whether this epoch compacted to a fresh
  /// flat image, and the overlay size it serves otherwise.
  bool packed_compacted = false;
  int packed_patch_added = 0;
  int packed_patch_tombstones = 0;

  double apply_ms = 0.0;

  /// Old epoch id -> new epoch id, or -1 when deleted. Sized to the
  /// old epoch's object/function counts.
  std::vector<ObjectId> object_final;
  std::vector<FunctionId> function_final;
  /// New-epoch ids assigned to this batch's arrivals, in batch order.
  std::vector<ObjectId> inserted_object_ids;
  std::vector<FunctionId> inserted_function_ids;
};

/// Apply knobs.
struct DeltaOptions {
  /// Packed-image placement for epochs this builder produces
  /// (build_packed / packed_mmap / packed_block_entries; the
  /// packed_image_path attach knob is ignored).
  serve::DatasetOptions dataset;

  /// Compact the packed image once the overlay (patch entries +
  /// tombstones) exceeds this fraction of the live function count.
  double compaction_threshold = 0.5;

  /// When non-null, consulted per fallible step of every Apply(): one
  /// OnRead per cloned tree page (corruption lands on the clone; a
  /// structurally damaged page is detected and typed kDataLoss), one
  /// OnWrite per tree edit op, one OnMap before an mmap-backed
  /// compaction. Must outlive the builder. Failures surface as typed
  /// statuses and never touch the published epoch (the chaos-suite
  /// contract, tests/chaos_test.cc).
  FaultInjector* injector = nullptr;
};

/// Applies update batches to a resident dataset, producing a new
/// immutable epoch per batch. Single-threaded (one builder per
/// dataset); the produced handles are as concurrency-safe as any other
/// ResidentDataset.
class DeltaBuilder {
 public:
  /// `base` must be non-null. Epoch 1's skyline is computed here when
  /// the base dataset does not carry one (registry-built datasets).
  DeltaBuilder(serve::DatasetHandle base, DeltaOptions options = {});

  DeltaBuilder(const DeltaBuilder&) = delete;
  DeltaBuilder& operator=(const DeltaBuilder&) = delete;

  /// Applies `batch`, advancing current() to a new epoch on success.
  /// On failure returns kInvalidArgument (malformed batch: id out of
  /// range, duplicate delete, dimension mismatch, or a batch that
  /// would empty the object or function set), kUnavailable (injected
  /// read/write/map failure) or kDataLoss (cloned page structurally
  /// damaged) — and current() still names the old epoch, untouched.
  serve::ServeStatus Apply(const UpdateBatch& batch,
                           UpdateStats* stats = nullptr);

  /// The newest epoch. The caller publishes it
  /// (DatasetRegistry::Publish) when it should start serving.
  const serve::DatasetHandle& current() const { return current_; }

  int64_t epoch() const { return current_->epoch(); }

  /// The maintained skyline of current(), ascending id (same contents
  /// as current()->skyline()).
  const std::vector<ObjectRecord>& skyline() const { return skyline_; }

 private:
  DeltaOptions options_;
  serve::DatasetHandle current_;

  // Maintained skyline of current(), ascending id.
  std::vector<ObjectRecord> skyline_;

  // Packed-image chaining: the epoch whose (flat) image current
  // overlays, the flat store inside it, and base_of_live_[fid] = that
  // function's id in the flat image (-1 = arrival not in the image).
  // flat_ == nullptr forces a compaction on the next Apply.
  serve::DatasetHandle flat_owner_;
  const PackedFunctionStore* flat_ = nullptr;
  std::vector<int32_t> base_of_live_;
};

}  // namespace fairmatch::update

#endif  // FAIRMATCH_UPDATE_DELTA_BUILDER_H_

// Streaming assignment maintenance over epochs.
//
// A StreamMatcher holds a standing matching while the dataset evolves
// underneath it (update/delta_builder.h). After each epoch it revises
// the matching toward that epoch's full from-scratch matching — the
// unique canonical one every algorithm in this library produces — but
// only within a configurable re-assignment budget, modeling serving
// systems where each revision has a real cost (a reassigned user, a
// moved shard) and churn per epoch must be bounded.
//
// Revision model per epoch:
//  * forced drops — pairs whose function or object was deleted are
//    dropped unconditionally (they cannot be served) and do not count
//    against the budget; surviving pairs are renamed through the
//    epoch's id maps (scores are unchanged: renames move no points and
//    change no weights).
//  * budgeted revisions — the difference against the epoch's full
//    matching is applied as (drop, add) steps, most valuable adds
//    first, each step costing one unit of budget. An add that would
//    exceed a function's or object's capacity first drops a
//    lowest-score wrong pair occupying the slot (also budgeted).
//    Leftover budget then retires remaining wrong pairs, lowest score
//    first. What the budget cannot cover is deferred to later epochs.
//
// With an unlimited budget (the default) the revised matching is
// byte-identical (canonical order) to the epoch's full matching — the
// property the update differential suite pins; with a finite budget
// the per-epoch fairness trajectory (aggregate score, minimum pair
// score, deferred count) is reported in StreamStats.
#ifndef FAIRMATCH_UPDATE_STREAM_MATCHER_H_
#define FAIRMATCH_UPDATE_STREAM_MATCHER_H_

#include <cstdint>
#include <string>

#include "fairmatch/assign/problem.h"
#include "fairmatch/serve/dataset_registry.h"
#include "fairmatch/update/delta_builder.h"

namespace fairmatch::update {

/// Runs registered matcher `matcher` directly against a resident
/// dataset (no server queue): the environment is assembled exactly like
/// the serve path — the shared tree (a private rebuilt tree for
/// mutates_tree matchers), a disk-resident function store where the
/// variant needs one, a private shared view of the packed image where
/// it needs that. The *-Packed variants require dataset.packed() to be
/// non-null.
AssignResult RunOnDataset(const serve::ResidentDataset& dataset,
                          const std::string& matcher,
                          double buffer_fraction = 0.02);

/// Revision knobs.
struct StreamOptions {
  std::string matcher = "SB";
  double buffer_fraction = 0.02;
  /// Maximum budgeted revisions (adds + drops) per epoch, beyond the
  /// forced drops of deleted ids. -1 = unlimited: the matching
  /// converges exactly to each epoch's full matching.
  int reassign_budget = -1;
};

/// One epoch's revision outcome and fairness snapshot.
struct StreamStats {
  int64_t epoch = 0;
  int forced_drops = 0;
  int drops_applied = 0;
  int adds_applied = 0;
  /// Revisions wanted but not covered by the budget this epoch.
  int deferred = 0;
  size_t pairs = 0;
  /// Fairness over the stream: total and minimum pair score of the
  /// standing matching after revision (0 when empty).
  double aggregate_score = 0.0;
  double min_score = 0.0;
};

/// Maintains a standing matching across epochs under a re-assignment
/// budget. Single-threaded, like the DeltaBuilder feeding it.
class StreamMatcher {
 public:
  /// Computes the initial matching with a full run on `initial`.
  StreamMatcher(serve::DatasetHandle initial, StreamOptions options = {});

  StreamMatcher(const StreamMatcher&) = delete;
  StreamMatcher& operator=(const StreamMatcher&) = delete;

  /// Revises the standing matching for `epoch`, produced by a
  /// DeltaBuilder::Apply whose UpdateStats is `update` (the id maps
  /// drive the forced drops and renames).
  StreamStats OnEpoch(const serve::DatasetHandle& epoch,
                      const UpdateStats& update);

  /// The standing matching, canonical (fid, oid) order.
  const Matching& matching() const { return matching_; }

 private:
  StreamOptions options_;
  Matching matching_;
  int64_t epoch_ = 0;
};

}  // namespace fairmatch::update

#endif  // FAIRMATCH_UPDATE_STREAM_MATCHER_H_

#include "fairmatch/update/delta_builder.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <utility>

#include "fairmatch/common/check.h"
#include "fairmatch/common/timer.h"
#include "fairmatch/rtree/node.h"
#include "fairmatch/skyline/delta_sky.h"

namespace fairmatch::update {

namespace {

/// Extracts the skyline as an id-sorted record list (the canonical form
/// stored on a ResidentDataset and compared by the differential suite).
std::vector<ObjectRecord> SortedSkyline(const SkylineSet& sky) {
  std::vector<ObjectRecord> out;
  out.reserve(sky.size());
  sky.ForEach([&out](int, const SkylineObject& m) {
    out.push_back(ObjectRecord{m.point, m.id});
  });
  std::sort(out.begin(), out.end(),
            [](const ObjectRecord& a, const ObjectRecord& b) {
              return a.id < b.id;
            });
  return out;
}

/// Validates a delete-id list: in range, no duplicates. Returns the ids
/// sorted DESCENDING — the order both swap-with-last phases process, so
/// a mover (always the current last slot) is never itself a pending
/// delete target.
serve::ServeStatus SortedDeletes(const std::vector<int32_t>& ids, int limit,
                                 const char* what,
                                 std::vector<int32_t>* out) {
  *out = ids;
  std::sort(out->begin(), out->end(), std::greater<int32_t>());
  for (size_t i = 0; i < out->size(); ++i) {
    if ((*out)[i] < 0 || (*out)[i] >= limit) {
      return serve::ServeStatus::InvalidArgument(
          std::string(what) + " id " + std::to_string((*out)[i]) +
          " out of range [0, " + std::to_string(limit) + ")");
    }
    if (i > 0 && (*out)[i] == (*out)[i - 1]) {
      return serve::ServeStatus::InvalidArgument(
          "duplicate " + std::string(what) + " id " +
          std::to_string((*out)[i]));
    }
  }
  return serve::ServeStatus::Ok();
}

}  // namespace

DeltaBuilder::DeltaBuilder(serve::DatasetHandle base, DeltaOptions options)
    : options_(std::move(options)), current_(std::move(base)) {
  FAIRMATCH_CHECK(current_ != nullptr);
  if (!current_->problem().objects.empty()) {
    if (!current_->skyline().empty()) {
      skyline_ = current_->skyline();
    } else {
      // Registry-built base: compute the initial skyline once, here
      // (read-only BBS over the shared tree), so every later epoch can
      // maintain it incrementally.
      DeltaSkyManager sky(current_->tree());
      sky.ComputeInitial();
      skyline_ = SortedSkyline(sky.skyline());
    }
  }
  const PackedFunctionStore* packed = current_->packed();
  if (packed != nullptr && !packed->patched()) {
    flat_owner_ = current_;
    flat_ = packed;
    base_of_live_.resize(current_->problem().functions.size());
    std::iota(base_of_live_.begin(), base_of_live_.end(), 0);
  } else {
    // No flat image to overlay (none built, or the base handle carries
    // an overlay whose remap this builder did not produce): the first
    // Apply() compacts.
    base_of_live_.assign(current_->problem().functions.size(), -1);
  }
}

serve::ServeStatus DeltaBuilder::Apply(const UpdateBatch& batch,
                                       UpdateStats* stats_out) {
  Timer timer;
  const AssignmentProblem& base_problem = current_->problem();
  const int dims = base_problem.dims;
  const int old_objects = static_cast<int>(base_problem.objects.size());
  const int old_functions = static_cast<int>(base_problem.functions.size());

  // ---- validate (every failure leaves current() untouched) ----------
  std::vector<ObjectId> del_objects;
  serve::ServeStatus status = SortedDeletes(batch.delete_objects, old_objects,
                                            "delete_objects", &del_objects);
  if (!status.ok()) return status;
  std::vector<FunctionId> del_functions;
  status = SortedDeletes(batch.delete_functions, old_functions,
                         "delete_functions", &del_functions);
  if (!status.ok()) return status;
  for (const ObjectItem& o : batch.insert_objects) {
    if (o.point.dims() != dims) {
      return serve::ServeStatus::InvalidArgument(
          "insert_objects point has " + std::to_string(o.point.dims()) +
          " dims, dataset has " + std::to_string(dims));
    }
    if (o.capacity < 1) {
      return serve::ServeStatus::InvalidArgument(
          "insert_objects capacity must be >= 1, got " +
          std::to_string(o.capacity));
    }
  }
  for (const PrefFunction& f : batch.insert_functions) {
    if (f.dims != dims) {
      return serve::ServeStatus::InvalidArgument(
          "insert_functions entry has " + std::to_string(f.dims) +
          " dims, dataset has " + std::to_string(dims));
    }
    if (f.capacity < 1) {
      return serve::ServeStatus::InvalidArgument(
          "insert_functions capacity must be >= 1, got " +
          std::to_string(f.capacity));
    }
  }
  if (old_functions - static_cast<int>(del_functions.size()) +
          static_cast<int>(batch.insert_functions.size()) <=
      0) {
    return serve::ServeStatus::InvalidArgument(
        "batch would empty the function set");
  }
  if (old_objects - static_cast<int>(del_objects.size()) +
          static_cast<int>(batch.insert_objects.size()) <=
      0) {
    return serve::ServeStatus::InvalidArgument(
        "batch would empty the object set");
  }

  // ---- function phase (pure vectors; ids stay dense by
  // swap-with-last, processed in descending deleted id) ---------------
  FunctionSet fns = base_problem.functions;
  std::vector<int32_t> base_of = base_of_live_;
  std::vector<int32_t> fowner(old_functions);  // slot -> original id
  std::iota(fowner.begin(), fowner.end(), 0);
  for (FunctionId k : del_functions) {
    const int last = static_cast<int>(fns.size()) - 1;
    if (k != last) {
      fns[k] = fns[last];
      fns[k].id = k;
      fowner[k] = fowner[last];
      base_of[k] = base_of[last];
    }
    fns.pop_back();
    fowner.pop_back();
    base_of.pop_back();
  }
  std::vector<FunctionId> inserted_fids;
  inserted_fids.reserve(batch.insert_functions.size());
  for (const PrefFunction& f : batch.insert_functions) {
    PrefFunction nf = f;
    nf.id = static_cast<FunctionId>(fns.size());
    inserted_fids.push_back(nf.id);
    fns.push_back(nf);
    fowner.push_back(-1);
    base_of.push_back(-1);
  }
  std::vector<FunctionId> function_final(old_functions, -1);
  for (int slot = 0; slot < static_cast<int>(fns.size()); ++slot) {
    if (fowner[slot] >= 0) function_final[fowner[slot]] = slot;
  }

  // ---- clone the tree store ------------------------------------------
  // All node edits land on a private page-level copy; the published
  // epoch's pages are never written. The injector's read schedule runs
  // over the cloned pages (corruption corrupts the clone), and a
  // structurally damaged page is detected here, typed, before any edit.
  FaultInjector* injector = options_.injector;
  MemNodeStore work_store(dims);
  work_store.CopyFrom(current_->node_store());
  if (injector != nullptr) {
    const int64_t pages = work_store.num_pages();
    for (PageId pid = 0; pid < pages; ++pid) {
      if (!work_store.has_page(pid)) continue;
      int spike_us = 0;
      Status s = injector->OnRead(pid, work_store.raw_page(pid), &spike_us);
      if (spike_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(spike_us));
      }
      if (!s.ok()) {
        return serve::ServeStatus::Unavailable("epoch clone: " + s.message);
      }
      if (!NodeView(work_store.raw_page(pid), dims, false).IsWellFormed()) {
        return serve::ServeStatus::DataLoss(
            "epoch clone: page " + std::to_string(pid) +
            " structurally damaged");
      }
    }
  }
  RTree tree(&work_store, current_->tree()->root(),
             current_->tree()->root_level(), current_->tree()->size());

  int64_t tree_ops = 0;
  auto tree_op = [&](const std::function<void()>& op) -> serve::ServeStatus {
    if (injector != nullptr) {
      int spike_us = 0;
      Status s =
          injector->OnWrite(static_cast<PageId>(tree_ops), &spike_us);
      if (spike_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(spike_us));
      }
      if (!s.ok()) {
        return serve::ServeStatus::Unavailable(
            "tree edit " + std::to_string(tree_ops) + ": " + s.message);
      }
    }
    ++tree_ops;
    op();
    return serve::ServeStatus::Ok();
  };

  // ---- object phase ---------------------------------------------------
  // Swap-with-last, descending deleted id. The target slot always still
  // holds its original occupant; the mover comes from the tail and may
  // itself move again later. Each swap is three node-level tree ops:
  // delete target, delete mover under its old id, reinsert under the
  // target id.
  std::vector<ObjectItem> objects = base_problem.objects;
  std::vector<int32_t> oowner(old_objects);  // slot -> original id
  std::iota(oowner.begin(), oowner.end(), 0);
  for (ObjectId k : del_objects) {
    const int last = static_cast<int>(objects.size()) - 1;
    const Point pk = objects[k].point;
    status = tree_op([&tree, &pk, k] { FAIRMATCH_CHECK(tree.Delete(pk, k)); });
    if (!status.ok()) return status;
    if (k != last) {
      const Point pl = objects[last].point;
      status = tree_op(
          [&tree, &pl, last] { FAIRMATCH_CHECK(tree.Delete(pl, last)); });
      if (!status.ok()) return status;
      status = tree_op([&tree, &pl, k] { tree.Insert(pl, k); });
      if (!status.ok()) return status;
      objects[k] = objects[last];
      objects[k].id = k;
      oowner[k] = oowner[last];
    }
    objects.pop_back();
    oowner.pop_back();
  }
  std::vector<ObjectId> inserted_oids;
  inserted_oids.reserve(batch.insert_objects.size());
  for (const ObjectItem& o : batch.insert_objects) {
    ObjectItem no = o;
    no.id = static_cast<ObjectId>(objects.size());
    status = tree_op([&tree, &no] { tree.Insert(no.point, no.id); });
    if (!status.ok()) return status;
    inserted_oids.push_back(no.id);
    objects.push_back(no);
    oowner.push_back(-1);
  }
  std::vector<ObjectId> object_final(old_objects, -1);
  for (int slot = 0; slot < static_cast<int>(objects.size()); ++slot) {
    if (oowner[slot] >= 0) object_final[oowner[slot]] = slot;
  }

  // ---- skyline phase --------------------------------------------------
  // Re-seed the previous skyline (a valid mutually non-dominated set —
  // renames change no point) over the now-final tree, then repair it:
  // deleted members replay DeltaSky's constrained EDR traversal under
  // collision-free negative temp ids, arrivals take the traversal-free
  // insert. Deleted NON-members cannot change the skyline and need no
  // action. Convergence: dominance is transitive and every batch op is
  // replayed, so the repaired set equals the skyline of the live set.
  DeltaSkyManager sky(&tree);
  for (const ObjectRecord& m : skyline_) {
    const ObjectId nid = object_final[m.id];
    sky.Seed(m.point, nid >= 0 ? nid : -m.id - 1);
  }
  for (const ObjectRecord& m : skyline_) {  // ascending old id
    if (object_final[m.id] < 0) sky.Remove(-m.id - 1);
  }
  for (ObjectId nid : inserted_oids) {
    sky.Insert(objects[nid].point, nid);
  }
  std::vector<ObjectRecord> new_skyline = SortedSkyline(sky.skyline());

  // ---- packed phase ---------------------------------------------------
  std::unique_ptr<PackedFunctionStore> packed;
  const PackedFunctionStore* new_flat = nullptr;
  bool compacted = false;
  int patch_added = 0;
  int patch_tombstones = 0;
  const int live_count = static_cast<int>(fns.size());
  if (options_.dataset.build_packed) {
    int arrivals = 0;
    for (int32_t b : base_of) {
      if (b < 0) ++arrivals;
    }
    const int tombstones =
        flat_ != nullptr ? flat_->size() - (live_count - arrivals) : 0;
    const bool compact =
        flat_ == nullptr ||
        static_cast<double>(arrivals + tombstones) >
            options_.compaction_threshold * static_cast<double>(live_count);
    if (compact) {
      PackedStoreOptions popts;
      popts.block_entries = options_.dataset.packed_block_entries;
      popts.use_mmap = options_.dataset.packed_mmap;
      if (popts.use_mmap && injector != nullptr) {
        Status s = injector->OnMap(
            "epoch-" + std::to_string(current_->epoch() + 1) + "-packed");
        if (!s.ok()) {
          return serve::ServeStatus::Unavailable("packed compaction map: " +
                                                 s.message);
        }
      }
      packed = std::make_unique<PackedFunctionStore>(fns, popts);
      new_flat = packed.get();
      compacted = true;
    } else {
      std::vector<int32_t> remap(flat_->size(), -1);
      for (int f = 0; f < live_count; ++f) {
        if (base_of[f] >= 0) remap[base_of[f]] = f;
      }
      packed = PackedFunctionStore::NewPatched(
          *flat_, std::static_pointer_cast<const void>(flat_owner_), fns,
          remap);
      patch_added = packed->patch_added();
      patch_tombstones = packed->patch_tombstones();
    }
  }

  // ---- construct the epoch and commit ---------------------------------
  // Every fallible step is behind us: from here on the new epoch exists
  // in full or Apply() already returned. The adopt constructor swaps the
  // edited pages in (no second copy), so `tree`/`work_store` must not be
  // touched afterwards.
  const PageId root = tree.root();
  const int root_level = tree.root_level();
  const int64_t tree_size = tree.size();
  AssignmentProblem new_problem;
  new_problem.dims = dims;
  new_problem.functions = std::move(fns);
  new_problem.objects = std::move(objects);
  const int64_t new_epoch = current_->epoch() + 1;
  auto handle = std::make_shared<const serve::ResidentDataset>(
      current_->name(), std::move(new_problem), &work_store, root, root_level,
      tree_size, std::move(packed), new_skyline, new_epoch);

  if (options_.dataset.build_packed) {
    if (compacted) {
      flat_owner_ = handle;
      flat_ = new_flat;
      base_of.resize(live_count);
      std::iota(base_of.begin(), base_of.end(), 0);
    }
  } else {
    flat_owner_.reset();
    flat_ = nullptr;
  }
  base_of_live_ = std::move(base_of);
  skyline_ = std::move(new_skyline);
  current_ = std::move(handle);

  if (stats_out != nullptr) {
    stats_out->epoch = new_epoch;
    stats_out->objects_inserted = static_cast<int>(inserted_oids.size());
    stats_out->objects_deleted = static_cast<int>(del_objects.size());
    stats_out->functions_inserted = static_cast<int>(inserted_fids.size());
    stats_out->functions_deleted = static_cast<int>(del_functions.size());
    stats_out->tree_ops = tree_ops;
    stats_out->packed_compacted = compacted;
    stats_out->packed_patch_added = patch_added;
    stats_out->packed_patch_tombstones = patch_tombstones;
    stats_out->apply_ms = timer.ElapsedMs();
    stats_out->object_final = std::move(object_final);
    stats_out->function_final = std::move(function_final);
    stats_out->inserted_object_ids = std::move(inserted_oids);
    stats_out->inserted_function_ids = std::move(inserted_fids);
  }
  return serve::ServeStatus::Ok();
}

}  // namespace fairmatch::update

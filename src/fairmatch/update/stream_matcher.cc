#include "fairmatch/update/stream_matcher.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "fairmatch/common/check.h"
#include "fairmatch/engine/registry.h"
#include "fairmatch/rtree/node_store.h"
#include "fairmatch/rtree/rtree.h"
#include "fairmatch/topk/disk_function_lists.h"
#include "fairmatch/topk/packed_function_lists.h"

namespace fairmatch::update {

AssignResult RunOnDataset(const serve::ResidentDataset& dataset,
                          const std::string& matcher,
                          double buffer_fraction) {
  const MatcherInfo* info = MatcherRegistry::Global().Find(matcher);
  FAIRMATCH_CHECK(info != nullptr && "unknown matcher");
  MatcherEnv env;
  env.problem = &dataset.problem();
  env.tree = dataset.tree();
  env.buffer_fraction = buffer_fraction;

  std::optional<MemNodeStore> private_store;
  std::optional<RTree> private_tree;
  if (info->mutates_tree) {
    private_store.emplace(dataset.problem().dims);
    private_tree.emplace(&*private_store);
    BuildObjectTree(dataset.problem(), &*private_tree);
    env.tree = &*private_tree;
  }
  std::unique_ptr<DiskFunctionStore> fstore;
  if (info->needs_disk_functions) {
    fstore = std::make_unique<DiskFunctionStore>(dataset.problem().functions,
                                                 buffer_fraction);
    env.fn_store = fstore.get();
  }
  std::unique_ptr<PackedFunctionStore> packed_view;
  if (info->needs_packed_functions) {
    FAIRMATCH_CHECK(dataset.packed() != nullptr &&
                    "matcher needs a packed image");
    packed_view = PackedFunctionStore::NewSharedView(*dataset.packed());
    env.packed_fns = packed_view.get();
  }
  std::unique_ptr<Matcher> m = MatcherRegistry::Global().Create(matcher, env);
  FAIRMATCH_CHECK(m != nullptr);
  return m->Run();
}

namespace {

/// Canonical pair value order: most valuable first.
bool MoreValuable(const MatchPair& a, const MatchPair& b) {
  return PairBefore(a.score, a.fid, a.oid, b.score, b.fid, b.oid);
}

}  // namespace

StreamMatcher::StreamMatcher(serve::DatasetHandle initial,
                             StreamOptions options)
    : options_(std::move(options)) {
  FAIRMATCH_CHECK(initial != nullptr);
  epoch_ = initial->epoch();
  AssignResult full =
      RunOnDataset(*initial, options_.matcher, options_.buffer_fraction);
  matching_ = std::move(full.matching);
  CanonicalizeMatching(&matching_);
}

StreamStats StreamMatcher::OnEpoch(const serve::DatasetHandle& epoch,
                                   const UpdateStats& update) {
  StreamStats stats;
  stats.epoch = epoch->epoch();
  epoch_ = epoch->epoch();

  // Forced drops + renames: a pair with a deleted endpoint cannot be
  // served and is dropped for free; surviving pairs are renamed through
  // the epoch's id maps, scores unchanged.
  Matching cur;
  cur.reserve(matching_.size());
  for (const MatchPair& pair : matching_) {
    const bool fid_known =
        pair.fid >= 0 &&
        pair.fid < static_cast<FunctionId>(update.function_final.size());
    const bool oid_known =
        pair.oid >= 0 &&
        pair.oid < static_cast<ObjectId>(update.object_final.size());
    const FunctionId nf = fid_known ? update.function_final[pair.fid] : -1;
    const ObjectId no = oid_known ? update.object_final[pair.oid] : -1;
    if (nf < 0 || no < 0) {
      ++stats.forced_drops;
      continue;
    }
    cur.push_back(MatchPair{nf, no, pair.score});
  }

  // The target: this epoch's full from-scratch matching.
  Matching target =
      RunOnDataset(*epoch, options_.matcher, options_.buffer_fraction)
          .matching;

  // Diff as (fid, oid) sets.
  std::set<std::pair<FunctionId, ObjectId>> target_keys;
  for (const MatchPair& pair : target) {
    target_keys.emplace(pair.fid, pair.oid);
  }
  std::set<std::pair<FunctionId, ObjectId>> cur_keys;
  for (const MatchPair& pair : cur) {
    cur_keys.emplace(pair.fid, pair.oid);
  }
  std::vector<MatchPair> adds;
  for (const MatchPair& pair : target) {
    if (cur_keys.count({pair.fid, pair.oid}) == 0) adds.push_back(pair);
  }
  std::sort(adds.begin(), adds.end(), MoreValuable);

  const AssignmentProblem& problem = epoch->problem();
  std::vector<int> fn_load(problem.functions.size(), 0);
  std::vector<int> obj_load(problem.objects.size(), 0);
  std::vector<bool> dropped(cur.size(), false);
  std::vector<bool> wrong(cur.size(), false);
  for (size_t i = 0; i < cur.size(); ++i) {
    ++fn_load[cur[i].fid];
    ++obj_load[cur[i].oid];
    wrong[i] = target_keys.count({cur[i].fid, cur[i].oid}) == 0;
  }

  int64_t remaining = options_.reassign_budget < 0
                          ? std::numeric_limits<int64_t>::max()
                          : options_.reassign_budget;

  // The least valuable live wrong pair on function `f` / object `o`
  // (the deterministic eviction choice), or -1.
  auto worst_wrong = [&](FunctionId f, ObjectId o) {
    int pick = -1;
    for (size_t i = 0; i < cur.size(); ++i) {
      if (dropped[i] || !wrong[i]) continue;
      if (f >= 0 && cur[i].fid != f) continue;
      if (o >= 0 && cur[i].oid != o) continue;
      if (pick < 0 || MoreValuable(cur[pick], cur[i])) {
        pick = static_cast<int>(i);
      }
    }
    return pick;
  };
  auto drop_index = [&](int i) {
    dropped[i] = true;
    --fn_load[cur[i].fid];
    --obj_load[cur[i].oid];
    ++stats.drops_applied;
  };

  // Most valuable adds first; each add evicts the wrong pairs holding
  // its capacity slots. Against a capacity-respecting target an
  // over-full slot always holds a wrong pair, so with an unlimited
  // budget every add lands and `cur` converges exactly to `target`.
  std::vector<MatchPair> applied_adds;
  int adds_deferred = 0;
  for (const MatchPair& add : adds) {
    std::vector<int> evict;
    bool feasible = true;
    if (fn_load[add.fid] >= problem.functions[add.fid].capacity) {
      const int pick = worst_wrong(add.fid, -1);
      if (pick < 0) {
        feasible = false;
      } else {
        evict.push_back(pick);
      }
    }
    if (feasible &&
        obj_load[add.oid] >= problem.objects[add.oid].capacity) {
      const int pick = worst_wrong(-1, add.oid);
      if (pick < 0) {
        feasible = false;
      } else if (std::find(evict.begin(), evict.end(), pick) ==
                 evict.end()) {
        // The same wrong pair can free both slots; only distinct
        // evictions cost extra.
        evict.push_back(pick);
      }
    }
    const int64_t cost = 1 + static_cast<int64_t>(evict.size());
    if (!feasible || cost > remaining) {
      ++adds_deferred;
      continue;
    }
    for (int i : evict) drop_index(i);
    applied_adds.push_back(add);
    ++fn_load[add.fid];
    ++obj_load[add.oid];
    ++stats.adds_applied;
    remaining -= cost;
  }

  // Leftover budget retires remaining wrong pairs, least valuable
  // first.
  int wrong_deferred = 0;
  while (remaining > 0) {
    const int pick = worst_wrong(-1, -1);
    if (pick < 0) break;
    drop_index(pick);
    --remaining;
  }
  for (size_t i = 0; i < cur.size(); ++i) {
    if (!dropped[i] && wrong[i]) ++wrong_deferred;
  }
  stats.deferred = adds_deferred + wrong_deferred;

  Matching next;
  next.reserve(cur.size() + applied_adds.size());
  for (size_t i = 0; i < cur.size(); ++i) {
    if (!dropped[i]) next.push_back(cur[i]);
  }
  for (const MatchPair& add : applied_adds) next.push_back(add);
  CanonicalizeMatching(&next);
  matching_ = std::move(next);

  stats.pairs = matching_.size();
  if (!matching_.empty()) {
    stats.min_score = std::numeric_limits<double>::infinity();
    for (const MatchPair& pair : matching_) {
      stats.aggregate_score += pair.score;
      stats.min_score = std::min(stats.min_score, pair.score);
    }
  }
  return stats;
}

}  // namespace fairmatch::update

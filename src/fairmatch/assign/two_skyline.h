// Two-skyline SB variant for prioritized functions (paper Section 6.2).
//
// With priorities, effective coefficients alpha'_i = alpha_i * gamma no
// longer sum to 1, so a function skyline F_sky becomes meaningful: a
// function dominated in effective-coefficient space can never be any
// object's best. The variant maintains F_sky (deletion-only, with
// pruned-point parking) next to the object skyline O_sky and searches
// best pairs exhaustively between the two skylines — faster than TA
// under priorities because the knapsack threshold B = max gamma is loose
// and F_sky is small and frequently updated (Figure 15).
#ifndef FAIRMATCH_ASSIGN_TWO_SKYLINE_H_
#define FAIRMATCH_ASSIGN_TWO_SKYLINE_H_

#include "fairmatch/assign/problem.h"

namespace fairmatch {

class ExecContext;

/// Runs the two-skyline prioritized assignment on `tree` (which must
/// contain the problem's objects). When `ctx` is given, search-structure
/// memory is reported to its shared MemoryTracker
/// (engine/exec_context.h).
AssignResult TwoSkylineAssignment(const AssignmentProblem& problem,
                                  const RTree& tree,
                                  ExecContext* ctx = nullptr);

}  // namespace fairmatch

#endif  // FAIRMATCH_ASSIGN_TWO_SKYLINE_H_

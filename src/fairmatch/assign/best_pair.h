// Mutual-best pairing between the skyline members and their candidate
// functions (paper Section 5.3, Algorithm 3 lines 8-17).
//
// Each loop, every skyline member o carries its best unassigned function
// o.fbest. For every function f appearing as some member's fbest, the
// engine computes f.obest — f's best object *among the skyline members*
// — and reports the pairs with (f.obest).fbest == f, which Property 2
// proves stable. The f.obest values are cached across loops: the cache
// entry stays valid until the cached object is assigned (removed) or new
// members join the skyline (compared incrementally against the cache).
#ifndef FAIRMATCH_ASSIGN_BEST_PAIR_H_
#define FAIRMATCH_ASSIGN_BEST_PAIR_H_

#include <unordered_map>
#include <vector>

#include "fairmatch/assign/problem.h"

namespace fairmatch {

/// One skyline member with its current candidate function.
struct MemberCandidate {
  ObjectId oid = kInvalidObject;
  const Point* point = nullptr;
  FunctionId fbest = kInvalidFunction;
  double fbest_score = 0.0;
};

/// Stateful mutual-best pair finder.
class BestPairEngine {
 public:
  explicit BestPairEngine(const FunctionSet* fns) : fns_(fns) {}

  /// Returns the stable pairs among `members` under Property 2.
  /// `added` lists the member oids that joined the skyline since the
  /// previous call (pass all members on the first call).
  std::vector<MatchPair> FindMutualPairs(
      const std::vector<MemberCandidate>& members,
      const std::vector<ObjectId>& added);

  /// Invalidate cached entries pointing at removed (assigned) objects.
  void OnObjectsRemoved(const std::vector<ObjectId>& removed);

  /// Drop the cache entry of an exhausted function.
  void OnFunctionAssigned(FunctionId fid);

  size_t memory_bytes() const {
    return obest_.size() * 32 + sizeof(*this);
  }

 private:
  struct Best {
    ObjectId oid;
    double score;
  };

  const FunctionSet* fns_;
  std::unordered_map<FunctionId, Best> obest_;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_ASSIGN_BEST_PAIR_H_

#include "fairmatch/assign/two_skyline.h"

#include <algorithm>
#include <array>
#include <map>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fairmatch/assign/best_pair.h"
#include "fairmatch/common/check.h"
#include "fairmatch/common/stats.h"
#include "fairmatch/common/timer.h"
#include "fairmatch/engine/exec_context.h"
#include "fairmatch/skyline/bbs.h"

namespace fairmatch {

namespace {

/// Deletion-only skyline over the functions' effective-coefficient
/// vectors, in full double precision (exact dominance), with
/// pruned-point parking in the style of UpdateSkyline.
class FunctionSkyline {
 public:
  explicit FunctionSkyline(const FunctionSet& fns) : fns_(&fns) {
    const int dims = fns[0].dims;
    sums_.resize(fns.size());
    removed_.assign(fns.size(), 0);
    plist_.resize(fns.size());
    std::vector<FunctionId> order(fns.size());
    std::iota(order.begin(), order.end(), 0);
    for (const PrefFunction& f : fns) {
      double s = 0.0;
      for (int d = 0; d < dims; ++d) s += f.eff(d);
      sums_[f.id] = s;
    }
    std::sort(order.begin(), order.end(), [&](FunctionId a, FunctionId b) {
      if (sums_[a] != sums_[b]) return sums_[a] > sums_[b];
      return a < b;
    });
    for (FunctionId fid : order) Park(fid);
  }

  /// Removes a function; promotes parked functions it dominated.
  void Remove(FunctionId fid) {
    FAIRMATCH_CHECK(!removed_[fid]);
    removed_[fid] = 1;
    auto it = member_order_.find(std::make_pair(-sums_[fid], fid));
    if (it == member_order_.end()) return;  // dominated: lazily skipped
    member_order_.erase(it);
    members_.erase(fid);
    std::vector<FunctionId> pending = std::move(plist_[fid]);
    plist_[fid].clear();
    std::sort(pending.begin(), pending.end(),
              [&](FunctionId a, FunctionId b) {
                if (sums_[a] != sums_[b]) return sums_[a] > sums_[b];
                return a < b;
              });
    for (FunctionId p : pending) {
      if (removed_[p]) continue;
      Park(p);
    }
  }

  /// Live skyline member ids (descending effective-sum order).
  template <typename Fn>
  void ForEachMember(Fn&& fn) const {
    for (const auto& [key, fid] : member_order_) fn(fid);
  }

  size_t size() const { return members_.size(); }

  size_t memory_bytes() const {
    size_t bytes = sums_.size() * 8 + removed_.size() +
                   member_order_.size() * 48;
    for (const auto& list : plist_) bytes += list.capacity() * 4;
    return bytes;
  }

 private:
  /// True iff a strictly dominates b in effective-coefficient space.
  bool Dominates(FunctionId a, FunctionId b) const {
    const PrefFunction& fa = (*fns_)[a];
    const PrefFunction& fb = (*fns_)[b];
    bool strict = false;
    for (int d = 0; d < fa.dims; ++d) {
      double ea = fa.eff(d);
      double eb = fb.eff(d);
      if (ea < eb) return false;
      if (ea > eb) strict = true;
    }
    return strict;
  }

  void Park(FunctionId fid) {
    // Scan members in descending sum order; a dominator has a strictly
    // larger effective sum.
    for (const auto& [key, member] : member_order_) {
      if (-key.first <= sums_[fid]) break;
      if (Dominates(member, fid)) {
        plist_[member].push_back(fid);
        return;
      }
    }
    member_order_.emplace(std::make_pair(-sums_[fid], fid), fid);
    members_.insert(fid);
  }

  const FunctionSet* fns_;
  std::vector<double> sums_;
  std::vector<uint8_t> removed_;
  std::vector<std::vector<FunctionId>> plist_;
  std::map<std::pair<double, FunctionId>, FunctionId> member_order_;
  std::unordered_set<FunctionId> members_;
};

}  // namespace

AssignResult TwoSkylineAssignment(const AssignmentProblem& problem,
                                  const RTree& tree, ExecContext* ctx) {
  Timer timer;
  AssignResult result;
  result.stats.algorithm = "SB-TwoSkylines";

  const FunctionSet& fns = problem.functions;
  std::vector<uint8_t> assigned(fns.size(), 0);
  std::vector<int> fcap(fns.size());
  for (const PrefFunction& f : fns) fcap[f.id] = f.capacity;
  int64_t remaining_fns = static_cast<int64_t>(fns.size());
  std::vector<int> ocap(problem.objects.size());
  for (const ObjectItem& o : problem.objects) ocap[o.id] = o.capacity;

  SkylineManager sky_mgr(&tree);
  FunctionSkyline fsky(fns);
  BestPairEngine engine(&fns);
  MemoryTracker local_memory;
  MemoryTracker& memory = ctx != nullptr ? ctx->memory() : local_memory;

  // Per-object candidate cache. A cached candidate stays the best
  // function: F only shrinks, and a function promoted into F_sky was
  // dominated by a (just removed) member, whose score on this object is
  // itself bounded by the cached candidate's.
  struct Cand {
    FunctionId fid = kInvalidFunction;
    double score = 0.0;
  };
  std::unordered_map<ObjectId, Cand> cands;
  std::unordered_set<ObjectId> known_members;
  std::vector<ObjectId> odel;
  bool first = true;
  bool exhausted = false;

  while (remaining_fns > 0 && !exhausted) {
    // Cancellation point: a storage fault or an expired deadline aborts
    // this run with whatever partial matching is already in `result`.
    if (ctx != nullptr && ctx->ShouldAbort()) break;
    result.stats.loops++;
    if (first) {
      sky_mgr.ComputeInitial();
      first = false;
    } else {
      sky_mgr.RemoveAndUpdate(odel);
    }
    odel.clear();
    SkylineSet& sky = sky_mgr.skyline();
    if (sky.size() == 0) break;

    std::vector<MemberCandidate> members;
    std::vector<ObjectId> added;
    members.reserve(sky.size());
    sky.ForEach([&](int, const SkylineObject& m) {
      if (exhausted) return;
      Cand& cand = cands[m.id];
      if (cand.fid == kInvalidFunction || assigned[cand.fid]) {
        // Exhaustive scan over the function skyline (Section 6.2).
        cand.fid = kInvalidFunction;
        fsky.ForEachMember([&](FunctionId fid) {
          double s = fns[fid].Score(m.point);
          if (cand.fid == kInvalidFunction || s > cand.score ||
              (s == cand.score && fid < cand.fid)) {
            cand.fid = fid;
            cand.score = s;
          }
        });
        if (cand.fid == kInvalidFunction) {
          exhausted = true;
          return;
        }
      }
      members.push_back(MemberCandidate{m.id, &m.point, cand.fid, cand.score});
      if (known_members.insert(m.id).second) {
        added.push_back(m.id);
      }
    });
    if (exhausted || members.empty()) break;

    std::vector<MatchPair> pairs = engine.FindMutualPairs(members, added);
    FAIRMATCH_CHECK(!pairs.empty());
    for (const MatchPair& pair : pairs) {
      result.matching.push_back(pair);
      if (--fcap[pair.fid] == 0) {
        assigned[pair.fid] = 1;
        remaining_fns--;
        fsky.Remove(pair.fid);
        engine.OnFunctionAssigned(pair.fid);
      }
      if (--ocap[pair.oid] == 0) {
        odel.push_back(pair.oid);
        cands.erase(pair.oid);
        known_members.erase(pair.oid);
      }
    }
    engine.OnObjectsRemoved(odel);
    memory.Set(sky_mgr.memory_bytes() + fsky.memory_bytes() +
               cands.size() * 32 + engine.memory_bytes());
  }

  result.stats.cpu_ms = timer.ElapsedMs();
  result.stats.peak_memory_bytes = memory.peak();
  return result;
}

}  // namespace fairmatch

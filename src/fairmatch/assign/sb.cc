#include "fairmatch/assign/sb.h"

#include <algorithm>
#include <unordered_set>

#include "fairmatch/common/check.h"
#include "fairmatch/common/stats.h"
#include "fairmatch/common/timer.h"
#include "fairmatch/engine/exec_context.h"

namespace fairmatch {

SBAssignment::SBAssignment(const AssignmentProblem* problem,
                           const RTree* tree, SBOptions options,
                           FunctionIndexBase* fn_index, ExecContext* ctx)
    : problem_(problem),
      tree_(tree),
      options_(options),
      fn_index_(fn_index),
      ctx_(ctx) {}

bool SBAssignment::RefreshCandidate(ObjectState* state, const Point& point) {
  if (options_.best_pair_mode == BestPairMode::kExhaustive) {
    // Ablation mode (Algorithm 1 without Section 5.1): no resuming of
    // any kind — every loop re-scans the remaining functions for every
    // skyline member, which is exactly the CPU cost Figure 8 isolates.
    FunctionId best = kInvalidFunction;
    double best_s = 0.0;
    for (const PrefFunction& f : problem_->functions) {
      if (assigned_[f.id]) continue;
      double s = f.Score(point);
      if (best == kInvalidFunction || s > best_s ||
          (s == best_s && f.id < best)) {
        best = f.id;
        best_s = s;
      }
    }
    if (best == kInvalidFunction) return false;
    state->cand_fid = best;
    state->cand_score = best_s;
    return true;
  }
  if (state->cand_fid != kInvalidFunction && !assigned_[state->cand_fid]) {
    return true;  // resumable candidate still valid (Section 5.1)
  }
  auto result = rt1_->Best(&state->ta, point, assigned_, remaining_fns_);
  if (!result.has_value()) return false;
  state->cand_fid = result->first;
  state->cand_score = result->second;
  return true;
}

size_t SBAssignment::StateBytes() const {
  size_t bytes = state_pool_.memory_bytes();
  for (const auto& [oid, state] : states_) {
    bytes += 48 + state.ta.memory_bytes();
  }
  return bytes;
}

AssignResult SBAssignment::Run() {
  Timer timer;
  AssignResult result;
  result.stats.algorithm = "SB";

  const FunctionSet& fns = problem_->functions;
  assigned_.assign(fns.size(), 0);
  fcap_.resize(fns.size());
  remaining_fns_ = static_cast<int64_t>(fns.size());
  for (const PrefFunction& f : fns) fcap_[f.id] = f.capacity;
  std::vector<int> ocap(problem_->objects.size());
  for (const ObjectItem& o : problem_->objects) ocap[o.id] = o.capacity;

  if (options_.best_pair_mode == BestPairMode::kThresholdAlgorithm) {
    if (fn_index_ == nullptr) {
      owned_lists_ = std::make_unique<FunctionLists>(&fns);
      fn_index_ = owned_lists_.get();
    }
    rt1_ = std::make_unique<ReverseTop1>(fn_index_, options_.ta);
  }

  SkylineManager update_sky(tree_);
  DeltaSkyManager delta_sky(tree_);
  const bool use_update =
      options_.skyline_mode == SkylineMode::kUpdateSkyline;

  BestPairEngine engine(&fns);
  MemoryTracker local_memory;
  MemoryTracker& memory = ctx_ != nullptr ? ctx_->memory() : local_memory;
  std::vector<ObjectId> odel;
  std::unordered_set<ObjectId> known_members;
  bool first = true;
  bool functions_exhausted = false;

  while (remaining_fns_ > 0 && !functions_exhausted) {
    // Cancellation point: a storage fault or an expired deadline aborts
    // this run with whatever partial matching is already in `result`.
    if (ctx_ != nullptr && ctx_->ShouldAbort()) break;
    result.stats.loops++;
    // --- skyline maintenance -------------------------------------------
    if (first) {
      if (use_update) {
        update_sky.ComputeInitial();
      } else {
        delta_sky.ComputeInitial();
      }
      first = false;
    } else {
      if (use_update) {
        update_sky.RemoveAndUpdate(odel);
      } else {
        for (ObjectId oid : odel) delta_sky.Remove(oid);
      }
    }
    odel.clear();
    SkylineSet& sky = use_update ? update_sky.skyline() : delta_sky.skyline();
    if (sky.size() == 0) break;  // objects exhausted

    // --- per-member candidates (o.fbest) --------------------------------
    std::vector<MemberCandidate> members;
    std::vector<ObjectId> added;
    members.reserve(sky.size());
    sky.ForEach([&](int, const SkylineObject& m) {
      if (functions_exhausted) return;
      auto it = states_.find(m.id);
      if (it == states_.end()) {
        // New skyline member: its TA state reuses a retired object's
        // recycled buffers when the pool has one.
        it = states_.emplace(m.id, ObjectState{state_pool_.Acquire()})
                 .first;
      }
      ObjectState& state = it->second;
      if (!RefreshCandidate(&state, m.point)) {
        functions_exhausted = true;
        return;
      }
      members.push_back(
          MemberCandidate{m.id, &m.point, state.cand_fid, state.cand_score});
      if (known_members.insert(m.id).second) {
        added.push_back(m.id);
      }
    });
    if (functions_exhausted || members.empty()) break;

    // --- stable pair extraction ------------------------------------------
    std::vector<MatchPair> pairs;
    if (options_.multi_pair) {
      pairs = engine.FindMutualPairs(members, added);
    } else {
      // Single pair per loop (Algorithm 1): the globally best candidate
      // pair is stable.
      const MemberCandidate* best = &members[0];
      for (const MemberCandidate& m : members) {
        if (PairBefore(m.fbest_score, m.fbest, m.oid, best->fbest_score,
                       best->fbest, best->oid)) {
          best = &m;
        }
      }
      pairs.push_back(MatchPair{best->fbest, best->oid, best->fbest_score});
    }
    // Candidate scores come from (possibly faulted) TA reads while the
    // engine's function-side bests use in-memory scores; corruption can
    // break the mutual-best guarantee. In a faulted run that is data
    // loss, not a broken invariant — unwind instead of aborting.
    if (pairs.empty() && ctx_ != nullptr && ctx_->ShouldAbort()) break;
    FAIRMATCH_CHECK(!pairs.empty());

    for (const MatchPair& pair : pairs) {
      result.matching.push_back(pair);
      if (--fcap_[pair.fid] == 0) {
        assigned_[pair.fid] = 1;
        remaining_fns_--;
        engine.OnFunctionAssigned(pair.fid);
      }
      if (--ocap[pair.oid] == 0) {
        odel.push_back(pair.oid);
        auto sit = states_.find(pair.oid);
        if (sit != states_.end()) {
          state_pool_.Release(std::move(sit->second.ta));
          states_.erase(sit);
        }
        known_members.erase(pair.oid);
      }
    }
    engine.OnObjectsRemoved(odel);

    size_t sky_bytes =
        use_update ? update_sky.memory_bytes() : delta_sky.memory_bytes();
    memory.Set(sky_bytes + StateBytes() + engine.memory_bytes());
  }

  result.stats.cpu_ms = timer.ElapsedMs();
  result.stats.peak_memory_bytes = memory.peak();
  return result;
}

}  // namespace fairmatch

// Brute Force baseline (paper Section 4.1).
//
// Runs one incremental BRS top-1 search per function and keeps every
// search heap alive ("resuming search"), so that when a function's
// candidate object is assigned elsewhere the search continues instead of
// restarting. A global priority queue over the per-function candidates
// yields the best pair; by Property 2 that pair is stable.
//
// Deletion model: assigned objects are tombstoned (skipped by all
// searches) rather than physically removed from the R-tree, because
// physical restructuring would invalidate the resumable heaps (see
// DESIGN.md). The price Brute Force pays for resuming — one live heap
// per function — is what the paper's memory charts show.
#ifndef FAIRMATCH_ASSIGN_BRUTE_FORCE_H_
#define FAIRMATCH_ASSIGN_BRUTE_FORCE_H_

#include "fairmatch/assign/problem.h"
#include "fairmatch/topk/disk_function_lists.h"

namespace fairmatch {

class ExecContext;

struct BruteForceOptions {
  /// When set, the run models disk-resident functions (Section 7.6):
  /// every candidate advance re-fetches the function's coefficients
  /// through the store's buffer (counted I/O).
  DiskFunctionStore* disk_functions = nullptr;
  /// When set, search-structure memory is reported to the context's
  /// shared MemoryTracker (engine/exec_context.h).
  ExecContext* ctx = nullptr;
};

/// Runs the Brute Force assignment on `tree` (which must contain the
/// problem's objects).
AssignResult BruteForceAssignment(const AssignmentProblem& problem,
                                  const RTree& tree,
                                  const BruteForceOptions& options = {});

}  // namespace fairmatch

#endif  // FAIRMATCH_ASSIGN_BRUTE_FORCE_H_

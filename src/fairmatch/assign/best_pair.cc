#include "fairmatch/assign/best_pair.h"

#include <unordered_set>

#include "fairmatch/common/check.h"

namespace fairmatch {

std::vector<MatchPair> BestPairEngine::FindMutualPairs(
    const std::vector<MemberCandidate>& members,
    const std::vector<ObjectId>& added) {
  // Functions named as some member's best this loop (F_best).
  std::unordered_set<FunctionId> fbest_set;
  for (const MemberCandidate& m : members) {
    FAIRMATCH_DCHECK(m.fbest != kInvalidFunction);
    fbest_set.insert(m.fbest);
  }

  // Refresh f.obest for every f in F_best.
  std::unordered_set<ObjectId> added_set(added.begin(), added.end());
  for (FunctionId fid : fbest_set) {
    const PrefFunction& f = (*fns_)[fid];
    auto it = obest_.find(fid);
    if (it == obest_.end()) {
      // Full scan over the current members.
      Best best{kInvalidObject, 0.0};
      for (const MemberCandidate& m : members) {
        double s = f.Score(*m.point);
        if (best.oid == kInvalidObject ||
            PairBefore(s, fid, m.oid, best.score, fid, best.oid)) {
          best = Best{m.oid, s};
        }
      }
      obest_.emplace(fid, best);
    } else if (!added.empty()) {
      // Compare the cached best only against newcomers.
      Best& best = it->second;
      for (const MemberCandidate& m : members) {
        if (added_set.count(m.oid) == 0) continue;
        double s = f.Score(*m.point);
        if (PairBefore(s, fid, m.oid, best.score, fid, best.oid)) {
          best = Best{m.oid, s};
        }
      }
    }
  }

  // Report members whose candidate function points back at them.
  std::vector<MatchPair> pairs;
  for (const MemberCandidate& m : members) {
    const Best& best = obest_.at(m.fbest);
    if (best.oid == m.oid) {
      pairs.push_back(MatchPair{m.fbest, m.oid, m.fbest_score});
    }
  }
  return pairs;
}

void BestPairEngine::OnObjectsRemoved(const std::vector<ObjectId>& removed) {
  if (removed.empty() || obest_.empty()) return;
  std::unordered_set<ObjectId> removed_set(removed.begin(), removed.end());
  for (auto it = obest_.begin(); it != obest_.end();) {
    if (removed_set.count(it->second.oid) > 0) {
      it = obest_.erase(it);
    } else {
      ++it;
    }
  }
}

void BestPairEngine::OnFunctionAssigned(FunctionId fid) { obest_.erase(fid); }

}  // namespace fairmatch

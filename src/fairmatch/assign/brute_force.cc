#include "fairmatch/assign/brute_force.h"

#include <memory>
#include <queue>
#include <vector>

#include "fairmatch/common/check.h"
#include "fairmatch/common/stats.h"
#include "fairmatch/common/timer.h"
#include "fairmatch/engine/exec_context.h"
#include "fairmatch/topk/ranked_search.h"

namespace fairmatch {

namespace {

struct GlobalEntry {
  double score;
  FunctionId fid;
  ObjectId oid;
};

struct GlobalWorse {
  bool operator()(const GlobalEntry& a, const GlobalEntry& b) const {
    return PairBefore(b.score, b.fid, b.oid, a.score, a.fid, a.oid);
  }
};

}  // namespace

AssignResult BruteForceAssignment(const AssignmentProblem& problem,
                                  const RTree& tree,
                                  const BruteForceOptions& options) {
  Timer timer;
  AssignResult result;
  result.stats.algorithm = "BruteForce";

  const FunctionSet& fns = problem.functions;
  std::vector<int> fcap(fns.size());
  std::vector<int> ocap(problem.objects.size());
  for (const PrefFunction& f : fns) fcap[f.id] = f.capacity;
  for (const ObjectItem& o : problem.objects) ocap[o.id] = o.capacity;
  std::vector<uint8_t> alive(problem.objects.size(), 1);
  int64_t objects_left = static_cast<int64_t>(problem.objects.size());

  // One resumable search per function plus its current candidate.
  std::vector<std::unique_ptr<RankedSearch>> searches(fns.size());
  std::vector<ObjectId> candidate(fns.size(), kInvalidObject);
  MemoryTracker local_memory;
  MemoryTracker& memory =
      options.ctx != nullptr ? options.ctx->memory() : local_memory;
  size_t heap_bytes = 0;

  auto advance = [&](FunctionId fid) -> std::optional<RankedHit> {
    if (searches[fid] == nullptr) {
      searches[fid] = std::make_unique<RankedSearch>(&tree, &fns[fid]);
    }
    if (options.disk_functions != nullptr) {
      // Disk-resident F: re-fetch the function's coefficients (counted).
      Point dummy(problem.dims);
      options.disk_functions->ScoreOf(fid, dummy);
    }
    size_t before = searches[fid]->memory_bytes();
    auto hit = searches[fid]->Next(&alive);
    heap_bytes += searches[fid]->memory_bytes() - before;
    return hit;
  };

  std::priority_queue<GlobalEntry, std::vector<GlobalEntry>, GlobalWorse>
      queue;
  for (const PrefFunction& f : fns) {
    auto hit = advance(f.id);
    if (hit.has_value()) {
      candidate[f.id] = hit->id;
      queue.push(GlobalEntry{hit->score, f.id, hit->id});
    }
    memory.Set(heap_bytes + queue.size() * sizeof(GlobalEntry));
  }

  while (!queue.empty() && objects_left > 0) {
    // Cancellation point: a storage fault or an expired deadline aborts
    // this run with whatever partial matching is already in `result`.
    if (options.ctx != nullptr && options.ctx->ShouldAbort()) break;
    result.stats.loops++;
    GlobalEntry top = queue.top();
    queue.pop();
    if (fcap[top.fid] == 0) continue;           // function exhausted
    if (candidate[top.fid] != top.oid) continue;  // stale duplicate
    if (!alive[top.oid]) {
      // Candidate was assigned elsewhere: resume this function's search.
      auto hit = advance(top.fid);
      if (hit.has_value()) {
        candidate[top.fid] = hit->id;
        queue.push(GlobalEntry{hit->score, top.fid, hit->id});
      } else {
        candidate[top.fid] = kInvalidObject;  // no assignable object left
      }
      memory.Set(heap_bytes + queue.size() * sizeof(GlobalEntry));
      continue;
    }

    // (top.fid, top.oid) is the best pair among the remaining sets:
    // stable by Property 2.
    result.matching.push_back(MatchPair{top.fid, top.oid, top.score});
    fcap[top.fid]--;
    if (--ocap[top.oid] == 0) {
      alive[top.oid] = 0;
      objects_left--;
    }
    if (fcap[top.fid] > 0) {
      if (alive[top.oid]) {
        // Same pair remains this function's top-1.
        queue.push(top);
      } else {
        auto hit = advance(top.fid);
        if (hit.has_value()) {
          candidate[top.fid] = hit->id;
          queue.push(GlobalEntry{hit->score, top.fid, hit->id});
        } else {
          candidate[top.fid] = kInvalidObject;
        }
      }
    }
    memory.Set(heap_bytes + queue.size() * sizeof(GlobalEntry));
  }

  result.stats.cpu_ms = timer.ElapsedMs();
  result.stats.peak_memory_bytes = memory.peak();
  return result;
}

}  // namespace fairmatch

#include "fairmatch/assign/naive_matcher.h"

#include <vector>

namespace fairmatch {

Matching NaiveStableMatching(const AssignmentProblem& problem) {
  std::vector<int> fcap(problem.functions.size());
  std::vector<int> ocap(problem.objects.size());
  int64_t fn_left = 0;
  int64_t obj_left = 0;
  for (size_t i = 0; i < problem.functions.size(); ++i) {
    fcap[i] = problem.functions[i].capacity;
    fn_left += fcap[i];
  }
  for (size_t i = 0; i < problem.objects.size(); ++i) {
    ocap[i] = problem.objects[i].capacity;
    obj_left += ocap[i];
  }

  Matching out;
  while (fn_left > 0 && obj_left > 0) {
    FunctionId best_f = kInvalidFunction;
    ObjectId best_o = kInvalidObject;
    double best_s = 0.0;
    bool found = false;
    for (const PrefFunction& f : problem.functions) {
      if (fcap[f.id] == 0) continue;
      for (const ObjectItem& o : problem.objects) {
        if (ocap[o.id] == 0) continue;
        double s = f.Score(o.point);
        if (!found || PairBefore(s, f.id, o.id, best_s, best_f, best_o)) {
          found = true;
          best_f = f.id;
          best_o = o.id;
          best_s = s;
        }
      }
    }
    if (!found) break;
    out.push_back(MatchPair{best_f, best_o, best_s});
    fcap[best_f]--;
    ocap[best_o]--;
    fn_left--;
    obj_left--;
  }
  return out;
}

}  // namespace fairmatch

// Stability verifier: checks an output matching against Definition 1
// directly, without recomputing the matching.
#ifndef FAIRMATCH_ASSIGN_VERIFIER_H_
#define FAIRMATCH_ASSIGN_VERIFIER_H_

#include <string>

#include "fairmatch/assign/problem.h"

namespace fairmatch {

/// Verification outcome; `message` describes the first violation found.
struct VerifyResult {
  bool ok = true;
  std::string message;
};

/// Checks that `matching` is feasible (capacities respected, scores
/// correct, maximal size) and stable (no blocking pair): there must be
/// no (f, o) not matched together where f(o) is strictly better than
/// what both f and o currently get — spare capacity counts as the worst
/// possible current assignment.
VerifyResult VerifyStableMatching(const AssignmentProblem& problem,
                                  const Matching& matching);

}  // namespace fairmatch

#endif  // FAIRMATCH_ASSIGN_VERIFIER_H_

#include "fairmatch/assign/chain.h"

#include <deque>
#include <optional>
#include <set>

#include "fairmatch/common/check.h"
#include "fairmatch/common/float_util.h"
#include "fairmatch/common/stats.h"
#include "fairmatch/common/timer.h"
#include "fairmatch/engine/exec_context.h"
#include "fairmatch/rtree/node_store.h"
#include "fairmatch/topk/ranked_search.h"

namespace fairmatch {

namespace {

/// Work item: either a function or an object to test for mutual top-1.
struct ChainItem {
  bool is_function;
  int32_t id;
};

}  // namespace

AssignResult ChainAssignment(const AssignmentProblem& problem, RTree* tree,
                             const ChainOptions& options) {
  Timer timer;
  AssignResult result;
  result.stats.algorithm = "Chain";

  const FunctionSet& fns = problem.functions;
  const int dims = problem.dims;

  // R-tree over the functions' effective weights: main-memory in the
  // standard setting, disk-paged (counted I/O) when F is disk-resident.
  // Stored coordinates are rounded up so node maxscores remain upper
  // bounds; leaf candidates are rescored exactly (see RankedSearch).
  const bool disk_f = options.disk_functions != nullptr;
  MemNodeStore mem_fstore(dims);
  PagedNodeStore paged_fstore(
      dims, /*buffer_frames=*/4096,
      options.ctx != nullptr ? &options.ctx->counters() : nullptr);
  NodeStore* fstore_ptr =
      disk_f ? static_cast<NodeStore*>(&paged_fstore) : &mem_fstore;
  RTree ftree(fstore_ptr);
  // The counters may be shared with other storage objects (ExecContext),
  // so the build phase is excluded by restoring this snapshot rather
  // than zeroing everything accrued so far.
  const PerfCounters before_build = paged_fstore.counters();
  {
    std::vector<ObjectRecord> records;
    records.reserve(fns.size());
    for (const PrefFunction& f : fns) {
      Point w(dims);
      for (int d = 0; d < dims; ++d) w[d] = FloatUp(f.eff(d));
      records.push_back(ObjectRecord{w, f.id});
    }
    ftree.BulkLoad(std::move(records));
  }
  if (disk_f) {
    paged_fstore.pool().FlushAll();
    paged_fstore.counters() = before_build;
    paged_fstore.SetBufferFraction(options.function_tree_buffer);
  }
  // Remember each function's stored point for deletion.
  std::vector<Point> fn_points(fns.size());
  for (const PrefFunction& f : fns) {
    Point w(dims);
    for (int d = 0; d < dims; ++d) w[d] = FloatUp(f.eff(d));
    fn_points[f.id] = w;
  }

  std::vector<int> fcap(fns.size());
  std::vector<int> ocap(problem.objects.size());
  for (const PrefFunction& f : fns) fcap[f.id] = f.capacity;
  for (const ObjectItem& o : problem.objects) ocap[o.id] = o.capacity;
  std::set<FunctionId> live_fns;
  for (const PrefFunction& f : fns) live_fns.insert(f.id);
  std::vector<uint8_t> obj_alive(problem.objects.size(), 1);
  int64_t objects_left = static_cast<int64_t>(problem.objects.size());

  MemoryTracker local_memory;
  MemoryTracker& memory =
      options.ctx != nullptr ? options.ctx->memory() : local_memory;
  std::deque<ChainItem> queue;

  // Top-1 object for a function: fresh BRS on the (mutating) object tree.
  auto top1_object = [&](FunctionId fid) -> std::optional<RankedHit> {
    if (options.disk_functions != nullptr) {
      // Disk-resident F: fetch the function's coefficients (counted).
      Point dummy(dims);
      options.disk_functions->ScoreOf(fid, dummy);
    }
    RankedSearch search(tree, &fns[fid]);
    auto hit = search.Next();
    memory.Set(mem_fstore.memory_bytes() + search.memory_bytes() +
               queue.size() * sizeof(ChainItem));
    return hit;
  };

  // Top-1 function for an object: fresh BRS on the function tree with a
  // pseudo-function whose weights are the object's attribute values.
  auto top1_function =
      [&](const Point& opoint) -> std::optional<RankedHit> {
    PrefFunction pseudo;
    pseudo.id = 0;
    pseudo.dims = dims;
    pseudo.gamma = 1.0;
    for (int d = 0; d < dims; ++d) pseudo.alpha[d] = opoint[d];
    RankedSearch search(&ftree, &pseudo);
    search.set_leaf_scorer([&](ObjectId fid, const Point&) {
      return fns[fid].Score(opoint);
    });
    auto hit = search.Next();
    if (hit.has_value() && options.disk_functions != nullptr) {
      // Disk-resident F: rescoring the winning candidate requires its
      // coefficients (counted random accesses).
      options.disk_functions->ScoreOf(hit->id, opoint);
    }
    memory.Set(mem_fstore.memory_bytes() + search.memory_bytes() +
               queue.size() * sizeof(ChainItem));
    return hit;
  };

  auto emit = [&](FunctionId fid, ObjectId oid, double score) {
    result.matching.push_back(MatchPair{fid, oid, score});
    if (--fcap[fid] == 0) {
      live_fns.erase(fid);
      FAIRMATCH_CHECK(ftree.Delete(fn_points[fid], fid));
    }
    if (--ocap[oid] == 0) {
      obj_alive[oid] = 0;
      objects_left--;
      FAIRMATCH_CHECK(tree->Delete(problem.objects[oid].point, oid));
    }
  };

  while (!live_fns.empty() && objects_left > 0) {
    // Cancellation point: a storage fault or an expired deadline aborts
    // this run with whatever partial matching is already in `result`.
    if (options.ctx != nullptr && options.ctx->ShouldAbort()) break;
    result.stats.loops++;
    // Pick the next item to test: queue front, else any live function.
    ChainItem item{};
    bool have_item = false;
    while (!queue.empty()) {
      item = queue.front();
      queue.pop_front();
      if (item.is_function ? fcap[item.id] > 0 : obj_alive[item.id]) {
        have_item = true;
        break;
      }
    }
    if (!have_item) {
      item = ChainItem{true, *live_fns.begin()};
      have_item = true;
    }

    if (item.is_function) {
      FunctionId fid = item.id;
      auto ohit = top1_object(fid);
      if (!ohit.has_value()) break;  // no objects left
      auto fhit = top1_function(ohit->point);
      FAIRMATCH_CHECK(fhit.has_value());
      if (fhit->id == fid) {
        emit(fid, ohit->id, ohit->score);
        // Capacitated endpoints stay live and are re-picked later.
      } else {
        // Not mutual: the object is pushed (the paper's "push aNN");
        // fid stays in the live set and is re-picked when Q drains.
        queue.push_back(ChainItem{false, ohit->id});
      }
    } else {
      ObjectId oid = item.id;
      auto fhit = top1_function(problem.objects[oid].point);
      if (!fhit.has_value()) break;  // no functions left
      auto ohit = top1_object(fhit->id);
      FAIRMATCH_CHECK(ohit.has_value());
      if (ohit->id == oid) {
        emit(fhit->id, oid, ohit->score);
      } else {
        queue.push_back(ChainItem{true, fhit->id});
      }
    }
  }

  result.stats.cpu_ms = timer.ElapsedMs();
  result.stats.peak_memory_bytes = memory.peak();
  if (disk_f && options.ctx == nullptr) {
    // No shared context: surface the disk-resident function R-tree's
    // traffic here so the caller can add the coefficient-store traffic
    // it owns. With a context, both already land in ctx->counters().
    result.stats.io_accesses = paged_fstore.counters().io_accesses();
  }
  return result;
}

}  // namespace fairmatch

#include "fairmatch/assign/verifier.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

namespace fairmatch {

namespace {

VerifyResult Fail(const char* fmt, long a, long b) {
  VerifyResult result;
  result.ok = false;
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  result.message = buf;
  return result;
}

}  // namespace

VerifyResult VerifyStableMatching(const AssignmentProblem& problem,
                                  const Matching& matching) {
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<int> fused(problem.functions.size(), 0);
  std::vector<int> oused(problem.objects.size(), 0);
  // Worst score currently held by each side (+inf if unmatched slots
  // remain after the feasibility pass fills them in).
  std::vector<double> fworst(problem.functions.size(), kInf);
  std::vector<double> oworst(problem.objects.size(), kInf);

  for (const MatchPair& pair : matching) {
    if (pair.fid < 0 ||
        pair.fid >= static_cast<FunctionId>(problem.functions.size())) {
      return Fail("pair references unknown function %ld", pair.fid, 0);
    }
    if (pair.oid < 0 ||
        pair.oid >= static_cast<ObjectId>(problem.objects.size())) {
      return Fail("pair references unknown object %ld", pair.oid, 0);
    }
    double expect = problem.functions[pair.fid].Score(
        problem.objects[pair.oid].point);
    if (std::abs(expect - pair.score) > 1e-9) {
      return Fail("pair (f=%ld, o=%ld) has a wrong score", pair.fid,
                  pair.oid);
    }
    fused[pair.fid]++;
    oused[pair.oid]++;
    fworst[pair.fid] = std::min(fworst[pair.fid], pair.score);
    oworst[pair.oid] = std::min(oworst[pair.oid], pair.score);
  }

  int64_t fn_spare = 0;
  int64_t obj_spare = 0;
  for (const PrefFunction& f : problem.functions) {
    if (fused[f.id] > f.capacity) {
      return Fail("function %ld exceeds its capacity %ld", f.id, f.capacity);
    }
    if (fused[f.id] < f.capacity) {
      fn_spare += f.capacity - fused[f.id];
      fworst[f.id] = -kInf;  // a spare slot accepts anything
    }
  }
  for (const ObjectItem& o : problem.objects) {
    if (oused[o.id] > o.capacity) {
      return Fail("object %ld exceeds its capacity %ld", o.id, o.capacity);
    }
    if (oused[o.id] < o.capacity) {
      obj_spare += o.capacity - oused[o.id];
      oworst[o.id] = -kInf;
    }
  }

  // Maximality: a stable matching leaves no capacity unused on both
  // sides simultaneously.
  if (fn_spare > 0 && obj_spare > 0) {
    return Fail("matching is not maximal: %ld spare function and %ld spare "
                "object capacity",
                fn_spare, obj_spare);
  }

  // No blocking pair: (f, o) with f(o) strictly better than the worst
  // assignment both currently hold.
  for (const PrefFunction& f : problem.functions) {
    for (const ObjectItem& o : problem.objects) {
      double s = f.Score(o.point);
      if (s > fworst[f.id] && s > oworst[o.id]) {
        return Fail("blocking pair (f=%ld, o=%ld)", f.id, o.id);
      }
    }
  }
  return VerifyResult{};
}

}  // namespace fairmatch

#include "fairmatch/assign/problem.h"

#include <algorithm>

#include "fairmatch/common/check.h"

namespace fairmatch {

int64_t AssignmentProblem::TotalFunctionCapacity() const {
  int64_t total = 0;
  for (const PrefFunction& f : functions) total += f.capacity;
  return total;
}

int64_t AssignmentProblem::TotalObjectCapacity() const {
  int64_t total = 0;
  for (const ObjectItem& o : objects) total += o.capacity;
  return total;
}

void CanonicalizeMatching(Matching* matching) {
  std::sort(matching->begin(), matching->end(),
            [](const MatchPair& a, const MatchPair& b) {
              if (a.fid != b.fid) return a.fid < b.fid;
              return a.oid < b.oid;
            });
}

bool SameMatching(Matching a, Matching b) {
  if (a.size() != b.size()) return false;
  CanonicalizeMatching(&a);
  CanonicalizeMatching(&b);
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].fid != b[i].fid || a[i].oid != b[i].oid) return false;
  }
  return true;
}

void BuildObjectTree(const AssignmentProblem& problem, RTree* tree,
                     double fill_factor) {
  FAIRMATCH_CHECK(tree->dims() == problem.dims);
  std::vector<ObjectRecord> records;
  records.reserve(problem.objects.size());
  for (const ObjectItem& o : problem.objects) {
    records.push_back(ObjectRecord{o.point, o.id});
  }
  tree->BulkLoad(std::move(records), fill_factor);
}

}  // namespace fairmatch

// SB-alt — batch best-pair search for disk-resident functions
// (paper Section 7.6 / Figure 17).
//
// Instead of one resumable TA per skyline object, SB-alt scans the
// on-disk sorted coefficient lists block-by-block in round-robin order
// once per loop. Every newly encountered function's coefficients are
// fetched with random accesses and scored against *all* current skyline
// members; a member is "done" once its best score provably beats the
// knapsack threshold of every unseen function. No per-object TA state is
// kept, so each list page is read at most once per loop and memory stays
// low — the trade the paper describes for F larger than memory.
#ifndef FAIRMATCH_ASSIGN_SB_ALT_H_
#define FAIRMATCH_ASSIGN_SB_ALT_H_

#include "fairmatch/assign/problem.h"
#include "fairmatch/topk/disk_function_lists.h"
#include "fairmatch/topk/packed_function_lists.h"

namespace fairmatch {

class ExecContext;

/// Runs SB-alt. `tree` holds the objects (typically a MemNodeStore tree:
/// in the Figure 17 setting O fits in memory); `store` holds the
/// disk-resident function lists. When `ctx` is given, search-structure
/// memory is reported to its shared MemoryTracker
/// (engine/exec_context.h).
AssignResult SBAltAssignment(const AssignmentProblem& problem,
                             const RTree& tree, DiskFunctionStore* store,
                             ExecContext* ctx = nullptr);

/// SB-alt over a PackedFunctionStore: the same batch member search, but
/// the scan consumes packed blocks in globally descending max-impact
/// order (instead of round-robin pages) and reads coefficients straight
/// from the packed image — zero counted I/O, tighter frontiers sooner.
/// Same matching as SB-alt under the shared tie rules.
AssignResult SBAltPackedAssignment(const AssignmentProblem& problem,
                                   const RTree& tree,
                                   PackedFunctionStore* store,
                                   ExecContext* ctx = nullptr);

}  // namespace fairmatch

#endif  // FAIRMATCH_ASSIGN_SB_ALT_H_

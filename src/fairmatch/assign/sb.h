// SB — the paper's skyline-based stable assignment (Algorithms 1 & 3).
//
// Maintains the skyline of the unassigned objects (I/O-optimally via
// UpdateSkyline, or with DeltaSky for the Figure 8 ablation), finds each
// skyline member's best unassigned function with the resumable TA-based
// reverse top-1 search (Section 5.1), and emits every mutual-best pair
// per loop (Section 5.3). Supports capacities (Section 6.1) and
// priorities (Section 6.2); see two_skyline.h for the prioritized
// two-skyline variant and sb_alt.h for disk-resident function batches.
#ifndef FAIRMATCH_ASSIGN_SB_H_
#define FAIRMATCH_ASSIGN_SB_H_

#include <memory>
#include <unordered_map>

#include "fairmatch/assign/best_pair.h"
#include "fairmatch/assign/problem.h"
#include "fairmatch/skyline/bbs.h"
#include "fairmatch/skyline/delta_sky.h"
#include "fairmatch/topk/reverse_top1.h"

namespace fairmatch {

class ExecContext;

/// Which skyline maintenance module SB uses.
enum class SkylineMode {
  kUpdateSkyline,  // the paper's Algorithm 2 (I/O-optimal)
  kDeltaSky,       // baseline for the Figure 8 ablation
};

/// Which best-pair search SB uses.
enum class BestPairMode {
  kThresholdAlgorithm,  // Section 5.1 (TA over sorted coefficient lists)
  kExhaustive,          // plain |F| scan per member (the "SB-UpdateSkyline"
                        // ablation: Algorithm 1 without Section 5.1)
};

/// SB configuration.
struct SBOptions {
  SkylineMode skyline_mode = SkylineMode::kUpdateSkyline;
  BestPairMode best_pair_mode = BestPairMode::kThresholdAlgorithm;
  /// Emit multiple stable pairs per loop (Section 5.3). The ablation
  /// variants disable this and emit one pair per loop (Algorithm 1).
  bool multi_pair = true;
  /// TA tuning (omega, biased probing, resume).
  ReverseTop1Options ta;
};

/// The SB assignment algorithm.
class SBAssignment {
 public:
  /// `tree` must contain exactly the problem's objects. If `fn_index` is
  /// null an in-memory FunctionLists index is built (its construction
  /// time is charged to the run, matching the paper's accounting);
  /// passing a DiskFunctionStore yields the disk-resident-F setting.
  /// When `ctx` is given, search-structure memory is reported to its
  /// shared MemoryTracker (engine/exec_context.h) instead of a private
  /// one.
  SBAssignment(const AssignmentProblem* problem, const RTree* tree,
               SBOptions options, FunctionIndexBase* fn_index = nullptr,
               ExecContext* ctx = nullptr);

  /// Runs the assignment to completion.
  AssignResult Run();

 private:
  struct ObjectState {
    ReverseTop1State ta;
    FunctionId cand_fid = kInvalidFunction;
    double cand_score = 0.0;
  };

  /// Ensures `state` holds a valid (unassigned) candidate for `point`.
  /// Returns false when every function is exhausted.
  bool RefreshCandidate(ObjectState* state, const Point& point);

  size_t StateBytes() const;

  const AssignmentProblem* problem_;
  const RTree* tree_;
  SBOptions options_;
  FunctionIndexBase* fn_index_;
  ExecContext* ctx_;

  std::unique_ptr<FunctionLists> owned_lists_;
  std::unique_ptr<ReverseTop1> rt1_;
  std::vector<uint8_t> assigned_;  // function capacity exhausted
  std::vector<int> fcap_;
  // Count of functions with assigned_[fid] == 0, threaded into the TA
  // search so its exhaustion check is O(1) instead of an |F| scan.
  int64_t remaining_fns_ = 0;
  std::unordered_map<ObjectId, ObjectState> states_;
  // Recycles retired objects' TA buffers into newly arriving skyline
  // members' states across loops (no re-growth through the allocator).
  ReverseTop1StatePool state_pool_;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_ASSIGN_SB_H_

#include "fairmatch/assign/sb_alt.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "fairmatch/assign/best_pair.h"
#include "fairmatch/common/check.h"
#include "fairmatch/common/simd.h"
#include "fairmatch/common/stats.h"
#include "fairmatch/common/timer.h"
#include "fairmatch/engine/exec_context.h"
#include "fairmatch/skyline/bbs.h"

namespace fairmatch {

namespace {

// See reverse_top1.cc: the threshold bound needs rounding slack, and at
// exact ties scanning must continue so the smallest-id winner is found.
constexpr double kBoundSlack = 1e-9;

/// Knapsack-tight threshold (Section 5.1) given per-list frontier
/// values. `o` and `dim_order` are one member's rows of the flat SoA
/// blocks (length `dims` each).
double TightThreshold(const float* o, const int* dim_order, int dims,
                      const std::vector<double>& frontier, double budget) {
  double threshold = 0.0;
  for (int j = 0; j < dims; ++j) {
    if (budget <= 0.0) break;
    const int d = dim_order[j];
    double beta = std::min(budget, frontier[d]);
    threshold += beta * o[d];
    budget -= beta;
  }
  return threshold;
}

}  // namespace

AssignResult SBAltAssignment(const AssignmentProblem& problem,
                             const RTree& tree, DiskFunctionStore* store,
                             ExecContext* ctx) {
  Timer timer;
  AssignResult result;
  result.stats.algorithm = "SB-alt";

  const FunctionSet& fns = problem.functions;
  const int dims = problem.dims;
  const int num_fns = static_cast<int>(fns.size());

  std::vector<uint8_t> assigned(num_fns, 0);
  std::vector<int> fcap(num_fns);
  for (const PrefFunction& f : fns) fcap[f.id] = f.capacity;
  int64_t remaining_fns = num_fns;
  std::vector<int> ocap(problem.objects.size());
  for (const ObjectItem& o : problem.objects) ocap[o.id] = o.capacity;

  SkylineManager sky_mgr(&tree);
  BestPairEngine engine(&fns);
  MemoryTracker local_memory;
  MemoryTracker& memory = ctx != nullptr ? ctx->memory() : local_memory;
  std::vector<ObjectId> odel;
  std::unordered_set<ObjectId> known_members;
  bool first = true;

  // Member state in flat SoA blocks, hoisted so loop iterations reuse
  // capacity: coordinates and per-member dim orders are `dims`-strided
  // rows, best scores/functions are parallel arrays. `active` compacts
  // the not-yet-done members so the per-page loops cost O(active)
  // instead of O(members); `by_dim[d]` orders members by descending
  // o[d] so the fetch-worthiness probe (whose dominant term is
  // coef * o[d]) hits its early-exit on the likeliest member first.
  // `act_cols` mirrors the active set as dim-major float columns
  // (column j = member active[j]) so the per-fetch scoring loop runs
  // through the vectorized block kernel (common/simd.h); `act_scores`
  // receives one block of scores per fetched function.
  std::vector<ObjectId> mb_oid;
  std::vector<float> mb_pts;     // members x dims
  std::vector<int> mb_order;     // members x dims, o desc per member
  std::vector<FunctionId> mb_best_f;
  std::vector<double> mb_best_s;
  std::vector<uint8_t> mb_done;
  std::vector<int> active;
  std::vector<float> act_cols;   // dims x m_count, column j = active[j]
  std::vector<double> act_scores;
  std::vector<std::vector<int>> by_dim(dims);
  // Generation-stamped seen set: cleared by bumping `gen`, not O(|F|).
  std::vector<uint32_t> seen_gen(num_fns, 0);
  uint32_t gen = 0;
  std::vector<int64_t> next_page(dims, 0);
  std::vector<double> frontier(dims, 0.0);
  std::vector<ListRecord> page;
  std::array<double, kMaxDims> eff{};
  const double max_gamma = store->max_gamma();
  const int64_t pages = store->pages_per_list();

  while (remaining_fns > 0) {
    result.stats.loops++;
    if (first) {
      sky_mgr.ComputeInitial();
      first = false;
    } else {
      sky_mgr.RemoveAndUpdate(odel);
    }
    odel.clear();
    SkylineSet& sky = sky_mgr.skyline();
    if (sky.size() == 0) break;

    // Gather the members; best functions are recomputed from scratch.
    const int m_count = static_cast<int>(sky.size());
    mb_oid.clear();
    mb_pts.clear();
    mb_order.resize(static_cast<size_t>(m_count) * dims);
    sky.ForEach([&](int, const SkylineObject& m) {
      const int idx = static_cast<int>(mb_oid.size());
      mb_oid.push_back(m.id);
      for (int d = 0; d < dims; ++d) mb_pts.push_back(m.point[d]);
      int* order = &mb_order[static_cast<size_t>(idx) * dims];
      std::iota(order, order + dims, 0);
      const float* pt = &mb_pts[static_cast<size_t>(idx) * dims];
      std::sort(order, order + dims, [pt](int a, int b) {
        if (pt[a] != pt[b]) return pt[a] > pt[b];
        return a < b;
      });
    });
    mb_best_f.assign(m_count, kInvalidFunction);
    mb_best_s.assign(m_count, 0.0);
    mb_done.assign(m_count, 0);
    active.resize(m_count);
    std::iota(active.begin(), active.end(), 0);
    act_cols.resize(static_cast<size_t>(dims) * m_count);
    for (int d = 0; d < dims; ++d) {
      float* col = &act_cols[static_cast<size_t>(d) * m_count];
      for (int j = 0; j < m_count; ++j) {
        col[j] = mb_pts[static_cast<size_t>(j) * dims + d];
      }
    }
    act_scores.resize(m_count);
    for (int d = 0; d < dims; ++d) {
      std::vector<int>& order = by_dim[d];
      order.resize(m_count);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const float oa = mb_pts[static_cast<size_t>(a) * dims + d];
        const float ob = mb_pts[static_cast<size_t>(b) * dims + d];
        if (oa != ob) return oa > ob;
        return a < b;
      });
    }

    // Batch TA over the disk lists: round-robin, one page at a time.
    std::fill(next_page.begin(), next_page.end(), 0);
    std::fill(frontier.begin(), frontier.end(), max_gamma);
    ++gen;
    int undone = m_count;

    while (undone > 0) {
      bool progressed = false;
      for (int d = 0; d < dims && undone > 0; ++d) {
        if (next_page[d] >= pages) continue;
        int count = store->ReadListPage(d, next_page[d]++, &page);
        progressed = true;
        const std::vector<int>& order_d = by_dim[d];
        for (int r = 0; r < count; ++r) {
          FunctionId fid = page[r].fid;
          if (seen_gen[fid] == gen) continue;
          seen_gen[fid] = gen;
          if (assigned[fid]) continue;
          // Before paying D-1 random accesses, bound f's score: f was
          // unseen until now, so in every other list its entry is at or
          // below the scan frontier — alpha'_k <= frontier[k] — and its
          // coefficients sum to at most max gamma. If the bound cannot
          // beat (or tie) any undone member's current best, skip the
          // fetch entirely; this is what keeps the batch search's I/O
          // low once the early list prefixes are consumed.
          bool worth_fetching = false;
          for (int m : order_d) {
            if (mb_done[m]) continue;
            if (mb_best_f[m] == kInvalidFunction) {
              worth_fetching = true;
              break;
            }
            const float* pt = &mb_pts[static_cast<size_t>(m) * dims];
            const int* order = &mb_order[static_cast<size_t>(m) * dims];
            double budget = max_gamma - page[r].coef;
            double bound = page[r].coef * pt[d];
            for (int j = 0; j < dims; ++j) {
              const int k = order[j];
              if (k == d || budget <= 0.0) continue;
              double beta = std::min(budget, frontier[k]);
              bound += beta * pt[k];
              budget -= beta;
            }
            if (bound >= mb_best_s[m] - kBoundSlack) {
              worth_fetching = true;
              break;
            }
          }
          if (!worth_fetching) continue;
          // Random accesses for the remaining coefficients, then one
          // vectorized scoring pass over the active member columns
          // (per member: eff[k] * o[k] accumulated in ascending k, the
          // exact scalar sequence).
          store->FetchEff(fid, d, page[r].coef, eff.data());
          const int act_n = static_cast<int>(active.size());
          simd::ScoreColumns(act_cols.data(), m_count, dims, eff.data(),
                             act_n, act_scores.data());
          for (int j = 0; j < act_n; ++j) {
            const int m = active[j];
            const double s = act_scores[j];
            if (mb_best_f[m] == kInvalidFunction || s > mb_best_s[m] ||
                (s == mb_best_s[m] && fid < mb_best_f[m])) {
              mb_best_f[m] = fid;
              mb_best_s[m] = s;
            }
          }
        }
        if (count > 0) frontier[d] = page[count - 1].coef;
        // Threshold test after each page (strict: ties keep scanning so
        // the smallest-id tie winner is found). A member whose best
        // provably beats every unseen function's knapsack bound leaves
        // the active set for the rest of this loop iteration.
        for (size_t i = 0; i < active.size();) {
          const int m = active[i];
          if (mb_best_f[m] != kInvalidFunction) {
            double t = TightThreshold(
                &mb_pts[static_cast<size_t>(m) * dims],
                &mb_order[static_cast<size_t>(m) * dims], dims, frontier,
                max_gamma);
            if (mb_best_s[m] > t + kBoundSlack) {
              mb_done[m] = 1;
              undone--;
              active[i] = active.back();
              active.pop_back();
              // Mirror the swap-remove into the column block.
              const size_t last = active.size();
              for (int d2 = 0; d2 < dims; ++d2) {
                float* col = &act_cols[static_cast<size_t>(d2) * m_count];
                col[i] = col[last];
              }
              continue;
            }
          }
          ++i;
        }
      }
      if (!progressed) break;  // all lists exhausted
    }
    memory.Set(sky_mgr.memory_bytes() + seen_gen.size() * sizeof(uint32_t) +
               static_cast<size_t>(m_count) *
                   (sizeof(ObjectId) + sizeof(FunctionId) + sizeof(double) +
                    1 + (dims + 1) * (sizeof(float) + sizeof(int))) +
               engine.memory_bytes());

    // Mutual-best pairing (Property 2), same engine as SB.
    std::vector<MemberCandidate> candidates;
    std::vector<ObjectId> added;
    candidates.reserve(m_count);
    bool exhausted = false;
    for (int m = 0; m < m_count; ++m) {
      if (mb_best_f[m] == kInvalidFunction) {
        exhausted = true;  // no unassigned function reachable
        continue;
      }
      const SkylineObject& member = sky.at(sky.SlotOf(mb_oid[m]));
      candidates.push_back(MemberCandidate{mb_oid[m], &member.point,
                                           mb_best_f[m], mb_best_s[m]});
      if (known_members.insert(mb_oid[m]).second) {
        added.push_back(mb_oid[m]);
      }
    }
    if (candidates.empty()) {
      FAIRMATCH_CHECK(exhausted);
      break;
    }

    std::vector<MatchPair> pairs = engine.FindMutualPairs(candidates, added);
    FAIRMATCH_CHECK(!pairs.empty());
    for (const MatchPair& pair : pairs) {
      result.matching.push_back(pair);
      if (--fcap[pair.fid] == 0) {
        assigned[pair.fid] = 1;
        remaining_fns--;
        engine.OnFunctionAssigned(pair.fid);
      }
      if (--ocap[pair.oid] == 0) {
        odel.push_back(pair.oid);
        known_members.erase(pair.oid);
      }
    }
    engine.OnObjectsRemoved(odel);
  }

  result.stats.cpu_ms = timer.ElapsedMs();
  result.stats.peak_memory_bytes = memory.peak();
  return result;
}

}  // namespace fairmatch

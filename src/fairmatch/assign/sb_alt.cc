#include "fairmatch/assign/sb_alt.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "fairmatch/assign/best_pair.h"
#include "fairmatch/common/check.h"
#include "fairmatch/common/simd.h"
#include "fairmatch/common/stats.h"
#include "fairmatch/common/timer.h"
#include "fairmatch/engine/exec_context.h"
#include "fairmatch/skyline/bbs.h"
#include "fairmatch/topk/packed_function_lists.h"

namespace fairmatch {

namespace {

// See reverse_top1.cc: the threshold bound needs rounding slack, and at
// exact ties scanning must continue so the smallest-id winner is found.
constexpr double kBoundSlack = 1e-9;

/// Knapsack-tight threshold (Section 5.1) given per-list frontier
/// values. `o` and `dim_order` are one member's rows of the flat SoA
/// blocks (length `dims` each).
double TightThreshold(const float* o, const int* dim_order, int dims,
                      const std::vector<double>& frontier, double budget) {
  double threshold = 0.0;
  for (int j = 0; j < dims; ++j) {
    if (budget <= 0.0) break;
    const int d = dim_order[j];
    double beta = std::min(budget, frontier[d]);
    threshold += beta * o[d];
    budget -= beta;
  }
  return threshold;
}

/// Member state in flat SoA blocks, shared by the disk and packed batch
/// scans and hoisted so loop iterations reuse capacity: coordinates and
/// per-member dim orders are `dims`-strided rows, best scores/functions
/// are parallel arrays. `active` compacts the not-yet-done members so
/// the per-page loops cost O(active) instead of O(members); `by_dim[d]`
/// orders members by descending o[d] so the fetch-worthiness probe
/// (whose dominant term is coef * o[d]) hits its early-exit on the
/// likeliest member first. `act_cols` mirrors the active set as
/// dim-major float columns (column j = member active[j]) so the
/// per-fetch scoring loop runs through the vectorized block kernel
/// (common/simd.h); `act_scores` receives one block of scores per
/// fetched function.
struct BatchMemberBlocks {
  std::vector<ObjectId> oid;
  std::vector<float> pts;    // members x dims
  std::vector<int> order;    // members x dims, o desc per member
  std::vector<FunctionId> best_f;
  std::vector<double> best_s;
  std::vector<uint8_t> done;
  std::vector<int> active;
  std::vector<float> act_cols;  // dims x m_count, column j = active[j]
  std::vector<double> act_scores;
  std::vector<std::vector<int>> by_dim;
  int m_count = 0;

  /// (Re)fills every block from the current skyline members; best
  /// functions are recomputed from scratch each loop.
  void Gather(SkylineSet& sky, int dims) {
    m_count = static_cast<int>(sky.size());
    oid.clear();
    pts.clear();
    order.resize(static_cast<size_t>(m_count) * dims);
    sky.ForEach([&](int, const SkylineObject& m) {
      const int idx = static_cast<int>(oid.size());
      oid.push_back(m.id);
      for (int d = 0; d < dims; ++d) pts.push_back(m.point[d]);
      int* ord = &order[static_cast<size_t>(idx) * dims];
      std::iota(ord, ord + dims, 0);
      const float* pt = &pts[static_cast<size_t>(idx) * dims];
      std::sort(ord, ord + dims, [pt](int a, int b) {
        if (pt[a] != pt[b]) return pt[a] > pt[b];
        return a < b;
      });
    });
    best_f.assign(m_count, kInvalidFunction);
    best_s.assign(m_count, 0.0);
    done.assign(m_count, 0);
    active.resize(m_count);
    std::iota(active.begin(), active.end(), 0);
    act_cols.resize(static_cast<size_t>(dims) * m_count);
    for (int d = 0; d < dims; ++d) {
      float* col = &act_cols[static_cast<size_t>(d) * m_count];
      for (int j = 0; j < m_count; ++j) {
        col[j] = pts[static_cast<size_t>(j) * dims + d];
      }
    }
    act_scores.resize(m_count);
    by_dim.resize(dims);
    for (int d = 0; d < dims; ++d) {
      std::vector<int>& ord = by_dim[d];
      ord.resize(m_count);
      std::iota(ord.begin(), ord.end(), 0);
      std::sort(ord.begin(), ord.end(), [&](int a, int b) {
        const float oa = pts[static_cast<size_t>(a) * dims + d];
        const float ob = pts[static_cast<size_t>(b) * dims + d];
        if (oa != ob) return oa > ob;
        return a < b;
      });
    }
  }

  /// One vectorized scoring pass of function `fid` (coefficients `eff`,
  /// `dims` doubles) over the active member columns (per member:
  /// eff[k] * o[k] accumulated in ascending k, the exact scalar
  /// sequence), then the best-function updates with the smallest-id tie
  /// rule.
  void ScoreAgainst(FunctionId fid, const double* eff, int dims) {
    const int act_n = static_cast<int>(active.size());
    simd::ScoreColumns(act_cols.data(), m_count, dims, eff, act_n,
                       act_scores.data());
    for (int j = 0; j < act_n; ++j) {
      const int m = active[j];
      const double s = act_scores[j];
      if (best_f[m] == kInvalidFunction || s > best_s[m] ||
          (s == best_s[m] && fid < best_f[m])) {
        best_f[m] = fid;
        best_s[m] = s;
      }
    }
  }

  /// Threshold test (strict: ties keep scanning so the smallest-id tie
  /// winner is found). A member whose best provably beats every unseen
  /// function's knapsack bound leaves the active set for the rest of
  /// this loop iteration; returns how many retired.
  int RetireProvablyDone(int dims, const std::vector<double>& frontier,
                         double max_gamma) {
    int retired = 0;
    for (size_t i = 0; i < active.size();) {
      const int m = active[i];
      if (best_f[m] != kInvalidFunction) {
        const double t = TightThreshold(
            &pts[static_cast<size_t>(m) * dims],
            &order[static_cast<size_t>(m) * dims], dims, frontier, max_gamma);
        if (best_s[m] > t + kBoundSlack) {
          done[m] = 1;
          retired++;
          active[i] = active.back();
          active.pop_back();
          // Mirror the swap-remove into the column block.
          const size_t last = active.size();
          for (int d2 = 0; d2 < dims; ++d2) {
            float* col = &act_cols[static_cast<size_t>(d2) * m_count];
            col[i] = col[last];
          }
          continue;
        }
      }
      ++i;
    }
    return retired;
  }

  /// Search-structure bytes for the shared MemoryTracker.
  size_t memory_bytes(int dims) const {
    return static_cast<size_t>(m_count) *
           (sizeof(ObjectId) + sizeof(FunctionId) + sizeof(double) + 1 +
            (dims + 1) * (sizeof(float) + sizeof(int)));
  }
};

/// Fetch-worthiness probe: before paying the random accesses for a
/// newly encountered function (list `d`, effective coefficient `coef`),
/// bound its score against every undone member — the function was
/// unseen until now, so in every other list its entry is at or below
/// the scan frontier (alpha'_k <= frontier[k]) and its coefficients sum
/// to at most max gamma. Returns true as soon as one member's bound
/// reaches its current best (members walked in by_dim[d] order, the
/// likeliest first). Bounds go through the vectorized lane kernel in
/// batches of up to 8 members; its scalar backend reproduces the
/// original per-member loop bit-for-bit (zero-beta lanes add an exact
/// +0.0), so the boolean outcome — and with it every golden I/O
/// count — is unchanged.
bool WorthFetching(const BatchMemberBlocks& mb, int dims, int d, double coef,
                   double max_gamma, const std::vector<double>& frontier) {
  const double budget0 = max_gamma - coef;
  int lanes[8];
  double bounds[8];
  int n_lanes = 0;
  const auto any_reaches_best = [&](int count) {
    for (int i = 0; i < count; ++i) {
      if (bounds[i] >= mb.best_s[lanes[i]] - kBoundSlack) return true;
    }
    return false;
  };
  for (int m : mb.by_dim[d]) {
    if (mb.done[m]) continue;
    if (mb.best_f[m] == kInvalidFunction) return true;
    lanes[n_lanes++] = m;
    if (n_lanes == 8) {
      simd::KnapsackBounds(mb.pts.data(), mb.order.data(),
                           static_cast<size_t>(dims), dims, d, coef, budget0,
                           frontier.data(), lanes, n_lanes, bounds);
      if (any_reaches_best(n_lanes)) return true;
      n_lanes = 0;
    }
  }
  if (n_lanes > 0) {
    simd::KnapsackBounds(mb.pts.data(), mb.order.data(),
                         static_cast<size_t>(dims), dims, d, coef, budget0,
                         frontier.data(), lanes, n_lanes, bounds);
    if (any_reaches_best(n_lanes)) return true;
  }
  return false;
}

}  // namespace

AssignResult SBAltAssignment(const AssignmentProblem& problem,
                             const RTree& tree, DiskFunctionStore* store,
                             ExecContext* ctx) {
  Timer timer;
  AssignResult result;
  result.stats.algorithm = "SB-alt";

  const FunctionSet& fns = problem.functions;
  const int dims = problem.dims;
  const int num_fns = static_cast<int>(fns.size());

  std::vector<uint8_t> assigned(num_fns, 0);
  std::vector<int> fcap(num_fns);
  for (const PrefFunction& f : fns) fcap[f.id] = f.capacity;
  int64_t remaining_fns = num_fns;
  std::vector<int> ocap(problem.objects.size());
  for (const ObjectItem& o : problem.objects) ocap[o.id] = o.capacity;

  SkylineManager sky_mgr(&tree);
  BestPairEngine engine(&fns);
  MemoryTracker local_memory;
  MemoryTracker& memory = ctx != nullptr ? ctx->memory() : local_memory;
  std::vector<ObjectId> odel;
  std::unordered_set<ObjectId> known_members;
  bool first = true;

  BatchMemberBlocks mb;
  // Generation-stamped seen set: cleared by bumping `gen`, not O(|F|).
  std::vector<uint32_t> seen_gen(num_fns, 0);
  uint32_t gen = 0;
  std::vector<int64_t> next_page(dims, 0);
  std::vector<double> frontier(dims, 0.0);
  std::vector<ListRecord> page;
  std::array<double, kMaxDims> eff{};
  const double max_gamma = store->max_gamma();
  const int64_t pages = store->pages_per_list();

  while (remaining_fns > 0) {
    // Cancellation point: a storage fault or an expired deadline aborts
    // this run with whatever partial matching is already in `result`.
    if (ctx != nullptr && ctx->ShouldAbort()) break;
    result.stats.loops++;
    if (first) {
      sky_mgr.ComputeInitial();
      first = false;
    } else {
      sky_mgr.RemoveAndUpdate(odel);
    }
    odel.clear();
    SkylineSet& sky = sky_mgr.skyline();
    if (sky.size() == 0) break;

    mb.Gather(sky, dims);

    // Batch TA over the disk lists: round-robin, one page at a time.
    std::fill(next_page.begin(), next_page.end(), 0);
    std::fill(frontier.begin(), frontier.end(), max_gamma);
    ++gen;
    int undone = mb.m_count;

    while (undone > 0) {
      bool progressed = false;
      for (int d = 0; d < dims && undone > 0; ++d) {
        if (next_page[d] >= pages) continue;
        int count = store->ReadListPage(d, next_page[d]++, &page);
        progressed = true;
        for (int r = 0; r < count; ++r) {
          FunctionId fid = page[r].fid;
          if (seen_gen[fid] == gen) continue;
          seen_gen[fid] = gen;
          if (assigned[fid]) continue;
          // Skipping an unworthy fetch is what keeps the batch search's
          // I/O low once the early list prefixes are consumed.
          if (!WorthFetching(mb, dims, d, page[r].coef, max_gamma,
                             frontier)) {
            continue;
          }
          // Random accesses for the remaining coefficients, then the
          // vectorized scoring pass over the active member columns.
          store->FetchEff(fid, d, page[r].coef, eff.data());
          mb.ScoreAgainst(fid, eff.data(), dims);
        }
        if (count > 0) frontier[d] = page[count - 1].coef;
        undone -= mb.RetireProvablyDone(dims, frontier, max_gamma);
      }
      if (!progressed) break;  // all lists exhausted
    }
    memory.Set(sky_mgr.memory_bytes() + seen_gen.size() * sizeof(uint32_t) +
               mb.memory_bytes(dims) + engine.memory_bytes());

    // Mutual-best pairing (Property 2), same engine as SB.
    std::vector<MemberCandidate> candidates;
    std::vector<ObjectId> added;
    candidates.reserve(mb.m_count);
    bool exhausted = false;
    for (int m = 0; m < mb.m_count; ++m) {
      if (mb.best_f[m] == kInvalidFunction) {
        exhausted = true;  // no unassigned function reachable
        continue;
      }
      const SkylineObject& member = sky.at(sky.SlotOf(mb.oid[m]));
      candidates.push_back(MemberCandidate{mb.oid[m], &member.point,
                                           mb.best_f[m], mb.best_s[m]});
      if (known_members.insert(mb.oid[m]).second) {
        added.push_back(mb.oid[m]);
      }
    }
    if (candidates.empty()) {
      FAIRMATCH_CHECK(exhausted);
      break;
    }

    std::vector<MatchPair> pairs = engine.FindMutualPairs(candidates, added);
    // Candidate scores come from (possibly faulted) store reads while the
    // engine's function-side bests use in-memory scores; corruption can
    // break the mutual-best guarantee. In a faulted run that is data
    // loss, not a broken invariant — unwind instead of aborting.
    if (pairs.empty() && ctx != nullptr && ctx->ShouldAbort()) break;
    FAIRMATCH_CHECK(!pairs.empty());
    for (const MatchPair& pair : pairs) {
      result.matching.push_back(pair);
      if (--fcap[pair.fid] == 0) {
        assigned[pair.fid] = 1;
        remaining_fns--;
        engine.OnFunctionAssigned(pair.fid);
      }
      if (--ocap[pair.oid] == 0) {
        odel.push_back(pair.oid);
        known_members.erase(pair.oid);
      }
    }
    engine.OnObjectsRemoved(odel);
  }

  result.stats.cpu_ms = timer.ElapsedMs();
  result.stats.peak_memory_bytes = memory.peak();
  return result;
}

AssignResult SBAltPackedAssignment(const AssignmentProblem& problem,
                                   const RTree& tree,
                                   PackedFunctionStore* store,
                                   ExecContext* ctx) {
  Timer timer;
  AssignResult result;
  result.stats.algorithm = "SB-alt-Packed";

  const FunctionSet& fns = problem.functions;
  const int dims = problem.dims;
  const int num_fns = static_cast<int>(fns.size());

  std::vector<uint8_t> assigned(num_fns, 0);
  std::vector<int> fcap(num_fns);
  for (const PrefFunction& f : fns) fcap[f.id] = f.capacity;
  int64_t remaining_fns = num_fns;
  std::vector<int> ocap(problem.objects.size());
  for (const ObjectItem& o : problem.objects) ocap[o.id] = o.capacity;

  SkylineManager sky_mgr(&tree);
  BestPairEngine engine(&fns);
  MemoryTracker local_memory;
  MemoryTracker& memory = ctx != nullptr ? ctx->memory() : local_memory;
  std::vector<ObjectId> odel;
  std::unordered_set<ObjectId> known_members;
  bool first = true;

  BatchMemberBlocks mb;
  std::vector<uint32_t> seen_gen(num_fns, 0);
  uint32_t gen = 0;
  std::vector<int> next_block(dims, 0);
  std::vector<double> frontier(dims, 0.0);
  std::vector<int32_t> blk_fids(store->block_entries());
  const double max_gamma = store->max_gamma();
  const int num_blocks = store->num_blocks();

  while (remaining_fns > 0) {
    // Cancellation point (see SBAltAssignment above).
    if (ctx != nullptr && ctx->ShouldAbort()) break;
    result.stats.loops++;
    if (first) {
      sky_mgr.ComputeInitial();
      first = false;
    } else {
      sky_mgr.RemoveAndUpdate(odel);
    }
    odel.clear();
    SkylineSet& sky = sky_mgr.skyline();
    if (sky.size() == 0) break;

    mb.Gather(sky, dims);

    // Batch scan over the packed blocks, globally impact-ordered: every
    // step consumes the unconsumed block with the highest max impact
    // across all lists (ties: smallest dim), so the per-list frontiers
    // drop as fast as possible and members retire after the fewest
    // blocks. Zero counted I/O: blocks are decoded from the packed
    // image in place. The first block's max impact (the list's largest
    // coefficient) is a tighter initial frontier than max gamma.
    std::fill(next_block.begin(), next_block.end(), 0);
    for (int d = 0; d < dims; ++d) frontier[d] = store->BlockMaxImpact(d, 0);
    ++gen;
    int undone = mb.m_count;

    while (undone > 0) {
      int d = -1;
      double best_impact = -1.0;
      for (int k = 0; k < dims; ++k) {
        if (next_block[k] >= num_blocks) continue;
        const double impact = store->BlockMaxImpact(k, next_block[k]);
        if (impact > best_impact) {
          best_impact = impact;
          d = k;
        }
      }
      if (d < 0) break;  // all lists exhausted
      const int count = store->DecodeBlock(d, next_block[d]++,
                                           blk_fids.data());
      for (int r = 0; r < count; ++r) {
        const FunctionId fid = blk_fids[r];
        if (seen_gen[fid] == gen) continue;
        seen_gen[fid] = gen;
        if (assigned[fid]) continue;
        const double coef = store->eff_of(fid, d);
        if (!WorthFetching(mb, dims, d, coef, max_gamma, frontier)) continue;
        mb.ScoreAgainst(fid, store->EffRow(fid), dims);
      }
      // Unseen functions now sit at or after the next block; a fully
      // consumed list has no unseen functions left at all.
      frontier[d] = next_block[d] < num_blocks
                        ? store->BlockMaxImpact(d, next_block[d])
                        : 0.0;
      undone -= mb.RetireProvablyDone(dims, frontier, max_gamma);
    }
    memory.Set(sky_mgr.memory_bytes() + seen_gen.size() * sizeof(uint32_t) +
               mb.memory_bytes(dims) + blk_fids.size() * sizeof(int32_t) +
               engine.memory_bytes());

    // Mutual-best pairing (Property 2), same engine as SB.
    std::vector<MemberCandidate> candidates;
    std::vector<ObjectId> added;
    candidates.reserve(mb.m_count);
    bool exhausted = false;
    for (int m = 0; m < mb.m_count; ++m) {
      if (mb.best_f[m] == kInvalidFunction) {
        exhausted = true;  // no unassigned function reachable
        continue;
      }
      const SkylineObject& member = sky.at(sky.SlotOf(mb.oid[m]));
      candidates.push_back(MemberCandidate{mb.oid[m], &member.point,
                                           mb.best_f[m], mb.best_s[m]});
      if (known_members.insert(mb.oid[m]).second) {
        added.push_back(mb.oid[m]);
      }
    }
    if (candidates.empty()) {
      FAIRMATCH_CHECK(exhausted);
      break;
    }

    std::vector<MatchPair> pairs = engine.FindMutualPairs(candidates, added);
    // Candidate scores come from (possibly faulted) store reads while the
    // engine's function-side bests use in-memory scores; corruption can
    // break the mutual-best guarantee. In a faulted run that is data
    // loss, not a broken invariant — unwind instead of aborting.
    if (pairs.empty() && ctx != nullptr && ctx->ShouldAbort()) break;
    FAIRMATCH_CHECK(!pairs.empty());
    for (const MatchPair& pair : pairs) {
      result.matching.push_back(pair);
      if (--fcap[pair.fid] == 0) {
        assigned[pair.fid] = 1;
        remaining_fns--;
        engine.OnFunctionAssigned(pair.fid);
      }
      if (--ocap[pair.oid] == 0) {
        odel.push_back(pair.oid);
        known_members.erase(pair.oid);
      }
    }
    engine.OnObjectsRemoved(odel);
  }

  result.stats.cpu_ms = timer.ElapsedMs();
  result.stats.peak_memory_bytes = memory.peak();
  return result;
}

}  // namespace fairmatch

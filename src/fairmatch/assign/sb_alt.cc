#include "fairmatch/assign/sb_alt.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "fairmatch/assign/best_pair.h"
#include "fairmatch/common/check.h"
#include "fairmatch/common/stats.h"
#include "fairmatch/common/timer.h"
#include "fairmatch/engine/exec_context.h"
#include "fairmatch/skyline/bbs.h"

namespace fairmatch {

namespace {

// See reverse_top1.cc: the threshold bound needs rounding slack, and at
// exact ties scanning must continue so the smallest-id winner is found.
constexpr double kBoundSlack = 1e-9;

/// Knapsack-tight threshold (Section 5.1) given per-list frontier values.
double TightThreshold(const Point& o, const std::vector<int>& dim_order,
                      const std::vector<double>& frontier, double budget) {
  double threshold = 0.0;
  for (int d : dim_order) {
    if (budget <= 0.0) break;
    double beta = std::min(budget, frontier[d]);
    threshold += beta * o[d];
    budget -= beta;
  }
  return threshold;
}

}  // namespace

AssignResult SBAltAssignment(const AssignmentProblem& problem,
                             const RTree& tree, DiskFunctionStore* store,
                             ExecContext* ctx) {
  Timer timer;
  AssignResult result;
  result.stats.algorithm = "SB-alt";

  const FunctionSet& fns = problem.functions;
  const int dims = problem.dims;
  const int num_fns = static_cast<int>(fns.size());

  std::vector<uint8_t> assigned(num_fns, 0);
  std::vector<int> fcap(num_fns);
  for (const PrefFunction& f : fns) fcap[f.id] = f.capacity;
  int64_t remaining_fns = num_fns;
  std::vector<int> ocap(problem.objects.size());
  for (const ObjectItem& o : problem.objects) ocap[o.id] = o.capacity;

  SkylineManager sky_mgr(&tree);
  BestPairEngine engine(&fns);
  MemoryTracker local_memory;
  MemoryTracker& memory = ctx != nullptr ? ctx->memory() : local_memory;
  std::vector<ObjectId> odel;
  std::unordered_set<ObjectId> known_members;
  bool first = true;

  while (remaining_fns > 0) {
    result.stats.loops++;
    if (first) {
      sky_mgr.ComputeInitial();
      first = false;
    } else {
      sky_mgr.RemoveAndUpdate(odel);
    }
    odel.clear();
    SkylineSet& sky = sky_mgr.skyline();
    if (sky.size() == 0) break;

    // Gather the members; best functions are recomputed from scratch.
    struct Member {
      ObjectId oid;
      const Point* point;
      std::vector<int> dim_order;
      FunctionId best_f = kInvalidFunction;
      double best_s = 0.0;
      std::array<double, kMaxDims> best_eff{};
      bool done = false;
    };
    std::vector<Member> members;
    members.reserve(sky.size());
    sky.ForEach([&](int, const SkylineObject& m) {
      Member mem;
      mem.oid = m.id;
      mem.point = &m.point;
      mem.dim_order.resize(dims);
      std::iota(mem.dim_order.begin(), mem.dim_order.end(), 0);
      std::sort(mem.dim_order.begin(), mem.dim_order.end(), [&](int a, int b) {
        if (m.point[a] != m.point[b]) return m.point[a] > m.point[b];
        return a < b;
      });
      members.push_back(std::move(mem));
    });

    // Batch TA over the disk lists: round-robin, one page at a time.
    std::vector<int64_t> next_page(dims, 0);
    std::vector<double> frontier(dims, store->max_gamma());
    std::vector<uint8_t> seen(num_fns, 0);
    int undone = static_cast<int>(members.size());
    std::vector<ListRecord> page;
    std::array<double, kMaxDims> eff{};
    const int64_t pages = store->pages_per_list();

    while (undone > 0) {
      bool progressed = false;
      for (int d = 0; d < dims && undone > 0; ++d) {
        if (next_page[d] >= pages) continue;
        int count = store->ReadListPage(d, next_page[d]++, &page);
        progressed = true;
        for (int r = 0; r < count; ++r) {
          FunctionId fid = page[r].fid;
          if (seen[fid]) continue;
          seen[fid] = 1;
          if (assigned[fid]) continue;
          // Before paying D-1 random accesses, bound f's score: f was
          // unseen until now, so in every other list its entry is at or
          // below the scan frontier — alpha'_k <= frontier[k] — and its
          // coefficients sum to at most max gamma. If the bound cannot
          // beat (or tie) any undone member's current best, skip the
          // fetch entirely; this is what keeps the batch search's I/O
          // low once the early list prefixes are consumed.
          bool worth_fetching = false;
          for (const Member& mem : members) {
            if (mem.done) continue;
            if (mem.best_f == kInvalidFunction) {
              worth_fetching = true;
              break;
            }
            double budget = store->max_gamma() - page[r].coef;
            double bound = page[r].coef * (*mem.point)[d];
            for (int k : mem.dim_order) {
              if (k == d || budget <= 0.0) continue;
              double beta = std::min(budget, frontier[k]);
              bound += beta * (*mem.point)[k];
              budget -= beta;
            }
            if (bound >= mem.best_s - kBoundSlack) {
              worth_fetching = true;
              break;
            }
          }
          if (!worth_fetching) continue;
          // Random accesses for the remaining coefficients.
          store->FetchEff(fid, d, page[r].coef, eff.data());
          for (Member& mem : members) {
            if (mem.done) continue;
            double s = 0.0;
            for (int k = 0; k < dims; ++k) s += eff[k] * (*mem.point)[k];
            if (mem.best_f == kInvalidFunction || s > mem.best_s ||
                (s == mem.best_s && fid < mem.best_f)) {
              mem.best_f = fid;
              mem.best_s = s;
              mem.best_eff = eff;
            }
          }
        }
        if (count > 0) frontier[d] = page[count - 1].coef;
        // Threshold test after each page (strict: ties keep scanning so
        // the smallest-id tie winner is found).
        for (Member& mem : members) {
          if (mem.done || mem.best_f == kInvalidFunction) continue;
          double t = TightThreshold(*mem.point, mem.dim_order, frontier,
                                    store->max_gamma());
          if (mem.best_s > t + kBoundSlack) {
            mem.done = true;
            undone--;
          }
        }
      }
      if (!progressed) break;  // all lists exhausted
    }
    memory.Set(sky_mgr.memory_bytes() + seen.size() +
               members.size() * (sizeof(Member) + dims * 4) +
               engine.memory_bytes());

    // Mutual-best pairing (Property 2), same engine as SB.
    std::vector<MemberCandidate> candidates;
    std::vector<ObjectId> added;
    candidates.reserve(members.size());
    bool exhausted = false;
    for (const Member& mem : members) {
      if (mem.best_f == kInvalidFunction) {
        exhausted = true;  // no unassigned function reachable
        continue;
      }
      candidates.push_back(
          MemberCandidate{mem.oid, mem.point, mem.best_f, mem.best_s});
      if (known_members.insert(mem.oid).second) {
        added.push_back(mem.oid);
      }
    }
    if (candidates.empty()) {
      FAIRMATCH_CHECK(exhausted);
      break;
    }

    std::vector<MatchPair> pairs = engine.FindMutualPairs(candidates, added);
    FAIRMATCH_CHECK(!pairs.empty());
    for (const MatchPair& pair : pairs) {
      result.matching.push_back(pair);
      if (--fcap[pair.fid] == 0) {
        assigned[pair.fid] = 1;
        remaining_fns--;
        engine.OnFunctionAssigned(pair.fid);
      }
      if (--ocap[pair.oid] == 0) {
        odel.push_back(pair.oid);
        known_members.erase(pair.oid);
      }
    }
    engine.OnObjectsRemoved(odel);
  }

  result.stats.cpu_ms = timer.ElapsedMs();
  result.stats.peak_memory_bytes = memory.peak();
  return result;
}

}  // namespace fairmatch

// Reference oracle: the stable matching by definition.
//
// Repeatedly extracts the best remaining (f, o) pair under the canonical
// order (score desc, fid asc, oid asc), decrementing capacities.
// O(P * |F| * |O|) — for tests and tiny examples only.
#ifndef FAIRMATCH_ASSIGN_NAIVE_MATCHER_H_
#define FAIRMATCH_ASSIGN_NAIVE_MATCHER_H_

#include "fairmatch/assign/problem.h"

namespace fairmatch {

/// Computes the stable matching directly from its definition.
Matching NaiveStableMatching(const AssignmentProblem& problem);

}  // namespace fairmatch

#endif  // FAIRMATCH_ASSIGN_NAIVE_MATCHER_H_

// Problem statement types for the fair-assignment computation
// (paper Section 3), and the canonical pair ordering all algorithms use.
//
// The matching is defined by iteratively extracting the pair (f, o) with
// the highest f(o) from the remaining sets. Ties are broken by smaller
// function id, then smaller object id; every algorithm in this library
// follows the same total order, which makes the result matching unique
// and lets tests compare algorithms for exact equality.
#ifndef FAIRMATCH_ASSIGN_PROBLEM_H_
#define FAIRMATCH_ASSIGN_PROBLEM_H_

#include <string>
#include <vector>

#include "fairmatch/common/preference.h"
#include "fairmatch/common/status.h"
#include "fairmatch/rtree/rtree.h"

namespace fairmatch {

/// One assignable object (a point in [0,1]^D with an optional capacity,
/// Section 6.1).
struct ObjectItem {
  ObjectId id = kInvalidObject;
  Point point;
  int capacity = 1;
};

/// A full problem instance: the function set F and the object set O.
struct AssignmentProblem {
  int dims = 0;
  FunctionSet functions;        // ids == indices
  std::vector<ObjectItem> objects;  // ids == indices

  int64_t TotalFunctionCapacity() const;
  int64_t TotalObjectCapacity() const;
};

/// One assignment in the output matching.
struct MatchPair {
  FunctionId fid = kInvalidFunction;
  ObjectId oid = kInvalidObject;
  double score = 0.0;
};

/// The stable matching, in the order pairs were established.
using Matching = std::vector<MatchPair>;

/// Returns true iff pair a precedes pair b in the canonical extraction
/// order: higher score, then smaller function id, then smaller object id.
inline bool PairBefore(double sa, FunctionId fa, ObjectId oa, double sb,
                       FunctionId fb, ObjectId ob) {
  if (sa != sb) return sa > sb;
  if (fa != fb) return fa < fb;
  return oa < ob;
}

/// Sorts by (fid, oid) — a canonical form for set comparison.
void CanonicalizeMatching(Matching* matching);

/// True iff the two matchings contain the same (fid, oid) multiset.
bool SameMatching(Matching a, Matching b);

/// Execution statistics reported by every algorithm — the paper's three
/// evaluation axes plus loop/pair counts. This is also the row format
/// the bench harness prints (bench/bench_common.h); matchers created
/// through the engine registry fill every field the same way.
struct RunStats {
  std::string algorithm;
  double cpu_ms = 0.0;
  int64_t io_accesses = 0;
  size_t peak_memory_bytes = 0;
  int64_t loops = 0;
  /// Number of emitted assignments (== Matching::size()).
  size_t pairs = 0;

  double peak_memory_mb() const {
    return static_cast<double>(peak_memory_bytes) / (1024.0 * 1024.0);
  }
};

/// Matching plus statistics. `status` is OK for a completed run; a
/// run that hit a storage fault or its deadline carries the first
/// error (common/status.h) and a partial (possibly empty) matching —
/// the engine aborts the run, never the process.
struct AssignResult {
  Matching matching;
  RunStats stats;
  Status status;
};

/// Bulk-loads `problem`'s objects into an (empty) R-tree.
void BuildObjectTree(const AssignmentProblem& problem, RTree* tree,
                     double fill_factor = 0.7);

}  // namespace fairmatch

#endif  // FAIRMATCH_ASSIGN_PROBLEM_H_

// Chain baseline — adaptation of [Wong et al., VLDB 2007] (paper
// Sections 2.1 and 7).
//
// The functions are indexed by a main-memory R-tree built on their
// effective weights; the nearest-neighbor module of the spatial Chain
// algorithm is replaced by BRS top-1 searches: top-1 object for a
// function on the object R-tree, and top-1 function for an object on
// the function R-tree. Mutual top-1 pairs are stable (Property 1/2).
// Assigned entries are *physically deleted* from their R-trees, and
// every top-1 query starts from scratch — the behavior whose I/O and
// CPU cost the paper's experiments expose.
#ifndef FAIRMATCH_ASSIGN_CHAIN_H_
#define FAIRMATCH_ASSIGN_CHAIN_H_

#include "fairmatch/assign/problem.h"
#include "fairmatch/topk/disk_function_lists.h"

namespace fairmatch {

class ExecContext;

struct ChainOptions {
  /// When set, models disk-resident functions (Section 7.6): the
  /// function R-tree is built on simulated-disk pages behind an LRU
  /// buffer (its traversals are counted I/O, reported through
  /// RunStats::io_accesses), and object-side searches re-fetch function
  /// coefficients through this store (also counted).
  DiskFunctionStore* disk_functions = nullptr;
  /// Buffer fraction for the disk-resident function R-tree.
  double function_tree_buffer = 0.02;
  /// When set, search-structure memory and the function R-tree's disk
  /// traffic are reported through the context (engine/exec_context.h)
  /// instead of a private tracker / RunStats::io_accesses.
  ExecContext* ctx = nullptr;
};

/// Runs Chain. `tree` must contain the problem's objects and is
/// physically modified (deletions); pass a freshly built tree.
AssignResult ChainAssignment(const AssignmentProblem& problem, RTree* tree,
                             const ChainOptions& options = {});

}  // namespace fairmatch

#endif  // FAIRMATCH_ASSIGN_CHAIN_H_

#include "fairmatch/engine/batch_runner.h"

#include <atomic>
#include <memory>
#include <optional>
#include <utility>

#include "fairmatch/common/check.h"
#include "fairmatch/common/thread_pool.h"
#include "fairmatch/common/timer.h"
#include "fairmatch/engine/registry.h"
#include "fairmatch/rtree/node_store.h"
#include "fairmatch/topk/disk_function_lists.h"
#include "fairmatch/topk/packed_function_lists.h"

namespace fairmatch {

namespace {

/// The deterministic numbers a finished item contributes to its lane.
/// cpu_ms comes from the item's own ExecContext clock (wall time spent
/// inside the item), so lane sums stay meaningful at any thread count.
void AccumulateItem(LaneStats* lane, const AssignResult& result) {
  lane->Accumulate(result.stats);
}

}  // namespace

BatchRunner::BatchRunner(int threads) : threads_(threads < 1 ? 1 : threads) {}

BatchResult BatchRunner::RunImpl(
    size_t count,
    const std::function<AssignResult(size_t, LaneWorkspace*)>& run_item) {
  // Touch the registry before spawning lanes: Global() lazily registers
  // the builtins, and while its magic-static initialization is
  // thread-safe, doing it once up front keeps first-item latency out of
  // the measured lanes.
  MatcherRegistry::Global();

  BatchResult result;
  result.items.resize(count);
  result.stats.threads = threads_;
  result.stats.lanes.assign(static_cast<size_t>(threads_), LaneStats{});

  Timer wall;
  {
    // Lanes pull the next unclaimed item index; each writes only its
    // own result slot, its own LaneStats entry and its own workspace,
    // so the only shared write is the atomic cursor.
    std::vector<LaneWorkspace> workspaces(static_cast<size_t>(threads_));
    std::atomic<size_t> next{0};
    ThreadPool pool(threads_);
    for (int lane = 0; lane < threads_; ++lane) {
      pool.Submit([&result, &workspaces, &next, &run_item, count, lane] {
        LaneStats& stats = result.stats.lanes[static_cast<size_t>(lane)];
        LaneWorkspace* ws = &workspaces[static_cast<size_t>(lane)];
        for (;;) {
          const size_t index = next.fetch_add(1);
          if (index >= count) return;
          result.items[index] = run_item(index, ws);
          AccumulateItem(&stats, result.items[index]);
        }
      });
    }
    pool.Wait();
  }
  result.stats.wall_ms = wall.ElapsedMs();

  for (const LaneStats& lane : result.stats.lanes) {
    result.stats.totals.items += lane.items;
    result.stats.totals.io_accesses += lane.io_accesses;
    result.stats.totals.cpu_ms += lane.cpu_ms;
    result.stats.totals.pairs += lane.pairs;
    result.stats.totals.loops += lane.loops;
    if (lane.peak_memory_bytes > result.stats.totals.peak_memory_bytes) {
      result.stats.totals.peak_memory_bytes = lane.peak_memory_bytes;
    }
  }
  if (result.stats.wall_ms > 0.0 && count > 0) {
    result.stats.items_per_sec =
        static_cast<double>(count) / (result.stats.wall_ms / 1000.0);
  }
  return result;
}

BatchResult BatchRunner::Run(const std::vector<BatchItem>& items) {
  // Validate up front, on the submitting thread: a bad item should fail
  // before any lane starts, with the item index in the diagnostic.
  for (const BatchItem& item : items) {
    const MatcherInfo* info =
        MatcherRegistry::Global().Find(item.matcher_name);
    FAIRMATCH_CHECK(info != nullptr);
    FAIRMATCH_CHECK(item.env.problem != nullptr && item.env.tree != nullptr);
    FAIRMATCH_CHECK(!info->needs_disk_functions ||
                    item.env.fn_store != nullptr);
    FAIRMATCH_CHECK(!info->needs_packed_functions ||
                    item.env.packed_fns != nullptr);
  }
  // Caller-assembled items bring their own storage; the lane workspace
  // only serves the generated path.
  return RunImpl(items.size(), [&items](size_t index, LaneWorkspace*) {
    const BatchItem& item = items[index];
    std::unique_ptr<Matcher> matcher =
        MatcherRegistry::Global().Create(item.matcher_name, item.env);
    FAIRMATCH_CHECK(matcher != nullptr);
    return matcher->Run();
  });
}

AssignResult RunGeneratedInstance(const std::string& matcher_name,
                                  const BatchProblemSpec& spec,
                                  size_t index) {
  return RunGeneratedInstance(matcher_name, spec, index, nullptr);
}

AssignResult RunGeneratedInstance(const std::string& matcher_name,
                                  const BatchProblemSpec& spec, size_t index,
                                  LaneWorkspace* ws) {
  // Instance `index` is fully determined by its seed: the problem, the
  // storage stack and the context are all private, which is exactly
  // what makes the result independent of which lane runs it.
  Rng rng(spec.base_seed + index);
  std::vector<Point> points = GeneratePoints(
      spec.distribution, spec.num_objects, spec.dims, &rng);
  FunctionSet fns = GenerateFunctions(spec.num_functions, spec.dims, &rng);
  if (spec.max_gamma > 1) AssignPriorities(&fns, spec.max_gamma, &rng);
  if (spec.function_capacity != 1) {
    SetFunctionCapacities(&fns, spec.function_capacity);
  }
  AssignmentProblem problem =
      MakeProblem(std::move(points), std::move(fns), spec.object_capacity);

  ExecContext ctx;
  MatcherEnv env;
  env.problem = &problem;
  env.buffer_fraction = spec.buffer_fraction;
  env.ctx = &ctx;

  // Storage layout mirrors bench_common::Run: paged objects in the
  // standard setting, in-memory objects + on-disk coefficient lists in
  // the disk-resident-F setting, in-memory objects + a packed image in
  // the packed setting. Build traffic is excluded from the counters but
  // (deliberately) not from the wall clock — a lane that is building an
  // index is still occupying its disk. A workspace, when present,
  // donates its recycled page buffers to whichever simulated disk the
  // item's stores sit on.
  DiskManager* disk = nullptr;
  if (ws != nullptr) {
    ws->Recycle();
    disk = &ws->disk();
  }
  std::optional<PagedNodeStore> paged_store;
  std::optional<MemNodeStore> mem_store;
  std::optional<DiskFunctionStore> fstore;
  std::optional<PackedFunctionStore> pstore;
  std::optional<RTree> tree;
  if (spec.disk_resident_functions) {
    mem_store.emplace(problem.dims);
    tree.emplace(&*mem_store);
    BuildObjectTree(problem, &*tree);
    fstore.emplace(problem.functions, spec.buffer_fraction, &ctx.counters(),
                   disk);
    fstore->disk().set_io_latency_us(spec.io_latency_us);
    env.fn_store = &*fstore;
    ctx.set_function_backend("disk");
  } else if (spec.packed_functions) {
    mem_store.emplace(problem.dims);
    tree.emplace(&*mem_store);
    BuildObjectTree(problem, &*tree);
    PackedStoreOptions popts;
    popts.use_mmap = spec.packed_mmap;
    pstore.emplace(problem.functions, popts);
    env.packed_fns = &*pstore;
    ctx.set_function_backend(pstore->mapped() ? "packed-mmap" : "packed");
  } else {
    paged_store.emplace(problem.dims, /*buffer_frames=*/4096,
                        &ctx.counters(), disk);
    paged_store->disk().set_io_latency_us(spec.io_latency_us);
    tree.emplace(&*paged_store);
    BuildObjectTree(problem, &*tree);
    paged_store->ResetCounters();  // exclude the build phase
    paged_store->SetBufferFraction(spec.buffer_fraction);
  }
  env.tree = &*tree;

  std::unique_ptr<Matcher> matcher =
      MatcherRegistry::Global().Create(matcher_name, env);
  FAIRMATCH_CHECK(matcher != nullptr);
  return matcher->Run();
}

BatchResult BatchRunner::RunGenerated(const std::string& matcher_name,
                                      const BatchProblemSpec& spec,
                                      int count) {
  FAIRMATCH_CHECK(count >= 0);
  const MatcherInfo* info = MatcherRegistry::Global().Find(matcher_name);
  FAIRMATCH_CHECK(info != nullptr);
  FAIRMATCH_CHECK(!info->needs_disk_functions ||
                  spec.disk_resident_functions);
  FAIRMATCH_CHECK(!info->needs_packed_functions || spec.packed_functions);
  FAIRMATCH_CHECK(!(spec.disk_resident_functions && spec.packed_functions));
  return RunImpl(static_cast<size_t>(count),
                 [&matcher_name, &spec](size_t index, LaneWorkspace* ws) {
                   return RunGeneratedInstance(matcher_name, spec, index, ws);
                 });
}

}  // namespace fairmatch

// Name -> factory registry over the assignment algorithms.
//
// Keeping the roster open-ended (Steindl & Zehavi's parameterized-
// assignment view, and the "one interface, many retrievers" idiom) means
// new variants plug in by registering a factory — no enum to extend, no
// switch to grow in benches or tests. The built-in algorithms register
// themselves on first access of Global(); external code may add more.
#ifndef FAIRMATCH_ENGINE_REGISTRY_H_
#define FAIRMATCH_ENGINE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fairmatch/engine/matcher.h"

namespace fairmatch {

/// Metadata + factory for one registered algorithm variant.
struct MatcherInfo {
  /// Registry key and display name (RunStats::algorithm).
  std::string name;
  /// One-line description (paper section reference).
  std::string description;
  /// Requires MatcherEnv::fn_store (SB-alt's batch search only makes
  /// sense over the on-disk sorted lists).
  bool needs_disk_functions = false;
  /// Requires MatcherEnv::packed_fns (the *-Packed variants traverse
  /// the packed blocks in impact order).
  bool needs_packed_functions = false;
  /// Physically deletes from MatcherEnv::tree (Chain); callers must
  /// hand such matchers a throwaway tree.
  bool mutates_tree = false;
  /// Reproduces the naive oracle bit-exactly even on instances with
  /// score ties. The SB family is stable-but-not-identical under ties
  /// (a dominated object can tie a skyline member), so parity tests
  /// compare it to the oracle only on tie-free instances.
  bool exact_under_ties = false;
  /// Reference implementation (naive oracle): correct by construction
  /// but O(P * |F| * |O|); excluded from benches.
  bool reference = false;
  /// Builds a ready-to-run matcher over `env`.
  std::function<std::unique_ptr<Matcher>(const MatcherEnv&)> factory;
};

/// String-keyed matcher factory registry.
///
/// Thread safety: Global()'s lazy construction (builtins included) is
/// synchronized by the magic static. After that, Find/Create/Names are
/// const and safe to call from any number of threads concurrently —
/// BatchRunner lanes resolve matchers this way. Register() is NOT
/// synchronized: register external variants before spawning lanes.
class MatcherRegistry {
 public:
  /// The process-wide registry, with all built-in algorithms already
  /// registered.
  static MatcherRegistry& Global();

  /// Registers a variant. Re-registering a name replaces the entry
  /// (tests use this to stub variants). Not thread-safe: must not race
  /// with any other registry call.
  void Register(MatcherInfo info);

  /// Entry for `name`, or nullptr if unknown.
  const MatcherInfo* Find(const std::string& name) const;

  /// Constructs a ready-to-run matcher, or nullptr if `name` is unknown
  /// or `env` does not satisfy the variant's requirements (e.g. no
  /// fn_store for a needs_disk_functions matcher).
  std::unique_ptr<Matcher> Create(const std::string& name,
                                  const MatcherEnv& env) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

  size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, MatcherInfo> entries_;
};

}  // namespace fairmatch

#endif  // FAIRMATCH_ENGINE_REGISTRY_H_

// Registration of the library's built-in assignment algorithms.
//
// Each variant is an adapter from the uniform MatcherEnv onto one
// algorithm entry point. The adapter also owns the uniform
// instrumentation protocol: BeginRun() on the shared ExecContext before
// the algorithm starts, Finish() into RunStats after it returns, so
// every matcher reports cpu/io/memory identically regardless of how
// many storage objects took part in the run.
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "fairmatch/assign/brute_force.h"
#include "fairmatch/common/check.h"
#include "fairmatch/assign/chain.h"
#include "fairmatch/assign/naive_matcher.h"
#include "fairmatch/assign/sb.h"
#include "fairmatch/assign/sb_alt.h"
#include "fairmatch/assign/two_skyline.h"
#include "fairmatch/engine/registry.h"

namespace fairmatch {

void RegisterBuiltinMatchers(MatcherRegistry* registry);

namespace {

using RunFn = std::function<AssignResult(const MatcherEnv&)>;

/// Generic adapter: captures the environment at construction, applies
/// the instrumentation protocol around one algorithm invocation.
class AdapterMatcher : public Matcher {
 public:
  AdapterMatcher(std::string name, const MatcherEnv& env, RunFn run)
      : name_(std::move(name)), env_(env), run_(std::move(run)) {}

  std::string Name() const override { return name_; }

  AssignResult Run() override {
    // Run() consumes the environment (Chain deletes from the tree, the
    // context's clock and counters are single-run); a second call would
    // silently produce garbage. With an attached context (the serve
    // path) the violation is client-reachable state, so it comes back
    // as a typed kFailedPrecondition — a misbehaving caller must not
    // crash a server lane. Direct context-free use keeps the hard
    // abort: there the caller is library code and the bug is ours.
    if (ran_) {
      FAIRMATCH_CHECK(env_.ctx != nullptr && "Matcher::Run() called twice");
      const std::string message =
          "Matcher::Run() called twice on '" + name_ + "'";
      env_.ctx->errors().Report(ErrorCode::kFailedPrecondition, message);
      AssignResult result;
      result.stats.algorithm = name_;
      result.status = Status::FailedPrecondition(message);
      return result;
    }
    ran_ = true;
    if (env_.ctx != nullptr) env_.ctx->BeginRun();
    AssignResult result = run_(env_);
    result.stats.algorithm = name_;
    result.stats.pairs = result.matching.size();
    if (env_.ctx != nullptr) {
      env_.ctx->Finish(&result.stats);
      // A fault anywhere in the run's storage stack (or an expired
      // deadline) landed in the context's sticky sink; surface it as
      // the run's typed outcome.
      result.status = env_.ctx->status();
    }
    return result;
  }

 private:
  std::string name_;
  MatcherEnv env_;
  RunFn run_;
  bool ran_ = false;
};

MatcherInfo Variant(const std::string& name, const std::string& description,
                    RunFn run) {
  MatcherInfo info;
  info.name = name;
  info.description = description;
  info.factory = [name, run](const MatcherEnv& env) {
    return std::make_unique<AdapterMatcher>(name, env, run);
  };
  return info;
}

RunFn RunSBWith(SBOptions options) {
  return [options](const MatcherEnv& env) {
    SBAssignment sb(env.problem, env.tree, options, env.fn_store, env.ctx);
    return sb.Run();
  };
}

}  // namespace

void RegisterBuiltinMatchers(MatcherRegistry* registry) {
  // --- the SB family ---------------------------------------------------
  registry->Register(Variant(
      "SB", "skyline-based assignment, fully optimized (Algorithms 1 & 3)",
      RunSBWith(SBOptions{})));
  {
    SBOptions o;
    o.multi_pair = false;
    registry->Register(Variant(
        "SB-SinglePair",
        "SB without multi-pair extraction (Section 5.3 disabled)",
        RunSBWith(o)));
  }
  {
    SBOptions o;
    o.best_pair_mode = BestPairMode::kExhaustive;
    o.multi_pair = false;
    registry->Register(Variant(
        "SB-UpdateSkyline",
        "Algorithm 1 + UpdateSkyline, no Section 5.1/5.3 optimizations",
        RunSBWith(o)));
  }
  {
    SBOptions o;
    o.skyline_mode = SkylineMode::kDeltaSky;
    o.best_pair_mode = BestPairMode::kExhaustive;
    o.multi_pair = false;
    registry->Register(Variant(
        "SB-DeltaSky",
        "Algorithm 1 + DeltaSky, no Section 5.1/5.3 optimizations",
        RunSBWith(o)));
  }
  registry->Register(Variant(
      "SB-TwoSkylines",
      "prioritized two-skyline variant (Section 6.2)",
      [](const MatcherEnv& env) {
        return TwoSkylineAssignment(*env.problem, *env.tree, env.ctx);
      }));
  {
    MatcherInfo info = Variant(
        "SB-alt",
        "batch best-pair search over disk-resident function lists "
        "(Section 7.6)",
        [](const MatcherEnv& env) {
          return SBAltAssignment(*env.problem, *env.tree, env.fn_store,
                                 env.ctx);
        });
    info.needs_disk_functions = true;
    registry->Register(std::move(info));
  }

  // --- packed-list variants --------------------------------------------
  {
    MatcherInfo info = Variant(
        "SB-Packed",
        "SB over packed function lists with the impact-ordered block "
        "traversal (topk/packed_function_lists.h)",
        [](const MatcherEnv& env) {
          SBOptions o;
          o.ta.impact_ordered = true;
          SBAssignment sb(env.problem, env.tree, o, env.packed_fns, env.ctx);
          return sb.Run();
        });
    info.needs_packed_functions = true;
    registry->Register(std::move(info));
  }
  {
    MatcherInfo info = Variant(
        "SB-alt-Packed",
        "batch best-pair search consuming packed blocks in descending "
        "max-impact order",
        [](const MatcherEnv& env) {
          return SBAltPackedAssignment(*env.problem, *env.tree,
                                       env.packed_fns, env.ctx);
        });
    info.needs_packed_functions = true;
    registry->Register(std::move(info));
  }

  // --- baselines -------------------------------------------------------
  {
    MatcherInfo info = Variant(
        "BruteForce",
        "one resumable BRS top-1 search per function (Section 4.1)",
        [](const MatcherEnv& env) {
          BruteForceOptions options;
          options.disk_functions = env.fn_store;
          options.ctx = env.ctx;
          return BruteForceAssignment(*env.problem, *env.tree, options);
        });
    info.exact_under_ties = true;
    registry->Register(std::move(info));
  }
  {
    MatcherInfo info = Variant(
        "Chain",
        "mutual-top-1 chain over object and function R-trees "
        "(Wong et al., Section 2.1)",
        [](const MatcherEnv& env) {
          ChainOptions options;
          options.disk_functions = env.fn_store;
          options.function_tree_buffer = env.buffer_fraction;
          options.ctx = env.ctx;
          return ChainAssignment(*env.problem, env.tree, options);
        });
    info.exact_under_ties = true;
    info.mutates_tree = true;
    registry->Register(std::move(info));
  }
  {
    MatcherInfo info = Variant(
        "Naive", "the stable matching by definition (reference oracle)",
        [](const MatcherEnv& env) {
          AssignResult result;
          result.matching = NaiveStableMatching(*env.problem);
          return result;
        });
    info.exact_under_ties = true;
    info.reference = true;
    registry->Register(std::move(info));
  }
}

}  // namespace fairmatch

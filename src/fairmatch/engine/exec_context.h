// Unified per-run instrumentation for the matcher engine.
//
// The paper evaluates every algorithm along the same three axes — I/O
// accesses, CPU time, and peak memory held by search structures — but
// the seed code plumbed each axis separately: every storage entity owned
// a private PerfCounters, every algorithm a private MemoryTracker and
// Timer, and callers stitched the numbers together by hand (summing a
// store's counters with I/O smuggled through RunStats::io_accesses).
//
// ExecContext replaces that with one instrumentation object per run.
// Storage backends (PagedNodeStore, DiskFunctionStore, an algorithm's
// private disk structures) are constructed against the context's
// PerfCounters so all simulated-disk traffic lands in one place;
// algorithms report structure sizes to the context's MemoryTracker; the
// wall clock runs from BeginRun() to Finish(). Finish() then produces a
// fully populated RunStats the same way for every matcher.
#ifndef FAIRMATCH_ENGINE_EXEC_CONTEXT_H_
#define FAIRMATCH_ENGINE_EXEC_CONTEXT_H_

#include <chrono>
#include <string>

#include "fairmatch/assign/problem.h"
#include "fairmatch/common/stats.h"
#include "fairmatch/common/status.h"
#include "fairmatch/common/timer.h"

namespace fairmatch {

/// One run's worth of instrumentation: shared I/O counters, a shared
/// memory tracker, and the run wall clock. Create one per measured run
/// (the object is cheap); pass it to every storage object and matcher
/// participating in the run.
///
/// "Shared" means shared among the storage objects of ONE run, not
/// among threads: counter increments are plain loads/stores. Parallel
/// batch execution keeps one ExecContext per item (never per batch),
/// which is also what makes each item's counters deterministic — see
/// engine/batch_runner.h.
class ExecContext {
 public:
  ExecContext() = default;

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Shared simulated-disk counters. Storage objects constructed with
  /// `&counters()` contribute their traffic here.
  PerfCounters& counters() { return counters_; }
  const PerfCounters& counters() const { return counters_; }

  /// Shared search-structure memory tracker.
  MemoryTracker& memory() { return memory_; }
  const MemoryTracker& memory() const { return memory_; }

  /// Sticky first-error collector for the run. Storage objects report
  /// typed faults here (DiskManager::set_error_sink wires the bottom of
  /// the stack to it); matchers poll ShouldAbort() at their outer loops
  /// and unwind with a partial result when it trips.
  ErrorSink& errors() { return errors_; }
  const ErrorSink& errors() const { return errors_; }

  /// The run's first error (OK while healthy). AdapterMatcher copies
  /// this into AssignResult::status after the run.
  const Status& status() const { return errors_.status(); }

  /// Arms a wall-clock deadline. Once it passes, ShouldAbort() reports
  /// kDeadlineExceeded to the sink (once) and starts returning true.
  /// Unset by default: direct runs and benches never pay the clock
  /// reads.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    deadline_armed_ = true;
  }

  /// Cancellation point, polled at matcher outer loops. Near-free on
  /// the happy path (two loads); reads the clock only when a deadline
  /// is armed.
  bool ShouldAbort() {
    if (errors_.failed()) return true;
    if (deadline_armed_ && std::chrono::steady_clock::now() >= deadline_) {
      errors_.Report(ErrorCode::kDeadlineExceeded,
                     "run deadline expired after " +
                         std::to_string(timer_.ElapsedMs()) + " ms");
      return true;
    }
    return false;
  }

  /// Which function-index backend the run's environment was assembled
  /// with: "lists" (in-memory, the default), "disk"
  /// (DiskFunctionStore), "packed" or "packed-mmap"
  /// (PackedFunctionStore). Purely descriptive — set by whoever builds
  /// the MatcherEnv, read by bench report rows and diagnostics.
  void set_function_backend(const char* backend) {
    function_backend_ = backend;
  }
  const char* function_backend() const { return function_backend_; }

  /// Restarts the wall clock and zeroes the memory tracker. Does NOT
  /// reset counters(): storage objects own their measured-phase resets
  /// (e.g. PagedNodeStore::ResetCounters after bulk load), and a fresh
  /// context starts at zero anyway.
  void BeginRun() {
    timer_.Restart();
    memory_.Reset();
  }

  double ElapsedMs() const { return timer_.ElapsedMs(); }

  /// Fills `stats` the uniform way: wall-clock CPU time since
  /// BeginRun(), total I/O from the shared counters, and the larger of
  /// the shared tracker's peak and whatever the algorithm already
  /// reported (algorithms without context threading keep their own
  /// number).
  void Finish(RunStats* stats) const {
    stats->cpu_ms = timer_.ElapsedMs();
    stats->io_accesses = counters_.io_accesses();
    if (memory_.peak() > stats->peak_memory_bytes) {
      stats->peak_memory_bytes = memory_.peak();
    }
  }

 private:
  PerfCounters counters_;
  MemoryTracker memory_;
  Timer timer_;
  ErrorSink errors_;
  std::chrono::steady_clock::time_point deadline_;
  bool deadline_armed_ = false;
  const char* function_backend_ = "lists";
};

}  // namespace fairmatch

#endif  // FAIRMATCH_ENGINE_EXEC_CONTEXT_H_
